module Trace = Omn_temporal.Trace

type t = {
  grid_ : float array;
  slope_diff : float array;  (* length n+1: coefficient of d on [i_lo, i_full) *)
  const_diff : float array;  (* constant part on the same range *)
  full_diff : float array;   (* saturated contribution from i_full on *)
  mutable inf_mass : float;
  mutable total : float;
}

let create ~grid =
  let n = Array.length grid in
  if n = 0 then invalid_arg "Delay_cdf.create: empty grid";
  for i = 0 to n - 1 do
    if grid.(i) < 0. || Float.is_nan grid.(i) then invalid_arg "Delay_cdf.create: negative budget";
    if i > 0 && grid.(i) < grid.(i - 1) then invalid_arg "Delay_cdf.create: grid not ascending"
  done;
  {
    grid_ = Array.copy grid;
    slope_diff = Array.make (n + 1) 0.;
    const_diff = Array.make (n + 1) 0.;
    full_diff = Array.make (n + 1) 0.;
    inf_mass = 0.;
    total = 0.;
  }

let grid t = Array.copy t.grid_

(* First grid index with grid.(i) >= x, or n. *)
let lower t x =
  let n = Array.length t.grid_ in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.grid_.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

(* One creation-time segment (a, b] governed by arrival [ea]: success
   measure at budget d is clamp(b - max(a, ea - d), 0, b - a) — zero up
   to d = ea - b, then (b - ea) + d, then saturated at b - a. *)
let add_segment t ~a ~b ~ea =
  if b > a then begin
    let i_lo = lower t (ea -. b) in
    let i_full = lower t (ea -. a) in
    if i_full > i_lo then begin
      t.slope_diff.(i_lo) <- t.slope_diff.(i_lo) +. 1.;
      t.slope_diff.(i_full) <- t.slope_diff.(i_full) -. 1.;
      t.const_diff.(i_lo) <- t.const_diff.(i_lo) +. (b -. ea);
      t.const_diff.(i_full) <- t.const_diff.(i_full) -. (b -. ea)
    end;
    t.full_diff.(i_full) <- t.full_diff.(i_full) +. (b -. a);
    t.inf_mass <- t.inf_mass +. (b -. a)
  end

let add_pair t ~t_start ~t_end (descriptors : Ld_ea.t array) =
  if t_start > t_end then invalid_arg "Delay_cdf.add_pair: reversed window";
  t.total <- t.total +. (t_end -. t_start);
  let prev_ld = ref neg_infinity in
  Array.iter
    (fun (p : Ld_ea.t) ->
      let a = Float.max t_start !prev_ld in
      let b = Float.min t_end p.ld in
      add_segment t ~a ~b ~ea:p.ea;
      prev_ld := p.ld)
    descriptors

let success t =
  let n = Array.length t.grid_ in
  let out = Array.make n 0. in
  let slope = ref 0. and const = ref 0. and full = ref 0. in
  for i = 0 to n - 1 do
    slope := !slope +. t.slope_diff.(i);
    const := !const +. t.const_diff.(i);
    full := !full +. t.full_diff.(i);
    let mass = (!slope *. t.grid_.(i)) +. !const +. !full in
    out.(i) <- (if t.total > 0. then mass /. t.total else 0.)
  done;
  out

let success_inf t = if t.total > 0. then t.inf_mass /. t.total else 0.
let total_mass t = t.total

let merge_into ~dst src =
  if dst.grid_ <> src.grid_ then invalid_arg "Delay_cdf.merge_into: different grids";
  let add a b = Array.iteri (fun i v -> a.(i) <- a.(i) +. v) b in
  add dst.slope_diff src.slope_diff;
  add dst.const_diff src.const_diff;
  add dst.full_diff src.full_diff;
  dst.inf_mass <- dst.inf_mass +. src.inf_mass;
  dst.total <- dst.total +. src.total

type curves = {
  grid : float array;
  hop_success : float array array;
  hop_success_inf : float array;
  flood_success : float array;
  flood_success_inf : float;
  max_rounds_used : int;
}

(* Accumulate the per-hop and flooding curves for one batch of sources.
   Self-contained so that batches can run on separate domains: the only
   shared value is the (frozen) trace. *)
let compute_batch ~max_hops ~budget_grid ~is_dest ~windows trace sources =
  let hop_accs = Array.init max_hops (fun _ -> create ~grid:budget_grid) in
  let flood_acc = create ~grid:budget_grid in
  let max_rounds_used = ref 0 in
  let add_frontiers acc source frontiers =
    Array.iteri
      (fun dest frontier ->
        if dest <> source && is_dest.(dest) then begin
          let snapshot = Frontier.to_array frontier in
          List.iter
            (fun (t_start, t_end) -> add_pair acc ~t_start ~t_end snapshot)
            windows
        end)
      frontiers
  in
  List.iter
    (fun source ->
      let on_round (info : Journey.round_info) =
        if info.hop <= max_hops then add_frontiers hop_accs.(info.hop - 1) source info.frontiers
      in
      let frontiers, rounds = Journey.run ~on_round trace ~source in
      max_rounds_used := max !max_rounds_used rounds;
      for k = rounds + 1 to max_hops do
        add_frontiers hop_accs.(k - 1) source frontiers
      done;
      add_frontiers flood_acc source frontiers)
    sources;
  (hop_accs, flood_acc, !max_rounds_used)

let split_batches k l =
  let batches = Array.make k [] in
  List.iteri (fun i x -> batches.(i mod k) <- x :: batches.(i mod k)) l;
  Array.to_list batches |> List.filter (fun b -> b <> [])

let compute ?(max_hops = 10) ?sources ?dests ?grid:(budget_grid = Omn_stats.Grid.delay_default)
    ?(domains = 1) ?windows trace =
  if max_hops < 1 then invalid_arg "Delay_cdf.compute: max_hops < 1";
  if domains < 1 then invalid_arg "Delay_cdf.compute: domains < 1";
  let windows =
    match windows with
    | None -> [ (Trace.t_start trace, Trace.t_end trace) ]
    | Some [] -> invalid_arg "Delay_cdf.compute: empty window list"
    | Some ws ->
      List.iter (fun (a, b) -> if a > b then invalid_arg "Delay_cdf.compute: reversed window") ws;
      ws
  in
  let n = Trace.n_nodes trace in
  let sources = Option.value sources ~default:(List.init n (fun i -> i)) in
  let is_dest =
    match dests with
    | None -> Array.make n true
    | Some ds ->
      let mask = Array.make n false in
      List.iter (fun d -> mask.(d) <- true) ds;
      mask
  in
  let results =
    if domains = 1 || List.length sources < 2 then
      [ compute_batch ~max_hops ~budget_grid ~is_dest ~windows trace sources ]
    else begin
      (* Force the lazily built adjacency index before sharing the trace
         across domains. *)
      if n > 0 then ignore (Trace.node_contacts trace 0);
      split_batches domains sources
      |> List.map (fun batch ->
             Domain.spawn (fun () ->
                 compute_batch ~max_hops ~budget_grid ~is_dest ~windows trace batch))
      |> List.map Domain.join
    end
  in
  let hop_accs, flood_acc, max_rounds_used =
    match results with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun (hops, flood, rounds) (hops', flood', rounds') ->
          Array.iteri (fun i acc -> merge_into ~dst:acc hops'.(i)) hops;
          merge_into ~dst:flood flood';
          (hops, flood, max rounds rounds'))
        first rest
  in
  {
    grid = Array.copy budget_grid;
    hop_success = Array.map success hop_accs;
    hop_success_inf = Array.map success_inf hop_accs;
    flood_success = success flood_acc;
    flood_success_inf = success_inf flood_acc;
    max_rounds_used;
  }
