module Trace = Omn_temporal.Trace
module Pool = Omn_parallel.Pool
module Chunk = Omn_parallel.Chunk
module Metrics = Omn_obs.Metrics
module Timeline = Omn_obs.Timeline
module Supervise = Omn_resilience.Supervise

let m_sources = Metrics.counter "delay_cdf.sources_done"
let m_pairs = Metrics.counter "delay_cdf.pairs_done"
let m_chunk_s = Metrics.histogram "delay_cdf.chunk_seconds"
let m_ckpt_s = Metrics.histogram "delay_cdf.checkpoint_seconds"
let m_ckpt_fallback = Metrics.counter "delay_cdf.ckpt_fallbacks"
let m_quarantined = Metrics.counter "delay_cdf.sources_quarantined"

type t = {
  grid_ : float array;
  slope_diff : float array;  (* length n+1: coefficient of d on [i_lo, i_full) *)
  const_diff : float array;  (* constant part on the same range *)
  full_diff : float array;   (* saturated contribution from i_full on *)
  mutable inf_mass : float;
  mutable total : float;
}

let create ~grid =
  let n = Array.length grid in
  if n = 0 then invalid_arg "Delay_cdf.create: empty grid";
  for i = 0 to n - 1 do
    if grid.(i) < 0. || Float.is_nan grid.(i) then invalid_arg "Delay_cdf.create: negative budget";
    if i > 0 && grid.(i) < grid.(i - 1) then invalid_arg "Delay_cdf.create: grid not ascending"
  done;
  {
    grid_ = Array.copy grid;
    slope_diff = Array.make (n + 1) 0.;
    const_diff = Array.make (n + 1) 0.;
    full_diff = Array.make (n + 1) 0.;
    inf_mass = 0.;
    total = 0.;
  }

let grid t = Array.copy t.grid_

(* First grid index with grid.(i) >= x, or n. *)
let lower t x =
  let n = Array.length t.grid_ in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.grid_.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

(* One creation-time segment (a, b] governed by arrival [ea]: success
   measure at budget d is clamp(b - max(a, ea - d), 0, b - a) — zero up
   to d = ea - b, then (b - ea) + d, then saturated at b - a. *)
let add_segment t ~a ~b ~ea =
  if b > a then begin
    let i_lo = lower t (ea -. b) in
    let i_full = lower t (ea -. a) in
    if i_full > i_lo then begin
      t.slope_diff.(i_lo) <- t.slope_diff.(i_lo) +. 1.;
      t.slope_diff.(i_full) <- t.slope_diff.(i_full) -. 1.;
      t.const_diff.(i_lo) <- t.const_diff.(i_lo) +. (b -. ea);
      t.const_diff.(i_full) <- t.const_diff.(i_full) -. (b -. ea)
    end;
    t.full_diff.(i_full) <- t.full_diff.(i_full) +. (b -. a);
    t.inf_mass <- t.inf_mass +. (b -. a)
  end

let add_pair t ~t_start ~t_end (descriptors : Ld_ea.t array) =
  if t_start > t_end then invalid_arg "Delay_cdf.add_pair: reversed window";
  t.total <- t.total +. (t_end -. t_start);
  let prev_ld = ref neg_infinity in
  Array.iter
    (fun (p : Ld_ea.t) ->
      let a = Float.max t_start !prev_ld in
      let b = Float.min t_end p.ld in
      add_segment t ~a ~b ~ea:p.ea;
      prev_ld := p.ld)
    descriptors

(* [add_pair] off a live frontier: identical float operations in the
   identical order, minus the [Frontier.to_array] descriptor snapshot —
   the accumulation loop of [compute_batch] reads the frontier's SoA
   storage in place. *)
let add_pair_frontier t ~t_start ~t_end frontier =
  if t_start > t_end then invalid_arg "Delay_cdf.add_pair_frontier: reversed window";
  t.total <- t.total +. (t_end -. t_start);
  let n = Frontier.size frontier in
  let lds = Frontier.ld_arr frontier and eas = Frontier.ea_arr frontier in
  let prev_ld = ref neg_infinity in
  for i = 0 to n - 1 do
    let ld = lds.(i) in
    let a = Float.max t_start !prev_ld in
    let b = Float.min t_end ld in
    add_segment t ~a ~b ~ea:eas.(i);
    prev_ld := ld
  done

let success t =
  let n = Array.length t.grid_ in
  let out = Array.make n 0. in
  let slope = ref 0. and const = ref 0. and full = ref 0. in
  for i = 0 to n - 1 do
    slope := !slope +. t.slope_diff.(i);
    const := !const +. t.const_diff.(i);
    full := !full +. t.full_diff.(i);
    let mass = (!slope *. t.grid_.(i)) +. !const +. !full in
    out.(i) <- (if t.total > 0. then mass /. t.total else 0.)
  done;
  out

let success_inf t = if t.total > 0. then t.inf_mass /. t.total else 0.
let total_mass t = t.total

let merge_into ~dst src =
  if dst.grid_ <> src.grid_ then invalid_arg "Delay_cdf.merge_into: different grids";
  let add a b = Array.iteri (fun i v -> a.(i) <- a.(i) +. v) b in
  add dst.slope_diff src.slope_diff;
  add dst.const_diff src.const_diff;
  add dst.full_diff src.full_diff;
  dst.inf_mass <- dst.inf_mass +. src.inf_mass;
  dst.total <- dst.total +. src.total

type curves = {
  grid : float array;
  hop_success : float array array;
  hop_success_inf : float array;
  flood_success : float array;
  flood_success_inf : float;
  max_rounds_used : int;
}

(* Accumulate the per-hop and flooding curves for one batch of sources.
   Self-contained so that batches can run on separate domains: the only
   shared value is the (frozen) trace. *)
let compute_batch ~max_hops ~budget_grid ~is_dest ~windows trace sources =
  let hop_accs = Array.init max_hops (fun _ -> create ~grid:budget_grid) in
  let flood_acc = create ~grid:budget_grid in
  let max_rounds_used = ref 0 in
  let n_dest_total = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 is_dest in
  let add_frontiers acc source frontiers =
    Array.iteri
      (fun dest frontier ->
        if dest <> source && is_dest.(dest) then
          List.iter
            (fun (t_start, t_end) -> add_pair_frontier acc ~t_start ~t_end frontier)
            windows)
      frontiers
  in
  List.iter
    (fun source ->
      let on_round (info : Journey.round_info) =
        if info.hop <= max_hops then add_frontiers hop_accs.(info.hop - 1) source info.frontiers
      in
      let frontiers, rounds = Journey.run ~on_round trace ~source in
      max_rounds_used := max !max_rounds_used rounds;
      for k = rounds + 1 to max_hops do
        add_frontiers hop_accs.(k - 1) source frontiers
      done;
      add_frontiers flood_acc source frontiers;
      Metrics.incr m_sources;
      Metrics.add m_pairs (n_dest_total - if is_dest.(source) then 1 else 0))
    sources;
  (hop_accs, flood_acc, !max_rounds_used)

(* Fan out one task per source and merge the per-source accumulators in
   source order. The task partition and the merge order are independent
   of the domain count, and [Pool.run] returns results in input order,
   so the curves are bit-identical for every [domains] (including 1):
   parallelism changes wall-clock time only.

   With [supervise], every per-source task runs under
   [Omn_resilience.Supervise] (bounded retries, deadlines, quarantine).
   Quarantined sources are skipped at merge time and returned as typed
   failures; the surviving merges are exactly the sequence a fault-free
   run restricted to the surviving sources would perform, so successful
   results stay bit-identical. *)
let accumulate_sources ?supervise ?pool ~domains ~max_hops ~budget_grid ~is_dest ~windows
    ~into:(hop_accs, flood_acc, rounds) trace sources =
  let per_source source = compute_batch ~max_hops ~budget_grid ~is_dest ~windows trace [ source ] in
  let merge (hops', flood', rounds') =
    Array.iteri (fun i acc -> merge_into ~dst:hop_accs.(i) acc) hops';
    merge_into ~dst:flood_acc flood';
    rounds := max !rounds rounds'
  in
  match supervise with
  | None ->
    Array.iter merge (Pool.run ?pool ~domains per_source (Array.of_list sources));
    []
  | Some policy ->
    let results =
      Supervise.map ?pool ~domains ~id:(fun s -> s) policy per_source (Array.of_list sources)
    in
    Array.iter (function Ok r -> merge r | Error (_ : Supervise.failure) -> ()) results;
    let failed = Supervise.failures results in
    Metrics.add m_quarantined (List.length failed);
    failed

(* --- per-source partials (the distributed-merge building block) ---

   A [partial] is the contribution of one batch of sources to the final
   curves, exactly as [compute_batch] produces it. The sharded driver
   ([Omn_shard]) computes partials on worker processes, ships them as
   Marshal payloads, and merges them on the coordinator with [Merger] in
   the same slot order the single-process driver uses — [merge_into] is
   plain float addition in an identical sequence, so the result is
   bit-identical at any worker count. *)

type partial = { p_hops : t array; p_flood : t; p_rounds : int }

let partial_magic = "omn-partial 1\n"

let source_partial ?(max_hops = 10) ?dests ?grid:(budget_grid = Omn_stats.Grid.delay_default)
    ?windows trace source =
  if max_hops < 1 then invalid_arg "Delay_cdf.source_partial: max_hops < 1";
  let windows =
    match windows with
    | None -> [ (Trace.t_start trace, Trace.t_end trace) ]
    | Some [] -> invalid_arg "Delay_cdf.source_partial: empty window list"
    | Some ws -> ws
  in
  let n = Trace.n_nodes trace in
  if source < 0 || source >= n then invalid_arg "Delay_cdf.source_partial: source out of range";
  let is_dest =
    match dests with
    | None -> Array.make n true
    | Some ds ->
      let mask = Array.make n false in
      List.iter (fun d -> mask.(d) <- true) ds;
      mask
  in
  let p_hops, p_flood, p_rounds =
    compute_batch ~max_hops ~budget_grid ~is_dest ~windows trace [ source ]
  in
  { p_hops; p_flood; p_rounds }

(* Marshal is safe here: both ends run the same binary (the coordinator
   spawns its own executable as workers) and the magic prefix rejects
   frames from anything else. Floats round-trip bit-exactly. *)
let partial_to_string p = partial_magic ^ Marshal.to_string p []

let partial_of_string s =
  let m = String.length partial_magic in
  if String.length s < m || String.sub s 0 m <> partial_magic then
    Error "not an omn-partial payload"
  else
    match (Marshal.from_string s m : partial) with
    | p -> Ok p
    | exception _ -> Error "unreadable omn-partial payload"

type merger = {
  mg_hops : t array;
  mg_flood : t;
  mutable mg_rounds : int;
  mg_grid : float array;
}

let merger_create ?(max_hops = 10) ?grid:(budget_grid = Omn_stats.Grid.delay_default) () =
  if max_hops < 1 then invalid_arg "Delay_cdf.merger_create: max_hops < 1";
  {
    mg_hops = Array.init max_hops (fun _ -> create ~grid:budget_grid);
    mg_flood = create ~grid:budget_grid;
    mg_rounds = 0;
    mg_grid = budget_grid;
  }

let merger_add m p =
  if Array.length p.p_hops <> Array.length m.mg_hops then
    invalid_arg "Delay_cdf.merger_add: max_hops mismatch";
  Array.iteri (fun i acc -> merge_into ~dst:m.mg_hops.(i) acc) p.p_hops;
  merge_into ~dst:m.mg_flood p.p_flood;
  m.mg_rounds <- max m.mg_rounds p.p_rounds

let merger_curves m =
  {
    grid = Array.copy m.mg_grid;
    hop_success = Array.map success m.mg_hops;
    hop_success_inf = Array.map success_inf m.mg_hops;
    flood_success = success m.mg_flood;
    flood_success_inf = success_inf m.mg_flood;
    max_rounds_used = m.mg_rounds;
  }

let compute ?(max_hops = 10) ?sources ?dests ?grid:(budget_grid = Omn_stats.Grid.delay_default)
    ?pool ?(domains = 1) ?windows trace =
  if max_hops < 1 then invalid_arg "Delay_cdf.compute: max_hops < 1";
  if domains < 1 then invalid_arg "Delay_cdf.compute: domains < 1";
  Omn_obs.Span.with_ ~name:"delay_cdf.compute" @@ fun () ->
  let windows =
    match windows with
    | None -> [ (Trace.t_start trace, Trace.t_end trace) ]
    | Some [] -> invalid_arg "Delay_cdf.compute: empty window list"
    | Some ws ->
      List.iter (fun (a, b) -> if a > b then invalid_arg "Delay_cdf.compute: reversed window") ws;
      ws
  in
  let n = Trace.n_nodes trace in
  let sources = Option.value sources ~default:(List.init n (fun i -> i)) in
  let is_dest =
    match dests with
    | None -> Array.make n true
    | Some ds ->
      let mask = Array.make n false in
      List.iter (fun d -> mask.(d) <- true) ds;
      mask
  in
  let hop_accs = Array.init max_hops (fun _ -> create ~grid:budget_grid) in
  let flood_acc = create ~grid:budget_grid in
  let rounds = ref 0 in
  let (_ : Supervise.failure list) =
    accumulate_sources ?pool ~domains ~max_hops ~budget_grid ~is_dest ~windows
      ~into:(hop_accs, flood_acc, rounds) trace sources
  in
  {
    grid = Array.copy budget_grid;
    hop_success = Array.map success hop_accs;
    hop_success_inf = Array.map success_inf hop_accs;
    flood_success = success flood_acc;
    flood_success_inf = success_inf flood_acc;
    max_rounds_used = !rounds;
  }

(* --- checkpointed / budgeted driver --- *)

module Err = Omn_robust.Err
module Checkpoint = Omn_robust.Checkpoint

type progress = {
  sources_done : int;
  sources_total : int;
  partial : bool;
  degraded : Supervise.failure list;
  ckpt_fallback : bool;
}

(* [snap_degraded] stores failures as plain tuples so the Marshal layout
   does not depend on the [Supervise.failure] record's representation. *)
type snapshot = {
  snap_fingerprint : string;
  snap_done : int;
  snap_hops : t array;
  snap_flood : t;
  snap_rounds : int;
  snap_degraded : (int * int * string) list;
}

(* v3: CRC-32-framed payload with generation rotation (see
   [Omn_robust.Checkpoint]) and a quarantined-source list in the
   snapshot. v2 files are rejected by the magic mismatch. *)
let ckpt_magic = "omn-ckpt 3\n"

let save_checkpoint path snap =
  Checkpoint.save ~magic:ckpt_magic ~path (Marshal.to_string snap [])

let decode_snapshot ~fp path payload =
  match (Marshal.from_string payload 0 : snapshot) with
  | exception _ -> Error (Err.v ~file:path Err.Checkpoint "unreadable payload")
  | snap ->
    if snap.snap_fingerprint <> fp then
      Error
        (Err.v ~file:path Err.Checkpoint
           "checkpoint was built for a different trace or parameters")
    else Ok snap

(* Current generation first; any failure (corruption, bad fingerprint)
   falls back to the rotated previous generation. *)
let load_checkpoint ~fp path =
  Checkpoint.load ~magic:ckpt_magic ~validate:(decode_snapshot ~fp path) path

(* Reorder sources by a stride coprime to their count so that every
   prefix of the order is a near-uniform sample of the whole list —
   that is what makes a budget-truncated run a fair subsample. *)
let uniform_order sources =
  let arr = Array.of_list sources in
  let n = Array.length arr in
  if n <= 2 then sources
  else begin
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    let s = ref (max 1 (int_of_float (0.618 *. float_of_int n))) in
    while gcd n !s <> 1 do
      incr s
    done;
    List.init n (fun i -> arr.(i * !s mod n))
  end

let fingerprint ~max_hops ~budget_grid ~is_dest ~windows ~order ~chunk trace =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( Trace.name trace, Trace.n_nodes trace, Trace.t_start trace, Trace.t_end trace,
            Trace.contacts trace, max_hops, budget_grid, is_dest, windows, order, chunk )
          []))

let compute_resumable ?(max_hops = 10) ?sources ?dests
    ?grid:(budget_grid = Omn_stats.Grid.delay_default) ?pool ?(domains = 1) ?windows ?checkpoint
    ?(resume = false) ?(checkpoint_every = 8) ?budget_seconds ?(clock = Sys.time) ?report
    ?supervise trace =
  try
    if max_hops < 1 then Err.get_exn (Err.error Err.Usage "compute_resumable: max_hops < 1");
    if domains < 1 then Err.get_exn (Err.error Err.Usage "compute_resumable: domains < 1");
    if checkpoint_every < 1 then
      Err.get_exn (Err.error Err.Usage "compute_resumable: checkpoint_every < 1");
    (match budget_seconds with
    | Some b when b < 0. ->
      Err.get_exn (Err.error Err.Usage "compute_resumable: negative budget")
    | _ -> ());
    let windows =
      match windows with
      | None -> [ (Trace.t_start trace, Trace.t_end trace) ]
      | Some [] -> Err.get_exn (Err.error Err.Usage "compute_resumable: empty window list")
      | Some ws ->
        List.iter
          (fun (a, b) ->
            if a > b then
              Err.get_exn (Err.error Err.Usage "compute_resumable: reversed window"))
          ws;
        ws
    in
    let n = Trace.n_nodes trace in
    let sources = Option.value sources ~default:(List.init n (fun i -> i)) in
    let is_dest =
      match dests with
      | None -> Array.make n true
      | Some ds ->
        let mask = Array.make n false in
        List.iter (fun d -> mask.(d) <- true) ds;
        mask
    in
    let order = uniform_order sources in
    let total = List.length order in
    let fp =
      fingerprint ~max_hops ~budget_grid ~is_dest ~windows ~order ~chunk:checkpoint_every
        trace
    in
    let loaded =
      match checkpoint with
      | Some path
        when resume
             && (Sys.file_exists path || Sys.file_exists (Checkpoint.prev_path path)) -> (
        match load_checkpoint ~fp path with
        | Error e -> Error e
        | Ok (snap, gen) ->
          let fallback = gen = Checkpoint.Previous in
          if fallback then begin
            Metrics.incr m_ckpt_fallback;
            Timeline.record (Ckpt_fallback { path })
          end;
          Ok
            ( snap.snap_hops, snap.snap_flood, snap.snap_rounds, snap.snap_done,
              snap.snap_degraded, fallback ))
      | _ ->
        Ok
          ( Array.init max_hops (fun _ -> create ~grid:budget_grid),
            create ~grid:budget_grid, 0, 0, [], false )
    in
    match loaded with
    | Error e -> Error e
    | Ok (hop_accs, flood_acc, rounds0, done0, degraded0, ckpt_fallback) ->
      (* One pool for the whole run, reused chunk after chunk (spawning
         per chunk is what the old driver did). Borrowed pools are left
         to their owner; an owned one is shut down on every exit path. *)
      let owned = if pool = None && domains > 1 then Some (Pool.create ~domains ()) else None in
      let pool = match pool with Some _ as p -> p | None -> owned in
      Fun.protect
        ~finally:(fun () -> Option.iter Pool.shutdown owned)
      @@ fun () ->
      Omn_obs.Span.with_ ~name:"delay_cdf.compute_resumable" @@ fun () ->
      let t0 = clock () in
      (* Clock reads for chunk/checkpoint latency happen only when
         metrics or the timeline are on; the disabled path is
         timing-free. *)
      let timed = Metrics.enabled () || Timeline.enabled () in
      let done_count = ref done0 and rounds = ref rounds0 in
      let degraded = ref (List.map Supervise.failure_of_tuple degraded0) in
      let rec loop remaining =
        match remaining with
        | [] -> ()
        | _ ->
          let chunk, rest = Chunk.split_at checkpoint_every remaining in
          let chunk_index = !done_count / checkpoint_every in
          let t_chunk = if timed then Unix.gettimeofday () else 0. in
          let failed =
            accumulate_sources ?supervise ?pool ~domains ~max_hops ~budget_grid ~is_dest
              ~windows ~into:(hop_accs, flood_acc, rounds) trace chunk
          in
          degraded := !degraded @ failed;
          if timed then begin
            let t1 = Unix.gettimeofday () in
            Metrics.observe m_chunk_s (t1 -. t_chunk);
            Timeline.record ~ts:t1
              (Chunk { index = chunk_index; items = List.length chunk; start = t_chunk });
            if Timeline.enabled () then begin
              let gc = Gc.quick_stat () in
              Timeline.record ~ts:t1
                (Gc_sample
                   {
                     minor = gc.Gc.minor_collections;
                     major = gc.Gc.major_collections;
                     heap_words = gc.Gc.heap_words;
                   })
            end
          end;
          done_count := !done_count + List.length chunk;
          (match checkpoint with
          | Some path ->
            let t_ck = if timed then Unix.gettimeofday () else 0. in
            save_checkpoint path
              {
                snap_fingerprint = fp;
                snap_done = !done_count;
                snap_hops = hop_accs;
                snap_flood = flood_acc;
                snap_rounds = !rounds;
                snap_degraded = List.map Supervise.failure_to_tuple !degraded;
              };
            if timed then begin
              let t1 = Unix.gettimeofday () in
              Metrics.observe m_ckpt_s (t1 -. t_ck);
              Timeline.record ~ts:t1 (Ckpt_write { path; seconds = t1 -. t_ck })
            end
          | None -> ());
          (match report with
          | Some r ->
            r ~done_:!done_count ~total ~degraded:(List.length !degraded)
              ~fallback:ckpt_fallback
          | None -> ());
          let out_of_budget =
            match budget_seconds with Some b -> clock () -. t0 >= b | None -> false
          in
          if not out_of_budget then loop rest
      in
      loop (Chunk.drop done0 order);
      let partial = !done_count < total in
      if not partial then Option.iter Checkpoint.remove checkpoint;
      Ok
        ( {
            grid = Array.copy budget_grid;
            hop_success = Array.map success hop_accs;
            hop_success_inf = Array.map success_inf hop_accs;
            flood_success = success flood_acc;
            flood_success_inf = success_inf flood_acc;
            max_rounds_used = !rounds;
          },
          {
            sources_done = !done_count;
            sources_total = total;
            partial;
            degraded = !degraded;
            ckpt_fallback;
          } )
  with
  | Err.Error e -> Error e
  | Invalid_argument msg -> Error (Err.v Err.Usage msg)
  | Sys_error msg -> Error (Err.v Err.Io msg)
  | Failure msg ->
    (* A source task failed with supervision off (or quarantine
       disabled): fail the whole run with a typed error rather than
       leaking the worker's exception through the result API. *)
    Error (Err.v Err.Compute ("source task failed: " ^ msg))
