(** Delivery functions (Fig. 5 / Fig. 8 of the paper).

    A delivery function for one (source, destination) pair maps the
    creation time [t] of a message to the earliest time any valid contact
    sequence can deliver it. It is determined by the pair's Pareto
    frontier: [del t = max t ea_j] where [j] is the first descriptor with
    [ld_j >= t], and [+inf] after the last descriptor. This module works
    on immutable frontier snapshots ({!Frontier.to_array}). *)

type t

val of_descriptors : Ld_ea.t array -> t
(** The array must be ascending in both coordinates (as produced by
    {!Frontier.to_array}); raises [Invalid_argument] otherwise. *)

val descriptors : t -> Ld_ea.t array

val del : t -> float -> float
(** Optimal delivery time for a message created at [t] (Eq. 3). *)

val delay : t -> float -> float
(** [del t -. t]; [infinity] when undeliverable. *)

val n_optimal_paths : t -> int
(** Number of descriptors = number of distinct optimal paths the paper
    counts when discussing Fig. 8. *)

val breakpoints : t -> float list
(** Ascending creation times at which the delivery function changes
    shape: every [ld] and every [ea]. *)

val success_measure : t -> t_start:float -> t_end:float -> budget:float -> float
(** Lebesgue measure of creation times [t] in [[t_start, t_end]] whose
    optimal delay is [<= budget]. [budget] may be [infinity] (measures
    all deliverable creation times). Exact — no sampling. *)

val plot : t -> times:float array -> (float * float) array
(** Sampled [(t, del t)] pairs for pretty-printing experiments. *)
