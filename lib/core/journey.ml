module Trace = Omn_temporal.Trace

type round_info = { hop : int; frontiers : Frontier.t array; changed : int }

type strategy = Semi_naive | Full_recompute

(* The round loop is written against the structure-of-arrays layers
   underneath it and allocates nothing per relaxation in the steady
   state:

   - the contact sweep reads the trace's time-indexed CSR mirror (four
     flat arrays in start order) instead of an array of boxed
     [Contact.t] records;
   - candidate descriptors travel as bare [ld]/[ea] floats straight
     into [Frontier.insert_pt] — no intermediate [Ld_ea.make];
   - each node owns two reusable scratch frontiers ([delta], holding
     the descriptors discovered last round, and [next], collecting this
     round's discoveries already Pareto-pruned), swapped and [clear]ed
     between rounds. The old driver accumulated per-round insertions in
     lists and re-pruned them through a throwaway [Frontier.create] per
     touched node per round; the scratch frontiers make that pruning
     incremental and allocation-free.

   Inserting a successful frontier candidate into [next] never fails:
   if any earlier fresh point dominated it, that point (or a dominator
   of it, transitively) would still be in the destination frontier and
   would have rejected the candidate there first. So [next.(v)] is
   exactly the Pareto antichain of the round's fresh points — the same
   delta the list-and-reprune driver produced, in the same sorted
   order. *)
let run_internal ?(max_rounds = 1024) ?(strategy = Semi_naive) ?on_round ?stop_after trace
    ~source =
  let n = Trace.n_nodes trace in
  if source < 0 || source >= n then invalid_arg "Journey.run: bad source";
  let frontiers = Array.init n (fun _ -> Frontier.create ()) in
  let _ = Frontier.insert frontiers.(source) Ld_ea.identity in
  let delta = ref (Array.init n (fun _ -> Frontier.create ())) in
  let next = ref (Array.init n (fun _ -> Frontier.create ())) in
  Frontier.insert_scratch !delta.(source) ~ld:Ld_ea.identity.ld ~ea:Ld_ea.identity.ea;
  (* Touched-node stacks (this round's and next round's), reused across
     rounds; [next.(v)]'s emptiness dedups membership. *)
  let touched = ref (Array.make n 0) and touched_n = ref 1 in
  let next_touched = ref (Array.make n 0) and next_touched_n = ref 0 in
  !touched.(0) <- source;
  let csr = Trace.time_csr trace in
  let cbeg = csr.Trace.csr_beg and cend = csr.Trace.csr_end in
  let m = Array.length csr.Trace.csr_a in
  let changed = ref 0 in
  (* Without flambda, every float crossing a function boundary is boxed,
     so the sweep passes only the contact index (an immediate) and the
     candidate coordinates are re-read from / kept in unboxed float
     positions; [insert_cand] is the one place a candidate becomes a
     pair of boxed arguments, once per emission. Both closures are
     allocated once per run, not per contact. *)
  let insert_cand to_node ld ea =
    if Frontier.insert_pt frontiers.(to_node) ~ld ~ea then begin
      let nxt = !next.(to_node) in
      if Frontier.is_empty nxt then begin
        !next_touched.(!next_touched_n) <- to_node;
        incr next_touched_n
      end;
      Frontier.insert_scratch nxt ~ld ~ea;
      incr changed
    end
  in
  (* Extend the delta of [from_node] by contact [ci] towards [to_node]:
     the candidate case analysis of the .mli header, inlined over the
     delta's float arrays. *)
  let extend from_node to_node ci =
    let d = !delta.(from_node) in
    let dn = Frontier.size d in
    if dn > 0 then begin
      let tb = cbeg.(ci) and te = cend.(ci) in
      let dld = Frontier.ld_arr d and dea = Frontier.ea_arr d in
      (* i = first delta index with ld >= te. *)
      let i =
        let lo = ref 0 and hi = ref dn in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if dld.(mid) >= te then hi := mid else lo := mid + 1
        done;
        !lo
      in
      if i < dn && dea.(i) <= te then
        insert_cand to_node te (if dea.(i) >= tb then dea.(i) else tb);
      (* j = last delta index with ea <= tb. *)
      let j =
        let lo = ref 0 and hi = ref dn in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if dea.(mid) > tb then hi := mid else lo := mid + 1
        done;
        !lo - 1
      in
      if j >= 0 && dld.(j) < te then insert_cand to_node dld.(j) tb;
      (* every delta point with tb < ea <= te and ld < te, verbatim *)
      let hi =
        let lo = ref 0 and hi = ref dn in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if dea.(mid) > te then hi := mid else lo := mid + 1
        done;
        if !lo < i then !lo else i
      in
      for k = j + 1 to hi - 1 do
        insert_cand to_node dld.(k) dea.(k)
      done
    end
  in
  let do_round () =
    changed := 0;
    next_touched_n := 0;
    for ci = 0 to m - 1 do
      extend csr.Trace.csr_a.(ci) csr.Trace.csr_b.(ci) ci;
      extend csr.Trace.csr_b.(ci) csr.Trace.csr_a.(ci) ci
    done;
    (match strategy with
    | Semi_naive ->
      (* Clear the consumed deltas, then swap: this round's pruned
         discoveries become next round's deltas, and the cleared arrays
         stand by to collect the round after. *)
      for idx = 0 to !touched_n - 1 do
        Frontier.clear !delta.(!touched.(idx))
      done;
      let d = !delta in
      delta := !next;
      next := d;
      let t = !touched in
      touched := !next_touched;
      next_touched := t;
      touched_n := !next_touched_n
    | Full_recompute ->
      (* Ablation: re-extend every frontier point each round instead of
         only the new ones. Same results, no convergence shortcut. *)
      for idx = 0 to !next_touched_n - 1 do
        Frontier.clear !next.(!next_touched.(idx))
      done;
      for idx = 0 to !touched_n - 1 do
        Frontier.clear !delta.(!touched.(idx))
      done;
      touched_n := 0;
      for v = 0 to n - 1 do
        if not (Frontier.is_empty frontiers.(v)) then begin
          Frontier.copy_into ~src:frontiers.(v) ~dst:!delta.(v);
          !touched.(!touched_n) <- v;
          incr touched_n
        end
      done);
    !changed
  in
  let rec loop round =
    if round > max_rounds then failwith "Journey.run: no fixpoint within max_rounds";
    let changed = do_round () in
    if changed = 0 then round - 1
    else begin
      (match on_round with
      | Some f -> f { hop = round; frontiers; changed }
      | None -> ());
      match stop_after with
      | Some k when round >= k -> round
      | _ -> loop (round + 1)
    end
  in
  let rounds = loop 1 in
  (frontiers, rounds)

let run ?max_rounds ?strategy ?on_round trace ~source =
  run_internal ?max_rounds ?strategy ?on_round trace ~source

let frontiers_at_hops trace ~source ~max_hops =
  if max_hops < 0 then invalid_arg "Journey.frontiers_at_hops: negative bound";
  if max_hops = 0 then begin
    let frontiers = Array.init (Trace.n_nodes trace) (fun _ -> Frontier.create ()) in
    let _ = Frontier.insert frontiers.(source) Ld_ea.identity in
    frontiers
  end
  else fst (run_internal ~stop_after:max_hops trace ~source)

let delivery_to trace ~source ~dest ?max_hops () =
  let frontiers =
    match max_hops with
    | None -> fst (run trace ~source)
    | Some k -> frontiers_at_hops trace ~source ~max_hops:k
  in
  Delivery.of_descriptors (Frontier.to_array frontiers.(dest))
