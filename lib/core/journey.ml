module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

type round_info = { hop : int; frontiers : Frontier.t array; changed : int }

(* First index of [d] with ld >= x, or length. [d] is ascending in both
   coordinates (a sorted Pareto antichain). *)
let lower_ld (d : Ld_ea.t array) x =
  let lo = ref 0 and hi = ref (Array.length d) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.(mid).Ld_ea.ld >= x then hi := mid else lo := mid + 1
  done;
  !lo

(* First index of [d] with ea > x, or length. *)
let upper_ea (d : Ld_ea.t array) x =
  let lo = ref 0 and hi = ref (Array.length d) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.(mid).Ld_ea.ea > x then hi := mid else lo := mid + 1
  done;
  !lo

(* Undominated candidates from extending descriptors of [d] by a contact
   with interval [tb, te] (see .mli header for the case analysis). *)
let candidates (d : Ld_ea.t array) ~tb ~te emit =
  let len = Array.length d in
  let i = lower_ld d te in
  if i < len && d.(i).Ld_ea.ea <= te then
    emit (Ld_ea.make ~ld:te ~ea:(Float.max d.(i).Ld_ea.ea tb));
  let j = upper_ea d tb - 1 in
  if j >= 0 && d.(j).Ld_ea.ld < te then emit (Ld_ea.make ~ld:d.(j).Ld_ea.ld ~ea:tb);
  let hi = min (upper_ea d te) i in
  for k = j + 1 to hi - 1 do
    emit d.(k)
  done

type strategy = Semi_naive | Full_recompute

let run_internal ?(max_rounds = 1024) ?(strategy = Semi_naive) ?on_round ?stop_after trace
    ~source =
  let n = Trace.n_nodes trace in
  if source < 0 || source >= n then invalid_arg "Journey.run: bad source";
  let frontiers = Array.init n (fun _ -> Frontier.create ()) in
  let _ = Frontier.insert frontiers.(source) Ld_ea.identity in
  let delta = Array.make n [||] in
  delta.(source) <- [| Ld_ea.identity |];
  let contacts = Trace.contacts trace in
  let fresh = Array.make n [] in
  let touched = ref [ source ] in
  let do_round () =
    let changed = ref 0 in
    let next_touched = ref [] in
    let extend from_node to_node ~tb ~te =
      let d = delta.(from_node) in
      if Array.length d > 0 then
        candidates d ~tb ~te (fun p ->
            if Frontier.insert frontiers.(to_node) p then begin
              if fresh.(to_node) = [] then next_touched := to_node :: !next_touched;
              fresh.(to_node) <- p :: fresh.(to_node);
              incr changed
            end)
    in
    Array.iter
      (fun (c : Contact.t) ->
        extend c.a c.b ~tb:c.t_beg ~te:c.t_end;
        extend c.b c.a ~tb:c.t_beg ~te:c.t_end)
      contacts;
    (match strategy with
    | Semi_naive ->
      (* Reset old deltas, then Pareto-prune this round's insertions into
         bi-sorted arrays for the next round. *)
      List.iter (fun v -> delta.(v) <- [||]) !touched;
      List.iter
        (fun v ->
          let acc = Frontier.create () in
          List.iter (fun p -> ignore (Frontier.insert acc p)) fresh.(v);
          delta.(v) <- Frontier.to_array acc;
          fresh.(v) <- [])
        !next_touched;
      touched := !next_touched
    | Full_recompute ->
      (* Ablation: re-extend every frontier point each round instead of
         only the new ones. Same results, no convergence shortcut. *)
      List.iter (fun v -> fresh.(v) <- []) !next_touched;
      let all = ref [] in
      Array.iteri
        (fun v f ->
          if Frontier.is_empty f then delta.(v) <- [||]
          else begin
            delta.(v) <- Frontier.to_array f;
            all := v :: !all
          end)
        frontiers;
      touched := !all);
    !changed
  in
  let rec loop round =
    if round > max_rounds then failwith "Journey.run: no fixpoint within max_rounds";
    let changed = do_round () in
    if changed = 0 then round - 1
    else begin
      (match on_round with
      | Some f -> f { hop = round; frontiers; changed }
      | None -> ());
      match stop_after with
      | Some k when round >= k -> round
      | _ -> loop (round + 1)
    end
  in
  let rounds = loop 1 in
  (frontiers, rounds)

let run ?max_rounds ?strategy ?on_round trace ~source =
  run_internal ?max_rounds ?strategy ?on_round trace ~source

let frontiers_at_hops trace ~source ~max_hops =
  if max_hops < 0 then invalid_arg "Journey.frontiers_at_hops: negative bound";
  if max_hops = 0 then begin
    let frontiers = Array.init (Trace.n_nodes trace) (fun _ -> Frontier.create ()) in
    let _ = Frontier.insert frontiers.(source) Ld_ea.identity in
    frontiers
  end
  else fst (run_internal ~stop_after:max_hops trace ~source)

let delivery_to trace ~source ~dest ?max_hops () =
  let frontiers =
    match max_hops with
    | None -> fst (run trace ~source)
    | Some k -> frontiers_at_hops trace ~source ~max_hops:k
  in
  Delivery.of_descriptors (Frontier.to_array frontiers.(dest))
