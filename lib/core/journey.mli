(** Exhaustive computation of delay-optimal paths (§4.4 of the paper).

    For one source, [run] computes the Pareto frontier of (LD, EA)
    descriptors towards {e every} destination, for {e every} hop bound,
    in hop-indexed rounds:

    - round 1 holds the direct contacts;
    - round k+1 extends every descriptor discovered at round k by one
      contact, using the concatenation rule (fact (iv)), and inserts the
      results in the destinations' frontiers;
    - rounds stop at a fixpoint (no frontier changed), which the small
      diameter of opportunistic networks makes fast — or at [max_rounds].

    The rounds are {e semi-naive}: only descriptors newly inserted during
    the previous round are extended, which is sound because frontiers
    only improve (a candidate dominated once is dominated forever), and
    complete because optimal substructure holds under domination: if a
    sequence [s = s' . e] is optimal, any frontier descriptor dominating
    [s'] concatenates with [e] (its EA is no larger) and the compound
    dominates [s].

    Per contact and per round the candidate set is pruned before frontier
    insertion: from a bi-sorted delta [D] and a contact [[tb; te]], only
    (a) the first [P] in [D] with [ld >= te] (candidate [(te, max ea tb)]),
    (b) the last [P] with [ea <= tb] and [ld < te] (candidate [(ld, tb)]),
    (c) every [P] with [tb < ea <= te] and [ld < te] (candidate
    [(ld, ea)]) can be undominated, so a contact costs
    [O(log |D| + hits)] rather than [O(|D|)]. *)

type round_info = {
  hop : int;  (** the round just completed; descriptors use <= [hop] contacts *)
  frontiers : Frontier.t array;  (** per destination; index [source] holds the identity *)
  changed : int;  (** number of descriptors inserted during this round *)
}

type strategy =
  | Semi_naive
      (** extend only the descriptors discovered in the previous round —
          the algorithm described above (default) *)
  | Full_recompute
      (** ablation: re-extend every frontier descriptor each round; same
          results, cost grows with the whole frontier instead of the
          delta (see the timing bench) *)

val run :
  ?max_rounds:int ->
  ?strategy:strategy ->
  ?on_round:(round_info -> unit) ->
  Omn_temporal.Trace.t ->
  source:Omn_temporal.Node.t ->
  Frontier.t array * int
(** [run trace ~source] returns the fixpoint frontiers (delay-optimal
    paths of unbounded hop count) and the number of rounds executed.
    [on_round] fires after every round including the last (the fixpoint
    round, which has [changed = 0], is not reported as a round).
    [max_rounds] (default 1024) is a safety valve; reaching it without a
    fixpoint raises [Failure]. The frontiers handed to [on_round] are
    live views — snapshot with {!Frontier.to_array} or {!Frontier.copy}
    if kept. *)

val frontiers_at_hops :
  Omn_temporal.Trace.t -> source:Omn_temporal.Node.t -> max_hops:int -> Frontier.t array
(** Frontiers restricted to paths of at most [max_hops] contacts
    (runs [min max_hops fixpoint] rounds). *)

val delivery_to :
  Omn_temporal.Trace.t ->
  source:Omn_temporal.Node.t ->
  dest:Omn_temporal.Node.t ->
  ?max_hops:int ->
  unit ->
  Delivery.t
(** Convenience: the delivery function of one pair. *)
