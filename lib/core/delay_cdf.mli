(** Empirical success probability of optimal forwarding (Figs. 9–11).

    The paper evaluates, for a uniformly random (source, destination,
    message-creation time), the probability that flooding restricted to
    [k] hops delivers within a delay budget [d]. Because creation time
    ranges over a continuum, this is an integral, and the frontier
    representation makes it exact: the success measure of one pair is a
    sum of piecewise-linear-in-[d] segment contributions
    (see {!Delivery.success_measure}). The accumulator below aggregates
    those contributions over pairs onto a fixed budget grid in
    O(log |grid|) per frontier descriptor, using difference arrays. *)

type t

val create : grid:float array -> t
(** [grid]: ascending, non-negative delay budgets (seconds).
    Raises [Invalid_argument] otherwise. *)

val grid : t -> float array

val add_pair : t -> t_start:float -> t_end:float -> Ld_ea.t array -> unit
(** Accumulate one (source, destination) pair whose frontier snapshot is
    given, with creation times uniform on [[t_start, t_end]]. The pair
    contributes mass [t_end - t_start] to the denominator whether or not
    it ever succeeds. *)

val add_pair_frontier : t -> t_start:float -> t_end:float -> Frontier.t -> unit
(** {!add_pair} reading a live frontier's structure-of-arrays storage in
    place — same accumulation, same float-operation order (so results
    stay bit-identical), no descriptor snapshot. The whole-trace driver
    uses this on the hot path. *)

val success : t -> float array
(** [success t].(i) = empirical P(optimal delay <= grid.(i)). *)

val success_inf : t -> float
(** Empirical P(optimal delay < infinity) — the success rate of
    unrestricted flooding with unlimited time. *)

val total_mass : t -> float
(** Denominator accumulated so far (pairs x window length). *)

val merge_into : dst:t -> t -> unit
(** Fold another accumulator built on the {e same} grid into [dst] —
    accumulation distributes over pair partitions, which is what makes
    the parallel driver below possible. Raises [Invalid_argument] on
    grid mismatch. *)

(** {1 Whole-trace driver} *)

type curves = {
  grid : float array;
  hop_success : float array array;
      (** [hop_success.(k-1)] = success curve under hop bound [k],
          for k = 1 .. max_hops. *)
  hop_success_inf : float array;  (** same, at unlimited delay *)
  flood_success : float array;    (** success curve of unrestricted flooding *)
  flood_success_inf : float;
  max_rounds_used : int;  (** largest fixpoint round over all sources *)
}

val compute :
  ?max_hops:int ->
  ?sources:Omn_temporal.Node.t list ->
  ?dests:Omn_temporal.Node.t list ->
  ?grid:float array ->
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  ?windows:(float * float) list ->
  Omn_temporal.Trace.t ->
  curves
(** Runs {!Journey.run} from every source (default: all nodes; creation
    times uniform over the trace window; all ordered pairs with
    [source <> dest]) and aggregates per-hop-bound success curves.
    [dests] restricts which destinations count as observations — e.g.
    only the experimental devices of a trace that also records external
    ones. [max_hops] defaults to 10, [grid] to
    {!Omn_stats.Grid.delay_default}.

    Parallelism: [pool] runs the independent per-source journeys on a
    shared {!Omn_parallel.Pool.t}; otherwise [domains > 1] uses a
    temporary pool of that many OCaml domains. Either way the curves
    are {e bit-identical} to the sequential run: one task per source,
    per-source accumulators merged in source order, a partition and
    merge order that never depend on the domain count.

    [windows] restricts message-creation times to a union of intervals
    (e.g. day-time hours only, as in the paper's §5.3.1 aside) instead
    of the whole trace window. *)

(** {1 Per-source partials (distributed merge)}

    The sharded driver ([Omn_shard]) computes one {!partial} per source
    on worker processes, ships them as opaque payloads, and folds them
    into a {!merger} on the coordinator in slot order. Because
    {!merger_add} performs exactly the [merge_into] sequence the
    single-process drivers perform, a sharded run is bit-identical to a
    single-process run at any worker count. *)

type partial
(** One batch of sources' contribution to the final curves. *)

val source_partial :
  ?max_hops:int ->
  ?dests:Omn_temporal.Node.t list ->
  ?grid:float array ->
  ?windows:(float * float) list ->
  Omn_temporal.Trace.t ->
  Omn_temporal.Node.t ->
  partial
(** The contribution of one source, with the same defaults as
    {!compute}. Raises [Invalid_argument] on a bad source or
    parameters. *)

val partial_to_string : partial -> string
val partial_of_string : string -> (partial, string) result
(** Magic-prefixed Marshal payload — floats round-trip bit-exactly.
    Only payloads produced by the same binary are safe to decode; the
    magic rejects everything else cheaply. *)

type merger

val merger_create : ?max_hops:int -> ?grid:float array -> unit -> merger
(** Fresh accumulators, same defaults as {!compute}. *)

val merger_add : merger -> partial -> unit
(** Fold one partial in. Call in slot order — the merge sequence is
    what the bit-identity contract is defined over. Raises
    [Invalid_argument] on a [max_hops] mismatch. *)

val merger_curves : merger -> curves

(** {1 Checkpointed / budgeted driver}

    The long-run variant of {!compute} for multi-day traces: sources
    are processed in a deterministic stride order whose prefixes are
    near-uniform samples of the node set, in chunks of
    [checkpoint_every]; after every chunk the full accumulator state is
    written atomically (temp file + rename) to the checkpoint file, so
    a killed process loses at most one chunk of work. *)

type progress = {
  sources_done : int;
  sources_total : int;
  partial : bool;  (** true when the budget expired before all sources ran *)
  degraded : Omn_resilience.Supervise.failure list;
      (** sources quarantined by the [supervise] policy, in the order
          they were processed — empty for unsupervised runs *)
  ckpt_fallback : bool;
      (** true when resume found the current checkpoint generation
          corrupt (or rejected) and restarted from [*.ckpt.prev] *)
}

val uniform_order : Omn_temporal.Node.t list -> Omn_temporal.Node.t list
(** The deterministic stride order {!compute_resumable} processes its
    sources in: every prefix is a near-uniform sample of the whole
    list. Exposed so harnesses can reproduce a degraded run's merge
    sequence exactly — {!compute} over [uniform_order sources] minus
    the quarantined ones performs the identical [merge_into] calls. *)

val compute_resumable :
  ?max_hops:int ->
  ?sources:Omn_temporal.Node.t list ->
  ?dests:Omn_temporal.Node.t list ->
  ?grid:float array ->
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  ?windows:(float * float) list ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?checkpoint_every:int ->
  ?budget_seconds:float ->
  ?clock:(unit -> float) ->
  ?report:(done_:int -> total:int -> degraded:int -> fallback:bool -> unit) ->
  ?supervise:Omn_resilience.Supervise.policy ->
  Omn_temporal.Trace.t ->
  (curves * progress, Omn_robust.Err.t) result
(** Like {!compute} (same parallelism and determinism contract; when no
    [pool] is given and [domains > 1], one pool is created up front and
    reused across every chunk), plus:
    - [checkpoint]: write a CRC-32-framed checkpoint file after every
      chunk, rotating the previous generation to [*.prev]
      ({!Omn_robust.Checkpoint}); both generations are removed once
      the run completes;
    - [resume] (with [checkpoint]): load that file if it exists and
      continue from it. The checkpoint embeds a fingerprint of the
      trace and all parameters; resuming against a different trace or
      parameters is a [Checkpoint] error, as is a corrupt file — but
      when the {e previous} generation is still intact the run falls
      back to it automatically ([progress.ckpt_fallback = true]),
      re-doing at most one chunk. An uninterrupted run and a
      killed-and-resumed run produce bit-identical curves (same
      chunking, same merge order).
    - [supervise]: run every per-source task under the given
      {!Omn_resilience.Supervise.policy}. Sources that exhaust their
      retries are quarantined and listed in [progress.degraded]; the
      surviving sources' contribution is bit-identical to a fault-free
      run over the source list with the quarantined ones removed
      (see {!uniform_order}).
    - [budget_seconds]: stop after the first chunk that exhausts the
      budget, returning a clearly-labelled partial result over a
      near-uniform subset of the sources ([progress.partial = true]).
      At least one chunk always completes, so repeated budgeted
      invocations with a checkpoint make progress. [clock] supplies
      the time base (default [Sys.time], CPU seconds; pass a
      wall-clock for real deadlines).
    - [checkpoint_every]: chunk size in sources (default 8). Part of
      the fingerprint — resuming requires the same value.
    - [report]: called after every chunk with the cumulative source
      count, the cumulative quarantined-source count and whether the
      run resumed from a fallback checkpoint generation (the CLI's
      [--progress] hooks in here and surfaces all three). Purely
      observational — it must not mutate the computation's inputs. *)
