(** Empirical success probability of optimal forwarding (Figs. 9–11).

    The paper evaluates, for a uniformly random (source, destination,
    message-creation time), the probability that flooding restricted to
    [k] hops delivers within a delay budget [d]. Because creation time
    ranges over a continuum, this is an integral, and the frontier
    representation makes it exact: the success measure of one pair is a
    sum of piecewise-linear-in-[d] segment contributions
    (see {!Delivery.success_measure}). The accumulator below aggregates
    those contributions over pairs onto a fixed budget grid in
    O(log |grid|) per frontier descriptor, using difference arrays. *)

type t

val create : grid:float array -> t
(** [grid]: ascending, non-negative delay budgets (seconds).
    Raises [Invalid_argument] otherwise. *)

val grid : t -> float array

val add_pair : t -> t_start:float -> t_end:float -> Ld_ea.t array -> unit
(** Accumulate one (source, destination) pair whose frontier snapshot is
    given, with creation times uniform on [[t_start, t_end]]. The pair
    contributes mass [t_end - t_start] to the denominator whether or not
    it ever succeeds. *)

val success : t -> float array
(** [success t].(i) = empirical P(optimal delay <= grid.(i)). *)

val success_inf : t -> float
(** Empirical P(optimal delay < infinity) — the success rate of
    unrestricted flooding with unlimited time. *)

val total_mass : t -> float
(** Denominator accumulated so far (pairs x window length). *)

val merge_into : dst:t -> t -> unit
(** Fold another accumulator built on the {e same} grid into [dst] —
    accumulation distributes over pair partitions, which is what makes
    the parallel driver below possible. Raises [Invalid_argument] on
    grid mismatch. *)

(** {1 Whole-trace driver} *)

type curves = {
  grid : float array;
  hop_success : float array array;
      (** [hop_success.(k-1)] = success curve under hop bound [k],
          for k = 1 .. max_hops. *)
  hop_success_inf : float array;  (** same, at unlimited delay *)
  flood_success : float array;    (** success curve of unrestricted flooding *)
  flood_success_inf : float;
  max_rounds_used : int;  (** largest fixpoint round over all sources *)
}

val compute :
  ?max_hops:int ->
  ?sources:Omn_temporal.Node.t list ->
  ?dests:Omn_temporal.Node.t list ->
  ?grid:float array ->
  ?domains:int ->
  ?windows:(float * float) list ->
  Omn_temporal.Trace.t ->
  curves
(** Runs {!Journey.run} from every source (default: all nodes; creation
    times uniform over the trace window; all ordered pairs with
    [source <> dest]) and aggregates per-hop-bound success curves.
    [dests] restricts which destinations count as observations — e.g.
    only the experimental devices of a trace that also records external
    ones. [max_hops] defaults to 10, [grid] to
    {!Omn_stats.Grid.delay_default}. [domains > 1] splits the sources
    over that many OCaml domains (sources are independent journeys);
    results are identical up to floating-point summation order.
    [windows] restricts message-creation times to a union of intervals
    (e.g. day-time hours only, as in the paper's §5.3.1 aside) instead
    of the whole trace window. *)
