(** Path descriptors: (last departure, earliest arrival) pairs.

    §4.2 of the paper shows that, for scheduling purposes, a valid
    sequence of contacts between two devices is fully described by

    - [ld] (*last departure*) [= min over contacts of t_end]: the latest
      time a message may leave the source and still ride this sequence;
    - [ea] (*earliest arrival*) [= max over contacts of t_beg]: the
      earliest time it can reach the destination.

    A message created at [t <= ld] is delivered at [max t ea] (facts (ii)
    and (iii)); when [ea <= ld] the sequence is a window of contemporaneous
    connectivity, when [ea > ld] the message must be stored at
    intermediate devices. *)

type t = { ld : float; ea : float }

val make : ld:float -> ea:float -> t
(** Plain constructor (any floats except nan are legal — infinite bounds
    appear in the identity descriptor). *)

val of_contact : Omn_temporal.Contact.t -> t
(** Descriptor of a single-contact sequence: [ld = t_end], [ea = t_beg]
    — the only case where [ea <= ld] is guaranteed. *)

val identity : t
(** Descriptor of the empty sequence from a node to itself:
    [ld = +inf], [ea = -inf]. Left and right unit of {!concat}. *)

val dominates : t -> t -> bool
(** [dominates p q]: [p] departs no earlier and arrives no later —
    [p.ld >= q.ld && p.ea <= q.ea]. A reflexive partial order. *)

val strictly_dominates : t -> t -> bool
(** Domination with at least one strict inequality (the paper's
    "strictly dominated" between optimal paths). *)

val can_concat : t -> t -> bool
(** [can_concat p q]: fact (iv) — the compound sequence [p] then [q] is
    valid iff [p.ea <= q.ld]. *)

val concat : t -> t -> t option
(** [concat p q] is [Some { ld = min; ea = max }] when {!can_concat},
    [None] otherwise. Associative where defined. *)

val delivery : t -> float -> float
(** [delivery p t]: arrival time of a message created at [t] using this
    sequence — [max t p.ea] if [t <= p.ld], [infinity] otherwise. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic on [(ld, ea)]. *)

val pp : Format.formatter -> t -> unit
