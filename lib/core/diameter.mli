(** The (1 − ε)-diameter of a temporal network (§4.1).

    For hop bound [k] and delay budget [d], let [P_k(d)] be the empirical
    probability that a uniformly random (source, destination, creation
    time) admits a path of at most [k] hops delivering within [d]. The
    (1 − ε)-diameter is the least [k] such that for every budget [d]
    (including unlimited), [P_k(d) >= (1 - ε) * P_inf(d)] — i.e. [k] hops
    achieve at least a (1 − ε) fraction of the success rate of
    unrestricted flooding at every timescale. The paper uses ε = 0.01
    ("99 % of the success rate of flooding"). *)

type result = {
  diameter : int option;
      (** [None] when even [max_hops] does not reach the (1 − ε) bar —
          raise [max_hops] in that case. *)
  epsilon : float;
  curves : Delay_cdf.curves;
}

val of_curves : ?epsilon:float -> Delay_cdf.curves -> int option
(** Diameter from precomputed curves. [epsilon] defaults to 0.01. *)

val vs_delay : ?epsilon:float -> Delay_cdf.curves -> (float * int option) array
(** Fig. 12: for each budget on the grid, the least [k] whose success at
    that single budget reaches [(1 - ε) * P_inf]; [None] when no
    computed [k] does. Budgets where flooding itself has zero success
    report [Some 1]. *)

val measure :
  ?epsilon:float ->
  ?max_hops:int ->
  ?sources:Omn_temporal.Node.t list ->
  ?dests:Omn_temporal.Node.t list ->
  ?grid:float array ->
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  ?windows:(float * float) list ->
  Omn_temporal.Trace.t ->
  result
(** End-to-end: compute curves with {!Delay_cdf.compute}, then the
    diameter. [pool] / [domains] as in {!Delay_cdf.compute} — the
    result is independent of both. *)

type run = {
  result : result;
  sources_done : int;
  sources_total : int;
  partial : bool;
      (** the work budget expired: [result] covers a near-uniform
          subset of [sources_done] source nodes and must be labelled
          as partial *)
  degraded : Omn_resilience.Supervise.failure list;
      (** sources quarantined by the [supervise] policy — the run is
          complete but degraded (CLI exit code 3) *)
  ckpt_fallback : bool;
      (** resume recovered from the previous checkpoint generation
          after finding the current one corrupt *)
}

val measure_resumable :
  ?epsilon:float ->
  ?max_hops:int ->
  ?sources:Omn_temporal.Node.t list ->
  ?dests:Omn_temporal.Node.t list ->
  ?grid:float array ->
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  ?windows:(float * float) list ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?checkpoint_every:int ->
  ?budget_seconds:float ->
  ?clock:(unit -> float) ->
  ?report:(done_:int -> total:int -> degraded:int -> fallback:bool -> unit) ->
  ?supervise:Omn_resilience.Supervise.policy ->
  Omn_temporal.Trace.t ->
  (run, Omn_robust.Err.t) Stdlib.result
(** {!measure} on top of {!Delay_cdf.compute_resumable}: periodic
    CRC-checked, generation-rotated checkpoints, resume after a crash
    (bit-identical to an uninterrupted run, falling back to the
    previous generation when the current one is corrupt), optional
    per-task supervision with quarantine ([supervise]), and graceful
    degradation to a uniformly sampled subset of sources under a time
    budget. [report] is forwarded to
    {!Delay_cdf.compute_resumable}. *)
