module Trace = Omn_temporal.Trace
module Pool = Omn_parallel.Pool
module Metrics = Omn_obs.Metrics
module Timeline = Omn_obs.Timeline
module Err = Omn_robust.Err
module Checkpoint = Omn_robust.Checkpoint

let m_rounds = Metrics.counter "sample.rounds"
let m_sampled = Metrics.counter "sample.sources_sampled"
let m_boot = Metrics.counter "sample.bootstrap_resamples"
let m_ckpt_fallback = Metrics.counter "sample.ckpt_fallbacks"
let g_width = Metrics.gauge "sample.ci_width"

type estimate = {
  diameter : int option;
  epsilon : float;
  curves : Delay_cdf.curves;
  ci_lo : int option;
  ci_hi : int option;
  confidence : float;
  ci_width : float;
  sampled : int;
  total : int;
  rounds : int;
  exhaustive : bool;
  partial : bool;
  ckpt_fallback : bool;
}

(* Test hook (see the statistical coverage suite): a perturbation is
   applied to {e every} diameter the estimator derives from a curve
   set — the point estimate and each bootstrap replicate — so a
   deliberately broken estimator shifts its CI wholesale instead of
   silently re-centering around the biased point. *)
let perturb : (int option -> int option) option ref = ref None
let set_perturb f = perturb := f

type snapshot = {
  snap_fingerprint : string;
  snap_rounds : int;
  snap_partials : string array;  (* [partial_to_string], rotated-order prefix *)
}

let ckpt_magic = "omn-est 1\n"

let save_checkpoint path snap =
  Checkpoint.save ~magic:ckpt_magic ~path (Marshal.to_string snap [])

let decode_snapshot ~fp path payload =
  match (Marshal.from_string payload 0 : snapshot) with
  | exception _ -> Error (Err.v ~file:path Err.Checkpoint "unreadable payload")
  | snap ->
    if snap.snap_fingerprint <> fp then
      Error
        (Err.v ~file:path Err.Checkpoint
           "checkpoint was built for a different trace or parameters")
    else Ok snap

let load_checkpoint ~fp path =
  Checkpoint.load ~magic:ckpt_magic ~validate:(decode_snapshot ~fp path) path

let fingerprint ~max_hops ~budget_grid ~is_dest ~windows ~order ~epsilon ~seed ~confidence
    ~bootstrap ~ci_width ~sample trace =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( Trace.name trace, Trace.n_nodes trace, Trace.t_start trace, Trace.t_end trace,
            Trace.contacts trace, max_hops, budget_grid, is_dest, windows, order, epsilon,
            seed, confidence, bootstrap, ci_width, sample )
          []))

(* Rotating the stride order by the seed keeps every prefix a
   near-uniform sample (the stride property is rotation-invariant)
   while giving distinct seeds genuinely different samples — which is
   what the coverage test needs to observe the CI's sampling
   distribution. *)
let rotate l k =
  let n = List.length l in
  if n = 0 then l
  else
    let k = ((k mod n) + n) mod n in
    let arr = Array.of_list l in
    List.init n (fun i -> arr.((i + k) mod n))

let estimate ?(epsilon = 0.01) ?(max_hops = 10) ?(sample = 64) ?(seed = 0) ?(ci_width = 1.)
    ?(confidence = 0.9) ?(bootstrap = 200) ?sources ?dests
    ?grid:(budget_grid = Omn_stats.Grid.delay_default) ?pool ?(domains = 1) ?windows
    ?checkpoint ?(resume = false) ?budget_seconds ?(clock = Sys.time) ?report ?partials_of
    trace =
  try
    if sample < 1 then Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: sample must be at least 1");
    if ci_width <= 0. then
      Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: ci-width must be positive");
    if epsilon <= 0. || epsilon >= 1. then
      Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: epsilon out of (0,1)");
    if confidence <= 0. || confidence >= 1. then
      Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: confidence out of (0,1)");
    if bootstrap < 1 then
      Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: bootstrap must be at least 1");
    if max_hops < 1 then Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: max_hops < 1");
    if domains < 1 then Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: domains < 1");
    (match budget_seconds with
    | Some b when b < 0. ->
      Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: negative budget")
    | _ -> ());
    let windows =
      match windows with
      | None -> None
      | Some [] -> Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: empty window list")
      | Some ws ->
        List.iter
          (fun (a, b) ->
            if a > b then
              Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: reversed window"))
          ws;
        Some ws
    in
    let n = Trace.n_nodes trace in
    let sources = Option.value sources ~default:(List.init n (fun i -> i)) in
    let total = List.length sources in
    if total = 0 then Err.get_exn (Err.error Err.Usage "Diameter_est.estimate: empty source list");
    let is_dest =
      match dests with
      | None -> Array.make n true
      | Some ds ->
        let mask = Array.make n false in
        List.iter (fun d -> mask.(d) <- true) ds;
        mask
    in
    (* Rotated stride order: the sampled prefix grows round by round
       without ever discarding a computed partial. *)
    let order = Array.of_list (rotate (Delay_cdf.uniform_order sources) seed) in
    (* Position of each source in the caller's [sources] list — the
       point estimate merges partials in this order so that the
       exhaustive case replays [Delay_cdf.compute]'s exact merge
       sequence (bit-identity contract). *)
    let pos_of = Hashtbl.create total in
    List.iteri (fun i s -> Hashtbl.replace pos_of s i) sources;
    let fp =
      fingerprint ~max_hops ~budget_grid ~is_dest ~windows ~order ~epsilon ~seed ~confidence
        ~bootstrap ~ci_width ~sample trace
    in
    let loaded =
      match checkpoint with
      | Some path
        when resume
             && (Sys.file_exists path || Sys.file_exists (Checkpoint.prev_path path)) -> (
        match load_checkpoint ~fp path with
        | Error e -> Error e
        | Ok (snap, gen) ->
          let fallback = gen = Checkpoint.Previous in
          if fallback then begin
            Metrics.incr m_ckpt_fallback;
            Timeline.record (Ckpt_fallback { path })
          end;
          let decode s =
            match Delay_cdf.partial_of_string s with
            | Ok p -> p
            | Error msg ->
              Err.get_exn (Err.error ~file:path Err.Checkpoint ("bad stored partial: " ^ msg))
          in
          Ok (snap.snap_rounds, Array.map decode snap.snap_partials, fallback))
      | _ -> Ok (0, [||], false)
    in
    match loaded with
    | Error e -> Error e
    | Ok (rounds0, partials0, ckpt_fallback) ->
      let owned = if pool = None && domains > 1 then Some (Pool.create ~domains ()) else None in
      let pool = match pool with Some _ as p -> p | None -> owned in
      Fun.protect
        ~finally:(fun () -> Option.iter Pool.shutdown owned)
      @@ fun () ->
      Omn_obs.Span.with_ ~name:"diameter.estimate" @@ fun () ->
      let t0 = clock () in
      let compute_partials batch =
        match partials_of with
        | Some f ->
          let ps = f batch in
          if List.length ps <> List.length batch then
            Err.get_exn
              (Err.error Err.Compute
                 (Printf.sprintf "Diameter_est.estimate: partials_of returned %d partials for %d sources"
                    (List.length ps) (List.length batch)));
          Array.of_list ps
        | None ->
          Pool.run ?pool ~domains
            (fun s -> Delay_cdf.source_partial ~max_hops ?dests ~grid:budget_grid ?windows trace s)
            (Array.of_list batch)
      in
      (* Stored partials, indexed by position in the rotated order. *)
      let partials = Array.make total None in
      Array.iteri (fun i p -> partials.(i) <- Some p) partials0;
      let stored = ref (Array.length partials0) in
      let extend k =
        if k > !stored then begin
          let batch = List.init (k - !stored) (fun i -> order.(!stored + i)) in
          let fresh = compute_partials batch in
          Array.iteri (fun i p -> partials.(!stored + i) <- Some p) fresh;
          Metrics.add m_sampled (k - !stored);
          stored := k
        end
      in
      let sentinel = max_hops + 1 in
      let to_sent = function Some k -> k | None -> sentinel in
      let of_sent k = if k > max_hops then None else Some k in
      let diameter_of curves =
        let d = Diameter.of_curves ~epsilon curves in
        match !perturb with None -> d | Some f -> f d
      in
      (* Merge the given rotated-order positions (ascending source
         position, so the full-sample merge is the exact-engine merge)
         and derive the (1-eps)-diameter. *)
      let curves_of_positions idxs =
        let m = Delay_cdf.merger_create ~max_hops ~grid:budget_grid () in
        List.iter
          (fun i -> Delay_cdf.merger_add m (Option.get partials.(i)))
          idxs;
        Delay_cdf.merger_curves m
      in
      let by_source_position idxs =
        List.sort
          (fun i j -> compare (Hashtbl.find pos_of order.(i)) (Hashtbl.find pos_of order.(j)))
          idxs
      in
      (* The checkpoint records {e completed} rounds: it is written after
         a round's convergence decision, so a killed-and-resumed run
         re-enters the doubling schedule exactly where an uninterrupted
         run would be (losing at most one round of partials). *)
      let save_after_round ~round ~k =
        match checkpoint with
        | Some path ->
          let strings =
            Array.init k (fun i -> Delay_cdf.partial_to_string (Option.get partials.(i)))
          in
          save_checkpoint path
            { snap_fingerprint = fp; snap_rounds = round; snap_partials = strings }
        | None -> ()
      in
      let rec loop ~round ~k =
        extend k;
        let exhaustive = k = total in
        let point_positions = by_source_position (List.init k (fun i -> i)) in
        let curves = curves_of_positions point_positions in
        let point = diameter_of curves in
        let ci_lo, ci_hi, width =
          if exhaustive then (point, point, 0.)
          else begin
            (* Percentile bootstrap over the sampled sources: resample
               [k] of them with replacement, re-merge, re-derive the
               diameter. [None] (no diameter within max_hops) sits at
               the sentinel [max_hops + 1] so it orders above every
               finite diameter. The interval is unioned with the point
               estimate so the reported CI always contains it. *)
            let rng = Omn_stats.Rng.create (seed lxor (round * 1_000_003)) in
            let ds =
              Array.init bootstrap (fun _ ->
                let draw = List.init k (fun _ -> Omn_stats.Rng.int rng k) in
                let idxs = by_source_position draw in
                to_sent (diameter_of (curves_of_positions idxs)))
            in
            Metrics.add m_boot bootstrap;
            Array.sort compare ds;
            let alpha = 1. -. confidence in
            let b = bootstrap in
            let lo_i = int_of_float (Float.floor (alpha /. 2. *. float_of_int (b - 1))) in
            let hi_i = int_of_float (Float.ceil ((1. -. (alpha /. 2.)) *. float_of_int (b - 1))) in
            let lo = min ds.(lo_i) (to_sent point) in
            let hi = max ds.(hi_i) (to_sent point) in
            (of_sent lo, of_sent hi, float_of_int (hi - lo))
          end
        in
        Metrics.incr m_rounds;
        Metrics.set g_width width;
        Timeline.record (Sample_round { round; sampled = k; width });
        (match report with
        | Some r -> r ~round ~sampled:k ~total ~width
        | None -> ());
        let converged = exhaustive || width <= ci_width in
        let out_of_budget =
          match budget_seconds with Some b -> clock () -. t0 >= b | None -> false
        in
        if converged || out_of_budget then begin
          let partial = (not converged) && out_of_budget in
          if partial then save_after_round ~round ~k
          else Option.iter Checkpoint.remove checkpoint;
          {
            diameter = point;
            epsilon;
            curves;
            ci_lo;
            ci_hi;
            confidence;
            ci_width = width;
            sampled = k;
            total;
            rounds = round;
            exhaustive;
            partial;
            ckpt_fallback;
          }
        end
        else begin
          save_after_round ~round ~k;
          loop ~round:(round + 1) ~k:(min total (2 * k))
        end
      in
      (* Resume continues the doubling schedule: a checkpoint holding the
         partials of round r restarts at round r+1 with twice the sample,
         exactly as the uninterrupted run would. *)
      let k0 =
        if !stored = 0 then min sample total else min total (2 * !stored)
      in
      Ok (loop ~round:(rounds0 + 1) ~k:k0)
  with
  | Err.Error e -> Error e
  | Invalid_argument msg -> Error (Err.v Err.Usage msg)
  | Sys_error msg -> Error (Err.v Err.Io msg)
  | Failure msg -> Error (Err.v Err.Compute ("source task failed: " ^ msg))
