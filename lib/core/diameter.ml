type result = { diameter : int option; epsilon : float; curves : Delay_cdf.curves }

let reaches_everywhere ~epsilon (curves : Delay_cdf.curves) k =
  let bar = 1. -. epsilon in
  let ok = ref (curves.hop_success_inf.(k - 1) >= bar *. curves.flood_success_inf) in
  if !ok then begin
    let hop = curves.hop_success.(k - 1) in
    (try
       Array.iteri
         (fun i flood ->
           if hop.(i) < bar *. flood then begin
             ok := false;
             raise Exit
           end)
         curves.flood_success
     with Exit -> ())
  end;
  !ok

let of_curves ?(epsilon = 0.01) (curves : Delay_cdf.curves) =
  if epsilon <= 0. || epsilon >= 1. then invalid_arg "Diameter.of_curves: epsilon out of (0,1)";
  let max_hops = Array.length curves.hop_success in
  let rec search k =
    if k > max_hops then None
    else if reaches_everywhere ~epsilon curves k then Some k
    else search (k + 1)
  in
  search 1

let vs_delay ?(epsilon = 0.01) (curves : Delay_cdf.curves) =
  let bar = 1. -. epsilon in
  let max_hops = Array.length curves.hop_success in
  Array.mapi
    (fun i d ->
      let flood = curves.flood_success.(i) in
      let rec search k =
        if k > max_hops then None
        else if curves.hop_success.(k - 1).(i) >= bar *. flood then Some k
        else search (k + 1)
      in
      (d, search 1))
    curves.grid

let measure ?(epsilon = 0.01) ?max_hops ?sources ?dests ?grid ?pool ?domains ?windows trace =
  Omn_obs.Span.with_ ~name:"diameter.measure" @@ fun () ->
  let curves = Delay_cdf.compute ?max_hops ?sources ?dests ?grid ?pool ?domains ?windows trace in
  { diameter = of_curves ~epsilon curves; epsilon; curves }

type run = {
  result : result;
  sources_done : int;
  sources_total : int;
  partial : bool;
  degraded : Omn_resilience.Supervise.failure list;
  ckpt_fallback : bool;
}

let measure_resumable ?(epsilon = 0.01) ?max_hops ?sources ?dests ?grid ?pool ?domains ?windows
    ?checkpoint ?resume ?checkpoint_every ?budget_seconds ?clock ?report ?supervise trace =
  if epsilon <= 0. || epsilon >= 1. then
    Omn_robust.Err.error Omn_robust.Err.Usage "Diameter.measure_resumable: epsilon out of (0,1)"
  else
    Omn_obs.Span.with_ ~name:"diameter.measure_resumable" @@ fun () ->
    match
      Delay_cdf.compute_resumable ?max_hops ?sources ?dests ?grid ?pool ?domains ?windows
        ?checkpoint ?resume ?checkpoint_every ?budget_seconds ?clock ?report ?supervise trace
    with
    | Error e -> Error e
    | Ok (curves, p) ->
      Ok
        {
          result = { diameter = of_curves ~epsilon curves; epsilon; curves };
          sources_done = p.Delay_cdf.sources_done;
          sources_total = p.Delay_cdf.sources_total;
          partial = p.Delay_cdf.partial;
          degraded = p.Delay_cdf.degraded;
          ckpt_fallback = p.Delay_cdf.ckpt_fallback;
        }
