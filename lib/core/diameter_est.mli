(** Sampled (1-eps)-diameter with a bootstrap confidence interval.

    {!Diameter.measure} runs a journey from {e every} source — exact,
    but linear in the node count, which is the wall at millions of
    nodes. This estimator runs journeys from a seeded stratified
    sample of the sources instead: the sample is a prefix of the
    stride order {!Delay_cdf.uniform_order} (every prefix is a
    near-uniform subset), rotated by the seed so that distinct seeds
    draw genuinely different samples. The sample doubles round by
    round until the bootstrap percentile CI on the diameter is no
    wider than the target (or the sources are exhausted, or the time
    budget expires), reusing every partial already computed.

    Determinism and exactness contract:
    - a given (trace, parameters, seed) always produces the same
      estimate, CI and round count;
    - when the sample reaches {e all} sources the estimator performs
      exactly the merge sequence of {!Delay_cdf.compute} (ascending
      source position), so the curves — and hence the diameter — are
      {e bit-identical} to {!Diameter.measure} and the CI collapses to
      the point ([exhaustive = true], zero width).

    Like {!Delay_cdf.compute_resumable}, the estimator is checkpoint-
    and budget-aware: with [checkpoint] the sampled partials are saved
    after every round (CRC-framed, rotated generations), and [resume]
    continues from them — a killed-and-resumed run is bit-identical to
    an uninterrupted one. *)

type estimate = {
  diameter : int option;  (** point estimate over the sampled sources *)
  epsilon : float;
  curves : Delay_cdf.curves;  (** curves of the {e sampled} sources *)
  ci_lo : int option;
      (** bootstrap CI bounds; [None] = beyond [max_hops] (the CI is
          computed on a scale where "no diameter within [max_hops]"
          sits just above [max_hops], so [None] bounds are ordered) *)
  ci_hi : int option;
  confidence : float;   (** nominal coverage of [ci_lo, ci_hi] *)
  ci_width : float;     (** achieved CI width in hops; 0 when exhaustive *)
  sampled : int;        (** sources actually sampled *)
  total : int;          (** sources available *)
  rounds : int;         (** tightening rounds run *)
  exhaustive : bool;    (** sample covered every source *)
  partial : bool;       (** budget expired before the width target *)
  ckpt_fallback : bool; (** resumed from the previous checkpoint generation *)
}

val estimate :
  ?epsilon:float ->
  ?max_hops:int ->
  ?sample:int ->
  ?seed:int ->
  ?ci_width:float ->
  ?confidence:float ->
  ?bootstrap:int ->
  ?sources:Omn_temporal.Node.t list ->
  ?dests:Omn_temporal.Node.t list ->
  ?grid:float array ->
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  ?windows:(float * float) list ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?budget_seconds:float ->
  ?clock:(unit -> float) ->
  ?report:(round:int -> sampled:int -> total:int -> width:float -> unit) ->
  ?partials_of:(Omn_temporal.Node.t list -> Delay_cdf.partial list) ->
  Omn_temporal.Trace.t ->
  (estimate, Omn_robust.Err.t) result
(** [estimate trace] samples sources until the CI is at most
    [ci_width] hops wide (default 1.) at [confidence] (default 0.9).
    [sample] (default 64) is the initial sample size; it doubles per
    round. [bootstrap] (default 200) is the number of percentile
    resamples per round; the interval is unioned with the point
    estimate so it always contains it. [epsilon], [max_hops],
    [sources], [dests], [grid], [pool], [domains] and [windows] are as
    in {!Diameter.measure}; [checkpoint], [resume], [budget_seconds],
    [clock] and [report] as in {!Delay_cdf.compute_resumable} (at
    least one round always completes; [partial = true] marks a
    budget-truncated estimate).

    [partials_of] overrides how per-source partials are computed: it
    receives a batch of sources and must return one
    {!Delay_cdf.source_partial}-equivalent partial per source, in
    order — the hook the sharded coordinator and the streaming CLI
    plug into. Default: {!Delay_cdf.source_partial} on the pool.

    Validation failures ([sample < 1], [ci_width <= 0], [epsilon] or
    [confidence] outside (0,1), [bootstrap < 1], ...) are typed
    [Usage] errors. *)

val set_perturb : (int option -> int option) option -> unit
(** Test hook: post-compose every diameter the estimator derives from
    a curve set — the point estimate {e and} each bootstrap replicate —
    with the given function. The statistical coverage suite uses this
    to verify its own power: a perturbed estimator must make the
    coverage assertion fail. [None] restores the identity. Not for
    production use. *)
