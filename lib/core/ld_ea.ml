type t = { ld : float; ea : float }

let make ~ld ~ea =
  if Float.is_nan ld || Float.is_nan ea then invalid_arg "Ld_ea.make: nan";
  { ld; ea }

let of_contact (c : Omn_temporal.Contact.t) = { ld = c.t_end; ea = c.t_beg }
let identity = { ld = infinity; ea = neg_infinity }
let dominates p q = p.ld >= q.ld && p.ea <= q.ea

let strictly_dominates p q = dominates p q && (p.ld > q.ld || p.ea < q.ea)

let can_concat p q = p.ea <= q.ld

let concat p q =
  if can_concat p q then Some { ld = Float.min p.ld q.ld; ea = Float.max p.ea q.ea }
  else None

let delivery p t = if t <= p.ld then Float.max t p.ea else infinity

let equal p q = p.ld = q.ld && p.ea = q.ea

let compare p q =
  let by_ld = Float.compare p.ld q.ld in
  if by_ld <> 0 then by_ld else Float.compare p.ea q.ea

let pp fmt p = Format.fprintf fmt "(ld=%g, ea=%g)" p.ld p.ea
