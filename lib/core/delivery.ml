type t = Ld_ea.t array

let of_descriptors a =
  for i = 1 to Array.length a - 1 do
    if not (a.(i - 1).Ld_ea.ld < a.(i).Ld_ea.ld && a.(i - 1).Ld_ea.ea < a.(i).Ld_ea.ea) then
      invalid_arg "Delivery.of_descriptors: not a sorted Pareto frontier"
  done;
  a

let descriptors t = t

(* First index with ld >= x, or length. *)
let lower_ld (t : t) x =
  let lo = ref 0 and hi = ref (Array.length t) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.(mid).Ld_ea.ld >= x then hi := mid else lo := mid + 1
  done;
  !lo

let del t at =
  let i = lower_ld t at in
  if i >= Array.length t then infinity else Float.max at t.(i).Ld_ea.ea

let delay t at = del t at -. at
let n_optimal_paths t = Array.length t

let breakpoints t =
  Array.fold_right (fun (p : Ld_ea.t) acc -> p.ld :: p.ea :: acc) t []
  |> List.filter Float.is_finite
  |> List.sort_uniq Float.compare

let success_measure t ~t_start ~t_end ~budget =
  if t_start > t_end then invalid_arg "Delivery.success_measure: reversed window";
  if budget < 0. then 0.
  else begin
    (* Creation times split into segments (prev_ld, ld_i] on which the
       governing descriptor is t.(i); within a segment the delay is
       max(0, ea_i - created), so success means created >= ea_i - budget. *)
    let acc = ref 0. in
    let prev_ld = ref neg_infinity in
    Array.iter
      (fun (p : Ld_ea.t) ->
        let a = Float.max t_start !prev_ld in
        let b = Float.min t_end p.ld in
        if b > a then begin
          let earliest_ok = if budget = infinity then a else p.ea -. budget in
          let lo = Float.max a earliest_ok in
          if b > lo then acc := !acc +. (b -. lo)
        end;
        prev_ld := p.ld)
      t;
    !acc
  end

let plot t ~times = Array.map (fun at -> (at, del t at)) times
