(** Pareto frontiers of {!Ld_ea} descriptors.

    This is the paper's "minimum amount of information" representation of
    all delay-optimal paths between one (source, destination) pair
    (condition (4) in §4.4): the set of descriptors none of which
    dominates another, kept sorted by strictly increasing [ld] — and,
    because the set is an antichain, strictly increasing [ea] as well.
    The delivery function of the pair reads directly off this list. *)

type t

val create : unit -> t
(** Empty frontier. *)

val copy : t -> t

val insert : t -> Ld_ea.t -> bool
(** [insert t p] adds [p] unless an existing descriptor dominates it;
    descriptors that [p] dominates are removed. Returns [true] iff the
    frontier changed (i.e. [p] is now a member). Duplicate of an existing
    point returns [false]. O(size) worst case (array shift), O(log size)
    search. *)

val size : t -> int
val is_empty : t -> bool

val to_array : t -> Ld_ea.t array
(** Fresh array, ascending in both coordinates. *)

val get : t -> int -> Ld_ea.t

val mem_dominated : t -> Ld_ea.t -> bool
(** Would [insert] reject this point (some member dominates it, or it is
    already present)? Does not modify the frontier. *)

val first_ld_geq : t -> float -> Ld_ea.t option
(** Member with the smallest [ld >= t] — because [ea] is co-sorted this
    is also the best arrival among sequences still usable at time [t]. *)

val last_ea_leq : t -> float -> Ld_ea.t option
(** Member with the largest [ea <= x]. *)

val iter_ea_in : t -> lo:float -> hi:float -> (Ld_ea.t -> unit) -> unit
(** Visit members with [lo < ea <= hi], in ascending order. *)

val delivery : t -> float -> float
(** Optimal delivery time of a message created at [t] over all
    descriptors: Eq. (3) of the paper. [infinity] when no sequence
    remains usable. *)

val equal : t -> t -> bool

val check_invariant : t -> unit
(** Assert strict bi-monotonicity; for tests. Raises [Assert_failure]. *)

val pp : Format.formatter -> t -> unit
