(** Pareto frontiers of {!Ld_ea} descriptors, structure-of-arrays.

    This is the paper's "minimum amount of information" representation of
    all delay-optimal paths between one (source, destination) pair
    (condition (4) in §4.4): the set of descriptors none of which
    dominates another, kept sorted by strictly increasing [ld] — and,
    because the set is an antichain, strictly increasing [ea] as well.
    The delivery function of the pair reads directly off this list.

    Physically a frontier is two parallel unboxed [float array]s (one
    per coordinate) plus a size, so the insert hot path — two binary
    searches and a blit — runs over flat float memory and allocates
    nothing in the steady state: {!insert_pt} takes the coordinates as
    bare floats, and the backing arrays grow amortised-doubling and are
    reused in place ({!clear} resets without freeing). *)

type t

val create : unit -> t
(** Empty frontier. *)

val copy : t -> t

val insert : t -> Ld_ea.t -> bool
(** [insert t p] adds [p] unless an existing descriptor dominates it;
    descriptors that [p] dominates are removed. Returns [true] iff the
    frontier changed (i.e. [p] is now a member). Duplicate of an existing
    point returns [false]. O(size) worst case (array shift), O(log size)
    search. *)

val insert_pt : t -> ld:float -> ea:float -> bool
(** {!insert} without the descriptor box: the hot-path entry point used
    by [Journey]'s candidate emitter. Raises [Invalid_argument] on nan
    coordinates (the only validation {!Ld_ea.make} performed). *)

val clear : t -> unit
(** Empty the frontier, keeping the backing capacity — the reusable
    scratch-frontier primitive: a cleared frontier re-fills without
    allocating until it outgrows its previous high-water mark. *)

val copy_into : src:t -> dst:t -> unit
(** Overwrite [dst] with the contents of [src], reusing [dst]'s backing
    arrays when they are large enough. *)

val size : t -> int
val is_empty : t -> bool

val to_array : t -> Ld_ea.t array
(** Fresh array, ascending in both coordinates. *)

val get : t -> int -> Ld_ea.t

val ld_arr : t -> float array
(** Physical [ld] storage. Only the first {!size} slots are meaningful;
    the array is owned by the frontier and must not be mutated, and it
    is invalidated by the next insert (growth may swap it out). For
    in-repository hot loops that must not allocate per point. *)

val ea_arr : t -> float array
(** Physical [ea] storage; same caveats as {!ld_arr}. *)

val mem_dominated : t -> Ld_ea.t -> bool
(** Would [insert] reject this point (some member dominates it, or it is
    already present)? Does not modify the frontier. *)

val first_ld_geq : t -> float -> Ld_ea.t option
(** Member with the smallest [ld >= t] — because [ea] is co-sorted this
    is also the best arrival among sequences still usable at time [t]. *)

val last_ea_leq : t -> float -> Ld_ea.t option
(** Member with the largest [ea <= x]. *)

val iter_ea_in : t -> lo:float -> hi:float -> (Ld_ea.t -> unit) -> unit
(** Visit members with [lo < ea <= hi], in ascending order. *)

val delivery : t -> float -> float
(** Optimal delivery time of a message created at [t] over all
    descriptors: Eq. (3) of the paper. [infinity] when no sequence
    remains usable. *)

val equal : t -> t -> bool

val check_invariant : t -> unit
(** Check strict bi-monotonicity and size/capacity consistency, raising
    [Invalid_argument] with a diagnostic on violation. Unlike an
    [assert], the check survives [-noassert]/release builds, so the
    property tests exercise exactly what production binaries would
    run. *)

val pp : Format.formatter -> t -> unit

(**/**)

val insert_scratch : t -> ld:float -> ea:float -> unit
(** Insert without touching the kept/pruned metrics — for bookkeeping
    frontiers (the [Journey] round deltas) whose traffic would distort
    the counters that measure real frontier work. *)
