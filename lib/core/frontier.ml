(* Growable sorted array. Both coordinates are strictly increasing: if two
   members had equal [ld], the one with larger [ea] would be dominated;
   same for equal [ea]. *)

type t = { mutable data : Ld_ea.t array; mutable size : int }

(* Cumulative insertion outcomes, process-wide: a point is "kept" when it
   enters a frontier and "pruned" when domination rejects or evicts it. *)
let m_kept = Omn_obs.Metrics.counter "frontier.points_kept"
let m_pruned = Omn_obs.Metrics.counter "frontier.points_pruned"

let create () = { data = [||]; size = 0 }
let copy t = { data = Array.copy t.data; size = t.size }
let size t = t.size
let is_empty t = t.size = 0
let get t i = if i < 0 || i >= t.size then invalid_arg "Frontier.get" else t.data.(i)
let to_array t = Array.sub t.data 0 t.size

(* First index with data.(i).ld >= x, or size. *)
let lower_ld t x =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.data.(mid).Ld_ea.ld >= x then hi := mid else lo := mid + 1
  done;
  !lo

(* First index with data.(i).ea > x, or size. *)
let upper_ea t x =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.data.(mid).Ld_ea.ea > x then hi := mid else lo := mid + 1
  done;
  !lo

let mem_dominated t (p : Ld_ea.t) =
  let i = lower_ld t p.ld in
  i < t.size && t.data.(i).Ld_ea.ea <= p.ea

let ensure_capacity t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let fresh = Array.make (max 8 (2 * cap)) Ld_ea.identity in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let insert t (p : Ld_ea.t) =
  let i = lower_ld t p.ld in
  if i < t.size && t.data.(i).Ld_ea.ea <= p.ea then begin
    Omn_obs.Metrics.incr m_pruned;
    false (* dominated (or equal) *)
  end
  else begin
    (* Members dominated by [p] have ld <= p.ld and ea >= p.ea. Those with
       ld < p.ld sit at indices < i; by ea-monotonicity they form the tail
       run [j, i). A member at [i] with ld = p.ld (and ea > p.ea, else we
       returned above) is dominated too. *)
    let j =
      let lo = ref 0 and hi = ref i in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.data.(mid).Ld_ea.ea >= p.ea then hi := mid else lo := mid + 1
      done;
      !lo
    in
    let k = if i < t.size && t.data.(i).Ld_ea.ld = p.ld then i + 1 else i in
    (* Replace slots [j, k) by [p]. *)
    let removed = k - j in
    Omn_obs.Metrics.incr m_kept;
    if removed > 0 then Omn_obs.Metrics.add m_pruned removed;
    if removed = 0 then begin
      ensure_capacity t;
      Array.blit t.data j t.data (j + 1) (t.size - j);
      t.data.(j) <- p;
      t.size <- t.size + 1
    end
    else begin
      t.data.(j) <- p;
      if removed > 1 then begin
        Array.blit t.data k t.data (j + 1) (t.size - k);
        t.size <- t.size - removed + 1
      end
    end;
    true
  end

let first_ld_geq t x =
  let i = lower_ld t x in
  if i < t.size then Some t.data.(i) else None

let last_ea_leq t x =
  let i = upper_ea t x in
  if i = 0 then None else Some t.data.(i - 1)

let iter_ea_in t ~lo ~hi f =
  let i0 = upper_ea t lo in
  let i = ref i0 in
  while !i < t.size && t.data.(!i).Ld_ea.ea <= hi do
    f t.data.(!i);
    incr i
  done

let delivery t at =
  match first_ld_geq t at with
  | None -> infinity
  | Some p -> Float.max at p.Ld_ea.ea

let equal t1 t2 =
  t1.size = t2.size
  &&
  let rec go i = i = t1.size || (Ld_ea.equal t1.data.(i) t2.data.(i) && go (i + 1)) in
  go 0

let check_invariant t =
  for i = 1 to t.size - 1 do
    assert (t.data.(i - 1).Ld_ea.ld < t.data.(i).Ld_ea.ld);
    assert (t.data.(i - 1).Ld_ea.ea < t.data.(i).Ld_ea.ea)
  done

let pp fmt t =
  Format.fprintf fmt "@[<h>{";
  for i = 0 to t.size - 1 do
    if i > 0 then Format.fprintf fmt ";@ ";
    Ld_ea.pp fmt t.data.(i)
  done;
  Format.fprintf fmt "}@]"
