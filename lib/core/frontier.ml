(* Structure-of-arrays Pareto frontier. The members live in two parallel
   unboxed [float array]s — [ld.(i)] and [ea.(i)] for i < size — kept
   strictly increasing in both coordinates: if two members had equal
   [ld], the one with larger [ea] would be dominated; same for equal
   [ea]. The SoA layout keeps the binary searches and blits of the hot
   insert path inside flat float memory: no per-point boxes, no pointer
   chasing, and a steady-state [insert_pt] that allocates nothing (the
   backing arrays grow amortised-doubling and are reused in place). *)

type t = { mutable ld : float array; mutable ea : float array; mutable size : int }

(* Cumulative insertion outcomes, process-wide: a point is "kept" when it
   enters a frontier and "pruned" when domination rejects or evicts it.
   Scratch-delta bookkeeping inserts ([insert_scratch], used by the
   [Journey] round loop) are deliberately uncounted so the counters
   measure real frontier traffic only. *)
let m_kept = Omn_obs.Metrics.counter "frontier.points_kept"
let m_pruned = Omn_obs.Metrics.counter "frontier.points_pruned"

let create () = { ld = [||]; ea = [||]; size = 0 }

let copy t =
  { ld = Array.sub t.ld 0 t.size; ea = Array.sub t.ea 0 t.size; size = t.size }

let size t = t.size
let is_empty t = t.size = 0
let clear t = t.size <- 0

let ld_arr t = t.ld
let ea_arr t = t.ea

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Frontier.get"
  else { Ld_ea.ld = t.ld.(i); ea = t.ea.(i) }

let to_array t = Array.init t.size (fun i -> { Ld_ea.ld = t.ld.(i); ea = t.ea.(i) })

(* First index with ld.(i) >= x, or size. *)
let lower_ld t x =
  let d = t.ld in
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

(* First index with ea.(i) > x, or size. *)
let upper_ea t x =
  let d = t.ea in
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.(mid) > x then hi := mid else lo := mid + 1
  done;
  !lo

let mem_dominated t (p : Ld_ea.t) =
  let i = lower_ld t p.ld in
  i < t.size && t.ea.(i) <= p.ea

let ensure_capacity t =
  let cap = Array.length t.ld in
  if t.size = cap then begin
    let cap' = max 8 (2 * cap) in
    let ld' = Array.make cap' 0. and ea' = Array.make cap' 0. in
    Array.blit t.ld 0 ld' 0 t.size;
    Array.blit t.ea 0 ea' 0 t.size;
    t.ld <- ld';
    t.ea <- ea'
  end

(* The uncounted core of insertion; [removed] slots [j, k) collapse into
   the new point. Returns true iff the point became a member. *)
let[@inline] insert_raw t ~ld ~ea =
  if Float.is_nan ld || Float.is_nan ea then invalid_arg "Frontier.insert: nan";
  let i = lower_ld t ld in
  if i < t.size && t.ea.(i) <= ea then (-1)
  else begin
    (* Members dominated by the new point have ld' <= ld and ea' >= ea.
       Those with ld' < ld sit at indices < i; by ea-monotonicity they
       form the tail run [j, i). A member at [i] with ld' = ld (and
       ea' > ea, else we returned above) is dominated too. *)
    let j =
      let d = t.ea in
      let lo = ref 0 and hi = ref i in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if d.(mid) >= ea then hi := mid else lo := mid + 1
      done;
      !lo
    in
    let k = if i < t.size && t.ld.(i) = ld then i + 1 else i in
    let removed = k - j in
    if removed = 0 then begin
      ensure_capacity t;
      Array.blit t.ld j t.ld (j + 1) (t.size - j);
      Array.blit t.ea j t.ea (j + 1) (t.size - j);
      t.ld.(j) <- ld;
      t.ea.(j) <- ea;
      t.size <- t.size + 1
    end
    else begin
      t.ld.(j) <- ld;
      t.ea.(j) <- ea;
      if removed > 1 then begin
        Array.blit t.ld k t.ld (j + 1) (t.size - k);
        Array.blit t.ea k t.ea (j + 1) (t.size - k);
        t.size <- t.size - removed + 1
      end
    end;
    removed
  end

let[@inline] insert_pt t ~ld ~ea =
  match insert_raw t ~ld ~ea with
  | -1 ->
    Omn_obs.Metrics.incr m_pruned;
    false (* dominated (or equal) *)
  | removed ->
    Omn_obs.Metrics.incr m_kept;
    if removed > 0 then Omn_obs.Metrics.add m_pruned removed;
    true

let[@inline] insert_scratch t ~ld ~ea = ignore (insert_raw t ~ld ~ea)

let insert t (p : Ld_ea.t) = insert_pt t ~ld:p.ld ~ea:p.ea

let copy_into ~src ~dst =
  if Array.length dst.ld < src.size then begin
    dst.ld <- Array.make src.size 0.;
    dst.ea <- Array.make src.size 0.
  end;
  Array.blit src.ld 0 dst.ld 0 src.size;
  Array.blit src.ea 0 dst.ea 0 src.size;
  dst.size <- src.size

let first_ld_geq t x =
  let i = lower_ld t x in
  if i < t.size then Some { Ld_ea.ld = t.ld.(i); ea = t.ea.(i) } else None

let last_ea_leq t x =
  let i = upper_ea t x in
  if i = 0 then None else Some { Ld_ea.ld = t.ld.(i - 1); ea = t.ea.(i - 1) }

let iter_ea_in t ~lo ~hi f =
  let i0 = upper_ea t lo in
  let i = ref i0 in
  while !i < t.size && t.ea.(!i) <= hi do
    f { Ld_ea.ld = t.ld.(!i); ea = t.ea.(!i) };
    incr i
  done

let delivery t at =
  let i = lower_ld t at in
  if i >= t.size then infinity else Float.max at t.ea.(i)

let equal t1 t2 =
  t1.size = t2.size
  &&
  let rec go i =
    i = t1.size || (t1.ld.(i) = t2.ld.(i) && t1.ea.(i) = t2.ea.(i) && go (i + 1))
  in
  go 0

let check_invariant t =
  if t.size < 0 || t.size > Array.length t.ld || Array.length t.ld <> Array.length t.ea
  then invalid_arg "Frontier.check_invariant: inconsistent size/capacity";
  for i = 1 to t.size - 1 do
    if not (t.ld.(i - 1) < t.ld.(i)) then
      invalid_arg
        (Printf.sprintf "Frontier.check_invariant: ld not strictly increasing at index %d (%g >= %g)"
           i t.ld.(i - 1) t.ld.(i));
    if not (t.ea.(i - 1) < t.ea.(i)) then
      invalid_arg
        (Printf.sprintf "Frontier.check_invariant: ea not strictly increasing at index %d (%g >= %g)"
           i t.ea.(i - 1) t.ea.(i))
  done

let pp fmt t =
  Format.fprintf fmt "@[<h>{";
  for i = 0 to t.size - 1 do
    if i > 0 then Format.fprintf fmt ";@ ";
    Ld_ea.pp fmt { Ld_ea.ld = t.ld.(i); ea = t.ea.(i) }
  done;
  Format.fprintf fmt "}@]"
