(** Integrity-checked, generation-rotated checkpoint files.

    Framing: [magic ^ payload ^ crc], where [crc] is the 8-lowercase-hex
    CRC-32 (IEEE) of the payload — a flipped bit or a truncated tail is
    detected on load, instead of being unmarshalled into garbage.

    Rotation: {!save} first promotes the existing file to
    [path ^ ".prev"] (only when it still passes its own CRC — a corrupt
    current generation is deleted, never promoted), then writes the new
    generation through {!Atomic_file} + {!Retry_io}. A reader therefore
    always finds at most two generations:
    {v
        save #k:    path       <- state after chunk k     (current)
                    path.prev  <- state after chunk k-1   (previous)
    v}
    {!load} validates the current generation and falls back to the
    previous one when the current is corrupt, truncated, missing, or
    rejected by the caller's [validate] — losing at most one
    generation of work instead of the whole run. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one). *)

val crc32_hex : string -> string
(** {!crc32} as 8 lowercase hex characters — the trailer format. *)

val prev_path : string -> string
(** [path ^ ".prev"], the previous-generation file of [path]. *)

val manifest_path : string -> string
(** [path ^ ".manifest.json"], the provenance sidecar drivers write
    next to a checkpoint. This module never writes it, but {!remove}
    deletes it along with the generations. *)

val on_rotate : (path:string -> unit) ref
(** Called after the current generation of [path] is promoted to
    [.prev] during {!save}. Defaults to a no-op; the observability
    layer (which this library cannot depend on) hooks its event journal
    in here, exactly like {!Retry_io.on_retry}. *)

val decode : magic:string -> path:string -> string -> (string, Err.t) result
(** Strip and verify the framing of raw file bytes: magic prefix, CRC
    trailer. Returns the payload, or a typed [Checkpoint] error
    ([path] is used only for error locations). *)

val save : magic:string -> path:string -> string -> unit
(** Rotate, then atomically write [magic ^ payload ^ crc] to [path].
    Raises [Sys_error] on unrecoverable I/O failure (transient failures
    are retried, see {!Retry_io}). *)

type generation = Current | Previous

val load :
  magic:string ->
  validate:(string -> ('a, Err.t) result) ->
  string ->
  ('a * generation, Err.t) result
(** Decode and [validate] the current generation; on any failure try
    the previous one. When both fail, the {e current} generation's
    error is returned (it is the one the caller acted on last). The
    returned {!generation} tells the caller whether it is running on
    fallback state — report it. *)

val remove : string -> unit
(** Delete both generations of [path] and its manifest sidecar,
    ignoring I/O errors. *)
