type code =
  | Parse
  | Header
  | Contact
  | Window
  | Range
  | Io
  | Checkpoint
  | Usage
  | Compute
  | Auth
  | Proto

type t = { code : code; msg : string; file : string option; line : int option }

exception Error of t

let v ?file ?line code msg = { code; msg; file; line }
let errf ?file ?line code fmt = Format.kasprintf (fun msg -> v ?file ?line code msg) fmt

let code_name = function
  | Parse -> "E-PARSE"
  | Header -> "E-HEADER"
  | Contact -> "E-CONTACT"
  | Window -> "E-WINDOW"
  | Range -> "E-RANGE"
  | Io -> "E-IO"
  | Checkpoint -> "E-CHECKPOINT"
  | Usage -> "E-USAGE"
  | Compute -> "E-COMPUTE"
  | Auth -> "E-AUTH"
  | Proto -> "E-PROTO"

let exit_code = function Compute -> 1 | _ -> 2
let in_file file e = match e.file with Some _ -> e | None -> { e with file = Some file }

let pp fmt e =
  (match e.file with Some f -> Format.fprintf fmt "%s: " f | None -> ());
  (match e.line with Some l -> Format.fprintf fmt "line %d: " l | None -> ());
  Format.fprintf fmt "[%s] %s" (code_name e.code) e.msg

let to_string e = Format.asprintf "%a" pp e
let error ?file ?line code msg = Result.Error (v ?file ?line code msg)

let errorf ?file ?line code fmt =
  Format.kasprintf (fun msg -> Result.Error (v ?file ?line code msg)) fmt

let get_exn = function Ok x -> x | Result.Error e -> raise (Error e)

let protect f =
  match f () with
  | x -> Ok x
  | exception Error e -> Result.Error e
  | exception Failure msg -> error Compute msg
  | exception Invalid_argument msg -> error Usage msg
  | exception Sys_error msg -> error Io msg

module Syntax = struct
  let ( let* ) r f = Result.bind r f
  let ( let+ ) r f = Result.map f r
end
