let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_hex s = Printf.sprintf "%08lx" (crc32 s)

let prev_path path = path ^ ".prev"

let decode ~magic ~path data =
  let mlen = String.length magic in
  let len = String.length data in
  if len < mlen + 8 || String.sub data 0 mlen <> magic then
    Error (Err.v ~file:path Err.Checkpoint "not an omn checkpoint file")
  else begin
    let payload = String.sub data mlen (len - mlen - 8) in
    let trailer = String.sub data (len - 8) 8 in
    if crc32_hex payload <> trailer then
      Error (Err.v ~file:path Err.Checkpoint "CRC-32 mismatch (truncated or corrupt)")
    else Ok payload
  end

(* Observability hook: invoked after a current generation is promoted
   to .prev. This library sits below the metrics/timeline registry in
   the dependency order, so the journal wires itself in from above
   (see Supervise), mirroring Retry_io.on_retry. *)
let on_rotate : (path:string -> unit) ref = ref (fun ~path:_ -> ())

(* Promote the current generation only if it still decodes — rotating a
   corrupt file over a good .prev would destroy the last recovery
   point. *)
let rotate ~magic path =
  if Sys.file_exists path then begin
    let ok =
      match Atomic_file.read_to_string path with
      | exception Sys_error _ -> false
      | data -> Result.is_ok (decode ~magic ~path data)
    in
    try
      if ok then begin
        Sys.rename path (prev_path path);
        !on_rotate ~path
      end
      else Sys.remove path
    with Sys_error _ -> ()
  end

let save ~magic ~path payload =
  rotate ~magic path;
  Retry_io.write path (fun oc ->
      output_string oc magic;
      output_string oc payload;
      output_string oc (crc32_hex payload))

type generation = Current | Previous

let load ~magic ~validate path =
  let read p =
    match Retry_io.read_to_string p with
    | exception Sys_error msg -> Error (Err.v ~file:p Err.Io msg)
    | data -> Result.bind (decode ~magic ~path:p data) validate
  in
  match read path with
  | Ok v -> Ok (v, Current)
  | Error current_err -> (
    let prev = prev_path path in
    if not (Sys.file_exists prev) then Error current_err
    else match read prev with Ok v -> Ok (v, Previous) | Error _ -> Error current_err)

let manifest_path path = path ^ ".manifest.json"

let remove path =
  List.iter
    (fun p -> if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ())
    [ path; prev_path path; manifest_path path ]
