(** Deterministic fault injection for trace files.

    Operates on the {e textual} trace format (see [Omn_temporal.Trace_io])
    so it can produce inputs no well-typed API would ever build:
    truncated records, mangled fields, NaN times, lying window headers.
    All corruption is driven by [Omn_stats.Rng], so a given [(seed,
    fault, input)] triple always yields the same corrupted output —
    recovery-path tests are reproducible. *)

type fault =
  | Truncate of float
      (** keep this fraction of record lines, then cut the next record
          mid-line (a 3-field prefix) — a crashed logger *)
  | Mangle of float  (** per-record probability: replace a field with garbage *)
  | Nan_times of float  (** per-record probability: replace a time with [nan] *)
  | Self_loop of float  (** per-record probability: set both endpoints equal *)
  | Negative_id of float  (** per-record probability: negate a node id *)
  | Window_lie
      (** shrink the declared window so records fall outside it *)
  | Reorder  (** shuffle record lines (parseable, but out of order) *)
  | Duplicate of float  (** per-record probability: emit the record twice *)
  | Ckpt_truncate of float
      (** binary: keep this fraction of the file's bytes — a torn
          checkpoint write. Breaks the CRC-32 trailer; {!Checkpoint.load}
          must fall back to the previous generation. *)
  | Ckpt_flip
      (** binary: XOR one byte after the magic line — a bit-rotted
          checkpoint. Detected by the CRC-32 check. *)
  | Ckpt_stale
      (** binary: alter one character of the embedded 32-hex-char
          fingerprint and {e re-seal} the CRC-32 trailer — a checkpoint
          whose integrity check passes but that belongs to different
          parameters. Exercises the fingerprint-mismatch fallback. *)

val name : fault -> string

val of_name : string -> fault option
(** Inverse of {!name}, with default parameters (e.g. ["truncate"] is
    [Truncate 0.5]). *)

val all_names : string list

val apply : seed:int -> fault -> string -> string
(** Corrupt a trace text. Probabilistic faults hit at least one record
    (when any record exists), so the output is never accidentally
    clean. The [Ckpt_*] faults treat the input as raw bytes (magic
    line + binary payload + CRC trailer, the {!Checkpoint} framing)
    and are meant for checkpoint files, not trace texts. *)

val corpus : ?seed:int -> string -> (string * string) list
(** Named corrupted variants of a well-formed trace text, one per fault
    that a [Strict] parse must reject: truncate, mangle, nan,
    self-loop, negative-id, window-lie. ([Reorder] and [Duplicate] are
    excluded: a strict parse legitimately accepts them.) *)

(** {1 Shard faults}

    Process-level faults for the multi-process shard layer
    ([Omn_shard]). Unlike the faults above these are not byte
    transformations but {e events in time}: at a deterministic point in
    a sharded run — measured in acknowledged per-source results, the
    only monotone clock every run shares — a chosen worker is killed,
    stopped, partitioned, slowed, duplicated, joined or departed, or an
    unauthenticated joiner knocks. A schedule is pure data; the shard
    coordinator interprets it. *)

type shard_fault =
  | Worker_kill  (** SIGKILL the worker process — a hard crash *)
  | Worker_hang
      (** SIGSTOP the worker — alive but unresponsive; must be detected
          by heartbeat timeout, then killed and failed over *)
  | Sock_corrupt
      (** flip a byte inside the next result frame from that worker —
          the CRC check must reject it and the connection be treated as
          broken *)
  | Net_partition
      (** drop the worker's connection without touching the process —
          a network partition; the worker must reconnect (or be timed
          out and failed over), and an eventual rejoin must not
          re-ship the trace or duplicate results *)
  | Net_slow
      (** delay processing of the worker's frames for a bounded window
          shorter than the heartbeat timeout — a slow link must never
          be declared dead *)
  | Net_dup
      (** process the worker's next result frame twice — a retransmit;
          the at-most-once merge must drop the duplicate *)
  | Auth_bad
      (** launch an extra joiner with a wrong pre-shared key — it must
          be rejected with a typed [E-AUTH] and leave the run's result
          untouched *)
  | Worker_join  (** admit a brand-new worker into the ring mid-run *)
  | Worker_leave
      (** graceful departure of the victim: reassign its pending work,
          no respawn *)

val shard_fault_name : shard_fault -> string
val shard_fault_of_name : string -> shard_fault option
val all_shard_faults : shard_fault list
val shard_fault_names : string list

type shard_event = { after_results : int; victim : int; shard_fault : shard_fault }
(** Fire [shard_fault] at worker index [victim] (modulo the live worker
    count at interpretation time) once [after_results] per-source
    results have been acknowledged. *)

val pp_shard_event : Format.formatter -> shard_event -> unit

val shard_schedule :
  seed:int -> workers:int -> results:int -> ?kinds:shard_fault list -> int -> shard_event list
(** [shard_schedule ~seed ~workers ~results n]: [n] events at distinct
    trigger points within the first half of a [results]-source run (so
    failover still has work left to prove itself on), victims and kinds
    drawn from the seeded stream. Deterministic in all arguments;
    ascending by [after_results]. Raises [Invalid_argument] on
    [workers < 1] or empty [kinds]. *)
