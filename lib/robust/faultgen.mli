(** Deterministic fault injection for trace files.

    Operates on the {e textual} trace format (see [Omn_temporal.Trace_io])
    so it can produce inputs no well-typed API would ever build:
    truncated records, mangled fields, NaN times, lying window headers.
    All corruption is driven by [Omn_stats.Rng], so a given [(seed,
    fault, input)] triple always yields the same corrupted output —
    recovery-path tests are reproducible. *)

type fault =
  | Truncate of float
      (** keep this fraction of record lines, then cut the next record
          mid-line (a 3-field prefix) — a crashed logger *)
  | Mangle of float  (** per-record probability: replace a field with garbage *)
  | Nan_times of float  (** per-record probability: replace a time with [nan] *)
  | Self_loop of float  (** per-record probability: set both endpoints equal *)
  | Negative_id of float  (** per-record probability: negate a node id *)
  | Window_lie
      (** shrink the declared window so records fall outside it *)
  | Reorder  (** shuffle record lines (parseable, but out of order) *)
  | Duplicate of float  (** per-record probability: emit the record twice *)

val name : fault -> string

val of_name : string -> fault option
(** Inverse of {!name}, with default parameters (e.g. ["truncate"] is
    [Truncate 0.5]). *)

val all_names : string list

val apply : seed:int -> fault -> string -> string
(** Corrupt a trace text. Probabilistic faults hit at least one record
    (when any record exists), so the output is never accidentally
    clean. *)

val corpus : ?seed:int -> string -> (string * string) list
(** Named corrupted variants of a well-formed trace text, one per fault
    that a [Strict] parse must reject: truncate, mangle, nan,
    self-loop, negative-id, window-lie. ([Reorder] and [Duplicate] are
    excluded: a strict parse legitimately accepts them.) *)
