(** Deterministic fault injection for trace files.

    Operates on the {e textual} trace format (see [Omn_temporal.Trace_io])
    so it can produce inputs no well-typed API would ever build:
    truncated records, mangled fields, NaN times, lying window headers.
    All corruption is driven by [Omn_stats.Rng], so a given [(seed,
    fault, input)] triple always yields the same corrupted output —
    recovery-path tests are reproducible. *)

type fault =
  | Truncate of float
      (** keep this fraction of record lines, then cut the next record
          mid-line (a 3-field prefix) — a crashed logger *)
  | Mangle of float  (** per-record probability: replace a field with garbage *)
  | Nan_times of float  (** per-record probability: replace a time with [nan] *)
  | Self_loop of float  (** per-record probability: set both endpoints equal *)
  | Negative_id of float  (** per-record probability: negate a node id *)
  | Window_lie
      (** shrink the declared window so records fall outside it *)
  | Reorder  (** shuffle record lines (parseable, but out of order) *)
  | Duplicate of float  (** per-record probability: emit the record twice *)
  | Ckpt_truncate of float
      (** binary: keep this fraction of the file's bytes — a torn
          checkpoint write. Breaks the CRC-32 trailer; {!Checkpoint.load}
          must fall back to the previous generation. *)
  | Ckpt_flip
      (** binary: XOR one byte after the magic line — a bit-rotted
          checkpoint. Detected by the CRC-32 check. *)
  | Ckpt_stale
      (** binary: alter one character of the embedded 32-hex-char
          fingerprint and {e re-seal} the CRC-32 trailer — a checkpoint
          whose integrity check passes but that belongs to different
          parameters. Exercises the fingerprint-mismatch fallback. *)

val name : fault -> string

val of_name : string -> fault option
(** Inverse of {!name}, with default parameters (e.g. ["truncate"] is
    [Truncate 0.5]). *)

val all_names : string list

val apply : seed:int -> fault -> string -> string
(** Corrupt a trace text. Probabilistic faults hit at least one record
    (when any record exists), so the output is never accidentally
    clean. The [Ckpt_*] faults treat the input as raw bytes (magic
    line + binary payload + CRC trailer, the {!Checkpoint} framing)
    and are meant for checkpoint files, not trace texts. *)

val corpus : ?seed:int -> string -> (string * string) list
(** Named corrupted variants of a well-formed trace text, one per fault
    that a [Strict] parse must reject: truncate, mangle, nan,
    self-loop, negative-id, window-lie. ([Reorder] and [Duplicate] are
    excluded: a strict parse legitimately accepts them.) *)
