(** Typed errors for the whole pipeline.

    Every failure mode that can be triggered by user input — malformed
    trace files, contradictory headers, corrupt checkpoints, bad CLI
    flags — is described by a value of {!t} carrying an error {!code},
    an optional source location (file, line) and a human-readable
    message. Library code returns [('a, t) result]; the CLI boundary
    turns the code into a documented process exit status. *)

type code =
  | Parse  (** a line or field could not be parsed at all *)
  | Header  (** malformed or contradictory trace header *)
  | Contact  (** invalid contact record: self-loop, NaN time, reversed interval *)
  | Window  (** a record falls outside the declared observation window *)
  | Range  (** node id out of the declared node range *)
  | Io  (** file-system problem *)
  | Checkpoint  (** corrupt or incompatible checkpoint file *)
  | Usage  (** bad command-line usage or parameter *)
  | Compute  (** a computation failed *)
  | Auth  (** shard authentication failure: wrong key, bad MAC, replayed nonce *)
  | Proto  (** shard protocol mismatch: incompatible version or build *)

type t = { code : code; msg : string; file : string option; line : int option }

exception Error of t
(** Raised at boundaries that cannot return a [result]. *)

val v : ?file:string -> ?line:int -> code -> string -> t

val errf :
  ?file:string -> ?line:int -> code -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [errf code fmt ...] builds an error with a formatted message. *)

val code_name : code -> string
(** Stable machine-readable name, e.g. ["E-PARSE"]. *)

val exit_code : code -> int
(** Documented process exit status for the CLI: 1 for computation
    errors ({!Compute}), 2 for bad input or usage (everything else).
    0 is success and never produced here. *)

val in_file : string -> t -> t
(** Attach a file name if the error does not carry one yet. *)

val pp : Format.formatter -> t -> unit
(** ["file: line N: [E-CODE] message"] (location parts optional). *)

val to_string : t -> string

val error : ?file:string -> ?line:int -> code -> string -> ('a, t) result

val errorf :
  ?file:string ->
  ?line:int ->
  code ->
  ('a, Format.formatter, unit, ('b, t) result) format4 ->
  'a

val get_exn : ('a, t) result -> 'a
(** [Ok x -> x]; [Error e -> raise (Error e)]. *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting {!Error}, [Failure] ({!Compute}),
    [Invalid_argument] ({!Usage}) and [Sys_error] ({!Io}) to [Error _]. *)

module Syntax : sig
  val ( let* ) : ('a, t) result -> ('a -> ('b, t) result) -> ('b, t) result
  val ( let+ ) : ('a, t) result -> ('a -> 'b) -> ('b, t) result
end
