(** Crash-safe file writes: temp file in the target directory + rename.

    A reader never observes a torn file — it sees either the previous
    content or the complete new content, even if the writer is killed
    mid-write. On any exception the temp file is removed and the target
    is left untouched. *)

val write : string -> (out_channel -> unit) -> unit
(** [write path f] runs [f] on a fresh temp file in [dirname path],
    then atomically renames it over [path]. Raises [Sys_error] on IO
    failure, and re-raises whatever [f] raises (after cleanup). *)

val write_string : string -> string -> unit
(** [write_string path s] = [write path (fun oc -> output_string oc s)]. *)

val read_to_string : string -> string
(** Whole-file read (binary). Raises [Sys_error] on IO failure. *)
