(** Lenient-ingestion vocabulary: policies, repair actions, reports.

    Real contact traces are dirty — duplicate sightings, records outside
    the declared window, truncated logs. A {!policy} decides what a
    parser does with a bad record; every deviation from the input is
    logged as an {!event} so the resulting {!report} is a complete,
    machine-readable account of what was repaired or dropped. *)

type policy =
  | Strict  (** reject the first problem with a typed error *)
  | Repair  (** fix what can be fixed (clamp, swap, merge), drop the rest *)
  | Skip  (** drop every bad record, change nothing else *)

val policy_name : policy -> string
val policy_of_string : string -> policy option

type action =
  | Dropped_malformed  (** unparsable line or field *)
  | Dropped_self_loop
  | Dropped_nonfinite  (** NaN or infinite contact time *)
  | Dropped_negative_id
  | Dropped_out_of_range  (** node id beyond the declared count (Skip) *)
  | Dropped_out_of_window
  | Clamped_to_window  (** contact intersected with the declared window *)
  | Swapped_interval  (** reversed [t_beg > t_end] fixed by swapping *)
  | Swapped_window  (** reversed window header fixed by swapping *)
  | Merged_duplicate  (** exact duplicate record merged away *)
  | Ignored_header  (** unreadable header directive treated as a comment *)
  | Widened_node_count  (** declared node count raised to fit the records *)

val action_name : action -> string
(** Stable kebab-case name, e.g. ["dropped-self-loop"]. *)

val is_drop : action -> bool
(** [true] when the action lost a record (as opposed to repairing it). *)

type event = { line : int; action : action; detail : string }

type report = {
  policy : policy;
  total_lines : int;  (** non-blank input lines *)
  kept : int;  (** contacts in the resulting trace *)
  events : event list;  (** ascending line order *)
}

val n_dropped : report -> int
val n_repaired : report -> int

val is_clean : report -> bool
(** No repair events: the input was already well-formed. *)

val pp_event : Format.formatter -> event -> unit
(** One line: [repair line=N action=NAME detail="..."]. *)

val pp : Format.formatter -> report -> unit
(** Machine-readable report: a [repair-report ...] summary line followed
    by one {!pp_event} line per event. *)
