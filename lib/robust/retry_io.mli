(** Bounded-retry wrappers for transient I/O failures.

    Long all-pairs runs read traces and write checkpoints thousands of
    times; a single [EINTR] or a briefly-unavailable network filesystem
    must not abort hours of work. [with_retries] re-runs an I/O thunk a
    bounded number of times with capped exponential backoff and
    deterministic seeded jitter, but only for failures classified as
    {!transient} — a missing file or a permission error fails
    immediately.

    Fault injection: tests install a hook with {!set_inject} that runs
    before every attempt and may raise {!Injected}; an injected fault
    is transient, so the retry path is exercisable without a faulty
    disk. *)

exception Injected of string
(** Raised only by injection hooks (see {!set_inject}); always treated
    as transient. *)

val set_inject : (op:string -> path:string -> unit) option -> unit
(** Install (or clear, with [None]) a process-wide fault-injection
    hook, called before every attempt of every retried operation.
    [op] names the operation (["read"], ["write"], ...); [path] the
    file. Raise from the hook — typically {!Injected} — to simulate a
    failure of that attempt. Test-only; not for production code. *)

val transient : exn -> bool
(** Failures worth retrying: {!Injected}, [Unix.EINTR] / [EAGAIN] /
    [EWOULDBLOCK], and [Sys_error] messages that spell out the same
    conditions. Everything else is permanent. *)

val on_retry : (op:string -> unit) ref
(** Called once per retry (not per attempt). [Omn_resilience.Supervise]
    points this at the ["resilience.io_retries"] metrics counter; the
    default is a no-op because this library sits below the metrics
    registry in the dependency order. *)

val with_retries :
  ?attempts:int ->
  ?delay:float ->
  ?delay_max:float ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  op:string ->
  path:string ->
  (unit -> 'a) ->
  'a
(** [with_retries ~op ~path f] runs [f], re-running it on a transient
    exception up to [attempts] times total (default 3) with capped
    exponential backoff: attempt [k] sleeps
    [min delay_max (delay * 2^k)] scaled by a deterministic jitter in
    [0.5, 1.0) derived from [seed], [op] and [path] (defaults:
    [delay = 0.01]s, [delay_max = 0.5]s, [seed = 0]). The last
    transient failure, and any non-transient one, is re-raised.
    [sleep] defaults to [Unix.sleepf]; tests pass [ignore]-like
    functions to run instantly. Raises [Invalid_argument] if
    [attempts < 1]. *)

val eintr : (unit -> 'a) -> 'a
(** [eintr f] runs [f], retrying immediately (no backoff, unbounded)
    while it raises [Unix.EINTR]. For system calls like [select],
    [waitpid] or [accept] that a signal may interrupt without any
    progress being lost: a signal storm must not make the caller skip
    a poll round or abandon a reap. Other exceptions propagate. *)

val read_to_string : ?attempts:int -> string -> string
(** {!Atomic_file.read_to_string} under {!with_retries}. *)

val write : ?attempts:int -> string -> (out_channel -> unit) -> unit
(** {!Atomic_file.write} under {!with_retries}. Retrying is safe: the
    atomic temp-file-plus-rename protocol means a failed attempt never
    leaves a partial target. *)

val write_string : ?attempts:int -> string -> string -> unit
