module Rng = Omn_stats.Rng

type fault =
  | Truncate of float
  | Mangle of float
  | Nan_times of float
  | Self_loop of float
  | Negative_id of float
  | Window_lie
  | Reorder
  | Duplicate of float
  | Ckpt_truncate of float
  | Ckpt_flip
  | Ckpt_stale

let name = function
  | Truncate _ -> "truncate"
  | Mangle _ -> "mangle"
  | Nan_times _ -> "nan"
  | Self_loop _ -> "self-loop"
  | Negative_id _ -> "negative-id"
  | Window_lie -> "window-lie"
  | Reorder -> "reorder"
  | Duplicate _ -> "duplicate"
  | Ckpt_truncate _ -> "ckpt-truncate"
  | Ckpt_flip -> "ckpt-flip"
  | Ckpt_stale -> "ckpt-stale"

let defaults =
  [
    Truncate 0.5; Mangle 0.25; Nan_times 0.25; Self_loop 0.25; Negative_id 0.25;
    Window_lie; Reorder; Duplicate 0.25; Ckpt_truncate 0.75; Ckpt_flip; Ckpt_stale;
  ]

let of_name s = List.find_opt (fun f -> name f = String.lowercase_ascii s) defaults
let all_names = List.map name defaults

(* --- line-level plumbing --- *)

let split_lines text =
  let lines = String.split_on_char '\n' text in
  match List.rev lines with "" :: rest -> List.rev rest | _ -> lines

let unlines lines = String.concat "\n" lines ^ "\n"

let is_record line =
  let t = String.trim line in
  t <> "" && t.[0] <> '#'

let fields line =
  String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")

let n_records lines = List.length (List.filter is_record lines)

(* Apply [f] to each record line with probability [p], and always to one
   uniformly chosen record so the corruption cannot miss entirely. *)
let map_records rng p f lines =
  let n = n_records lines in
  if n = 0 then lines
  else begin
    let forced = Rng.int rng n in
    let i = ref (-1) in
    List.map
      (fun line ->
        if not (is_record line) then line
        else begin
          incr i;
          if !i = forced || Rng.bernoulli rng p then f line else line
        end)
      lines
  end

let set_field k value line =
  fields line |> List.mapi (fun i f -> if i = k then value f else f) |> String.concat " "

(* --- individual faults --- *)

let truncate frac lines =
  let n = n_records lines in
  if n = 0 then lines
  else begin
    let keep = min (n - 1) (max 0 (int_of_float (frac *. float_of_int n))) in
    let out = ref [] and seen = ref 0 and stopped = ref false in
    List.iter
      (fun line ->
        if !stopped then ()
        else if not (is_record line) then out := line :: !out
        else if !seen < keep then begin
          incr seen;
          out := line :: !out
        end
        else begin
          (* cut the record mid-line: keep only its first three fields *)
          let partial =
            fields line |> List.filteri (fun i _ -> i < 3) |> String.concat " "
          in
          out := partial :: !out;
          stopped := true
        end)
      lines;
    List.rev !out
  end

let mangle rng p lines =
  map_records rng p
    (fun line ->
      let nf = List.length (fields line) in
      if nf = 0 then "?!" else set_field (Rng.int rng nf) (fun _ -> "?!") line)
    lines

let nan_times rng p lines =
  map_records rng p
    (fun line ->
      let nf = List.length (fields line) in
      if nf < 4 then line else set_field (2 + Rng.int rng 2) (fun _ -> "nan") line)
    lines

let self_loop rng p lines =
  map_records rng p
    (fun line ->
      match fields line with
      | a :: _ :: _ -> set_field 1 (fun _ -> a) line
      | _ -> line)
    lines

let negative_id rng p lines =
  map_records rng p
    (fun line ->
      set_field 0
        (fun f ->
          match int_of_string_opt f with
          | Some n -> string_of_int (-(abs n) - 1)
          | None -> "-1")
        line)
    lines

let window_lie lines =
  let lo, hi =
    List.fold_left
      (fun (lo, hi) line ->
        if not (is_record line) then (lo, hi)
        else
          match fields line with
          | [ _; _; tb; te ] -> (
            match (float_of_string_opt tb, float_of_string_opt te) with
            | Some tb, Some te -> (Float.min lo tb, Float.max hi te)
            | _ -> (lo, hi))
          | _ -> (lo, hi))
      (infinity, neg_infinity) lines
  in
  let lo, hi = if lo <= hi then (lo, hi) else (0., 1.) in
  let span = hi -. lo in
  let w0, w1 =
    if span > 0. then (lo +. (0.45 *. span), hi -. (0.45 *. span)) else (lo +. 1., lo +. 2.)
  in
  let lie = Printf.sprintf "# window %.17g %.17g" w0 w1 in
  let replaced = ref false in
  let lines =
    List.map
      (fun line ->
        let t = String.trim line in
        if String.length t >= 8 && String.sub t 0 8 = "# window" then begin
          replaced := true;
          lie
        end
        else line)
      lines
  in
  if !replaced then lines else lie :: lines

let reorder rng lines =
  let records = List.filter is_record lines |> Array.of_list in
  Rng.shuffle rng records;
  let i = ref (-1) in
  List.map
    (fun line ->
      if is_record line then begin
        incr i;
        records.(!i)
      end
      else line)
    lines

let duplicate rng p lines =
  let n = n_records lines in
  if n = 0 then lines
  else begin
    let forced = Rng.int rng n in
    let i = ref (-1) in
    List.concat_map
      (fun line ->
        if not (is_record line) then [ line ]
        else begin
          incr i;
          if !i = forced || Rng.bernoulli rng p then [ line; line ] else [ line ]
        end)
      lines
  end

(* --- binary checkpoint faults -----------------------------------------

   These operate on raw bytes framed as in [Checkpoint]: a magic line,
   a binary payload, and an 8-hex-char CRC-32 trailer. Trace-level line
   plumbing would mangle the payload, so they bypass it entirely. *)

let payload_start text =
  match String.index_opt text '\n' with Some i -> i + 1 | None -> 0

let ckpt_truncate frac text =
  let keep = max 1 (int_of_float (frac *. float_of_int (String.length text))) in
  String.sub text 0 (min keep (String.length text))

let ckpt_flip rng text =
  let start = payload_start text in
  if String.length text <= start then text
  else begin
    let pos = start + Rng.int rng (String.length text - start) in
    let b = Bytes.of_string text in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5A));
    Bytes.to_string b
  end

(* Corrupt the embedded fingerprint (the first 32-hex-char run of the
   payload) and recompute the CRC trailer so the file still passes its
   integrity check — simulating a checkpoint from other parameters. *)
let ckpt_stale rng text =
  let start = payload_start text in
  let len = String.length text in
  if len < start + 8 then ckpt_flip rng text
  else begin
    let header = String.sub text 0 start in
    let payload = Bytes.of_string (String.sub text start (len - start - 8)) in
    let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
    let run_at i =
      i + 32 <= Bytes.length payload
      && (let ok = ref true in
          for j = i to i + 31 do
            if not (is_hex (Bytes.get payload j)) then ok := false
          done;
          !ok)
    in
    let rec find i = if i + 32 > Bytes.length payload then None else if run_at i then Some i else find (i + 1) in
    match find 0 with
    | None -> ckpt_flip rng text
    | Some i ->
      let pos = i + Rng.int rng 32 in
      let old = Bytes.get payload pos in
      let replacement = if old = '0' then 'f' else '0' in
      Bytes.set payload pos replacement;
      let payload = Bytes.to_string payload in
      header ^ payload ^ Checkpoint.crc32_hex payload
  end

let apply ~seed fault text =
  let rng = Rng.create seed in
  match fault with
  | Ckpt_truncate frac -> ckpt_truncate frac text
  | Ckpt_flip -> ckpt_flip rng text
  | Ckpt_stale -> ckpt_stale rng text
  | _ ->
    let lines = split_lines text in
    let lines =
      match fault with
      | Truncate frac -> truncate frac lines
      | Mangle p -> mangle rng p lines
      | Nan_times p -> nan_times rng p lines
      | Self_loop p -> self_loop rng p lines
      | Negative_id p -> negative_id rng p lines
      | Window_lie -> window_lie lines
      | Reorder -> reorder rng lines
      | Duplicate p -> duplicate rng p lines
      | Ckpt_truncate _ | Ckpt_flip | Ckpt_stale -> assert false
    in
    unlines lines

(* --- shard faults ------------------------------------------------------

   Process-level faults for the multi-process shard layer. Unlike the
   text/binary faults above these are not transformations of bytes but
   *events in time*: at a deterministic point in a sharded run (measured
   in acknowledged per-source results, the only monotone clock every
   run shares), a chosen worker is killed, stopped, or has one wire
   frame corrupted. The schedule is pure data; [Omn_shard.Coord]
   interprets it. *)

type shard_fault =
  | Worker_kill
  | Worker_hang
  | Sock_corrupt
  | Net_partition
  | Net_slow
  | Net_dup
  | Auth_bad
  | Worker_join
  | Worker_leave

let shard_fault_name = function
  | Worker_kill -> "worker-kill"
  | Worker_hang -> "worker-hang"
  | Sock_corrupt -> "sock-corrupt"
  | Net_partition -> "net-partition"
  | Net_slow -> "net-slow"
  | Net_dup -> "net-dup"
  | Auth_bad -> "auth-bad"
  | Worker_join -> "worker-join"
  | Worker_leave -> "worker-leave"

let all_shard_faults =
  [
    Worker_kill; Worker_hang; Sock_corrupt; Net_partition; Net_slow; Net_dup;
    Auth_bad; Worker_join; Worker_leave;
  ]
let shard_fault_names = List.map shard_fault_name all_shard_faults

let shard_fault_of_name s =
  List.find_opt (fun f -> shard_fault_name f = String.lowercase_ascii s) all_shard_faults

type shard_event = { after_results : int; victim : int; shard_fault : shard_fault }

let pp_shard_event ppf e =
  Format.fprintf ppf "%s worker %d after %d result(s)" (shard_fault_name e.shard_fault) e.victim
    e.after_results

(* [n] events over the first half of the run (so failover has work left
   to prove itself on), at distinct trigger points, victims and kinds
   drawn from the seeded stream — a given (seed, workers, results,
   kinds, n) always yields the same schedule. *)
let shard_schedule ~seed ~workers ~results ?(kinds = all_shard_faults) n =
  if workers < 1 then invalid_arg "Faultgen.shard_schedule: workers < 1";
  if kinds = [] then invalid_arg "Faultgen.shard_schedule: empty kinds";
  let rng = Rng.create (0x5ad lxor seed) in
  let horizon = max 1 (results / 2) in
  let n = min n horizon in
  let kinds = Array.of_list kinds in
  let points = Array.init horizon (fun i -> i) in
  Rng.shuffle rng points;
  let triggers = Array.sub points 0 n in
  Array.sort compare triggers;
  Array.to_list triggers
  |> List.map (fun after_results ->
         {
           after_results;
           victim = Rng.int rng workers;
           shard_fault = kinds.(Rng.int rng (Array.length kinds));
         })

let corpus ?(seed = 1) text =
  [
    Truncate 0.5; Mangle 0.25; Nan_times 0.25; Self_loop 0.25; Negative_id 0.25;
    Window_lie;
  ]
  |> List.map (fun f -> (name f, apply ~seed f text))
