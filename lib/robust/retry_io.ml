exception Injected of string

let inject : (op:string -> path:string -> unit) option ref = ref None
let set_inject h = inject := h
let on_retry : (op:string -> unit) ref = ref (fun ~op:_ -> ())

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let transient = function
  | Injected _ -> true
  | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> true
  | Sys_error msg ->
    contains msg "Interrupted system call"
    || contains msg "Resource temporarily unavailable"
    || contains msg "Try again"
  | _ -> false

let with_retries ?(attempts = 3) ?(delay = 0.01) ?(delay_max = 0.5) ?(seed = 0)
    ?(sleep = Unix.sleepf) ~op ~path f =
  if attempts < 1 then invalid_arg "Retry_io.with_retries: attempts < 1";
  (* One jitter stream per (seed, op, path): retries of distinct files
     do not thunder in lockstep, yet a given operation replays the same
     backoff schedule on every run. *)
  let rng = Omn_stats.Rng.create (seed lxor Hashtbl.hash (op, path)) in
  let attempt_once () =
    (match !inject with Some h -> h ~op ~path | None -> ());
    f ()
  in
  let rec go k =
    match attempt_once () with
    | v -> v
    | exception e when transient e && k + 1 < attempts ->
      !on_retry ~op;
      let base = Float.min delay_max (delay *. (2. ** float_of_int k)) in
      sleep (base *. (0.5 +. (0.5 *. Omn_stats.Rng.float rng)));
      go (k + 1)
  in
  go 0

let rec eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> eintr f

let read_to_string ?attempts path =
  with_retries ?attempts ~op:"read" ~path (fun () -> Atomic_file.read_to_string path)

let write ?attempts path f = with_retries ?attempts ~op:"write" ~path (fun () -> Atomic_file.write path f)
let write_string ?attempts path s = write ?attempts path (fun oc -> output_string oc s)
