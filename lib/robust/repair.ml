type policy = Strict | Repair | Skip

let policy_name = function Strict -> "strict" | Repair -> "repair" | Skip -> "skip"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "strict" -> Some Strict
  | "repair" | "lenient" -> Some Repair
  | "skip" -> Some Skip
  | _ -> None

type action =
  | Dropped_malformed
  | Dropped_self_loop
  | Dropped_nonfinite
  | Dropped_negative_id
  | Dropped_out_of_range
  | Dropped_out_of_window
  | Clamped_to_window
  | Swapped_interval
  | Swapped_window
  | Merged_duplicate
  | Ignored_header
  | Widened_node_count

let action_name = function
  | Dropped_malformed -> "dropped-malformed"
  | Dropped_self_loop -> "dropped-self-loop"
  | Dropped_nonfinite -> "dropped-nonfinite"
  | Dropped_negative_id -> "dropped-negative-id"
  | Dropped_out_of_range -> "dropped-out-of-range"
  | Dropped_out_of_window -> "dropped-out-of-window"
  | Clamped_to_window -> "clamped-to-window"
  | Swapped_interval -> "swapped-interval"
  | Swapped_window -> "swapped-window"
  | Merged_duplicate -> "merged-duplicate"
  | Ignored_header -> "ignored-header"
  | Widened_node_count -> "widened-node-count"

let is_drop = function
  | Dropped_malformed | Dropped_self_loop | Dropped_nonfinite | Dropped_negative_id
  | Dropped_out_of_range | Dropped_out_of_window ->
    true
  | Clamped_to_window | Swapped_interval | Swapped_window | Merged_duplicate
  | Ignored_header | Widened_node_count ->
    false

type event = { line : int; action : action; detail : string }

type report = {
  policy : policy;
  total_lines : int;
  kept : int;
  events : event list;
}

let n_dropped r = List.length (List.filter (fun e -> is_drop e.action) r.events)
let n_repaired r = List.length r.events - n_dropped r
let is_clean r = r.events = []

let pp_event fmt e =
  Format.fprintf fmt "repair line=%d action=%s detail=%S" e.line (action_name e.action)
    e.detail

let pp fmt r =
  Format.fprintf fmt "repair-report policy=%s lines=%d kept=%d repaired=%d dropped=%d"
    (policy_name r.policy) r.total_lines r.kept (n_repaired r) (n_dropped r);
  List.iter (fun e -> Format.fprintf fmt "@\n%a" pp_event e) r.events
