let write path f =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp" in
  let oc = open_out_bin tmp in
  (try
     f oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_string path s = write path (fun oc -> output_string oc s)

let read_to_string path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
