module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace

type info = {
  trace : Omn_temporal.Trace.t;
  internal_nodes : int;
  granularity : float;
  description : string;
}

let day = 86400.

(* Venue-based presets: co-location ground truth split by radio quality,
   scanned with strong detection for same-zone pairs (seat neighbours)
   and weak detection for adjacent-zone pairs (edge of Bluetooth range in
   a crowd) — the weak class fragments into the single-slot bulk of
   Fig. 7, the strong class provides its hours-long tail. *)
let scan_classified rng ~granularity ~near_q ~far_q ~name (classes : Venue.classified) =
  let near = Scanner.detect_mixture rng ~granularity ~qualities:near_q classes.near in
  let far = Scanner.detect_mixture rng ~granularity ~qualities:far_q classes.far in
  Trace.with_name (Omn_temporal.Transform.merge near far) name

let conference ~name ~seed ~n ~days ~description =
  let rng = Rng.create seed in
  let classes = Venue.generate_classified rng ~n ~name (Venue.conference_params ~rng ~n ~days) in
  let scanned =
    scan_classified rng ~granularity:120. ~name classes
      ~near_q:[ (0.5, 0.97); (0.5, 0.55) ]
      ~far_q:[ (1.0, 0.16) ]
  in
  { trace = scanned; internal_nodes = n; granularity = 120.; description }

let infocom05 ?(seed = 1) ?(days = 3.) () =
  conference ~name:"Infocom05" ~seed:(seed * 7919) ~n:41 ~days
    ~description:"conference, 41 iMotes, dense daytime contacts"

let infocom06 ?(seed = 1) ?(days = 4.) () =
  conference ~name:"Infocom06" ~seed:(seed * 104729) ~n:78 ~days
    ~description:"conference, 78 iMotes, largest experiment"

let hong_kong ?(seed = 1) ?(days = 5.) () =
  let rng = Rng.create (seed * 15485863) in
  let n_internal = 37 in
  let spec =
    {
      Gen.name = "Hong-Kong";
      (* Strangers: very low uniform internal rate. *)
      community = Community.uniform ~n:n_internal ~rate:(0.1 /. day);
      modulation = Diurnal.day_night ~night_level:0.05 ();
      duration = Duration.campus;
      t_start = 0.;
      t_end = days *. day;
    }
  in
  let internal = Gen.generate rng spec in
  let with_external =
    External.add rng
      {
        External.n_external = 820;
        sightings_per_internal_per_day = 7.;
        duration = Duration.conference;
        zipf_exponent = 0.9;
      }
      internal
  in
  let scanned = Scanner.detect rng Scanner.default with_external in
  {
    trace = scanned;
    internal_nodes = n_internal;
    granularity = 120.;
    description = "unacquainted people roaming a city; external devices as relays";
  }

let reality_mining ?(seed = 1) ?(weeks = 8) () =
  let rng = Rng.create (seed * 32452843) in
  let n = 97 in
  let params = Venue.campus_params ~rng ~n ~n_groups:10 ~weeks in
  let classes = Venue.generate_classified rng ~n ~name:"Reality-Mining" params in
  let scanned =
    scan_classified rng ~granularity:300. ~name:"Reality-Mining" classes
      ~near_q:[ (0.4, 0.93); (0.6, 0.3) ]
      ~far_q:[ (1.0, 0.09) ]
  in
  {
    trace = scanned;
    internal_nodes = n;
    granularity = 300.;
    description = "campus phones over months (scaled), communities + weekly cycles";
  }

let wlan_campus ?(seed = 1) ?(weeks = 2) () =
  let rng = Rng.create (seed * 49979687) in
  let n = 120 in
  let params = Venue.wlan_campus_params ~rng ~n ~weeks in
  let trace = Venue.generate rng ~n ~name:"Campus-WLAN" params in
  {
    trace;
    internal_nodes = n;
    granularity = 1.;
    description = "campus WLAN association trace (Dartmouth/UCSD style)";
  }

let all ?(seed = 1) () =
  [
    ("Infocom05", infocom05 ~seed ());
    ("Infocom06", infocom06 ~seed ());
    ("Hong-Kong", hong_kong ~seed ());
    ("Reality-Mining", reality_mining ~seed ());
  ]
