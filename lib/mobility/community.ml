module Rng = Omn_stats.Rng

type t = {
  size : int;
  rate : int -> int -> float;
  communities : int array option;
  max_rate : float;
}

let uniform ~n ~rate =
  if n < 1 then invalid_arg "Community.uniform: n < 1";
  if rate < 0. then invalid_arg "Community.uniform: negative rate";
  { size = n; rate = (fun i j -> if i = j then 0. else rate); communities = None; max_rate = rate }

let planted ~rng ~n ~n_communities ~within_rate ~across_rate =
  if n < 1 || n_communities < 1 then invalid_arg "Community.planted: bad sizes";
  if within_rate < 0. || across_rate < 0. then invalid_arg "Community.planted: negative rate";
  let assignment = Array.init n (fun i -> i mod n_communities) in
  Rng.shuffle rng assignment;
  {
    size = n;
    rate =
      (fun i j ->
        if i = j then 0.
        else if assignment.(i) = assignment.(j) then within_rate
        else across_rate);
    communities = Some assignment;
    max_rate = Float.max within_rate across_rate;
  }

let heterogeneous ~rng ~base ~sociability_sigma =
  if sociability_sigma < 0. then invalid_arg "Community.heterogeneous: negative sigma";
  let factors = Array.init base.size (fun _ -> Rng.log_normal rng 0. sociability_sigma) in
  let max_factor = Array.fold_left Float.max 0. factors in
  {
    size = base.size;
    rate = (fun i j -> base.rate i j *. sqrt (factors.(i) *. factors.(j)));
    communities = base.communities;
    max_rate = base.max_rate *. max_factor;
  }

let n t = t.size

let pair_rate t i j =
  if i < 0 || j < 0 || i >= t.size || j >= t.size then invalid_arg "Community.pair_rate: range";
  t.rate i j

let community_of t i =
  match t.communities with
  | None -> None
  | Some a ->
    if i < 0 || i >= t.size then invalid_arg "Community.community_of: range";
    Some a.(i)

let max_rate t = t.max_rate
