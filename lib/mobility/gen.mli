(** The synthetic contact-trace generator.

    Contacts of each pair arrive as an inhomogeneous Poisson process —
    base rate from a {!Community} structure, modulated by a {!Diurnal}
    profile — sampled exactly by thinning. Each arrival gets a duration
    from a {!Duration} model (clipped to the trace window). This is the
    renewal-process generalisation §3.4 alludes to, with the paper's two
    missing ingredients (heterogeneity, non-stationarity) put back. *)

type spec = {
  name : string;
  community : Community.t;
  modulation : Diurnal.t;
  duration : Duration.t;
  t_start : float;
  t_end : float;
}

val generate : Omn_stats.Rng.t -> spec -> Omn_temporal.Trace.t
(** Exact sampling; cost O(#pairs + #contacts / max modulation). *)

val iter_contacts : Omn_stats.Rng.t -> spec -> (Omn_temporal.Contact.t -> unit) -> unit
(** The sampling loop of {!generate} with the contacts handed to a
    callback instead of accumulated — what the disk-sharded generation
    path ({!Shard_sink}) consumes, so both paths draw the identical
    RNG stream for a given seed. Contacts are emitted pair by pair,
    time-ordered within a pair only. *)

val expected_contacts : spec -> float
(** Mean number of contacts the spec will generate (integral of the
    modulated rate over the window and pairs, 1-minute quadrature) —
    used to calibrate presets against Table 1. *)
