(** Time-varying activity profiles (rate modulation in [0, 1]).

    §3.4 of the paper lists non-stationarity — diurnal cycles — among the
    properties real traces have and the random model lacks; the preset
    generators use these profiles to put it back. A profile maps absolute
    time (seconds) to a rate multiplier; generators consume it by
    thinning a homogeneous Poisson process, so only the ratio to the
    profile's maximum matters. *)

type t = float -> float

val constant : float -> t
(** Requires the level to be in [0, 1]. *)

val day_night : ?day_start:float -> ?day_end:float -> night_level:float -> unit -> t
(** 1.0 between [day_start] and [day_end] (seconds past local midnight,
    defaults 8 h and 20 h), [night_level] otherwise. Periodic daily. *)

val conference_sessions : unit -> t
(** Conference rhythm: high during morning/afternoon sessions, spikes at
    coffee breaks and lunch, near-dead at night. Periodic daily. *)

val weekly : weekend_level:float -> t -> t
(** Scales the given profile by [weekend_level] on days 5 and 6 of each
    week (time 0 is a Monday 00:00). *)

val scale : float -> t -> t
(** Pointwise product with a constant in [0, 1]. *)

val max_over_day : t -> float
(** Numerical maximum over one week (1-minute sampling) — the thinning
    envelope generators need. *)
