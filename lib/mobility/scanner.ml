module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

type params = { granularity : float; detection_prob : float }

let default = { granularity = 120.; detection_prob = 0.9 }

let detect_general rng ~granularity ~episode_prob trace =
  if granularity <= 0. then invalid_arg "Scanner: granularity <= 0";
  let t0 = Trace.t_start trace and t1 = Trace.t_end trace in
  let detected = ref [] in
  Trace.iter
    (fun (c : Contact.t) ->
      let prob = episode_prob () in
      (* Scan indices whose instant falls inside [t_beg, t_end]. *)
      let first = int_of_float (Float.ceil ((c.t_beg -. t0) /. granularity)) in
      let last = int_of_float (Float.floor ((c.t_end -. t0) /. granularity)) in
      (* Runs of consecutive successful detections. *)
      let run_start = ref (-1) in
      let flush k_end =
        if !run_start >= 0 then begin
          let t_beg = t0 +. (float_of_int !run_start *. granularity) in
          let t_end = Float.min t1 (t0 +. (float_of_int (k_end + 1) *. granularity)) in
          detected := Contact.make ~a:c.a ~b:c.b ~t_beg ~t_end :: !detected;
          run_start := -1
        end
      in
      for k = first to last do
        if Rng.bernoulli rng prob then begin
          if !run_start < 0 then run_start := k
        end
        else flush (k - 1)
      done;
      flush last)
    trace;
  Trace.create
    ~name:(Trace.name trace ^ "+scanned")
    ~n_nodes:(Trace.n_nodes trace) ~t_start:t0 ~t_end:t1 !detected

let detect rng p trace =
  if not (0. < p.detection_prob && p.detection_prob <= 1.) then
    invalid_arg "Scanner.detect: detection_prob outside (0,1]";
  detect_general rng ~granularity:p.granularity ~episode_prob:(fun () -> p.detection_prob) trace

let detect_mixture rng ~granularity ~qualities trace =
  if qualities = [] then invalid_arg "Scanner.detect_mixture: empty mixture";
  List.iter
    (fun (w, prob) ->
      if w <= 0. then invalid_arg "Scanner.detect_mixture: non-positive weight";
      if not (0. <= prob && prob <= 1.) then
        invalid_arg "Scanner.detect_mixture: detection_prob outside [0,1]")
    qualities;
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. qualities in
  let episode_prob () =
    let u = Rng.float rng *. total in
    let rec pick acc = function
      | [] -> assert false
      | [ (_, prob) ] -> prob
      | (w, prob) :: rest -> if u <= acc +. w then prob else pick (acc +. w) rest
    in
    pick 0. qualities
  in
  detect_general rng ~granularity ~episode_prob trace
