module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

type spec = {
  name : string;
  community : Community.t;
  modulation : Diurnal.t;
  duration : Duration.t;
  t_start : float;
  t_end : float;
}

let check spec =
  if spec.t_start >= spec.t_end then invalid_arg "Gen: empty window";
  if Community.n spec.community < 1 then invalid_arg "Gen: no nodes"

(* Thinning: candidate arrivals at the envelope rate (base x profile max),
   each kept with probability profile(t) / max. *)
let pair_arrivals rng spec ~base_rate =
  let envelope = Diurnal.max_over_day spec.modulation in
  let max_rate = base_rate *. envelope in
  if max_rate <= 0. then []
  else begin
    let arrivals = ref [] in
    let t = ref spec.t_start in
    let continue = ref true in
    while !continue do
      t := !t +. Rng.exponential rng max_rate;
      if !t >= spec.t_end then continue := false
      else if Rng.float rng < spec.modulation !t /. envelope then arrivals := !t :: !arrivals
    done;
    List.rev !arrivals
  end

(* Pair-major contact emission: the loop below is the one RNG-consuming
   traversal, shared by the in-memory and disk-sharded paths so both
   draw the identical stream for a given seed. Contacts arrive ordered
   within a pair but not globally. *)
let iter_contacts rng spec f =
  check spec;
  let n = Community.n spec.community in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let base = Community.pair_rate spec.community i j in
      if base > 0. then
        List.iter
          (fun t_beg ->
            let d = Duration.sample rng spec.duration in
            let t_end = Float.min spec.t_end (t_beg +. d) in
            f (Contact.make ~a:i ~b:j ~t_beg ~t_end))
          (pair_arrivals rng spec ~base_rate:base)
    done
  done

let generate rng spec =
  let contacts = ref [] in
  iter_contacts rng spec (fun c -> contacts := c :: !contacts);
  Trace.create ~name:spec.name ~n_nodes:(Community.n spec.community) ~t_start:spec.t_start
    ~t_end:spec.t_end !contacts

let expected_contacts spec =
  check spec;
  let n = Community.n spec.community in
  let rate_sum = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      rate_sum := !rate_sum +. Community.pair_rate spec.community i j
    done
  done;
  (* Quadrature of the modulation over the window. *)
  let step = 60. in
  let steps = int_of_float (Float.ceil ((spec.t_end -. spec.t_start) /. step)) in
  let integral = ref 0. in
  for k = 0 to steps - 1 do
    let t0 = spec.t_start +. (float_of_int k *. step) in
    let t1 = Float.min spec.t_end (t0 +. step) in
    integral := !integral +. ((t1 -. t0) *. spec.modulation (0.5 *. (t0 +. t1)))
  done;
  !rate_sum *. !integral
