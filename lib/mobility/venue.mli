(** Venue (co-location) mobility model.

    Contacts in the real traces come from people sharing a physical
    space, which makes concurrent contacts {e transitive}: while A–B and
    B–C are in range, A–C usually is too, so the contemporaneous contact
    graph is a union of overlapping neighbourhoods and multi-hop paths
    through a crowd are short. Independent pairwise point processes
    (module {!Gen}) lack this closure and overstate hop counts at small
    delays; this model restores it.

    Each node follows a continuous-time jump process over
    (place, zone) states: a set of {e places} (conference hall, coffee
    area, hotel, office building, ...), each subdivided into a
    [width x height] grid of radio-range-sized {e zones}; a time-varying
    {e schedule} gives each node its attraction to each place (sessions,
    meals, nights at the hotel); nodes change place at a time-varying
    rate and re-draw their zone within the place at another. Two nodes
    are in ground-truth radio contact while they are in the same place
    with zones at Chebyshev distance at most 1 — {e near} when the zone
    is the same (adjacent seats: strong radio), {e far} otherwise
    (marginal radio). Feed the two classes to {!Scanner.detect} with
    different detection probabilities to model what iMotes log: crowded
    rooms at the edge of Bluetooth range yield the fragmented, mostly
    single-slot contacts of Fig. 7, while seat neighbours yield its
    hours-long tail. *)

type place = { name : string; width : int; height : int; isolated : bool }
(** A [width x height] zone grid; [width, height >= 1]. When [isolated]
    is false, radio reaches zones at Chebyshev distance <= 1, so keep the
    grid diameter small (a real room rarely spans more than ~3 radio
    ranges); [isolated] places (hotel rooms along a floor, open-air
    expanses, private homes) only connect people inside the same zone. *)

type params = {
  places : place array;
  schedule : node:int -> float -> float array;
      (** attraction weight per place (any non-negative scale) at an
          absolute time; re-read at each jump *)
  home_zone : node:int -> place:int -> int option;
      (** fixed zone (hotel room, office desk) a node gravitates to in a
          place; [None] = always a uniform draw *)
  home_bias : float;
      (** probability a zone draw lands on the home zone when one exists
          (otherwise uniform) *)
  move_rate : float -> float;  (** place-change rate (per second) at time t *)
  move_rate_max : float;       (** envelope for thinning; >= sup move_rate *)
  zone_rate : float -> float;  (** zone re-draw rate within the place *)
  zone_rate_max : float;
  t_start : float;
  t_end : float;
  min_overlap : float;  (** discard co-presences shorter than this (s) *)
}

type classified = {
  near : Omn_temporal.Trace.t;  (** same-zone proximity intervals *)
  far : Omn_temporal.Trace.t;   (** adjacent-zone proximity intervals *)
}

val generate_classified :
  Omn_stats.Rng.t -> n:int -> name:string -> params -> classified
(** Ground-truth proximity, split by radio quality. Per-pair touching
    intervals are merged within each class.
    Cost: O(jumps + contacts x place occupancy). *)

val generate : Omn_stats.Rng.t -> n:int -> name:string -> params -> Omn_temporal.Trace.t
(** Union of both classes (merged per pair). *)

val iter_contacts :
  Omn_stats.Rng.t -> n:int -> params -> (Omn_temporal.Contact.t -> unit) -> unit
(** The contact multiset of {!generate} handed to a callback instead of
    a trace — identical RNG stream, so feeding the callback into a
    {!Shard_sink} writes exactly the contacts {!generate} would build
    (the sink re-establishes time order). Emission order is
    per-pair-merged, not global time order. *)

val conference_params : rng:Omn_stats.Rng.t -> n:int -> days:float -> params
(** Calibrated conference venue: hall / coffee / corridor / restaurant /
    hotel, session-break-lunch schedule, long sitting during sessions,
    churn during breaks. *)

val campus_params :
  rng:Omn_stats.Rng.t -> n:int -> n_groups:int -> weeks:int -> params
(** Calibrated campus for the Reality-Mining preset: one building per
    group (random balanced assignment), shared cafeteria, home at night
    and on weekends. *)

val wlan_campus_params : rng:Omn_stats.Rng.t -> n:int -> weeks:int -> params
(** Campus WLAN model (the Dartmouth/UCSD validation data sets): isolated
    access-point zones — contact means association to the same AP — with
    per-student major/minor buildings, library evenings and dorm nights.
    Use the ground-truth trace directly (association logs are exact; no
    scanner pass). *)
