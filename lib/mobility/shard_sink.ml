module Contact = Omn_temporal.Contact

(* Two-phase out-of-core sort. Generators emit contacts pair by pair —
   nowhere near time order — so the sink first spills each contact to
   the shard whose time slice contains its [t_beg] (append-only, raw
   records, O(1) memory per contact), then [finish] sorts one shard at
   a time and writes the final headers. The shard slices partition the
   window by [t_beg] and every shard is internally sorted by
   [Contact.compare_by_start], so the concatenation of the shards is
   the {e globally} sorted contact sequence: streaming the index
   through [Trace_stream] yields the byte-identical trace that
   [Trace.create] would build in memory. Peak memory is one shard's
   contacts, not the whole trace. *)

type t = {
  path : string;  (* index path; shard i = path ^ ".%04d" *)
  name : string;
  n_nodes : int;
  t_start : float;
  t_end : float;
  shards : int;
  spills : out_channel array;
  mutable added : int;
  mutable finished : bool;
}

let shard_file path i = Printf.sprintf "%s.%04d" path i
let spill_file path i = Printf.sprintf "%s.spill.%04d" path i

let create ?(shards = 16) ~name ~n_nodes ~t_start ~t_end path =
  if shards < 1 || shards > 4096 then invalid_arg "Shard_sink.create: shards out of [1, 4096]";
  if n_nodes < 0 then invalid_arg "Shard_sink.create: n_nodes < 0";
  if t_start > t_end then invalid_arg "Shard_sink.create: reversed window";
  let spills = Array.init shards (fun i -> open_out_bin (spill_file path i)) in
  { path; name; n_nodes; t_start; t_end; shards; spills; added = 0; finished = false }

let bucket t t_beg =
  let span = t.t_end -. t.t_start in
  if span <= 0. then 0
  else
    let k = int_of_float (float_of_int t.shards *. ((t_beg -. t.t_start) /. span)) in
    max 0 (min (t.shards - 1) k)

let add t (c : Contact.t) =
  if t.finished then invalid_arg "Shard_sink.add: finished";
  if c.a < 0 || c.a >= t.n_nodes || c.b < 0 || c.b >= t.n_nodes then
    invalid_arg (Printf.sprintf "Shard_sink.add: node id out of range (n_nodes = %d)" t.n_nodes);
  if c.t_beg < t.t_start || c.t_end > t.t_end then
    invalid_arg
      (Printf.sprintf "Shard_sink.add: contact [%g; %g] outside window [%g; %g]" c.t_beg c.t_end
         t.t_start t.t_end);
  Printf.fprintf t.spills.(bucket t c.t_beg) "%d %d %.17g %.17g\n" c.a c.b c.t_beg c.t_end;
  t.added <- t.added + 1

let contacts_written t = t.added

let parse_spill text =
  let contacts = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
       if line <> "" then
         match String.split_on_char ' ' line with
         | [ a; b; t_beg; t_end ] ->
           contacts :=
             Contact.make ~a:(int_of_string a) ~b:(int_of_string b)
               ~t_beg:(float_of_string t_beg) ~t_end:(float_of_string t_end)
             :: !contacts
         | _ -> failwith "Shard_sink: corrupt spill record");
  Array.of_list (List.rev !contacts)

let cleanup_spills t =
  Array.iteri
    (fun i oc ->
      close_out_noerr oc;
      try Sys.remove (spill_file t.path i) with Sys_error _ -> ())
    t.spills

let abort t =
  if not t.finished then begin
    t.finished <- true;
    cleanup_spills t
  end

let finish t =
  if t.finished then invalid_arg "Shard_sink.finish: finished";
  t.finished <- true;
  Array.iter close_out t.spills;
  let files = ref [] in
  Fun.protect
    ~finally:(fun () -> cleanup_spills t)
    (fun () ->
      for i = 0 to t.shards - 1 do
        let contacts =
          parse_spill (In_channel.with_open_bin (spill_file t.path i) In_channel.input_all)
        in
        Array.sort Contact.compare_by_start contacts;
        let file = shard_file t.path i in
        Omn_robust.Retry_io.write file (fun oc ->
          Printf.fprintf oc "# omn-trace 1\n";
          Printf.fprintf oc "# name %s\n" t.name;
          Printf.fprintf oc "# nodes %d\n" t.n_nodes;
          Printf.fprintf oc "# window %.17g %.17g\n" t.t_start t.t_end;
          Array.iter
            (fun (c : Contact.t) ->
              Printf.fprintf oc "%d %d %.17g %.17g\n" c.a c.b c.t_beg c.t_end)
            contacts);
        files := Filename.basename file :: !files
      done);
  Omn_robust.Retry_io.write t.path (fun oc ->
    Printf.fprintf oc "# omn-shards 1\n";
    Printf.fprintf oc "# name %s\n" t.name;
    List.iter (fun f -> Printf.fprintf oc "%s\n" f) (List.rev !files))
