(** Disk-emitting trace generation: time-ordered shards + index.

    The in-memory generators build the whole contact list before
    [Trace.create] sorts it — a dead end at millions of nodes. A sink
    accepts contacts in {e any} order (generators emit pair by pair),
    spills each to the shard owning its [t_beg] time slice, and on
    {!finish} sorts one shard at a time, writing each as a complete
    [Trace_io]-format file plus an [# omn-shards 1] index listing them
    in time order. Peak memory is one shard's contacts.

    Because the shard slices partition the window by [t_beg] and each
    shard is sorted by [Contact.compare_by_start], concatenating the
    shards yields the globally sorted contact sequence —
    [Omn_temporal.Trace_stream] over the index produces the
    byte-identical trace the in-memory generator would build. *)

type t

val create :
  ?shards:int ->
  name:string ->
  n_nodes:int ->
  t_start:float ->
  t_end:float ->
  string ->
  t
(** [create ~name ~n_nodes ~t_start ~t_end path] opens [shards]
    (default 16, max 4096) spill files next to [path]; the final
    artifacts are [path] (the index) and [path.NNNN] (the shards).
    Raises [Invalid_argument] on a bad shard count, [n_nodes < 0] or a
    reversed window; [Sys_error] on IO failure. *)

val add : t -> Omn_temporal.Contact.t -> unit
(** Spill one contact (validated against the node range and window,
    [Invalid_argument] otherwise). O(1) memory; any emission order. *)

val finish : t -> unit
(** Sort and write every shard (crash-safe temp-and-rename per file),
    then the index — the index is written last, so it never names a
    missing shard. Spill files are removed, also on exception. *)

val abort : t -> unit
(** Drop the spill files without writing shards. Idempotent. *)

val contacts_written : t -> int
