type t = float -> float

let hour = 3600.
let day = 86400.

let constant level =
  if not (0. <= level && level <= 1.) then invalid_arg "Diurnal.constant: outside [0,1]";
  fun _ -> level

let time_of_day t =
  let x = Float.rem t day in
  if x < 0. then x +. day else x

let day_night ?(day_start = 8. *. hour) ?(day_end = 20. *. hour) ~night_level () =
  if not (0. <= night_level && night_level <= 1.) then
    invalid_arg "Diurnal.day_night: night_level outside [0,1]";
  fun t ->
    let x = time_of_day t in
    if day_start <= x && x < day_end then 1. else night_level

let conference_sessions () =
  fun t ->
    let x = time_of_day t /. hour in
    if x < 7. then 0.02 (* night *)
    else if x < 9. then 0.55 (* registration, breakfast *)
    else if x < 10.5 then 0.8 (* morning session *)
    else if x < 11. then 1.0 (* coffee break crush *)
    else if x < 12.5 then 0.8 (* late morning session *)
    else if x < 14. then 0.95 (* lunch *)
    else if x < 15.5 then 0.75 (* afternoon session *)
    else if x < 16. then 1.0 (* coffee break *)
    else if x < 18. then 0.7 (* last session *)
    else if x < 23. then 0.35 (* evening socialising *)
    else 0.02

let weekly ~weekend_level profile =
  if not (0. <= weekend_level && weekend_level <= 1.) then
    invalid_arg "Diurnal.weekly: weekend_level outside [0,1]";
  fun t ->
    let day_index = int_of_float (Float.floor (t /. day)) mod 7 in
    let day_index = if day_index < 0 then day_index + 7 else day_index in
    let base = profile t in
    if day_index >= 5 then base *. weekend_level else base

let scale factor profile =
  if not (0. <= factor && factor <= 1.) then invalid_arg "Diurnal.scale: outside [0,1]";
  fun t -> factor *. profile t

let max_over_day profile =
  let best = ref 0. in
  let step = 60. in
  let steps = int_of_float (7. *. day /. step) in
  for i = 0 to steps do
    best := Float.max !best (profile (float_of_int i *. step))
  done;
  !best
