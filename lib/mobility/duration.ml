module Rng = Omn_stats.Rng

type t =
  | Exponential of float
  | Log_normal of float * float  (* mu, sigma *)
  | Pareto of float * float
  | Constant of float
  | Mixture of (float * t) array  (* cumulative weights in [0,1] *)

let exponential ~mean =
  if mean <= 0. then invalid_arg "Duration.exponential: mean <= 0";
  Exponential mean

let log_normal ~median ~sigma =
  if median <= 0. || sigma < 0. then invalid_arg "Duration.log_normal: bad parameters";
  Log_normal (log median, sigma)

let pareto ~alpha ~x_min =
  if alpha <= 0. || x_min <= 0. then invalid_arg "Duration.pareto: bad parameters";
  Pareto (alpha, x_min)

let constant d =
  if d <= 0. then invalid_arg "Duration.constant: non-positive";
  Constant d

let mixture components =
  if components = [] then invalid_arg "Duration.mixture: empty";
  List.iter (fun (w, _) -> if w <= 0. then invalid_arg "Duration.mixture: non-positive weight")
    components;
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. components in
  let acc = ref 0. in
  let cumulative =
    List.map
      (fun (w, c) ->
        acc := !acc +. (w /. total);
        (!acc, c))
      components
  in
  Mixture (Array.of_list cumulative)

let conference =
  mixture
    [
      (0.93, exponential ~mean:30.);                 (* single-scan bulk *)
      (0.058, log_normal ~median:260. ~sigma:0.6);   (* a few slots *)
      (0.012, log_normal ~median:2400. ~sigma:1.0);  (* sessions; tail past 1 h *)
    ]

let campus =
  mixture
    [
      (0.45, exponential ~mean:120.);
      (0.45, log_normal ~median:900. ~sigma:1.0);
      (0.10, log_normal ~median:5400. ~sigma:0.9);
    ]

let rec sample rng t =
  let raw =
    match t with
    | Exponential mean -> Rng.exponential rng (1. /. mean)
    | Log_normal (mu, sigma) -> Rng.log_normal rng mu sigma
    | Pareto (alpha, x_min) -> Rng.pareto rng alpha x_min
    | Constant d -> d
    | Mixture components ->
      let u = Rng.float rng in
      let chosen = ref (snd components.(Array.length components - 1)) in
      (try
         Array.iter
           (fun (cum, c) ->
             if u <= cum then begin
               chosen := c;
               raise Exit
             end)
           components
       with Exit -> ());
      sample rng !chosen
  in
  Float.max 1. raw
