(** Contact-duration models.

    The paper's Fig. 7 shows heavy-tailed contact durations: in Infocom06
    over 75 % of contacts last a single 2-minute scan slot while ~0.4 %
    exceed one hour. A two-component mixture — a short bulk plus a
    log-normal tail — reproduces that CCDF shape. *)

type t

val exponential : mean:float -> t
(** Memoryless durations with the given mean (seconds). *)

val log_normal : median:float -> sigma:float -> t
(** Heavy-ish tail: [exp (Normal (ln median) sigma)]. *)

val pareto : alpha:float -> x_min:float -> t
(** Power-law tail. *)

val constant : float -> t

val mixture : (float * t) list -> t
(** Weighted mixture; weights must be positive (normalised internally).
    Raises [Invalid_argument] on an empty list. *)

val conference : t
(** Calibrated bulk-plus-tail mixture for conference crowds: ~75 % of
    sampled durations below 2 min, a fraction of a percent above 1 h
    (before scanner quantisation). *)

val campus : t
(** Longer median (familiar people sit together): minutes to hours. *)

val sample : Omn_stats.Rng.t -> t -> float
(** Always > 0 (degenerate draws are clamped to one second). *)
