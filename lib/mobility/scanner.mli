(** Periodic-scan detection model (§5.1's "granularity" and sampling
    effects).

    iMotes log a contact only when a periodic Bluetooth inquiry (every
    [granularity] seconds) answers; a proximity episode shorter than one
    scan period can be missed entirely, and every detected episode is
    reported with scan-aligned bounds, so detected durations are
    multiples of the granularity — which is why over 75 % of Infocom
    contacts appear exactly one slot long (Fig. 7). *)

type params = {
  granularity : float;       (** seconds between scans *)
  detection_prob : float;    (** per-scan success probability (interference,
                                 §5.1's missed contacts) *)
}

val default : params
(** 120 s granularity (the Infocom/Hong-Kong setting), 0.9 detection. *)

val detect : Omn_stats.Rng.t -> params -> Omn_temporal.Trace.t -> Omn_temporal.Trace.t
(** Ground truth -> what the experiment would have recorded: scans happen
    at multiples of the granularity from the trace start; a proximity
    interval is detected at each covered scan independently with
    [detection_prob]; consecutive detections merge into a contact
    [[first scan; last scan + granularity]] (clipped to the window; a
    single detection yields a one-slot contact). Undetected episodes
    vanish. *)

val detect_mixture :
  Omn_stats.Rng.t ->
  granularity:float ->
  qualities:(float * float) list ->
  Omn_temporal.Trace.t ->
  Omn_temporal.Trace.t
(** Like {!detect} but radio link quality is drawn {e per proximity
    episode} from a weighted mixture [(weight, detection_prob)] — a pair
    sitting together keeps a good link for the whole episode while a
    marginal-range pair keeps a bad one, so detection failures are
    correlated in time. This is what fragments marginal links into many
    single-slot contacts yet leaves strong links as the hours-long tail
    of Fig. 7. *)
