module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

type params = {
  n : int;
  area : float;
  v_min : float;
  v_max : float;
  mean_pause : float;
  range : float;
  horizon : float;
  dt : float;
}

let default =
  {
    n = 40;
    area = 500.;
    v_min = 0.5;
    v_max = 1.5;
    mean_pause = 60.;
    range = 30.;
    horizon = 6. *. 3600.;
    dt = 1.;
  }

let check p =
  if p.n < 1 then invalid_arg "Random_waypoint: n < 1";
  if p.area <= 0. || p.range <= 0. || p.horizon <= 0. || p.dt <= 0. then
    invalid_arg "Random_waypoint: non-positive geometry";
  if not (0. < p.v_min && p.v_min <= p.v_max) then invalid_arg "Random_waypoint: bad speeds";
  if p.mean_pause < 0. then invalid_arg "Random_waypoint: negative pause"

(* One node's trajectory, as a function of time built from a leg list.
   Legs: (t0, t1, x0, y0, x1, y1) - linear motion; pauses are legs with
   equal endpoints. *)
type leg = { t0 : float; t1 : float; x0 : float; y0 : float; x1 : float; y1 : float }

let trajectory rng p =
  let legs = ref [] in
  let t = ref 0. and x = ref (Rng.float_range rng 0. p.area)
  and y = ref (Rng.float_range rng 0. p.area) in
  while !t < p.horizon do
    (* travel leg *)
    let tx = Rng.float_range rng 0. p.area and ty = Rng.float_range rng 0. p.area in
    let speed = Rng.float_range rng p.v_min p.v_max in
    let dist = Float.hypot (tx -. !x) (ty -. !y) in
    let dur = dist /. speed in
    legs := { t0 = !t; t1 = !t +. dur; x0 = !x; y0 = !y; x1 = tx; y1 = ty } :: !legs;
    t := !t +. dur;
    x := tx;
    y := ty;
    (* pause leg *)
    if p.mean_pause > 0. && !t < p.horizon then begin
      let pause = Rng.exponential rng (1. /. p.mean_pause) in
      legs := { t0 = !t; t1 = !t +. pause; x0 = !x; y0 = !y; x1 = !x; y1 = !y } :: !legs;
      t := !t +. pause
    end
  done;
  Array.of_list (List.rev !legs)

let position_on legs time =
  (* Legs are contiguous from 0; binary search the covering leg. *)
  let lo = ref 0 and hi = ref (Array.length legs - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if legs.(mid).t1 < time then lo := mid + 1 else hi := mid
  done;
  let leg = legs.(!lo) in
  let span = leg.t1 -. leg.t0 in
  let frac = if span <= 0. then 0. else Float.max 0. (Float.min 1. ((time -. leg.t0) /. span)) in
  (leg.x0 +. (frac *. (leg.x1 -. leg.x0)), leg.y0 +. (frac *. (leg.y1 -. leg.y0)))

let trajectories rng p = Array.init p.n (fun _ -> trajectory rng p)

let positions_at rng p ~times =
  check p;
  let trajs = trajectories rng p in
  Array.map (fun time -> Array.map (fun legs -> position_on legs time) trajs) times

let generate rng p =
  check p;
  let trajs = trajectories rng p in
  let steps = int_of_float (Float.floor (p.horizon /. p.dt)) in
  let n = p.n in
  (* open_since.(i).(j) for i < j: sample index at which current proximity
     run started, or -1. *)
  let open_since = Array.make_matrix n n (-1) in
  let contacts = ref [] in
  let close i j ~from_step ~upto_time =
    let t_beg = float_of_int from_step *. p.dt in
    contacts := Contact.make ~a:i ~b:j ~t_beg ~t_end:upto_time :: !contacts
  in
  let range2 = p.range *. p.range in
  let pos = Array.make n (0., 0.) in
  for k = 0 to steps do
    let time = float_of_int k *. p.dt in
    for v = 0 to n - 1 do
      pos.(v) <- position_on trajs.(v) time
    done;
    for i = 0 to n - 1 do
      let xi, yi = pos.(i) in
      for j = i + 1 to n - 1 do
        let xj, yj = pos.(j) in
        let dx = xi -. xj and dy = yi -. yj in
        let near = (dx *. dx) +. (dy *. dy) <= range2 in
        if near && open_since.(i).(j) < 0 then open_since.(i).(j) <- k
        else if (not near) && open_since.(i).(j) >= 0 then begin
          close i j ~from_step:open_since.(i).(j) ~upto_time:(float_of_int (k - 1) *. p.dt);
          open_since.(i).(j) <- -1
        end
      done
    done
  done;
  let final_time = float_of_int steps *. p.dt in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if open_since.(i).(j) >= 0 then close i j ~from_step:open_since.(i).(j) ~upto_time:final_time
    done
  done;
  Trace.create ~name:"random-waypoint" ~n_nodes:n ~t_start:0. ~t_end:p.horizon !contacts
