(** External Bluetooth devices (§5.1).

    The Haggle experiments also log sightings of non-experimental
    devices (phones, PDAs). Externals never log anything themselves, so
    external–external contacts are invisible (the paper notes this
    explicitly); they still matter as relays between internal devices —
    in Hong-Kong they are what keeps the network connected at all. *)

type params = {
  n_external : int;
  sightings_per_internal_per_day : float;
      (** rate at which one internal device sights {e some} external *)
  duration : Duration.t;
  zipf_exponent : float;
      (** popularity skew of externals: which external is sighted follows
          a Zipf(s) law — a few regulars, a long tail seen once *)
}

val add :
  Omn_stats.Rng.t -> params -> Omn_temporal.Trace.t -> Omn_temporal.Trace.t
(** Returns a trace over [n_internal + n_external] nodes (externals get
    the ids after the internals) with external sightings added. *)
