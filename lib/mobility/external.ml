module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

type params = {
  n_external : int;
  sightings_per_internal_per_day : float;
  duration : Duration.t;
  zipf_exponent : float;
}

(* Sample from Zipf(s) over 1..n via inverse transform on precomputed
   cumulative weights. *)
let zipf_sampler s n =
  if n < 1 then invalid_arg "External: n_external < 1";
  let weights = Array.init n (fun i -> (float_of_int (i + 1)) ** -.s) in
  let cum = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cum.(i) <- !acc)
    weights;
  let total = !acc in
  fun rng ->
    let u = Rng.float rng *. total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo

let add rng p trace =
  if p.n_external < 1 then invalid_arg "External.add: n_external < 1";
  if p.sightings_per_internal_per_day < 0. then invalid_arg "External.add: negative rate";
  if p.zipf_exponent < 0. then invalid_arg "External.add: negative zipf exponent";
  let n_internal = Trace.n_nodes trace in
  let t0 = Trace.t_start trace and t1 = Trace.t_end trace in
  let pick_external = zipf_sampler p.zipf_exponent p.n_external in
  let rate = p.sightings_per_internal_per_day /. 86400. in
  let contacts = ref (Trace.fold (fun acc c -> c :: acc) [] trace) in
  for internal = 0 to n_internal - 1 do
    if rate > 0. then begin
      let t = ref t0 in
      let continue = ref true in
      while !continue do
        t := !t +. Rng.exponential rng rate;
        if !t >= t1 then continue := false
        else begin
          let ext = n_internal + pick_external rng in
          let d = Duration.sample rng p.duration in
          contacts :=
            Contact.make ~a:internal ~b:ext ~t_beg:!t ~t_end:(Float.min t1 (!t +. d)) :: !contacts
        end
      done
    end
  done;
  Trace.create ~name:(Trace.name trace) ~n_nodes:(n_internal + p.n_external) ~t_start:t0
    ~t_end:t1 !contacts
