(** Block-model contact-rate structure.

    §3.4: "people tend to come close to each other according to their
    habits and the communities of interest that they share" — the
    homogeneity assumption of the random model that real traces violate.
    This module builds per-pair base rates with planted communities. *)

type t

val uniform : n:int -> rate:float -> t
(** Every pair meets at the same base rate (contacts per pair per
    second) — the homogeneous case of §3. *)

val planted :
  rng:Omn_stats.Rng.t ->
  n:int ->
  n_communities:int ->
  within_rate:float ->
  across_rate:float ->
  t
(** Nodes assigned to [n_communities] balanced communities (random
    assignment); pairs inside a community meet at [within_rate], others
    at [across_rate]. *)

val heterogeneous : rng:Omn_stats.Rng.t -> base:t -> sociability_sigma:float -> t
(** Multiply each node's rates by a log-normal "sociability" factor
    (median 1): some people simply meet more people. *)

val n : t -> int
val pair_rate : t -> int -> int -> float
(** Base rate for a pair; symmetric; 0 on the diagonal. *)

val community_of : t -> int -> int option
(** Community index if the structure has one. *)

val max_rate : t -> float
