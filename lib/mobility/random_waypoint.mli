(** Random-waypoint mobility with range-based contact extraction.

    The one generator family whose contacts come from actual simulated
    motion rather than a point process: [n] nodes move in an
    [area x area] square, each repeatedly picking a uniform waypoint, a
    uniform speed in [[v_min, v_max]] and an exponential pause; two nodes
    are in (ground-truth) contact while their distance is at most
    [range]. Positions are sampled every [dt] seconds and proximity runs
    are merged into contact intervals. Feed the result through
    {!Scanner.detect} to model what Bluetooth devices would log. *)

type params = {
  n : int;
  area : float;        (** side of the square, metres *)
  v_min : float;       (** m/s *)
  v_max : float;
  mean_pause : float;  (** seconds *)
  range : float;       (** radio range, metres *)
  horizon : float;     (** seconds *)
  dt : float;          (** sampling step, seconds *)
}

val default : params
(** 40 pedestrians in 500 m x 500 m, 0.5–1.5 m/s, 60 s mean pause, 30 m
    range, 6 h horizon, 1 s sampling. *)

val generate : Omn_stats.Rng.t -> params -> Omn_temporal.Trace.t

val positions_at :
  Omn_stats.Rng.t -> params -> times:float array -> (float * float) array array
(** [positions_at ... ~times].(k).(v): position of node [v] at
    [times.(k)] — same trajectories as {!generate} for the same RNG
    state; exposed for tests that re-derive contacts from geometry. *)
