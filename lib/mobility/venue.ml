module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

type place = { name : string; width : int; height : int; isolated : bool }

type params = {
  places : place array;
  schedule : node:int -> float -> float array;
  home_zone : node:int -> place:int -> int option;
  home_bias : float;
  move_rate : float -> float;
  move_rate_max : float;
  zone_rate : float -> float;
  zone_rate_max : float;
  t_start : float;
  t_end : float;
  min_overlap : float;
}

type classified = { near : Omn_temporal.Trace.t; far : Omn_temporal.Trace.t }

let zones place = place.width * place.height

let check p =
  if Array.length p.places = 0 then invalid_arg "Venue: no places";
  Array.iter
    (fun pl -> if pl.width < 1 || pl.height < 1 then invalid_arg "Venue: empty place grid")
    p.places;
  if p.t_start >= p.t_end then invalid_arg "Venue: empty window";
  if p.move_rate_max <= 0. || p.zone_rate_max <= 0. then invalid_arg "Venue: zero envelopes";
  if p.min_overlap < 0. then invalid_arg "Venue: negative min_overlap"

let pick_place rng p ~node time =
  let weights = p.schedule ~node time in
  if Array.length weights <> Array.length p.places then
    invalid_arg "Venue: schedule arity mismatch";
  let total =
    Array.fold_left
      (fun acc w -> if w < 0. then invalid_arg "Venue: negative weight" else acc +. w)
      0. weights
  in
  if total <= 0. then 0
  else begin
    let u = Rng.float rng *. total in
    let acc = ref 0. and chosen = ref (Array.length weights - 1) in
    (try
       Array.iteri
         (fun i w ->
           acc := !acc +. w;
           if u <= !acc then begin
             chosen := i;
             raise Exit
           end)
         weights
     with Exit -> ());
    !chosen
  end

(* One node's piecewise-constant (place, zone) trajectory, as segments
   (t0, t1, place, zone); consecutive identical states are coalesced. *)
let trajectory rng p ~node =
  let envelope = p.move_rate_max +. p.zone_rate_max in
  let segments = ref [] in
  let seg_start = ref p.t_start in
  (* Zones with a home (hotel room, office desk) pull the node back with
     probability [home_bias] at each draw. *)
  let pick_zone place_idx =
    match p.home_zone ~node ~place:place_idx with
    | Some z when Rng.float rng < p.home_bias ->
      if z < 0 || z >= zones p.places.(place_idx) then invalid_arg "Venue: home zone range";
      z
    | _ -> Rng.int rng (zones p.places.(place_idx))
  in
  let place = ref (pick_place rng p ~node p.t_start) in
  let zone = ref (pick_zone !place) in
  let emit upto =
    if upto > !seg_start then segments := (!seg_start, upto, !place, !zone) :: !segments
  in
  let t = ref p.t_start in
  let continue = ref true in
  while !continue do
    t := !t +. Rng.exponential rng envelope;
    if !t >= p.t_end then begin
      emit p.t_end;
      continue := false
    end
    else begin
      let u = Rng.float rng *. envelope in
      let mu = p.move_rate !t in
      let nu = p.zone_rate !t in
      if u < mu then begin
        let next_place = pick_place rng p ~node !t in
        let next_zone = pick_zone next_place in
        if next_place <> !place || next_zone <> !zone then begin
          emit !t;
          seg_start := !t;
          place := next_place;
          zone := next_zone
        end
      end
      else if u < mu +. nu then begin
        let next_zone = pick_zone !place in
        if next_zone <> !zone then begin
          emit !t;
          seg_start := !t;
          zone := next_zone
        end
      end
      (* else: thinned-out candidate, nothing happens *)
    end
  done;
  List.rev !segments

(* Merge touching intervals per pair and hand each merged contact to a
   callback — shared by the trace-building and disk-sharded paths. *)
let iter_raw raw f =
  Hashtbl.iter
    (fun (a, b) intervals ->
      let sorted = List.sort compare !intervals in
      let flush (s, e) = f (Contact.make ~a ~b ~t_beg:s ~t_end:e) in
      let pending =
        List.fold_left
          (fun pending (s, e) ->
            match pending with
            | None -> Some (s, e)
            | Some (ps, pe) ->
              if s <= pe then Some (ps, Float.max pe e)
              else begin
                flush (ps, pe);
                Some (s, e)
              end)
          None sorted
      in
      Option.iter flush pending)
    raw

let trace_of_raw ~name ~n ~t_start ~t_end raw =
  let contacts = ref [] in
  iter_raw raw (fun c -> contacts := c :: !contacts);
  Trace.create ~name ~n_nodes:n ~t_start ~t_end !contacts

(* The RNG-consuming part of generation: trajectories, place buckets and
   the per-place sweep filling the near/far interval tables. Extracted
   so the sharded path draws the identical stream as {!generate}. *)
let raw_tables rng ~n p =
  check p;
  if n < 1 then invalid_arg "Venue.generate: n < 1";
  (* Bucket all nodes' segments by place; zones are grid positions and
     radio reaches Chebyshev distance 1. *)
  let buckets : (int, (float * float * int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  for node = 0 to n - 1 do
    List.iter
      (fun (t0, t1, place, zone) ->
        match Hashtbl.find_opt buckets place with
        | Some l -> l := (t0, t1, zone, node) :: !l
        | None -> Hashtbl.add buckets place (ref [ (t0, t1, zone, node) ]))
      (trajectory rng p ~node)
  done;
  let near_raw : (int * int, (float * float) list ref) Hashtbl.t = Hashtbl.create 1024 in
  let far_raw : (int * int, (float * float) list ref) Hashtbl.t = Hashtbl.create 1024 in
  let record table a b t0 t1 =
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt table key with
    | Some l -> l := (t0, t1) :: !l
    | None -> Hashtbl.add table key (ref [ (t0, t1) ])
  in
  Hashtbl.iter
    (fun place_idx segs ->
      let width = p.places.(place_idx).width in
      let reach = if p.places.(place_idx).isolated then 0 else 1 in
      let sorted = List.sort compare !segs in
      let active = ref [] in
      List.iter
        (fun (t0, t1, zone, node) ->
          active := List.filter (fun (_, e, _, _) -> e > t0) !active;
          let x = zone mod width and y = zone / width in
          List.iter
            (fun (s0, e0, other_zone, other) ->
              if other <> node then begin
                let ox = other_zone mod width and oy = other_zone / width in
                let dist = max (abs (x - ox)) (abs (y - oy)) in
                if dist <= reach then begin
                  let o0 = Float.max t0 s0 and o1 = Float.min t1 e0 in
                  if o1 -. o0 >= p.min_overlap && o1 > o0 then
                    record (if dist = 0 then near_raw else far_raw) node other o0 o1
                end
              end)
            !active;
          active := (t0, t1, zone, node) :: !active)
        sorted)
    buckets;
  (near_raw, far_raw)

let generate_classified rng ~n ~name p =
  let near_raw, far_raw = raw_tables rng ~n p in
  {
    near = trace_of_raw ~name:(name ^ "/near") ~n ~t_start:p.t_start ~t_end:p.t_end near_raw;
    far = trace_of_raw ~name:(name ^ "/far") ~n ~t_start:p.t_start ~t_end:p.t_end far_raw;
  }

let generate rng ~n ~name p =
  let { near; far } = generate_classified rng ~n ~name p in
  Trace.with_name (Omn_temporal.Transform.merge near far) name

let iter_contacts rng ~n p f =
  let near_raw, far_raw = raw_tables rng ~n p in
  iter_raw near_raw f;
  iter_raw far_raw f

(* --- Calibrated venues --- *)

let hour = 3600.
let day = 86400.

let time_of_day t =
  let x = Float.rem t day in
  if x < 0. then x +. day else x

let conference_params ~rng ~n ~days =
  let hotel_width = max 60 (4 * n) in
  (* Engagement heterogeneity: a third of the participants skip much of
     the programme (side meetings, sightseeing, device in the bag) —
     without them direct-contact probabilities come out far above the
     measured ones. *)
  let engaged = Array.init n (fun _ -> Rng.float rng >= 0.33) in
  let places =
    [|
      { name = "hall"; width = 3; height = 2; isolated = false };
      { name = "coffee"; width = 2; height = 2; isolated = false };
      { name = "corridor"; width = 3; height = 1; isolated = false };
      { name = "restaurant"; width = 3; height = 3; isolated = false };
      { name = "hotel"; width = hotel_width; height = 1; isolated = true };
    |]
  in
  (* Hotel rooms are fixed and shared two by two (roommates), spread out
     so distinct rooms are out of radio range. *)
  let home_zone ~node ~place =
    if place = 4 then Some (node / 2 mod hotel_width) else None
  in
  let schedule ~node t =
    let x = time_of_day t /. hour in
    let base =
      if x < 7.5 then [| 0.; 0.; 0.; 0.; 1. |]
      else if x < 9. then [| 0.05; 0.2; 0.3; 0.35; 0.1 |] (* breakfast, arrival *)
      else if x < 10.5 then [| 0.8; 0.05; 0.1; 0.; 0.05 |] (* morning session *)
      else if x < 11. then [| 0.1; 0.65; 0.25; 0.; 0. |] (* coffee break *)
      else if x < 12.5 then [| 0.8; 0.05; 0.1; 0.; 0.05 |] (* late morning *)
      else if x < 14. then [| 0.05; 0.1; 0.15; 0.65; 0.05 |] (* lunch *)
      else if x < 15.5 then [| 0.75; 0.05; 0.1; 0.; 0.1 |] (* afternoon *)
      else if x < 16. then [| 0.1; 0.65; 0.25; 0.; 0. |] (* coffee break *)
      else if x < 18. then [| 0.7; 0.05; 0.15; 0.; 0.1 |] (* last session *)
      else if x < 22.5 then [| 0.; 0.05; 0.25; 0.45; 0.25 |] (* evening *)
      else [| 0.; 0.; 0.05; 0.05; 0.9 |]
    in
    if engaged.(node) then base
    else begin
      (* Less engaged: mostly away (modelled as the hotel place, whose
         spread-out rooms isolate), dips into the programme. *)
      let away = Array.map (fun w -> w *. 0.3) base in
      away.(4) <- away.(4) +. 0.7;
      away
    end
  in
  let daytime t =
    let x = time_of_day t /. hour in
    7.5 <= x && x < 23.
  in
  let session t =
    let x = time_of_day t /. hour in
    (9. <= x && x < 10.5) || (11. <= x && x < 12.5) || (14. <= x && x < 15.5)
    || (16. <= x && x < 18.)
  in
  {
    places;
    schedule;
    home_zone;
    home_bias = 0.97;
    move_rate = (fun t -> if daytime t then 1. /. (30. *. 60.) else 1. /. (5. *. hour));
    move_rate_max = 1. /. (30. *. 60.);
    zone_rate =
      (fun t ->
        if session t then 1. /. (40. *. 60.) (* sitting through talks *)
        else if daytime t then 1. /. (3.5 *. 60.) (* milling around *)
        else 1. /. (5. *. hour));
    zone_rate_max = 1. /. (3.5 *. 60.);
    t_start = 0.;
    t_end = days *. day;
    min_overlap = 5.;
  }

let campus_params ~rng ~n ~n_groups ~weeks =
  let group = Array.init n (fun i -> i mod n_groups) in
  Rng.shuffle rng group;
  (* Rank within the group: office mates are consecutive ranks. *)
  let rank = Array.make n 0 in
  let counters = Array.make n_groups 0 in
  for node = 0 to n - 1 do
    rank.(node) <- counters.(group.(node));
    counters.(group.(node)) <- counters.(group.(node)) + 1
  done;
  let building_w = 3 and building_h = 3 in
  let buildings =
    Array.init n_groups (fun i ->
        {
          name = Printf.sprintf "building%d" i;
          width = building_w;
          height = building_h;
          isolated = false;
        })
  in
  let home_width = max 60 (4 * n) in
  let places =
    Array.concat
      [
        buildings;
        [|
          { name = "cafeteria"; width = 3; height = 3; isolated = false };
          { name = "campus"; width = 8; height = 5; isolated = true };
          { name = "home"; width = home_width; height = 1; isolated = true };
        |];
      ]
  in
  let n_places = Array.length places in
  let cafeteria = n_groups and campus = n_groups + 1 and home = n_groups + 2 in
  (* Shared offices (two consecutive ranks per desk zone, spread across
     the building so offices are out of range of each other), private
     homes far apart. *)
  let home_zone ~node ~place =
    if place = home then Some (node mod home_width)
    else if place = group.(node) then begin
      let office = rank.(node) / 3 in
      Some ((office * 2) mod (building_w * building_h))
    end
    else None
  in
  (* Not everyone comes to campus every day (travel, phone off, off-site
     work) — a big part of why Reality-Mining contact rates are low. *)
  (* A sixth of the population collaborates with a second group and
     visits its building — the cross-community shortcuts real campuses
     have. *)
  let secondary =
    Array.init n (fun node ->
        if n_groups > 1 && Rng.float rng < 0.18 then begin
          let other = Rng.int rng (n_groups - 1) in
          Some (if other >= group.(node) then other + 1 else other)
        end
        else None)
  in
  let n_days = (weeks * 7) + 1 in
  let attendance = Array.init n (fun _ -> Array.init n_days (fun _ -> Rng.float rng < 0.45)) in
  let weekday t = int_of_float (Float.floor (t /. day)) mod 7 < 5 in
  let attending node t =
    let d = int_of_float (Float.floor (t /. day)) in
    d >= 0 && d < n_days && attendance.(node).(d)
  in
  let schedule ~node t =
    let x = time_of_day t /. hour in
    let w = Array.make n_places 0. in
    if (not (weekday t)) || x < 8.5 || x >= 19.5 || not (attending node t) then begin
      w.(home) <- 0.92;
      w.(campus) <- 0.08
    end
    else if 12. <= x && x < 13.5 then begin
      w.(cafeteria) <- 0.45;
      w.(group.(node)) <- 0.4;
      w.(campus) <- 0.15
    end
    else begin
      (match secondary.(node) with
      | Some second ->
        w.(group.(node)) <- 0.57;
        w.(second) <- 0.25
      | None -> w.(group.(node)) <- 0.82);
      w.(campus) <- 0.09;
      w.(cafeteria) <- 0.02;
      w.(home) <- 0.07
    end;
    w
  in
  let working t =
    let x = time_of_day t /. hour in
    weekday t && 8.5 <= x && x < 19.5
  in
  {
    places;
    schedule;
    home_zone;
    home_bias = 0.8;
    move_rate = (fun t -> if working t then 1. /. (2. *. hour) else 1. /. (6. *. hour));
    move_rate_max = 1. /. (2. *. hour);
    zone_rate = (fun t -> if working t then 1. /. (1.7 *. hour) else 1. /. (6. *. hour));
    zone_rate_max = 1. /. (1.7 *. hour);
    t_start = 0.;
    t_end = float_of_int weeks *. 7. *. day;
    min_overlap = 20.;
  }

let wlan_campus_params ~rng ~n ~weeks =
  (* WLAN-trace methodology (the Dartmouth/UCSD data sets the paper also
     validated on): two devices are "in contact" while associated to the
     same access point, so zones are isolated APs and there is no
     adjacent-zone marginal-radio class. *)
  let n_buildings = 10 in
  let majors = Array.init n (fun _ -> Rng.int rng n_buildings) in
  let minors = Array.init n (fun _ -> Rng.int rng n_buildings) in
  let buildings =
    Array.init n_buildings (fun i ->
        { name = Printf.sprintf "academic%d" i; width = 6; height = 1; isolated = true })
  in
  let dorm_width = max 60 (2 * n) in
  let places =
    Array.concat
      [
        buildings;
        [|
          { name = "library"; width = 8; height = 1; isolated = true };
          { name = "student-center"; width = 4; height = 1; isolated = true };
          { name = "dorm"; width = dorm_width; height = 1; isolated = true };
        |];
      ]
  in
  let n_places = Array.length places in
  let library = n_buildings and center = n_buildings + 1 and dorm = n_buildings + 2 in
  let weekday t = int_of_float (Float.floor (t /. day)) mod 7 < 5 in
  let schedule ~node t =
    let x = time_of_day t /. hour in
    let w = Array.make n_places 0. in
    if (not (weekday t)) || x < 8.5 || x >= 22.5 then w.(dorm) <- 1.
    else if x < 17.5 then begin
      (* class hours: mostly the major's building, some minor, breaks *)
      w.(majors.(node)) <- 0.55;
      w.(minors.(node)) <- 0.2;
      w.(center) <- 0.15;
      w.(library) <- 0.1
    end
    else begin
      w.(library) <- 0.35;
      w.(center) <- 0.2;
      w.(dorm) <- 0.45
    end;
    w
  in
  let home_zone ~node ~place = if place = dorm then Some (node mod dorm_width) else None in
  let active t =
    let x = time_of_day t /. hour in
    weekday t && 8.5 <= x && x < 22.5
  in
  {
    places;
    schedule;
    home_zone;
    home_bias = 0.9;
    move_rate = (fun t -> if active t then 1. /. (70. *. 60.) else 1. /. (8. *. hour));
    move_rate_max = 1. /. (70. *. 60.);
    zone_rate = (fun t -> if active t then 1. /. (50. *. 60.) else 1. /. (8. *. hour));
    zone_rate_max = 1. /. (50. *. 60.);
    t_start = 0.;
    t_end = float_of_int weeks *. 7. *. day;
    min_overlap = 30.;
  }
