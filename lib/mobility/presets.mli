(** Synthetic stand-ins for the paper's four data sets (Table 1).

    The real traces (Haggle iMote experiments, MIT Reality Mining) are
    not redistributable here, so each preset is a generator calibrated to
    the published characteristics the diameter analysis depends on:
    node count, duration, scan granularity, contact volume and rate, the
    duration CCDF shape (Fig. 7), activity rhythm (Fig. 6), and the
    sparse-vs-dense regime. See DESIGN.md for the substitution rationale
    and EXPERIMENTS.md for measured-vs-paper numbers. *)

type info = {
  trace : Omn_temporal.Trace.t;
  internal_nodes : int;
      (** experimental devices — ids [0 .. internal_nodes-1]; sources and
          destinations for diameter measurements *)
  granularity : float;  (** scan period, seconds *)
  description : string;
}

val infocom05 : ?seed:int -> ?days:float -> unit -> info
(** 41 devices at a 3-day conference: dense, strong session rhythm,
    ~22 k scanned internal contacts, 120 s granularity. *)

val infocom06 : ?seed:int -> ?days:float -> unit -> info
(** 78 devices, 4 days, ~82 k scanned internal contacts — the trace §6
    mutates (its second day is extracted with
    {!Omn_temporal.Transform.time_window}). *)

val hong_kong : ?seed:int -> ?days:float -> unit -> info
(** 37 unacquainted people carrying iMotes around Hong-Kong for 5 days:
    very few internal contacts, ~800 external devices sighted (Zipf
    popularity), long disconnections. [trace] covers
    internal + external ids; measure endpoints over internals only. *)

val reality_mining : ?seed:int -> ?weeks:int -> unit -> info
(** ~100 campus phones; the paper's 9 months are scaled to [weeks]
    (default 8) with the per-day contact rate preserved, 300 s
    granularity, planted communities, weekday/weekend cycles. *)

val wlan_campus : ?seed:int -> ?weeks:int -> unit -> info
(** Campus-WLAN association trace (the Dartmouth/UCSD data sets the paper
    says its results were also confirmed on): 120 students over [weeks]
    (default 2) weeks; contact = same access point. Exact association
    intervals, so [granularity] is 1 s. *)

val all : ?seed:int -> unit -> (string * info) list
(** The four presets in the paper's Table-1 order. *)
