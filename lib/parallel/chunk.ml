let split_at k l =
  if k < 0 then invalid_arg "Chunk.split_at: negative count";
  let rec go acc k = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (k - 1) rest
  in
  go [] k l

let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl

let chunks ~size l =
  if size < 1 then invalid_arg "Chunk.chunks: size < 1";
  let rec go acc = function
    | [] -> List.rev acc
    | l ->
      let chunk, rest = split_at size l in
      go (chunk :: acc) rest
  in
  go [] l

let ranges ~n ~pieces =
  if n < 0 then invalid_arg "Chunk.ranges: negative length";
  if pieces < 1 then invalid_arg "Chunk.ranges: pieces < 1";
  let pieces = min pieces (max 1 n) in
  let base = n / pieces and extra = n mod pieces in
  let out = Array.make pieces (0, 0) in
  let start = ref 0 in
  for i = 0 to pieces - 1 do
    let len = base + if i < extra then 1 else 0 in
    out.(i) <- (!start, len);
    start := !start + len
  done;
  if n = 0 then [||] else out
