type t = {
  domains : int;
  mutable workers : unit Domain.t array;
  jobs : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable stopping : bool;
}

let recommended () = max 1 (Domain.recommended_domain_count ())

(* OCaml 5 minor collections are stop-the-world across every running
   domain: with the runtime's default ~256k-word minor heap, an
   allocation-heavy workload drags all domains into a synchronisation
   barrier every few milliseconds, and adding domains makes the whole
   pool *slower*. Sizing the minor heap up moves the barrier out of the
   hot path (the frontier core allocates almost nothing in steady
   state; what remains is short-lived float boxes that die in the minor
   heap). [Gc.set] applies the new size to the calling domain and to
   domains spawned afterwards, so [create] tunes the submitter before
   spawning and every worker re-applies it on startup. *)
let default_minor_heap_words = 1 lsl 22 (* 4M words = 32 MB per domain *)

let tune_gc minor_heap_words =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < minor_heap_words then
    Gc.set { g with Gc.minor_heap_size = minor_heap_words }

(* [tasks_run] counts every item processed through [map]; [tasks_stolen]
   the subset executed by a helper domain rather than the submitter.
   [busy_seconds] accumulates per-domain wall time inside the work loop
   (the snapshot's per-domain breakdown shows the split across workers);
   [queue_wait_seconds] is submit-to-first-poll latency per helper. *)
let m_tasks_run = Omn_obs.Metrics.counter "pool.tasks_run"
let m_tasks_stolen = Omn_obs.Metrics.counter "pool.tasks_stolen"
let m_busy = Omn_obs.Metrics.gauge "pool.busy_seconds"
let m_queue_wait = Omn_obs.Metrics.histogram "pool.queue_wait_seconds"

type spec = Auto | Fixed of int

let resolve = function
  | Auto -> recommended ()
  | Fixed k -> if k < 1 then invalid_arg "Pool.resolve: domains < 1" else k

let spec_of_string s =
  if s = "auto" then Some Auto
  else match int_of_string_opt s with Some k when k >= 1 -> Some (Fixed k) | _ -> None

let spec_to_string = function Auto -> "auto" | Fixed k -> string_of_int k

(* Workers block on [nonempty] until a job arrives or the pool shuts
   down. Job exceptions are the submitter's concern ([map] funnels them
   back to the caller); the belt-and-braces handler here only keeps a
   misbehaving job from killing the worker. *)
let worker_loop ~minor_heap_words pool () =
  tune_gc minor_heap_words;
  let rec next () =
    Mutex.lock pool.lock;
    let rec await () =
      match Queue.take_opt pool.jobs with
      | Some job ->
        Mutex.unlock pool.lock;
        Some job
      | None ->
        if pool.stopping then begin
          Mutex.unlock pool.lock;
          None
        end
        else begin
          Condition.wait pool.nonempty pool.lock;
          await ()
        end
    in
    match await () with
    | None -> ()
    | Some job ->
      (try job () with _ -> ());
      next ()
  in
  next ()

let create ?domains ?(minor_heap_words = default_minor_heap_words) () =
  let domains = match domains with None -> recommended () | Some d -> d in
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  if domains > 1 then tune_gc minor_heap_words;
  let pool =
    {
      domains;
      workers = [||];
      jobs = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
    }
  in
  pool.workers <-
    Array.init (domains - 1) (fun _ -> Domain.spawn (worker_loop ~minor_heap_words pool));
  pool

let domains pool = pool.domains

let shutdown pool =
  Mutex.lock pool.lock;
  if not pool.stopping then begin
    pool.stopping <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers
  end
  else Mutex.unlock pool.lock

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let submit pool copies job =
  Mutex.lock pool.lock;
  for _ = 1 to copies do
    Queue.add job pool.jobs
  done;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock

(* The pool (if any) whose [map] is executing on this domain. Set on
   both the submitting domain and the helpers for the duration of the
   work loop, so a nested [map] on the same pool — which would block
   forever waiting for helpers that can never be scheduled — is caught
   at the call site instead of deadlocking. *)
let current_map : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let with_current_map pool f =
  let cell = Domain.DLS.get current_map in
  let saved = !cell in
  cell := Some pool;
  Fun.protect ~finally:(fun () -> cell := saved) f

let check_usable pool =
  (match !(Domain.DLS.get current_map) with
  | Some p when p == pool ->
    invalid_arg "Pool.map: nested map on the same pool (would deadlock)"
  | _ -> ());
  Mutex.lock pool.lock;
  let stopping = pool.stopping in
  Mutex.unlock pool.lock;
  if stopping then invalid_arg "Pool.map: pool already shut down"

(* Deterministic fan-out: item [i]'s result lands in slot [i] whichever
   domain computed it, so the returned array — and any in-order reduction
   of it — is independent of the domain count and of scheduling. *)
let map pool f xs =
  check_usable pool;
  let n = Array.length xs in
  if n = 0 then [||]
  else if pool.domains = 1 || n = 1 then begin
    Omn_obs.Metrics.add m_tasks_run n;
    Array.map f xs
  end
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let work ~stolen () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          Omn_obs.Metrics.incr m_tasks_run;
          if stolen then Omn_obs.Metrics.incr m_tasks_stolen;
          match f xs.(i) with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set error None (Some e))
        end
      done
    in
    (* Timing reads the clock only when metrics or the timeline are on,
       so the disabled path stays exactly the untimed work loop. The
       busy gauge and the timeline's pool.work span share the same two
       clock reads, so the exported spans cover the measured busy time
       exactly. *)
    let timed = Omn_obs.Metrics.enabled () || Omn_obs.Timeline.enabled () in
    let work ~stolen () =
      if not timed then work ~stolen ()
      else begin
        let t0 = Unix.gettimeofday () in
        work ~stolen ();
        let t1 = Unix.gettimeofday () in
        Omn_obs.Metrics.gadd m_busy (t1 -. t0);
        Omn_obs.Timeline.record ~ts:t1 (Pool_work { start = t0; stolen })
      end
    in
    let helpers = min (Array.length pool.workers) (n - 1) in
    let pending = ref helpers in
    let fin_lock = Mutex.create () in
    let fin = Condition.create () in
    let submitted_at = if timed then Unix.gettimeofday () else 0. in
    let helper () =
      if timed then begin
        let now = Unix.gettimeofday () in
        Omn_obs.Metrics.observe m_queue_wait (now -. submitted_at);
        Omn_obs.Timeline.record ~ts:now (Queue_wait { seconds = now -. submitted_at });
        Omn_obs.Timeline.record ~ts:now Steal
      end;
      with_current_map pool (work ~stolen:true);
      Mutex.lock fin_lock;
      decr pending;
      if !pending = 0 then Condition.signal fin;
      Mutex.unlock fin_lock
    in
    submit pool helpers helper;
    with_current_map pool (work ~stolen:false);
    Mutex.lock fin_lock;
    while !pending > 0 do
      Condition.wait fin fin_lock
    done;
    Mutex.unlock fin_lock;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_supervised pool f xs =
  map pool (fun x -> match f x with v -> Ok v | exception e -> Error e) xs

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))

let map_reduce pool ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map pool f xs)

let run ?pool ?(domains = 1) f xs =
  match pool with
  | Some p -> map p f xs
  | None -> if domains <= 1 then Array.map f xs else with_pool ~domains (fun p -> map p f xs)
