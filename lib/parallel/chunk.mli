(** Deterministic list/range chunking, shared by every parallel driver.

    All functions are tail-recursive: chunking a multi-million-element
    work list must not overflow the stack (the non-tail [split_at] that
    used to live in [Delay_cdf] did exactly that for large
    [--checkpoint-every]). *)

val split_at : int -> 'a list -> 'a list * 'a list
(** [split_at k l] is [(prefix, rest)] where [prefix] is the first [k]
    elements of [l] (all of [l] if shorter) and [rest] the remainder.
    Order-preserving, tail-recursive. Raises [Invalid_argument] on
    negative [k]. *)

val drop : int -> 'a list -> 'a list
(** [drop k l] is [l] without its first [k] elements ([[]] if shorter).
    Tail-recursive; [drop k l = snd (split_at k l)] without building the
    prefix. *)

val chunks : size:int -> 'a list -> 'a list list
(** [chunks ~size l] partitions [l] into consecutive chunks of [size]
    elements (the last may be shorter). Concatenating the chunks yields
    [l]. Raises [Invalid_argument] if [size < 1]. *)

val ranges : n:int -> pieces:int -> (int * int) array
(** [ranges ~n ~pieces] splits the index range [0 .. n-1] into at most
    [pieces] contiguous [(start, length)] spans of near-equal length
    (never empty; fewer spans when [n < pieces]; [[||]] when [n = 0]).
    The partition depends only on [n] and [pieces]. *)
