(** Persistent domain pool with deterministic fan-out/reduce.

    OCaml domains are heavyweight (each spawn forks a minor heap and
    registers with the stop-the-world machinery), so spawning per work
    chunk — as the first parallel driver in [Delay_cdf] did — wastes
    milliseconds per chunk and caps scaling. A {!t} spawns its worker
    domains once and reuses them across any number of {!map} calls.

    Determinism contract: {!map} assigns item [i]'s result to slot [i]
    of the output array regardless of which domain computed it or how
    many domains exist. A caller that merges the slots in index order
    therefore produces bit-identical results for every pool size,
    including 1 — parallelism changes wall-clock time only. All the
    parallel drivers in this repository ([Delay_cdf.compute],
    [Forwarding.Sim.evaluate], the [Omn_randnet] Monte-Carlo
    estimators) are built on this contract. *)

type t
(** A pool of [domains - 1] worker domains plus the calling domain. *)

val create : ?domains:int -> ?minor_heap_words:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] workers ([domains]
    defaults to {!recommended}). Raises [Invalid_argument] if
    [domains < 1]. A pool with [domains = 1] spawns nothing and runs
    everything on the caller.

    Multi-domain pools also size every participating domain's minor
    heap up to [minor_heap_words] (default 4M words, 32 MB): OCaml 5
    minor collections are stop-the-world across domains, and the
    default ~256k-word minor heap turns allocation-heavy workloads into
    a synchronisation treadmill that gets {e slower} as domains are
    added. The setting is never shrunk below what the process already
    uses, and a [domains = 1] pool leaves the GC untouched. *)

val domains : t -> int
(** Total parallelism, including the calling domain. *)

val shutdown : t -> unit
(** Stop and join the workers. Idempotent. Jobs already queued complete
    first; calling {!map} on a shut-down pool raises
    [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] applies [f] to every element, spreading items over
    the pool's domains, and returns the results in input order. [f]
    must be safe to call from any domain and must not touch the pool:
    a nested [map] on the {e same} pool would deadlock when every
    worker is busy, so it is detected and raises [Invalid_argument]
    instead (nesting on a {e different} pool is allowed). Raises
    [Invalid_argument] after {!shutdown}. The first exception raised
    by [f] is re-raised on the caller after all items finish or are
    abandoned. *)

val map_supervised : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Like {!map}, but an item whose [f] raises fills its slot with
    [Error exn] instead of poisoning the whole run — every other item
    still completes and keeps the slot-[i] bit-identity contract.
    The building block of [Omn_resilience.Supervise]. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists (order preserved). *)

val map_reduce : t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc -> 'a array -> 'acc
(** Parallel map, then a sequential in-index-order fold on the caller —
    the deterministic-reduction pattern in one call. *)

val run : ?pool:t -> ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Convenience front end for APIs that accept both an optional shared
    pool and a domain count: uses [pool] when given, otherwise runs
    sequentially for [domains <= 1] (the default) or inside a temporary
    [with_pool ~domains]. Same determinism contract as {!map} in every
    case. *)

(** {1 Domain-count selection} *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — what
    [--domains auto] resolves to. *)

type spec = Auto | Fixed of int
(** A requested domain count: a number, or [Auto] for {!recommended}. *)

val resolve : spec -> int
(** Raises [Invalid_argument] on [Fixed k] with [k < 1]. *)

val spec_of_string : string -> spec option
(** ["auto"] or a positive integer; [None] otherwise. *)

val spec_to_string : spec -> string
