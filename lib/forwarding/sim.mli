(** Event-driven simulation of forwarding protocols on a contact trace.

    The engine replays the trace's contacts chronologically; a protocol
    exchange can happen at any instant inside a contact interval, so when
    a node's state changes (it receives the message, or copies) its
    currently-active contacts are re-offered at that very instant —
    cascades across overlapping contacts (the long-contact behaviour of
    §3.1.3) are therefore simulated faithfully. For [Epidemic] this makes
    the simulation exact: delivery happens at the earliest arrival of a
    TTL-bounded time-respecting path (tested against
    {!Omn_baseline.Dijkstra.earliest_arrival_bounded}). *)

type outcome = {
  delivered : bool;
  delay : float;          (** [infinity] when not delivered *)
  hops : int;             (** hop count of the delivering copy; 0 = self *)
  transmissions : int;    (** copy transfers performed (incl. delivery) *)
  nodes_reached : int;    (** nodes that ever held the message (incl. source) *)
}

val run :
  Omn_temporal.Trace.t ->
  protocol:Protocol.t ->
  source:Omn_temporal.Node.t ->
  dest:Omn_temporal.Node.t ->
  t0:float ->
  deadline:float ->
  outcome
(** Deliver one message created on [source] at [t0], give up after
    [deadline] seconds. Raises [Invalid_argument] on bad nodes, negative
    deadline, [source = dest], or non-positive spray copies. *)

type stats = {
  protocol : Protocol.t;
  messages : int;
  delivered_ratio : float;
  mean_delay : float;         (** over delivered messages; [nan] if none *)
  mean_transmissions : float; (** over all messages *)
  mean_nodes_reached : float;
}

val evaluate :
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  ?progress:(done_:int -> total:int -> unit) ->
  Omn_stats.Rng.t ->
  Omn_temporal.Trace.t ->
  protocols:Protocol.t list ->
  messages:int ->
  deadline:float ->
  stats list
(** Common random messages (uniform source/destination pair and creation
    time, leaving [deadline] of headroom before the trace end) evaluated
    under every protocol. The workload is drawn from [rng] up front;
    each message simulation then runs independently on [pool] (or a
    temporary pool of [domains]), with outcomes reduced in message
    order — the statistics are bit-identical for every domain count.

    [progress] is called once per simulated message with the cumulative
    count over all protocols; it may run on any worker domain, so it
    must be domain-safe ({!Omn_obs.Progress} is). *)
