type t =
  | Epidemic of { ttl : int option }
  | Direct
  | Two_hop
  | Spray_and_wait of { copies : int }
  | First_contact
  | Last_encounter

let name = function
  | Epidemic { ttl = None } -> "epidemic"
  | Epidemic { ttl = Some k } -> Printf.sprintf "epidemic(ttl=%d)" k
  | Direct -> "direct"
  | Two_hop -> "two-hop"
  | Spray_and_wait { copies } -> Printf.sprintf "spray&wait(%d)" copies
  | First_contact -> "first-contact"
  | Last_encounter -> "last-encounter"

let hop_bound = function
  | Epidemic { ttl } -> ttl
  | Direct -> Some 1
  | Two_hop -> Some 2
  | Spray_and_wait { copies } ->
    (* binary spraying halves the copy budget per hop, plus the final
       wait-and-deliver hop *)
    let rec depth c acc = if c <= 1 then acc else depth (c / 2) (acc + 1) in
    Some (depth copies 0 + 1)
  | First_contact -> None
  | Last_encounter -> None
