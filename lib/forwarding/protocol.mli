(** Opportunistic forwarding protocols.

    The paper's stated purpose is not to design a forwarding algorithm
    but to bound what any of them can do with respect to hops and delay —
    and its conclusion turns the small diameter into a design rule:
    "messages can be discarded after a few hops without incurring more
    than a marginal performance cost". This module provides the classic
    protocol family so that rule can be exercised quantitatively
    ({!Sim}, experiment [forwarding], example [forwarding_ttl]). *)

type t =
  | Epidemic of { ttl : int option }
      (** flood every contact; [ttl] bounds the hop count of any copy
          ([None] = unlimited). [Epidemic (Some diameter)] is the paper's
          recommendation. *)
  | Direct
      (** source holds the message until it meets the destination
          (1-hop; the "1 hop" curves of Fig. 9). *)
  | Two_hop
      (** Grossglauser–Tse relaying: the source copies to every node it
          meets; relays hand over only to the destination (<= 2 hops). *)
  | Spray_and_wait of { copies : int }
      (** binary spray: a holder of [c > 1] logical copies transfers
          [c / 2] to an uninfected node it meets; holders of one copy
          deliver only to the destination. *)
  | First_contact
      (** single-copy random walk: the (unique) copy moves across the
          first available contact opportunity, whatever the peer (never
          straight back to the node it came from, and at most one move
          per instant — the walk advances on contact-begin events and on
          receptions). *)
  | Last_encounter
      (** single-copy greedy routing on local information — the paper's
          open problem ("whether these paths can be found efficiently by
          a distributed algorithm using local information"): the copy
          moves to a met node iff that node has seen the destination more
          recently than the current holder (and always to the destination
          itself). Each node only remembers when it last met each peer. *)

val name : t -> string
val hop_bound : t -> int option
(** Static hop bound implied by the protocol, when one exists. *)
