module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact
module Heap = Omn_stats.Heap
module Rng = Omn_stats.Rng
module Pool = Omn_parallel.Pool

let m_messages = Omn_obs.Metrics.counter "forward.messages_done"

type outcome = {
  delivered : bool;
  delay : float;
  hops : int;
  transmissions : int;
  nodes_reached : int;
}

type node_state = {
  mutable hops : int;          (* min hops of any copy held; max_int = none *)
  mutable copies : int;        (* spray budget; >= 1 once infected *)
  mutable received_from : int; (* first-contact: no immediate bounce-back *)
  mutable received_at : float; (* first-contact: no re-forward at the very
                                  instant of reception (prevents zero-time
                                  cycles through cliques of open contacts) *)
}

let run trace ~protocol ~source ~dest ~t0 ~deadline =
  let n = Trace.n_nodes trace in
  if source < 0 || source >= n || dest < 0 || dest >= n then invalid_arg "Sim.run: bad node";
  if source = dest then invalid_arg "Sim.run: source = dest";
  if deadline < 0. then invalid_arg "Sim.run: negative deadline";
  (match protocol with
  | Protocol.Spray_and_wait { copies } when copies < 1 -> invalid_arg "Sim.run: copies < 1"
  | _ -> ());
  let give_up = t0 +. deadline in
  let states =
    Array.init n (fun _ ->
        { hops = max_int; copies = 0; received_from = -1; received_at = nan })
  in
  states.(source).hops <- 0;
  states.(source).copies <-
    (match protocol with Protocol.Spray_and_wait { copies } -> copies | _ -> 1);
  let holder = ref source (* single-copy protocols *) in
  (* Last-encounter routing state: when did each node last meet [dest]?
     Advanced lazily over the trace's contacts (by begin time) up to the
     current simulation instant, independent of the message. *)
  let last_meet = Array.make n neg_infinity in
  last_meet.(dest) <- infinity;
  let all_contacts = Trace.contacts trace in
  let cursor = ref 0 in
  let advance_last_meet upto =
    while
      !cursor < Array.length all_contacts && all_contacts.(!cursor).Contact.t_beg <= upto
    do
      let c = all_contacts.(!cursor) in
      if c.a = dest then last_meet.(c.b) <- Float.max last_meet.(c.b) c.t_beg
      else if c.b = dest then last_meet.(c.a) <- Float.max last_meet.(c.a) c.t_beg;
      incr cursor
    done
  in
  let transmissions = ref 0 in
  let reached = ref 1 in
  let delivery = ref None in
  (* Transfer the message to [v] at time [tau]: bookkeeping shared by all
     protocols. *)
  let infect ~from ~v ~tau ~hops ~copies =
    if states.(v).hops = max_int then incr reached;
    states.(v).hops <- min states.(v).hops hops;
    states.(v).copies <- max states.(v).copies copies;
    states.(v).received_from <- from;
    states.(v).received_at <- tau;
    incr transmissions;
    if v = dest && !delivery = None then delivery := Some (tau, hops)
  in
  (* Protocol rule for an opportunity u -> v at time tau. Returns true if
     the state changed (used to cascade re-offers). *)
  let exchange u v tau =
    let su = states.(u) and sv = states.(v) in
    if su.hops = max_int then false
    else begin
      match protocol with
      | Protocol.Epidemic { ttl } ->
        let next = su.hops + 1 in
        let within = match ttl with None -> true | Some k -> next <= k in
        if within && next < sv.hops then begin
          infect ~from:u ~v ~tau ~hops:next ~copies:1;
          true
        end
        else false
      | Protocol.Direct ->
        if u = source && v = dest && sv.hops = max_int then begin
          infect ~from:u ~v ~tau ~hops:1 ~copies:1;
          true
        end
        else false
      | Protocol.Two_hop ->
        if sv.hops = max_int && (u = source || v = dest) then begin
          infect ~from:u ~v ~tau ~hops:(su.hops + 1) ~copies:1;
          true
        end
        else false
      | Protocol.Spray_and_wait _ ->
        if sv.hops = max_int && (su.copies > 1 || v = dest) then begin
          let handed = if v = dest then 1 else su.copies / 2 in
          infect ~from:u ~v ~tau ~hops:(su.hops + 1) ~copies:handed;
          if v <> dest then su.copies <- su.copies - handed;
          true
        end
        else false
      | Protocol.First_contact ->
        if !holder = u && v <> su.received_from && not (su.received_at = tau) then begin
          infect ~from:u ~v ~tau ~hops:(su.hops + 1) ~copies:1;
          su.copies <- 0;
          holder := v;
          true
        end
        else false
      | Protocol.Last_encounter ->
        (* Strictly-improving recency makes same-instant chains terminate
           (no cycle can strictly increase forever). *)
        if !holder = u && (v = dest || last_meet.(v) > last_meet.(u)) then begin
          infect ~from:u ~v ~tau ~hops:(su.hops + 1) ~copies:1;
          su.copies <- 0;
          holder := v;
          true
        end
        else false
    end
  in
  let heap = Heap.create ~cmp:(fun (t1, _) (t2, _) -> Float.compare t1 t2) in
  Trace.iter
    (fun (c : Contact.t) ->
      if c.t_end >= t0 && c.t_beg <= give_up then Heap.push heap (Float.max c.t_beg t0, c))
    trace;
  let offer_active_contacts x tau =
    Trace.iter_node_contacts
      (fun (c : Contact.t) -> if c.t_beg <= tau && tau <= c.t_end then Heap.push heap (tau, c))
      trace x
  in
  let rec drain () =
    if !delivery = None then begin
      match Heap.pop heap with
      | None -> ()
      | Some (tau, c) ->
        if tau <= give_up then begin
          advance_last_meet tau;
          if tau <= c.t_end then begin
            let changed_b = exchange c.a c.b tau in
            let changed_a = !delivery = None && exchange c.b c.a tau in
            if changed_b then offer_active_contacts c.b tau;
            if changed_a then offer_active_contacts c.a tau
          end;
          drain ()
        end
      end
  in
  drain ();
  match !delivery with
  | Some (tau, hops) ->
    {
      delivered = true;
      delay = tau -. t0;
      hops;
      transmissions = !transmissions;
      nodes_reached = !reached;
    }
  | None ->
    {
      delivered = false;
      delay = infinity;
      hops = -1;
      transmissions = !transmissions;
      nodes_reached = !reached;
    }

type stats = {
  protocol : Protocol.t;
  messages : int;
  delivered_ratio : float;
  mean_delay : float;
  mean_transmissions : float;
  mean_nodes_reached : float;
}

let evaluate ?pool ?(domains = 1) ?progress rng trace ~protocols ~messages ~deadline =
  if messages < 1 then invalid_arg "Sim.evaluate: messages < 1";
  if domains < 1 then invalid_arg "Sim.evaluate: domains < 1";
  let n = Trace.n_nodes trace in
  if n < 2 then invalid_arg "Sim.evaluate: need two nodes";
  Omn_obs.Span.with_ ~name:"sim.evaluate" @@ fun () ->
  let total_msgs = messages * List.length protocols in
  let msgs_done = Atomic.make 0 in
  let t_lo = Trace.t_start trace in
  let t_hi = Float.max t_lo (Trace.t_end trace -. deadline) in
  (* The workload is drawn sequentially up front, so the messages — and
     hence the statistics — do not depend on the parallelism below. *)
  let workload = Array.make messages (0, 0, 0.) in
  for i = 0 to messages - 1 do
    let source = Rng.int rng n in
    let dest = (source + 1 + Rng.int rng (n - 1)) mod n in
    let t0 = Rng.float_range rng t_lo (t_hi +. 1e-9) in
    workload.(i) <- (source, dest, t0)
  done;
  let eval_protocol pool protocol =
    (* One task per message (they are independent simulations); outcomes
       come back in message order and are folded sequentially, so the
       float sums are bit-identical for every domain count. *)
    let outcomes =
      Pool.run ?pool
        (fun (source, dest, t0) ->
          let o = run trace ~protocol ~source ~dest ~t0 ~deadline in
          Omn_obs.Metrics.incr m_messages;
          (match progress with
          | Some p -> p ~done_:(1 + Atomic.fetch_and_add msgs_done 1) ~total:total_msgs
          | None -> ());
          o)
        workload
    in
    let delivered = ref 0 and delay_sum = ref 0. in
    let tx_sum = ref 0 and reach_sum = ref 0 in
    Array.iter
      (fun o ->
        if o.delivered then begin
          incr delivered;
          delay_sum := !delay_sum +. o.delay
        end;
        tx_sum := !tx_sum + o.transmissions;
        reach_sum := !reach_sum + o.nodes_reached)
      outcomes;
    {
      protocol;
      messages;
      delivered_ratio = float_of_int !delivered /. float_of_int messages;
      mean_delay = (if !delivered = 0 then nan else !delay_sum /. float_of_int !delivered);
      mean_transmissions = float_of_int !tx_sum /. float_of_int messages;
      mean_nodes_reached = float_of_int !reach_sum /. float_of_int messages;
    }
  in
  match (pool, domains) with
  | Some p, _ -> List.map (eval_protocol (Some p)) protocols
  | None, 1 -> List.map (eval_protocol None) protocols
  | None, d -> Pool.with_pool ~domains:d (fun p -> List.map (eval_protocol (Some p)) protocols)
