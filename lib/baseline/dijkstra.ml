module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact
module Heap = Omn_stats.Heap

let earliest_arrival trace ~source ~t0 =
  let n = Trace.n_nodes trace in
  if source < 0 || source >= n then invalid_arg "Dijkstra: bad source";
  let arrival = Array.make n infinity in
  arrival.(source) <- t0;
  let cmp (t1, _) (t2, _) = Float.compare t1 t2 in
  let heap = Heap.create ~cmp in
  Heap.push heap (t0, source);
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (t, u) ->
      if t <= arrival.(u) then
        Trace.iter_node_contacts
          (fun (c : Contact.t) ->
            if t <= c.t_end then begin
              let v = Contact.peer c u in
              let reach = Float.max t c.t_beg in
              if reach < arrival.(v) then begin
                arrival.(v) <- reach;
                Heap.push heap (reach, v)
              end
            end)
          trace u;
      drain ()
  in
  drain ();
  arrival

let earliest_arrival_bounded trace ~source ~t0 ~max_hops =
  let n = Trace.n_nodes trace in
  if source < 0 || source >= n then invalid_arg "Dijkstra: bad source";
  if max_hops < 0 then invalid_arg "Dijkstra: negative hop bound";
  let rows = Array.make_matrix (max_hops + 1) n infinity in
  rows.(0).(source) <- t0;
  for k = 1 to max_hops do
    let prev = rows.(k - 1) and cur = rows.(k) in
    Array.blit prev 0 cur 0 n;
    Trace.iter
      (fun (c : Contact.t) ->
        let relax u v =
          if prev.(u) <= c.t_end then begin
            let reach = Float.max prev.(u) c.t_beg in
            if reach < cur.(v) then cur.(v) <- reach
          end
        in
        relax c.a c.b;
        relax c.b c.a)
      trace
  done;
  rows

let min_delay trace ~source ~dest ~t0 =
  let arrival = earliest_arrival trace ~source ~t0 in
  arrival.(dest) -. t0
