(** Exhaustive path enumeration — the ground truth the fast algorithm is
    tested against.

    Explores every valid sequence of at most [max_hops] contacts by
    depth-first search (a sequence may revisit nodes and reuse contacts;
    validity is the chronological condition Eq. (2) only). Exponential:
    strictly for small traces in tests and pedagogy. *)

val frontiers :
  Omn_temporal.Trace.t ->
  source:Omn_temporal.Node.t ->
  max_hops:int ->
  Omn_core.Frontier.t array
(** Pareto frontier of descriptors per destination, over all sequences of
    at most [max_hops] contacts. Index [source] holds the identity
    descriptor, mirroring {!Omn_core.Journey.frontiers_at_hops}. *)

val count_sequences :
  Omn_temporal.Trace.t -> source:Omn_temporal.Node.t -> max_hops:int -> int
(** Number of valid sequences explored (diagnostic; beware blow-up). *)
