module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

(* Between two consecutive contact boundaries the delivery function of any
   pair is governed by a single (LD, EA) descriptor (all LDs are contact
   ends, all EAs are contact begins), so on such a segment it is either
   the constant EA or the diagonal. A flood started from the segment's
   midpoint m distinguishes the two: arrival > m means the constant,
   arrival = m means the diagonal. Floods from the boundaries themselves
   answer exact-boundary creation times. *)

type t = {
  source : int;
  boundaries : float array;          (* ascending, distinct; first = trace start *)
  boundary_arr : float array array;  (* flood from each boundary *)
  mid_arr : float array array;       (* mid_arr.(j): flood from midpoint of
                                        (boundaries.(j-1), boundaries.(j)); row 0 unused *)
  midpoints : float array;
}

let compute trace ~source =
  let times =
    Trace.fold (fun acc (c : Contact.t) -> c.t_beg :: c.t_end :: acc) [ Trace.t_start trace ] trace
    |> List.sort_uniq Float.compare
  in
  let boundaries = Array.of_list times in
  let flood t0 = Dijkstra.earliest_arrival trace ~source ~t0 in
  let boundary_arr = Array.map flood boundaries in
  let n = Array.length boundaries in
  let midpoints =
    Array.init n (fun j -> if j = 0 then nan else (boundaries.(j - 1) +. boundaries.(j)) /. 2.)
  in
  let mid_arr = Array.init n (fun j -> if j = 0 then [||] else flood midpoints.(j)) in
  { source; boundaries; boundary_arr; mid_arr; midpoints }

(* Smallest index with boundaries.(i) >= x, or length. *)
let lower t x =
  let lo = ref 0 and hi = ref (Array.length t.boundaries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.boundaries.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

let del t ~dest at =
  if dest = t.source then at
  else begin
    let n = Array.length t.boundaries in
    let i = lower t at in
    if i >= n then infinity
    else if t.boundaries.(i) = at then t.boundary_arr.(i).(dest)
    else if i = 0 then begin
      (* Before the first boundary: same descriptor set as at it. *)
      let d = t.boundary_arr.(0).(dest) in
      if d > t.boundaries.(0) then d else Float.max at d
    end
    else begin
      let m = t.midpoints.(i) in
      let d = t.mid_arr.(i).(dest) in
      if d > m then Float.max at d else at
    end
  end

let samples t ~dest = Array.map2 (fun b row -> (b, row.(dest))) t.boundaries t.boundary_arr
