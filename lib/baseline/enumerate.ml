module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact
open Omn_core

let explore trace ~source ~max_hops visit =
  let n = Trace.n_nodes trace in
  if source < 0 || source >= n then invalid_arg "Enumerate: bad source";
  (* DFS over (node, descriptor, hops). A sequence extends by any adjacent
     contact e with EA(seq) <= t_end(e). *)
  let rec go node (desc : Ld_ea.t) hops =
    visit node desc hops;
    if hops < max_hops then
      Trace.iter_node_contacts
        (fun (c : Contact.t) ->
          if desc.ea <= c.t_end then begin
            let next = Ld_ea.make ~ld:(Float.min desc.ld c.t_end) ~ea:(Float.max desc.ea c.t_beg) in
            go (Contact.peer c node) next (hops + 1)
          end)
        trace node
  in
  go source Ld_ea.identity 0

let frontiers trace ~source ~max_hops =
  let fronts = Array.init (Trace.n_nodes trace) (fun _ -> Frontier.create ()) in
  explore trace ~source ~max_hops (fun node desc _hops ->
      ignore (Frontier.insert fronts.(node) desc));
  fronts

let count_sequences trace ~source ~max_hops =
  let count = ref 0 in
  explore trace ~source ~max_hops (fun _ _ hops -> if hops > 0 then incr count);
  !count
