(** Earliest-arrival journey search from one (source, start time) —
    the generalized-Dijkstra prior art of §4.4 ([1], [7] in the paper).

    Where {!Omn_core.Journey} computes optimal paths for {e all} start
    times at once, these routines answer for a {e single} start time;
    sweeping them over start times is the baseline the paper's algorithm
    improves upon (see the timing bench). *)

val earliest_arrival :
  Omn_temporal.Trace.t -> source:Omn_temporal.Node.t -> t0:float -> float array
(** [earliest_arrival trace ~source ~t0].(v) is the earliest time a
    message created on [source] at [t0] can reach [v] ([infinity] if
    never, [t0] for the source itself). Label-correcting search with a
    binary heap; a contact [(u, v, [tb; te])] relaxes [v] to
    [max arrival.(u) tb] whenever [arrival.(u) <= te]. *)

val earliest_arrival_bounded :
  Omn_temporal.Trace.t ->
  source:Omn_temporal.Node.t ->
  t0:float ->
  max_hops:int ->
  float array array
(** Bellman–Ford-style rounds: row [k] (0 <= k <= max_hops) is the
    earliest arrival using at most [k] contacts. Row 0 is [t0] at the
    source and [infinity] elsewhere. *)

val min_delay :
  Omn_temporal.Trace.t ->
  source:Omn_temporal.Node.t ->
  dest:Omn_temporal.Node.t ->
  t0:float ->
  float
(** Convenience: [earliest_arrival .(dest) -. t0] ([infinity] when
    unreachable). *)
