(** Flooding-based reconstruction of the delivery function — the
    independently developed algorithm the paper cites at the end of §4.4
    ("a packet is created for any beginning and end of contacts; a
    discrete event simulator is used to simulate flooding; the results
    are then merged using linear extrapolation").

    Every breakpoint of a delivery function is a contact boundary:
    last-departure values are contact ends and earliest arrivals are
    contact begins. Flooding once per boundary therefore samples the
    delivery function at every discontinuity, and between two consecutive
    samples it is either constant (still waiting for the same contact) or
    the diagonal (in direct reach). This module implements exactly that
    reconstruction; it serves as the independent oracle against
    {!Omn_core.Journey}'s frontier-based delivery functions. *)

type t

val compute : Omn_temporal.Trace.t -> source:Omn_temporal.Node.t -> t
(** Floods from every contact boundary (plus the trace window start) and
    from every mid-segment point — the midpoints settle whether a segment
    is constant or diagonal, making the reconstruction exact rather than
    extrapolated. O(#boundaries x flooding). *)

val del : t -> dest:Omn_temporal.Node.t -> float -> float
(** Delivery time for a message created at the given time; [infinity]
    when flooding never reaches [dest]. Creation times after the trace
    end return [infinity] unless in eternal self-reach ([dest = source]).
*)

val samples : t -> dest:Omn_temporal.Node.t -> (float * float) array
(** The raw (creation boundary, delivery) samples, ascending. *)
