(** Run post-mortem: distil a metrics snapshot, an exported timeline
    and/or a stamped result file into one human- or CI-readable
    verdict (the engine behind [omn report]).

    The analyzer is deliberately lenient: every input is optional and
    every section degrades to what the given inputs can support — a
    timeline alone yields the per-domain and chunk analysis, a metrics
    snapshot alone the counter summary, a result file alone the
    manifest echo. Unknown keys are ignored, so reports built by newer
    writers still parse. *)

val schema : string
(** ["omn-report 1"]. *)

val build : ?metrics:Json.t -> ?timeline:Json.t -> ?result:Json.t -> unit -> Json.t
(** Returns the report as JSON (schema {!schema}): the run manifest
    (first found among result, timeline, metrics inputs), wall-clock
    span, per-domain busy/idle/steal breakdown, chunk-duration
    straggler and load-imbalance statistics (max vs median), checkpoint
    write-latency percentiles, retry/quarantine/fallback summary, and
    the [dropped_events] count (top-level key; the larger of the trace
    footer and the metrics counter [timeline.dropped_events], so a
    metrics file alone is enough for [--fail-dropped]).

    When the timeline is a fleet-merged trace (an ["omn"."fleet"]
    footer, see {!Trace_export.fleet_to_json}), the report also carries
    a ["fleet"] section: per-worker busy/idle seconds (busy from that
    worker's own [shard.compute]/[pool.work] track), trace bytes
    shipped and digest-cache hits (from the coordinator's [trace.ship]
    / [trace.cache_hit] instants), event and dropped counts, clock
    offset, a straggler flag (busy > 3x median across workers), and
    the cross-worker max/mean busy imbalance. *)

val dropped_events : Json.t -> int
(** The [dropped_events] count of a built report. *)

val pp : Format.formatter -> Json.t -> unit
(** Render a built report for humans. *)
