let with_ ?(reg = Metrics.default) ~name f =
  if not (Metrics.enabled ~reg ()) then f ()
  else begin
    let stack = Metrics.span_stack reg in
    let path = match !stack with [] -> name | parent :: _ -> parent ^ "/" ^ name in
    stack := path :: !stack;
    let w0 = Unix.gettimeofday () in
    let c0 = Sys.time () in
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | p :: rest when p == path -> stack := rest
        | _ -> () (* unbalanced (f tampered with the stack): leave it *));
        Metrics.span_record reg ~path
          ~wall:(Unix.gettimeofday () -. w0)
          ~cpu:(Sys.time () -. c0))
      f
  end
