type t =
  | Null
  | File of string
  | Channel of out_channel
  | Custom of (Metrics.snapshot -> unit)

let null = Null
let file path = File path
let channel oc = Channel oc
let custom f = Custom f

let render snap = Json.to_string ~pretty:true (Metrics.snapshot_to_json snap) ^ "\n"

let write sink snap =
  match sink with
  | Null -> ()
  | Custom f -> f snap
  | Channel oc ->
    output_string oc (render snap);
    flush oc
  | File path -> Omn_robust.Retry_io.write_string path (render snap)

let emit ?reg sink = write sink (Metrics.snapshot ?reg ())
