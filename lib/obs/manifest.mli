(** Run provenance manifests.

    Every result, metrics, bench and checkpoint-sidecar JSON the toolkit
    writes is stamped with the facts needed to reproduce (or distrust)
    it: the exact command line, the configuration knobs, the RNG seed,
    a SHA-256 of the input trace plus its node/contact counts, the
    toolkit and compiler versions (with [git describe] when the binary
    runs inside a checkout), the domain count, the host, and the run's
    wall-clock window. DTN results are notoriously sensitive to dataset
    and configuration provenance; the manifest makes both part of the
    artifact itself.

    Manifests are data, not behaviour: stamping one never changes a
    computed result, and two runs of the same command differ only in
    the [started]/[finished]/[hostname]/[git] fields. *)

type t = {
  schema_version : string;  (** {!schema} *)
  cmdline : string list;  (** [Sys.argv] verbatim *)
  config : (string * Json.t) list;  (** command-specific knobs *)
  seed : int option;
  trace_sha256 : string option;
      (** digest of the input file's bytes, or of the canonical
          serialisation for synthesised traces *)
  trace_name : string option;
  n_nodes : int option;
  n_contacts : int option;
  omn_version : string;
  git_describe : string option;  (** [None] outside a git checkout *)
  ocaml_version : string;
  domains : int option;
  workers : int option;  (** sharded runs: worker-process count *)
  shard_map_sha256 : string option;
      (** sharded runs: digest of the consistent-hash assignment
          (source -> worker), so two runs can be checked for identical
          placement *)
  hostname : string;
  started : float;  (** Unix epoch seconds *)
  finished : float option;
}

val schema : string
(** ["omn-manifest 1"]. *)

val create :
  ?config:(string * Json.t) list ->
  ?seed:int ->
  ?trace_sha256:string ->
  ?trace_name:string ->
  ?n_nodes:int ->
  ?n_contacts:int ->
  ?domains:int ->
  ?workers:int ->
  ?shard_map_sha256:string ->
  ?cmdline:string list ->
  version:string ->
  unit ->
  t
(** Stamp [started], the hostname and the toolchain versions now.
    [cmdline] defaults to [Sys.argv]. *)

val finish : t -> t
(** Stamp [finished] (idempotent: an already-finished manifest is
    returned unchanged). *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json m) = Ok m]. *)

val iso8601 : float -> string
(** UTC, seconds precision — how timestamps render in reports. *)

val git_describe : unit -> string option
(** Best-effort [git describe --always --dirty] of the current
    directory; [None] when git or the checkout is unavailable. Cached
    after the first call. *)
