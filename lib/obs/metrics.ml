(* Per-domain sharding: a metric handle owns one domain-local-storage
   key; the first update from a domain materialises that domain's cell
   and registers it (under the registry lock) in the handle's cell
   list. Updates then touch only the calling domain's cell — no locks,
   no false sharing worth caring about — and [snapshot] merges the
   cells. Cells are never removed: a pool worker's counts stay readable
   after the pool shuts down. *)

type histo_cell = {
  hbuckets : int array;
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type span_cell = { mutable sc_count : int; mutable sc_wall : float; mutable sc_cpu : float }

type t = {
  on : bool Atomic.t;
  lock : Mutex.t;
  names : (string, entry) Hashtbl.t;
  span_cells : (string, span_cell) Hashtbl.t;
  stack_key : string list ref Domain.DLS.key;
}

and entry = E_counter of counter | E_gauge of gauge | E_histogram of histogram
and counter = { c_reg : t; c_cells : (int * int ref) list ref; c_key : int ref Domain.DLS.key }
and gauge = { g_reg : t; g_cells : (int * float ref) list ref; g_key : float ref Domain.DLS.key }

and histogram = {
  h_reg : t;
  h_cells : (int * histo_cell) list ref;
  h_key : histo_cell Domain.DLS.key;
}

let create () =
  {
    on = Atomic.make false;
    lock = Mutex.create ();
    names = Hashtbl.create 32;
    span_cells = Hashtbl.create 32;
    stack_key = Domain.DLS.new_key (fun () -> ref []);
  }

let default = create ()
let set_enabled ?(reg = default) b = Atomic.set reg.on b
let enabled ?(reg = default) () = Atomic.get reg.on

let locked reg f =
  Mutex.lock reg.lock;
  match f () with
  | v ->
    Mutex.unlock reg.lock;
    v
  | exception e ->
    Mutex.unlock reg.lock;
    raise e

let domain_id () = (Domain.self () :> int)

(* --- registration --- *)

let register reg name mk wrap =
  locked reg (fun () ->
      match Hashtbl.find_opt reg.names name with
      | Some e -> e
      | None ->
        let e = wrap (mk ()) in
        Hashtbl.add reg.names name e;
        e)

let counter ?(reg = default) name =
  let mk () =
    let cells = ref [] in
    let key =
      Domain.DLS.new_key (fun () ->
          let r = ref 0 in
          locked reg (fun () -> cells := (domain_id (), r) :: !cells);
          r)
    in
    { c_reg = reg; c_cells = cells; c_key = key }
  in
  match register reg name mk (fun c -> E_counter c) with
  | E_counter c -> c
  | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is registered as another type")

let gauge ?(reg = default) name =
  let mk () =
    let cells = ref [] in
    let key =
      Domain.DLS.new_key (fun () ->
          let r = ref 0. in
          locked reg (fun () -> cells := (domain_id (), r) :: !cells);
          r)
    in
    { g_reg = reg; g_cells = cells; g_key = key }
  in
  match register reg name mk (fun g -> E_gauge g) with
  | E_gauge g -> g
  | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is registered as another type")

let n_buckets = 64
let bucket_lo = 1e-9
let log2 = Float.log 2.

let bucket_of v =
  if v <= bucket_lo then 0
  else begin
    let b = int_of_float (Float.ceil (Float.log (v /. bucket_lo) /. log2)) in
    if b < 0 then 0 else if b > n_buckets - 1 then n_buckets - 1 else b
  end

let bucket_le i = if i >= n_buckets - 1 then infinity else bucket_lo *. Float.pow 2. (float_of_int i)

let histogram ?(reg = default) name =
  let mk () =
    let cells = ref [] in
    let key =
      Domain.DLS.new_key (fun () ->
          let c =
            {
              hbuckets = Array.make n_buckets 0;
              hcount = 0;
              hsum = 0.;
              hmin = infinity;
              hmax = neg_infinity;
            }
          in
          locked reg (fun () -> cells := (domain_id (), c) :: !cells);
          c)
    in
    { h_reg = reg; h_cells = cells; h_key = key }
  in
  match register reg name mk (fun h -> E_histogram h) with
  | E_histogram h -> h
  | _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is registered as another type")

(* --- updates: one atomic load when disabled, one DLS access when on --- *)

let add c n =
  if Atomic.get c.c_reg.on then begin
    let r = Domain.DLS.get c.c_key in
    r := !r + n
  end

let incr c = add c 1

let set g v = if Atomic.get g.g_reg.on then Domain.DLS.get g.g_key := v

let gadd g v =
  if Atomic.get g.g_reg.on then begin
    let r = Domain.DLS.get g.g_key in
    r := !r +. v
  end

let observe h v =
  if Atomic.get h.h_reg.on && not (Float.is_nan v) then begin
    let c = Domain.DLS.get h.h_key in
    let i = bucket_of v in
    c.hbuckets.(i) <- c.hbuckets.(i) + 1;
    c.hcount <- c.hcount + 1;
    c.hsum <- c.hsum +. v;
    if v < c.hmin then c.hmin <- v;
    if v > c.hmax then c.hmax <- v
  end

(* --- spans --- *)

let span_stack reg = Domain.DLS.get reg.stack_key

let span_record reg ~path ~wall ~cpu =
  locked reg (fun () ->
      let cell =
        match Hashtbl.find_opt reg.span_cells path with
        | Some c -> c
        | None ->
          let c = { sc_count = 0; sc_wall = 0.; sc_cpu = 0. } in
          Hashtbl.add reg.span_cells path c;
          c
      in
      cell.sc_count <- cell.sc_count + 1;
      cell.sc_wall <- cell.sc_wall +. wall;
      cell.sc_cpu <- cell.sc_cpu +. cpu)

(* --- reset --- *)

let reset ?(reg = default) () =
  locked reg (fun () ->
      Hashtbl.iter
        (fun _ entry ->
          match entry with
          | E_counter c -> List.iter (fun (_, r) -> r := 0) !(c.c_cells)
          | E_gauge g -> List.iter (fun (_, r) -> r := 0.) !(g.g_cells)
          | E_histogram h ->
            List.iter
              (fun (_, c) ->
                Array.fill c.hbuckets 0 n_buckets 0;
                c.hcount <- 0;
                c.hsum <- 0.;
                c.hmin <- infinity;
                c.hmax <- neg_infinity)
              !(h.h_cells))
        reg.names;
      Hashtbl.reset reg.span_cells)

(* --- snapshots --- *)

type histo_view = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

type span_view = { sv_path : string; sv_count : int; sv_wall : float; sv_cpu : float }

type snapshot = {
  counters : (string * (int * (int * int) list)) list;
  gauges : (string * (float * (int * float) list)) list;
  histograms : (string * histo_view) list;
  spans : span_view list;
}

let by_fst (a, _) (b, _) = compare a b

let snapshot ?(reg = default) () =
  locked reg (fun () ->
      let counters = ref [] and gauges = ref [] and histograms = ref [] in
      Hashtbl.iter
        (fun name entry ->
          match entry with
          | E_counter c ->
            let cells = List.sort by_fst (List.map (fun (d, r) -> (d, !r)) !(c.c_cells)) in
            let total = List.fold_left (fun acc (_, v) -> acc + v) 0 cells in
            counters := (name, (total, cells)) :: !counters
          | E_gauge g ->
            let cells = List.sort by_fst (List.map (fun (d, r) -> (d, !r)) !(g.g_cells)) in
            let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. cells in
            gauges := (name, (total, cells)) :: !gauges
          | E_histogram h ->
            let buckets = Array.make n_buckets 0 in
            let count = ref 0 and sum = ref 0. in
            let mn = ref infinity and mx = ref neg_infinity in
            List.iter
              (fun (_, c) ->
                Array.iteri (fun i k -> buckets.(i) <- buckets.(i) + k) c.hbuckets;
                count := !count + c.hcount;
                sum := !sum +. c.hsum;
                if c.hmin < !mn then mn := c.hmin;
                if c.hmax > !mx then mx := c.hmax)
              !(h.h_cells);
            let nonzero = ref [] in
            for i = n_buckets - 1 downto 0 do
              if buckets.(i) > 0 then nonzero := (bucket_le i, buckets.(i)) :: !nonzero
            done;
            histograms :=
              (name, { h_count = !count; h_sum = !sum; h_min = !mn; h_max = !mx; h_buckets = !nonzero })
              :: !histograms)
        reg.names;
      let spans =
        Hashtbl.fold
          (fun path c acc ->
            { sv_path = path; sv_count = c.sc_count; sv_wall = c.sc_wall; sv_cpu = c.sc_cpu } :: acc)
          reg.span_cells []
        |> List.sort (fun a b -> compare a.sv_path b.sv_path)
      in
      {
        counters = List.sort by_fst !counters;
        gauges = List.sort by_fst !gauges;
        histograms = List.sort by_fst !histograms;
        spans;
      })

let counter_total snap name = Option.map fst (List.assoc_opt name snap.counters)
let gauge_total snap name = Option.map fst (List.assoc_opt name snap.gauges)
let find_histogram snap name = List.assoc_opt name snap.histograms
let find_span snap path = List.find_opt (fun s -> s.sv_path = path) snap.spans

(* --- cross-process merge ---------------------------------------------- *)

let empty_snapshot = { counters = []; gauges = []; histograms = []; spans = [] }

(* Merge two name-sorted association lists, combining values on a
   shared key. Inputs sorted -> output sorted, so merged snapshots of
   equal state stay structurally equal regardless of merge order. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ra, (kb, vb) :: rb ->
    if ka < kb then (ka, va) :: merge_assoc combine ra b
    else if kb < ka then (kb, vb) :: merge_assoc combine a rb
    else (ka, combine va vb) :: merge_assoc combine ra rb

let merge_cells add a b = merge_assoc add a b

let merge_counter (_, ca) (_, cb) =
  let cells = merge_cells (fun x y -> x + y) ca cb in
  (List.fold_left (fun acc (_, v) -> acc + v) 0 cells, cells)

let merge_gauge (_, ca) (_, cb) =
  let cells = merge_cells (fun x y -> x +. y) ca cb in
  (List.fold_left (fun acc (_, v) -> acc +. v) 0. cells, cells)

let merge_histo a b =
  {
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_min = Float.min a.h_min b.h_min;
    h_max = Float.max a.h_max b.h_max;
    (* bucket lists are (le, n) ascending by le; merge bucket-wise *)
    h_buckets = merge_assoc (fun x y -> x + y) a.h_buckets b.h_buckets;
  }

let merge_spans a b =
  let keyed l = List.map (fun sv -> (sv.sv_path, sv)) l in
  merge_assoc
    (fun x y ->
      {
        x with
        sv_count = x.sv_count + y.sv_count;
        sv_wall = x.sv_wall +. y.sv_wall;
        sv_cpu = x.sv_cpu +. y.sv_cpu;
      })
    (keyed a) (keyed b)
  |> List.map snd

let merge a b =
  {
    counters = merge_assoc merge_counter a.counters b.counters;
    gauges = merge_assoc merge_gauge a.gauges b.gauges;
    histograms = merge_assoc merge_histo a.histograms b.histograms;
    spans = merge_spans a.spans b.spans;
  }

let merge_all = List.fold_left merge empty_snapshot

(* Collapse a process-local snapshot's per-domain cells into a single
   cell keyed by [worker], so a fleet-merged snapshot keeps a
   per-worker (not per-domain) breakdown. Domain ids are process-local
   and collide across machines; worker ids do not. *)
let tag_worker ~worker snap =
  {
    snap with
    counters =
      List.map
        (fun (name, (total, _)) -> (name, (total, if total = 0 then [] else [ (worker, total) ])))
        snap.counters;
    gauges =
      List.map
        (fun (name, (total, _)) -> (name, (total, if total = 0. then [] else [ (worker, total) ])))
        snap.gauges;
  }

(* Pure injection: set counter [name] to exactly [cells] in the
   snapshot (replacing any recorded value). Lets artifact writers stamp
   side-channel totals — e.g. the timeline's per-domain dropped-event
   counts — into the snapshot itself. *)
let with_counter name cells snap =
  let cells = List.sort by_fst cells in
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 cells in
  {
    snap with
    counters =
      List.sort by_fst ((name, (total, cells)) :: List.remove_assoc name snap.counters);
  }

(* --- Prometheus text exposition --------------------------------------- *)

(* Prometheus metric names allow [a-zA-Z0-9_:]; dots become
   underscores under an `omn_` prefix. Floats use %.17g so the
   exposition round-trips the snapshot exactly. *)
let prom_name name =
  "omn_"
  ^ String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name

let prom_float v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let to_prometheus snap =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, (total, cells)) ->
      let n = prom_name name in
      line "# TYPE %s counter" n;
      line "%s %d" n total;
      List.iter (fun (w, v) -> line "%s{worker=\"%d\"} %d" n w v) cells)
    snap.counters;
  List.iter
    (fun (name, (total, cells)) ->
      let n = prom_name name in
      line "# TYPE %s gauge" n;
      line "%s %s" n (prom_float total);
      List.iter (fun (w, v) -> line "%s{worker=\"%d\"} %s" n w (prom_float v)) cells)
    snap.gauges;
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      line "# TYPE %s histogram" n;
      let cum = ref 0 in
      List.iter
        (fun (le, k) ->
          cum := !cum + k;
          line "%s_bucket{le=\"%s\"} %d" n (prom_float le) !cum)
        h.h_buckets;
      if List.for_all (fun (le, _) -> le <> infinity) h.h_buckets then
        line "%s_bucket{le=\"+Inf\"} %d" n h.h_count;
      line "%s_sum %s" n (prom_float h.h_sum);
      line "%s_count %d" n h.h_count)
    snap.histograms;
  Buffer.contents b

(* --- JSON --- *)

let schema = "omn-metrics 1"

let per_domain_json conv cells =
  Json.Obj (List.map (fun (d, v) -> (string_of_int d, conv v)) cells)

(* The span tree: recorded paths are aggregated under their
   '/'-separated prefixes; an intermediate node that was never recorded
   itself carries count 0 and is skipped when flattening back. *)
type tree = { mutable t_count : int; mutable t_wall : float; mutable t_cpu : float; mutable kids : (string * tree) list }

let span_tree_json spans =
  let root = { t_count = 0; t_wall = 0.; t_cpu = 0.; kids = [] } in
  let node_of parent name =
    match List.assoc_opt name parent.kids with
    | Some n -> n
    | None ->
      let n = { t_count = 0; t_wall = 0.; t_cpu = 0.; kids = [] } in
      parent.kids <- parent.kids @ [ (name, n) ];
      n
  in
  List.iter
    (fun sv ->
      let parts = String.split_on_char '/' sv.sv_path in
      let node = List.fold_left node_of root parts in
      node.t_count <- sv.sv_count;
      node.t_wall <- sv.sv_wall;
      node.t_cpu <- sv.sv_cpu)
    spans;
  let rec to_json node =
    let children =
      match node.kids with
      | [] -> []
      | kids -> [ ("children", Json.Obj (List.map (fun (k, n) -> (k, to_json n)) kids)) ]
    in
    Json.Obj
      ([
         ("count", Json.Int node.t_count);
         ("wall_s", Json.Float node.t_wall);
         ("cpu_s", Json.Float node.t_cpu);
       ]
      @ children)
  in
  Json.Obj (List.map (fun (k, n) -> (k, to_json n)) root.kids)

let snapshot_to_json snap =
  let counters =
    Json.Obj
      (List.map
         (fun (name, (total, cells)) ->
           ( name,
             Json.Obj
               [
                 ("total", Json.Int total);
                 ("per_domain", per_domain_json (fun v -> Json.Int v) cells);
               ] ))
         snap.counters)
  in
  let gauges =
    Json.Obj
      (List.map
         (fun (name, (total, cells)) ->
           ( name,
             Json.Obj
               [
                 ("total", Json.Float total);
                 ("per_domain", per_domain_json (fun v -> Json.Float v) cells);
               ] ))
         snap.gauges)
  in
  let histograms =
    Json.Obj
      (List.map
         (fun (name, h) ->
           let base = [ ("count", Json.Int h.h_count); ("sum", Json.Float h.h_sum) ] in
           let range =
             if h.h_count = 0 then []
             else [ ("min", Json.Float h.h_min); ("max", Json.Float h.h_max) ]
           in
           let buckets =
             [
               ( "buckets",
                 Json.List
                   (List.map
                      (fun (le, k) ->
                        Json.Obj
                          [
                            ( "le",
                              if le = infinity then Json.String "inf" else Json.Float le );
                            ("n", Json.Int k);
                          ])
                      h.h_buckets) );
             ]
           in
           (name, Json.Obj (base @ range @ buckets)))
         snap.histograms)
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("counters", counters);
      ("gauges", gauges);
      ("histograms", histograms);
      ("spans", span_tree_json snap.spans);
    ]

let snapshot_of_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let shape what = Error ("metrics snapshot: bad " ^ what) in
  let field name conv what j =
    match Option.bind (Json.member name j) conv with Some v -> Ok v | None -> shape what
  in
  let per_domain conv what j =
    match Json.member "per_domain" j with
    | Some (Json.Obj fields) ->
      let rec go acc = function
        | [] -> Ok (List.sort by_fst (List.rev acc))
        | (d, v) :: rest -> (
          match (int_of_string_opt d, conv v) with
          | Some d, Some v -> go ((d, v) :: acc) rest
          | _ -> shape what)
      in
      go [] fields
    | _ -> shape what
  in
  match json with
  | Json.Obj _ -> (
    (match Json.member "schema" json with
    | Some (Json.String s) when s = schema -> Ok ()
    | _ -> shape "schema")
    |> fun schema_ok ->
    let* () = schema_ok in
    let obj_field name =
      match Json.member name json with Some (Json.Obj o) -> Ok o | _ -> shape name
    in
    let* counter_fields = obj_field "counters" in
    let* counters =
      List.fold_left
        (fun acc (name, j) ->
          let* acc = acc in
          let* total = field "total" Json.to_int "counter total" j in
          let* cells = per_domain Json.to_int "counter per_domain" j in
          Ok ((name, (total, cells)) :: acc))
        (Ok []) counter_fields
    in
    let* gauge_fields = obj_field "gauges" in
    let* gauges =
      List.fold_left
        (fun acc (name, j) ->
          let* acc = acc in
          let* total = field "total" Json.to_float "gauge total" j in
          let* cells = per_domain Json.to_float "gauge per_domain" j in
          Ok ((name, (total, cells)) :: acc))
        (Ok []) gauge_fields
    in
    let* histo_fields = obj_field "histograms" in
    let* histograms =
      List.fold_left
        (fun acc (name, j) ->
          let* acc = acc in
          let* count = field "count" Json.to_int "histogram count" j in
          let* sum = field "sum" Json.to_float "histogram sum" j in
          let min_ =
            Option.value (Option.bind (Json.member "min" j) Json.to_float) ~default:infinity
          in
          let max_ =
            Option.value
              (Option.bind (Json.member "max" j) Json.to_float)
              ~default:neg_infinity
          in
          let* buckets =
            match Json.member "buckets" j with
            | Some (Json.List items) ->
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  let le =
                    match Json.member "le" item with
                    | Some (Json.String "inf") -> Some infinity
                    | Some j -> Json.to_float j
                    | None -> None
                  in
                  match (le, Option.bind (Json.member "n" item) Json.to_int) with
                  | Some le, Some n -> Ok ((le, n) :: acc)
                  | _ -> shape "histogram bucket")
                (Ok []) items
              |> fun r ->
              let* items = r in
              Ok (List.rev items)
            | _ -> shape "histogram buckets"
          in
          Ok
            ((name, { h_count = count; h_sum = sum; h_min = min_; h_max = max_; h_buckets = buckets })
            :: acc))
        (Ok []) histo_fields
    in
    let* span_fields = obj_field "spans" in
    let rec walk_spans prefix fields acc =
      List.fold_left
        (fun acc (name, j) ->
          let* acc = acc in
          let path = match prefix with "" -> name | p -> p ^ "/" ^ name in
          let* count = field "count" Json.to_int "span count" j in
          let* wall = field "wall_s" Json.to_float "span wall" j in
          let* cpu = field "cpu_s" Json.to_float "span cpu" j in
          let acc =
            if count = 0 then acc (* synthesised intermediate node *)
            else { sv_path = path; sv_count = count; sv_wall = wall; sv_cpu = cpu } :: acc
          in
          match Json.member "children" j with
          | Some (Json.Obj kids) -> walk_spans path kids (Ok acc)
          | Some _ -> shape "span children"
          | None -> Ok acc)
        acc fields
    in
    let* spans = walk_spans "" span_fields (Ok []) in
    Ok
      {
        counters = List.sort by_fst (List.rev counters);
        gauges = List.sort by_fst (List.rev gauges);
        histograms = List.sort by_fst (List.rev histograms);
        spans = List.sort (fun a b -> compare a.sv_path b.sv_path) spans;
      })
  | _ -> shape "top-level object"
