let schema = "omn-timeline 1"

(* The viewer expects integer-ish microseconds; floats are accepted but
   rounding here keeps files small and diff-friendly. *)
let micros t = Json.Float (Float.round (t *. 1e6))

(* Event start time: duration events carry their own start, instants
   start at their stamp. Used to anchor the trace at ts = 0. *)
let start_of (e : Timeline.entry) =
  match e.ev with
  | Chunk { start; _ } | Pool_work { start; _ } | Shard_compute { start; _ } -> start
  | Queue_wait { seconds } | Ckpt_write { seconds; _ } -> e.ts -. seconds
  | _ -> e.ts

let duration_event ?(pid = 1) ~t0 ~tid ~name ~cat ~start ~finish args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String cat);
       ("ph", Json.String "X");
       ("ts", micros (start -. t0));
       ("dur", micros (Float.max 0. (finish -. start)));
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ match args with [] -> [] | _ -> [ ("args", Json.Obj args) ])

let instant_event ?(pid = 1) ~t0 ~tid ~name ~cat ~ts args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String cat);
       ("ph", Json.String "i");
       ("s", Json.String "t");
       ("ts", micros (ts -. t0));
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ match args with [] -> [] | _ -> [ ("args", Json.Obj args) ])

let counter_event ?(pid = 1) ~t0 ~tid ~ts args =
  Json.Obj
    [
      ("name", Json.String "gc");
      ("cat", Json.String "gc");
      ("ph", Json.String "C");
      ("ts", micros (ts -. t0));
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let metadata ?(pid = 1) ~name ~tid args =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let event_json ?pid ~t0 (domain, (e : Timeline.entry)) =
  let tid = domain in
  let duration_event = duration_event ?pid
  and instant_event = instant_event ?pid
  and counter_event = counter_event ?pid in
  match e.ev with
  | Timeline.Chunk { index; items; start } ->
    duration_event ~t0 ~tid ~name:"chunk" ~cat:"driver" ~start ~finish:e.ts
      [ ("index", Json.Int index); ("items", Json.Int items) ]
  | Pool_work { start; stolen } ->
    duration_event ~t0 ~tid ~name:"pool.work" ~cat:"pool" ~start ~finish:e.ts
      [ ("stolen", Json.Bool stolen) ]
  | Steal -> instant_event ~t0 ~tid ~name:"steal" ~cat:"pool" ~ts:e.ts []
  | Queue_wait { seconds } ->
    duration_event ~t0 ~tid ~name:"queue.wait" ~cat:"pool" ~start:(e.ts -. seconds)
      ~finish:e.ts []
  | Ckpt_write { path; seconds } ->
    duration_event ~t0 ~tid ~name:"checkpoint.write" ~cat:"checkpoint"
      ~start:(e.ts -. seconds) ~finish:e.ts
      [ ("path", Json.String path) ]
  | Ckpt_rotate { path } ->
    instant_event ~t0 ~tid ~name:"checkpoint.rotate" ~cat:"checkpoint" ~ts:e.ts
      [ ("path", Json.String path) ]
  | Ckpt_fallback { path } ->
    instant_event ~t0 ~tid ~name:"checkpoint.fallback" ~cat:"checkpoint" ~ts:e.ts
      [ ("path", Json.String path) ]
  | Retry { item; attempt } ->
    instant_event ~t0 ~tid ~name:"retry" ~cat:"supervise" ~ts:e.ts
      [ ("item", Json.Int item); ("attempt", Json.Int attempt) ]
  | Quarantine { item; attempts } ->
    instant_event ~t0 ~tid ~name:"quarantine" ~cat:"supervise" ~ts:e.ts
      [ ("item", Json.Int item); ("attempts", Json.Int attempts) ]
  | Io_retry { op } ->
    instant_event ~t0 ~tid ~name:"io.retry" ~cat:"io" ~ts:e.ts
      [ ("op", Json.String op) ]
  | Gc_sample { minor; major; heap_words } ->
    counter_event ~t0 ~tid ~ts:e.ts
      [
        ("minor_collections", Json.Int minor);
        ("major_collections", Json.Int major);
        ("heap_words", Json.Int heap_words);
      ]
  | Mark { name } -> instant_event ~t0 ~tid ~name ~cat:"mark" ~ts:e.ts []
  | Worker_spawn { worker; pid } ->
    instant_event ~t0 ~tid ~name:"worker.spawn" ~cat:"shard" ~ts:e.ts
      [ ("worker", Json.Int worker); ("pid", Json.Int pid) ]
  | Heartbeat_miss { worker } ->
    instant_event ~t0 ~tid ~name:"heartbeat.miss" ~cat:"shard" ~ts:e.ts
      [ ("worker", Json.Int worker) ]
  | Frame_corrupt { worker } ->
    instant_event ~t0 ~tid ~name:"frame.corrupt" ~cat:"shard" ~ts:e.ts
      [ ("worker", Json.Int worker) ]
  | Reassign { source; from_worker; to_worker } ->
    instant_event ~t0 ~tid ~name:"reassign" ~cat:"shard" ~ts:e.ts
      [
        ("source", Json.Int source);
        ("from_worker", Json.Int from_worker);
        ("to_worker", Json.Int to_worker);
      ]
  | Worker_rejoin { worker; resumed } ->
    instant_event ~t0 ~tid ~name:"worker.rejoin" ~cat:"shard" ~ts:e.ts
      [ ("worker", Json.Int worker); ("resumed", Json.Int resumed) ]
  | Member_join { worker } ->
    instant_event ~t0 ~tid ~name:"member.join" ~cat:"shard" ~ts:e.ts
      [ ("worker", Json.Int worker) ]
  | Member_leave { worker } ->
    instant_event ~t0 ~tid ~name:"member.leave" ~cat:"shard" ~ts:e.ts
      [ ("worker", Json.Int worker) ]
  | Auth_reject { reason } ->
    instant_event ~t0 ~tid ~name:"auth.reject" ~cat:"shard" ~ts:e.ts
      [ ("reason", Json.String reason) ]
  | Trace_ship { worker; bytes } ->
    instant_event ~t0 ~tid ~name:"trace.ship" ~cat:"shard" ~ts:e.ts
      [ ("worker", Json.Int worker); ("bytes", Json.Int bytes) ]
  | Trace_cache_hit { worker } ->
    instant_event ~t0 ~tid ~name:"trace.cache_hit" ~cat:"shard" ~ts:e.ts
      [ ("worker", Json.Int worker) ]
  | Sample_round { round; sampled; width } ->
    instant_event ~t0 ~tid ~name:"sample.round" ~cat:"sample" ~ts:e.ts
      [ ("round", Json.Int round); ("sampled", Json.Int sampled); ("width", Json.Float width) ]
  | Shard_compute { source; start } ->
    duration_event ~t0 ~tid ~name:"shard.compute" ~cat:"shard" ~start ~finish:e.ts
      [ ("source", Json.Int source) ]

let to_json ?manifest (view : Timeline.view) =
  let t0 =
    List.fold_left
      (fun acc (_, e) -> Float.min acc (start_of e))
      infinity view.events
  in
  let t0 = if t0 = infinity then 0. else t0 in
  let domains =
    List.sort_uniq compare
      (List.map fst view.dropped @ List.map fst view.events)
  in
  let meta =
    metadata ~name:"process_name" ~tid:0 [ ("name", Json.String "omn") ]
    :: List.concat_map
         (fun d ->
           [
             metadata ~name:"thread_name" ~tid:d
               [ ("name", Json.String (Printf.sprintf "domain %d" d)) ];
             metadata ~name:"thread_sort_index" ~tid:d [ ("sort_index", Json.Int d) ];
           ])
         domains
  in
  let events = List.map (event_json ~t0) view.events in
  let omn =
    [
      ("schema", Json.String schema);
      ("t0_unix_s", Json.Float t0);
      ("events", Json.Int (List.length view.events));
      ("dropped_events", Json.Int (Timeline.total_dropped view));
      ( "dropped_per_domain",
        Json.Obj (List.map (fun (d, n) -> (string_of_int d, Json.Int n)) view.dropped) );
      ("ring_capacity", Json.Int view.capacity);
    ]
    @ match manifest with Some m -> [ ("manifest", m) ] | None -> []
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.String "ms");
      ("omn", Json.Obj omn);
    ]

let write ?manifest ~path view =
  Omn_robust.Retry_io.write_string path (Json.to_string ~pretty:true (to_json ?manifest view) ^ "\n")

(* --- fleet merge ------------------------------------------------------- *)

type fleet_worker = {
  fw_worker : int;
  fw_events : (int * Timeline.entry) list;
  fw_dropped : (int * int) list;
  fw_offset : float;
  fw_rtt : float;
}

let fleet_pid w = w.fw_worker + 2

(* Shift a worker-clock entry onto the coordinator clock: subtract the
   estimated offset from the stamp and from any embedded start.
   Durations (Queue_wait/Ckpt_write seconds) are clock-free. *)
let correct_entry off (e : Timeline.entry) =
  let ts = e.ts -. off in
  let ev =
    match e.ev with
    | Timeline.Chunk c -> Timeline.Chunk { c with start = c.start -. off }
    | Pool_work p -> Pool_work { p with start = p.start -. off }
    | Shard_compute s -> Shard_compute { s with start = s.start -. off }
    | ev -> ev
  in
  { Timeline.ts; ev }

let fleet_to_json ?manifest ~(coordinator : Timeline.view) workers =
  let workers = List.sort (fun a b -> compare a.fw_worker b.fw_worker) workers in
  let corrected =
    List.map
      (fun w ->
        (w, List.map (fun (d, e) -> (d, correct_entry w.fw_offset e)) w.fw_events))
      workers
  in
  let t0 =
    List.fold_left
      (fun acc (_, e) -> Float.min acc (start_of e))
      infinity
      (coordinator.Timeline.events @ List.concat_map snd corrected)
  in
  let t0 = if t0 = infinity then 0. else t0 in
  let domains_of dropped events =
    List.sort_uniq compare (List.map fst dropped @ List.map fst events)
  in
  let process_meta ~pid ~pname dropped events =
    metadata ~pid ~name:"process_name" ~tid:0 [ ("name", Json.String pname) ]
    :: metadata ~pid ~name:"process_sort_index" ~tid:0 [ ("sort_index", Json.Int pid) ]
    :: List.concat_map
         (fun d ->
           [
             metadata ~pid ~name:"thread_name" ~tid:d
               [ ("name", Json.String (Printf.sprintf "domain %d" d)) ];
             metadata ~pid ~name:"thread_sort_index" ~tid:d [ ("sort_index", Json.Int d) ];
           ])
         (domains_of dropped events)
  in
  let meta =
    process_meta ~pid:1 ~pname:"omn coordinator" coordinator.Timeline.dropped
      coordinator.Timeline.events
    @ List.concat_map
        (fun (w, events) ->
          process_meta ~pid:(fleet_pid w)
            ~pname:(Printf.sprintf "worker %d" w.fw_worker)
            w.fw_dropped events)
        corrected
  in
  let events =
    List.map (event_json ~t0) coordinator.Timeline.events
    @ List.concat_map
        (fun (w, events) -> List.map (event_json ~pid:(fleet_pid w) ~t0) events)
        corrected
  in
  let sum_dropped l = List.fold_left (fun acc (_, n) -> acc + n) 0 l in
  let fleet =
    List.map
      (fun (w, events) ->
        Json.Obj
          [
            ("worker", Json.Int w.fw_worker);
            ("pid", Json.Int (fleet_pid w));
            ("clock_offset_s", Json.Float w.fw_offset);
            ("rtt_s", Json.Float w.fw_rtt);
            ("events", Json.Int (List.length events));
            ("dropped", Json.Int (sum_dropped w.fw_dropped));
          ])
      corrected
  in
  let dropped_total =
    Timeline.total_dropped coordinator
    + List.fold_left (fun acc w -> acc + sum_dropped w.fw_dropped) 0 workers
  in
  let omn =
    [
      ("schema", Json.String schema);
      ("t0_unix_s", Json.Float t0);
      ("events", Json.Int (List.length events));
      ("dropped_events", Json.Int dropped_total);
      ( "dropped_per_domain",
        Json.Obj
          (List.map (fun (d, n) -> (string_of_int d, Json.Int n)) coordinator.Timeline.dropped)
      );
      ("ring_capacity", Json.Int coordinator.Timeline.capacity);
      ("fleet", Json.List fleet);
    ]
    @ match manifest with Some m -> [ ("manifest", m) ] | None -> []
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.String "ms");
      ("omn", Json.Obj omn);
    ]

let fleet_write ?manifest ~path ~coordinator workers =
  Omn_robust.Retry_io.write_string path
    (Json.to_string ~pretty:true (fleet_to_json ?manifest ~coordinator workers) ^ "\n")
