type t = {
  schema_version : string;
  cmdline : string list;
  config : (string * Json.t) list;
  seed : int option;
  trace_sha256 : string option;
  trace_name : string option;
  n_nodes : int option;
  n_contacts : int option;
  omn_version : string;
  git_describe : string option;
  ocaml_version : string;
  domains : int option;
  workers : int option;
  shard_map_sha256 : string option;
  hostname : string;
  started : float;
  finished : float option;
}

let schema = "omn-manifest 1"

let git_describe =
  let cached = lazy (
    try
      let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> Some line
      | _ -> None
    with Unix.Unix_error _ | Sys_error _ -> None)
  in
  fun () -> Lazy.force cached

let hostname () = try Unix.gethostname () with Unix.Unix_error _ -> "unknown"

let create ?(config = []) ?seed ?trace_sha256 ?trace_name ?n_nodes ?n_contacts ?domains
    ?workers ?shard_map_sha256 ?cmdline ~version () =
  {
    schema_version = schema;
    cmdline = (match cmdline with Some c -> c | None -> Array.to_list Sys.argv);
    config;
    seed;
    trace_sha256;
    trace_name;
    n_nodes;
    n_contacts;
    omn_version = version;
    git_describe = git_describe ();
    ocaml_version = Sys.ocaml_version;
    domains;
    workers;
    shard_map_sha256;
    hostname = hostname ();
    started = Unix.gettimeofday ();
    finished = None;
  }

let finish m =
  match m.finished with Some _ -> m | None -> { m with finished = Some (Unix.gettimeofday ()) }

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let opt f = function Some v -> f v | None -> Json.Null

let to_json m =
  Json.Obj
    [
      ("schema", Json.String m.schema_version);
      ("cmdline", Json.List (List.map (fun s -> Json.String s) m.cmdline));
      ("config", Json.Obj m.config);
      ("seed", opt (fun s -> Json.Int s) m.seed);
      ("trace_sha256", opt (fun s -> Json.String s) m.trace_sha256);
      ("trace_name", opt (fun s -> Json.String s) m.trace_name);
      ("n_nodes", opt (fun n -> Json.Int n) m.n_nodes);
      ("n_contacts", opt (fun n -> Json.Int n) m.n_contacts);
      ("omn_version", Json.String m.omn_version);
      ("git_describe", opt (fun s -> Json.String s) m.git_describe);
      ("ocaml_version", Json.String m.ocaml_version);
      ("domains", opt (fun d -> Json.Int d) m.domains);
      ("workers", opt (fun w -> Json.Int w) m.workers);
      ("shard_map_sha256", opt (fun s -> Json.String s) m.shard_map_sha256);
      ("hostname", Json.String m.hostname);
      ("started_unix_s", Json.Float m.started);
      ("started", Json.String (iso8601 m.started));
      ("finished_unix_s", opt (fun t -> Json.Float t) m.finished);
      ("finished", opt (fun t -> Json.String (iso8601 t)) m.finished);
    ]

let of_json j =
  let shape what = Error ("manifest: bad or missing " ^ what) in
  let req name conv =
    match Option.bind (Json.member name j) conv with Some v -> Ok v | None -> shape name
  in
  (* Null and absent both mean None for optional fields. *)
  let optional name conv =
    match Json.member name j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match conv v with Some v -> Ok (Some v) | None -> shape name)
  in
  let ( let* ) r f = Result.bind r f in
  let* schema_version = req "schema" Json.to_str in
  if schema_version <> schema then shape "schema"
  else
    let* cmdline =
      match Json.member "cmdline" j with
      | Some (Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Json.to_str item with
            | Some s -> Ok (s :: acc)
            | None -> shape "cmdline")
          (Ok []) items
        |> Result.map List.rev
      | _ -> shape "cmdline"
    in
    let* config =
      match Json.member "config" j with Some (Json.Obj o) -> Ok o | _ -> shape "config"
    in
    let* seed = optional "seed" Json.to_int in
    let* trace_sha256 = optional "trace_sha256" Json.to_str in
    let* trace_name = optional "trace_name" Json.to_str in
    let* n_nodes = optional "n_nodes" Json.to_int in
    let* n_contacts = optional "n_contacts" Json.to_int in
    let* omn_version = req "omn_version" Json.to_str in
    let* git = optional "git_describe" Json.to_str in
    let* ocaml_version = req "ocaml_version" Json.to_str in
    let* domains = optional "domains" Json.to_int in
    let* workers = optional "workers" Json.to_int in
    let* shard_map_sha256 = optional "shard_map_sha256" Json.to_str in
    let* hostname = req "hostname" Json.to_str in
    let* started = req "started_unix_s" Json.to_float in
    let* finished = optional "finished_unix_s" Json.to_float in
    Ok
      {
        schema_version;
        cmdline;
        config;
        seed;
        trace_sha256;
        trace_name;
        n_nodes;
        n_contacts;
        omn_version;
        git_describe = git;
        ocaml_version;
        domains;
        workers;
        shard_map_sha256;
        hostname;
        started;
        finished;
      }
