let schema = "omn-report 1"

(* ---- small helpers over parsed Json ---------------------------------- *)

let mem path j =
  List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path

let fnum j = Json.to_float j
let opt_json = function Some j -> j | None -> Json.Null

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

let median sorted = percentile sorted 0.5

(* ---- timeline (Chrome trace JSON) digestion -------------------------- *)

type dom = {
  mutable busy_us : float;
  mutable loops : int;
  mutable stolen_loops : int;
  mutable steals : int;
}

type tally = {
  doms : (int, dom) Hashtbl.t;
  mutable chunk_us : float list;
  mutable ckpt_us : float list;
  mutable rotates : int;
  mutable fallbacks : int;
  mutable retries : int;
  mutable quarantines : int;
  mutable io_retries : int;
  mutable gc_samples : int;
  mutable spawns : int;
  mutable heartbeat_misses : int;
  mutable frame_corrupts : int;
  mutable reassigns : int;
  mutable rejoins : int;
  mutable t_min_us : float;
  mutable t_max_us : float;
  mutable events : int;
}

let dom_of t tid =
  match Hashtbl.find_opt t.doms tid with
  | Some d -> d
  | None ->
    let d = { busy_us = 0.; loops = 0; stolen_loops = 0; steals = 0 } in
    Hashtbl.add t.doms tid d;
    d

let tally_event t ev =
  let str k = Option.bind (Json.member k ev) Json.to_str in
  let num k = Option.bind (Json.member k ev) fnum in
  let int_tid = Option.bind (Json.member "tid" ev) Json.to_int in
  match (str "ph", str "name", int_tid) with
  | Some "M", _, _ | None, _, _ | _, None, _ | _, _, None -> ()
  | Some ph, Some name, Some tid ->
    let ts = Option.value ~default:nan (num "ts") in
    let dur = Option.value ~default:0. (num "dur") in
    if Float.is_finite ts then begin
      t.events <- t.events + 1;
      t.t_min_us <- Float.min t.t_min_us ts;
      t.t_max_us <- Float.max t.t_max_us (ts +. dur)
    end;
    (match (ph, name) with
    | "X", "pool.work" ->
      let d = dom_of t tid in
      d.busy_us <- d.busy_us +. dur;
      d.loops <- d.loops + 1;
      if mem [ "args"; "stolen" ] ev |> Option.map Json.to_bool = Some (Some true) then
        d.stolen_loops <- d.stolen_loops + 1
    | "X", "chunk" -> t.chunk_us <- dur :: t.chunk_us
    | "X", "checkpoint.write" -> t.ckpt_us <- dur :: t.ckpt_us
    | _, "steal" -> (dom_of t tid).steals <- (dom_of t tid).steals + 1
    | _, "checkpoint.rotate" -> t.rotates <- t.rotates + 1
    | _, "checkpoint.fallback" -> t.fallbacks <- t.fallbacks + 1
    | _, "retry" -> t.retries <- t.retries + 1
    | _, "quarantine" -> t.quarantines <- t.quarantines + 1
    | _, "io.retry" -> t.io_retries <- t.io_retries + 1
    | _, "worker.spawn" -> t.spawns <- t.spawns + 1
    | _, "heartbeat.miss" -> t.heartbeat_misses <- t.heartbeat_misses + 1
    | _, "frame.corrupt" -> t.frame_corrupts <- t.frame_corrupts + 1
    | _, "reassign" -> t.reassigns <- t.reassigns + 1
    | _, "worker.rejoin" -> t.rejoins <- t.rejoins + 1
    | "C", "gc" -> t.gc_samples <- t.gc_samples + 1
    | _ -> ())

let tally_timeline tl =
  let t =
    {
      doms = Hashtbl.create 8;
      chunk_us = [];
      ckpt_us = [];
      rotates = 0;
      fallbacks = 0;
      retries = 0;
      quarantines = 0;
      io_retries = 0;
      gc_samples = 0;
      spawns = 0;
      heartbeat_misses = 0;
      frame_corrupts = 0;
      reassigns = 0;
      rejoins = 0;
      t_min_us = infinity;
      t_max_us = neg_infinity;
      events = 0;
    }
  in
  (match Option.bind (Json.member "traceEvents" tl) Json.to_list with
  | Some evs -> List.iter (tally_event t) evs
  | None -> ());
  t

let secs us = us /. 1e6

let json_float v = if Float.is_finite v then Json.Float v else Json.Null

let sorted_arr l =
  let a = Array.of_list l in
  Array.sort compare a;
  a

(* ---- report sections -------------------------------------------------- *)

let domains_section t wall_s =
  let doms = Hashtbl.fold (fun tid d acc -> (tid, d) :: acc) t.doms [] in
  let doms = List.sort compare doms in
  let busy_list = List.map (fun (_, d) -> secs d.busy_us) doms in
  let per_domain =
    Json.Obj
      (List.map
         (fun (tid, d) ->
           let busy = secs d.busy_us in
           let idle =
             match wall_s with
             | Some w when Float.is_finite w -> json_float (Float.max 0. (w -. busy))
             | _ -> Json.Null
           in
           ( string_of_int tid,
             Json.Obj
               [
                 ("busy_s", json_float busy);
                 ("idle_s", idle);
                 ("work_loops", Json.Int d.loops);
                 ("stolen_loops", Json.Int d.stolen_loops);
                 ("steals", Json.Int d.steals);
               ] ))
         doms)
  in
  let n = List.length busy_list in
  let load =
    if n = 0 then Json.Null
    else begin
      let total = List.fold_left ( +. ) 0. busy_list in
      let mx = List.fold_left Float.max neg_infinity busy_list in
      let mean = total /. float_of_int n in
      Json.Obj
        [
          ("busy_total_s", json_float total);
          ("busy_max_s", json_float mx);
          ("busy_mean_s", json_float mean);
          ( "imbalance",
            if mean > 0. then json_float (mx /. mean) else Json.Null );
        ]
    end
  in
  (per_domain, load)

let chunks_section t =
  let a = sorted_arr (List.map secs t.chunk_us) in
  let n = Array.length a in
  if n = 0 then Json.Null
  else begin
    let total = Array.fold_left ( +. ) 0. a in
    let mx = a.(n - 1) and md = median a in
    (* A straggler chunk dominates wall-clock no matter how many domains
       run: flag when the slowest chunk is 3x the median (with enough
       chunks for the median to mean something). *)
    let straggler = n >= 4 && md > 0. && mx > 3. *. md in
    Json.Obj
      [
        ("count", Json.Int n);
        ("total_s", json_float total);
        ("mean_s", json_float (total /. float_of_int n));
        ("median_s", json_float md);
        ("p90_s", json_float (percentile a 0.9));
        ("max_s", json_float mx);
        ("imbalance", if md > 0. then json_float (mx /. md) else Json.Null);
        ("straggler", Json.Bool straggler);
      ]
  end

let checkpoints_section t =
  let a = sorted_arr (List.map secs t.ckpt_us) in
  let n = Array.length a in
  Json.Obj
    ([ ("writes", Json.Int n) ]
    @ (if n = 0 then []
       else
         [
           ("p50_s", json_float (median a));
           ("p90_s", json_float (percentile a 0.9));
           ("max_s", json_float a.(n - 1));
         ])
    @ [ ("rotates", Json.Int t.rotates); ("fallbacks", Json.Int t.fallbacks) ])

let counter_totals metrics =
  match Option.bind (Json.member "counters" metrics) Json.to_obj with
  | None -> []
  | Some fields ->
    List.filter_map
      (fun (name, v) ->
        Option.map (fun total -> (name, total)) (Option.bind (Json.member "total" v) Json.to_int))
      fields

let shard_section t counters =
  let c name = Option.value ~default:0 (List.assoc_opt name counters) in
  let spawns = max t.spawns (c "shard.worker_spawns") in
  let misses = max t.heartbeat_misses (c "shard.heartbeat_misses") in
  let corrupts = max t.frame_corrupts (c "shard.frame_corrupt") in
  let reassigns = max t.reassigns (c "shard.reassigned_sources") in
  let rejoins = max t.rejoins (c "shard.worker_rejoins") in
  let dupes = c "shard.duplicate_results" in
  if spawns + misses + corrupts + reassigns + rejoins + dupes = 0 then Json.Null
  else
    Json.Obj
      [
        ("worker_spawns", Json.Int spawns);
        ("heartbeat_misses", Json.Int misses);
        ("frame_corrupts", Json.Int corrupts);
        ("reassigned_sources", Json.Int reassigns);
        ("worker_rejoins", Json.Int rejoins);
        ("duplicate_results_dropped", Json.Int dupes);
      ]

let resilience_section t counters =
  let c name = Option.value ~default:0 (List.assoc_opt name counters) in
  (* The timeline can undercount (ring overflow); metrics counters never
     drop. Report whichever saw more. *)
  Json.Obj
    [
      ("retries", Json.Int (max t.retries (c "supervise.retries")));
      ("quarantined", Json.Int (max t.quarantines (c "supervise.quarantined")));
      ("io_retries", Json.Int (max t.io_retries (c "io.retries")));
      ("degraded_sources", Json.Int (c "delay_cdf.sources_degraded"));
      ("checkpoint_fallbacks", Json.Int (max t.fallbacks (c "delay_cdf.checkpoint_fallback")));
    ]

(* ---- fleet section ---------------------------------------------------- *)

type fleet_row = {
  mutable fl_busy_us : float;
  mutable fl_ship_bytes : int;
  mutable fl_cache_hits : int;
}

(* Per-worker busy time comes from that worker's own track (its pid in
   the merged trace); trace shipping and cache hits are coordinator-side
   events carrying the target worker in [args.worker]. *)
let fleet_tally tl pids =
  let rows = Hashtbl.create 8 in
  let row_of key =
    match Hashtbl.find_opt rows key with
    | Some r -> r
    | None ->
      let r = { fl_busy_us = 0.; fl_ship_bytes = 0; fl_cache_hits = 0 } in
      Hashtbl.add rows key r;
      r
  in
  let on_event ev =
    let str k = Option.bind (Json.member k ev) Json.to_str in
    let pid = Option.bind (Json.member "pid" ev) Json.to_int in
    let arg_worker = Option.bind (mem [ "args"; "worker" ] ev) Json.to_int in
    match (str "ph", str "name") with
    | Some "X", Some ("shard.compute" | "pool.work") -> (
      match Option.bind pid (fun p -> List.assoc_opt p pids) with
      | Some worker ->
        let dur = Option.value ~default:0. (Option.bind (Json.member "dur" ev) fnum) in
        let r = row_of worker in
        r.fl_busy_us <- r.fl_busy_us +. dur
      | None -> ())
    | _, Some "trace.ship" -> (
      match arg_worker with
      | Some w ->
        let bytes = Option.value ~default:0 (Option.bind (mem [ "args"; "bytes" ] ev) Json.to_int) in
        (row_of w).fl_ship_bytes <- (row_of w).fl_ship_bytes + bytes
      | None -> ())
    | _, Some "trace.cache_hit" -> (
      match arg_worker with
      | Some w -> (row_of w).fl_cache_hits <- (row_of w).fl_cache_hits + 1
      | None -> ())
    | _ -> ()
  in
  (match Option.bind (Json.member "traceEvents" tl) Json.to_list with
  | Some evs -> List.iter on_event evs
  | None -> ());
  rows

let fleet_section timeline wall_s =
  match Option.bind timeline (fun tl -> mem [ "omn"; "fleet" ] tl) with
  | Some (Json.List ((_ :: _) as fleet)) ->
    let tl = Option.get timeline in
    let footer =
      List.filter_map
        (fun w ->
          match
            ( Option.bind (Json.member "worker" w) Json.to_int,
              Option.bind (Json.member "pid" w) Json.to_int )
          with
          | Some worker, Some pid -> Some (worker, pid, w)
          | _ -> None)
        fleet
    in
    let pids = List.map (fun (worker, pid, _) -> (pid, worker)) footer in
    let rows = fleet_tally tl pids in
    let busy_of worker =
      match Hashtbl.find_opt rows worker with Some r -> secs r.fl_busy_us | None -> 0.
    in
    let busies = sorted_arr (List.map (fun (worker, _, _) -> busy_of worker) footer) in
    let md = median busies in
    let n = Array.length busies in
    let mean = Array.fold_left ( +. ) 0. busies /. float_of_int n in
    let mx = if n = 0 then nan else busies.(n - 1) in
    let workers =
      Json.Obj
        (List.map
           (fun (worker, pid, w) ->
             let busy = busy_of worker in
             let idle =
               match wall_s with
               | Some wall when Float.is_finite wall -> json_float (Float.max 0. (wall -. busy))
               | _ -> Json.Null
             in
             let ship, hits =
               match Hashtbl.find_opt rows worker with
               | Some r -> (r.fl_ship_bytes, r.fl_cache_hits)
               | None -> (0, 0)
             in
             let int_of k = Option.value ~default:0 (Option.bind (Json.member k w) Json.to_int) in
             let float_of k = Option.bind (Json.member k w) fnum in
             ( string_of_int worker,
               Json.Obj
                 [
                   ("pid", Json.Int pid);
                   ("busy_s", json_float busy);
                   ("idle_s", idle);
                   ("ship_bytes", Json.Int ship);
                   ("cache_hits", Json.Int hits);
                   ("events", Json.Int (int_of "events"));
                   ("dropped", Json.Int (int_of "dropped"));
                   ( "clock_offset_s",
                     match float_of "clock_offset_s" with Some v -> json_float v | None -> Json.Null );
                   ( "rtt_s",
                     match float_of "rtt_s" with Some v -> json_float v | None -> Json.Null );
                   ("straggler", Json.Bool (n >= 2 && md > 0. && busy > 3. *. md));
                 ] ))
           footer)
    in
    Json.Obj
      [
        ("workers", workers);
        ("busy_max_s", json_float mx);
        ("busy_mean_s", json_float mean);
        ("imbalance", if mean > 0. then json_float (mx /. mean) else Json.Null);
      ]
  | _ -> Json.Null

let build ?metrics ?timeline ?result () =
  let t =
    match timeline with
    | Some tl -> tally_timeline tl
    | None -> tally_timeline (Json.Obj [])
  in
  let manifest =
    let first_some l = List.find_map (fun x -> x) l in
    first_some
      [
        Option.bind result (Json.member "manifest");
        Option.bind timeline (fun tl -> mem [ "omn"; "manifest" ] tl);
        Option.bind metrics (Json.member "manifest");
      ]
  in
  let dropped =
    (* The trace footer and the metrics counter [timeline.dropped_events]
       both record ring drops; a metrics file alone must be enough for
       [--fail-dropped], so take whichever saw more. *)
    let from_timeline =
      match Option.bind timeline (fun tl -> mem [ "omn"; "dropped_events" ] tl) with
      | Some j -> Option.value ~default:0 (Json.to_int j)
      | None -> 0
    in
    let from_metrics =
      match
        Option.bind metrics (fun m -> mem [ "counters"; "timeline.dropped_events"; "total" ] m)
      with
      | Some j -> Option.value ~default:0 (Json.to_int j)
      | None -> 0
    in
    max from_timeline from_metrics
  in
  let wall_s =
    if Float.is_finite t.t_min_us && Float.is_finite t.t_max_us then
      Some (secs (t.t_max_us -. t.t_min_us))
    else None
  in
  let per_domain, load = domains_section t wall_s in
  let counters = match metrics with Some m -> counter_totals m | None -> [] in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("manifest", opt_json manifest);
      ("dropped_events", Json.Int dropped);
      ("wall_s", (match wall_s with Some w -> json_float w | None -> Json.Null));
      ("timeline_events", Json.Int t.events);
      ("gc_samples", Json.Int t.gc_samples);
      ("domains", per_domain);
      ("load", load);
      ("chunks", chunks_section t);
      ("checkpoints", checkpoints_section t);
      ("resilience", resilience_section t counters);
      ("shard", shard_section t counters);
      ("fleet", fleet_section timeline wall_s);
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) counters) );
    ]

let dropped_events report =
  match Option.bind (Json.member "dropped_events" report) Json.to_int with
  | Some n -> n
  | None -> 0

(* ---- human rendering -------------------------------------------------- *)

let pp_float ppf = function
  | Json.Float f -> Format.fprintf ppf "%.4g" f
  | Json.Int i -> Format.fprintf ppf "%d" i
  | _ -> Format.pp_print_string ppf "-"

let get k j = Option.value ~default:Json.Null (Json.member k j)

let pp ppf report =
  let line fmt = Format.fprintf ppf fmt in
  line "omn report@.";
  (match Json.member "manifest" report with
  | Some (Json.Obj _ as m) ->
    let s k = match Option.bind (Json.member k m) Json.to_str with Some v -> v | None -> "-" in
    let cmd =
      match Option.bind (Json.member "cmdline" m) Json.to_list with
      | Some l -> String.concat " " (List.filter_map Json.to_str l)
      | None -> "-"
    in
    line "  run      : %s@." cmd;
    line "  version  : %s (%s, OCaml %s)@." (s "omn_version") (s "git_describe")
      (s "ocaml_version");
    line "  host     : %s, started %s@." (s "hostname") (s "started")
  | _ -> line "  (no manifest)@.");
  (match Json.member "wall_s" report with
  | Some (Json.Float _ as w) -> line "  wall     : %a s@." pp_float w
  | _ -> ());
  line "  events   : %a recorded, %a dropped@." pp_float (get "timeline_events" report)
    pp_float (get "dropped_events" report);
  (match Option.bind (Json.member "domains" report) Json.to_obj with
  | Some ((_ :: _) as doms) ->
    line "  domains  :@.";
    List.iter
      (fun (tid, d) ->
        line "    %s: busy %a s, idle %a s, %a loops (%a stolen), %a steals@." tid pp_float
          (get "busy_s" d) pp_float (get "idle_s" d) pp_float (get "work_loops" d) pp_float
          (get "stolen_loops" d) pp_float (get "steals" d))
      doms;
    (match Json.member "load" report with
    | Some (Json.Obj _ as l) ->
      line "    load imbalance %a (max/mean busy)@." pp_float (get "imbalance" l)
    | _ -> ())
  | _ -> ());
  (match Json.member "chunks" report with
  | Some (Json.Obj _ as c) ->
    line "  chunks   : %a, median %a s, p90 %a s, max %a s, imbalance %a%s@." pp_float
      (get "count" c) pp_float (get "median_s" c) pp_float (get "p90_s" c) pp_float
      (get "max_s" c) pp_float (get "imbalance" c)
      (match Json.member "straggler" c with
      | Some (Json.Bool true) -> "  ** STRAGGLER **"
      | _ -> "")
  | _ -> ());
  (match Json.member "checkpoints" report with
  | Some (Json.Obj _ as c) ->
    line "  ckpts    : %a writes (p50 %a s, p90 %a s, max %a s), %a rotates, %a fallbacks@."
      pp_float (get "writes" c) pp_float (get "p50_s" c) pp_float (get "p90_s" c) pp_float
      (get "max_s" c) pp_float (get "rotates" c) pp_float (get "fallbacks" c)
  | _ -> ());
  (match Json.member "resilience" report with
  | Some (Json.Obj _ as r) ->
    line "  resil.   : %a retries, %a quarantined, %a io retries, %a degraded, %a ckpt fallbacks@."
      pp_float (get "retries" r) pp_float (get "quarantined" r) pp_float (get "io_retries" r)
      pp_float (get "degraded_sources" r) pp_float (get "checkpoint_fallbacks" r)
  | _ -> ());
  (match Json.member "shard" report with
  | Some (Json.Obj _ as s) ->
    line
      "  shard    : %a spawns, %a hb misses, %a frame corrupts, %a reassigned, %a rejoins, %a dup results dropped@."
      pp_float (get "worker_spawns" s) pp_float (get "heartbeat_misses" s) pp_float
      (get "frame_corrupts" s) pp_float (get "reassigned_sources" s) pp_float
      (get "worker_rejoins" s) pp_float (get "duplicate_results_dropped" s)
  | _ -> ());
  (match Json.member "fleet" report with
  | Some (Json.Obj _ as f) ->
    line "  fleet    :@.";
    (match Option.bind (Json.member "workers" f) Json.to_obj with
    | Some workers ->
      List.iter
        (fun (w, row) ->
          line
            "    worker %s: busy %a s, idle %a s, shipped %a B, %a cache hits, %a events (%a dropped), clock offset %a s%s@."
            w pp_float (get "busy_s" row) pp_float (get "idle_s" row) pp_float
            (get "ship_bytes" row) pp_float (get "cache_hits" row) pp_float (get "events" row)
            pp_float (get "dropped" row) pp_float (get "clock_offset_s" row)
            (match Json.member "straggler" row with
            | Some (Json.Bool true) -> "  ** STRAGGLER **"
            | _ -> ""))
        workers
    | None -> ());
    line "    fleet imbalance %a (max/mean busy)@." pp_float (get "imbalance" f)
  | _ -> ())
