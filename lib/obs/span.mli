(** Lightweight timing spans.

    [with_ ~name f] runs [f] and records its wall-clock and CPU time
    into the registry, aggregated per nesting path: spans opened inside
    [f] (on the same domain) record under ["name/child"]. When the
    registry is disabled the call is exactly [f ()] — no clock reads,
    no allocation — so spans can wrap hot drivers unconditionally.

    Nesting is tracked per domain: a span opened on a pool worker is a
    root there even if the caller holds an open span. Names must not
    contain ['/'] (the path separator). *)

val with_ : ?reg:Metrics.t -> name:string -> (unit -> 'a) -> 'a
(** Exceptions from [f] propagate; the span still records. *)
