type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no non-finite numbers. Encode them as the conventional
   string sentinels (what Python's json and many JS serialisers accept)
   so they survive a round trip deterministically instead of collapsing
   to null; to_float maps the sentinels back. *)
let nonfinite_repr f =
  if Float.is_nan f then "NaN" else if f > 0. then "Infinity" else "-Infinity"

let float_repr f =
  let s = Printf.sprintf "%.17g" f in
  (* trim to the shortest representation that still round-trips *)
  let shorter = Printf.sprintf "%.12g" f in
  if float_of_string shorter = f then shorter else s

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f when not (Float.is_finite f) -> escape buf (nonfinite_repr f)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          go (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at offset %d" m !pos))) fmt in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail "expected '%c'" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let add_utf8 buf cp =
    (* enough for \uXXXX escapes: the basic multilingual plane *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'; incr pos
        | '\\' -> Buffer.add_char buf '\\'; incr pos
        | '/' -> Buffer.add_char buf '/'; incr pos
        | 'b' -> Buffer.add_char buf '\b'; incr pos
        | 'f' -> Buffer.add_char buf '\012'; incr pos
        | 'n' -> Buffer.add_char buf '\n'; incr pos
        | 'r' -> Buffer.add_char buf '\r'; incr pos
        | 't' -> Buffer.add_char buf '\t'; incr pos
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some cp -> add_utf8 buf cp
          | None -> fail "bad \\u escape %S" hex);
          pos := !pos + 5
        | c -> fail "bad escape '\\%c'" c);
        go ()
      | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    let is_int =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text)
    in
    if is_int then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number %S" text)
    else
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S" text
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | ',' -> incr pos; fields_loop ()
          | '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | ',' -> incr pos; items_loop ()
          | ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | '"' -> String (string_lit ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> number ()
    | _ -> fail "unexpected input"
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | String "NaN" -> Some nan
  | String "Infinity" -> Some infinity
  | String "-Infinity" -> Some neg_infinity
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj o -> Some o | _ -> None
