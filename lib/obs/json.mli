(** Minimal self-contained JSON — no external dependency.

    Just enough of RFC 8259 for metrics snapshots and bench reports:
    a value type, a printer, and a recursive-descent parser. Non-finite
    floats have no JSON representation; they are printed as the string
    sentinels ["NaN"], ["Infinity"] and ["-Infinity"] (the convention
    Python's [json] module emits and most tooling accepts), and
    {!to_float} maps those sentinels back, so non-finite values survive
    a print/parse round trip deterministically. Integers survive a
    round trip as {!Int}, finite floats as {!Float} (printed with
    ["%.17g"], which round-trips doubles exactly). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion order preserved *)

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default false) indents with two spaces. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error). Numbers without [.], [e] or [E] parse as
    {!Int}, everything else as {!Float}. *)

(** {1 Accessors} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an {!Obj}. *)

val to_int : t -> int option
val to_float : t -> float option
(** {!Int} widens to float; the strings ["NaN"], ["Infinity"] and
    ["-Infinity"] decode to the non-finite floats they denote. *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
