type t = {
  label : string;
  total : int option;
  out : out_channel;
  min_interval : float;
  tty : bool;
  mutable count : int;
  mutable last_print : float;
  mutable open_line : bool;  (* a \r-style line is on screen *)
  mutable finished : bool;
  lock : Mutex.t;  (* updates may arrive from pool worker domains *)
}

let create ?(out = stderr) ?(min_interval = 0.5) ?total ~label () =
  let tty =
    try Unix.isatty (Unix.descr_of_out_channel out) with Unix.Unix_error _ | Sys_error _ -> false
  in
  {
    label;
    total;
    out;
    min_interval;
    tty;
    count = 0;
    last_print = neg_infinity;
    open_line = false;
    finished = false;
    lock = Mutex.create ();
  }

let render t =
  match t.total with
  | Some total when total > 0 ->
    Printf.sprintf "%s: %d/%d (%.1f%%)" t.label t.count total
      (100. *. float_of_int t.count /. float_of_int total)
  | _ -> Printf.sprintf "%s: %d" t.label t.count

let print t ~force =
  let now = Unix.gettimeofday () in
  if (force || now -. t.last_print >= t.min_interval) && not t.finished then begin
    t.last_print <- now;
    if t.tty then begin
      Printf.fprintf t.out "\r%s%!" (render t);
      t.open_line <- true
    end
    else Printf.fprintf t.out "%s\n%!" (render t)
  end

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set t k =
  locked t @@ fun () ->
  t.count <- max t.count k;
  print t ~force:false

let step ?(n = 1) t =
  locked t @@ fun () ->
  t.count <- t.count + n;
  print t ~force:false

let finish t =
  locked t @@ fun () ->
  if not t.finished then begin
    print t ~force:true;
    if t.open_line then Printf.fprintf t.out "\n%!";
    t.finished <- true
  end
