type t = {
  label : string;
  total : int option;
  out : out_channel;
  min_interval : float;
  tty : bool;
  mutable count : int;
  mutable degraded : int;
  mutable fallback : bool;
  mutable rate : float;  (* EWMA items/s; 0 = no estimate yet *)
  mutable rate_at : float;  (* when the rate was last updated *)
  mutable rate_count : int;  (* count at that moment *)
  mutable last_print : float;
  mutable open_line : bool;  (* a \r-style line is on screen *)
  mutable finished : bool;
  lock : Mutex.t;  (* updates may arrive from pool worker domains *)
}

let create ?(out = stderr) ?(min_interval = 0.5) ?total ~label () =
  let tty =
    try Unix.isatty (Unix.descr_of_out_channel out) with Unix.Unix_error _ | Sys_error _ -> false
  in
  {
    label;
    total;
    out;
    min_interval;
    tty;
    count = 0;
    degraded = 0;
    fallback = false;
    rate = 0.;
    rate_at = Unix.gettimeofday ();
    rate_count = 0;
    last_print = neg_infinity;
    open_line = false;
    finished = false;
    lock = Mutex.create ();
  }

let fmt_eta s =
  if s < 60. then Printf.sprintf "%.0fs" s
  else if s < 3600. then Printf.sprintf "%.0fm%02.0fs" (Float.of_int (int_of_float s / 60)) (Float.rem s 60.)
  else Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s / 60 mod 60)

(* Smooth the instantaneous chunk-completion rate so the ETA doesn't
   whipsaw on uneven chunks; updates only on forward progress, so a
   stalled bar keeps its last honest estimate. *)
let update_rate t now =
  if t.count > t.rate_count && now > t.rate_at then begin
    let inst = float_of_int (t.count - t.rate_count) /. (now -. t.rate_at) in
    t.rate <- (if t.rate = 0. then inst else (0.3 *. inst) +. (0.7 *. t.rate));
    t.rate_at <- now;
    t.rate_count <- t.count
  end

let render t =
  let status =
    (if t.degraded > 0 then Printf.sprintf ", degraded %d" t.degraded else "")
    ^ if t.fallback then ", ckpt-fallback" else ""
  in
  match t.total with
  | Some total when total > 0 ->
    let eta =
      if t.rate > 0. && t.count < total && t.count > 0 then
        Printf.sprintf ", eta %s" (fmt_eta (float_of_int (total - t.count) /. t.rate))
      else ""
    in
    Printf.sprintf "%s: %d/%d (%.1f%%)%s%s" t.label t.count total
      (100. *. float_of_int t.count /. float_of_int total)
      eta status
  | _ -> Printf.sprintf "%s: %d%s" t.label t.count status

let print t ~force =
  let now = Unix.gettimeofday () in
  update_rate t now;
  if (force || now -. t.last_print >= t.min_interval) && not t.finished then begin
    t.last_print <- now;
    if t.tty then begin
      Printf.fprintf t.out "\r%s%!" (render t);
      t.open_line <- true
    end
    else Printf.fprintf t.out "%s\n%!" (render t)
  end

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set t k =
  locked t @@ fun () ->
  t.count <- max t.count k;
  print t ~force:false

let step ?(n = 1) t =
  locked t @@ fun () ->
  t.count <- t.count + n;
  print t ~force:false

let set_degraded t n =
  locked t @@ fun () -> t.degraded <- max t.degraded n

let set_fallback t =
  locked t @@ fun () -> t.fallback <- true

let finish t =
  locked t @@ fun () ->
  if not t.finished then begin
    print t ~force:true;
    if t.open_line then Printf.fprintf t.out "\n%!";
    t.finished <- true
  end
