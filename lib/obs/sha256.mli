(** SHA-256 (FIPS 180-4), self-contained.

    Used by {!Manifest} to fingerprint input traces so result files
    carry a provenance digest that survives renames and copies. Not a
    performance-critical path: manifests hash one trace file per run. *)

val string : string -> string
(** Lowercase hex digest (64 characters) of the bytes of the string. *)

val file : string -> string
(** Digest of a file's contents, read with transient-failure retries
    ({!Omn_robust.Retry_io}). Raises [Sys_error] if unreadable. *)
