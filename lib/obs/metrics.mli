(** Process-local metrics registry, safe under OCaml domains.

    Counters, gauges and log-bucketed histograms for the frontier
    pipeline. Every metric is sharded per domain: an update touches only
    a cell owned by the calling domain (reached through domain-local
    storage, no locks, no contention), and the shards are merged when a
    {!snapshot} is read. A snapshot therefore also exposes the
    per-domain breakdown — e.g. how pool busy time split across
    workers.

    A registry starts {e disabled}: every update is a single atomic
    load and a branch (a few nanoseconds), so instrumentation can stay
    in the hot paths permanently. Enabling ({!set_enabled}) never
    changes computed results — instrumented code only ever {e adds}
    observations on the side (see the bit-identity test in
    [test/test_obs.ml]).

    Reads are deliberately relaxed: a snapshot taken while domains are
    updating may miss in-flight increments (it never tears a value —
    cells are word-sized). Take final snapshots after the work
    completes, as the CLI's [--metrics] does. [reset] also assumes a
    quiescent registry. *)

type t
(** A registry. Most code uses the shared {!default} one. *)

val create : unit -> t
val default : t

val set_enabled : ?reg:t -> bool -> unit
val enabled : ?reg:t -> unit -> bool

val reset : ?reg:t -> unit -> unit
(** Zero every cell and drop all spans. Call only while no other domain
    is updating the registry. Metric registrations survive. *)

(** {1 Counters} — monotonic integers. *)

type counter

val counter : ?reg:t -> string -> counter
(** Find or register. Raises [Invalid_argument] if the name is already
    registered as a different metric type. Handles are cheap to keep in
    module-level bindings (the intended pattern). *)

val incr : counter -> unit
val add : counter -> int -> unit

(** {1 Gauges} — per-domain floats, merged by {e sum}.

    The sharded analogue of "one value per worker": each domain sets or
    accumulates its own cell and the snapshot reports both the sum and
    the per-domain values. Use for additive quantities (busy seconds,
    bytes written); a last-writer-wins global float has no meaningful
    merge across domains. *)

type gauge

val gauge : ?reg:t -> string -> gauge
val set : gauge -> float -> unit
val gadd : gauge -> float -> unit

(** {1 Histograms} — log-bucketed, fixed global bucket scheme.

    64 buckets, geometric with ratio 2 from 1e-9: bucket 0 holds values
    [<= 1e-9] (including zero and negatives), bucket [i] holds
    [(1e-9 * 2^(i-1), 1e-9 * 2^i]], the last bucket everything above.
    The scheme is process-wide so shards and snapshots merge
    bucket-by-bucket. NaN observations are ignored. *)

type histogram

val histogram : ?reg:t -> string -> histogram
val observe : histogram -> float -> unit

val bucket_le : int -> float
(** Inclusive upper bound of bucket [i]; [infinity] for the last. *)

(** {1 Spans} — aggregated by path; recorded via {!Span.with_}. *)

val span_record : t -> path:string -> wall:float -> cpu:float -> unit
(** Add one completed span occurrence to the path's aggregate. Paths
    use ['/'] as the nesting separator, so avoid it in span names. *)

val span_stack : t -> string list ref
(** The calling domain's span-nesting stack (innermost first, each
    entry a full path). Owned by {!Span}; exposed for it only. *)

(** {1 Snapshots} *)

type histo_view = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [infinity] when empty *)
  h_max : float;  (** [neg_infinity] when empty *)
  h_buckets : (float * int) list;
      (** (inclusive upper bound, count), non-empty buckets only,
          ascending *)
}

type span_view = { sv_path : string; sv_count : int; sv_wall : float; sv_cpu : float }

type snapshot = {
  counters : (string * (int * (int * int) list)) list;
      (** name -> (merged total, per-domain (domain id, value)) *)
  gauges : (string * (float * (int * float) list)) list;
  histograms : (string * histo_view) list;
  spans : span_view list;  (** sorted by path *)
}
(** All association lists sorted by name; per-domain lists by domain
    id — snapshots of equal state are structurally equal. *)

val snapshot : ?reg:t -> unit -> snapshot

val counter_total : snapshot -> string -> int option
val gauge_total : snapshot -> string -> float option
val find_histogram : snapshot -> string -> histo_view option
val find_span : snapshot -> string -> span_view option

(** {1 Cross-process merge} — fleet-wide aggregation.

    Snapshots taken in different processes (e.g. one per shard worker)
    combine with {!merge}: counters and gauges sum cell-wise, histograms
    merge bucket-by-bucket (the bucket scheme is global, see
    {!bucket_le}), spans aggregate by path. [merge] is associative and
    commutative up to float rounding — exactly so for integer-valued
    observations — and {!empty_snapshot} is its identity, so a fold over
    workers in any order yields the same totals. *)

val empty_snapshot : snapshot
val merge : snapshot -> snapshot -> snapshot
val merge_all : snapshot list -> snapshot

val tag_worker : worker:int -> snapshot -> snapshot
(** Collapse the per-domain cells of every counter and gauge into a
    single cell keyed by [worker]. Apply to each process-local snapshot
    before {!merge} so the fleet-wide snapshot keeps a per-{e worker}
    breakdown — domain ids are process-local and collide across
    machines; worker ids do not. Zero-total metrics keep empty cells. *)

val with_counter : string -> (int * int) list -> snapshot -> snapshot
(** [with_counter name cells snap] sets counter [name] to exactly
    [cells] (total recomputed), replacing any recorded value. Used to
    stamp side-channel totals — e.g. the timeline's per-domain dropped
    event counts — into the snapshot before serialisation. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition (format 0.0.4) of the snapshot: metric
    names are the registry names with non-alphanumerics mapped to ['_']
    under an [omn_] prefix; per-cell breakdowns become a
    [{worker="id"}] label; histograms expose cumulative [_bucket{le}],
    [_sum] and [_count] series. Pure — the [--stat-addr] endpoint and
    tests share it. *)

(** {1 JSON} — schema ["omn-metrics 1"], see README "Observability". *)

val snapshot_to_json : snapshot -> Json.t
(** Spans are rendered as a nested tree keyed by span name. *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Inverse of {!snapshot_to_json}: [snapshot_of_json (snapshot_to_json s) = Ok s]. *)
