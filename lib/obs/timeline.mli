(** Per-domain event journal for run post-mortems.

    The timeline answers the question the aggregate {!Metrics} registry
    cannot: {e when} did each chunk run, on {e which} domain, and what
    (steals, checkpoint writes, retries, GC pressure) happened around
    it. Events are recorded into a fixed-capacity ring buffer owned by
    the recording domain — no locks, no shared mutable state on the hot
    path — and merged into one time-ordered view on {!snapshot}. When a
    ring fills, the {e oldest} events are dropped and counted, so a
    straggler's recent history always survives.

    Like {!Metrics}, a timeline starts disabled and every [record] on
    the disabled path is a single atomic load and a branch; enabling it
    never changes computed results (bit-identity is asserted in
    [test/test_timeline.ml] and the bench). Snapshots assume quiescence:
    take them after the instrumented work completes, as the CLI's
    [--trace-out] does. *)

(** {1 Events}

    Timestamps are Unix epoch seconds ({!entry.ts}). Duration-shaped
    events carry their own start time and are recorded at completion, so
    a ring overflow can never orphan half of an interval. *)

type event =
  | Chunk of { index : int; items : int; start : float }
      (** one driver chunk (e.g. [checkpoint_every] sources through the
          pool), recorded on the submitting domain *)
  | Pool_work of { start : float; stolen : bool }
      (** one domain's work loop within one [Pool.map]; [stolen] marks a
          helper domain rather than the submitter *)
  | Steal  (** a helper executed one task the submitter did not *)
  | Queue_wait of { seconds : float }
      (** submit-to-first-poll latency of one helper *)
  | Ckpt_write of { path : string; seconds : float }
  | Ckpt_rotate of { path : string }
      (** the previous checkpoint generation was promoted to [*.prev] *)
  | Ckpt_fallback of { path : string }
      (** resume found the current generation corrupt and fell back *)
  | Retry of { item : int; attempt : int }
  | Quarantine of { item : int; attempts : int }
  | Io_retry of { op : string }
  | Gc_sample of { minor : int; major : int; heap_words : int }
      (** cumulative collection counts and major-heap words *)
  | Mark of { name : string }  (** generic instant *)
  | Worker_spawn of { worker : int; pid : int }
      (** shard coordinator started (or respawned) a worker process *)
  | Heartbeat_miss of { worker : int }
      (** a worker went silent past the heartbeat timeout and was
          declared dead *)
  | Frame_corrupt of { worker : int }
      (** a wire frame from this worker failed its CRC / framing check
          and the connection was dropped *)
  | Reassign of { source : int; from_worker : int; to_worker : int }
      (** an unacknowledged source moved to its ring successor after
          its worker died *)
  | Worker_rejoin of { worker : int; resumed : int }
      (** a respawned worker came back up, with [resumed] results
          recovered from its shard checkpoint *)
  | Member_join of { worker : int }
      (** a new worker was admitted into the consistent-hash ring
          mid-run (dynamic membership) *)
  | Member_leave of { worker : int }
      (** a worker departed gracefully: its pending work was
          reassigned, no respawn attempted *)
  | Auth_reject of { reason : string }
      (** an inbound connection failed the pre-shared-key handshake
          (wrong key, replayed nonce, or version mismatch) *)
  | Trace_ship of { worker : int; bytes : int }
      (** the coordinator shipped the full trace text to a worker that
          missed its digest cache *)
  | Trace_cache_hit of { worker : int }
      (** a worker already held the job's trace by digest — zero bytes
          shipped *)
  | Sample_round of { round : int; sampled : int; width : float }
      (** one tightening round of the sampled diameter estimator:
          cumulative sources sampled and the CI width it achieved *)
  | Shard_compute of { source : int; start : float }
      (** a shard worker computed one source's partial delay-CDF
          ([start]..[ts] span); the per-worker busy signal in merged
          fleet traces *)

type entry = { ts : float; ev : event }

(** {1 Recording} *)

type t
(** A journal. Most code uses the shared {!default} one. *)

val create : ?capacity:int -> unit -> t
(** [capacity] (default 65536) is the per-domain ring size. *)

val default : t

val set_enabled : ?tl:t -> bool -> unit
val enabled : ?tl:t -> unit -> bool

val record : ?tl:t -> ?ts:float -> event -> unit
(** Append to the calling domain's ring ([ts] defaults to now). A no-op
    when disabled — callers building event payloads should guard with
    {!enabled} to avoid the allocation, as the instrumented hot paths
    do. *)

val reset : ?tl:t -> unit -> unit
(** Empty every ring and zero the dropped counters. Call only while no
    other domain is recording. *)

(** {1 Snapshots} *)

type view = {
  events : (int * entry) list;
      (** (recording domain id, entry), ascending by [ts] (ties broken
          by domain id) *)
  dropped : (int * int) list;  (** per-domain dropped-event counts, by id *)
  capacity : int;
}

val snapshot : ?tl:t -> unit -> view
(** Merge every domain's ring. Relaxed like {!Metrics.snapshot}: a
    snapshot taken while domains are recording may miss in-flight
    events (never a torn one — slots hold immutable entries); dropped
    counts are exact once the recording domains are quiescent. *)

val total_dropped : view -> int
