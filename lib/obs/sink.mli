(** Pluggable destinations for metrics snapshots.

    The file sink writes the JSON snapshot atomically (temp file +
    rename) with transient-failure retries (via
    {!Omn_robust.Retry_io}), so a crash mid-write never leaves a torn
    snapshot and a stray EINTR never loses one — the properties long
    budgeted runs rely on when they re-emit metrics after every
    chunk. *)

type t

val null : t
val file : string -> t
(** Atomic JSON write (pretty-printed, trailing newline). *)

val channel : out_channel -> t
val custom : (Metrics.snapshot -> unit) -> t

val write : t -> Metrics.snapshot -> unit

val emit : ?reg:Metrics.t -> t -> unit
(** Snapshot the registry and {!write} it. *)
