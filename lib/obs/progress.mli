(** Line-rate-limited progress reporting for long sweeps.

    Prints at most one update per [min_interval] seconds (default 0.5)
    to [out] (default stderr): carriage-return style on a tty, one
    plain line per update otherwise (so logs stay readable). Purely
    cosmetic — never touches the metrics registry and works whether or
    not metrics are enabled. Safe to update from multiple domains
    (pool workers report concurrently); [set] keeps the maximum, so
    out-of-order completion reports never move the bar backwards.

    When a [total] is known the line carries an ETA derived from an
    exponentially-weighted moving average of the completion rate, and
    every line appends the run's health — [degraded N] once any source
    degrades and [ckpt-fallback] once a checkpoint falls back to its
    previous generation — so an operator watching a long sweep sees
    trouble as it happens rather than in the final summary. *)

type t

val create : ?out:out_channel -> ?min_interval:float -> ?total:int -> label:string -> unit -> t

val set : t -> int -> unit
(** Raise the completed count to [k] (monotone); prints if the rate
    limit allows. *)

val step : ?n:int -> t -> unit
(** Advance by [n] (default 1). *)

val set_degraded : t -> int -> unit
(** Raise the degraded-source count shown on the line (monotone). *)

val set_fallback : t -> unit
(** Mark that a checkpoint load fell back to the previous generation;
    sticky for the rest of the bar's life. *)

val finish : t -> unit
(** Force a final line (and terminate the tty line). Idempotent. *)
