(** Line-rate-limited progress reporting for long sweeps.

    Prints at most one update per [min_interval] seconds (default 0.5)
    to [out] (default stderr): carriage-return style on a tty, one
    plain line per update otherwise (so logs stay readable). Purely
    cosmetic — never touches the metrics registry and works whether or
    not metrics are enabled. Safe to update from multiple domains
    (pool workers report concurrently); [set] keeps the maximum, so
    out-of-order completion reports never move the bar backwards. *)

type t

val create : ?out:out_channel -> ?min_interval:float -> ?total:int -> label:string -> unit -> t

val set : t -> int -> unit
(** Raise the completed count to [k] (monotone); prints if the rate
    limit allows. *)

val step : ?n:int -> t -> unit
(** Advance by [n] (default 1). *)

val finish : t -> unit
(** Force a final line (and terminate the tty line). Idempotent. *)
