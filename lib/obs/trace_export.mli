(** Chrome trace-event JSON export of a {!Timeline} snapshot.

    The output opens directly in Perfetto (ui.perfetto.dev) or
    [chrome://tracing]: one track (thread) per OCaml domain, duration
    ("ph":"X") events for chunks and pool work loops, instant ("ph":"i")
    events for steals, retries, quarantines and checkpoint operations,
    and a counter ("ph":"C") track for GC samples. Timestamps are
    microseconds relative to the earliest event; the absolute epoch
    start and the dropped-event counts live in a top-level ["omn"]
    object (schema ["omn-timeline 1"]), alongside the run manifest when
    one is supplied — extra top-level keys are explicitly allowed by the
    trace-event format. *)

val to_json : ?manifest:Json.t -> Timeline.view -> Json.t

val write : ?manifest:Json.t -> path:string -> Timeline.view -> unit
(** Atomic write (temp file + rename) with transient-failure retries. *)

val schema : string
(** ["omn-timeline 1"], the value of ["omn"."schema"]. *)
