(** Chrome trace-event JSON export of a {!Timeline} snapshot.

    The output opens directly in Perfetto (ui.perfetto.dev) or
    [chrome://tracing]: one track (thread) per OCaml domain, duration
    ("ph":"X") events for chunks and pool work loops, instant ("ph":"i")
    events for steals, retries, quarantines and checkpoint operations,
    and a counter ("ph":"C") track for GC samples. Timestamps are
    microseconds relative to the earliest event; the absolute epoch
    start and the dropped-event counts live in a top-level ["omn"]
    object (schema ["omn-timeline 1"]), alongside the run manifest when
    one is supplied — extra top-level keys are explicitly allowed by the
    trace-event format. *)

val to_json : ?manifest:Json.t -> Timeline.view -> Json.t

val write : ?manifest:Json.t -> path:string -> Timeline.view -> unit
(** Atomic write (temp file + rename) with transient-failure retries. *)

val schema : string
(** ["omn-timeline 1"], the value of ["omn"."schema"]. *)

(** {1 Fleet merge} — one trace, one Perfetto {e process} per worker.

    A sharded run collects each worker's timeline segments over the
    wire ({!Omn_shard.Coord}); {!fleet_to_json} merges them with the
    coordinator's own view into a single trace. The coordinator renders
    as pid 1 and worker [w] as pid [w + 2]; every worker timestamp is
    shifted onto the coordinator clock by the worker's estimated offset
    (NTP-style, from [Stats_pull] round trips — see README "Fleet
    observability" for the caveats). The ["omn"."fleet"] footer lists
    per-worker pid, clock offset, round-trip time, event and
    dropped-event counts. *)

type fleet_worker = {
  fw_worker : int;  (** worker id (>= 0) *)
  fw_events : (int * Timeline.entry) list;
      (** (domain, entry), worker-clock timestamps, chronological *)
  fw_dropped : (int * int) list;  (** per-domain ring drops *)
  fw_offset : float;
      (** estimated worker_clock - coordinator_clock, seconds *)
  fw_rtt : float;  (** round-trip time of the best offset sample *)
}

val fleet_to_json : ?manifest:Json.t -> coordinator:Timeline.view -> fleet_worker list -> Json.t

val fleet_write :
  ?manifest:Json.t -> path:string -> coordinator:Timeline.view -> fleet_worker list -> unit
