(* Same sharding discipline as Metrics: each domain's first record
   materialises a ring cell through domain-local storage and registers
   it (under the journal lock) in the cell list; recording then touches
   only the owning domain's cell. Slots hold immutable boxed entries, so
   a concurrent snapshot can read a stale pointer but never a torn
   event. *)

type event =
  | Chunk of { index : int; items : int; start : float }
  | Pool_work of { start : float; stolen : bool }
  | Steal
  | Queue_wait of { seconds : float }
  | Ckpt_write of { path : string; seconds : float }
  | Ckpt_rotate of { path : string }
  | Ckpt_fallback of { path : string }
  | Retry of { item : int; attempt : int }
  | Quarantine of { item : int; attempts : int }
  | Io_retry of { op : string }
  | Gc_sample of { minor : int; major : int; heap_words : int }
  | Mark of { name : string }
  | Worker_spawn of { worker : int; pid : int }
  | Heartbeat_miss of { worker : int }
  | Frame_corrupt of { worker : int }
  | Reassign of { source : int; from_worker : int; to_worker : int }
  | Worker_rejoin of { worker : int; resumed : int }
  | Member_join of { worker : int }
  | Member_leave of { worker : int }
  | Auth_reject of { reason : string }
  | Trace_ship of { worker : int; bytes : int }
  | Trace_cache_hit of { worker : int }
  | Sample_round of { round : int; sampled : int; width : float }
  | Shard_compute of { source : int; start : float }

type entry = { ts : float; ev : event }

type cell = {
  buf : entry array;
  mutable head : int;  (* index of the oldest live entry *)
  mutable count : int;
  mutable dropped : int;
}

type t = {
  on : bool Atomic.t;
  capacity : int;
  lock : Mutex.t;
  cells : (int * cell) list ref;
  key : cell Domain.DLS.key;
}

let dummy = { ts = 0.; ev = Mark { name = "" } }

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Timeline.create: capacity < 1";
  let lock = Mutex.create () in
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = { buf = Array.make capacity dummy; head = 0; count = 0; dropped = 0 } in
        Mutex.lock lock;
        cells := ((Domain.self () :> int), c) :: !cells;
        Mutex.unlock lock;
        c)
  in
  { on = Atomic.make false; capacity; lock; cells; key }

let default = create ()
let set_enabled ?(tl = default) b = Atomic.set tl.on b
let enabled ?(tl = default) () = Atomic.get tl.on

let record ?(tl = default) ?ts ev =
  if Atomic.get tl.on then begin
    let ts = match ts with Some t -> t | None -> Unix.gettimeofday () in
    let c = Domain.DLS.get tl.key in
    if c.count = tl.capacity then begin
      (* full: overwrite the oldest slot and advance the head *)
      c.buf.(c.head) <- { ts; ev };
      c.head <- (c.head + 1) mod tl.capacity;
      c.dropped <- c.dropped + 1
    end
    else begin
      c.buf.((c.head + c.count) mod tl.capacity) <- { ts; ev };
      c.count <- c.count + 1
    end
  end

let locked tl f =
  Mutex.lock tl.lock;
  match f () with
  | v ->
    Mutex.unlock tl.lock;
    v
  | exception e ->
    Mutex.unlock tl.lock;
    raise e

let reset ?(tl = default) () =
  locked tl (fun () ->
      List.iter
        (fun (_, c) ->
          Array.fill c.buf 0 tl.capacity dummy;
          c.head <- 0;
          c.count <- 0;
          c.dropped <- 0)
        !(tl.cells))

type view = { events : (int * entry) list; dropped : (int * int) list; capacity : int }

let snapshot ?(tl = default) () =
  locked tl (fun () ->
      let events = ref [] and dropped = ref [] in
      List.iter
        (fun (d, (c : cell)) ->
          dropped := (d, c.dropped) :: !dropped;
          for i = c.count - 1 downto 0 do
            events := (d, c.buf.((c.head + i) mod tl.capacity)) :: !events
          done)
        !(tl.cells);
      let events =
        List.stable_sort
          (fun (d1, e1) (d2, e2) ->
            match compare e1.ts e2.ts with 0 -> compare d1 d2 | c -> c)
          !events
      in
      { events; dropped = List.sort compare !dropped; capacity = tl.capacity })

let total_dropped view = List.fold_left (fun acc (_, n) -> acc + n) 0 view.dropped
