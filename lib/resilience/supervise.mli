(** Supervised task execution: bounded retries, deadlines, quarantine.

    The all-pairs drivers fan thousands of independent per-source tasks
    over a domain pool; unsupervised, the first raising task abandons
    the whole run ([Omn_parallel.Pool.map] semantics). A {!policy}
    turns that into a supervision strategy: each failing task is
    retried up to [retries] extra times with capped exponential backoff
    and deterministic seeded jitter, and a task that still fails is
    {e quarantined} — its slot records a typed {!failure} while every
    other task completes normally. Because a retry re-runs the same
    pure task on the same input, and successful slots keep the slot-[i]
    contract of [Pool.map], all successful results are bit-identical
    to a fault-free run.

    Counters (registry of [Omn_obs.Metrics]): [supervise.retries],
    [supervise.task_failures], [supervise.quarantined],
    [supervise.deadline_giveups], and — wired from here into
    [Omn_robust.Retry_io] — [resilience.io_retries]. *)

type policy = {
  retries : int;  (** extra attempts after the first (0 = fail fast) *)
  backoff : float;  (** base backoff delay, seconds *)
  backoff_max : float;  (** cap on a single backoff delay *)
  jitter_seed : int;  (** seed of the deterministic backoff jitter *)
  task_deadline : float option;
      (** wall-clock budget per attempt: an attempt that {e fails}
          after exceeding it is not retried (a run cannot afford to
          re-run a task that already demonstrated it overruns).
          Attempts cannot be pre-empted mid-flight; a {e successful}
          overrun is kept. *)
  run_deadline : float option;
      (** wall-clock budget for a whole {!map}: once exceeded, failing
          tasks are no longer retried (quarantined on their next
          failure) so the run converges quickly. Successful tasks are
          unaffected — determinism of successful slots is preserved. *)
  quarantine : bool;
      (** [true]: a task that exhausts its retries yields
          [Error failure]; [false]: its exception is re-raised (the
          pre-supervision behaviour, with retries). *)
}

val default : policy
(** 2 retries, 50 ms base backoff capped at 1 s, seed 0, no deadlines,
    quarantine on. *)

type failure = {
  item : int;  (** caller-assigned id (see [map]'s [id]), default index *)
  attempts : int;  (** attempts actually made, >= 1 *)
  reason : string;  (** [Printexc.to_string] of the last exception *)
}

val pp_failure : Format.formatter -> failure -> unit

val failure_to_tuple : failure -> int * int * string
val failure_of_tuple : int * int * string -> failure
(** Stable tuple form for checkpoint snapshots and wire messages, so
    Marshal payloads do not depend on the record's representation.
    [failure_of_tuple (failure_to_tuple f) = f]. *)

val exit_code : partial:bool -> degraded:bool -> int
(** The documented CLI exit-code precedence for a completed run:
    partial (124, the [timeout(1)] convention) beats degraded-but-
    complete (3) beats success (0). All drivers — single-process and
    sharded — report through this one function so the precedence can
    never drift between them. *)

val set_task_fault : (item:int -> attempt:int -> unit) option -> unit
(** Chaos hook: install (or clear) a process-wide function called at
    the start of every supervised attempt with the task's [item] id and
    0-based [attempt] number. Raise from it to inject a task fault —
    deterministically targeting chosen items, transiently (raise only
    on [attempt = 0]) or persistently. Test-only. *)

val backoff_delay : policy -> item:int -> attempt:int -> float
(** The deterministic backoff before retrying [item] after failed
    [attempt] (0-based): [min backoff_max (backoff * 2^attempt)] scaled
    by a jitter in [0.5, 1.0) derived from [(jitter_seed, item,
    attempt)] only. Exposed for tests. *)

val run_task :
  ?clock:(unit -> float) ->
  ?sleep:(float -> unit) ->
  ?give_up:(unit -> bool) ->
  policy ->
  item:int ->
  (unit -> 'b) ->
  ('b, failure) result
(** Run one task under the policy. [clock] defaults to
    [Unix.gettimeofday], [sleep] to [Unix.sleepf] (tests pass a no-op
    to run instantly). [give_up] is polled after each failure; when it
    returns [true], remaining retries are forfeited ({!map} wires the
    [run_deadline] through it). Raises [Invalid_argument] on a
    malformed policy (negative [retries] or backoff). With
    [quarantine = false] the final exception is re-raised instead of
    returned. *)

val map :
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  ?clock:(unit -> float) ->
  ?sleep:(float -> unit) ->
  ?id:('a -> int) ->
  policy ->
  ('a -> 'b) ->
  'a array ->
  ('b, failure) result array
(** Supervised fan-out with [Omn_parallel.Pool.run] dispatch (shared
    [pool], else a temporary pool of [domains], else sequential — same
    rules, same slot-[i] determinism for successful items). [id] maps
    an input to the id recorded in its {!failure} and passed to the
    chaos hook and jitter (default: its array index). *)

val failures : ('b, failure) result array -> failure list
(** The [Error] slots, in slot order. *)
