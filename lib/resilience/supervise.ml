module Pool = Omn_parallel.Pool
module Metrics = Omn_obs.Metrics
module Timeline = Omn_obs.Timeline
module Rng = Omn_stats.Rng

let m_retries = Metrics.counter "supervise.retries"
let m_failures = Metrics.counter "supervise.task_failures"
let m_quarantined = Metrics.counter "supervise.quarantined"
let m_deadline = Metrics.counter "supervise.deadline_giveups"
let m_io_retries = Metrics.counter "resilience.io_retries"

(* Retry_io and Checkpoint sit below the metrics/timeline registry in
   the dependency order, so their hooks are wired up here, where both
   sides are visible. *)
let () =
  Omn_robust.Retry_io.on_retry :=
    (fun ~op ->
      Metrics.incr m_io_retries;
      Timeline.record (Io_retry { op }));
  Omn_robust.Checkpoint.on_rotate := fun ~path -> Timeline.record (Ckpt_rotate { path })

type policy = {
  retries : int;
  backoff : float;
  backoff_max : float;
  jitter_seed : int;
  task_deadline : float option;
  run_deadline : float option;
  quarantine : bool;
}

let default =
  {
    retries = 2;
    backoff = 0.05;
    backoff_max = 1.;
    jitter_seed = 0;
    task_deadline = None;
    run_deadline = None;
    quarantine = true;
  }

type failure = { item : int; attempts : int; reason : string }

let pp_failure ppf f =
  Format.fprintf ppf "item %d quarantined after %d attempt(s): %s" f.item f.attempts f.reason

(* Checkpoint snapshots and wire messages store failures as plain tuples
   so their Marshal layout does not depend on this record's
   representation. *)
let failure_to_tuple f = (f.item, f.attempts, f.reason)
let failure_of_tuple (item, attempts, reason) = { item; attempts; reason }

let exit_code ~partial ~degraded = if partial then 124 else if degraded then 3 else 0

let task_fault : (item:int -> attempt:int -> unit) option Atomic.t = Atomic.make None
let set_task_fault h = Atomic.set task_fault h

let backoff_delay policy ~item ~attempt =
  let base = Float.min policy.backoff_max (policy.backoff *. (2. ** float_of_int attempt)) in
  let rng = Rng.create (policy.jitter_seed lxor Hashtbl.hash (item, attempt)) in
  base *. (0.5 +. (0.5 *. Rng.float rng))

let validate policy =
  if policy.retries < 0 then invalid_arg "Supervise: retries < 0";
  if policy.backoff < 0. || policy.backoff_max < 0. then invalid_arg "Supervise: negative backoff";
  (match policy.task_deadline with
  | Some d when d < 0. -> invalid_arg "Supervise: negative task deadline"
  | _ -> ());
  match policy.run_deadline with
  | Some d when d < 0. -> invalid_arg "Supervise: negative run deadline"
  | _ -> ()

let run_task ?(clock = Unix.gettimeofday) ?(sleep = Unix.sleepf) ?(give_up = fun () -> false)
    policy ~item f =
  validate policy;
  let attempt_once a =
    (match Atomic.get task_fault with Some h -> h ~item ~attempt:a | None -> ());
    f ()
  in
  let rec go a =
    let t0 = clock () in
    match attempt_once a with
    | v -> Ok v
    | exception e ->
      Metrics.incr m_failures;
      let overran =
        match policy.task_deadline with Some d -> clock () -. t0 > d | None -> false
      in
      if overran then Metrics.incr m_deadline;
      if overran || a >= policy.retries || give_up () then
        if policy.quarantine then begin
          Metrics.incr m_quarantined;
          Timeline.record (Quarantine { item; attempts = a + 1 });
          Error { item; attempts = a + 1; reason = Printexc.to_string e }
        end
        else raise e
      else begin
        Metrics.incr m_retries;
        Timeline.record (Retry { item; attempt = a });
        sleep (backoff_delay policy ~item ~attempt:a);
        go (a + 1)
      end
  in
  go 0

let map ?pool ?(domains = 1) ?(clock = Unix.gettimeofday) ?(sleep = Unix.sleepf) ?id policy f xs =
  validate policy;
  let start = clock () in
  let give_up () =
    match policy.run_deadline with Some d -> clock () -. start > d | None -> false
  in
  let tagged = Array.mapi (fun i x -> (i, x)) xs in
  Pool.run ?pool ~domains
    (fun (i, x) ->
      let item = match id with Some g -> g x | None -> i in
      run_task ~clock ~sleep ~give_up policy ~item (fun () -> f x))
    tagged

let failures results =
  Array.to_list results
  |> List.filter_map (function Error (f : failure) -> Some f | Ok _ -> None)
