(* Figure 6: time of the next contact with any other device, for six
   representative participants (two each from Hong-Kong, Reality-Mining
   and Infocom05). The paper plots the staircase (departure, next
   arrival); here we print its summary shape: the fraction of time spent
   in contact, the distribution of waits, and the longest disconnection —
   the facts §5.2 reads off the plot (long disconnections in Hong-Kong
   and Reality-Mining, near-continuous contact in Infocom05 outside
   nights). *)

let name = "fig6"
let description = "Next-contact profile of six representative participants"

let wait_stats trace node =
  let steps = Omn_temporal.Trace_stats.next_contact_steps trace node in
  let span = Omn_temporal.Trace.span trace in
  let t_end = Omn_temporal.Trace.t_end trace in
  (* A node never seen again waits until the end of the window. *)
  let steps = List.map (fun (t, a) -> (t, Float.min a t_end)) steps in
  (* Integrate the wait (arrival - departure) over departure time. *)
  let rec go acc_contact longest = function
    | (t0, a0) :: (((t1, _) :: _) as rest) ->
      let wait = a0 -. t0 in
      let seg = t1 -. t0 in
      if wait <= 0. then go (acc_contact +. seg) longest rest
      else go acc_contact (Float.max longest wait) rest
    | [ (t0, a0) ] ->
      let wait = a0 -. t0 in
      if wait <= 0. then (acc_contact +. (t_end -. t0), longest)
      else (acc_contact, Float.max longest wait)
    | [] -> (acc_contact, longest)
  in
  let in_contact, longest_wait = go 0. 0. steps in
  (in_contact /. span, longest_wait, List.length steps)

let pick_nodes (info : Omn_mobility.Presets.info) =
  (* Two active internal nodes: the best- and median-connected by degree. *)
  let degrees =
    List.init info.internal_nodes (fun u -> (Omn_temporal.Trace.degree info.trace u, u))
    |> List.sort compare |> List.rev
  in
  match degrees with
  | (_, top) :: rest ->
    let median = List.nth degrees (List.length degrees / 2) in
    [ top; (if snd median = top then (match rest with (_, u) :: _ -> u | [] -> top) else snd median) ]
  | [] -> []

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Figure 6 — %s@.@." description;
  let datasets =
    [
      ("Hong-Kong", Data.hong_kong ~quick);
      ("Reality-Mining", Data.reality_mining ~quick);
      ("Infocom05", Data.infocom05 ~quick);
    ]
  in
  let rows =
    List.concat_map
      (fun (label, (info : Omn_mobility.Presets.info)) ->
        List.map
          (fun node ->
            let frac, longest, periods = wait_stats info.trace node in
            [
              label;
              Printf.sprintf "n%d" node;
              Printf.sprintf "%.1f%%" (100. *. frac);
              Omn_stats.Timefmt.axis_seconds longest;
              string_of_int periods;
            ])
          (pick_nodes info))
      datasets
  in
  Exp_common.table fmt
    ~header:[ "dataset"; "node"; "time in contact"; "longest disconnection"; "breakpoints" ]
    ~rows;
  Format.fprintf fmt
    "@.Hong-Kong and Reality-Mining nodes sit through day-scale disconnections while@.\
     Infocom05 participants are in near-continuous reach outside nights (5.2).@."
