(* Figure 1: phase-transition exponent, short-contact case.
   Curves γ ↦ γ ln λ + h(γ) for λ ∈ {0.5, 1.0, 1.5}; each has maximum
   M = ln(1+λ) attained at γ* = λ/(1+λ). *)

open Omn_randnet

let name = "fig1"
let description = "Phase transition exponent, short contacts (gamma ln lambda + h(gamma))"

let lambdas = [ 0.5; 1.0; 1.5 ]

let run ?quick:_ fmt =
  Format.fprintf fmt "@.Figure 1 — %s@.@." description;
  let gammas = Omn_stats.Grid.linear ~lo:0. ~hi:1. ~n:21 in
  let header = "gamma" :: List.map (fun l -> Printf.sprintf "lambda=%.1f" l) lambdas in
  let rows =
    Array.to_list gammas
    |> List.map (fun gamma ->
           Printf.sprintf "%.2f" gamma
           :: List.map
                (fun lambda ->
                  Printf.sprintf "%+.4f" (Theory.exponent Short ~lambda ~gamma))
                lambdas)
  in
  Exp_common.table fmt ~header ~rows;
  Format.fprintf fmt "@.";
  List.iter
    (fun lambda ->
      Format.fprintf fmt "lambda=%.1f: max M = ln(1+lambda) = %.4f at gamma* = %.4f@."
        lambda
        (Theory.exponent_max Short ~lambda)
        (Theory.gamma_star Short ~lambda))
    lambdas
