(** The experiment registry: one entry per table / figure of the paper,
    plus the extensions. [bench/main.exe] iterates it. *)

type experiment = {
  name : string;  (** id used by [--only] (e.g. ["fig9"]) *)
  description : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

val all : experiment list
(** In the paper's order: fig1 fig2 fig3 fig3sim phase table1 fig6 fig7
    fig8 fig9 fig10 fig11 fig12, then the extensions lemma1 renewal
    forwarding ict. *)

val find : string -> experiment option
