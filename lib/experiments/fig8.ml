(* Figure 8: the delivery function of one Hong-Kong source-destination
   pair under hop bounds 1..4 and infinity. The paper's example pair has
   no path at all below 3 hops, gains several optimal paths at 3, and
   nothing improves past 4 — we search the trace for a pair with that
   profile and print its frontiers. *)

open Omn_core

let name = "fig8"
let description = "Delivery function of one pair under increasing hop bounds"

let frontier_snapshots trace ~source ~max_k =
  (* One journey run; snapshot every destination frontier at each round. *)
  let n = Omn_temporal.Trace.n_nodes trace in
  let snaps = Array.make_matrix (max_k + 1) n [||] in
  let on_round (info : Journey.round_info) =
    if info.hop <= max_k then
      Array.iteri (fun dest f -> snaps.(info.hop).(dest) <- Frontier.to_array f) info.frontiers
  in
  let frontiers, rounds = Journey.run ~on_round trace ~source in
  for k = min rounds max_k + 1 to max_k do
    snaps.(k) <- Array.map Frontier.to_array frontiers
  done;
  (snaps, Array.map Frontier.to_array frontiers)

let find_example trace ~internal =
  (* A pair unreachable directly, reachable at 3 hops, with several
     optimal paths at the fixpoint. *)
  let best = ref None in
  (try
     for source = 0 to internal - 1 do
       let snaps, fix = frontier_snapshots trace ~source ~max_k:4 in
       for dest = 0 to internal - 1 do
         if dest <> source then begin
           let at k = snaps.(k).(dest) in
           if
             Array.length (at 1) = 0
             && Array.length (at 3) > Array.length (at 2)
             && Array.length fix.(dest) >= 3
           then begin
             best := Some (source, dest, snaps, fix.(dest));
             raise Exit
           end
         end
       done
     done
   with Exit -> ());
  !best

let pp_frontier fmt t0 descriptors =
  if Array.length descriptors = 0 then Format.fprintf fmt "(no path)"
  else
    Array.iter
      (fun (p : Ld_ea.t) ->
        Format.fprintf fmt "(LD=%s, EA=%s) "
          (Omn_stats.Timefmt.axis_seconds (p.ld -. t0))
          (Omn_stats.Timefmt.axis_seconds (p.ea -. t0)))
      descriptors

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Figure 8 — %s@.@." description;
  let info = Data.hong_kong ~quick in
  match find_example info.trace ~internal:info.internal_nodes with
  | None -> Format.fprintf fmt "no pair with the paper's profile found in this instance@."
  | Some (source, dest, snaps, fix) ->
    let t0 = Omn_temporal.Trace.t_start info.trace in
    Format.fprintf fmt "pair: n%d -> n%d (times relative to trace start)@.@." source dest;
    for k = 1 to 4 do
      Format.fprintf fmt "  max hops %d:   %a@." k (fun f -> pp_frontier f t0) snaps.(k).(dest)
    done;
    Format.fprintf fmt "  max hops inf: %a@." (fun f -> pp_frontier f t0) fix;
    let fixpoint_equals_4 = fix = snaps.(4).(dest) in
    Format.fprintf fmt
      "@.optimal paths: %d; unreachable with 1 hop; frontier at 4 hops %s the unbounded one@."
      (Array.length fix)
      (if fixpoint_equals_4 then "already equals" else "still differs from")
