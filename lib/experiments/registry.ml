type experiment = {
  name : string;
  description : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

let all =
  [
    { name = Fig1.name; description = Fig1.description; run = Fig1.run };
    { name = Fig2.name; description = Fig2.description; run = Fig2.run };
    { name = Fig3.name; description = Fig3.description; run = Fig3.run };
    { name = Fig3sim.name; description = Fig3sim.description; run = Fig3sim.run };
    { name = Phase_mc.name; description = Phase_mc.description; run = Phase_mc.run };
    { name = Table1.name; description = Table1.description; run = Table1.run };
    { name = Fig6.name; description = Fig6.description; run = Fig6.run };
    { name = Fig7.name; description = Fig7.description; run = Fig7.run };
    { name = Fig8.name; description = Fig8.description; run = Fig8.run };
    { name = Fig9.name; description = Fig9.description; run = Fig9.run };
    { name = Fig10.name; description = Fig10.description; run = Fig10.run };
    { name = Fig11.name; description = Fig11.description; run = Fig11.run };
    { name = Fig12.name; description = Fig12.description; run = Fig12.run };
    { name = Lemma1_exp.name; description = Lemma1_exp.description; run = Lemma1_exp.run };
    { name = Renewal_exp.name; description = Renewal_exp.description; run = Renewal_exp.run };
    {
      name = Forwarding_exp.name;
      description = Forwarding_exp.description;
      run = Forwarding_exp.run;
    };
    { name = Ict_exp.name; description = Ict_exp.description; run = Ict_exp.run };
    { name = Wlan_exp.name; description = Wlan_exp.description; run = Wlan_exp.run };
    { name = Daytime_exp.name; description = Daytime_exp.description; run = Daytime_exp.run };
    { name = Epsilon_exp.name; description = Epsilon_exp.description; run = Epsilon_exp.run };
    {
      name = Transitivity_exp.name;
      description = Transitivity_exp.description;
      run = Transitivity_exp.run;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all
