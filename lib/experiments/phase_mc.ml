(* Phase transition (extension of §3.2, Corollary 1): empirical probability
   that a path exists under the logarithmic delay budget τ ln N, swept
   over τ around the critical value τ* = 1/ln(1+λ). As N grows the curve
   steepens into a step at τ*. *)

open Omn_randnet

let name = "phase"
let description = "Monte-Carlo phase transition around tau* (short contacts, lambda = 0.5)"

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Phase transition — %s@.@." description;
  let lambda = 0.5 in
  let tau_star = Theory.tau_critical Short ~lambda in
  let ns = if quick then [ 50; 100 ] else [ 100; 400; 1600 ] in
  let runs = if quick then 40 else 200 in
  let taus = Array.of_list (List.map (fun f -> f *. tau_star) [ 0.4; 0.6; 0.8; 1.0; 1.2; 1.5; 2.0; 3.0 ]) in
  let rng = Omn_stats.Rng.create 99 in
  let curves =
    List.map
      (fun n ->
        let params = { Discrete.n; lambda } in
        (n, Phase.unconstrained_curve rng params ~case:Theory.Short ~taus ~runs))
      ns
  in
  let header = "tau/tau*" :: List.map (fun n -> Printf.sprintf "N=%d" n) ns in
  let rows =
    Array.to_list (Array.mapi (fun i tau -> (i, tau)) taus)
    |> List.map (fun (i, tau) ->
           Printf.sprintf "%.2f" (tau /. tau_star)
           :: List.map (fun (_, curve) -> Printf.sprintf "%.2f" (snd curve.(i))) curves)
  in
  Exp_common.table fmt ~header ~rows;
  Format.fprintf fmt
    "@.tau* = 1/ln(1+lambda) = %.3f: success probability swings from ~0 to ~1 around@.\
     tau/tau* = 1, and the swing sharpens as N grows (Corollary 1).@."
    tau_star
