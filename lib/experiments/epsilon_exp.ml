(* Sensitivity of the diameter to epsilon (ablation): the paper fixes the
   confidence level at 99%. How much does the headline number depend on
   that choice? *)

let name = "epsilon"
let description = "Diameter vs the (1-eps) confidence level (ablation of the 99% choice)"

let levels = [ 0.10; 0.05; 0.02; 0.01; 0.005 ]

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Epsilon sensitivity — %s@.@." description;
  let datasets =
    [
      ("Infocom05", Data.infocom05 ~quick);
      ("Reality-Mining", Data.reality_mining ~quick);
      ("Hong-Kong", Data.hong_kong ~quick);
    ]
  in
  let rows =
    List.map
      (fun (label, (info : Omn_mobility.Presets.info)) ->
        let curves =
          Data.cached_curves
            (Printf.sprintf "curves12-%s-%b" label quick)
            (fun () -> Exp_common.preset_curves ~max_hops:12 info)
        in
        label
        :: List.map
             (fun epsilon ->
               Format.asprintf "%a" Exp_common.pp_diameter
                 (Omn_core.Diameter.of_curves ~epsilon curves))
             levels)
      datasets
  in
  Exp_common.table fmt
    ~header:("" :: List.map (fun e -> Printf.sprintf "eps=%g" e) levels)
    ~rows;
  Format.fprintf fmt
    "@.The diameter moves by at most a couple of hops over a 20x range of epsilon:@.\
     the 99%% headline is not a knife-edge artefact.@."
