(* Figure 9: CDF of the optimal delay over all (source, destination,
   start time) for Infocom05, Reality-Mining and Hong-Kong, under hop
   bounds 1, 2, 3, ..., and unbounded; plus the 99%-diameter printed
   under each sub-figure as in the paper. *)

let name = "fig9"
let description = "CDF of optimal delay per hop bound; 99% diameters"

let print_dataset fmt ~quick label (info : Omn_mobility.Presets.info) =
  let curves =
    Data.cached_curves
      (Printf.sprintf "curves12-%s-%b" label quick)
      (fun () -> Exp_common.preset_curves ~max_hops:12 info)
  in
  let diameter = Omn_core.Diameter.of_curves curves in
  let hop_bounds = [ 1; 2; 3; 4; 6 ] in
  let header =
    "delay"
    :: (List.map (fun k -> Printf.sprintf "%d hop%s" k (if k > 1 then "s" else "")) hop_bounds
       @ [ "unlimited" ])
  in
  let rows =
    List.map
      (fun (delay_label, delay) ->
        delay_label
        :: (List.map
              (fun k ->
                Printf.sprintf "%.3f"
                  (Exp_common.success_at curves (Exp_common.hop_row curves k) delay))
              hop_bounds
           @ [ Printf.sprintf "%.3f" (Exp_common.success_at curves curves.flood_success delay) ]
           ))
      Exp_common.named_delays
  in
  Format.fprintf fmt "@.(%s)  99%%-diameter = %a@.@." label Exp_common.pp_diameter diameter;
  Exp_common.table fmt ~header ~rows

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Figure 9 — %s@." description;
  print_dataset fmt ~quick "Infocom05" (Data.infocom05 ~quick);
  print_dataset fmt ~quick "Reality-Mining" (Data.reality_mining ~quick);
  print_dataset fmt ~quick "Hong-Kong" (Data.hong_kong ~quick);
  Format.fprintf fmt
    "@.Paper: diameters 5 / 4 / 6; 4-6 hops sit within 1%% of unlimited flooding at@.\
     every timescale, and Infocom05 is by far the best connected at small delays.@."
