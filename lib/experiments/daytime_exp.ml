(* Day-time-only analysis (§5.3.1's aside): restricting message-creation
   times to working hours raises the effective contact rate, and the
   paper reports that the multi-hop improvement at small timescales grows
   with it. We compare all-hours vs day-hours creation windows on
   Infocom05. *)

let name = "daytime"
let description = "Day-time-only creation times: small-timescale multi-hop gain rises (5.3)"

let day_windows info =
  let t0 = Omn_temporal.Trace.t_start (info : Omn_mobility.Presets.info).trace in
  let t1 = Omn_temporal.Trace.t_end info.trace in
  let day = 86400. in
  let n_days = int_of_float (Float.ceil ((t1 -. t0) /. day)) in
  List.init n_days (fun d ->
      let base = t0 +. (float_of_int d *. day) in
      (Float.max t0 (base +. (9. *. 3600.)), Float.min t1 (base +. (18. *. 3600.))))
  |> List.filter (fun (a, b) -> a < b)

let gain curves delay =
  let flood = Exp_common.success_at curves (curves : Omn_core.Delay_cdf.curves).flood_success delay in
  let direct = Exp_common.success_at curves (Exp_common.hop_row curves 1) delay in
  if direct <= 0. then nan else flood /. direct

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Day-time creation — %s@.@." description;
  let info = Data.infocom05 ~quick in
  let endpoints = List.init info.internal_nodes (fun i -> i) in
  let all_hours = Exp_common.trace_curves ~endpoints info.trace in
  let day_only =
    Omn_core.Delay_cdf.compute ~max_hops:10 ~sources:endpoints ~dests:endpoints
      ~grid:Exp_common.delay_grid ~windows:(day_windows info) info.trace
  in
  let rows =
    List.filter_map
      (fun (label, delay) ->
        if delay > 6. *. 3600. then None
        else
          Some
            [
              label;
              Printf.sprintf "%.3f" (Exp_common.success_at all_hours all_hours.flood_success delay);
              Printf.sprintf "%.2fx" (gain all_hours delay);
              Printf.sprintf "%.3f" (Exp_common.success_at day_only day_only.flood_success delay);
              Printf.sprintf "%.2fx" (gain day_only delay);
            ])
      Exp_common.named_delays
  in
  Exp_common.table fmt
    ~header:
      [ "delay"; "flood (all hours)"; "gain vs 1 hop"; "flood (9h-18h)"; "gain vs 1 hop" ]
    ~rows;
  Format.fprintf fmt
    "@.Day-time messages see higher success at every small timescale, and the@.\
     relaying gain over direct contact there confirms the correlation between@.\
     high contact rate and small-timescale multi-hop improvement (5.3.1).@."
