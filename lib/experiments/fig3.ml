(* Figure 3: normalised hop count k / ln N of the delay-optimal path as a
   function of the contact rate λ, short and long contact cases. Both
   tend to 1 as λ → 0; the long case has a singularity at λ = 1 and
   decays like 1/ln λ past it. *)

open Omn_randnet

let name = "fig3"
let description = "Hop count of the delay-optimal path vs contact rate (k / ln N)"

let lambda_grid = Omn_stats.Grid.logarithmic ~lo:0.05 ~hi:20. ~n:25

let run ?quick:_ fmt =
  Format.fprintf fmt "@.Figure 3 — %s@.@." description;
  let rows =
    Array.to_list lambda_grid
    |> List.map (fun lambda ->
           let short = Theory.hop_coefficient Short ~lambda in
           let long = Theory.hop_coefficient Long ~lambda in
           [
             Printf.sprintf "%.3f" lambda;
             Printf.sprintf "%.4f" short;
             (if long = infinity then "inf" else Printf.sprintf "%.4f" long);
           ])
  in
  Exp_common.table fmt ~header:[ "lambda"; "short"; "long" ] ~rows;
  Format.fprintf fmt
    "@.Both cases converge to 1 as lambda -> 0 (hop count ~ ln N in sparse networks);@.\
     the long case is singular at lambda = 1 and follows 1/ln(lambda) beyond it.@."
