(* Figure 12: the 99%-diameter as a function of the delay budget, for
   Infocom06 day 2 and its >10 min / >30 min duration-filtered variants.
   Expected shape: with the full (high-rate) trace the diameter decreases
   with delay; with only long contacts it increases, with a possible bump
   in an intermediate regime (connected but short of shortcuts). *)

let name = "fig12"
let description = "Diameter as a function of delay (Infocom06 day 2, duration cuts)"

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Figure 12 — %s@.@." description;
  let variants =
    (* threshold -1 keeps every contact: the unfiltered day. *)
    [
      ("Infocom06", snd (Fig11.curves_for ~quick (-1.)));
      (">10 min", snd (Fig11.curves_for ~quick 600.));
      (">30 min", snd (Fig11.curves_for ~quick 1800.));
    ]
  in
  let per_delay =
    List.map (fun (label, curves) -> (label, Omn_core.Diameter.vs_delay curves)) variants
  in
  let delays = List.filter (fun (_, d) -> d <= 2. *. 86400.) Exp_common.named_delays in
  let header = "delay" :: List.map fst per_delay in
  let rows =
    List.map
      (fun (delay_label, delay) ->
        delay_label
        :: List.map
             (fun (_, vs) ->
               (* nearest grid point at or below the landmark *)
               let best = ref None in
               Array.iter (fun (d, k) -> if d <= delay then best := Some k) vs;
               match !best with
               | Some (Some k) -> string_of_int k
               | Some None -> ">12"
               | None -> "-")
             per_delay)
      delays
  in
  Exp_common.table fmt ~header ~rows;
  Format.fprintf fmt
    "@.Paper: diameter decreases with delay on the full trace (high contact rate),@.\
     increases with delay when only long contacts remain.@."
