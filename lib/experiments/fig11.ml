(* Figure 11: duration-threshold removal (§6.2). Contacts shorter than
   {2, 10, 30} minutes are removed from Infocom06 day 2. Expected shape:
   long contacts preserve more small-delay paths than random removal of a
   comparable volume, but the diameter increases — short contacts are
   what keeps it small. *)

let name = "fig11"
let description = "Effect of removing short contacts (Infocom06 day 2)"

let thresholds = [ ("2 min", 120.); ("10 min", 600.); ("30 min", 1800.) ]

let cache : (string, float * Omn_core.Delay_cdf.curves) Hashtbl.t = Hashtbl.create 8

let curves_for ~quick threshold =
  let key = Printf.sprintf "%g-%b" threshold quick in
  match Hashtbl.find_opt cache key with
  | Some result -> result
  | None ->
    let info = Data.infocom06_day2 ~quick in
    let endpoints = List.init info.internal_nodes (fun i -> i) in
    let filtered = Omn_temporal.Transform.keep_longer_than threshold info.trace in
    let removed =
      1.
      -. float_of_int (Omn_temporal.Trace.n_contacts filtered)
         /. float_of_int (max 1 (Omn_temporal.Trace.n_contacts info.trace))
    in
    let result = (removed, Exp_common.trace_curves ~max_hops:12 ~endpoints filtered) in
    Hashtbl.add cache key result;
    result

let print_case fmt label removed (curves : Omn_core.Delay_cdf.curves) =
  let hop_bounds = [ 1; 2; 3; 5; 7 ] in
  let header =
    "delay" :: (List.map (fun k -> Printf.sprintf "%d hops" k) hop_bounds @ [ "unlimited" ])
  in
  let delays = List.filter (fun (_, d) -> d <= 86400.) Exp_common.named_delays in
  let rows =
    List.map
      (fun (delay_label, delay) ->
        delay_label
        :: (List.map
              (fun k ->
                Printf.sprintf "%.4f"
                  (Exp_common.success_at curves (Exp_common.hop_row curves k) delay))
              hop_bounds
           @ [ Printf.sprintf "%.4f" (Exp_common.success_at curves curves.flood_success delay) ]
           ))
      delays
  in
  Format.fprintf fmt "@.(contacts > %s: %.0f%% removed)  99%%-diameter = %a@.@." label
    (100. *. removed) Exp_common.pp_diameter
    (Omn_core.Diameter.of_curves curves);
  Exp_common.table fmt ~header ~rows

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Figure 11 — %s@." description;
  List.iter
    (fun (label, threshold) ->
      let removed, curves = curves_for ~quick threshold in
      print_case fmt label removed curves)
    thresholds;
  Format.fprintf fmt
    "@.Paper: keeping only long contacts preserves more small-delay paths than random@.\
     removal of comparable volume, but the diameter rises (7 hops at the 10 min cut) —@.\
     short contacts keep the diameter small.@."
