(* Campus WLAN (extension): §5.1 notes the same observations were made
   "on other publicly available data sets, including traces from campus
   WLAN in Dartmouth and UCSD" — association-based contacts rather than
   Bluetooth sightings. We generate such a trace (contact = same access
   point) and measure its diameter. *)

let name = "wlan"
let description = "Campus-WLAN association trace: same small diameter (5.1 aside)"

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Campus WLAN — %s@.@." description;
  let info = Omn_mobility.Presets.wlan_campus ~weeks:(if quick then 1 else 2) () in
  Format.fprintf fmt "%a@.@." Omn_temporal.Trace.pp_summary info.trace;
  let endpoints = List.init info.internal_nodes (fun i -> i) in
  let result =
    Omn_core.Diameter.measure ~max_hops:12 ~sources:endpoints ~dests:endpoints info.trace
  in
  let curves = result.curves in
  let rows =
    List.filter_map
      (fun (label, delay) ->
        if delay > 3. *. 86400. then None
        else
          Some
            [
              label;
              Printf.sprintf "%.3f"
                (Exp_common.success_at curves (Exp_common.hop_row curves 1) delay);
              Printf.sprintf "%.3f"
                (Exp_common.success_at curves (Exp_common.hop_row curves 3) delay);
              Printf.sprintf "%.3f" (Exp_common.success_at curves curves.flood_success delay);
            ])
      Exp_common.named_delays
  in
  Exp_common.table fmt ~header:[ "delay"; "1 hop"; "3 hops"; "unlimited" ] ~rows;
  Format.fprintf fmt "@.99%%-diameter = %a (paper: 4-6 across all its data sets)@."
    Exp_common.pp_diameter result.diameter
