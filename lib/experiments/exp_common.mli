(** Shared plumbing for the paper-reproduction experiments.

    Every experiment module exposes [name], [description] and
    [run ?quick fmt]; [quick] shrinks workloads for smoke tests. The
    registry at {!Registry.all} is what [bench/main.exe] iterates. *)

val named_delays : (string * float) list
(** The paper's landmark delays (2 min ... 1 week). *)

val delay_grid : float array

val preset_curves :
  ?max_hops:int -> Omn_mobility.Presets.info -> Omn_core.Delay_cdf.curves
(** Curves over the preset's internal devices (sources and
    destinations). *)

val trace_curves :
  ?max_hops:int ->
  ?endpoints:Omn_temporal.Node.t list ->
  Omn_temporal.Trace.t ->
  Omn_core.Delay_cdf.curves

val success_at : Omn_core.Delay_cdf.curves -> float array -> float -> float
(** [success_at curves row delay]: row value at the grid point closest
    below-or-equal to [delay]. *)

val pp_percent : Format.formatter -> float -> unit
(** ["12.3%"]. *)

val pp_diameter : Format.formatter -> int option -> unit
(** ["5"] or [">K"]. *)

val hop_row : Omn_core.Delay_cdf.curves -> int -> float array
(** Success curve for hop bound [k] (1-based); raises if out of range. *)

val table :
  Format.formatter ->
  header:string list ->
  rows:string list list ->
  unit
(** Aligned plain-text table. *)
