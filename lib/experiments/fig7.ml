(* Figure 7: CCDF of contact duration for the four data sets, plus the
   two headline facts the paper extracts: the single-slot bulk (>= 75 %
   of Infocom06 contacts last one 120 s scan) and the >= 1 h tail
   (~0.4 %). *)

let name = "fig7"
let description = "Distribution (CCDF) of contact durations"

let grid =
  [|
    60.; 120.; 300.; 600.; 1200.; 1800.; 3600.; 2. *. 3600.; 3. *. 3600.; 6. *. 3600.;
    12. *. 3600.;
  |]

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Figure 7 — %s@.@." description;
  let infos = Data.all ~quick in
  let ccdfs =
    List.map
      (fun (label, (info : Omn_mobility.Presets.info)) ->
        (label, Omn_temporal.Trace_stats.duration_ccdf info.trace grid))
      infos
  in
  let header = "duration" :: List.map fst ccdfs in
  let rows =
    Array.to_list (Array.mapi (fun i d -> (i, d)) grid)
    |> List.map (fun (i, d) ->
           Omn_stats.Timefmt.axis_seconds d
           :: List.map (fun (_, ccdf) -> Printf.sprintf "%.2e" ccdf.(i)) ccdfs)
  in
  Exp_common.table fmt ~header ~rows;
  let infocom06 = Data.infocom06 ~quick in
  Format.fprintf fmt
    "@.Infocom06: %.1f%% of contacts last a single 120 s slot; %.2f%% exceed one hour@.\
     (paper: >75%% and ~0.4%%).@."
    (100. *. Omn_temporal.Trace_stats.fraction_duration_leq infocom06.trace 120.)
    (100. *. (1. -. Omn_temporal.Trace_stats.fraction_duration_leq infocom06.trace 3600.))
