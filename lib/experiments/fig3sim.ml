(* Figure 3 (simulation check, extension): Monte-Carlo hop counts of
   delay-optimal paths on simulated random temporal networks, against the
   closed-form coefficient. Finite-size effects are visible (theory is a
   large-N leading order), but the shape — flat near 1 for sparse rates,
   short/long agreement away from λ=1, decay past it for long contacts —
   must match. *)

open Omn_randnet

let name = "fig3sim"
let description = "Monte-Carlo check of Fig. 3 on simulated random temporal networks"

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Figure 3 (simulation) — %s@.@." description;
  let n = if quick then 100 else 400 in
  let runs = if quick then 10 else 40 in
  let lambdas = [ 0.2; 0.5; 1.0; 2.0; 4.0 ] in
  let log_n = log (float_of_int n) in
  let rng = Omn_stats.Rng.create 2024 in
  let mean samples =
    if samples = [] then nan
    else
      List.fold_left (fun acc (_, h) -> acc +. float_of_int h) 0. samples
      /. float_of_int (List.length samples)
  in
  let rows =
    List.concat_map
      (fun lambda ->
        let params = { Discrete.n; lambda } in
        let t_max = 40 + int_of_float (10. *. log_n /. Float.max 0.1 (log (1. +. lambda))) in
        List.map
          (fun (case, label) ->
            let samples = Discrete.delay_hops_sample rng params ~case ~runs ~t_max in
            let measured = mean samples /. log_n in
            let predicted = Theory.hop_coefficient case ~lambda in
            [
              Printf.sprintf "%.1f" lambda;
              label;
              Printf.sprintf "%.3f" measured;
              (if predicted = infinity then "inf" else Printf.sprintf "%.3f" predicted);
              string_of_int (List.length samples);
            ])
          [ (Theory.Short, "short"); (Theory.Long, "long") ])
      lambdas
  in
  Exp_common.table fmt
    ~header:[ "lambda"; "case"; "measured k/lnN"; "theory k/lnN"; "runs" ]
    ~rows
