(* Figure 2: phase-transition exponent, long-contact case.
   γ ↦ γ ln λ + g(γ); for λ < 1 the maximum is −ln(1−λ) at λ/(1−λ), for
   λ >= 1 the curve is increasing and unbounded. *)

open Omn_randnet

let name = "fig2"
let description = "Phase transition exponent, long contacts (gamma ln lambda + g(gamma))"

let lambdas = [ 0.5; 1.0; 1.5 ]

let run ?quick:_ fmt =
  Format.fprintf fmt "@.Figure 2 — %s@.@." description;
  let gammas = Omn_stats.Grid.linear ~lo:0. ~hi:1.5 ~n:16 in
  let header = "gamma" :: List.map (fun l -> Printf.sprintf "lambda=%.1f" l) lambdas in
  let rows =
    Array.to_list gammas
    |> List.map (fun gamma ->
           Printf.sprintf "%.2f" gamma
           :: List.map
                (fun lambda ->
                  Printf.sprintf "%+.4f" (Theory.exponent Long ~lambda ~gamma))
                lambdas)
  in
  Exp_common.table fmt ~header ~rows;
  Format.fprintf fmt "@.";
  List.iter
    (fun lambda ->
      if lambda < 1. then
        Format.fprintf fmt
          "lambda=%.1f: max M = -ln(1-lambda) = %.4f at gamma* = %.4f@." lambda
          (Theory.exponent_max Long ~lambda)
          (Theory.gamma_star Long ~lambda)
      else
        Format.fprintf fmt "lambda=%.1f: unbounded (network almost-simultaneously connected)@."
          lambda)
    lambdas
