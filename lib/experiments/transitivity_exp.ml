(* Ablation: why the mobility substrate needs co-location structure.

   Real contacts are transitive — while A-B and B-C are in range, A-C
   usually is too — so the instantaneous contact graph is a union of
   near-cliques and instant multi-hop paths are short. Independent
   pairwise point processes (module Gen) destroy that closure: at any
   instant their contact graph is an Erdos-Renyi sprinkle whose sparse
   giant component has long paths, which inflates the measured diameter.
   This experiment quantifies the effect by measuring the same conference
   population both ways at a comparable contact rate. *)

let name = "transitivity"
let description = "Ablation: venue co-location vs independent pairwise contacts"

let independent_conference ~quick ~seed ~n ~days =
  let day = 86400. in
  let rng = Omn_stats.Rng.create seed in
  let spec =
    {
      Omn_mobility.Gen.name = "independent-pairs-conference";
      community = Omn_mobility.Community.uniform ~n ~rate:(66. /. day);
      modulation = Omn_mobility.Diurnal.conference_sessions ();
      duration = Omn_mobility.Duration.conference;
      t_start = 0.;
      t_end = days *. day;
    }
  in
  let ground = Omn_mobility.Gen.generate rng spec in
  ignore quick;
  Omn_mobility.Scanner.detect rng Omn_mobility.Scanner.default ground

let describe fmt label trace =
  let diameter =
    Omn_core.Diameter.measure ~max_hops:14 trace
  in
  let curves = diameter.curves in
  let at row delay = Exp_common.success_at curves row delay in
  Format.fprintf fmt "  %-22s %6d contacts, rate %5.0f/day -> diameter %a@."
    label
    (Omn_temporal.Trace.n_contacts trace)
    (Omn_temporal.Trace.contact_rate trace *. 86400.)
    Exp_common.pp_diameter diameter.diameter;
  Format.fprintf fmt "  %-22s 10-min flood %.3f (5 hops: %.3f); 6-h flood %.3f@." ""
    (at curves.flood_success 600.)
    (at (Exp_common.hop_row curves 5) 600.)
    (at curves.flood_success (6. *. 3600.))

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Transitivity ablation — %s@.@." description;
  let n = 41 in
  let days = if quick then 1. else 3. in
  let venue = Data.infocom05 ~quick in
  let independent = independent_conference ~quick ~seed:7919 ~n ~days in
  describe fmt "venue (co-location)" venue.trace;
  describe fmt "independent pairs" independent;
  Format.fprintf fmt
    "@.Same population and comparable contact volume: destroying co-location@.\
     transitivity inflates the diameter by several hops, because instant@.\
     multi-hop chains through a sparse random graph replace the near-clique@.\
     neighbourhoods of a real room. This is why the presets use the venue@.\
     model (DESIGN.md, 'Co-location structure').@."
