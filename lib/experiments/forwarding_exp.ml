(* Forwarding-protocol evaluation (extension): the conclusion's design
   rule in action. Epidemic flooding with a TTL equal to the measured
   diameter should deliver within a whisker of unlimited flooding while
   bounding the per-message cost; the cheap protocol family shows what
   the delay/cost trade-off space looks like on the same trace. *)

let name = "forwarding"
let description = "Forwarding protocols on Infocom05: TTL = diameter costs <1% delivery"

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Forwarding — %s@.@." description;
  let info = Data.infocom05 ~quick in
  let endpoints = List.init info.internal_nodes (fun i -> i) in
  let result =
    Omn_core.Diameter.measure ~max_hops:12 ~sources:endpoints ~dests:endpoints info.trace
  in
  let diameter = Option.value result.diameter ~default:12 in
  Format.fprintf fmt "measured 99%%-diameter: %d@.@." diameter;
  let rng = Omn_stats.Rng.create 4242 in
  let protocols =
    [
      Omn_forwarding.Protocol.Epidemic { ttl = None };
      Epidemic { ttl = Some diameter };
      Epidemic { ttl = Some (max 1 (diameter / 2)) };
      Spray_and_wait { copies = 8 };
      Two_hop;
      Last_encounter;
      First_contact;
      Direct;
    ]
  in
  let messages = if quick then 60 else 400 in
  let stats =
    Omn_forwarding.Sim.evaluate rng info.trace ~protocols ~messages ~deadline:86400.
  in
  let rows =
    List.map
      (fun (s : Omn_forwarding.Sim.stats) ->
        [
          Omn_forwarding.Protocol.name s.protocol;
          Printf.sprintf "%.1f%%" (100. *. s.delivered_ratio);
          (if Float.is_nan s.mean_delay then "-" else Omn_stats.Timefmt.axis_seconds s.mean_delay);
          Printf.sprintf "%.1f" s.mean_transmissions;
          Printf.sprintf "%.1f" s.mean_nodes_reached;
        ])
      stats
  in
  Exp_common.table fmt
    ~header:[ "protocol"; "delivered (1 day)"; "mean delay"; "tx/msg"; "nodes touched" ]
    ~rows;
  Format.fprintf fmt
    "@.Epidemic with TTL = diameter matches unlimited flooding (delivery and delay)@.\
     while capping path lengths; shrinking the TTL further first costs delay, then@.\
     delivery at tighter deadlines (Fig. 12); limited-copy protocols trade delay@.\
     for an order of magnitude fewer transmissions. Last-encounter greedy routing@.\
     (single copy, purely local information) probes the paper's open problem of@.\
     finding the short paths distributedly.@."
