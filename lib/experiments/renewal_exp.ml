(* Renewal inter-contact laws (extension of §3.4): the paper expects
   general finite-variance renewal processes to change the *delay* of
   optimal paths a lot and their *hop count* little. We compare optimal
   source-destination paths under four inter-contact laws with the same
   mean (same contact rate). *)

open Omn_randnet

let name = "renewal"
let description = "Inter-contact law changes path delay, barely path hop count (3.4)"

let laws =
  [
    ("exponential", Renewal.Exponential);
    ("uniform", Renewal.Uniform);
    ("log-normal(1.5)", Renewal.Log_normal 1.5);
    ("pareto(1.5)", Renewal.Pareto 1.5);
  ]

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Renewal — %s@.@." description;
  let n = if quick then 25 else 60 in
  let runs = if quick then 10 else 40 in
  let lambda = 0.5 (* contacts per node per unit time *) in
  let horizon = 30. *. log (float_of_int n) /. lambda in
  let rng = Omn_stats.Rng.create 31337 in
  let rows =
    List.map
      (fun (label, law) ->
        let stats =
          Renewal.optimal_path_stats rng { n; lambda; horizon; law } ~runs
        in
        [
          label;
          Printf.sprintf "%.1f" stats.delay_mean;
          Printf.sprintf "%.1f" stats.delay_p90;
          Printf.sprintf "%.2f" stats.hops_mean;
          Printf.sprintf "%d/%d" stats.runs_delivered stats.runs_total;
        ])
      laws
  in
  Exp_common.table fmt
    ~header:[ "inter-contact law"; "mean delay"; "p90 delay"; "mean hops"; "delivered" ]
    ~rows;
  Format.fprintf fmt
    "@.Same contact rate everywhere: the delay statistics move with the gap law@.\
     (bursty heavy-tailed gaps shorten typical delays but widen their spread),@.\
     while the hop count of the delay-optimal path stays within a fraction of a@.\
     hop — the insensitivity 3.4 conjectures.@."
