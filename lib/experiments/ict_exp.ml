(* Inter-contact times (related-work check): the literature the paper
   builds on ([2], [9]) characterises the distribution of the time
   between two successive contacts of the same pair — power-law-ish at
   short range with an exponential cut-off at day scale. We print the
   CCDF per preset. *)

let name = "ict"
let description = "Inter-contact time CCDF of the four data sets"

let grid =
  [| 600.; 3600.; 3. *. 3600.; 6. *. 3600.; 43200.; 86400.; 2. *. 86400.; 7. *. 86400. |]

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Inter-contact times — %s@.@." description;
  let datasets = Data.all ~quick in
  let columns =
    List.filter_map
      (fun (label, (info : Omn_mobility.Presets.info)) ->
        match Omn_temporal.Trace_stats.inter_contact_times info.trace with
        | None -> None
        | Some dist -> Some (label, dist))
      datasets
  in
  let header = "gap >" :: List.map fst columns in
  let rows =
    Array.to_list grid
    |> List.map (fun g ->
           Omn_stats.Timefmt.axis_seconds g
           :: List.map
                (fun (_, dist) -> Printf.sprintf "%.3f" (Omn_stats.Empirical.ccdf dist g))
                columns)
  in
  Exp_common.table fmt ~header ~rows;
  List.iter
    (fun (label, dist) ->
      Format.fprintf fmt "%s: median gap %s, mean gap %s@." label
        (Omn_stats.Timefmt.axis_seconds (Omn_stats.Empirical.quantile dist 0.5))
        (Omn_stats.Timefmt.axis_seconds (Omn_stats.Empirical.mean_finite dist)))
    columns;
  Format.fprintf fmt
    "@.Conference pairs meet again within hours; campus and city pairs wait days —@.\
     the day-scale inter-contact mass that drives Fig. 9's large-timescale regime.@."
