(* Figure 10: random contact removal (§6.1). Each contact of the second
   day of Infocom06 is dropped independently with probability p ∈
   {0, 0.9, 0.99}; curves are averaged over 5 independent removals as in
   the paper. Expected shape: delays degrade badly at small timescales,
   yet the diameter stays small. *)

let name = "fig10"
let description = "Effect of random contact removal (Infocom06 day 2)"

let removal_curves ~quick ~p ~runs info =
  let (info : Omn_mobility.Presets.info) = info in
  let endpoints = List.init info.internal_nodes (fun i -> i) in
  if p = 0. then [ Exp_common.trace_curves ~max_hops:14 ~endpoints info.trace ]
  else begin
    let rng = Omn_stats.Rng.create (0xF16 + int_of_float (1000. *. p)) in
    List.init runs (fun _ ->
        let stream = Omn_stats.Rng.split rng in
        let thinned = Omn_temporal.Transform.remove_random ~rng:stream ~p info.trace in
        Exp_common.trace_curves ~max_hops:14 ~endpoints thinned)
    |> fun l -> if quick then [ List.hd l ] else l
  end

let avg curves_list extract delay =
  let vals = List.map (fun c -> Exp_common.success_at c (extract c) delay) curves_list in
  List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals)

let avg_diameter curves_list =
  let ds = List.filter_map Omn_core.Diameter.of_curves curves_list in
  if List.length ds <> List.length curves_list then None
  else Some (List.fold_left ( + ) 0 ds / List.length ds)

let print_case fmt label curves_list =
  let hop_bounds = [ 1; 2; 3; 5 ] in
  let header =
    "delay"
    :: (List.map (fun k -> Printf.sprintf "%d hops" k) hop_bounds @ [ "unlimited" ])
  in
  let delays = List.filter (fun (_, d) -> d <= 86400.) Exp_common.named_delays in
  let rows =
    List.map
      (fun (delay_label, delay) ->
        delay_label
        :: (List.map
              (fun k ->
                Printf.sprintf "%.4f" (avg curves_list (fun c -> Exp_common.hop_row c k) delay))
              hop_bounds
           @ [
               Printf.sprintf "%.4f"
                 (avg curves_list (fun (c : Omn_core.Delay_cdf.curves) -> c.flood_success) delay);
             ]))
      delays
  in
  Format.fprintf fmt "@.(%s)  99%%-diameter = %a@.@." label Exp_common.pp_diameter
    (avg_diameter curves_list);
  Exp_common.table fmt ~header ~rows

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Figure 10 — %s@." description;
  let info = Data.infocom06_day2 ~quick in
  let runs = if quick then 1 else 5 in
  print_case fmt "original" (removal_curves ~quick ~p:0. ~runs info);
  print_case fmt "10% of contacts remaining"
    (removal_curves ~quick ~p:0.9 ~runs info);
  print_case fmt "1% of contacts remaining"
    (removal_curves ~quick ~p:0.99 ~runs info);
  Format.fprintf fmt
    "@.Paper: success within 10 min collapses (35%% -> 0.2%%) and within 6 h drops@.\
     (90%% -> 5%%) at 99%% removal, while the diameter stays small; in our synthetic@.\
     trace the heaviest degradation also hits small timescales, with an@.\
     intermediate-removal bump in the diameter (the connected-but-no-shortcuts@.\
     regime the paper describes under Fig. 12).@."
