let named_delays = Omn_stats.Grid.delay_named
let delay_grid = Omn_stats.Grid.delay_default

let trace_curves ?(max_hops = 10) ?endpoints trace =
  let endpoints =
    Option.value endpoints
      ~default:(List.init (Omn_temporal.Trace.n_nodes trace) (fun i -> i))
  in
  Omn_core.Delay_cdf.compute ~max_hops ~sources:endpoints ~dests:endpoints ~grid:delay_grid
    trace

let preset_curves ?max_hops (info : Omn_mobility.Presets.info) =
  let endpoints = List.init info.internal_nodes (fun i -> i) in
  trace_curves ?max_hops ~endpoints info.trace

let success_at (curves : Omn_core.Delay_cdf.curves) row delay =
  let idx = ref 0 in
  Array.iteri (fun i d -> if d <= delay then idx := i) curves.grid;
  row.(!idx)

let pp_percent fmt v = Format.fprintf fmt "%.1f%%" (100. *. v)

let pp_diameter fmt = function
  | Some d -> Format.pp_print_int fmt d
  | None -> Format.pp_print_string fmt ">K"

let hop_row (curves : Omn_core.Delay_cdf.curves) k =
  if k < 1 || k > Array.length curves.hop_success then invalid_arg "Exp_common.hop_row";
  curves.hop_success.(k - 1)

let table fmt ~header ~rows =
  let all = header :: rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make n_cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = String.make (widths.(i) - String.length cell) ' ' in
        if i = 0 then Format.fprintf fmt "%s%s" cell pad
        else Format.fprintf fmt "  %s%s" pad cell)
      row;
    Format.fprintf fmt "@."
  in
  print_row header;
  let rule = List.init n_cols (fun i -> String.make widths.(i) '-') in
  print_row rule;
  List.iter print_row rows
