(* Memoised dataset instances shared by the experiments, so one bench run
   generates each preset once. [quick] variants are shorter (smoke tests). *)

module Presets = Omn_mobility.Presets

let memo f =
  let full = lazy (f ~quick:false) in
  let small = lazy (f ~quick:true) in
  fun ~quick -> Lazy.force (if quick then small else full)

let infocom05 =
  memo (fun ~quick -> Presets.infocom05 ~days:(if quick then 1. else 3.) ())

let infocom06 =
  memo (fun ~quick -> Presets.infocom06 ~days:(if quick then 1.5 else 4.) ())

let hong_kong = memo (fun ~quick -> Presets.hong_kong ~days:(if quick then 2. else 5.) ())
let reality_mining = memo (fun ~quick -> Presets.reality_mining ~weeks:(if quick then 2 else 8) ())

let all ~quick =
  [
    ("Infocom05", infocom05 ~quick);
    ("Infocom06", infocom06 ~quick);
    ("Hong-Kong", hong_kong ~quick);
    ("Reality-Mining", reality_mining ~quick);
  ]

(* The trace §6 mutates: second day of Infocom06. *)
let infocom06_day2 ~quick =
  let info = infocom06 ~quick in
  let day = 86400. in
  let window =
    if quick then Omn_temporal.Transform.time_window ~t_start:0. ~t_end:day info.trace
    else Omn_temporal.Transform.time_window ~t_start:day ~t_end:(2. *. day) info.trace
  in
  { info with trace = window }

(* Memoised curves for the §6 experiments that share them. *)
let curves_cache : (string, Omn_core.Delay_cdf.curves) Hashtbl.t = Hashtbl.create 8

let cached_curves key compute =
  match Hashtbl.find_opt curves_cache key with
  | Some curves -> curves
  | None ->
    let curves = compute () in
    Hashtbl.add curves_cache key curves;
    curves
