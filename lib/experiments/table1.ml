(* Table 1: characteristics of the four data sets. Our traces are
   synthetic stand-ins calibrated to the published values (see DESIGN.md);
   this experiment regenerates the table from the traces themselves. *)

let name = "table1"
let description = "Characteristics of the four experimental data sets"

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Table 1 — %s@.@." description;
  let infos = Data.all ~quick in
  let stat f = List.map (fun (_, info) -> f info) infos in
  let rows =
    [
      "Duration (days)"
      :: stat (fun (i : Omn_mobility.Presets.info) ->
             Printf.sprintf "%.1f" (Omn_temporal.Trace.span i.trace /. 86400.));
      "Granularity (seconds)"
      :: stat (fun i -> Printf.sprintf "%.0f" i.granularity);
      "Experimental devices" :: stat (fun i -> string_of_int i.internal_nodes);
      "External devices"
      :: stat (fun i ->
             let ext = Omn_temporal.Trace.n_nodes i.trace - i.internal_nodes in
             if ext = 0 then "-" else string_of_int ext);
      "Contacts" :: stat (fun i -> string_of_int (Omn_temporal.Trace.n_contacts i.trace));
      "Contact rate (/node/day)"
      :: stat (fun i ->
             Printf.sprintf "%.1f" (Omn_temporal.Trace.contact_rate i.trace *. 86400.));
      "Median contact duration"
      :: stat (fun i ->
             let s = Omn_temporal.Trace_stats.summary i.trace in
             Omn_stats.Timefmt.axis_seconds s.median_duration);
    ]
  in
  Exp_common.table fmt ~header:("" :: List.map fst infos) ~rows
