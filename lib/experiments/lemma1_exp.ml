(* Lemma 1 (extension): exact expected path counts under logarithmic
   budgets. For fixed (τ, γ) the Lemma predicts
   E[Π_N] = Θ(N^(-1 + τ (γ ln λ + h γ))); we measure mean counts over
   sampled networks for growing N and fit the log-log slope. *)

open Omn_randnet

let name = "lemma1"
let description = "Expected constrained-path count: measured growth vs Lemma 1 exponent"

let fit_slope points =
  (* least squares on (ln N, ln count); points with count 0 are skipped *)
  let points = List.filter (fun (_, c) -> c > 0.) points in
  let n = float_of_int (List.length points) in
  if n < 2. then nan
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. log x) 0. points in
    let sy = List.fold_left (fun a (_, y) -> a +. log y) 0. points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (log x *. log x)) 0. points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (log x *. log y)) 0. points in
    ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))
  end

let run ?(quick = false) fmt =
  Format.fprintf fmt "@.Lemma 1 — %s@.@." description;
  let lambda = 0.5 in
  let gamma = Theory.gamma_star Short ~lambda in
  let tau_star = Theory.tau_critical Short ~lambda in
  let ns = if quick then [ 50; 100; 200 ] else [ 50; 100; 200; 400; 800 ] in
  let runs = if quick then 20 else 60 in
  let rng = Omn_stats.Rng.create 55 in
  let regimes = [ ("supercritical", 1.6 *. tau_star); ("subcritical", 0.7 *. tau_star) ] in
  List.iter
    (fun (label, tau) ->
      let counts =
        List.map
          (fun n ->
            let mean =
              Path_count.mean_count rng { Discrete.n; lambda } ~case:Theory.Short ~tau ~gamma
                ~runs
            in
            (float_of_int n, mean))
          ns
      in
      let predicted = Path_count.predicted_exponent Short ~lambda ~tau ~gamma in
      let measured = fit_slope counts in
      Format.fprintf fmt "(%s: tau = %.2f tau*)@." label (tau /. tau_star);
      let rows =
        List.map (fun (n, c) -> [ Printf.sprintf "%.0f" n; Printf.sprintf "%.3g" c ]) counts
      in
      Exp_common.table fmt ~header:[ "N"; "mean #paths" ] ~rows;
      Format.fprintf fmt "growth exponent: measured %.2f, Lemma 1 predicts %.2f@.@."
        measured predicted)
    regimes;
  Format.fprintf fmt
    "Counts vanish with N below the transition and blow up polynomially above it,@.\
     with the predicted slope (up to the Theta's log factors).@."
