(** Discrete-time random temporal networks (§3.1.1) and flooding on them.

    One slot = one independent uniform random graph G(n, λ/n). Floods are
    exact simulations of the two §3.1.3 semantics:

    - {e short contacts}: a message crosses at most one edge per slot
      (a node informed during slot [t] forwards from slot [t+1]);
    - {e long contacts}: any number of edges per slot — the whole
      connected component of an informed node learns the message within
      the slot (hop counts via intra-slot BFS).

    Slot edges are sampled in O(#edges) by geometric skipping over the
    [n (n-1) / 2] pair indices, so a flood costs O(slots x λ n). *)

type params = { n : int; lambda : float }
(** [n >= 2] nodes, contact rate [lambda > 0] per node per slot
    (edge probability λ/n, so [lambda < n] is required). *)

val slot_edges : Omn_stats.Rng.t -> params -> (int * int) list
(** One slot's edge set: each pair present independently with
    probability λ/n. *)

val relax_slot : case:Theory.contact_case -> int array -> (int * int) list -> unit
(** One slot of the reachability DP: [reach.(v)] is the minimum hop count
    over paths delivering to [v] within the slots processed so far
    ([max_int] = unreached); [relax_slot] folds one more slot's edge set
    in, with the chosen contact-case semantics. Exposed so tests (and
    custom schedules) can drive the DP with explicit edge sets. *)

type flood = {
  arrival : int array;  (** slot of first arrival; [max_int] = never *)
  hops : int array;
      (** minimum hop count among paths achieving that first arrival;
          [max_int] = never, 0 at the source *)
}

val flood :
  Omn_stats.Rng.t -> params -> source:int -> case:Theory.contact_case -> t_max:int -> flood
(** Flood from [source] starting at slot boundary 0 through slots
    [1 .. t_max]. *)

val min_hops_within :
  Omn_stats.Rng.t ->
  params ->
  source:int ->
  case:Theory.contact_case ->
  deadline:int ->
  int array
(** [min_hops_within ... ~deadline].(v): the fewest hops of any path
    reaching [v] within [deadline] slots ([max_int] = unreachable) —
    what the §3.2 constrained-path probability needs, since the
    delay-optimal path may use more hops than necessary. *)

val delay_hops_sample :
  Omn_stats.Rng.t ->
  params ->
  case:Theory.contact_case ->
  runs:int ->
  t_max:int ->
  (int * int) list
(** [runs] independent experiments; each floods from node 0 and records
    (first-arrival slot, hops at first arrival) for the fixed destination
    node 1, skipping runs where the deadline [t_max] is hit. Feeds the
    Fig. 3 empirical check. *)

val to_trace : Omn_stats.Rng.t -> params -> slots:int -> Omn_temporal.Trace.t
(** Materialise [slots] slots as a contact trace: the slot-[t] edge set
    becomes point contacts at time [t] (simultaneous point contacts chain,
    which is exactly the long-contact semantics). Cross-validates the
    simulator against {!Omn_core.Journey} in the tests. *)
