(** Renewal contact processes — the §3.4 generalisation.

    The paper's analysis assumes Bernoulli/Poisson contacts (light-tailed
    inter-contact times) and notes that measurements only support this at
    day/week timescales; it claims the results extend to renewal
    processes with finite-variance inter-contact laws, expecting a {e
    major impact on the delay} of optimal paths but {e a small one on
    their hop count}. This module provides pairwise renewal contact
    processes with pluggable inter-contact laws so the bench can test
    that conjecture empirically (experiment [renewal]). *)

type law =
  | Exponential  (** the Poisson baseline of §3.1.2 *)
  | Pareto of float
      (** heavy-tailed with exponent alpha > 1 (finite mean; infinite
          variance when alpha <= 2) — the shape measured in [2, 9] *)
  | Log_normal of float  (** sigma of the underlying normal; skewed but light *)
  | Uniform  (** on [0, 2 x mean]: nearly periodic — the bus-like case of [8] *)

val sample_gap : Omn_stats.Rng.t -> law -> mean:float -> float
(** One inter-contact time with the requested mean (> 0). *)

type params = {
  n : int;
  lambda : float;  (** contact rate per node per unit time, as in §3 *)
  horizon : float;
  law : law;
}

val generate : Omn_stats.Rng.t -> params -> Omn_temporal.Trace.t
(** Point-contact trace: each pair meets at the renewal instants of an
    independent process with mean gap [(n-1) / lambda]. The first epoch
    is drawn like every gap, from a uniformly random phase offset —
    adequate for horizon >> mean gap (documented simplification; exact
    stationarity would need the inspection-paradox forward-recurrence
    law per gap distribution). *)

type path_stats = {
  delay_mean : float;
  delay_p90 : float;
  hops_mean : float;
  runs_delivered : int;
  runs_total : int;
}

val optimal_path_stats :
  Omn_stats.Rng.t -> params -> runs:int -> path_stats
(** Over fresh networks: delay and hop count of the delay-optimal path
    from node 0 to node 1 for a message created at [0.1 x horizon]
    (burn-in so heavy-tailed processes are past their initial gap);
    non-deliveries within the horizon are excluded from the means. Hops
    are those of the minimum-hop delay-optimal path, computed with
    {!Omn_baseline.Dijkstra.earliest_arrival_bounded}. *)
