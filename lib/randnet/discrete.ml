module Rng = Omn_stats.Rng

type params = { n : int; lambda : float }

let check params =
  if params.n < 2 then invalid_arg "Discrete: n < 2";
  if params.lambda <= 0. || params.lambda >= float_of_int params.n then
    invalid_arg "Discrete: need 0 < lambda < n"

(* Enumerate Bernoulli successes over the n(n-1)/2 pair indices by
   geometric skipping, decoding (i, j) incrementally: pair index order is
   (0,1) (0,2) ... (0,n-1) (1,2) ... *)
let slot_edges rng params =
  check params;
  let n = params.n in
  let p = params.lambda /. float_of_int n in
  let total = n * (n - 1) / 2 in
  let edges = ref [] in
  let rec advance i j skip =
    if j + skip <= n - 1 then (i, j + skip)
    else advance (i + 1) (i + 2) (skip - (n - 1 - j) - 1)
  in
  let rec go idx i j =
    let gap = Rng.geometric rng p in
    let idx = idx + gap in
    if idx < total then begin
      let i, j = advance i j gap in
      edges := (i, j) :: !edges;
      let idx = idx + 1 in
      if idx < total then
        if j + 1 <= n - 1 then go idx i (j + 1) else go idx (i + 1) (i + 2)
    end
  in
  if total > 0 then go 0 0 1;
  !edges

(* The one DP both queries need: reach.(v) = min hops over paths
   delivering to v within the slots processed so far. Short contacts
   relax each slot's edges once, from the pre-slot state; long contacts
   relax to an intra-slot fixpoint (multi-hop chains within the slot). *)
let relax_slot ~case reach edges =
  match (case : Theory.contact_case) with
  | Theory.Short ->
    let prev = Array.copy reach in
    List.iter
      (fun (u, v) ->
        if prev.(u) <> max_int && prev.(u) + 1 < reach.(v) then reach.(v) <- prev.(u) + 1;
        if prev.(v) <> max_int && prev.(v) + 1 < reach.(u) then reach.(u) <- prev.(v) + 1)
      edges
  | Theory.Long ->
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (u, v) ->
          if reach.(u) <> max_int && reach.(u) + 1 < reach.(v) then begin
            reach.(v) <- reach.(u) + 1;
            changed := true
          end;
          if reach.(v) <> max_int && reach.(v) + 1 < reach.(u) then begin
            reach.(u) <- reach.(v) + 1;
            changed := true
          end)
        edges
    done

type flood = { arrival : int array; hops : int array }

let flood rng params ~source ~case ~t_max =
  check params;
  if source < 0 || source >= params.n then invalid_arg "Discrete.flood: bad source";
  if t_max < 0 then invalid_arg "Discrete.flood: negative t_max";
  let n = params.n in
  let reach = Array.make n max_int in
  reach.(source) <- 0;
  let arrival = Array.make n max_int and hops = Array.make n max_int in
  arrival.(source) <- 0;
  hops.(source) <- 0;
  let informed = ref 1 in
  let t = ref 1 in
  while !t <= t_max && !informed < n do
    relax_slot ~case reach (slot_edges rng params);
    Array.iteri
      (fun v r ->
        if r <> max_int && arrival.(v) = max_int then begin
          (* First arrival: [r] is the fewest hops of any path making this
             deadline, i.e. the hop count of the delay-optimal path. *)
          arrival.(v) <- !t;
          hops.(v) <- r;
          incr informed
        end)
      reach;
    incr t
  done;
  { arrival; hops }

let min_hops_within rng params ~source ~case ~deadline =
  check params;
  if source < 0 || source >= params.n then invalid_arg "Discrete.min_hops_within: bad source";
  if deadline < 0 then invalid_arg "Discrete.min_hops_within: negative deadline";
  let reach = Array.make params.n max_int in
  reach.(source) <- 0;
  for _t = 1 to deadline do
    relax_slot ~case reach (slot_edges rng params)
  done;
  reach

let delay_hops_sample rng params ~case ~runs ~t_max =
  check params;
  let out = ref [] in
  for _ = 1 to runs do
    let stream = Rng.split rng in
    let result = flood stream params ~source:0 ~case ~t_max in
    if result.arrival.(1) <> max_int then out := (result.arrival.(1), result.hops.(1)) :: !out
  done;
  List.rev !out

let to_trace rng params ~slots =
  check params;
  if slots < 0 then invalid_arg "Discrete.to_trace: negative slots";
  let contacts = ref [] in
  for t = 1 to slots do
    let time = float_of_int t in
    List.iter
      (fun (a, b) ->
        contacts := Omn_temporal.Contact.make ~a ~b ~t_beg:time ~t_end:time :: !contacts)
      (slot_edges rng params)
  done;
  Omn_temporal.Trace.create ~name:"discrete-random-temporal" ~n_nodes:params.n ~t_start:0.
    ~t_end:(float_of_int (max 1 slots)) !contacts
