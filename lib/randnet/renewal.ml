module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

type law = Exponential | Pareto of float | Log_normal of float | Uniform

let sample_gap rng law ~mean =
  if mean <= 0. then invalid_arg "Renewal.sample_gap: mean <= 0";
  match law with
  | Exponential -> Rng.exponential rng (1. /. mean)
  | Pareto alpha ->
    if alpha <= 1. then invalid_arg "Renewal: Pareto needs alpha > 1";
    (* mean of Pareto(alpha, x_min) is x_min * alpha / (alpha - 1) *)
    let x_min = mean *. (alpha -. 1.) /. alpha in
    Rng.pareto rng alpha x_min
  | Log_normal sigma ->
    if sigma < 0. then invalid_arg "Renewal: negative sigma";
    (* mean of LogNormal(mu, sigma) is exp (mu + sigma^2 / 2) *)
    let mu = log mean -. (sigma *. sigma /. 2.) in
    Rng.log_normal rng mu sigma
  | Uniform -> Rng.float_range rng 0. (2. *. mean)

type params = { n : int; lambda : float; horizon : float; law : law }

let check p =
  if p.n < 2 then invalid_arg "Renewal: n < 2";
  if p.lambda <= 0. then invalid_arg "Renewal: lambda <= 0";
  if p.horizon <= 0. then invalid_arg "Renewal: horizon <= 0"

let generate rng p =
  check p;
  let mean_gap = float_of_int (p.n - 1) /. p.lambda in
  let contacts = ref [] in
  for a = 0 to p.n - 1 do
    for b = a + 1 to p.n - 1 do
      (* Random phase start, then renewal gaps. *)
      let t = ref (Rng.float rng *. sample_gap rng p.law ~mean:mean_gap) in
      while !t < p.horizon do
        contacts := Contact.make ~a ~b ~t_beg:!t ~t_end:!t :: !contacts;
        t := !t +. sample_gap rng p.law ~mean:mean_gap
      done
    done
  done;
  Trace.create ~name:"renewal-temporal" ~n_nodes:p.n ~t_start:0. ~t_end:p.horizon !contacts

type path_stats = {
  delay_mean : float;
  delay_p90 : float;
  hops_mean : float;
  runs_delivered : int;
  runs_total : int;
}

let optimal_path_stats rng p ~runs =
  check p;
  if runs < 1 then invalid_arg "Renewal.optimal_path_stats: runs < 1";
  let delays = ref [] and hops = ref [] in
  for _ = 1 to runs do
    let stream = Rng.split rng in
    let trace = generate stream p in
    let t0 = 0.1 *. p.horizon in
    let arrival = Omn_baseline.Dijkstra.earliest_arrival trace ~source:0 ~t0 in
    if arrival.(1) < infinity then begin
      delays := (arrival.(1) -. t0) :: !delays;
      (* Minimum hops achieving that arrival: first Bellman-Ford row that
         matches the unbounded optimum. *)
      let max_hops = p.n + 2 in
      let rows = Omn_baseline.Dijkstra.earliest_arrival_bounded trace ~source:0 ~t0 ~max_hops in
      let rec find k = if k > max_hops then max_hops else if rows.(k).(1) <= arrival.(1) then k else find (k + 1) in
      hops := find 1 :: !hops
    end
  done;
  let delivered = List.length !delays in
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (max 1 (List.length l)) in
  let p90 l =
    match List.sort Float.compare l with
    | [] -> nan
    | sorted -> List.nth sorted (min (List.length sorted - 1) (9 * List.length sorted / 10))
  in
  {
    delay_mean = mean !delays;
    delay_p90 = p90 !delays;
    hops_mean = mean (List.map float_of_int !hops);
    runs_delivered = delivered;
    runs_total = runs;
  }
