module Rng = Omn_stats.Rng

let budgets params ~tau ~gamma =
  let log_n = log (float_of_int params.Discrete.n) in
  let deadline = int_of_float (Float.ceil (tau *. log_n)) in
  let hop_budget = max 1 (int_of_float (Float.floor (gamma *. tau *. log_n))) in
  (max 1 deadline, hop_budget)

let success_probability rng params ~case ~tau ~gamma ~runs =
  if runs < 1 then invalid_arg "Phase.success_probability: runs < 1";
  if tau <= 0. || gamma <= 0. then invalid_arg "Phase.success_probability: bad budgets";
  let deadline, hop_budget = budgets params ~tau ~gamma in
  let hits = ref 0 in
  for _ = 1 to runs do
    let stream = Rng.split rng in
    let reach = Discrete.min_hops_within stream params ~source:0 ~case ~deadline in
    if reach.(1) <= hop_budget then incr hits
  done;
  float_of_int !hits /. float_of_int runs

let transition_curve rng params ~case ~gamma ~taus ~runs =
  Array.map (fun tau -> (tau, success_probability rng params ~case ~tau ~gamma ~runs)) taus

let unconstrained_success rng params ~case ~tau ~runs =
  let log_n = log (float_of_int params.Discrete.n) in
  let deadline = max 1 (int_of_float (Float.ceil (tau *. log_n))) in
  let hits = ref 0 in
  for _ = 1 to runs do
    let stream = Rng.split rng in
    let reach = Discrete.min_hops_within stream params ~source:0 ~case ~deadline in
    if reach.(1) <> max_int then incr hits
  done;
  float_of_int !hits /. float_of_int runs

let unconstrained_curve rng params ~case ~taus ~runs =
  Array.map (fun tau -> (tau, unconstrained_success rng params ~case ~tau ~runs)) taus
