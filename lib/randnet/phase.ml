module Rng = Omn_stats.Rng
module Pool = Omn_parallel.Pool

let m_mc_runs = Omn_obs.Metrics.counter "randnet.mc_runs"

(* All estimators below pre-split one RNG stream per run, sequentially,
   then fan the runs out over the pool and reduce the per-run results in
   run order — the estimate is bit-identical for every domain count. *)
let split_streams rng runs =
  let streams = Array.make runs rng in
  for i = 0 to runs - 1 do
    streams.(i) <- Rng.split rng
  done;
  streams

let budgets params ~tau ~gamma =
  let log_n = log (float_of_int params.Discrete.n) in
  let deadline = int_of_float (Float.ceil (tau *. log_n)) in
  let hop_budget = max 1 (int_of_float (Float.floor (gamma *. tau *. log_n))) in
  (max 1 deadline, hop_budget)

let success_probability ?pool ?(domains = 1) rng params ~case ~tau ~gamma ~runs =
  if runs < 1 then invalid_arg "Phase.success_probability: runs < 1";
  if tau <= 0. || gamma <= 0. then invalid_arg "Phase.success_probability: bad budgets";
  let deadline, hop_budget = budgets params ~tau ~gamma in
  let hits =
    Pool.run ?pool ~domains
      (fun stream ->
        Omn_obs.Metrics.incr m_mc_runs;
        let reach = Discrete.min_hops_within stream params ~source:0 ~case ~deadline in
        if reach.(1) <= hop_budget then 1 else 0)
      (split_streams rng runs)
    |> Array.fold_left ( + ) 0
  in
  float_of_int hits /. float_of_int runs

(* Curve drivers share one pool across every tau point instead of
   letting each estimate spin up its own. *)
let with_curve_pool ?pool ?(domains = 1) f =
  match (pool, domains) with
  | Some p, _ -> f (Some p)
  | None, 1 -> f None
  | None, d -> Pool.with_pool ~domains:d (fun p -> f (Some p))

let transition_curve ?pool ?domains rng params ~case ~gamma ~taus ~runs =
  with_curve_pool ?pool ?domains (fun pool ->
      Array.map
        (fun tau -> (tau, success_probability ?pool rng params ~case ~tau ~gamma ~runs))
        taus)

let unconstrained_success ?pool ?(domains = 1) rng params ~case ~tau ~runs =
  let log_n = log (float_of_int params.Discrete.n) in
  let deadline = max 1 (int_of_float (Float.ceil (tau *. log_n))) in
  let hits =
    Pool.run ?pool ~domains
      (fun stream ->
        Omn_obs.Metrics.incr m_mc_runs;
        let reach = Discrete.min_hops_within stream params ~source:0 ~case ~deadline in
        if reach.(1) <> max_int then 1 else 0)
      (split_streams rng runs)
    |> Array.fold_left ( + ) 0
  in
  float_of_int hits /. float_of_int runs

let unconstrained_curve ?pool ?domains rng params ~case ~taus ~runs =
  with_curve_pool ?pool ?domains (fun pool ->
      Array.map
        (fun tau -> (tau, unconstrained_success ?pool rng params ~case ~tau ~runs))
        taus)
