(** Monte-Carlo exhibition of the §3.2 phase transition.

    Corollary 1: with delay budget [τ ln n] and hop budget [γ τ ln n],
    constrained paths almost surely do not exist when
    [1/τ > γ ln λ + F γ] and abound when [1/τ < γ ln λ + F γ]. These
    estimators measure the empirical success probability so the bench can
    show it swinging from ~0 to ~1 around [τ* = tau_critical] as [n]
    grows.

    Every estimator takes [?pool] / [?domains] (default sequential):
    one RNG stream is split off per run up front, runs execute in
    parallel, and per-run results reduce in run order — estimates are
    bit-identical for every domain count, and identical to the
    historical sequential implementation. *)

val success_probability :
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  Omn_stats.Rng.t ->
  Discrete.params ->
  case:Theory.contact_case ->
  tau:float ->
  gamma:float ->
  runs:int ->
  float
(** Fraction of [runs] fresh networks in which a path exists from node 0
    to node 1 with delay at most [ceil (τ ln n)] slots and at most
    [floor (γ τ ln n)] hops (at least 1 hop allowed). *)

val transition_curve :
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  Omn_stats.Rng.t ->
  Discrete.params ->
  case:Theory.contact_case ->
  gamma:float ->
  taus:float array ->
  runs:int ->
  (float * float) array
(** [(τ, success probability)] for each τ. *)

val unconstrained_curve :
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  Omn_stats.Rng.t ->
  Discrete.params ->
  case:Theory.contact_case ->
  taus:float array ->
  runs:int ->
  (float * float) array
(** Same but with no hop budget (γ = ∞): locates the delay-only
    transition at [τ* = tau_critical]. *)
