(** Continuous-time random temporal networks (§3.1.2).

    Each pair of nodes meets at the instants of an independent Poisson
    process; a node's total contact rate is [lambda], so each of its
    [n-1] pair processes has rate [lambda / (n-1)]. Contacts are
    instantaneous (the §3.1.3 "negligible duration" case); simultaneous
    events have probability zero, so the short/long distinction vanishes
    and paths simply use contacts at non-decreasing times. *)

type params = { n : int; lambda : float; horizon : float }
(** [n >= 2] nodes, rate [lambda > 0] per node per unit time, window
    [[0, horizon]]. *)

val generate : Omn_stats.Rng.t -> params -> Omn_temporal.Trace.t
(** Sample a trace of point contacts. The total number of contacts is
    Poisson with mean [lambda * n * horizon / 2]. *)

val flood :
  Omn_stats.Rng.t -> params -> source:Omn_temporal.Node.t -> float array
(** Earliest arrival at every node for a message created at time 0 on
    [source], on a freshly sampled network ([infinity] = not reached
    within the horizon). *)

val mean_delay_estimate :
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  Omn_stats.Rng.t ->
  params ->
  runs:int ->
  float * float
(** Monte-Carlo (mean, std error) of the source→destination optimal
    delay over [runs] fresh networks (failures at the horizon are
    counted as the horizon — report with a horizon comfortably above
    the expected delay). Used to check the [ln n / ln (1+λ)]-type
    growth laws in continuous time. One RNG stream is split off per run
    up front and results reduce in run order, so the estimate is
    bit-identical for every [?pool] / [?domains] setting. *)
