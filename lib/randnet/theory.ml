type contact_case = Short | Long

let xlnx x = if x = 0. then 0. else x *. log x

let h x =
  if not (0. <= x && x <= 1.) then invalid_arg "Theory.h: outside [0,1]";
  -.xlnx x -. xlnx (1. -. x)

let g x =
  if x < 0. then invalid_arg "Theory.g: negative";
  ((1. +. x) *. log (1. +. x)) -. xlnx x

let check_lambda lambda = if lambda <= 0. then invalid_arg "Theory: lambda <= 0"

let exponent case ~lambda ~gamma =
  check_lambda lambda;
  match case with
  | Short -> (gamma *. log lambda) +. h gamma
  | Long -> (gamma *. log lambda) +. g gamma

let expected_paths_exponent case ~lambda ~tau ~gamma =
  if tau <= 0. then invalid_arg "Theory.expected_paths_exponent: tau <= 0";
  -1. +. (tau *. exponent case ~lambda ~gamma)

let exponent_max case ~lambda =
  check_lambda lambda;
  match case with
  | Short -> log (1. +. lambda)
  | Long -> if lambda < 1. then -.log (1. -. lambda) else infinity

let gamma_star case ~lambda =
  check_lambda lambda;
  match case with
  | Short -> lambda /. (1. +. lambda)
  | Long -> if lambda < 1. then lambda /. (1. -. lambda) else infinity

let tau_critical case ~lambda =
  let m = exponent_max case ~lambda in
  if m = infinity then 0. else 1. /. m

let hop_coefficient case ~lambda =
  check_lambda lambda;
  match case with
  | Short -> lambda /. ((1. +. lambda) *. log (1. +. lambda))
  | Long ->
    if lambda < 1. then lambda /. ((1. -. lambda) *. -.log (1. -. lambda))
    else if lambda = 1. then infinity
    else 1. /. log lambda

let delay_coefficient = tau_critical

let expected_delay case ~lambda ~n =
  if n < 2 then invalid_arg "Theory.expected_delay: n < 2";
  tau_critical case ~lambda *. log (float_of_int n)

let expected_hops case ~lambda ~n =
  if n < 2 then invalid_arg "Theory.expected_hops: n < 2";
  hop_coefficient case ~lambda *. log (float_of_int n)

let supercritical_gamma_interval case ~lambda ~tau =
  if tau <= 0. then invalid_arg "Theory.supercritical_gamma_interval: tau <= 0";
  let target = 1. /. tau in
  let f gamma = exponent case ~lambda ~gamma -. target in
  let peak = gamma_star case ~lambda in
  let upper_bound = match case with Short -> 1. | Long -> 1e6 in
  let peak = Float.min peak upper_bound in
  if f peak < 0. then None
  else begin
    (* f is concave in the short case and for λ < 1 in the long case; for
       λ >= 1 (long) it is increasing, handled by the capped bounds. f is
       continuous, negative at the domain edges (or capped), positive at
       the peak: bisect on each side. *)
    let bisect lo hi =
      (* invariant: sign(f lo) <> sign(f hi) or one of them is ~0 *)
      let lo = ref lo and hi = ref hi in
      for _ = 1 to 100 do
        let mid = 0.5 *. (!lo +. !hi) in
        if f mid >= 0. = (f !hi >= 0.) then hi := mid else lo := mid
      done;
      0.5 *. (!lo +. !hi)
    in
    let g1 = if f 0. >= 0. then 0. else bisect 0. peak in
    let g2 =
      if f upper_bound >= 0. then upper_bound
      else bisect upper_bound peak
    in
    Some (Float.min g1 g2, Float.max g1 g2)
  end
