module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

let m_mc_runs = Omn_obs.Metrics.counter "randnet.mc_runs"
let m_contacts = Omn_obs.Metrics.counter "randnet.contacts_generated"

type params = { n : int; lambda : float; horizon : float }

let check params =
  if params.n < 2 then invalid_arg "Continuous: n < 2";
  if params.lambda <= 0. then invalid_arg "Continuous: lambda <= 0";
  if params.horizon <= 0. then invalid_arg "Continuous: horizon <= 0"

let generate rng params =
  check params;
  (* Superposition of all pair processes: a single Poisson process of
     total rate n*lambda/2, each event assigned a uniform random pair. *)
  let total_rate = float_of_int params.n *. params.lambda /. 2. in
  let count = Rng.poisson rng (total_rate *. params.horizon) in
  let contacts = ref [] in
  for _ = 1 to count do
    let t = Rng.float_range rng 0. params.horizon in
    let a = Rng.int rng params.n in
    let b =
      let x = Rng.int rng (params.n - 1) in
      if x >= a then x + 1 else x
    in
    contacts := Contact.make ~a ~b ~t_beg:t ~t_end:t :: !contacts
  done;
  Omn_obs.Metrics.add m_contacts count;
  Trace.create ~name:"continuous-random-temporal" ~n_nodes:params.n ~t_start:0.
    ~t_end:params.horizon !contacts

let flood rng params ~source =
  let trace = generate rng params in
  Omn_baseline.Dijkstra.earliest_arrival trace ~source ~t0:0.

let mean_delay_estimate ?pool ?(domains = 1) rng params ~runs =
  check params;
  if runs < 1 then invalid_arg "Continuous.mean_delay_estimate: runs < 1";
  (* Streams split sequentially before the fan-out, samples reduced in
     run order: (mean, stderr) are bit-identical for any domain count. *)
  let streams = Array.make runs rng in
  for i = 0 to runs - 1 do
    streams.(i) <- Rng.split rng
  done;
  let samples =
    Omn_parallel.Pool.run ?pool ~domains
      (fun stream ->
        Omn_obs.Metrics.incr m_mc_runs;
        let arrival = flood stream params ~source:0 in
        Float.min arrival.(1) params.horizon)
      streams
  in
  let n = float_of_int runs in
  let mean = Array.fold_left ( +. ) 0. samples /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. samples
    /. Float.max 1. (n -. 1.)
  in
  (mean, sqrt (var /. n))
