module Rng = Omn_stats.Rng

(* cnt.(h).(v) = number of valid paths from the source reaching v with
   exactly h hops, within the slots processed so far. Short contacts:
   extensions only from the pre-slot table (slots strictly increase).
   Long contacts: also from counts created within the same slot
   (non-decreasing slots) — relax hop levels in increasing order, which
   terminates because each within-slot extension consumes a hop. *)
let count_paths rng params ~case ~deadline ~max_hops =
  if deadline < 0 || max_hops < 0 then invalid_arg "Path_count: negative budget";
  let n = params.Discrete.n in
  let cnt = Array.make_matrix (max_hops + 1) n 0. in
  cnt.(0).(0) <- 1.;
  for _slot = 1 to deadline do
    let edges = Discrete.slot_edges rng params in
    match (case : Theory.contact_case) with
    | Theory.Short ->
      let prev = Array.map Array.copy cnt in
      for h = 1 to max_hops do
        List.iter
          (fun (u, v) ->
            cnt.(h).(v) <- cnt.(h).(v) +. prev.(h - 1).(u);
            cnt.(h).(u) <- cnt.(h).(u) +. prev.(h - 1).(v))
          edges
      done
    | Theory.Long ->
      (* Processing hop levels bottom-up lets level h see extensions made
         at level h-1 in this same slot. Within one level, an edge can be
         used once per path step; iterating the edge list once per level
         is exact because a within-slot path visits strictly increasing
         hop levels. *)
      for h = 1 to max_hops do
        let snapshot = Array.copy cnt.(h - 1) in
        List.iter
          (fun (u, v) ->
            cnt.(h).(v) <- cnt.(h).(v) +. snapshot.(u);
            cnt.(h).(u) <- cnt.(h).(u) +. snapshot.(v))
          edges
      done
  done;
  let total = ref 0. in
  for h = 1 to max_hops do
    total := !total +. cnt.(h).(1)
  done;
  !total

let mean_count ?pool ?(domains = 1) rng params ~case ~tau ~gamma ~runs =
  if runs < 1 then invalid_arg "Path_count.mean_count: runs < 1";
  if tau <= 0. || gamma <= 0. then invalid_arg "Path_count.mean_count: bad budgets";
  let log_n = log (float_of_int params.Discrete.n) in
  let deadline = max 1 (int_of_float (Float.ceil (tau *. log_n))) in
  let max_hops = max 1 (int_of_float (Float.floor (gamma *. tau *. log_n))) in
  (* Streams split sequentially, counts reduced in run order: the mean
     is bit-identical for any domain count (and to the old sequential
     loop, which added the counts in the same order). *)
  let streams = Array.make runs rng in
  for i = 0 to runs - 1 do
    streams.(i) <- Rng.split rng
  done;
  let counts =
    Omn_parallel.Pool.run ?pool ~domains
      (fun stream -> count_paths stream params ~case ~deadline ~max_hops)
      streams
  in
  Array.fold_left ( +. ) 0. counts /. float_of_int runs

let predicted_exponent = Theory.expected_paths_exponent
