(** Exact counting of constrained paths — a direct check of Lemma 1.

    Lemma 1 states that the expected number [E Π_N] of source–destination
    paths with delay at most [τ ln N] slots and at most [γ τ ln N] hops
    behaves as [Θ(N^(-1 + τ (γ ln λ + F γ)))] — vanishing in the
    sub-critical regime and diverging in the super-critical one. This
    module counts those paths {e exactly} on sampled discrete-time
    networks (a dynamic program over slots and hop counts; counts are
    floats since they grow polynomially in N), so the bench can fit the
    measured growth rate against the predicted exponent
    (experiment [lemma1]). *)

val count_paths :
  Omn_stats.Rng.t ->
  Discrete.params ->
  case:Theory.contact_case ->
  deadline:int ->
  max_hops:int ->
  float
(** Number of valid paths from node 0 to node 1 using at most [max_hops]
    contacts within [deadline] slots, on one sampled network. A path is a
    chronological sequence of (edge, slot) steps: slots strictly increase
    in the short-contact case and are non-decreasing in the long-contact
    case (matching §3.1.3). Vertices may repeat, as in the Lemma. *)

val mean_count :
  ?pool:Omn_parallel.Pool.t ->
  ?domains:int ->
  Omn_stats.Rng.t ->
  Discrete.params ->
  case:Theory.contact_case ->
  tau:float ->
  gamma:float ->
  runs:int ->
  float
(** Monte-Carlo estimate of [E Π_N] under the Lemma's logarithmic
    budgets: deadline [ceil (τ ln n)], hops [max 1 (floor (γ τ ln n))].
    One RNG stream is split off per run up front and the per-run counts
    are summed in run order, so the estimate is bit-identical for every
    [?pool] / [?domains] setting (default sequential). *)

val predicted_exponent :
  Theory.contact_case -> lambda:float -> tau:float -> gamma:float -> float
(** Alias of {!Theory.expected_paths_exponent}: the growth exponent the
    measurement should match. *)
