(** Closed-form results of §3: the phase transition of random temporal
    networks and the asymptotics of delay-optimal paths.

    Model: [n] nodes; during each time slot every pair is in contact
    independently with probability [λ/n] ([λ] = contact rate per node).
    Lemma 1 gives the expected number of source–destination paths under
    delay at most [τ ln n] and hop count at most [γ τ ln n]:
    [E(Π_n) = Θ(n^(-1 + τ (γ ln λ + F γ)))] where [F = h] in the
    short-contact case (at most one hop per slot) and [F = g] in the
    long-contact case (any number of hops per slot). *)

type contact_case = Short | Long

val h : float -> float
(** Binary entropy [h x = -x ln x - (1-x) ln (1-x)] on [0, 1];
    [h 0 = h 1 = 0]. Raises [Invalid_argument] outside [0, 1]. *)

val g : float -> float
(** [g x = (1+x) ln (1+x) - x ln x] on [0, ∞); [g 0 = 0]. *)

val exponent : contact_case -> lambda:float -> gamma:float -> float
(** The curve of Figs. 1–2: [γ ln λ + h γ] (short, γ ∈ [0,1]) or
    [γ ln λ + g γ] (long, γ >= 0). Requires [lambda > 0]. *)

val expected_paths_exponent :
  contact_case -> lambda:float -> tau:float -> gamma:float -> float
(** [-1 + τ (γ ln λ + F γ)] — the growth exponent of [E(Π_n)]. Negative
    means paths under constraints (τ, γ) almost surely do not exist for
    large [n]; positive means their expected number diverges. *)

val exponent_max : contact_case -> lambda:float -> float
(** Maximum of {!exponent} over γ: [ln (1+λ)] (short); [-ln (1-λ)] for
    λ < 1 and [+infinity] for λ >= 1 (long — the curve is unbounded). *)

val gamma_star : contact_case -> lambda:float -> float
(** Where the maximum is attained: [λ/(1+λ)] (short), [λ/(1-λ)] (long,
    λ < 1; [+infinity] at and above 1). *)

val tau_critical : contact_case -> lambda:float -> float
(** [1 / exponent_max]: below this delay coefficient no path exists,
    above it the expected path count diverges (Corollary 1). 0 in the
    long-contact case with λ >= 1 (arbitrarily small delays suffice). *)

val hop_coefficient : contact_case -> lambda:float -> float
(** Normalised hop count [k / ln n] of the delay-optimal path — the
    y-axis of Fig. 3: [λ / ((1+λ) ln (1+λ))] (short);
    [λ / ((1-λ) (-ln (1-λ)))] for λ < 1, [1 / ln λ] for λ > 1 and
    [+infinity] at λ = 1 (long, the singularity of Fig. 3). *)

val delay_coefficient : contact_case -> lambda:float -> float
(** Normalised delay [t / ln n] of the delay-optimal path — equals
    {!tau_critical}. *)

val expected_delay : contact_case -> lambda:float -> n:int -> float
(** [tau_critical * ln n]: heuristic optimal delay in slots.
    Requires [n >= 2]. *)

val expected_hops : contact_case -> lambda:float -> n:int -> float
(** [hop_coefficient * ln n]. *)

val supercritical_gamma_interval :
  contact_case -> lambda:float -> tau:float -> (float * float) option
(** The interval [[γ1; γ2]] on which [exponent >= 1/τ] — the hop-count
    coefficients for which paths of delay [τ ln n] exist (§3.2.2).
    [None] when [τ < tau_critical] (sub-critical). Found by bisection to
    1e-12; in the long case with λ >= 1 the curve is unbounded so γ2 is
    capped only by the short-contact-free search bound 1e6. *)
