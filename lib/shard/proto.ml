type job = {
  trace_digest : string;
  worker : int;
  max_hops : int;
  dests : int list option;
  grid : float array option;
  windows : (float * float) list option;
  supervise : (int * float * float * int) option;
  ckpt_path : string option;
  fingerprint : string;
  domains : int;
  telemetry : bool;
}

type to_worker =
  | Job of job
  | Trace_data of { digest : string; text : string }
  | Compute of { slot : int; source : int }
  | Stats_pull of { t_coord : float }
  | Ping
  | Shutdown

type from_worker =
  | Hello of { worker : int }
  | Need_trace of { digest : string }
  | Ready of { worker : int; resumed : int }
  | Result of { slot : int; source : int; partial : string }
  | Failed of { slot : int; source : int; attempts : int; reason : string }
  | Stats_push of {
      worker : int;
      t_coord : float;
      t_worker : float;
      metrics : Omn_obs.Metrics.snapshot;
      events : (int * Omn_obs.Timeline.entry) list;
      dropped : (int * int) list;
    }
  | Leave of { worker : int }
  | Pong

let encode_to_worker (m : to_worker) = Marshal.to_string m []
let encode_from_worker (m : from_worker) = Marshal.to_string m []

(* A CRC-valid frame can still carry bytes that are not a Marshalled
   value of the expected type (a confused or malicious peer); Marshal
   can raise anything from Failure to segfault-adjacent Invalid_argument
   on truncated headers, so decoding catches every exception and
   returns a typed error — the fuzz suite pins this. *)
let decode_to_worker s : (to_worker, string) result =
  try Ok (Marshal.from_string s 0)
  with e -> Error ("shard: undecodable message: " ^ Printexc.to_string e)

let decode_from_worker s : (from_worker, string) result =
  try Ok (Marshal.from_string s 0)
  with e -> Error ("shard: undecodable message: " ^ Printexc.to_string e)

let job_fingerprint ~trace_text ~max_hops ~dests ~grid ~windows =
  let b = Buffer.create (String.length trace_text + 256) in
  Buffer.add_string b trace_text;
  Buffer.add_string b (Printf.sprintf "|max_hops=%d" max_hops);
  (match dests with
  | None -> Buffer.add_string b "|dests=all"
  | Some ds -> List.iter (fun d -> Buffer.add_string b (Printf.sprintf "|d%d" d)) ds);
  (match grid with
  | None -> Buffer.add_string b "|grid=default"
  | Some g -> Array.iter (fun v -> Buffer.add_string b (Printf.sprintf "|g%.17g" v)) g);
  (match windows with
  | None -> Buffer.add_string b "|windows=full"
  | Some ws ->
    List.iter (fun (a, z) -> Buffer.add_string b (Printf.sprintf "|w%.17g,%.17g" a z)) ws);
  Omn_obs.Sha256.string (Buffer.contents b)
