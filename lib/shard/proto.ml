type job = {
  trace_text : string;
  max_hops : int;
  dests : int list option;
  grid : float array option;
  windows : (float * float) list option;
  supervise : (int * float * float * int) option;
  ckpt_path : string option;
  fingerprint : string;
  domains : int;
}

type to_worker =
  | Job of job
  | Compute of { slot : int; source : int }
  | Ping
  | Shutdown

type from_worker =
  | Hello of { worker : int }
  | Ready of { worker : int; resumed : int }
  | Result of { slot : int; source : int; partial : string }
  | Failed of { slot : int; source : int; attempts : int; reason : string }
  | Pong

let encode_to_worker (m : to_worker) = Marshal.to_string m []
let encode_from_worker (m : from_worker) = Marshal.to_string m []

let decode_to_worker s : (to_worker, string) result =
  try Ok (Marshal.from_string s 0) with
  | Failure m -> Error ("shard: undecodable message: " ^ m)
  | Invalid_argument m -> Error ("shard: undecodable message: " ^ m)

let decode_from_worker s : (from_worker, string) result =
  try Ok (Marshal.from_string s 0) with
  | Failure m -> Error ("shard: undecodable message: " ^ m)
  | Invalid_argument m -> Error ("shard: undecodable message: " ^ m)

let job_fingerprint ~trace_text ~max_hops ~dests ~grid ~windows =
  let b = Buffer.create (String.length trace_text + 256) in
  Buffer.add_string b trace_text;
  Buffer.add_string b (Printf.sprintf "|max_hops=%d" max_hops);
  (match dests with
  | None -> Buffer.add_string b "|dests=all"
  | Some ds -> List.iter (fun d -> Buffer.add_string b (Printf.sprintf "|d%d" d)) ds);
  (match grid with
  | None -> Buffer.add_string b "|grid=default"
  | Some g -> Array.iter (fun v -> Buffer.add_string b (Printf.sprintf "|g%.17g" v)) g);
  (match windows with
  | None -> Buffer.add_string b "|windows=full"
  | Some ws ->
    List.iter (fun (a, z) -> Buffer.add_string b (Printf.sprintf "|w%.17g,%.17g" a z)) ws);
  Omn_obs.Sha256.string (Buffer.contents b)
