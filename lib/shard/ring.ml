type t = {
  members : int list; (* sorted, distinct *)
  vnodes : int;
  points : (int * int) array; (* (hash, worker), sorted *)
}

(* First 15 hex chars of SHA-256 = 60 bits — fits an OCaml int on every
   64-bit platform and is uniform enough for placement. *)
let hash_str s = int_of_string ("0x" ^ String.sub (Omn_obs.Sha256.string s) 0 15)

let worker_points ~vnodes w =
  Array.init vnodes (fun v -> (hash_str (Printf.sprintf "worker:%d:vnode:%d" w v), w))

let of_members ~vnodes members =
  let members = List.sort_uniq compare members in
  let points = Array.concat (List.map (worker_points ~vnodes) members) in
  Array.sort compare points;
  { members; vnodes; points }

let create ?(vnodes = 64) ~workers () =
  if workers < 1 then invalid_arg "Ring.create: workers < 1";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  of_members ~vnodes (List.init workers (fun w -> w))

let members t = t.members
let workers t = List.length t.members

(* Membership changes rebuild the sorted point array from the member
   set. A member's vnode positions depend only on its id, so adding or
   removing worker w inserts or deletes exactly w's points — every
   other source→worker edge is untouched (the "only the moved arc"
   property the membership tests pin). *)
let add t w =
  if w < 0 then invalid_arg "Ring.add: negative worker";
  if List.mem w t.members then t else of_members ~vnodes:t.vnodes (w :: t.members)

let remove t w =
  if not (List.mem w t.members) then t
  else if List.length t.members = 1 then invalid_arg "Ring.remove: last member"
  else of_members ~vnodes:t.vnodes (List.filter (fun m -> m <> w) t.members)

let assign t ~alive source =
  if alive = [] then invalid_arg "Ring.assign: no alive workers";
  List.iter
    (fun w -> if not (List.mem w t.members) then invalid_arg "Ring.assign: unknown worker")
    alive;
  let h = hash_str (Printf.sprintf "source:%d" source) in
  let n = Array.length t.points in
  (* first point with hash >= h, wrapping *)
  let rec bs lo hi = if lo >= hi then lo else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < h then bs (mid + 1) hi else bs lo mid
  in
  let start = match bs 0 n with i when i = n -> 0 | i -> i in
  let rec walk i =
    if i >= n then List.hd alive (* every point's owner dead: any alive worker *)
    else
      let _, w = t.points.((start + i) mod n) in
      if List.mem w alive then w else walk (i + 1)
  in
  walk 0

let map_sha256 t ~alive ~sources =
  sources
  |> List.map (fun s -> Printf.sprintf "%d->%d" s (assign t ~alive s))
  |> String.concat ";"
  |> Omn_obs.Sha256.string
