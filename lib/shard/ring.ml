type t = { n_workers : int; points : (int * int) array (* (hash, worker), sorted *) }

(* First 15 hex chars of SHA-256 = 60 bits — fits an OCaml int on every
   64-bit platform and is uniform enough for placement. *)
let hash_str s = int_of_string ("0x" ^ String.sub (Omn_obs.Sha256.string s) 0 15)

let create ?(vnodes = 64) ~workers () =
  if workers < 1 then invalid_arg "Ring.create: workers < 1";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  let points =
    Array.init (workers * vnodes) (fun i ->
        let w = i / vnodes and v = i mod vnodes in
        (hash_str (Printf.sprintf "worker:%d:vnode:%d" w v), w))
  in
  Array.sort compare points;
  { n_workers = workers; points }

let workers t = t.n_workers

let assign t ~alive source =
  if alive = [] then invalid_arg "Ring.assign: no alive workers";
  List.iter
    (fun w ->
      if w < 0 || w >= t.n_workers then invalid_arg "Ring.assign: unknown worker")
    alive;
  let h = hash_str (Printf.sprintf "source:%d" source) in
  let n = Array.length t.points in
  (* first point with hash >= h, wrapping *)
  let rec bs lo hi = if lo >= hi then lo else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < h then bs (mid + 1) hi else bs lo mid
  in
  let start = match bs 0 n with i when i = n -> 0 | i -> i in
  let rec walk i =
    if i >= n then List.hd alive (* every point's owner dead: any alive worker *)
    else
      let _, w = t.points.((start + i) mod n) in
      if List.mem w alive then w else walk (i + 1)
  in
  walk 0

let map_sha256 t ~alive ~sources =
  sources
  |> List.map (fun s -> Printf.sprintf "%d->%d" s (assign t ~alive s))
  |> String.concat ";"
  |> Omn_obs.Sha256.string
