module Delay_cdf = Omn_core.Delay_cdf
module Trace_io = Omn_temporal.Trace_io
module Supervise = Omn_resilience.Supervise
module Pool = Omn_parallel.Pool
module Checkpoint = Omn_robust.Checkpoint
module Err = Omn_robust.Err

let ckpt_magic = "omn-shard-ckpt 1\n"

(* The coordinator binds the socket before spawning, but the spawned
   process can still race the listen() call on a loaded box. *)
let connect ~sock =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when attempt < 100 ->
      Unix.close fd;
      Unix.sleepf 0.05;
      go (attempt + 1)
    | exception e ->
      Unix.close fd;
      raise e
  in
  go 0

let load_cache ~path ~fingerprint =
  let validate payload =
    match (Marshal.from_string payload 0 : string * (int * string) list) with
    | fp, entries when fp = fingerprint -> Ok entries
    | _ -> Err.error Checkpoint "shard checkpoint fingerprint mismatch"
    | exception _ -> Err.error Checkpoint "shard checkpoint undecodable"
  in
  match Checkpoint.load ~magic:ckpt_magic ~validate path with
  | Ok (entries, _) -> entries
  | Error _ -> []

let save_cache ~path ~fingerprint cache =
  let entries = Hashtbl.fold (fun s v acc -> (s, v) :: acc) cache [] in
  let entries = List.sort compare entries in
  Checkpoint.save ~magic:ckpt_magic ~path (Marshal.to_string (fingerprint, entries) [])

let main ~worker ~sock () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = connect ~sock in
  let send m = Frame.write fd (Proto.encode_from_worker m) in
  send (Hello { worker });
  let job =
    match Frame.read fd with
    | Ok s -> (
      match Proto.decode_to_worker s with
      | Ok (Job j) -> Some j
      | Ok _ | Error _ -> None)
    | Error _ -> None
  in
  match job with
  | None -> Unix.close fd
  | Some job ->
    let trace = Trace_io.of_string job.trace_text in
    let policy =
      match job.supervise with
      | Some (retries, backoff, backoff_max, jitter_seed) ->
        { Supervise.default with retries; backoff; backoff_max; jitter_seed }
      | None -> { Supervise.default with retries = 0 }
    in
    let cache : (int, string) Hashtbl.t = Hashtbl.create 64 in
    (match job.ckpt_path with
    | Some p ->
      List.iter (fun (s, v) -> Hashtbl.replace cache s v) (load_cache ~path:p ~fingerprint:job.fingerprint)
    | None -> ());
    send (Ready { worker; resumed = Hashtbl.length cache });
    let pool = if job.domains > 1 then Some (Pool.create ~domains:job.domains ()) else None in
    let compute_source source =
      Delay_cdf.source_partial ~max_hops:job.max_hops ?dests:job.dests ?grid:job.grid
        ?windows:job.windows trace source
      |> Delay_cdf.partial_to_string
    in
    (* Batch order = arrival order; the cache is read-only during the
       pool run and mutated only afterwards, on this domain. *)
    let run_batch batch =
      let arr = Array.of_list batch in
      let out =
        Pool.run ?pool
          (fun (slot, source) ->
            match Hashtbl.find_opt cache source with
            | Some s -> Ok (slot, source, s, true)
            | None -> (
              match Supervise.run_task policy ~item:source (fun () -> compute_source source) with
              | Ok s -> Ok (slot, source, s, false)
              | Error f -> Error (slot, source, f)))
          arr
      in
      let dirty = ref false in
      Array.iter
        (function
          | Ok (_, source, s, false) ->
            Hashtbl.replace cache source s;
            dirty := true
          | Ok _ | Error _ -> ())
        out;
      (match job.ckpt_path with
      | Some p when !dirty -> save_cache ~path:p ~fingerprint:job.fingerprint cache
      | _ -> ());
      Array.iter
        (fun r ->
          send
            (match r with
            | Ok (slot, source, partial, _) -> Result { slot; source; partial }
            | Error (slot, source, (f : Supervise.failure)) ->
              Failed { slot; source; attempts = f.attempts; reason = f.reason }))
        out
    in
    (* Cap batches so queued Pings are answered between pool runs — a
       worker deep in a huge batch must not look heartbeat-dead. *)
    let batch_cap = max 8 (2 * job.domains) in
    let pending = ref [] in
    let flush () =
      if !pending <> [] then begin
        let rec take k = function
          | x :: rest when k > 0 ->
            let batch, keep = take (k - 1) rest in
            (x :: batch, keep)
          | rest -> ([], rest)
        in
        let batch, keep = take batch_cap (List.rev !pending) in
        run_batch batch;
        pending := List.rev keep
      end
    in
    let readable () =
      match Unix.select [ fd ] [] [] 0. with [ _ ], _, _ -> true | _ -> false
    in
    let rec loop () =
      if !pending <> [] && not (readable ()) then begin
        flush ();
        loop ()
      end
      else
        match Frame.read fd with
        | Error (`Eof | `Corrupt) -> () (* coordinator gone: orderly exit *)
        | Error `Timeout ->
          flush ();
          loop ()
        | Ok s -> (
          match Proto.decode_to_worker s with
          | Error _ -> ()
          | Ok Ping ->
            send Pong;
            loop ()
          | Ok Shutdown -> ()
          | Ok (Compute { slot; source }) ->
            pending := (slot, source) :: !pending;
            loop ()
          | Ok (Job _) -> loop ())
    in
    (try loop () with Unix.Unix_error _ -> ());
    (match pool with Some p -> Pool.shutdown p | None -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
