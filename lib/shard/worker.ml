module Delay_cdf = Omn_core.Delay_cdf
module Trace_io = Omn_temporal.Trace_io
module Supervise = Omn_resilience.Supervise
module Pool = Omn_parallel.Pool
module Checkpoint = Omn_robust.Checkpoint
module Retry_io = Omn_robust.Retry_io
module Err = Omn_robust.Err
module Sha256 = Omn_obs.Sha256

let ckpt_magic = "omn-shard-ckpt 1\n"

type mode = Dial of Transport.addr | Listen of Transport.addr

(* A silent TCP peer (e.g. its machine vanished without a FIN) must not
   hang a blocking read forever; the coordinator pings every heartbeat
   interval, so half a minute of silence means the link is gone. *)
let read_deadline = 30.

let load_cache ~path ~fingerprint =
  let validate payload =
    match (Marshal.from_string payload 0 : string * (int * string) list) with
    | fp, entries when fp = fingerprint -> Ok entries
    | _ -> Err.error Checkpoint "shard checkpoint fingerprint mismatch"
    | exception _ -> Err.error Checkpoint "shard checkpoint undecodable"
  in
  match Checkpoint.load ~magic:ckpt_magic ~validate path with
  | Ok (entries, _) -> entries
  | Error _ -> []

let save_cache ~path ~fingerprint cache =
  let entries = Hashtbl.fold (fun s v acc -> (s, v) :: acc) cache [] in
  let entries = List.sort compare entries in
  Checkpoint.save ~magic:ckpt_magic ~path (Marshal.to_string (fingerprint, entries) [])

(* State that outlives one coordinator session: traces by digest and
   result caches by job fingerprint. A partitioned worker that redials
   finds both intact, so a rejoin re-ships zero trace bytes and
   recomputes zero sources even without --trace-cache. *)
type persist = {
  traces : (string, Omn_temporal.Trace.t * string) Hashtbl.t;
  results : (string, (int, string) Hashtbl.t) Hashtbl.t;
  watermarks : (int, int) Hashtbl.t;
      (** per-domain cumulative timeline events already shipped in a
          [Stats_push] (dropped + sent), so each push carries only the
          new segment *)
}

(* The new-segment slice of a timeline snapshot: for each domain,
   events recorded since the watermark. Cumulative recorded =
   ring-dropped + live; if more than a ring's worth arrived since the
   last pull the oldest were lost — ship what the ring still holds (the
   loss is visible in the dropped counters). Filtering the sorted view
   preserves chronological order. Advances [watermarks]. *)
let new_segment (view : Omn_obs.Timeline.view) watermarks =
  let live = Hashtbl.create 8 in
  List.iter
    (fun (d, _) ->
      Hashtbl.replace live d (1 + Option.value ~default:0 (Hashtbl.find_opt live d)))
    view.events;
  let skip = Hashtbl.create 8 in
  Hashtbl.iter
    (fun d live_d ->
      let dropped_d = Option.value ~default:0 (List.assoc_opt d view.dropped) in
      let total = dropped_d + live_d in
      let prev = Option.value ~default:0 (Hashtbl.find_opt watermarks d) in
      let take = min (max 0 (total - prev)) live_d in
      Hashtbl.replace skip d (live_d - take);
      Hashtbl.replace watermarks d total)
    live;
  List.iter
    (fun (d, n) -> if not (Hashtbl.mem live d) then Hashtbl.replace watermarks d n)
    view.dropped;
  List.filter
    (fun (d, _) ->
      match Hashtbl.find_opt skip d with
      | Some n when n > 0 ->
        Hashtbl.replace skip d (n - 1);
        false
      | _ -> true)
    view.events

(* Answer to a [Stats_pull]: current metrics (with the timeline's
   per-domain drop counts stamped in as [timeline.dropped_events], so a
   metrics file alone supports --fail-dropped) plus the new timeline
   segment. Relaxed snapshot reads during a pool run are fine — the
   coordinator takes a final quiescent pull before shutdown. *)
let stats_push ~persist ~worker ~t_coord =
  let view = Omn_obs.Timeline.snapshot () in
  let metrics =
    Omn_obs.Metrics.with_counter "timeline.dropped_events" view.dropped
      (Omn_obs.Metrics.snapshot ())
  in
  Proto.Stats_push
    {
      worker;
      t_coord;
      t_worker = Unix.gettimeofday ();
      metrics;
      events = new_segment view persist.watermarks;
      dropped = view.dropped;
    }

(* One coordinator session on a connected descriptor: Hello, Job,
   trace negotiation, Ready, then the compute/heartbeat serve loop.
   [`Done] is a clean Shutdown; [`Lost] any broken-link shape (EOF,
   corrupt frame, timeout during setup, I/O error) — the caller
   decides whether to redial. *)
let session ~persist ~trace_cache ~worker fd =
  let send m = Frame.write fd (Proto.encode_from_worker m) in
  let read_msg () =
    match Frame.read fd with
    | Ok s -> (
      match Proto.decode_to_worker s with Ok m -> `Msg m | Error _ -> `Lost)
    | Error (`Eof | `Corrupt) -> `Lost
    | Error `Timeout -> `Timeout
  in
  try
    send (Proto.Hello { worker = !worker });
    let rec await_job () =
      match read_msg () with
      | `Msg (Proto.Job j) -> `Job j
      | `Msg Proto.Ping ->
        send Proto.Pong;
        await_job ()
      | `Msg (Proto.Stats_pull { t_coord }) ->
        send (stats_push ~persist ~worker:!worker ~t_coord);
        await_job ()
      | `Msg Proto.Shutdown -> `Done
      | `Msg _ | `Lost | `Timeout -> `Lost
    in
    match await_job () with
    | `Done -> `Done
    | `Lost -> `Lost
    | `Job job -> (
      worker := job.Proto.worker;
      let id = job.Proto.worker in
      (* Enabling never changes computed results (PR 3/5 contract); it
         is one-way here so a redial with telemetry off keeps the
         already-accumulated registry for the next pull. *)
      if job.Proto.telemetry then begin
        Omn_obs.Metrics.set_enabled true;
        Omn_obs.Timeline.set_enabled true
      end;
      let memoize text =
        let t = Trace_io.of_string text in
        Hashtbl.replace persist.traces job.trace_digest (t, text);
        t
      in
      let trace =
        match Hashtbl.find_opt persist.traces job.trace_digest with
        | Some (t, _) -> `Trace t
        | None -> (
          match
            Option.bind trace_cache (fun dir ->
                Store.get ~dir ~digest:job.trace_digest)
          with
          | Some text -> `Trace (memoize text)
          | None ->
            send (Proto.Need_trace { digest = job.trace_digest });
            let rec await_trace () =
              match read_msg () with
              | `Msg (Proto.Trace_data { digest; text })
                when String.equal digest job.trace_digest ->
                if String.equal (Sha256.string text) digest then begin
                  (match trace_cache with
                  | Some dir -> ignore (Store.put ~dir ~digest text)
                  | None -> ());
                  `Trace (memoize text)
                end
                else `Lost (* shipped bytes don't hash to the digest *)
              | `Msg Proto.Ping ->
                send Proto.Pong;
                await_trace ()
              | `Msg (Proto.Stats_pull { t_coord }) ->
                send (stats_push ~persist ~worker:id ~t_coord);
                await_trace ()
              | `Msg Proto.Shutdown -> `Done
              | `Msg _ | `Lost | `Timeout -> `Lost
            in
            await_trace ())
      in
      match trace with
      | `Done -> `Done
      | `Lost -> `Lost
      | `Trace trace ->
        let policy =
          match job.supervise with
          | Some (retries, backoff, backoff_max, jitter_seed) ->
            { Supervise.default with retries; backoff; backoff_max; jitter_seed }
          | None -> { Supervise.default with retries = 0 }
        in
        let cache =
          match Hashtbl.find_opt persist.results job.fingerprint with
          | Some c -> c
          | None ->
            let c : (int, string) Hashtbl.t = Hashtbl.create 64 in
            Hashtbl.replace persist.results job.fingerprint c;
            c
        in
        (match job.ckpt_path with
        | Some p ->
          List.iter
            (fun (s, v) -> if not (Hashtbl.mem cache s) then Hashtbl.replace cache s v)
            (load_cache ~path:p ~fingerprint:job.fingerprint)
        | None -> ());
        send (Ready { worker = id; resumed = Hashtbl.length cache });
        let pool =
          if job.domains > 1 then Some (Pool.create ~domains:job.domains ()) else None
        in
        let compute_source source =
          let tl_on = Omn_obs.Timeline.enabled () in
          let start = if tl_on then Unix.gettimeofday () else 0. in
          let partial =
            Delay_cdf.source_partial ~max_hops:job.max_hops ?dests:job.dests
              ?grid:job.grid ?windows:job.windows trace source
            |> Delay_cdf.partial_to_string
          in
          if tl_on then Omn_obs.Timeline.record (Shard_compute { source; start });
          partial
        in
        (* Batch order = arrival order; the cache is read-only during the
           pool run and mutated only afterwards, on this domain. *)
        let run_batch batch =
          let arr = Array.of_list batch in
          let out =
            Pool.run ?pool
              (fun (slot, source) ->
                match Hashtbl.find_opt cache source with
                | Some s -> Ok (slot, source, s, true)
                | None -> (
                  match
                    Supervise.run_task policy ~item:source (fun () ->
                        compute_source source)
                  with
                  | Ok s -> Ok (slot, source, s, false)
                  | Error f -> Error (slot, source, f)))
              arr
          in
          let dirty = ref false in
          Array.iter
            (function
              | Ok (_, source, s, false) ->
                Hashtbl.replace cache source s;
                dirty := true
              | Ok _ | Error _ -> ())
            out;
          (match job.ckpt_path with
          | Some p when !dirty -> save_cache ~path:p ~fingerprint:job.fingerprint cache
          | _ -> ());
          Array.iter
            (fun r ->
              send
                (match r with
                | Ok (slot, source, partial, _) -> Proto.Result { slot; source; partial }
                | Error (slot, source, (f : Supervise.failure)) ->
                  Failed { slot; source; attempts = f.attempts; reason = f.reason }))
            out
        in
        (* Cap batches so queued Pings are answered between pool runs — a
           worker deep in a huge batch must not look heartbeat-dead. *)
        let batch_cap = max 8 (2 * job.domains) in
        let pending = ref [] in
        let flush () =
          if !pending <> [] then begin
            let rec take k = function
              | x :: rest when k > 0 ->
                let batch, keep = take (k - 1) rest in
                (x :: batch, keep)
              | rest -> ([], rest)
            in
            let batch, keep = take batch_cap (List.rev !pending) in
            run_batch batch;
            pending := List.rev keep
          end
        in
        let readable () =
          match Retry_io.eintr (fun () -> Unix.select [ fd ] [] [] 0.) with
          | [ _ ], _, _ -> true
          | _ -> false
        in
        let rec loop () =
          if !pending <> [] && not (readable ()) then begin
            flush ();
            loop ()
          end
          else
            match Frame.read fd with
            | Error (`Eof | `Corrupt) -> `Lost (* link gone: maybe redial *)
            | Error `Timeout ->
              flush ();
              loop ()
            | Ok s -> (
              match Proto.decode_to_worker s with
              | Error _ -> `Lost
              | Ok Ping ->
                send Pong;
                loop ()
              | Ok Shutdown -> `Done
              | Ok (Compute { slot; source }) ->
                pending := (slot, source) :: !pending;
                loop ()
              | Ok (Stats_pull { t_coord }) ->
                send (stats_push ~persist ~worker:id ~t_coord);
                loop ()
              | Ok (Job _ | Trace_data _) -> loop ())
        in
        let outcome = try loop () with Unix.Unix_error _ -> `Lost in
        (match pool with Some p -> Pool.shutdown p | None -> ());
        outcome)
  with Unix.Unix_error _ -> `Lost

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let main ~worker ~mode ?auth_key ?trace_cache ?(once = false) () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let persist =
    { traces = Hashtbl.create 4; results = Hashtbl.create 4; watermarks = Hashtbl.create 8 }
  in
  let id = ref worker in
  match mode with
  | Dial addr ->
    (* First connect gets the generous race budget (the coordinator may
       still be binding); redials after a lost link get a short one —
       if the coordinator is really gone, exiting cleanly is correct. *)
    let rec go ~dials ~attempts =
      match Transport.dial ~attempts ~connect_timeout:10. addr with
      | Error e -> if dials = 0 then Error e else Ok ()
      | Ok fd -> (
        let authed =
          match auth_key with Some key -> Auth.client ~key fd | None -> Ok ()
        in
        match authed with
        | Error e ->
          close_noerr fd;
          Error e
        | Ok () ->
          (match addr with
          | Transport.Tcp _ -> Transport.set_deadline fd read_deadline
          | Transport.Unix_path _ -> ());
          let outcome = session ~persist ~trace_cache ~worker:id fd in
          close_noerr fd;
          (match outcome with
          | `Done -> Ok ()
          | `Lost when dials < 1000 -> go ~dials:(dials + 1) ~attempts:20
          | `Lost -> Ok ()))
    in
    go ~dials:0 ~attempts:100
  | Listen addr ->
    let lfd = Transport.listen addr in
    Printf.eprintf "omn worker: listening on %s\n%!"
      (Transport.to_string (Transport.bound_addr lfd addr));
    let auth_state = Auth.state () in
    let rec accept_loop () =
      let fd, _ = Retry_io.eintr (fun () -> Unix.accept lfd) in
      Transport.set_deadline fd read_deadline;
      let authed =
        match auth_key with
        | Some key -> Auth.server ~state:auth_state ~key fd
        | None -> Ok ()
      in
      match authed with
      | Error e ->
        (* typed rejection already shipped to the peer; this listener
           keeps serving *)
        Printf.eprintf "omn worker: %s\n%!" (Err.to_string e);
        close_noerr fd;
        accept_loop ()
      | Ok () -> (
        let outcome = session ~persist ~trace_cache ~worker:id fd in
        close_noerr fd;
        match outcome with
        | `Done when once ->
          close_noerr lfd;
          Ok ()
        | `Done | `Lost -> accept_loop ())
    in
    accept_loop ()
