(* Pre-shared-key authentication for shard connections.

   Three CRC-framed text messages, dialer (client) first:

     A1  "omn-auth1 <ver> <build> <nonce_c>"
     A2  "omn-auth2 <ver> <build> <nonce_s> <mac_s>"
     A3  "omn-auth3 <mac_c>"

   mac_s = HMAC(key, "server|" ^ transcript), mac_c = HMAC(key,
   "client|" ^ transcript), where the transcript binds both versions,
   builds and nonces — so each side proves key possession over the
   exact parameters the other side saw, and the two directions can
   never be confused or reflected. The listener remembers client
   nonces it has accepted: a replayed A1 (same nonce) is rejected even
   though its MAC would verify. A failure sends a best-effort
   "omn-auth-err E-AUTH|E-PROTO <msg>" frame before the connection is
   dropped, so the peer exits with the same typed error instead of a
   bare EOF. *)

module Err = Omn_robust.Err
module Sha256 = Omn_obs.Sha256

(* Version of this handshake + the Proto framing it fronts. Bump when
   the Marshal-encoded message set changes incompatibly. *)
let protocol_version = 3

(* Marshal requires both ends to agree on the runtime's value layout;
   refusing a different compiler version up front turns a would-be
   undecodable-message failure into a typed E-PROTO at connect time. *)
let default_build = "ocaml-" ^ Sys.ocaml_version

(* HMAC-SHA-256 (RFC 2104) over the hex-digest Sha256. Digests here
   are hex strings; only [hmac]'s output crosses the wire. *)
let hmac ~key msg =
  let block = 64 in
  let key = if String.length key > block then Sha256.string key else key in
  let pad = Bytes.make block '\000' in
  Bytes.blit_string key 0 pad 0 (String.length key);
  let xor_with c =
    String.init block (fun i -> Char.chr (Char.code (Bytes.get pad i) lxor c))
  in
  let ipad = xor_with 0x36 and opad = xor_with 0x5c in
  (* inner digest is hex; feeding hex into the outer hash keeps the
     construction self-consistent on both ends *)
  Sha256.string (opad ^ Sha256.string (ipad ^ msg))

let const_time_eq a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end

let nonce_counter = ref 0

let fresh_nonce () =
  incr nonce_counter;
  match
    let ic = open_in_bin "/dev/urandom" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic 16)
  with
  | raw -> String.concat "" (List.init 16 (fun i -> Printf.sprintf "%02x" (Char.code raw.[i])))
  | exception _ ->
    String.sub
      (Sha256.string
         (Printf.sprintf "%.17g|%d|%d" (Unix.gettimeofday ()) (Unix.getpid ())
            !nonce_counter))
      0 32

type state = { seen : (string, unit) Hashtbl.t }

let state () = { seen = Hashtbl.create 16 }

let auth_err code msg = Err.v code ("shard auth: " ^ msg)

let send_reject fd code msg =
  let payload =
    Printf.sprintf "omn-auth-err %s %s" (Err.code_name code) msg
  in
  try Frame.write fd payload with _ -> ()

let read_frame fd =
  match Frame.read fd with
  | Ok p -> Ok p
  | Error `Eof -> Error (auth_err Auth "peer closed during handshake")
  | Error `Timeout -> Error (auth_err Auth "handshake timed out")
  | Error `Corrupt -> Error (auth_err Proto "corrupt frame during handshake")

(* An "omn-auth-err <CODE> <msg>" frame from the peer becomes the same
   typed error locally. *)
let check_reject payload =
  match String.split_on_char ' ' payload with
  | "omn-auth-err" :: code :: rest ->
    let code = if String.equal code "E-PROTO" then Err.Proto else Err.Auth in
    Some (auth_err code ("rejected by peer: " ^ String.concat " " rest))
  | _ -> None

let transcript ~ver_c ~build_c ~nonce_c ~ver_s ~build_s ~nonce_s =
  Printf.sprintf "%d|%s|%s|%d|%s|%s" ver_c build_c nonce_c ver_s build_s nonce_s

let version_check ~mine ~theirs ~build_mine ~build_theirs =
  if theirs <> mine then
    Error
      (auth_err Proto
         (Printf.sprintf "protocol version mismatch: local %d, peer %d" mine theirs))
  else if not (String.equal build_theirs build_mine) then
    Error
      (auth_err Proto
         (Printf.sprintf "build mismatch: local %s, peer %s" build_mine build_theirs))
  else Ok ()

let ( let* ) = Result.bind

(* Dialer side. *)
let client ?(build = default_build) ~key fd =
  let nonce_c = fresh_nonce () in
  let* () =
    try
      Frame.write fd
        (Printf.sprintf "omn-auth1 %d %s %s" protocol_version build nonce_c);
      Ok ()
    with e -> Error (auth_err Auth ("send failed: " ^ Printexc.to_string e))
  in
  let* a2 = read_frame fd in
  let* () = match check_reject a2 with Some e -> Error e | None -> Ok () in
  let* ver_s, build_s, nonce_s, mac_s =
    match String.split_on_char ' ' a2 with
    | [ "omn-auth2"; v; b; n; m ] -> (
      match int_of_string_opt v with
      | Some v -> Ok (v, b, n, m)
      | None -> Error (auth_err Proto "malformed omn-auth2 version"))
    | _ -> Error (auth_err Proto "expected omn-auth2")
  in
  let* () =
    version_check ~mine:protocol_version ~theirs:ver_s ~build_mine:build
      ~build_theirs:build_s
  in
  let tr =
    transcript ~ver_c:protocol_version ~build_c:build ~nonce_c ~ver_s ~build_s
      ~nonce_s
  in
  if not (const_time_eq mac_s (hmac ~key ("server|" ^ tr))) then begin
    send_reject fd Err.Auth "bad server MAC";
    Error (auth_err Auth "server failed key proof (wrong key?)")
  end
  else
    try
      Frame.write fd (Printf.sprintf "omn-auth3 %s" (hmac ~key ("client|" ^ tr)));
      Ok ()
    with e -> Error (auth_err Auth ("send failed: " ^ Printexc.to_string e))

(* Listener side. [st] carries the accepted-nonce table for replay
   rejection; share one state across all accepts of a listener. *)
let server ?(build = default_build) ~state:st ~key fd =
  let* a1 = read_frame fd in
  let* () = match check_reject a1 with Some e -> Error e | None -> Ok () in
  let* ver_c, build_c, nonce_c =
    match String.split_on_char ' ' a1 with
    | [ "omn-auth1"; v; b; n ] -> (
      match int_of_string_opt v with
      | Some v -> Ok (v, b, n)
      | None ->
        send_reject fd Err.Proto "malformed omn-auth1 version";
        Error (auth_err Proto "malformed omn-auth1 version"))
    | _ ->
      send_reject fd Err.Auth "authentication required";
      Error (auth_err Auth "peer did not authenticate")
  in
  let* () =
    match
      version_check ~mine:protocol_version ~theirs:ver_c ~build_mine:build
        ~build_theirs:build_c
    with
    | Ok () -> Ok ()
    | Error e ->
      send_reject fd Err.Proto e.Err.msg;
      Error e
  in
  if Hashtbl.mem st.seen nonce_c then begin
    send_reject fd Err.Auth "replayed nonce";
    Error (auth_err Auth "replayed client nonce")
  end
  else begin
    Hashtbl.replace st.seen nonce_c ();
    let nonce_s = fresh_nonce () in
    let tr =
      transcript ~ver_c ~build_c ~nonce_c ~ver_s:protocol_version ~build_s:build
        ~nonce_s
    in
    let* () =
      try
        Frame.write fd
          (Printf.sprintf "omn-auth2 %d %s %s %s" protocol_version build nonce_s
             (hmac ~key ("server|" ^ tr)));
        Ok ()
      with e -> Error (auth_err Auth ("send failed: " ^ Printexc.to_string e))
    in
    let* a3 = read_frame fd in
    let* () = match check_reject a3 with Some e -> Error e | None -> Ok () in
    let* mac_c =
      match String.split_on_char ' ' a3 with
      | [ "omn-auth3"; m ] -> Ok m
      | _ ->
        send_reject fd Err.Proto "expected omn-auth3";
        Error (auth_err Proto "expected omn-auth3")
    in
    if const_time_eq mac_c (hmac ~key ("client|" ^ tr)) then Ok ()
    else begin
      send_reject fd Err.Auth "bad client MAC";
      Error (auth_err Auth "client failed key proof (wrong key?)")
    end
  end
