(** Shard wire protocol: message types and their encoding.

    Messages are OCaml values Marshalled to strings and shipped inside
    {!Frame} frames, which add the length prefix, version byte and
    CRC-32. Marshal is safe here because both ends must be the {e same
    build} — same-host fleets re-execute the coordinator binary, and
    TCP peers prove build equality in the {!Auth} handshake before any
    [Proto] traffic — and the frame CRC rejects corrupted bytes before
    they reach [Marshal.from_string]. Decoding additionally catches
    {e every} exception defensively and returns [Error] (fuzz-pinned):
    a hostile or confused peer yields a typed drop, never a crash.

    Handshake: worker connects (authenticating first when a key is
    set) and sends {!from_worker.Hello} — [worker = -1] asks the
    coordinator to assign an id (dynamic join). The coordinator
    replies with {!to_worker.Job}, which names the trace by digest
    only; a worker that does not already hold those bytes (in memory
    from a previous session, or in its [--trace-cache] store) answers
    {!from_worker.Need_trace} and the coordinator ships one
    {!to_worker.Trace_data}. The worker then loads its shard
    checkpoint (if the fingerprint matches) and answers
    {!from_worker.Ready} with the number of cached results it resumed;
    only then does the coordinator stream [Compute] messages. *)

type job = {
  trace_digest : string;
      (** SHA-256 of the trace text ([Omn_temporal.Trace_io.to_string]
          form, [%.17g] floats, so the round-trip is bit-exact); the
          bytes travel separately in {!to_worker.Trace_data} and only
          when the worker misses its cache *)
  worker : int;  (** the id the coordinator assigned this connection *)
  max_hops : int;
  dests : int list option;
  grid : float array option;
  windows : (float * float) list option;
  supervise : (int * float * float * int) option;
      (** (retries, backoff, backoff_max, jitter_seed) — worker-side
          supervision policy; [None] means fail-fast with 0 retries
          (the failure still arrives as [Failed], not a worker crash) *)
  ckpt_path : string option;  (** per-worker shard checkpoint file *)
  fingerprint : string;
      (** digest of trace + parameters; a checkpoint from any other
          fingerprint is ignored on rejoin *)
  domains : int;  (** size of the worker's own domain pool *)
  telemetry : bool;
      (** enable the worker's local metrics registry and timeline so
          [Stats_pull] has something to report; never affects computed
          results (the PR 3/5 bit-identity contract) *)
}

type to_worker =
  | Job of job
  | Trace_data of { digest : string; text : string }
      (** full trace bytes, sent only in answer to [Need_trace]; the
          worker verifies [Sha256.string text = digest] before use *)
  | Compute of { slot : int; source : int }
      (** [slot] is the position in the coordinator's merge order; the
          worker echoes it back untouched *)
  | Stats_pull of { t_coord : float }
      (** telemetry poll: report your metrics snapshot and new timeline
          events. [t_coord] is the coordinator's send stamp, echoed back
          in [Stats_push] so the coordinator can pair the reply with its
          own receive stamp for an NTP-style clock-offset estimate even
          with several pulls outstanding *)
  | Ping
  | Shutdown

type from_worker =
  | Hello of { worker : int }
      (** [worker = -1]: a joiner asking to be assigned an id *)
  | Need_trace of { digest : string }
      (** cache miss: please ship the bytes for this digest *)
  | Ready of { worker : int; resumed : int }
  | Result of { slot : int; source : int; partial : string }
      (** [partial] is [Delay_cdf.partial_to_string] output — opaque
          here *)
  | Failed of { slot : int; source : int; attempts : int; reason : string }
      (** worker-side supervision exhausted its retries on this source *)
  | Stats_push of {
      worker : int;
      t_coord : float;  (** echo of the pull's send stamp *)
      t_worker : float;  (** the worker's clock when it replied *)
      metrics : Omn_obs.Metrics.snapshot;
          (** full current snapshot (replaces the previous one
              coordinator-side — counters are monotonic) *)
      events : (int * Omn_obs.Timeline.entry) list;
          (** only timeline events recorded {e since the previous pull}
              (per-domain watermarks worker-side), worker-clock stamps *)
      dropped : (int * int) list;  (** cumulative per-domain ring drops *)
    }
      (** answer to [Stats_pull]; also sent once more right before
          [Leave] so the final merged artifacts see the complete run *)
  | Leave of { worker : int }
      (** graceful departure: stop assigning to me, reassign my
          in-flight sources, don't respawn me *)
  | Pong

val encode_to_worker : to_worker -> string
val decode_to_worker : string -> (to_worker, string) result
val encode_from_worker : from_worker -> string
val decode_from_worker : string -> (from_worker, string) result

val job_fingerprint :
  trace_text:string ->
  max_hops:int ->
  dests:int list option ->
  grid:float array option ->
  windows:(float * float) list option ->
  string
(** The parameter digest embedded in {!job} and in worker checkpoints:
    any change to the trace or to a result-affecting parameter changes
    it, so stale shard checkpoints can never leak into a run. *)
