(** Shard wire protocol: message types and their encoding.

    Messages are OCaml values Marshalled to strings and shipped inside
    {!Frame} frames, which add the length prefix, version byte and
    CRC-32. Marshal is safe here because both ends are always the
    {e same binary} — the coordinator spawns workers by re-executing
    itself (or forking) — and the frame CRC rejects corrupted bytes
    before they reach [Marshal.from_string]. Decoding still catches
    [Failure] defensively and returns [Error].

    Handshake: worker connects and sends {!from_worker.Hello}; the
    coordinator replies with {!to_worker.Job}; the worker loads its
    shard checkpoint (if the fingerprint matches) and answers
    {!from_worker.Ready} with the number of cached results it resumed;
    only then does the coordinator stream [Compute] messages. *)

type job = {
  trace_text : string;
      (** the full trace, via [Omn_temporal.Trace_io.to_string] —
          [%.17g] float printing makes the round-trip bit-exact *)
  max_hops : int;
  dests : int list option;
  grid : float array option;
  windows : (float * float) list option;
  supervise : (int * float * float * int) option;
      (** (retries, backoff, backoff_max, jitter_seed) — worker-side
          supervision policy; [None] means fail-fast with 0 retries
          (the failure still arrives as [Failed], not a worker crash) *)
  ckpt_path : string option;  (** per-worker shard checkpoint file *)
  fingerprint : string;
      (** digest of trace + parameters; a checkpoint from any other
          fingerprint is ignored on rejoin *)
  domains : int;  (** size of the worker's own domain pool *)
}

type to_worker =
  | Job of job
  | Compute of { slot : int; source : int }
      (** [slot] is the position in the coordinator's merge order; the
          worker echoes it back untouched *)
  | Ping
  | Shutdown

type from_worker =
  | Hello of { worker : int }
  | Ready of { worker : int; resumed : int }
  | Result of { slot : int; source : int; partial : string }
      (** [partial] is [Delay_cdf.partial_to_string] output — opaque
          here *)
  | Failed of { slot : int; source : int; attempts : int; reason : string }
      (** worker-side supervision exhausted its retries on this source *)
  | Pong

val encode_to_worker : to_worker -> string
val decode_to_worker : string -> (to_worker, string) result
val encode_from_worker : from_worker -> string
val decode_from_worker : string -> (from_worker, string) result

val job_fingerprint :
  trace_text:string ->
  max_hops:int ->
  dests:int list option ->
  grid:float array option ->
  windows:(float * float) list option ->
  string
(** The parameter digest embedded in {!job} and in worker checkpoints:
    any change to the trace or to a result-affecting parameter changes
    it, so stale shard checkpoints can never leak into a run. *)
