module Delay_cdf = Omn_core.Delay_cdf
module Trace = Omn_temporal.Trace
module Trace_io = Omn_temporal.Trace_io
module Supervise = Omn_resilience.Supervise
module Faultgen = Omn_robust.Faultgen
module Err = Omn_robust.Err
module Timeline = Omn_obs.Timeline
module Metrics = Omn_obs.Metrics

let m_spawns = Metrics.counter "shard.worker_spawns"
let m_misses = Metrics.counter "shard.heartbeat_misses"
let m_corrupt = Metrics.counter "shard.frame_corrupt"
let m_reassigned = Metrics.counter "shard.reassigned_sources"
let m_rejoins = Metrics.counter "shard.worker_rejoins"
let m_duplicates = Metrics.counter "shard.duplicate_results"

type spawn = Spawn_exec | Spawn_fork

type config = {
  workers : int;
  worker_domains : int;
  vnodes : int;
  max_inflight : int;
  spawn : spawn;
  heartbeat_interval : float;
  heartbeat_timeout : float;
  max_respawns : int;
  respawn_backoff : float;
  supervise : (int * float * float * int) option;
  ckpt_dir : string option;
  budget_seconds : float option;
  chaos : Faultgen.shard_event list;
  sock_path : string option;
  on_partial : (Omn_temporal.Node.t -> Delay_cdf.partial -> unit) option;
}

let default ~workers =
  {
    workers;
    worker_domains = 1;
    vnodes = 64;
    max_inflight = 32;
    spawn = Spawn_exec;
    heartbeat_interval = 0.25;
    heartbeat_timeout = 5.;
    max_respawns = 2;
    respawn_backoff = 0.1;
    supervise = None;
    ckpt_dir = None;
    budget_seconds = None;
    chaos = [];
    sock_path = None;
    on_partial = None;
  }

type stats = {
  spawns : int;
  heartbeat_misses : int;
  frame_corrupts : int;
  reassigned : int;
  rejoins : int;
  duplicates : int;
  shard_map_sha256 : string;
}

(* per-worker runtime state *)
type wstate = {
  id : int;
  mutable pid : int;  (* 0 = not running *)
  mutable conn : Unix.file_descr option;
  mutable ready : bool;
  mutable last_seen : float;
  mutable respawns : int;  (* -1 before the first spawn *)
  mutable next_spawn_at : float;
  mutable gone : bool;  (* respawn budget exhausted *)
  mutable mangle_next : bool;  (* sock-corrupt chaos flag *)
  mutable inflight : int;  (* slots currently Assigned to this worker *)
}

type sstate =
  | Pending
  | Assigned of int
  | Acked of string
  | Degr of Supervise.failure

let spawn_worker cfg ~sock ~id =
  match cfg.spawn with
  | Spawn_exec ->
    let argv = [| Sys.executable_name; "worker"; "--id"; string_of_int id; "--sock"; sock |] in
    Unix.create_process Sys.executable_name argv Unix.stdin Unix.stdout Unix.stderr
  | Spawn_fork -> (
    match Unix.fork () with
    | 0 ->
      (try Worker.main ~worker:id ~sock () with _ -> ());
      Unix._exit 0
    | pid -> pid)

let run ?(max_hops = 10) ?sources ?dests ?grid ?windows ?(clock = Unix.gettimeofday) cfg trace =
  if cfg.workers < 1 then Err.error Usage "shard: workers < 1"
  else if cfg.heartbeat_timeout <= 0. || cfg.heartbeat_interval <= 0. then
    Err.error Usage "shard: non-positive heartbeat parameters"
  else if cfg.max_inflight < 1 then Err.error Usage "shard: max_inflight < 1"
  else begin
    match
      (* workers checkpoint into cfg.ckpt_dir from their first batch on;
         create it up front so a missing directory can't crash-loop them
         through the whole respawn budget *)
      match cfg.ckpt_dir with
      | Some d when not (Sys.file_exists d) -> (
        try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
      | _ -> ()
    with
    | exception Unix.Unix_error (e, _, _) ->
      Err.errorf Io "shard: cannot create checkpoint dir: %s"
        (Unix.error_message e)
    | () ->
    let n = Trace.n_nodes trace in
    let sources = Option.value sources ~default:(List.init n (fun i -> i)) in
    let order = Delay_cdf.uniform_order sources in
    let slots = Array.of_list order in
    let nslots = Array.length slots in
    let trace_text = Trace_io.to_string trace in
    let fingerprint = Proto.job_fingerprint ~trace_text ~max_hops ~dests ~grid ~windows in
    let ring = Ring.create ~vnodes:cfg.vnodes ~workers:cfg.workers () in
    let all_workers = List.init cfg.workers Fun.id in
    let shard_map_sha256 = Ring.map_sha256 ring ~alive:all_workers ~sources:order in
    let merge_result ~partial ~slot_state ~acked ~stats_of =
      let merger = Delay_cdf.merger_create ~max_hops ?grid () in
      let degraded = ref [] in
      let bad = ref None in
      Array.iteri
        (fun i st ->
          match st with
          | Acked s -> (
            match Delay_cdf.partial_of_string s with
            | Ok p ->
              Delay_cdf.merger_add merger p;
              (match cfg.on_partial with
              | Some f -> f slots.(i) p
              | None -> ())
            | Error msg -> if !bad = None then bad := Some msg)
          | Degr f -> degraded := f :: !degraded
          | Pending | Assigned _ -> ())
        slot_state;
      match !bad with
      | Some msg -> Err.error Compute ("shard: " ^ msg)
      | None ->
        let progress =
          {
            Delay_cdf.sources_done = acked;
            sources_total = nslots;
            partial;
            degraded = List.rev !degraded;
            ckpt_fallback = false;
          }
        in
        Ok (Delay_cdf.merger_curves merger, progress, stats_of ())
    in
    let empty_stats () =
      {
        spawns = 0;
        heartbeat_misses = 0;
        frame_corrupts = 0;
        reassigned = 0;
        rejoins = 0;
        duplicates = 0;
        shard_map_sha256;
      }
    in
    if nslots = 0 then merge_result ~partial:false ~slot_state:[||] ~acked:0 ~stats_of:empty_stats
    else begin
      let sock =
        match cfg.sock_path with
        | Some p -> p
        | None ->
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "omn-shard-%d-%d.sock" (Unix.getpid ()) (Hashtbl.hash fingerprint))
      in
      (try Unix.unlink sock with Unix.Unix_error _ -> ());
      let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      let restore () =
        Sys.set_signal Sys.sigpipe old_sigpipe;
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        try Unix.unlink sock with Unix.Unix_error _ -> ()
      in
      match
        Unix.bind listen_fd (Unix.ADDR_UNIX sock);
        Unix.listen listen_fd (cfg.workers + 4)
      with
      | exception Unix.Unix_error (e, _, _) ->
        restore ();
        Err.errorf Io "shard: cannot bind %s: %s" sock (Unix.error_message e)
      | () ->
        let ws =
          Array.init cfg.workers (fun id ->
              {
                id;
                pid = 0;
                conn = None;
                ready = false;
                last_seen = 0.;
                respawns = -1;
                next_spawn_at = 0.;
                gone = false;
                mangle_next = false;
                inflight = 0;
              })
        in
        let slot_state = Array.make nslots Pending in
        let acked = ref 0 and degraded_n = ref 0 in
        let st_spawns = ref 0
        and st_misses = ref 0
        and st_corrupt = ref 0
        and st_reassigned = ref 0
        and st_rejoins = ref 0
        and st_dups = ref 0 in
        let stats_of () =
          {
            spawns = !st_spawns;
            heartbeat_misses = !st_misses;
            frame_corrupts = !st_corrupt;
            reassigned = !st_reassigned;
            rejoins = !st_rejoins;
            duplicates = !st_dups;
            shard_map_sha256;
          }
        in
        let chaos = ref cfg.chaos in
        let dispatched = ref false in
        let job =
          Proto.Job
            {
              trace_text;
              max_hops;
              dests;
              grid;
              windows;
              supervise = cfg.supervise;
              ckpt_path =
                (match cfg.ckpt_dir with
                | Some d ->
                  (* the path is per worker-id; filled in at send time *)
                  Some d
                | None -> None);
              fingerprint;
              domains = cfg.worker_domains;
            }
        in
        let job_for w =
          match job with
          | Proto.Job j ->
            Proto.Job
              {
                j with
                ckpt_path =
                  Option.map
                    (fun d -> Filename.concat d (Printf.sprintf "shard-worker-%d.ckpt" w))
                    j.ckpt_path;
              }
          | m -> m
        in
        let ready_ids () =
          Array.to_list ws
          |> List.filter_map (fun w -> if w.ready && w.conn <> None then Some w.id else None)
        in
        let rec kill_and_reap w =
          (match w.conn with
          | Some fd ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            w.conn <- None
          | None -> ());
          w.ready <- false;
          if w.pid > 0 then begin
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
            w.pid <- 0
          end
        and send_to w msg =
          match w.conn with
          | None -> false
          | Some fd -> (
            try
              Frame.write fd (Proto.encode_to_worker msg);
              true
            with Unix.Unix_error _ ->
              handle_death w;
              false)
        and handle_death w =
          kill_and_reap w;
          if w.respawns >= cfg.max_respawns then w.gone <- true
          else
            w.next_spawn_at <-
              clock () +. (cfg.respawn_backoff *. (2. ** float_of_int (max 0 w.respawns)));
          (* move this worker's unacknowledged sources to ring successors;
             a successor at its in-flight window keeps the slot Pending and
             the main loop's dispatch_pending sends it as acks free space *)
          w.inflight <- 0;
          Array.iteri
            (fun i st ->
              match st with
              | Assigned owner when owner = w.id ->
                incr st_reassigned;
                Metrics.incr m_reassigned;
                slot_state.(i) <- Pending;
                let targets = ready_ids () in
                if targets <> [] then begin
                  let source = slots.(i) in
                  let to_worker = Ring.assign ring ~alive:targets source in
                  Timeline.record (Reassign { source; from_worker = w.id; to_worker });
                  let succ = ws.(to_worker) in
                  if
                    succ.inflight < cfg.max_inflight
                    && send_to succ (Proto.Compute { slot = i; source })
                  then begin
                    slot_state.(i) <- Assigned to_worker;
                    succ.inflight <- succ.inflight + 1
                  end
                end
              | _ -> ())
            slot_state
        in
        let dispatch_pending () =
          if not !dispatched then
            dispatched :=
              Array.for_all (fun w -> w.gone || w.ready) ws
              && Array.exists (fun w -> w.ready) ws;
          if !dispatched then begin
            let targets = ready_ids () in
            if targets <> [] then
              Array.iteri
                (fun i st ->
                  match st with
                  | Pending ->
                    let source = slots.(i) in
                    let to_worker = Ring.assign ring ~alive:targets source in
                    let owner = ws.(to_worker) in
                    if
                      owner.inflight < cfg.max_inflight
                      && send_to owner (Proto.Compute { slot = i; source })
                    then begin
                      slot_state.(i) <- Assigned to_worker;
                      owner.inflight <- owner.inflight + 1
                    end
                  | _ -> ())
                slot_state
          end
        in
        let fire_chaos () =
          let rec go () =
            match !chaos with
            | e :: rest when e.Faultgen.after_results <= !acked ->
              chaos := rest;
              let w = ws.(e.victim mod cfg.workers) in
              Timeline.record
                (Mark
                   {
                     name =
                       Printf.sprintf "chaos:%s:worker-%d"
                         (Faultgen.shard_fault_name e.shard_fault)
                         w.id;
                   });
              (match e.shard_fault with
              | Faultgen.Worker_kill ->
                if w.pid > 0 then ( try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
              | Faultgen.Worker_hang ->
                if w.pid > 0 then ( try Unix.kill w.pid Sys.sigstop with Unix.Unix_error _ -> ())
              | Faultgen.Sock_corrupt -> w.mangle_next <- true);
              go ()
            | _ -> ()
          in
          go ()
        in
        let handle_msg w msg =
          w.last_seen <- clock ();
          match (msg : Proto.from_worker) with
          | Hello _ -> ()
          | Pong -> ()
          | Ready { worker = _; resumed } ->
            let rejoin = w.ready = false && w.respawns > 0 in
            w.ready <- true;
            if rejoin then begin
              incr st_rejoins;
              Metrics.incr m_rejoins;
              Timeline.record (Worker_rejoin { worker = w.id; resumed })
            end;
            dispatch_pending ()
          | Result { slot; source = _; partial } ->
            if slot < 0 || slot >= nslots then handle_death w
            else begin
              match slot_state.(slot) with
              | Acked _ | Degr _ ->
                incr st_dups;
                Metrics.incr m_duplicates
              | Pending | Assigned _ ->
                (match slot_state.(slot) with
                | Assigned owner -> ws.(owner).inflight <- max 0 (ws.(owner).inflight - 1)
                | _ -> ());
                slot_state.(slot) <- Acked partial;
                incr acked;
                fire_chaos ()
            end
          | Failed { slot; source; attempts; reason } ->
            if slot < 0 || slot >= nslots then handle_death w
            else begin
              match slot_state.(slot) with
              | Acked _ | Degr _ ->
                incr st_dups;
                Metrics.incr m_duplicates
              | Pending | Assigned _ ->
                (match slot_state.(slot) with
                | Assigned owner -> ws.(owner).inflight <- max 0 (ws.(owner).inflight - 1)
                | _ -> ());
                slot_state.(slot) <- Degr { Supervise.item = source; attempts; reason };
                incr degraded_n;
                Timeline.record (Quarantine { item = source; attempts })
            end
        in
        let handle_fd w =
          match w.conn with
          | None -> ()
          | Some fd -> (
            let mangle = w.mangle_next in
            w.mangle_next <- false;
            match Frame.read ~mangle fd with
            | Error `Eof -> handle_death w
            | Error `Corrupt ->
              incr st_corrupt;
              Metrics.incr m_corrupt;
              Timeline.record (Frame_corrupt { worker = w.id });
              handle_death w
            | Error `Timeout -> handle_death w (* stalled mid-frame *)
            | Ok s -> (
              match Proto.decode_from_worker s with
              | Error _ -> handle_death w
              | Ok msg -> handle_msg w msg))
        in
        let accept_conn () =
          match Unix.accept listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _ -> (
            (try
               Unix.setsockopt_float fd Unix.SO_RCVTIMEO cfg.heartbeat_timeout;
               Unix.setsockopt_float fd Unix.SO_SNDTIMEO cfg.heartbeat_timeout
             with Unix.Unix_error _ -> ());
            match Frame.read fd with
            | Ok s -> (
              match Proto.decode_from_worker s with
              | Ok (Hello { worker }) when worker >= 0 && worker < cfg.workers && not ws.(worker).gone ->
                let w = ws.(worker) in
                (match w.conn with
                | Some old -> ( try Unix.close old with Unix.Unix_error _ -> ())
                | None -> ());
                w.conn <- Some fd;
                w.ready <- false;
                w.last_seen <- clock ();
                ignore (send_to w (job_for worker))
              | _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()))
            | Error _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()))
        in
        let respawn_due () =
          Array.iter
            (fun w ->
              if (not w.gone) && w.pid = 0 && clock () >= w.next_spawn_at then begin
                w.respawns <- w.respawns + 1;
                w.pid <- spawn_worker cfg ~sock ~id:w.id;
                w.ready <- false;
                w.last_seen <- clock ();
                incr st_spawns;
                Metrics.incr m_spawns;
                Timeline.record (Worker_spawn { worker = w.id; pid = w.pid })
              end)
            ws
        in
        let check_timeouts () =
          Array.iter
            (fun w ->
              if w.pid > 0 && clock () -. w.last_seen > cfg.heartbeat_timeout then begin
                incr st_misses;
                Metrics.incr m_misses;
                Timeline.record (Heartbeat_miss { worker = w.id });
                handle_death w
              end)
            ws
        in
        let last_ping = ref 0. in
        let heartbeats () =
          let now = clock () in
          if now -. !last_ping >= cfg.heartbeat_interval then begin
            last_ping := now;
            Array.iter (fun w -> if w.ready then ignore (send_to w Proto.Ping)) ws
          end
        in
        let started = clock () in
        let budget_expired () =
          match cfg.budget_seconds with Some b -> clock () -. started > b | None -> false
        in
        let shutdown_all () =
          Array.iter
            (fun w ->
              ignore (match w.conn with Some _ -> send_to w Proto.Shutdown | None -> false))
            ws;
          Array.iter kill_and_reap ws;
          restore ()
        in
        let finish r =
          shutdown_all ();
          r
        in
        let rec loop () =
          if !acked + !degraded_n >= nslots then
            finish (merge_result ~partial:false ~slot_state ~acked:!acked ~stats_of)
          else if budget_expired () then
            finish (merge_result ~partial:true ~slot_state ~acked:!acked ~stats_of)
          else if Array.for_all (fun w -> w.gone) ws then
            finish
              (Err.errorf Compute
                 "shard: all %d workers lost (respawn budget exhausted) with %d/%d sources \
                  unaccounted"
                 cfg.workers
                 (nslots - !acked - !degraded_n)
                 nslots)
          else begin
            respawn_due ();
            let conns = Array.to_list ws |> List.filter_map (fun w -> w.conn) in
            let readable =
              match Unix.select (listen_fd :: conns) [] [] (cfg.heartbeat_interval /. 2.) with
              | r, _, _ -> r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
            in
            if List.memq listen_fd readable then accept_conn ();
            Array.iter
              (fun w ->
                match w.conn with
                | Some fd when List.memq fd readable -> handle_fd w
                | _ -> ())
              ws;
            heartbeats ();
            check_timeouts ();
            dispatch_pending ();
            loop ()
          end
        in
        (try loop ()
         with e ->
           shutdown_all ();
           raise e)
    end
  end
