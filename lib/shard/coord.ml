module Delay_cdf = Omn_core.Delay_cdf
module Trace = Omn_temporal.Trace
module Trace_io = Omn_temporal.Trace_io
module Supervise = Omn_resilience.Supervise
module Faultgen = Omn_robust.Faultgen
module Err = Omn_robust.Err
module Retry_io = Omn_robust.Retry_io
module Timeline = Omn_obs.Timeline
module Metrics = Omn_obs.Metrics
module Sha256 = Omn_obs.Sha256

let m_spawns = Metrics.counter "shard.worker_spawns"
let m_misses = Metrics.counter "shard.heartbeat_misses"
let m_corrupt = Metrics.counter "shard.frame_corrupt"
let m_reassigned = Metrics.counter "shard.reassigned_sources"
let m_rejoins = Metrics.counter "shard.worker_rejoins"
let m_duplicates = Metrics.counter "shard.duplicate_results"
let m_auth_rejects = Metrics.counter "shard.net.auth_rejects"
let m_partitions = Metrics.counter "shard.net.partitions"
let m_ship_bytes = Metrics.counter "shard.net.trace_bytes_shipped"
let m_cache_hits = Metrics.counter "shard.net.trace_cache_hits"
let m_dup_frames = Metrics.counter "shard.net.dup_frames"
let m_joins = Metrics.counter "shard.members_joined"
let m_leaves = Metrics.counter "shard.members_left"

type spawn = Spawn_exec | Spawn_fork

type config = {
  workers : int;
  worker_domains : int;
  vnodes : int;
  max_inflight : int;
  spawn : spawn;
  heartbeat_interval : float;
  heartbeat_timeout : float;
  max_respawns : int;
  respawn_backoff : float;
  supervise : (int * float * float * int) option;
  ckpt_dir : string option;
  budget_seconds : float option;
  chaos : Faultgen.shard_event list;
  sock_path : string option;
  listen : Transport.addr option;
  peers : Transport.addr list;
  auth_key : string option;
  worker_trace_cache : string option;
  on_partial : (Omn_temporal.Node.t -> Delay_cdf.partial -> unit) option;
  telemetry : bool;
  stats_interval : float;
  stat_addr : Transport.addr option;
  on_stat_bound : (Transport.addr -> unit) option;
}

let default ~workers =
  {
    workers;
    worker_domains = 1;
    vnodes = 64;
    max_inflight = 32;
    spawn = Spawn_exec;
    heartbeat_interval = 0.25;
    heartbeat_timeout = 5.;
    max_respawns = 2;
    respawn_backoff = 0.1;
    supervise = None;
    ckpt_dir = None;
    budget_seconds = None;
    chaos = [];
    sock_path = None;
    listen = None;
    peers = [];
    auth_key = None;
    worker_trace_cache = None;
    on_partial = None;
    telemetry = false;
    stats_interval = 1.;
    stat_addr = None;
    on_stat_bound = None;
  }

type telemetry = {
  tw_worker : int;
  tw_metrics : Metrics.snapshot;
  tw_events : (int * Timeline.entry) list;
  tw_dropped : (int * int) list;
  tw_offset : float;
  tw_rtt : float;
}

(* coordinator-side accumulator for one worker's pushes *)
type tel_acc = {
  mutable ta_metrics : Metrics.snapshot;  (* latest full snapshot wins *)
  mutable ta_segments : (int * Timeline.entry) list list;  (* newest first *)
  mutable ta_dropped : (int * int) list;
  mutable ta_offset : float;
  mutable ta_rtt : float;  (* lowest-RTT sample keeps the offset *)
  mutable ta_last_tcoord : float;  (* echo of the latest answered pull *)
}

type stats = {
  spawns : int;
  heartbeat_misses : int;
  frame_corrupts : int;
  reassigned : int;
  rejoins : int;
  duplicates : int;
  auth_rejects : int;
  partitions : int;
  trace_ship_bytes : int;
  trace_cache_hits : int;
  joins : int;
  leaves : int;
  shard_map_sha256 : string;
  fleet : telemetry list;
}

type kind = Spawned | Dialed of Transport.addr

(* per-worker runtime state *)
type wstate = {
  id : int;
  kind : kind;
  initial : bool;  (* part of the fleet the dispatch barrier waits for *)
  mutable pid : int;  (* 0 = not running / not ours *)
  mutable conn : Unix.file_descr option;
  mutable ready : bool;
  mutable had_ready : bool;  (* completed a handshake at least once *)
  mutable shipped : bool;  (* trace bytes shipped in the current session *)
  mutable last_seen : float;
  mutable respawns : int;  (* -1 before the first spawn / dial *)
  mutable next_spawn_at : float;
  mutable gone : bool;  (* respawn / redial budget exhausted *)
  mutable left : bool;  (* departed gracefully: never respawn *)
  mutable mangle_next : bool;  (* sock-corrupt chaos flag *)
  mutable dup_next : bool;  (* net-dup chaos flag *)
  mutable slow_until : float;  (* net-slow chaos window *)
  mutable inflight : int;  (* slots currently Assigned to this worker *)
}

type sstate =
  | Pending
  | Assigned of int
  | Acked of string
  | Degr of Supervise.failure

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A peer that refused our credentials or speaks another protocol will
   refuse every retry identically — abort. A handshake that timed out
   or hit a dropped link may succeed on redial. *)
let auth_fatal (e : Err.t) =
  e.code = Err.Proto || contains e.msg "rejected by peer" || contains e.msg "key proof"

let env_with_key key =
  let keep s = not (String.length s >= 14 && String.equal (String.sub s 0 14) "OMN_SHARD_KEY=") in
  let base = List.filter keep (Array.to_list (Unix.environment ())) in
  Array.of_list (base @ [ "OMN_SHARD_KEY=" ^ key ])

let spawn_worker ?key cfg ~connect ~id =
  let key = match key with Some _ as k -> k | None -> cfg.auth_key in
  match cfg.spawn with
  | Spawn_exec ->
    let args =
      (* glued [--id=N]: a joiner's id is -1, which an option parser
         would otherwise read as an unknown flag *)
      [ Sys.executable_name; "worker"; Printf.sprintf "--id=%d" id; "--connect";
        Transport.to_string connect ]
      @ (match cfg.worker_trace_cache with
        | Some d -> [ "--trace-cache"; d ]
        | None -> [])
    in
    let argv = Array.of_list args in
    (match key with
    | Some k ->
      (* the key travels in the environment, not argv: ps must not
         leak it *)
      Unix.create_process_env Sys.executable_name argv (env_with_key k) Unix.stdin
        Unix.stdout Unix.stderr
    | None ->
      Unix.create_process Sys.executable_name argv Unix.stdin Unix.stdout
        Unix.stderr)
  | Spawn_fork -> (
    match Unix.fork () with
    | 0 ->
      (try
         ignore
           (Worker.main ~worker:id ~mode:(Worker.Dial connect) ?auth_key:key
              ?trace_cache:cfg.worker_trace_cache ())
       with _ -> ());
      Unix._exit 0
    | pid -> pid)

let run ?(max_hops = 10) ?sources ?dests ?grid ?windows ?(clock = Unix.gettimeofday) cfg trace =
  let n_initial = cfg.workers + List.length cfg.peers in
  if cfg.workers < 0 then Err.error Usage "shard: workers < 0"
  else if n_initial < 1 then Err.error Usage "shard: no workers (spawned or peers)"
  else if cfg.heartbeat_timeout <= 0. || cfg.heartbeat_interval <= 0. then
    Err.error Usage "shard: non-positive heartbeat parameters"
  else if cfg.max_inflight < 1 then Err.error Usage "shard: max_inflight < 1"
  else begin
    match
      (* workers checkpoint into cfg.ckpt_dir from their first batch on;
         create it up front so a missing directory can't crash-loop them
         through the whole respawn budget *)
      match cfg.ckpt_dir with
      | Some d when not (Sys.file_exists d) -> (
        try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
      | _ -> ()
    with
    | exception Unix.Unix_error (e, _, _) ->
      Err.errorf Io "shard: cannot create checkpoint dir: %s"
        (Unix.error_message e)
    | () ->
    let n = Trace.n_nodes trace in
    let sources = Option.value sources ~default:(List.init n (fun i -> i)) in
    let order = Delay_cdf.uniform_order sources in
    let slots = Array.of_list order in
    let nslots = Array.length slots in
    let trace_text = Trace_io.to_string trace in
    let trace_digest = Sha256.string trace_text in
    let fingerprint = Proto.job_fingerprint ~trace_text ~max_hops ~dests ~grid ~windows in
    let ring = ref (Ring.create ~vnodes:cfg.vnodes ~workers:n_initial ()) in
    let all_workers = List.init n_initial Fun.id in
    let shard_map_sha256 = Ring.map_sha256 !ring ~alive:all_workers ~sources:order in
    let merge_result ~partial ~slot_state ~acked ~stats_of =
      let merger = Delay_cdf.merger_create ~max_hops ?grid () in
      let degraded = ref [] in
      let bad = ref None in
      Array.iteri
        (fun i st ->
          match st with
          | Acked s -> (
            match Delay_cdf.partial_of_string s with
            | Ok p ->
              Delay_cdf.merger_add merger p;
              (match cfg.on_partial with
              | Some f -> f slots.(i) p
              | None -> ())
            | Error msg -> if !bad = None then bad := Some msg)
          | Degr f -> degraded := f :: !degraded
          | Pending | Assigned _ -> ())
        slot_state;
      match !bad with
      | Some msg -> Err.error Compute ("shard: " ^ msg)
      | None ->
        let progress =
          {
            Delay_cdf.sources_done = acked;
            sources_total = nslots;
            partial;
            degraded = List.rev !degraded;
            ckpt_fallback = false;
          }
        in
        Ok (Delay_cdf.merger_curves merger, progress, stats_of ())
    in
    let empty_stats () =
      {
        spawns = 0;
        heartbeat_misses = 0;
        frame_corrupts = 0;
        reassigned = 0;
        rejoins = 0;
        duplicates = 0;
        auth_rejects = 0;
        partitions = 0;
        trace_ship_bytes = 0;
        trace_cache_hits = 0;
        joins = 0;
        leaves = 0;
        shard_map_sha256;
        fleet = [];
      }
    in
    if nslots = 0 then merge_result ~partial:false ~slot_state:[||] ~acked:0 ~stats_of:empty_stats
    else begin
      let listen_addr =
        match (cfg.listen, cfg.sock_path) with
        | Some a, _ -> a
        | None, Some p -> Transport.Unix_path p
        | None, None ->
          Transport.Unix_path
            (Filename.concat (Filename.get_temp_dir_name ())
               (Printf.sprintf "omn-shard-%d-%d.sock" (Unix.getpid ())
                  (Hashtbl.hash fingerprint)))
      in
      (match listen_addr with
      | Transport.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | Transport.Tcp _ -> ());
      let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      match Transport.listen ~backlog:(n_initial + 8) listen_addr with
      | exception Unix.Unix_error (e, _, _) ->
        Sys.set_signal Sys.sigpipe old_sigpipe;
        Err.errorf Io "shard: cannot bind %s: %s"
          (Transport.to_string listen_addr)
          (Unix.error_message e)
      | listen_fd -> (
        let stat_bound =
          match cfg.stat_addr with
          | None -> Ok None
          | Some addr -> (
            match Transport.listen ~backlog:8 addr with
            | fd ->
              (match cfg.on_stat_bound with
              | Some f -> f (Transport.bound_addr fd addr)
              | None -> ());
              Ok (Some fd)
            | exception Unix.Unix_error (e, _, _) ->
              Err.errorf Io "shard: cannot bind stat addr %s: %s"
                (Transport.to_string addr) (Unix.error_message e))
        in
        match stat_bound with
        | Error e ->
          Sys.set_signal Sys.sigpipe old_sigpipe;
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          (match listen_addr with
          | Transport.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
          | Transport.Tcp _ -> ());
          Error e
        | Ok stat_fd ->
        let connect_addr = Transport.bound_addr listen_fd listen_addr in
        let restore () =
          Sys.set_signal Sys.sigpipe old_sigpipe;
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          (match stat_fd with
          | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
          | None -> ());
          match listen_addr with
          | Transport.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
          | Transport.Tcp _ -> ()
        in
        let new_wstate ~kind ~initial id =
          {
            id;
            kind;
            initial;
            pid = 0;
            conn = None;
            ready = false;
            had_ready = false;
            shipped = false;
            last_seen = 0.;
            respawns = -1;
            next_spawn_at = 0.;
            gone = false;
            left = false;
            mangle_next = false;
            dup_next = false;
            slow_until = 0.;
            inflight = 0;
          }
        in
        let ws : (int, wstate) Hashtbl.t = Hashtbl.create 16 in
        for id = 0 to cfg.workers - 1 do
          Hashtbl.replace ws id (new_wstate ~kind:Spawned ~initial:true id)
        done;
        List.iteri
          (fun i addr ->
            let id = cfg.workers + i in
            Hashtbl.replace ws id (new_wstate ~kind:(Dialed addr) ~initial:true id))
          cfg.peers;
        let next_id = ref n_initial in
        let workers_sorted () =
          Hashtbl.fold (fun _ w acc -> w :: acc) ws []
          |> List.sort (fun a b -> compare a.id b.id)
        in
        let iter_workers f = List.iter f (workers_sorted ()) in
        let slot_state = Array.make nslots Pending in
        let acked = ref 0 and degraded_n = ref 0 in
        let st_spawns = ref 0
        and st_misses = ref 0
        and st_corrupt = ref 0
        and st_reassigned = ref 0
        and st_rejoins = ref 0
        and st_dups = ref 0
        and st_auth_rejects = ref 0
        and st_partitions = ref 0
        and st_ship_bytes = ref 0
        and st_cache_hits = ref 0
        and st_joins = ref 0
        and st_leaves = ref 0 in
        let wtel : (int, tel_acc) Hashtbl.t = Hashtbl.create 8 in
        let tel_acc_for id =
          match Hashtbl.find_opt wtel id with
          | Some ta -> ta
          | None ->
            let ta =
              {
                ta_metrics = Metrics.empty_snapshot;
                ta_segments = [];
                ta_dropped = [];
                ta_offset = 0.;
                ta_rtt = infinity;
                ta_last_tcoord = neg_infinity;
              }
            in
            Hashtbl.replace wtel id ta;
            ta
        in
        let fleet_of () =
          Hashtbl.fold (fun id ta acc -> (id, ta) :: acc) wtel []
          |> List.sort (fun a b -> compare (fst a) (fst b))
          |> List.map (fun (id, ta) ->
                 {
                   tw_worker = id;
                   tw_metrics = ta.ta_metrics;
                   tw_events = List.concat (List.rev ta.ta_segments);
                   tw_dropped = ta.ta_dropped;
                   tw_offset = (if ta.ta_rtt = infinity then 0. else ta.ta_offset);
                   tw_rtt = (if ta.ta_rtt = infinity then 0. else ta.ta_rtt);
                 })
        in
        let stats_of () =
          {
            spawns = !st_spawns;
            heartbeat_misses = !st_misses;
            frame_corrupts = !st_corrupt;
            reassigned = !st_reassigned;
            rejoins = !st_rejoins;
            duplicates = !st_dups;
            auth_rejects = !st_auth_rejects;
            partitions = !st_partitions;
            trace_ship_bytes = !st_ship_bytes;
            trace_cache_hits = !st_cache_hits;
            joins = !st_joins;
            leaves = !st_leaves;
            shard_map_sha256;
            fleet = fleet_of ();
          }
        in
        let chaos = ref cfg.chaos in
        let bad_pids = ref [] in
        let fatal : Err.t option ref = ref None in
        let dispatched = ref false in
        let auth_state = Auth.state () in
        let job_for w =
          Proto.Job
            {
              trace_digest;
              worker = w;
              max_hops;
              dests;
              grid;
              windows;
              supervise = cfg.supervise;
              ckpt_path =
                Option.map
                  (fun d -> Filename.concat d (Printf.sprintf "shard-worker-%d.ckpt" w))
                  cfg.ckpt_dir;
              fingerprint;
              domains = cfg.worker_domains;
              telemetry = cfg.telemetry;
            }
        in
        let ready_ids () =
          workers_sorted ()
          |> List.filter_map (fun w ->
                 if w.ready && w.conn <> None && not w.left then Some w.id else None)
        in
        let close_conn w =
          match w.conn with
          | Some fd ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            w.conn <- None
          | None -> ()
        in
        let rec kill_and_reap w =
          close_conn w;
          w.ready <- false;
          if w.pid > 0 then begin
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            (* a signal landing mid-waitpid must not abandon the reap
               and leak a zombie *)
            (try Retry_io.eintr (fun () -> ignore (Unix.waitpid [] w.pid))
             with Unix.Unix_error _ -> ());
            w.pid <- 0
          end
        and send_to w msg =
          match w.conn with
          | None -> false
          | Some fd -> (
            try
              Frame.write fd (Proto.encode_to_worker msg);
              true
            with Unix.Unix_error _ ->
              handle_death w;
              false)
        (* move this worker's unacknowledged sources to ring successors;
           a successor at its in-flight window keeps the slot Pending and
           the main loop's dispatch_pending sends it as acks free space *)
        and reassign_assigned w =
          w.inflight <- 0;
          Array.iteri
            (fun i st ->
              match st with
              | Assigned owner when owner = w.id ->
                incr st_reassigned;
                Metrics.incr m_reassigned;
                slot_state.(i) <- Pending;
                let targets = ready_ids () in
                if targets <> [] then begin
                  let source = slots.(i) in
                  let to_worker = Ring.assign !ring ~alive:targets source in
                  Timeline.record (Reassign { source; from_worker = w.id; to_worker });
                  let succ = Hashtbl.find ws to_worker in
                  if
                    succ.inflight < cfg.max_inflight
                    && send_to succ (Proto.Compute { slot = i; source })
                  then begin
                    slot_state.(i) <- Assigned to_worker;
                    succ.inflight <- succ.inflight + 1
                  end
                end
              | _ -> ())
            slot_state
        and handle_death w =
          kill_and_reap w;
          if w.left then ()
          else if w.respawns >= cfg.max_respawns then w.gone <- true
          else
            w.next_spawn_at <-
              clock () +. (cfg.respawn_backoff *. (2. ** float_of_int (max 0 w.respawns)));
          reassign_assigned w
        in
        let handle_leave w =
          if not w.left then begin
            w.left <- true;
            incr st_leaves;
            Metrics.incr m_leaves;
            Timeline.record (Member_leave { worker = w.id });
            w.ready <- false;
            reassign_assigned w;
            ignore (send_to w Proto.Shutdown);
            kill_and_reap w
          end
        in
        (* drop the link, leave the process (if any) running: the worker
           must reconnect — or be heartbeat-escalated into a real death *)
        let partition w =
          incr st_partitions;
          Metrics.incr m_partitions;
          close_conn w;
          w.ready <- false;
          w.last_seen <- clock ();
          reassign_assigned w;
          match w.kind with
          | Dialed _ -> w.next_spawn_at <- clock ()
          | Spawned -> ()
        in
        let auth_reject reason =
          incr st_auth_rejects;
          Metrics.incr m_auth_rejects;
          Timeline.record (Auth_reject { reason })
        in
        let admit_join ~kind id =
          let w = new_wstate ~kind ~initial:false id in
          Hashtbl.replace ws id w;
          ring := Ring.add !ring id;
          incr st_joins;
          Metrics.incr m_joins;
          Timeline.record (Member_join { worker = id });
          w
        in
        let dispatch_pending () =
          if not !dispatched then
            dispatched :=
              List.for_all
                (fun w -> (not w.initial) || w.gone || w.left || w.ready)
                (workers_sorted ())
              && List.exists (fun w -> w.ready) (workers_sorted ());
          if !dispatched then begin
            let targets = ready_ids () in
            if targets <> [] then
              Array.iteri
                (fun i st ->
                  match st with
                  | Pending ->
                    let source = slots.(i) in
                    let to_worker = Ring.assign !ring ~alive:targets source in
                    let owner = Hashtbl.find ws to_worker in
                    if
                      owner.inflight < cfg.max_inflight
                      && send_to owner (Proto.Compute { slot = i; source })
                    then begin
                      slot_state.(i) <- Assigned to_worker;
                      owner.inflight <- owner.inflight + 1
                    end
                  | _ -> ())
                slot_state
          end
        in
        let fire_chaos () =
          let rec go () =
            match !chaos with
            | e :: rest when e.Faultgen.after_results <= !acked ->
              chaos := rest;
              let active = List.filter (fun w -> not (w.gone || w.left)) (workers_sorted ()) in
              if active <> [] then begin
                let w = List.nth active (e.victim mod List.length active) in
                Timeline.record
                  (Mark
                     {
                       name =
                         Printf.sprintf "chaos:%s:worker-%d"
                           (Faultgen.shard_fault_name e.shard_fault)
                           w.id;
                     });
                match e.shard_fault with
                | Faultgen.Worker_kill ->
                  if w.pid > 0 then (
                    try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
                  else partition w (* remote process: a kill is a dead link *)
                | Faultgen.Worker_hang ->
                  if w.pid > 0 then (
                    try Unix.kill w.pid Sys.sigstop with Unix.Unix_error _ -> ())
                  else partition w
                | Faultgen.Sock_corrupt -> w.mangle_next <- true
                | Faultgen.Net_partition -> partition w
                | Faultgen.Net_slow ->
                  w.slow_until <-
                    clock ()
                    +. Float.min
                         (4. *. cfg.heartbeat_interval)
                         (cfg.heartbeat_timeout /. 4.)
                | Faultgen.Net_dup -> w.dup_next <- true
                | Faultgen.Auth_bad -> (
                  match cfg.auth_key with
                  | None -> () (* nothing to prove without a key *)
                  | Some key ->
                    bad_pids :=
                      spawn_worker ~key:(key ^ "-wrong") cfg ~connect:connect_addr
                        ~id:(-1)
                      :: !bad_pids)
                | Faultgen.Worker_join ->
                  let id = !next_id in
                  incr next_id;
                  let j = admit_join ~kind:Spawned id in
                  j.next_spawn_at <- clock ()
                | Faultgen.Worker_leave -> handle_leave w
              end;
              go ()
            | _ -> ()
          in
          go ()
        in
        let handle_msg w msg =
          w.last_seen <- clock ();
          match (msg : Proto.from_worker) with
          | Hello _ ->
            (* session start on a dialed connection (accepted ones
               consume Hello in accept_conn) *)
            w.ready <- false;
            w.shipped <- false;
            ignore (send_to w (job_for w.id))
          | Pong -> ()
          | Need_trace { digest } ->
            if String.equal digest trace_digest then begin
              w.shipped <- true;
              let bytes = String.length trace_text in
              st_ship_bytes := !st_ship_bytes + bytes;
              Metrics.add m_ship_bytes bytes;
              Timeline.record (Trace_ship { worker = w.id; bytes });
              ignore (send_to w (Proto.Trace_data { digest; text = trace_text }))
            end
            else handle_death w (* asking for some other trace: confused peer *)
          | Leave _ -> handle_leave w
          | Stats_push { worker = _; t_coord; t_worker; metrics; events; dropped } ->
            (* NTP-style offset: the worker stamped t_worker between our
               send (t_coord, echoed back) and our receive; assuming a
               symmetric link, worker_clock - coord_clock ~ t_worker -
               midpoint. The lowest-RTT sample bounds the error
               tightest, so it keeps the offset. Wall clocks on both
               ends, deliberately not [clock ()] (tests fake that). *)
            let t_recv = Unix.gettimeofday () in
            let rtt = Float.max 0. (t_recv -. t_coord) in
            let ta = tel_acc_for w.id in
            ta.ta_metrics <- metrics;
            if events <> [] then ta.ta_segments <- events :: ta.ta_segments;
            ta.ta_dropped <- dropped;
            ta.ta_last_tcoord <- Float.max ta.ta_last_tcoord t_coord;
            if rtt <= ta.ta_rtt then begin
              ta.ta_rtt <- rtt;
              ta.ta_offset <- t_worker -. ((t_coord +. t_recv) /. 2.)
            end
          | Ready { worker = _; resumed } ->
            let rejoin = (not w.ready) && w.had_ready in
            if not w.shipped then begin
              incr st_cache_hits;
              Metrics.incr m_cache_hits;
              Timeline.record (Trace_cache_hit { worker = w.id })
            end;
            w.ready <- true;
            w.had_ready <- true;
            if rejoin then begin
              incr st_rejoins;
              Metrics.incr m_rejoins;
              Timeline.record (Worker_rejoin { worker = w.id; resumed })
            end;
            dispatch_pending ()
          | Result { slot; source = _; partial } ->
            if slot < 0 || slot >= nslots then handle_death w
            else begin
              match slot_state.(slot) with
              | Acked _ | Degr _ ->
                incr st_dups;
                Metrics.incr m_duplicates
              | Pending | Assigned _ ->
                (match slot_state.(slot) with
                | Assigned owner ->
                  let o = Hashtbl.find ws owner in
                  o.inflight <- max 0 (o.inflight - 1)
                | _ -> ());
                slot_state.(slot) <- Acked partial;
                incr acked;
                fire_chaos ()
            end
          | Failed { slot; source; attempts; reason } ->
            if slot < 0 || slot >= nslots then handle_death w
            else begin
              match slot_state.(slot) with
              | Acked _ | Degr _ ->
                incr st_dups;
                Metrics.incr m_duplicates
              | Pending | Assigned _ ->
                (match slot_state.(slot) with
                | Assigned owner ->
                  let o = Hashtbl.find ws owner in
                  o.inflight <- max 0 (o.inflight - 1)
                | _ -> ());
                slot_state.(slot) <- Degr { Supervise.item = source; attempts; reason };
                incr degraded_n;
                Timeline.record (Quarantine { item = source; attempts })
            end
        in
        let handle_fd w =
          match w.conn with
          | None -> ()
          | Some fd -> (
            (* net-slow: delay processing of this worker's frames for a
               bounded window strictly below the heartbeat timeout — a
               slow link must never be declared dead *)
            let now = clock () in
            if now < w.slow_until then
              Unix.sleepf (Float.min 0.2 (w.slow_until -. now));
            let mangle = w.mangle_next in
            w.mangle_next <- false;
            match Frame.read ~mangle fd with
            | Error `Eof -> handle_death w
            | Error `Corrupt ->
              incr st_corrupt;
              Metrics.incr m_corrupt;
              Timeline.record (Frame_corrupt { worker = w.id });
              handle_death w
            | Error `Timeout -> handle_death w (* stalled mid-frame *)
            | Ok s -> (
              match Proto.decode_from_worker s with
              | Error _ -> handle_death w
              | Ok msg -> (
                match msg with
                | Proto.Result _ when w.dup_next ->
                  (* net-dup: a retransmitted result frame — the second
                     delivery must die in the duplicate check *)
                  w.dup_next <- false;
                  Metrics.incr m_dup_frames;
                  handle_msg w msg;
                  handle_msg w msg
                | _ -> handle_msg w msg)))
        in
        let register_session w fd =
          (match w.conn with
          | Some old -> ( try Unix.close old with Unix.Unix_error _ -> ())
          | None -> ());
          w.conn <- Some fd;
          w.ready <- false;
          w.shipped <- false;
          w.last_seen <- clock ()
        in
        let accept_conn () =
          match Retry_io.eintr (fun () -> Unix.accept listen_fd) with
          | exception Unix.Unix_error _ -> ()
          | fd, _ -> (
            (try Transport.set_deadline fd cfg.heartbeat_timeout
             with Unix.Unix_error _ -> ());
            let close () = try Unix.close fd with Unix.Unix_error _ -> () in
            let hello () =
              match Frame.read fd with
              | Ok s -> (
                match Proto.decode_from_worker s with
                | Ok (Hello { worker = -1 }) ->
                  (* authenticated joiner: assign the next id and admit
                     it into the ring *)
                  let id = !next_id in
                  incr next_id;
                  let w = admit_join ~kind:Spawned id in
                  register_session w fd;
                  ignore (send_to w (job_for id))
                | Ok (Hello { worker }) -> (
                  match Hashtbl.find_opt ws worker with
                  | Some w when (not w.gone) && not w.left ->
                    register_session w fd;
                    ignore (send_to w (job_for worker))
                  | _ -> close ())
                | Ok _ -> close ()
                | Error _
                  when String.length s >= 8
                       && String.equal (String.sub s 0 8) "omn-auth" ->
                  (* an authenticating dialer knocked on a key-less
                     coordinator: typed rejection, not a silent drop *)
                  (try
                     Frame.write fd "omn-auth-err E-AUTH coordinator has no key configured"
                   with _ -> ());
                  auth_reject "peer attempted auth but no key is configured";
                  close ()
                | Error _ -> close ())
              | Error _ -> close ()
            in
            match cfg.auth_key with
            | Some key -> (
              match Auth.server ~state:auth_state ~key fd with
              | Ok () -> hello ()
              | Error e ->
                auth_reject e.Err.msg;
                close ())
            | None -> hello ())
        in
        let backoff_for w =
          cfg.respawn_backoff *. (2. ** float_of_int (max 0 w.respawns))
        in
        let respawn_due () =
          iter_workers (fun w ->
              if (not w.gone) && not w.left then
                match w.kind with
                | Spawned ->
                  if w.pid = 0 && w.conn = None && clock () >= w.next_spawn_at then begin
                    w.respawns <- w.respawns + 1;
                    w.pid <- spawn_worker cfg ~connect:connect_addr ~id:w.id;
                    w.ready <- false;
                    w.last_seen <- clock ();
                    incr st_spawns;
                    Metrics.incr m_spawns;
                    Timeline.record (Worker_spawn { worker = w.id; pid = w.pid })
                  end
                | Dialed addr ->
                  if w.conn = None && clock () >= w.next_spawn_at then begin
                    w.respawns <- w.respawns + 1;
                    match Transport.dial ~attempts:1 ~connect_timeout:cfg.heartbeat_timeout addr with
                    | Ok fd -> (
                      (try Transport.set_deadline fd cfg.heartbeat_timeout
                       with Unix.Unix_error _ -> ());
                      let authed =
                        match cfg.auth_key with
                        | Some key -> Auth.client ~key fd
                        | None -> Ok ()
                      in
                      match authed with
                      | Ok () ->
                        register_session w fd;
                        incr st_spawns;
                        Metrics.incr m_spawns;
                        Timeline.record (Worker_spawn { worker = w.id; pid = 0 })
                      | Error e ->
                        (try Unix.close fd with Unix.Unix_error _ -> ());
                        if auth_fatal e then fatal := Some e
                        else if w.respawns >= cfg.max_respawns then w.gone <- true
                        else w.next_spawn_at <- clock () +. backoff_for w)
                    | Error _ ->
                      if w.respawns >= cfg.max_respawns then w.gone <- true
                      else w.next_spawn_at <- clock () +. backoff_for w
                  end)
        in
        let check_timeouts () =
          iter_workers (fun w ->
              if
                (w.pid > 0 || w.conn <> None)
                && (not w.left)
                && clock () -. w.last_seen > cfg.heartbeat_timeout
              then begin
                incr st_misses;
                Metrics.incr m_misses;
                Timeline.record (Heartbeat_miss { worker = w.id });
                handle_death w
              end)
        in
        let last_ping = ref 0. in
        let heartbeats () =
          let now = clock () in
          if now -. !last_ping >= cfg.heartbeat_interval then begin
            last_ping := now;
            iter_workers (fun w -> if w.ready then ignore (send_to w Proto.Ping))
          end
        in
        let last_pull = ref 0. in
        let stats_pulls () =
          if cfg.telemetry then begin
            let now = clock () in
            if now -. !last_pull >= cfg.stats_interval then begin
              last_pull := now;
              iter_workers (fun w ->
                  if w.ready && w.conn <> None && not w.left then
                    ignore
                      (send_to w (Proto.Stats_pull { t_coord = Unix.gettimeofday () })))
            end
          end
        in
        (* One last pull-and-drain before the results merge, so the
           final artifacts see every worker's complete registry and
           timeline tail. Bounded by the heartbeat timeout: a worker
           dying here costs its tail, never the run. *)
        let final_stats_pull () =
          if cfg.telemetry then begin
            let t_final = Unix.gettimeofday () in
            let expected =
              workers_sorted ()
              |> List.filter_map (fun w ->
                     if w.conn <> None && w.had_ready && not w.left then
                       if send_to w (Proto.Stats_pull { t_coord = t_final }) then Some w.id
                       else None
                     else None)
            in
            let outstanding () =
              List.filter
                (fun id ->
                  match Hashtbl.find_opt ws id with
                  | Some w when w.conn <> None -> (
                    match Hashtbl.find_opt wtel id with
                    | Some ta -> ta.ta_last_tcoord < t_final
                    | None -> true)
                  | _ -> false)
                expected
            in
            let deadline = clock () +. cfg.heartbeat_timeout in
            let rec drain () =
              match outstanding () with
              | [] -> ()
              | ids when clock () < deadline ->
                let conns =
                  List.filter_map
                    (fun id -> Option.bind (Hashtbl.find_opt ws id) (fun w -> w.conn))
                    ids
                in
                (match Retry_io.eintr (fun () -> Unix.select conns [] [] 0.05) with
                | [], _, _ -> ()
                | readable, _, _ ->
                  iter_workers (fun w ->
                      match w.conn with
                      | Some fd when List.memq fd readable -> handle_fd w
                      | _ -> ()));
                drain ()
              | _ -> ()
            in
            if expected <> [] then drain ()
          end
        in
        (* Live Prometheus exposition: the coordinator's own registry
           (worker -1) merged with each worker's latest pushed snapshot.
           One short-deadline request per select round; a stuck client
           can delay, never wedge, the run. *)
        let live_exposition () =
          let snaps =
            Metrics.tag_worker ~worker:(-1) (Metrics.snapshot ())
            :: (Hashtbl.fold (fun id ta acc -> (id, ta) :: acc) wtel []
               |> List.sort (fun a b -> compare (fst a) (fst b))
               |> List.map (fun (id, ta) -> Metrics.tag_worker ~worker:id ta.ta_metrics))
          in
          Metrics.to_prometheus (Metrics.merge_all snaps)
        in
        let serve_stat lfd =
          match Retry_io.eintr (fun () -> Unix.accept lfd) with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
            (try Transport.set_deadline fd 1. with Unix.Unix_error _ -> ());
            let buf = Bytes.create 1024 in
            let rec drain_req acc =
              if contains acc "\r\n\r\n" || String.length acc > 8192 then ()
              else
                match Unix.read fd buf 0 1024 with
                | 0 -> ()
                | n -> drain_req (acc ^ Bytes.sub_string buf 0 n)
                | exception Unix.Unix_error _ -> ()
            in
            drain_req "";
            let body = live_exposition () in
            let resp =
              Printf.sprintf
                "HTTP/1.1 200 OK\r\n\
                 Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                 Content-Length: %d\r\n\
                 Connection: close\r\n\
                 \r\n\
                 %s"
                (String.length body) body
            in
            let rec wr off len =
              if len > 0 then
                match Unix.write_substring fd resp off len with
                | 0 -> ()
                | n -> wr (off + n) (len - n)
                | exception Unix.Unix_error _ -> ()
            in
            wr 0 (String.length resp);
            (try Unix.close fd with Unix.Unix_error _ -> ())
        in
        let started = clock () in
        let budget_expired () =
          match cfg.budget_seconds with Some b -> clock () -. started > b | None -> false
        in
        let shutdown_all () =
          iter_workers (fun w ->
              ignore (match w.conn with Some _ -> send_to w Proto.Shutdown | None -> false));
          iter_workers kill_and_reap;
          List.iter
            (fun pid ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              try Retry_io.eintr (fun () -> ignore (Unix.waitpid [] pid))
              with Unix.Unix_error _ -> ())
            !bad_pids;
          restore ()
        in
        let finish r =
          shutdown_all ();
          r
        in
        let drain_bad_joiners () =
          (* a chaos-injected wrong-key joiner may still be dialing when
             the last result lands; its typed rejection is part of the
             run's assertion surface, so keep servicing the listener
             until each one has exited (the client exits on the
             auth-err frame) or the heartbeat timeout passes *)
          if !bad_pids <> [] then begin
            let deadline = clock () +. cfg.heartbeat_timeout in
            let alive pid =
              match Retry_io.eintr (fun () -> Unix.waitpid [ Unix.WNOHANG ] pid) with
              | 0, _ -> true
              | _ -> false
              | exception Unix.Unix_error _ -> false
            in
            let rec go () =
              bad_pids := List.filter alive !bad_pids;
              if !bad_pids <> [] && clock () < deadline then begin
                (match
                   Retry_io.eintr (fun () -> Unix.select [ listen_fd ] [] [] 0.05)
                 with
                | [], _, _ -> ()
                | _ -> accept_conn ());
                go ()
              end
            in
            go ()
          end
        in
        let rec loop () =
          if !acked + !degraded_n >= nslots then begin
            drain_bad_joiners ();
            final_stats_pull ();
            finish (merge_result ~partial:false ~slot_state ~acked:!acked ~stats_of)
          end
          else if budget_expired () then begin
            final_stats_pull ();
            finish (merge_result ~partial:true ~slot_state ~acked:!acked ~stats_of)
          end
          else
            match !fatal with
            | Some e -> finish (Error e)
            | None ->
              if List.for_all (fun w -> w.gone || w.left) (workers_sorted ()) then
                finish
                  (Err.errorf Compute
                     "shard: all %d workers lost (respawn budget exhausted) with %d/%d sources \
                      unaccounted"
                     (Hashtbl.length ws)
                     (nslots - !acked - !degraded_n)
                     nslots)
              else begin
                respawn_due ();
                let conns = workers_sorted () |> List.filter_map (fun w -> w.conn) in
                let stat_fds = match stat_fd with Some fd -> [ fd ] | None -> [] in
                let readable =
                  (* EINTR must retry, not skip the poll: dropping a
                     round under a signal storm starves last_seen and
                     false-positives healthy workers *)
                  match
                    Retry_io.eintr (fun () ->
                        Unix.select ((listen_fd :: stat_fds) @ conns) [] []
                          (cfg.heartbeat_interval /. 2.))
                  with
                  | r, _, _ -> r
                in
                if List.memq listen_fd readable then accept_conn ();
                (match stat_fd with
                | Some fd when List.memq fd readable -> serve_stat fd
                | _ -> ());
                iter_workers (fun w ->
                    match w.conn with
                    | Some fd when List.memq fd readable -> handle_fd w
                    | _ -> ());
                heartbeats ();
                check_timeouts ();
                stats_pulls ();
                dispatch_pending ();
                loop ()
              end
        in
        (try loop ()
         with e ->
           shutdown_all ();
           raise e))
    end
  end
