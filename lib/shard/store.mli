(** Content-addressed trace store for digest-addressed shipping.

    Workers receive the job's trace by its SHA-256 digest and fetch the
    bytes from this store when they have them ([--trace-cache DIR]),
    asking the coordinator to ship the full text only on a miss — so a
    rejoining or resuming worker re-ships zero bytes. Entries are
    CRC-framed like checkpoints, written atomically, and verified
    against the digest on read: corruption is a miss (re-fetch), never
    a wrong trace. *)

val magic : string
(** File magic, ["omn-trace-store 1\n"]. *)

val path : dir:string -> digest:string -> string
(** [DIR/<digest>.trace]. *)

val get : dir:string -> digest:string -> string option
(** The stored trace text, or [None] if absent, CRC-invalid, or not
    actually hashing to [digest]. *)

val put :
  dir:string -> digest:string -> string -> (unit, Omn_robust.Err.t) result
(** Store a trace under its digest (creating [dir] if needed).
    [E-CHECKPOINT] if the text does not hash to [digest];
    [E-IO] on write failure. *)
