let version = '\001'
let max_payload = 1 lsl 28

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

let write fd payload =
  let crc = Omn_robust.Checkpoint.crc32_hex payload in
  let plen = String.length payload in
  let len = 1 + plen + 8 in
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.set buf 4 version;
  Bytes.blit_string payload 0 buf 5 plen;
  Bytes.blit_string crc 0 buf (5 + plen) 8;
  write_all fd buf 0 (Bytes.length buf)

(* Returns bytes read (< wanted only at EOF); EAGAIN/EWOULDBLOCK from a
   receive timeout surface as `Timeout via the exception below. *)
exception Timeout

let read_exact fd buf len =
  let rec go off =
    if off >= len then off
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> raise Timeout
  in
  go 0

let read ?(mangle = false) fd =
  match
    let hdr = Bytes.create 4 in
    match read_exact fd hdr 4 with
    | 0 -> Error `Eof
    | n when n < 4 -> Error `Corrupt
    | _ ->
      let b i = Char.code (Bytes.get hdr i) in
      let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if len < 9 || len > max_payload + 9 then Error `Corrupt
      else begin
        let body = Bytes.create len in
        if read_exact fd body len < len then Error `Corrupt
        else if Bytes.get body 0 <> version then Error `Corrupt
        else begin
          let plen = len - 9 in
          if mangle && plen > 0 then begin
            let pos = 1 + (plen / 2) in
            Bytes.set body pos (Char.chr (Char.code (Bytes.get body pos) lxor 0x5a))
          end;
          let payload = Bytes.sub_string body 1 plen in
          let crc = Bytes.sub_string body (1 + plen) 8 in
          if Omn_robust.Checkpoint.crc32_hex payload <> crc then Error `Corrupt
          else Ok payload
        end
      end
  with
  | r -> r
  | exception Timeout -> Error `Timeout
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Error `Eof
