(** Length-prefixed, CRC-framed messages over a stream socket.

    Wire layout of one frame:

    {v
    +----------------+---------+----------------+------------------+
    | length (4B BE) | version | payload bytes  | CRC-32 (8 hex)   |
    +----------------+---------+----------------+------------------+
    v}

    [length] counts everything after itself (version byte + payload +
    trailer). The CRC covers the payload only, so a flipped bit
    anywhere in the payload is detected; a mangled length or version is
    rejected by the sanity checks. A frame that fails any check makes
    the {e connection} unusable (stream framing is lost), so readers
    return [`Corrupt] and the caller must drop the peer — exactly the
    semantics the shard coordinator's failover needs. *)

val version : char
(** Wire protocol version, currently ['\001']. A reader rejects frames
    from any other version as [`Corrupt]. *)

val max_payload : int
(** Upper bound on a payload (guards against a mangled length prefix
    allocating gigabytes). *)

val write : Unix.file_descr -> string -> unit
(** Send one frame, handling partial writes. Raises [Unix.Unix_error]
    (e.g. [EPIPE] on a dead peer — callers must have [SIGPIPE]
    ignored). *)

val read :
  ?mangle:bool -> Unix.file_descr -> (string, [ `Eof | `Corrupt | `Timeout ]) result
(** Read one frame. [`Eof] is a clean close (zero bytes at a frame
    boundary); a short read mid-frame, a bad version, an oversized
    length or a CRC mismatch are [`Corrupt]; [`Timeout] surfaces
    [EAGAIN]/[EWOULDBLOCK] from an [SO_RCVTIMEO]-armed descriptor (so
    a stalled peer cannot hang the caller forever). [mangle] flips one
    payload byte after reading and before the CRC check — the
    [sock-corrupt] chaos fault, deterministic and test-only. *)
