(** Transport abstraction for the shard fleet.

    The coordinator and workers exchange CRC-framed {!Frame} messages
    over a connected stream socket; this module is the only place that
    knows whether that stream is a same-host Unix-domain socket or a
    TCP connection to another machine. Addresses parse from the CLI
    (["/tmp/omn.sock"] vs ["host:port"]), listeners bind either family,
    and {!dial} retries with the same capped-exponential,
    deterministically-jittered backoff as [Supervise] so a flapping
    link degrades gracefully instead of hanging the caller. *)

type addr =
  | Unix_path of string  (** same-host Unix-domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

val to_string : addr -> string
(** ["path"] or ["host:port"], parseable back by {!parse}. *)

val parse : string -> (addr, Omn_robust.Err.t) result
(** A string with a [':'] whose suffix is a valid port is {!Tcp};
    anything else is a {!Unix_path}. [E-USAGE] on an empty address,
    empty host or out-of-range port. *)

val set_deadline : Unix.file_descr -> float -> unit
(** Arm [SO_RCVTIMEO]/[SO_SNDTIMEO]: blocking reads and writes past
    the deadline fail with [EAGAIN], which {!Frame.read} reports as
    [`Timeout]. *)

val listen : ?backlog:int -> addr -> Unix.file_descr
(** Bind + listen (backlog default 16). TCP listeners set
    [SO_REUSEADDR]; [Tcp (host, 0)] lets the kernel pick a port (read
    it back with {!bound_addr}). Raises [Unix.Unix_error] on bind
    failure. *)

val bound_addr : Unix.file_descr -> addr -> addr
(** The address actually bound — resolves a kernel-assigned TCP port 0
    to the real one; Unix paths come back unchanged. *)

val dial :
  ?attempts:int ->
  ?backoff:float ->
  ?backoff_max:float ->
  ?seed:int ->
  ?connect_timeout:float ->
  addr ->
  (Unix.file_descr, Omn_robust.Err.t) result
(** Connect, retrying connection-shaped failures ([ENOENT],
    [ECONNREFUSED], [ETIMEDOUT], unreachable-network errors, ...) up
    to [attempts] times (default 100) with capped exponential backoff
    (base [backoff] = 0.05 s, cap [backoff_max] = 1 s) and
    deterministic jitter seeded by [(seed, addr)]. [connect_timeout]
    arms the socket deadline before connecting. A non-retriable or
    final failure is a typed [E-IO] error, never an exception. *)
