(** Shard worker process: computes per-source partials on demand.

    Lifecycle (see {!Proto} for the handshake): connect to the
    coordinator's Unix-domain socket, send [Hello], receive the [Job]
    (trace + parameters), load the shard checkpoint when its
    fingerprint matches, answer [Ready], then serve [Compute] requests
    until [Shutdown] or the connection closes.

    Batching: the worker drains every [Compute] already queued on the
    socket before computing, and runs the batch through its own domain
    {!Omn_parallel.Pool} ([job.domains]); results are sent back in
    batch order. Merge order lives entirely on the coordinator, so
    worker-side parallelism cannot affect the final curves.

    Checkpointing: every computed [(source, partial)] is cached and the
    cache persisted (CRC-framed, rotated — {!Omn_robust.Checkpoint})
    after each batch, so a worker that is killed and respawned {e
    resumes}: re-requested sources are answered from the cache instead
    of recomputed. A failing source is retried under the job's
    supervision policy and, once exhausted, reported as [Failed] — the
    worker itself survives poison sources.

    The worker ignores [SIGPIPE] and treats a closed or corrupt
    coordinator connection as an orderly shutdown. *)

val ckpt_magic : string
(** Framing magic of worker shard checkpoints. *)

val main : worker:int -> sock:string -> unit -> unit
(** Run the worker loop to completion. Returns normally on [Shutdown]
    or coordinator disconnect; raises only on unrecoverable local
    errors (e.g. the socket path never appearing). Callers that forked
    must follow with [Unix._exit]. *)
