(** Shard worker process: computes per-source partials on demand.

    Lifecycle (see {!Proto} for the handshake): establish a connection
    — either dialing the coordinator ({!Dial}: spawned same-host
    workers and outbound TCP joiners) or accepting coordinator
    connections on a listener ({!Listen}: pre-started multi-machine
    workers, [omn worker --listen host:port]) — authenticate when a
    pre-shared key is configured ({!Auth}), send [Hello] ([worker = -1]
    asks the coordinator to assign an id), receive the [Job], obtain
    the trace by digest (in-memory from a previous session, from the
    [--trace-cache] content store, or shipped once via
    [Need_trace]/[Trace_data]), load the shard checkpoint when its
    fingerprint matches, answer [Ready], then serve [Compute] requests
    until [Shutdown] or the connection closes.

    Reconnection: a dialing worker that loses its link mid-session
    (partition, coordinator failover) redials with bounded
    exponential backoff and rejoins under its assigned id; its traces
    and per-fingerprint result caches persist in memory across
    sessions, so a rejoin re-ships zero trace bytes and recomputes
    nothing. A listening worker simply accepts the next connection
    ([--once] exits after the first cleanly shut-down session).

    Batching: the worker drains every [Compute] already queued on the
    socket before computing, and runs the batch through its own domain
    {!Omn_parallel.Pool} ([job.domains]); results are sent back in
    batch order. Merge order lives entirely on the coordinator, so
    worker-side parallelism cannot affect the final curves.

    Checkpointing: every computed [(source, partial)] is cached and the
    cache persisted (CRC-framed, rotated — {!Omn_robust.Checkpoint})
    after each batch, so a worker that is killed and respawned {e
    resumes}: re-requested sources are answered from the cache instead
    of recomputed. A failing source is retried under the job's
    supervision policy and, once exhausted, reported as [Failed] — the
    worker itself survives poison sources.

    The worker ignores [SIGPIPE]; a permanently unreachable
    coordinator is an orderly [Ok] exit, while an authentication or
    protocol rejection is a typed [E-AUTH]/[E-PROTO] error for the CLI
    to turn into exit 2. *)

val ckpt_magic : string
(** Framing magic of worker shard checkpoints. *)

type mode =
  | Dial of Transport.addr  (** connect out to the coordinator *)
  | Listen of Transport.addr  (** accept coordinator connections *)

val main :
  worker:int ->
  mode:mode ->
  ?auth_key:string ->
  ?trace_cache:string ->
  ?once:bool ->
  unit ->
  (unit, Omn_robust.Err.t) result
(** Run the worker to completion. [worker] is the initial id ([-1] for
    a joiner). [auth_key] enables the {!Auth} handshake (it must then
    be set on the coordinator too); [trace_cache] points at the
    content-addressed {!Store} directory; [once] (listen mode) exits
    after one cleanly completed session. Returns [Ok ()] on [Shutdown]
    or coordinator disappearance, [Error] with [E-AUTH]/[E-PROTO]/
    [E-IO] on typed rejections. Callers that forked must follow with
    [Unix._exit]. *)
