(** Shard coordinator: sources over worker processes, with failover.

    [run] consistent-hashes the (stride-ordered) source list over [N]
    worker processes ({!Ring}), streams [Compute] requests over
    Unix-domain sockets ({!Frame}/{!Proto}), and folds the per-source
    partials back together {e in slot order} — so the final curves are
    bit-identical to a single-process [Delay_cdf] run at any worker
    count, under any failure schedule that still completes.

    Failure semantics:
    - a worker that closes its connection, sends a corrupt frame, or
      misses the heartbeat timeout (it may be hung — [SIGSTOP]ed — not
      dead) is [SIGKILL]ed and reaped; its {e unacknowledged} sources
      are reassigned to their ring successors; a bounded number of
      respawns with exponential backoff brings it back, and its shard
      checkpoint lets it resume rather than recompute;
    - duplicate results (a reassignment race) are dropped at the
      accounting table — a source is merged {e at most once};
    - a source that exhausts the worker-side supervision policy comes
      back as [Failed] and is excluded from the merge exactly like a
      quarantined source in the single-process driver ([progress.
      degraded], CLI exit 3);
    - when the optional budget expires, the acknowledged subset is
      merged ([progress.partial], CLI exit 124 — precedence over 3 via
      {!Omn_resilience.Supervise.exit_code});
    - when every worker has exhausted its respawns and sources remain,
      [run] returns a [Compute] error (CLI exit 1): results are never
      silently incomplete.

    The chaos schedule ({!Omn_robust.Faultgen.shard_event}) is
    interpreted here: after the scheduled number of acknowledged
    results, the victim worker is killed, stopped, or has its next
    frame corrupted. All shard events (spawns, heartbeat misses, frame
    corruptions, reassignments, rejoins) are recorded in
    {!Omn_obs.Timeline} and counted in [Omn_obs.Metrics] under
    [shard.*]. *)

type spawn =
  | Spawn_exec
      (** re-execute [Sys.executable_name worker --id I --sock PATH] —
          the CLI path; requires the running binary to expose the
          [worker] subcommand *)
  | Spawn_fork
      (** [Unix.fork] and call {!Worker.main} in the child — the test
          path; only safe while no other domains are running *)

type config = {
  workers : int;
  worker_domains : int;  (** domain-pool size inside each worker *)
  vnodes : int;  (** ring points per worker *)
  max_inflight : int;
      (** flow-control window: max unacknowledged [Compute]s per worker.
          Bounds socket buffering on large runs, and guarantees a worker
          that dies or hangs mid-run leaves undispatched work behind —
          so failover (not a drained socket buffer) is what completes
          the run under chaos schedules *)
  spawn : spawn;
  heartbeat_interval : float;  (** seconds between [Ping]s *)
  heartbeat_timeout : float;
      (** silence past this declares a worker dead; must exceed the
          longest single-source compute time *)
  max_respawns : int;  (** respawns per worker after its first spawn *)
  respawn_backoff : float;  (** base respawn delay, doubled per respawn *)
  supervise : (int * float * float * int) option;
      (** worker-side policy (retries, backoff, backoff_max,
          jitter_seed); [None] = fail-fast (0 retries) *)
  ckpt_dir : string option;
      (** directory for per-worker shard checkpoints; created if missing *)
  budget_seconds : float option;
  chaos : Omn_robust.Faultgen.shard_event list;  (** must be ascending *)
  sock_path : string option;  (** default: a fresh path under [TMPDIR] *)
  on_partial : (Omn_temporal.Node.t -> Omn_core.Delay_cdf.partial -> unit) option;
      (** observe each acknowledged per-source partial (in slot order,
          during the final merge) — the hook the sampled diameter
          estimator uses to collect partials from a sharded run;
          [None] = no observation. Must not mutate the computation. *)
}

val default : workers:int -> config
(** 1 domain per worker, 64 vnodes, a 32-source in-flight window,
    [Spawn_exec], 0.25 s heartbeat interval, 5 s timeout, 2 respawns
    with 0.1 s base backoff, no supervision retries, no checkpoints, no
    budget, no chaos. *)

type stats = {
  spawns : int;  (** worker processes started, including respawns *)
  heartbeat_misses : int;
  frame_corrupts : int;
  reassigned : int;  (** sources moved off a dead worker *)
  rejoins : int;  (** respawned workers that completed the handshake *)
  duplicates : int;  (** duplicate results dropped by the acked table *)
  shard_map_sha256 : string;
      (** digest of the initial source->worker assignment *)
}

val run :
  ?max_hops:int ->
  ?sources:Omn_temporal.Node.t list ->
  ?dests:Omn_temporal.Node.t list ->
  ?grid:float array ->
  ?windows:(float * float) list ->
  ?clock:(unit -> float) ->
  config ->
  Omn_temporal.Trace.t ->
  ( Omn_core.Delay_cdf.curves * Omn_core.Delay_cdf.progress * stats,
    Omn_robust.Err.t )
  result
(** Same computation and defaults as {!Omn_core.Delay_cdf.compute},
    executed across [config.workers] processes. [progress.ckpt_fallback]
    is always [false] (worker checkpoints have their own generations).
    [clock] is the budget time base (default wall clock). *)
