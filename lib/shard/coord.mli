(** Shard coordinator: sources over worker processes, with failover.

    [run] consistent-hashes the (stride-ordered) source list over the
    worker fleet ({!Ring}), streams [Compute] requests over
    CRC-framed connections ({!Frame}/{!Proto}) — Unix-domain sockets
    for spawned same-host workers, authenticated TCP ({!Transport},
    {!Auth}) for multi-machine fleets — and folds the per-source
    partials back together {e in slot order}: the final curves are
    bit-identical to a single-process [Delay_cdf] run at any worker
    count, under any membership schedule and any failure schedule that
    still completes.

    Fleet shape: [workers] processes are spawned locally and dial back
    in; [peers] are pre-started [omn worker --listen] processes the
    coordinator dials (playing the {!Auth} {e client} on those links).
    Both are part of the initial fleet the dispatch barrier waits for.
    Additional members may join mid-run: an authenticated connection
    whose [Hello] carries [worker = -1] is admitted, assigned the next
    id, and added to the ring — only the moved arc's {e pending}
    sources route to it; assigned sources are never recalled, so
    at-most-once merging is preserved at any membership schedule.

    Trace shipping is digest-addressed: the job carries the trace's
    SHA-256, and only a worker that cannot produce the bytes locally
    (memory, or its [--trace-cache] content store) asks for them via
    [Need_trace]. A rejoining worker with a warm cache re-ships zero
    bytes ([stats.trace_cache_hits]).

    Failure semantics:
    - a spawned worker that closes its connection, sends a corrupt
      frame, or misses the heartbeat timeout (it may be hung —
      [SIGSTOP]ed — not dead) is [SIGKILL]ed and reaped; its
      {e unacknowledged} sources are reassigned to their ring
      successors; a bounded number of respawns with exponential
      backoff brings it back, and its shard checkpoint lets it resume
      rather than recompute;
    - a dialed peer whose link drops is re-dialed under the same
      bounded-backoff budget ([max_respawns]); a peer that {e rejects}
      our credentials or speaks another protocol version aborts the
      run with a typed [E-AUTH]/[E-PROTO] error (retrying an identical
      handshake cannot succeed);
    - an inbound connection that fails the pre-shared-key handshake is
      rejected with a typed error frame, counted
      ([stats.auth_rejects]), and closed — the run is unaffected;
    - duplicate results (a reassignment race, or net-dup chaos) are
      dropped at the accounting table — a source is merged {e at most
      once};
    - a source that exhausts the worker-side supervision policy comes
      back as [Failed] and is excluded from the merge exactly like a
      quarantined source in the single-process driver ([progress.
      degraded], CLI exit 3);
    - when the optional budget expires, the acknowledged subset is
      merged ([progress.partial], CLI exit 124 — precedence over 3 via
      {!Omn_resilience.Supervise.exit_code});
    - when every worker has exhausted its respawns and sources remain,
      [run] returns a [Compute] error (CLI exit 1): results are never
      silently incomplete.

    The chaos schedule ({!Omn_robust.Faultgen.shard_event}) is
    interpreted here: after the scheduled number of acknowledged
    results the victim is killed, stopped, frame-corrupted,
    partitioned (link dropped, process kept — it must reconnect),
    slowed (frames delayed within a bound strictly below the heartbeat
    timeout — a slow link is never declared dead), duplicated
    (net-dup), joined by an impostor with a wrong key (auth-bad),
    grown (worker-join) or shrunk (worker-leave). All shard events are
    recorded in {!Omn_obs.Timeline} and counted in [Omn_obs.Metrics]
    under [shard.*] / [shard.net.*]. *)

type spawn =
  | Spawn_exec
      (** re-execute [Sys.executable_name worker --id I --connect ADDR]
          — the CLI path; requires the running binary to expose the
          [worker] subcommand. The pre-shared key travels in the
          [OMN_SHARD_KEY] environment variable, never argv *)
  | Spawn_fork
      (** [Unix.fork] and call {!Worker.main} in the child — the test
          path; only safe while no other domains are running *)

type config = {
  workers : int;  (** locally spawned workers (may be 0 with [peers]) *)
  worker_domains : int;  (** domain-pool size inside each worker *)
  vnodes : int;  (** ring points per worker *)
  max_inflight : int;
      (** flow-control window: max unacknowledged [Compute]s per worker.
          Bounds socket buffering on large runs, and guarantees a worker
          that dies or hangs mid-run leaves undispatched work behind —
          so failover (not a drained socket buffer) is what completes
          the run under chaos schedules *)
  spawn : spawn;
  heartbeat_interval : float;  (** seconds between [Ping]s *)
  heartbeat_timeout : float;
      (** silence past this declares a worker dead; must exceed the
          longest single-source compute time *)
  max_respawns : int;
      (** respawns (or re-dials, for peers) per worker after its first *)
  respawn_backoff : float;  (** base respawn delay, doubled per respawn *)
  supervise : (int * float * float * int) option;
      (** worker-side policy (retries, backoff, backoff_max,
          jitter_seed); [None] = fail-fast (0 retries) *)
  ckpt_dir : string option;
      (** directory for per-worker shard checkpoints; created if missing *)
  budget_seconds : float option;
  chaos : Omn_robust.Faultgen.shard_event list;  (** must be ascending *)
  sock_path : string option;
      (** Unix listener path (default: a fresh path under [TMPDIR]);
          ignored when [listen] is set *)
  listen : Transport.addr option;
      (** listener address; [Tcp (host, 0)] binds an ephemeral port
          (spawned workers are pointed at the actually-bound one) *)
  peers : Transport.addr list;
      (** pre-started [omn worker --listen] addresses to dial *)
  auth_key : string option;
      (** pre-shared key: require the {!Auth} handshake on every link *)
  worker_trace_cache : string option;
      (** [--trace-cache] directory handed to spawned workers *)
  on_partial : (Omn_temporal.Node.t -> Omn_core.Delay_cdf.partial -> unit) option;
      (** observe each acknowledged per-source partial (in slot order,
          during the final merge) — the hook the sampled diameter
          estimator uses to collect partials from a sharded run;
          [None] = no observation. Must not mutate the computation. *)
  telemetry : bool;
      (** pull each worker's metrics snapshot and timeline segments
          ([Stats_pull]/[Stats_push]) every [stats_interval] seconds and
          once more before the final merge; results are bit-identical
          on or off (telemetry frames ride the same links but the merge
          is slot-ordered) *)
  stats_interval : float;  (** seconds between telemetry pulls *)
  stat_addr : Transport.addr option;
      (** when set, serve a live Prometheus text exposition of the
          merged registry (coordinator as [worker="-1"] plus every
          worker's latest push) over HTTP on this address — the seed of
          the [omnd] query surface. [Tcp (host, 0)] binds an ephemeral
          port; see [on_stat_bound] *)
  on_stat_bound : (Transport.addr -> unit) option;
      (** called once with the actually-bound stat address *)
}

val default : workers:int -> config
(** 1 domain per worker, 64 vnodes, a 32-source in-flight window,
    [Spawn_exec], 0.25 s heartbeat interval, 5 s timeout, 2 respawns
    with 0.1 s base backoff, no supervision retries, no checkpoints, no
    budget, no chaos, no peers, no auth, Unix-domain listener, no
    telemetry (1 s pull interval when enabled), no stat endpoint. *)

type telemetry = {
  tw_worker : int;
  tw_metrics : Omn_obs.Metrics.snapshot;
      (** the worker's last pushed snapshot (counters are cumulative,
          so the last push is the total) *)
  tw_events : (int * Omn_obs.Timeline.entry) list;
      (** all pulled timeline segments concatenated, chronological,
          worker-clock timestamps (correct with [tw_offset]) *)
  tw_dropped : (int * int) list;  (** per-domain ring drops *)
  tw_offset : float;
      (** estimated worker_clock - coordinator_clock (seconds), from
          the lowest-RTT pull round trip; [0.] if never estimated *)
  tw_rtt : float;  (** that sample's round-trip time *)
}
(** One worker's accumulated telemetry, ready for
    {!Omn_obs.Trace_export.fleet_to_json} ([tw_events]/[tw_dropped]/
    [tw_offset]/[tw_rtt] map onto [fleet_worker]) and for
    {!Omn_obs.Metrics.merge} after [tag_worker]. *)

type stats = {
  spawns : int;
      (** worker processes started (incl. respawns) and peer links
          established (incl. re-dials) *)
  heartbeat_misses : int;
  frame_corrupts : int;
  reassigned : int;  (** sources moved off a dead or partitioned worker *)
  rejoins : int;
      (** workers that completed a handshake again after having been
          ready before (respawn or reconnect) *)
  duplicates : int;  (** duplicate results dropped by the acked table *)
  auth_rejects : int;  (** inbound connections that failed the handshake *)
  partitions : int;  (** chaos-injected link drops *)
  trace_ship_bytes : int;  (** total trace bytes shipped to workers *)
  trace_cache_hits : int;
      (** sessions that reached [Ready] without any trace shipping *)
  joins : int;  (** members admitted mid-run *)
  leaves : int;  (** members departed gracefully mid-run *)
  shard_map_sha256 : string;
      (** digest of the initial source->worker assignment *)
  fleet : telemetry list;
      (** per-worker telemetry, ascending worker id; empty when
          [config.telemetry] is off *)
}

val run :
  ?max_hops:int ->
  ?sources:Omn_temporal.Node.t list ->
  ?dests:Omn_temporal.Node.t list ->
  ?grid:float array ->
  ?windows:(float * float) list ->
  ?clock:(unit -> float) ->
  config ->
  Omn_temporal.Trace.t ->
  ( Omn_core.Delay_cdf.curves * Omn_core.Delay_cdf.progress * stats,
    Omn_robust.Err.t )
  result
(** Same computation and defaults as {!Omn_core.Delay_cdf.compute},
    executed across the worker fleet. [progress.ckpt_fallback] is
    always [false] (worker checkpoints have their own generations).
    [clock] is the budget time base (default wall clock). *)
