(* Byte-stream transport under the shard protocol: Unix-domain for
   same-host fleets, TCP for multi-machine. Both yield a connected
   [Unix.file_descr] that Frame/Proto treat identically; everything
   address-shaped lives here so Coord/Worker stay transport-neutral. *)

module Err = Omn_robust.Err

type addr = Unix_path of string | Tcp of string * int

let to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* "host:port" (last ':' splits, so a path with no ':' is unambiguous)
   vs a filesystem path. A bare path never contains ':' in practice;
   anything with a ':' whose suffix parses as a port is TCP. *)
let parse s =
  if String.equal s "" then Err.error Usage "transport: empty address"
  else
    match String.rindex_opt s ':' with
    | None -> Ok (Unix_path s)
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 ->
        if String.equal host "" then
          Err.errorf Usage "transport: missing host in %S" s
        else Ok (Tcp (host, p))
      | _ -> Err.errorf Usage "transport: bad port in %S" s)

let resolve host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
    match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
    | _ | (exception Not_found) ->
      raise (Err.Error (Err.errf Io "transport: cannot resolve host %S" host)))

let sockaddr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (h, p) -> Unix.ADDR_INET (resolve h, p)

let socket_for = function
  | Unix_path _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | Tcp _ ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    fd

let set_deadline fd seconds =
  (* Unix-domain sockets honour SO_RCVTIMEO/SO_SNDTIMEO the same way;
     a blocking read/write past the deadline fails with EAGAIN, which
     Frame maps to `Timeout. *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO seconds

let listen ?(backlog = 16) addr =
  let fd = socket_for addr in
  (match addr with
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix_path _ -> ());
  (try Unix.bind fd (sockaddr addr)
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd backlog;
  fd

let bound_addr fd addr =
  (* With [Tcp (_, 0)] the kernel picks the port; report the real one. *)
  match (addr, Unix.getsockname fd) with
  | Tcp (h, _), Unix.ADDR_INET (_, p) -> Tcp (h, p)
  | a, _ -> a

(* Capped-exponential dial with deterministic jitter — the same
   discipline as [Supervise.backoff_delay], so a flapping link retries
   on the familiar schedule instead of hammering or hanging. *)
let dial ?(attempts = 100) ?(backoff = 0.05) ?(backoff_max = 1.0) ?(seed = 0)
    ?connect_timeout addr =
  let rng = Omn_stats.Rng.create (seed lxor Hashtbl.hash (to_string addr)) in
  let retriable = function
    | Unix.Unix_error
        ( ( Unix.ENOENT | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ETIMEDOUT
          | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.EAGAIN | Unix.EINTR ),
          _,
          _ ) ->
      true
    | _ -> false
  in
  let attempt () =
    let fd = socket_for addr in
    (match connect_timeout with Some s -> set_deadline fd s | None -> ());
    try
      Unix.connect fd (sockaddr addr);
      fd
    with e ->
      Unix.close fd;
      raise e
  in
  let rec go k =
    match attempt () with
    | fd -> Ok fd
    | exception Err.Error e -> Error e
    | exception e when retriable e && k + 1 < attempts ->
      let base = Float.min backoff_max (backoff *. (2. ** float_of_int k)) in
      Unix.sleepf (base *. (0.5 +. (0.5 *. Omn_stats.Rng.float rng)));
      go (k + 1)
    | exception e ->
      Error
        (Err.errf Io "transport: cannot connect to %s: %s" (to_string addr)
           (Printexc.to_string e))
  in
  go 0
