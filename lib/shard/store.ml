(* Content-addressed trace store: one file per trace, named by the
   trace's SHA-256 and framed magic + payload + CRC-32 like a
   checkpoint. Entries are immutable (the name IS the content), so
   there is no rotation; writes are atomic (temp + rename under
   Retry_io) and a reader validates both the CRC frame and the digest
   before trusting a hit — a corrupted cache entry is a miss, never a
   wrong trace. *)

module Err = Omn_robust.Err
module Checkpoint = Omn_robust.Checkpoint
module Retry_io = Omn_robust.Retry_io
module Sha256 = Omn_obs.Sha256

let magic = "omn-trace-store 1\n"

let valid_digest d =
  String.length d = 64
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) d

let path ~dir ~digest = Filename.concat dir (digest ^ ".trace")

let mkdirs dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let get ~dir ~digest =
  if not (valid_digest digest) then None
  else
    let p = path ~dir ~digest in
    if not (Sys.file_exists p) then None
    else
      match Retry_io.read_to_string p with
      | exception Sys_error _ -> None
      | data -> (
        match Checkpoint.decode ~magic ~path:p data with
        | Error _ -> None
        | Ok payload ->
          if String.equal (Sha256.string payload) digest then Some payload
          else None)

let put ~dir ~digest text =
  if not (valid_digest digest) then
    Err.errorf Checkpoint "trace store: malformed digest %S" digest
  else if not (String.equal (Sha256.string text) digest) then
    Err.errorf Checkpoint "trace store: payload does not match digest %s" digest
  else begin
    mkdirs dir;
    let p = path ~dir ~digest in
    match
      Retry_io.write p (fun oc ->
          output_string oc magic;
          output_string oc text;
          output_string oc (Checkpoint.crc32_hex text))
    with
    | () -> Ok ()
    | exception Sys_error msg -> Err.error ~file:p Io msg
  end
