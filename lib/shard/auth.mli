(** Pre-shared-key HMAC-SHA-256 handshake for shard connections.

    Multi-machine fleets listen on TCP, so a connection is no longer
    implicitly trusted the way a same-user Unix-domain socket is. When
    both ends are configured with a key, the dialer and listener run a
    three-message challenge–response over {!Frame}: mutual proof of
    key possession via HMAC-SHA-256 over a transcript binding both
    protocol versions, build identifiers and nonces. A wrong key, a
    replayed client nonce, or a protocol/build mismatch is a typed
    [E-AUTH] / [E-PROTO] error on {e both} sides (the rejecting side
    ships the verdict in a final frame before closing) — never a
    crash, a hang, or a silent accept. Without a key, no handshake
    frames are exchanged at all (the Unix-domain default). *)

val protocol_version : int
(** Version of the handshake plus the [Proto] message set behind it;
    peers with different values are rejected with [E-PROTO]. *)

val default_build : string
(** Build identifier exchanged in the handshake, derived from the
    compiler version — [Marshal]-encoded messages are only safe
    between identical runtimes, so a mismatch is refused up front. *)

val hmac : key:string -> string -> string
(** HMAC-SHA-256 (hex, 64 chars) of a message under a key. Exposed for
    tests. *)

type state
(** Listener-side handshake state: the set of client nonces already
    accepted, consulted for replay rejection. One per listener. *)

val state : unit -> state

val client :
  ?build:string -> key:string -> Unix.file_descr -> (unit, Omn_robust.Err.t) result
(** Run the dialer side of the handshake on a fresh connection, before
    any [Proto] traffic. *)

val server :
  ?build:string ->
  state:state ->
  key:string ->
  Unix.file_descr ->
  (unit, Omn_robust.Err.t) result
(** Run the listener side on an accepted connection. On [Error] the
    caller must drop the connection (a rejection frame has already
    been sent best-effort). *)
