(** Consistent-hash ring with virtual nodes and successor failover.

    Chord-style placement for the shard coordinator: each worker owns
    [vnodes] points on a 2{^60}-point ring (SHA-256 of
    ["worker:<w>:vnode:<v>"], truncated), and a source is owned by the
    first point at or clockwise-after its own hash. Failover is the
    successor walk: when the owning worker is dead, ownership passes to
    the next point whose worker is alive — so a worker's death moves
    only {e its} sources, and moves them to (roughly) uniformly spread
    successors rather than one unlucky neighbour.

    Placement is pure metadata here: it decides which worker {e
    computes} a source, never how results are merged, so the final
    curves are bit-identical at any worker count or death schedule (the
    coordinator merges per-source partials in slot order).

    Membership is dynamic: {!add} and {!remove} insert or delete one
    member's vnode points, leaving every other source→worker edge
    untouched — a join moves only the arcs the new member now owns, a
    leave moves only the departed member's arcs to their successors. *)

type t

val create : ?vnodes:int -> workers:int -> unit -> t
(** Members [0 .. workers-1], [vnodes] points each (default 64).
    Raises [Invalid_argument] on [workers < 1] or [vnodes < 1]. *)

val workers : t -> int
(** Current member count. *)

val members : t -> int list
(** Current member ids, sorted ascending. *)

val add : t -> int -> t
(** Ring with worker [w] as a member (no-op if already present); a
    member's point positions depend only on its id, so only the new
    member's arcs change owner. Raises [Invalid_argument] on a
    negative id. *)

val remove : t -> int -> t
(** Ring without worker [w] (no-op if absent). Raises
    [Invalid_argument] when removing the last member. *)

val assign : t -> alive:int list -> int -> int
(** [assign t ~alive source]: the owning worker among [alive]
    (successor walk past points owned by dead workers). Deterministic
    in [(t, alive, source)]. Raises [Invalid_argument] when [alive] is
    empty or names a non-member. *)

val map_sha256 : t -> alive:int list -> sources:int list -> string
(** Digest of the full assignment [source -> worker] over [sources],
    in list order — recorded in the run manifest so two runs can be
    checked for identical placement. *)
