(** Consistent-hash ring with virtual nodes and successor failover.

    Chord-style placement for the shard coordinator: each worker owns
    [vnodes] points on a 2{^60}-point ring (SHA-256 of
    ["worker:<w>:vnode:<v>"], truncated), and a source is owned by the
    first point at or clockwise-after its own hash. Failover is the
    successor walk: when the owning worker is dead, ownership passes to
    the next point whose worker is alive — so a worker's death moves
    only {e its} sources, and moves them to (roughly) uniformly spread
    successors rather than one unlucky neighbour.

    Placement is pure metadata here: it decides which worker {e
    computes} a source, never how results are merged, so the final
    curves are bit-identical at any worker count or death schedule (the
    coordinator merges per-source partials in slot order). *)

type t

val create : ?vnodes:int -> workers:int -> unit -> t
(** [vnodes] defaults to 64 points per worker. Raises
    [Invalid_argument] on [workers < 1] or [vnodes < 1]. *)

val workers : t -> int

val assign : t -> alive:int list -> int -> int
(** [assign t ~alive source]: the owning worker among [alive]
    (successor walk past points owned by dead workers). Deterministic
    in [(t, alive, source)]. Raises [Invalid_argument] when [alive] is
    empty or names an unknown worker. *)

val map_sha256 : t -> alive:int list -> sources:int list -> string
(** Digest of the full assignment [source -> worker] over [sources],
    in list order — recorded in the run manifest so two runs can be
    checked for identical placement. *)
