(** Human-readable formatting of durations and instants (seconds). *)

val duration : float -> string
(** Compact rendering: ["90 s"], ["2.0 min"], ["1.5 h"], ["3.0 d"],
    ["2.0 wk"], ["inf"]. Chooses the largest unit keeping the mantissa
    >= 1. *)

val pp_duration : Format.formatter -> float -> unit

val parse_duration : string -> float option
(** Inverse-ish of {!duration}: accepts ["<number><unit>"] with unit in
    s, min, h, d, wk (case-insensitive, optional space), plus ["inf"]. *)

val axis_seconds : float -> string
(** Short axis-label form used in experiment printouts: ["2min"],
    ["1h"], ["6h"], ["1d"], ["1wk"]. *)
