(** Imperative binary min-heap, used by the event-driven flooding baseline
    and the temporal Dijkstra search. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (minimum at the top). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum. *)

val peek : 'a t -> 'a option

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify in O(n). *)
