type t = {
  values : float array; (* finite support, sorted ascending *)
  cum : float array;    (* cum.(i) = total weight of values.(0..i) *)
  infinite : float;     (* mass at +infinity *)
  total : float;        (* finite mass + infinite mass *)
}

let build pairs extra_inf =
  let finite = ref [] and inf_mass = ref extra_inf in
  Array.iter
    (fun (v, w) ->
      if w < 0. then invalid_arg "Empirical: negative weight";
      if Float.is_nan v then invalid_arg "Empirical: nan value";
      if w > 0. then
        if v = infinity then inf_mass := !inf_mass +. w
        else finite := (v, w) :: !finite)
    pairs;
  let finite = Array.of_list !finite in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) finite;
  (* Merge duplicate values so [support] is a clean staircase. *)
  let merged = ref [] in
  Array.iter
    (fun (v, w) ->
      match !merged with
      | (v', w') :: rest when v' = v -> merged := (v', w' +. w) :: rest
      | _ -> merged := (v, w) :: !merged)
    finite;
  let finite = Array.of_list (List.rev !merged) in
  let n = Array.length finite in
  let values = Array.make n 0. and cum = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let v, w = finite.(i) in
    values.(i) <- v;
    acc := !acc +. w;
    cum.(i) <- !acc
  done;
  let total = !acc +. !inf_mass in
  if total <= 0. then invalid_arg "Empirical: zero total mass";
  { values; cum; infinite = !inf_mass; total }

let of_weighted ?(extra_infinite_mass = 0.) pairs = build pairs extra_infinite_mass
let of_array a = build (Array.map (fun v -> (v, 1.)) a) 0.
let total_mass t = t.total
let infinite_mass t = t.infinite
let count t = Array.length t.values + if t.infinite > 0. then 1 else 0

(* Index of the last value <= x, or -1. *)
let rank t x =
  let n = Array.length t.values in
  if n = 0 || t.values.(0) > x then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.values.(mid) <= x then lo := mid else hi := mid - 1
    done;
    !lo
  end

let cdf t x =
  if Float.is_nan x then invalid_arg "Empirical.cdf: nan";
  let finite_part =
    let i = rank t x in
    if i < 0 then 0. else t.cum.(i)
  in
  let inf_part = if x = infinity then t.infinite else 0. in
  (finite_part +. inf_part) /. t.total

let ccdf t x = 1. -. cdf t x

let quantile t p =
  if not (0. <= p && p <= 1.) then invalid_arg "Empirical.quantile";
  let target = p *. t.total in
  let n = Array.length t.values in
  if n = 0 then infinity
  else if target > t.cum.(n - 1) then infinity
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cum.(mid) >= target then hi := mid else lo := mid + 1
    done;
    t.values.(!lo)
  end

let finite_mass t = t.total -. t.infinite

let mean_finite t =
  let m = finite_mass t in
  if m <= 0. then nan
  else begin
    let acc = ref 0. and prev = ref 0. in
    Array.iteri
      (fun i v ->
        let w = t.cum.(i) -. !prev in
        prev := t.cum.(i);
        acc := !acc +. (v *. w))
      t.values;
    !acc /. m
  end

let variance_finite t =
  let m = finite_mass t in
  if m <= 0. then nan
  else begin
    let mu = mean_finite t in
    let acc = ref 0. and prev = ref 0. in
    Array.iteri
      (fun i v ->
        let w = t.cum.(i) -. !prev in
        prev := t.cum.(i);
        let d = v -. mu in
        acc := !acc +. (d *. d *. w))
      t.values;
    !acc /. m
  end

let min_finite t = if Array.length t.values = 0 then None else Some t.values.(0)

let max_finite t =
  let n = Array.length t.values in
  if n = 0 then None else Some t.values.(n - 1)

let support t =
  Array.mapi (fun i v -> (v, t.cum.(i))) t.values

let eval t grid =
  let n = Array.length grid in
  let out = Array.make n 0. in
  let j = ref 0 and nv = Array.length t.values in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    if i > 0 && grid.(i) < grid.(i - 1) then invalid_arg "Empirical.eval: grid not ascending";
    while !j < nv && t.values.(!j) <= grid.(i) do
      acc := t.cum.(!j);
      incr j
    done;
    let inf_part = if grid.(i) = infinity then t.infinite else 0. in
    out.(i) <- (!acc +. inf_part) /. t.total
  done;
  out
