let linear ~lo ~hi ~n =
  if n < 2 then invalid_arg "Grid.linear: n < 2";
  if lo > hi then invalid_arg "Grid.linear: lo > hi";
  Array.init n (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let logarithmic ~lo ~hi ~n =
  if n < 2 then invalid_arg "Grid.logarithmic: n < 2";
  if not (0. < lo && lo <= hi) then invalid_arg "Grid.logarithmic: need 0 < lo <= hi";
  let llo = log lo and lhi = log hi in
  Array.init n (fun i ->
      exp (llo +. ((lhi -. llo) *. float_of_int i /. float_of_int (n - 1))))

let minute = 60.
let hour = 3600.
let day = 86400.
let week = 7. *. day

let delay_default = logarithmic ~lo:(2. *. minute) ~hi:week ~n:120

let delay_named =
  [
    ("2 min", 2. *. minute);
    ("10 min", 10. *. minute);
    ("1 hour", hour);
    ("3 h", 3. *. hour);
    ("6 h", 6. *. hour);
    ("1 day", day);
    ("2 d", 2. *. day);
    ("1 week", week);
  ]
