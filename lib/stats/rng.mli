(** Deterministic pseudo-random number generation.

    All randomness in this project flows through this module so that every
    experiment is reproducible from a single integer seed. The generator is
    xoshiro256** (Blackman & Vigna), seeded through splitmix64; both are
    implemented from the public-domain reference code. State is explicit:
    no global mutable generator is hidden anywhere in the library. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator deterministically from [seed]. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams
    obtained by successive splits are statistically independent; use one
    per experimental unit (e.g. per Monte-Carlo run) so that adding runs
    does not perturb earlier ones. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1) with 53-bit resolution. *)

val float_range : t -> float -> float -> float
(** [float_range t a b] is uniform in [a, b). Requires [a <= b]. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]. Requires [n > 0]. Unbiased
    (rejection sampling on the top bits). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); mean [1. /. rate].
    Requires [rate > 0]. *)

val normal : t -> float -> float -> float
(** [normal t mu sigma] samples a Gaussian (Box–Muller, no caching so the
    stream is insensitive to call sites). *)

val log_normal : t -> float -> float -> float
(** [log_normal t mu sigma] is [exp (normal mu sigma)]. *)

val pareto : t -> float -> float -> float
(** [pareto t alpha x_min] samples a Pareto(I) law with tail exponent
    [alpha] and scale [x_min]: P(X > x) = (x_min/x)^alpha for x >= x_min. *)

val poisson : t -> float -> int
(** [poisson t mean] samples a Poisson variate. Exact for any mean
    (Knuth's product method below 30, normal-approximation-free PTRD-style
    inversion by splitting above). *)

val geometric : t -> float -> int
(** [geometric t p] counts failures before the first success of a
    Bernoulli(p) sequence (support 0, 1, 2, ...). Requires [0 < p <= 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [0, n-1], in random order. Requires [0 <= k <= n]. *)
