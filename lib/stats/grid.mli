(** Evaluation grids for curves and CDFs. *)

val linear : lo:float -> hi:float -> n:int -> float array
(** [n] evenly spaced points from [lo] to [hi] inclusive. Requires
    [n >= 2] and [lo <= hi]. *)

val logarithmic : lo:float -> hi:float -> n:int -> float array
(** [n] log-spaced points from [lo] to [hi] inclusive. Requires
    [0 < lo <= hi] and [n >= 2]. *)

val delay_default : float array
(** The paper's delay axis for Figs. 9–11: log-spaced from 2 minutes to
    one week (in seconds). *)

val delay_named : (string * float) list
(** Landmark delays with the labels the paper prints under its x-axes:
    2 min, 10 min, 1 hour, 3 h, 6 h, 1 day, 2 d, 1 week. *)
