(* xoshiro256** with splitmix64 seeding, after the public-domain reference
   implementations by Blackman & Vigna. OCaml's boxed int64 arithmetic is
   fast enough here: sampling is never the bottleneck of an experiment. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed a fresh stream from two outputs of [t]; splitmix64 decorrelates. *)
  let state = ref (int64 t) in
  let _ = splitmix64 state in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let float t =
  (* Top 53 bits, scaled to [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t a b =
  assert (a <= b);
  a +. ((b -. a) *. float t)

let int t n =
  assert (n > 0);
  if n = 1 then 0
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let n64 = Int64.of_int n in
    let limit = Int64.sub (Int64.div Int64.max_int n64) 1L in
    let bound = Int64.mul limit n64 in
    let rec draw () =
      let v = Int64.shift_right_logical (int64 t) 1 in
      if v >= bound && bound > 0L then draw () else Int64.to_int (Int64.rem v n64)
    in
    draw ()
  end

let bool t = Int64.compare (Int64.logand (int64 t) 1L) 0L <> 0
let bernoulli t p = float t < p

let exponential t rate =
  assert (rate > 0.);
  let u = 1. -. float t in
  -.log u /. rate

let normal t mu sigma =
  (* Box–Muller; both uniforms drawn every call so the stream position does
     not depend on parity of the number of calls. *)
  let u1 = 1. -. float t in
  let u2 = float t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let log_normal t mu sigma = exp (normal t mu sigma)

let pareto t alpha x_min =
  assert (alpha > 0. && x_min > 0.);
  let u = 1. -. float t in
  x_min /. (u ** (1. /. alpha))

let poisson t mean =
  assert (mean >= 0.);
  if mean = 0. then 0
  else if mean < 30. then begin
    (* Knuth's product method. *)
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. float t in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.
  end
  else begin
    (* Split the mean: Poisson(a + b) = Poisson(a) + Poisson(b). *)
    let half = mean /. 2. in
    let rec go m acc =
      if m < 30. then
        let limit = exp (-.m) in
        let rec loop k p =
          let p = p *. float t in
          if p <= limit then k else loop (k + 1) p
        in
        acc + loop 0 1.
      else go (m /. 2.) (go (m /. 2.) acc)
    in
    go half (go half 0)
  end

let geometric t p =
  assert (p > 0. && p <= 1.);
  if p = 1. then 0
  else
    let u = 1. -. float t in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  assert (0 <= k && k <= n);
  if k = 0 then [||]
  else if 2 * k >= n then begin
    let a = Array.init n (fun i -> i) in
    shuffle t a;
    Array.sub a 0 k
  end
  else begin
    (* Floyd's algorithm: k draws, O(k) memory. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let idx = ref 0 in
    for j = n - k to n - 1 do
      let r = int t (j + 1) in
      let v = if Hashtbl.mem seen r then j else r in
      Hashtbl.replace seen v ();
      out.(!idx) <- v;
      incr idx
    done;
    shuffle t out;
    out
  end
