let units = [ ("wk", 604800.); ("d", 86400.); ("h", 3600.); ("min", 60.); ("s", 1.) ]

let duration s =
  if s = infinity then "inf"
  else if s < 0. then "-" ^ string_of_float (-.s)
  else if s = 0. then "0 s"
  else begin
    let rec pick = function
      | [] -> ("s", 1.)
      | (name, scale) :: rest -> if s >= scale then (name, scale) else pick rest
    in
    let name, scale = pick units in
    let v = s /. scale in
    if scale = 1. && Float.is_integer v then Printf.sprintf "%.0f s" v
    else Printf.sprintf "%.1f %s" v name
  end

let pp_duration fmt s = Format.pp_print_string fmt (duration s)

let parse_duration str =
  let str = String.trim (String.lowercase_ascii str) in
  if str = "inf" || str = "infinity" then Some infinity
  else begin
    let is_unit_char c = (c >= 'a' && c <= 'z') in
    let n = String.length str in
    let split = ref n in
    (* First alphabetic character begins the unit suffix. *)
    (try
       for i = 0 to n - 1 do
         if is_unit_char str.[i] then begin
           split := i;
           raise Exit
         end
       done
     with Exit -> ());
    let num = String.trim (String.sub str 0 !split) in
    let unit = String.trim (String.sub str !split (n - !split)) in
    match float_of_string_opt num with
    | None -> None
    | Some v ->
      let scale =
        match unit with
        | "" | "s" | "sec" | "secs" | "second" | "seconds" -> Some 1.
        | "min" | "m" | "mn" | "minute" | "minutes" -> Some 60.
        | "h" | "hr" | "hour" | "hours" -> Some 3600.
        | "d" | "day" | "days" -> Some 86400.
        | "wk" | "w" | "week" | "weeks" -> Some 604800.
        | _ -> None
      in
      Option.map (fun sc -> v *. sc) scale
  end

let axis_seconds s =
  if s = infinity then "inf"
  else begin
    let rec pick = function
      | [] -> ("s", 1.)
      | (name, scale) :: rest -> if s >= scale then (name, scale) else pick rest
    in
    let name, scale = pick units in
    let v = s /. scale in
    if Float.is_integer v then Printf.sprintf "%.0f%s" v name
    else Printf.sprintf "%.1f%s" v name
  end
