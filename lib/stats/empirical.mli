(** Weighted empirical distributions.

    The paper's success-probability curves (Figs. 9–11) are empirical CDFs
    over a continuum of observations: every (source, destination, start
    time) triple contributes, and start time ranges over an interval, so
    observations carry real-valued weights (Lebesgue measure of start
    times). Failures — pairs with no path — contribute mass at +infinity,
    which is why those CDFs saturate below 1. This module represents such
    distributions exactly. *)

type t

val of_array : float array -> t
(** Unit-weight samples. Values may include [infinity]. *)

val of_weighted : ?extra_infinite_mass:float -> (float * float) array -> t
(** [of_weighted pairs] builds a distribution from [(value, weight)]
    observations; weights must be non-negative, values may be [infinity].
    [extra_infinite_mass] adds failure mass without materialising points.
    Raises [Invalid_argument] if total mass is zero or a weight is
    negative. *)

val total_mass : t -> float
(** Total weight, including the infinite-value mass. *)

val infinite_mass : t -> float

val cdf : t -> float -> float
(** [cdf t x] = P(X <= x), with the infinite mass in the denominator;
    hence [cdf t infinity < 1.] whenever some observations failed.
    For finite [x] the infinite mass never counts as a success. *)

val ccdf : t -> float -> float
(** [ccdf t x] = P(X > x) = 1 - cdf t x. *)

val quantile : t -> float -> float
(** [quantile t p] is the smallest x with cdf(x) >= p; [infinity] when the
    requested level sits inside the failure mass. Requires 0 <= p <= 1. *)

val mean_finite : t -> float
(** Mean of the finite part (conditional on success); [nan] if empty. *)

val variance_finite : t -> float
(** Variance of the finite part; [nan] if empty. *)

val min_finite : t -> float option
val max_finite : t -> float option

val count : t -> int
(** Number of stored support points (finite and infinite). *)

val support : t -> (float * float) array
(** Sorted (value, cumulative-weight-up-to-and-including) pairs — the raw
    staircase, useful for plotting. Infinite mass is not included. *)

val eval : t -> float array -> float array
(** [eval t grid] = CDF values on an ascending grid (single pass). *)
