(** Trace surgery used by §6 of the paper (and by tests).

    All transforms are pure: they return a new trace and never mutate the
    input. Derived traces keep the source window unless stated. *)

val remove_random : rng:Omn_stats.Rng.t -> p:float -> Trace.t -> Trace.t
(** §6.1: drop each contact independently with probability [p].
    Requires [0 <= p <= 1]. *)

val keep_longer_than : float -> Trace.t -> Trace.t
(** §6.2: keep only contacts of duration strictly greater than the
    threshold (seconds). *)

val keep_shorter_than : float -> Trace.t -> Trace.t
(** Complement of {!keep_longer_than} (duration <= threshold). *)

val time_window : t_start:float -> t_end:float -> Trace.t -> Trace.t
(** Crop to a sub-window: contacts intersecting it are kept with their
    interval clipped to the window (a contact straddling the boundary was
    observable inside it); the result window is the given one. Used to
    extract "the second day of Infocom06". *)

val restrict_nodes : keep:(Node.t -> bool) -> Trace.t -> Trace.t * Node.t array
(** Keep contacts whose both endpoints satisfy [keep]. Node ids are
    re-densified; the second result maps new ids back to old ones. *)

val quantize : granularity:float -> Trace.t -> Trace.t
(** Snap interval bounds to the scanning grid (multiples of
    [granularity] from the trace start): [t_beg] rounds down, [t_end]
    rounds up — what a periodic scanner every [granularity] seconds would
    report for a sighting it detected. *)

val shift : float -> Trace.t -> Trace.t
(** Translate all times (window included) by a constant. *)

val merge : Trace.t -> Trace.t -> Trace.t
(** Union of contacts of two traces over the same node universe; the
    window is the hull. Node counts must agree. *)
