(** Contact traces: the temporal-network representation of §4.2.

    A trace is a static node set [0 .. n_nodes - 1], an observation window
    [(t_start, t_end)], and a multiset of {!Contact.t} within the window,
    stored sorted by start time. This is the input type of every path
    computation and every experiment in this repository.

    A trace is immutable: the per-node adjacency index is built eagerly
    at creation (CSR-packed offset + contact arrays), so a single trace
    value can be shared by any number of domains with no synchronisation
    and no forcing protocol. *)

type t

val create : ?name:string -> n_nodes:int -> t_start:float -> t_end:float -> Contact.t list -> t
(** Validates that every contact fits the window and that {e both}
    endpoint ids lie in [[0, n_nodes)] (contacts deserialised past the
    private constructor are caught here, not by a crash in the index
    build), then sorts and builds the adjacency index. Raises
    [Invalid_argument] otherwise, or if [t_start > t_end] or
    [n_nodes < 0]. *)

val create_result :
  ?name:string ->
  n_nodes:int ->
  t_start:float ->
  t_end:float ->
  Contact.t list ->
  (t, Omn_robust.Err.t) result
(** Non-raising {!create}: validation failures come back as typed
    errors ([Range] for node problems, [Window] for window problems). *)

val create_array_result :
  ?name:string ->
  n_nodes:int ->
  t_start:float ->
  t_end:float ->
  Contact.t array ->
  (t, Omn_robust.Err.t) result
(** {!create_result} taking ownership of a contact array instead of
    copying a list — the streaming reader builds its contacts in a
    growable array and hands it over without an intermediate list.
    The array is validated and sorted in place; the caller must not
    reuse it. *)

val name : t -> string
(** Dataset label (defaults to ["trace"]). *)

val with_name : t -> string -> t
val n_nodes : t -> int
val t_start : t -> float
val t_end : t -> float

val span : t -> float
(** [t_end - t_start]. *)

val n_contacts : t -> int

val contacts : t -> Contact.t array
(** Sorted by {!Contact.compare_by_start}. The array is owned by the
    trace; do not mutate it. *)

val contact : t -> int -> Contact.t
val iter : (Contact.t -> unit) -> t -> unit
val fold : ('acc -> Contact.t -> 'acc) -> 'acc -> t -> 'acc

val node_contacts : t -> Node.t -> Contact.t array
(** Contacts involving a node, sorted by start time. Returns a fresh
    array (O(degree) copy out of the CSR index); prefer
    {!iter_node_contacts} / {!fold_node_contacts} on hot paths. *)

val iter_node_contacts : (Contact.t -> unit) -> t -> Node.t -> unit
(** Visit a node's contacts in start order, straight off the CSR index —
    no allocation. *)

val fold_node_contacts : ('acc -> Contact.t -> 'acc) -> 'acc -> t -> Node.t -> 'acc
(** Fold over a node's contacts in start order, no allocation. *)

val pair_contacts : t -> Node.t -> Node.t -> Contact.t list
(** Contacts between an unordered pair, sorted by start time. *)

val degree : t -> Node.t -> int
(** Number of contacts involving the node. O(1). *)

type time_csr = private {
  csr_a : int array;  (** lower endpoint of contact [i] *)
  csr_b : int array;  (** upper endpoint of contact [i] *)
  csr_beg : float array;  (** start time of contact [i] *)
  csr_end : float array;  (** end time of contact [i] *)
  csr_off : int array;
      (** time-bucket offsets, length [buckets + 1]: [csr_off.(k)] is the
          first contact with [t_beg >= csr_t0 + k * csr_bucket_w], and
          the final entry is the contact count *)
  csr_t0 : float;  (** window start the buckets are anchored at *)
  csr_bucket_w : float;  (** bucket width; [0.] on degenerate windows *)
}
(** The contact multiset mirrored as structure-of-arrays in start-time
    order, with a bucketed time index. [Contact.t] is a mixed int/float
    record, so its float fields are boxed and an [Array.iter] over
    {!contacts} chases two heap pointers per contact; the CSR mirror is
    four flat arrays read sequentially — what the per-round relaxation
    sweep in [Omn_core.Journey] iterates. Built eagerly at {!create},
    immutable and safe to share across domains. The arrays are owned by
    the trace: do not mutate. *)

val time_csr : t -> time_csr
(** The trace's time-indexed CSR mirror. O(1), no allocation. *)

val iter_started_in : t -> t0:float -> t1:float -> (int -> int -> float -> float -> unit) -> unit
(** [iter_started_in t ~t0 ~t1 f] calls [f a b t_beg t_end] for every
    contact with [t0 <= t_beg <= t1], in start order, seeking via the
    time buckets instead of scanning from the first contact. *)

val contact_rate : t -> float
(** Average number of contacts made by a node per unit of time — the λ of
    §3.1: [2 * n_contacts / (n_nodes * span)]. 0 on degenerate traces. *)

val active_nodes : t -> int
(** Number of nodes with at least one contact. *)

val pp_summary : Format.formatter -> t -> unit
