(** Plain-text trace serialisation.

    Format (one record per line, [#] comments allowed):
    {v
    # omn-trace 1
    # name <label>
    # nodes <n>
    # window <t_start> <t_end>
    <a> <b> <t_beg> <t_end>
    ...
    v}
    Times are seconds (floats). The header lines are written by
    {!save}; {!load} accepts files without them by inferring the node
    count and window from the records. *)

val save : Trace.t -> string -> unit
(** Write to a file path. Raises [Sys_error] on IO failure. *)

val load : string -> Trace.t
(** Read from a file path. Raises [Failure] with a line-numbered message
    on malformed input; [Sys_error] on IO failure. *)

val output : out_channel -> Trace.t -> unit
val input : in_channel -> Trace.t

val to_string : Trace.t -> string
val of_string : string -> Trace.t
