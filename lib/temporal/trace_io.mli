(** Plain-text trace serialisation.

    Format (one record per line, [#] comments allowed):
    {v
    # omn-trace 1
    # name <label>
    # nodes <n>
    # window <t_start> <t_end>
    <a> <b> <t_beg> <t_end>
    ...
    v}
    Times are seconds (floats). The header lines are written by
    {!save}; {!load} accepts files without them by inferring the node
    count and window from the records.

    Reading comes in two flavours. The {!parse} / {!load_result} API is
    policy-driven and returns typed errors plus a repair report; the
    legacy raising API ({!load}, {!of_string}, {!input}) is strict and
    raises [Failure] with a line-numbered message. *)

val save : Trace.t -> string -> unit
(** Write to a file path {e crash-safely}: the content goes to a temp
    file in the same directory which is then renamed over the target,
    so an interrupted save never leaves a torn trace file. Raises
    [Sys_error] on IO failure. *)

val load : string -> Trace.t
(** Read from a file path, strictly. Raises [Failure] with a
    line-numbered message on malformed input; [Sys_error] on IO
    failure. *)

val parse :
  ?policy:Omn_robust.Repair.policy ->
  ?file:string ->
  string ->
  (Trace.t * Omn_robust.Repair.report, Omn_robust.Err.t) result
(** Parse a trace text under an ingestion policy (default
    [Strict]). [Strict] rejects the first problem with a typed,
    line-numbered error; [Repair] clamps out-of-window contacts to the
    declared window, swaps reversed intervals and reversed window
    headers, widens a too-small declared node count, merges exact
    duplicate records, and drops what cannot be fixed (self-loops,
    non-finite times, unparsable lines); [Skip] drops every bad record
    and changes nothing else. Under [Repair] and [Skip] the returned
    report lists one event per deviation from the input. [file] is only
    used to locate error messages. *)

val load_result :
  ?policy:Omn_robust.Repair.policy ->
  string ->
  (Trace.t * Omn_robust.Repair.report, Omn_robust.Err.t) result
(** {!parse} from a file path; IO failures come back as [Io] errors
    instead of raising. *)

val output : out_channel -> Trace.t -> unit
val input : in_channel -> Trace.t

val to_string : Trace.t -> string
val of_string : string -> Trace.t
