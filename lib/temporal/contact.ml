type t = { a : Node.t; b : Node.t; t_beg : float; t_end : float }

let make ~a ~b ~t_beg ~t_end =
  if a = b then invalid_arg "Contact.make: self-contact";
  if a < 0 || b < 0 then invalid_arg "Contact.make: negative node id";
  if not (Float.is_finite t_beg && Float.is_finite t_end) then
    invalid_arg "Contact.make: non-finite bound";
  if t_beg > t_end then invalid_arg "Contact.make: reversed interval";
  let a, b = if a < b then (a, b) else (b, a) in
  { a; b; t_beg; t_end }

let duration c = c.t_end -. c.t_beg
let involves c u = c.a = u || c.b = u

let peer c u =
  if c.a = u then c.b
  else if c.b = u then c.a
  else invalid_arg "Contact.peer: node not an endpoint"

let overlaps c1 c2 = c1.t_beg <= c2.t_end && c2.t_beg <= c1.t_end

let compare_by_start c1 c2 =
  let by_beg = Float.compare c1.t_beg c2.t_beg in
  if by_beg <> 0 then by_beg
  else begin
    let by_end = Float.compare c1.t_end c2.t_end in
    if by_end <> 0 then by_end
    else begin
      let by_a = Int.compare c1.a c2.a in
      if by_a <> 0 then by_a else Int.compare c1.b c2.b
    end
  end

let equal c1 c2 = compare_by_start c1 c2 = 0

let pp fmt c =
  Format.fprintf fmt "%a-%a@[%g;%g@]" Node.pp c.a Node.pp c.b c.t_beg c.t_end
