type t = int

let compare = Int.compare
let equal = Int.equal
let pp fmt n = Format.fprintf fmt "n%d" n

type naming = { forward : (string, int) Hashtbl.t; mutable backward : string array; mutable next : int }

let naming_create () = { forward = Hashtbl.create 64; backward = [||]; next = 0 }

let intern naming name =
  match Hashtbl.find_opt naming.forward name with
  | Some id -> id
  | None ->
    let id = naming.next in
    Hashtbl.add naming.forward name id;
    let cap = Array.length naming.backward in
    if id >= cap then begin
      let fresh = Array.make (max 8 (2 * cap)) "" in
      Array.blit naming.backward 0 fresh 0 cap;
      naming.backward <- fresh
    end;
    naming.backward.(id) <- name;
    naming.next <- id + 1;
    id

let find naming name = Hashtbl.find_opt naming.forward name
let name naming id = if id >= 0 && id < naming.next then Some naming.backward.(id) else None
let size naming = naming.next
