let rebuild ?name base contacts =
  let name = Option.value name ~default:(Trace.name base) in
  Trace.create ~name ~n_nodes:(Trace.n_nodes base) ~t_start:(Trace.t_start base)
    ~t_end:(Trace.t_end base) contacts

let filter keep base =
  rebuild base (Trace.fold (fun acc c -> if keep c then c :: acc else acc) [] base)

let remove_random ~rng ~p trace =
  if not (0. <= p && p <= 1.) then invalid_arg "Transform.remove_random: bad p";
  filter (fun _ -> not (Omn_stats.Rng.bernoulli rng p)) trace

let keep_longer_than threshold trace =
  filter (fun c -> Contact.duration c > threshold) trace

let keep_shorter_than threshold trace =
  filter (fun c -> Contact.duration c <= threshold) trace

let time_window ~t_start ~t_end trace =
  if t_start > t_end then invalid_arg "Transform.time_window: reversed";
  let clipped =
    Trace.fold
      (fun acc (c : Contact.t) ->
        if c.t_end < t_start || c.t_beg > t_end then acc
        else
          Contact.make ~a:c.a ~b:c.b ~t_beg:(Float.max c.t_beg t_start)
            ~t_end:(Float.min c.t_end t_end)
          :: acc)
      [] trace
  in
  Trace.create ~name:(Trace.name trace) ~n_nodes:(Trace.n_nodes trace) ~t_start ~t_end clipped

let restrict_nodes ~keep trace =
  let n = Trace.n_nodes trace in
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for u = 0 to n - 1 do
    if keep u then begin
      remap.(u) <- !next;
      incr next
    end
  done;
  let contacts =
    Trace.fold
      (fun acc (c : Contact.t) ->
        if remap.(c.a) >= 0 && remap.(c.b) >= 0 then
          Contact.make ~a:remap.(c.a) ~b:remap.(c.b) ~t_beg:c.t_beg ~t_end:c.t_end :: acc
        else acc)
      [] trace
  in
  let back = Array.make !next (-1) in
  Array.iteri (fun old fresh -> if fresh >= 0 then back.(fresh) <- old) remap;
  ( Trace.create ~name:(Trace.name trace) ~n_nodes:!next ~t_start:(Trace.t_start trace)
      ~t_end:(Trace.t_end trace) contacts,
    back )

let quantize ~granularity trace =
  if granularity <= 0. then invalid_arg "Transform.quantize: granularity <= 0";
  let t0 = Trace.t_start trace and t1 = Trace.t_end trace in
  let snap_down t = t0 +. (Float.floor ((t -. t0) /. granularity) *. granularity) in
  let snap_up t = t0 +. (Float.ceil ((t -. t0) /. granularity) *. granularity) in
  let contacts =
    Trace.fold
      (fun acc (c : Contact.t) ->
        let t_beg = Float.max t0 (snap_down c.t_beg) in
        let t_end = Float.min t1 (snap_up c.t_end) in
        Contact.make ~a:c.a ~b:c.b ~t_beg ~t_end :: acc)
      [] trace
  in
  rebuild trace contacts

let shift delta trace =
  let contacts =
    Trace.fold
      (fun acc (c : Contact.t) ->
        Contact.make ~a:c.a ~b:c.b ~t_beg:(c.t_beg +. delta) ~t_end:(c.t_end +. delta) :: acc)
      [] trace
  in
  Trace.create ~name:(Trace.name trace) ~n_nodes:(Trace.n_nodes trace)
    ~t_start:(Trace.t_start trace +. delta) ~t_end:(Trace.t_end trace +. delta) contacts

let merge t1 t2 =
  if Trace.n_nodes t1 <> Trace.n_nodes t2 then invalid_arg "Transform.merge: node counts differ";
  let contacts = Trace.fold (fun acc c -> c :: acc) (Trace.fold (fun acc c -> c :: acc) [] t1) t2 in
  Trace.create ~name:(Trace.name t1) ~n_nodes:(Trace.n_nodes t1)
    ~t_start:(Float.min (Trace.t_start t1) (Trace.t_start t2))
    ~t_end:(Float.max (Trace.t_end t1) (Trace.t_end t2))
    contacts
