(** Contacts: labelled edges of a temporal network.

    A contact [(a, b, [t_beg; t_end])] records that devices [a] and [b]
    were within range during the whole closed interval. Contacts are
    undirected (Bluetooth sightings are symmetric once merged); a trace
    may hold several contacts between the same pair, including
    overlapping ones (they came from different scans). *)

type t = private { a : Node.t; b : Node.t; t_beg : float; t_end : float }

val make : a:Node.t -> b:Node.t -> t_beg:float -> t_end:float -> t
(** Canonicalises so that [a < b]. Raises [Invalid_argument] if
    [a = b], ids are negative, the interval is reversed, or a bound is
    not finite. Zero-duration (point) contacts are allowed: the
    continuous-time model of §3.1.2 uses them. *)

val duration : t -> float

val involves : t -> Node.t -> bool

val peer : t -> Node.t -> Node.t
(** [peer c u] is the other endpoint. Raises [Invalid_argument] if [u]
    is not an endpoint of [c]. *)

val overlaps : t -> t -> bool
(** Do the two time intervals intersect (closed intervals)? *)

val compare_by_start : t -> t -> int
(** Orders by [t_beg], then [t_end], then endpoints — a total order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
