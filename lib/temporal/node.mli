(** Node (device) identifiers.

    Nodes of a temporal network are dense integers [0 .. n-1]; datasets
    that name their devices keep the mapping in a {!naming}. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type naming
(** Bidirectional map between external device names and dense ids. *)

val naming_create : unit -> naming

val intern : naming -> string -> t
(** Id for [name], allocating the next dense id on first sight. *)

val find : naming -> string -> t option
val name : naming -> t -> string option
val size : naming -> int
