module Err = Omn_robust.Err
module Repair = Omn_robust.Repair

(* Cumulative ingestion tallies over every successful parse. *)
let m_lines = Omn_obs.Metrics.counter "ingest.lines_read"
let m_kept = Omn_obs.Metrics.counter "ingest.contacts_kept"
let m_repaired = Omn_obs.Metrics.counter "ingest.lines_repaired"
let m_dropped = Omn_obs.Metrics.counter "ingest.lines_dropped"

(* --- writing --- *)

let output oc trace =
  Printf.fprintf oc "# omn-trace 1\n";
  Printf.fprintf oc "# name %s\n" (Trace.name trace);
  Printf.fprintf oc "# nodes %d\n" (Trace.n_nodes trace);
  Printf.fprintf oc "# window %.17g %.17g\n" (Trace.t_start trace) (Trace.t_end trace);
  Trace.iter
    (fun (c : Contact.t) -> Printf.fprintf oc "%d %d %.17g %.17g\n" c.a c.b c.t_beg c.t_end)
    trace

let to_string trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# omn-trace 1\n# name %s\n# nodes %d\n# window %.17g %.17g\n"
    (Trace.name trace) (Trace.n_nodes trace) (Trace.t_start trace) (Trace.t_end trace));
  Trace.iter
    (fun (c : Contact.t) ->
      Buffer.add_string buf (Printf.sprintf "%d %d %.17g %.17g\n" c.a c.b c.t_beg c.t_end))
    trace;
  Buffer.contents buf

(* --- reading --- *)

type header = {
  mutable name : string option;
  mutable nodes : (int * int) option; (* value, line *)
  mutable window : (float * float * int) option; (* lo, hi, line *)
}

(* A parsed record that survived field- and contact-level checks, still
   tagged with its source line for later window / range diagnostics. *)
type rec_ = { ln : int; a : int; b : int; t_beg : float; t_end : float }

let parse_lines ~policy ?file lines =
  let strict = policy = Repair.Strict in
  let events = ref [] in
  let event line action detail = events := { Repair.line; action; detail } :: !events in
  let err ?line code fmt = Format.kasprintf (fun msg -> raise (Err.Error (Err.v ?file ?line code msg))) fmt in
  try
    let header = { name = None; nodes = None; window = None } in
    let records = ref [] in
    let n_lines = ref 0 in
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        let line = String.trim line in
        if line = "" then ()
        else begin
          incr n_lines;
          if line.[0] = '#' then begin
            let body = String.trim (String.sub line 1 (String.length line - 1)) in
            match String.split_on_char ' ' body with
            | "name" :: rest -> header.name <- Some (String.concat " " rest)
            | [ "nodes"; n ] -> (
              match int_of_string_opt n with
              | Some n -> header.nodes <- Some (n, lineno)
              | None ->
                if strict then err ~line:lineno Err.Header "bad node count %S" n
                else event lineno Repair.Ignored_header line)
            | [ "window"; a; b ] -> (
              match (float_of_string_opt a, float_of_string_opt b) with
              | Some a, Some b when Float.is_finite a && Float.is_finite b ->
                if a <= b then header.window <- Some (a, b, lineno)
                else begin
                  match policy with
                  | Repair.Strict ->
                    err ~line:lineno Err.Header "reversed window [%g; %g]" a b
                  | Repair.Repair ->
                    event lineno Repair.Swapped_window line;
                    header.window <- Some (b, a, lineno)
                  | Repair.Skip -> event lineno Repair.Ignored_header line
                end
              | _ ->
                if strict then err ~line:lineno Err.Header "bad window"
                else event lineno Repair.Ignored_header line)
            | _ -> () (* free comment *)
          end
          else begin
            match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
            | [ a; b; t_beg; t_end ] -> (
              match
                (int_of_string_opt a, int_of_string_opt b, float_of_string_opt t_beg,
                 float_of_string_opt t_end)
              with
              | Some a, Some b, Some t_beg, Some t_end ->
                if not (Float.is_finite t_beg && Float.is_finite t_end) then begin
                  if strict then err ~line:lineno Err.Contact "non-finite contact time"
                  else event lineno Repair.Dropped_nonfinite line
                end
                else if a < 0 || b < 0 then begin
                  if strict then err ~line:lineno Err.Contact "negative node id"
                  else event lineno Repair.Dropped_negative_id line
                end
                else if a = b then begin
                  if strict then err ~line:lineno Err.Contact "self-contact (%d %d)" a b
                  else event lineno Repair.Dropped_self_loop line
                end
                else if t_beg > t_end then begin
                  match policy with
                  | Repair.Strict ->
                    err ~line:lineno Err.Contact "reversed interval [%g; %g]" t_beg t_end
                  | Repair.Repair ->
                    event lineno Repair.Swapped_interval line;
                    records := { ln = lineno; a; b; t_beg = t_end; t_end = t_beg } :: !records
                  | Repair.Skip -> event lineno Repair.Dropped_malformed line
                end
                else records := { ln = lineno; a; b; t_beg; t_end } :: !records
              | _ ->
                if strict then err ~line:lineno Err.Parse "bad field"
                else event lineno Repair.Dropped_malformed line)
            | _ ->
              if strict then err ~line:lineno Err.Parse "expected 4 fields: a b t_beg t_end"
              else event lineno Repair.Dropped_malformed line
          end
        end)
      lines;
    let records = List.rev !records in
    (* window pass: the declared window is authoritative; reconcile the
       records with it according to the policy *)
    let records =
      match header.window with
      | None -> records
      | Some (w0, w1, _) ->
        List.filter_map
          (fun r ->
            if r.t_beg >= w0 && r.t_end <= w1 then Some r
            else
              match policy with
              | Repair.Strict ->
                err ~line:r.ln Err.Window "contact [%g; %g] outside declared window [%g; %g]"
                  r.t_beg r.t_end w0 w1
              | Repair.Skip ->
                event r.ln Repair.Dropped_out_of_window
                  (Printf.sprintf "[%g; %g] vs [%g; %g]" r.t_beg r.t_end w0 w1);
                None
              | Repair.Repair ->
                if r.t_end < w0 || r.t_beg > w1 then begin
                  event r.ln Repair.Dropped_out_of_window
                    (Printf.sprintf "[%g; %g] vs [%g; %g]" r.t_beg r.t_end w0 w1);
                  None
                end
                else begin
                  event r.ln Repair.Clamped_to_window
                    (Printf.sprintf "[%g; %g] -> [%g; %g]" r.t_beg r.t_end
                       (Float.max r.t_beg w0) (Float.min r.t_end w1));
                  Some { r with t_beg = Float.max r.t_beg w0; t_end = Float.min r.t_end w1 }
                end)
          records
    in
    (* range pass: reconcile node ids with the declared node count *)
    let max_node = List.fold_left (fun acc r -> max acc (max r.a r.b)) (-1) records in
    let n_nodes, records =
      match header.nodes with
      | Some (n, hln) when n < 0 ->
        if strict then err ~line:hln Err.Header "negative node count %d" n
        else begin
          event hln Repair.Ignored_header (Printf.sprintf "nodes %d" n);
          (max_node + 1, records)
        end
      | Some (n, _) when max_node >= n -> (
        match policy with
        | Repair.Strict ->
          let first = List.find (fun r -> r.a >= n || r.b >= n) records in
          err ~line:first.ln Err.Range "node id %d >= declared count %d"
            (max first.a first.b) n
        | Repair.Skip ->
          ( n,
            List.filter
              (fun r ->
                if r.a >= n || r.b >= n then begin
                  event r.ln Repair.Dropped_out_of_range
                    (Printf.sprintf "%d %d vs count %d" r.a r.b n);
                  false
                end
                else true)
              records )
        | Repair.Repair ->
          let first = List.find (fun r -> r.a >= n || r.b >= n) records in
          event first.ln Repair.Widened_node_count (Printf.sprintf "%d -> %d" n (max_node + 1));
          (max_node + 1, records))
      | Some (n, _) -> (n, records)
      | None -> (max_node + 1, records)
    in
    (* duplicate pass (Repair only): merge exact duplicate records *)
    let records =
      if policy <> Repair.Repair then records
      else begin
        let seen = Hashtbl.create 64 in
        List.filter
          (fun r ->
            let key = (r.a, r.b, r.t_beg, r.t_end) in
            if Hashtbl.mem seen key then begin
              event r.ln Repair.Merged_duplicate
                (Printf.sprintf "%d %d %g %g" r.a r.b r.t_beg r.t_end);
              false
            end
            else begin
              Hashtbl.add seen key ();
              true
            end)
          records
      end
    in
    let name = Option.value header.name ~default:"trace" in
    let t_start, t_end =
      match header.window with
      | Some (a, b, _) -> (a, b)
      | None ->
        if records = [] then (0., 0.)
        else
          List.fold_left
            (fun (lo, hi) r -> (Float.min lo r.t_beg, Float.max hi r.t_end))
            (infinity, neg_infinity) records
    in
    let contacts =
      List.map (fun r -> Contact.make ~a:r.a ~b:r.b ~t_beg:r.t_beg ~t_end:r.t_end) records
    in
    match Trace.create_result ~name ~n_nodes ~t_start ~t_end contacts with
    | Error e -> Error (match file with Some f -> Err.in_file f e | None -> e)
    | Ok trace ->
      let report =
        {
          Repair.policy;
          total_lines = !n_lines;
          kept = Trace.n_contacts trace;
          (* events accumulate across passes (parse, window, range,
             duplicates); re-establish source order *)
          events =
            List.stable_sort
              (fun a b -> compare a.Repair.line b.Repair.line)
              (List.rev !events);
        }
      in
      Omn_obs.Metrics.add m_lines report.Repair.total_lines;
      Omn_obs.Metrics.add m_kept report.Repair.kept;
      Omn_obs.Metrics.add m_repaired (Repair.n_repaired report);
      Omn_obs.Metrics.add m_dropped (Repair.n_dropped report);
      Ok (trace, report)
  with Err.Error e -> Error e

let parse ?(policy = Repair.Strict) ?file text =
  parse_lines ~policy ?file (String.split_on_char '\n' text)

(* --- legacy raising API (strict) --- *)

let of_string s =
  match parse s with Ok (t, _) -> t | Error e -> failwith (Err.to_string e)

let input ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  match parse_lines ~policy:Repair.Strict (List.rev !lines) with
  | Ok (t, _) -> t
  | Error e -> failwith (Err.to_string e)

(* Reads go through [Retry_io]: a transient EINTR/EAGAIN (or injected
   fault) is retried with backoff before surfacing as a typed error. *)
let load_result ?(policy = Repair.Strict) path =
  match Omn_robust.Retry_io.read_to_string path with
  | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg)
  | exception Omn_robust.Retry_io.Injected msg ->
    Error (Err.v ~file:path Err.Io ("injected fault: " ^ msg))
  | text -> parse ~policy ~file:path text

let load path =
  match load_result path with
  | Ok (t, _) -> t
  | Error { code = Err.Io; msg; _ } -> raise (Sys_error msg)
  | Error e -> failwith (Err.to_string e)

let save trace path = Omn_robust.Retry_io.write path (fun oc -> output oc trace)
