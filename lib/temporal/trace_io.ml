let output oc trace =
  Printf.fprintf oc "# omn-trace 1\n";
  Printf.fprintf oc "# name %s\n" (Trace.name trace);
  Printf.fprintf oc "# nodes %d\n" (Trace.n_nodes trace);
  Printf.fprintf oc "# window %.17g %.17g\n" (Trace.t_start trace) (Trace.t_end trace);
  Trace.iter
    (fun (c : Contact.t) -> Printf.fprintf oc "%d %d %.17g %.17g\n" c.a c.b c.t_beg c.t_end)
    trace

let to_string trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# omn-trace 1\n# name %s\n# nodes %d\n# window %.17g %.17g\n"
    (Trace.name trace) (Trace.n_nodes trace) (Trace.t_start trace) (Trace.t_end trace));
  Trace.iter
    (fun (c : Contact.t) ->
      Buffer.add_string buf (Printf.sprintf "%d %d %.17g %.17g\n" c.a c.b c.t_beg c.t_end))
    trace;
  Buffer.contents buf

type header = {
  mutable name : string option;
  mutable nodes : int option;
  mutable window : (float * float) option;
}

let parse_lines lines =
  let header = { name = None; nodes = None; window = None } in
  let contacts = ref [] in
  let max_node = ref (-1) in
  let min_t = ref infinity and max_t = ref neg_infinity in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let fail msg = failwith (Printf.sprintf "Trace_io: line %d: %s" lineno msg) in
      let line = String.trim line in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        let body = String.trim (String.sub line 1 (String.length line - 1)) in
        match String.split_on_char ' ' body with
        | "name" :: rest -> header.name <- Some (String.concat " " rest)
        | [ "nodes"; n ] -> (
          match int_of_string_opt n with
          | Some n -> header.nodes <- Some n
          | None -> fail "bad node count")
        | [ "window"; a; b ] -> (
          match (float_of_string_opt a, float_of_string_opt b) with
          | Some a, Some b -> header.window <- Some (a, b)
          | _ -> fail "bad window")
        | _ -> () (* free comment *)
      end
      else begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ a; b; t_beg; t_end ] -> (
          match
            (int_of_string_opt a, int_of_string_opt b, float_of_string_opt t_beg,
             float_of_string_opt t_end)
          with
          | Some a, Some b, Some t_beg, Some t_end ->
            let c =
              try Contact.make ~a ~b ~t_beg ~t_end
              with Invalid_argument msg -> fail msg
            in
            contacts := c :: !contacts;
            max_node := max !max_node (max a b);
            min_t := Float.min !min_t t_beg;
            max_t := Float.max !max_t t_end
          | _ -> fail "bad field")
        | _ -> fail "expected 4 fields: a b t_beg t_end"
      end)
    lines;
  let name = Option.value header.name ~default:"trace" in
  let n_nodes = Option.value header.nodes ~default:(!max_node + 1) in
  let t_start, t_end =
    match header.window with
    | Some w -> w
    | None -> if !contacts = [] then (0., 0.) else (!min_t, !max_t)
  in
  Trace.create ~name ~n_nodes ~t_start ~t_end !contacts

let of_string s = parse_lines (String.split_on_char '\n' s)

let input ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  parse_lines (List.rev !lines)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> input ic)

let save trace path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output oc trace)
