(* Immutable after construction: the adjacency index is CSR-packed
   eagerly in [create], so traces can be shared freely across domains
   with no synchronisation (there used to be a lazily filled [mutable
   adjacency] cell here — a data race whenever two domains forced it
   concurrently). *)
type time_csr = {
  csr_a : int array;
  csr_b : int array;
  csr_beg : float array;
  csr_end : float array;
  csr_off : int array;
  csr_t0 : float;
  csr_bucket_w : float;
}

type t = {
  label : string;
  n_nodes : int;
  t_start : float;
  t_end : float;
  contacts : Contact.t array;
  adj_off : int array;        (* length n_nodes + 1; row u = [off.(u), off.(u+1)) *)
  adj_pack : Contact.t array; (* length 2 * n_contacts; rows sorted by start *)
  csr : time_csr;             (* the same contacts, unboxed SoA in time order *)
}

module Err = Omn_robust.Err

(* CSR construction by counting sort. [contacts] is already sorted by
   start time and every node id validated, so appending in array order
   leaves each row sorted too. *)
let build_index ~n_nodes contacts =
  let m = Array.length contacts in
  let off = Array.make (n_nodes + 1) 0 in
  Array.iter
    (fun (c : Contact.t) ->
      off.(c.a + 1) <- off.(c.a + 1) + 1;
      off.(c.b + 1) <- off.(c.b + 1) + 1)
    contacts;
  for u = 1 to n_nodes do
    off.(u) <- off.(u) + off.(u - 1)
  done;
  if m = 0 then (off, [||])
  else begin
    let pack = Array.make (2 * m) contacts.(0) in
    let cursor = Array.sub off 0 n_nodes in
    Array.iter
      (fun (c : Contact.t) ->
        pack.(cursor.(c.a)) <- c;
        cursor.(c.a) <- cursor.(c.a) + 1;
        pack.(cursor.(c.b)) <- c;
        cursor.(c.b) <- cursor.(c.b) + 1)
      contacts;
    (off, pack)
  end

(* Time-indexed CSR: the contact multiset flattened into four parallel
   unboxed arrays in start-time order, plus bucket offsets over the
   observation window. A mixed int/float record like [Contact.t] stores
   its float fields boxed, so sweeping [contacts] dereferences two heap
   boxes per contact; the SoA mirror turns the per-round relaxation
   sweep of [Omn_core.Journey] into four sequential array reads. The
   offsets slice the window into equal-width time buckets ([csr_off]
   has one entry per bucket boundary, [csr_off.(k)] = first contact
   with [t_beg >= csr_t0 + k * csr_bucket_w]), so windowed sweeps can
   seek in O(1) instead of binary-searching. *)
let build_time_csr ~t_start ~t_end (contacts : Contact.t array) =
  let m = Array.length contacts in
  let csr_a = Array.make m 0 and csr_b = Array.make m 0 in
  let csr_beg = Array.make m 0. and csr_end = Array.make m 0. in
  Array.iteri
    (fun i (c : Contact.t) ->
      csr_a.(i) <- c.a;
      csr_b.(i) <- c.b;
      csr_beg.(i) <- c.t_beg;
      csr_end.(i) <- c.t_end)
    contacts;
  let span = t_end -. t_start in
  let n_buckets = if m = 0 || span <= 0. then 1 else min 4096 m in
  let bucket_w = if span > 0. then span /. float_of_int n_buckets else 0. in
  let csr_off = Array.make (n_buckets + 1) m in
  let i = ref 0 in
  for k = 0 to n_buckets - 1 do
    let boundary = t_start +. (float_of_int k *. bucket_w) in
    while !i < m && csr_beg.(!i) < boundary do
      incr i
    done;
    csr_off.(k) <- !i
  done;
  (* csr_off.(n_buckets) = m: the last bucket is right-closed so the
     contact starting exactly at t_end lands in it. *)
  { csr_a; csr_b; csr_beg; csr_end; csr_off; csr_t0 = t_start; csr_bucket_w = bucket_w }

let create_array_result ?(name = "trace") ~n_nodes ~t_start ~t_end contacts =
  let exception Bad of Err.t in
  try
    if n_nodes < 0 then raise (Bad (Err.errf Err.Range "Trace.create: n_nodes < 0 (%d)" n_nodes));
    if t_start > t_end then
      raise
        (Bad (Err.errf Err.Window "Trace.create: reversed window [%g; %g]" t_start t_end));
    Array.iter
      (fun (c : Contact.t) ->
        (* Both endpoints, both bounds: [Contact.make] canonicalises to
           [0 <= a < b], but contacts can reach us through [Marshal] or
           other private-constructor bypasses, and the index construction
           below would crash on them instead of reporting a typed error. *)
        if c.a < 0 || c.a >= n_nodes || c.b < 0 || c.b >= n_nodes then
          raise
            (Bad
               (Err.errf Err.Range "Trace.create: node id %d out of range (n_nodes = %d)"
                  (if c.a < 0 || c.a >= n_nodes then c.a else c.b)
                  n_nodes));
        if c.t_beg < t_start || c.t_end > t_end then
          raise
            (Bad
               (Err.errf Err.Window
                  "Trace.create: contact [%g; %g] outside window [%g; %g]" c.t_beg c.t_end
                  t_start t_end)))
      contacts;
    Array.sort Contact.compare_by_start contacts;
    let adj_off, adj_pack = build_index ~n_nodes contacts in
    let csr = build_time_csr ~t_start ~t_end contacts in
    Ok { label = name; n_nodes; t_start; t_end; contacts; adj_off; adj_pack; csr }
  with Bad e -> Error e

let create_result ?name ~n_nodes ~t_start ~t_end contact_list =
  create_array_result ?name ~n_nodes ~t_start ~t_end (Array.of_list contact_list)

let create ?name ~n_nodes ~t_start ~t_end contact_list =
  match create_result ?name ~n_nodes ~t_start ~t_end contact_list with
  | Ok t -> t
  | Error e -> invalid_arg (Err.to_string e)

let name t = t.label
let with_name t label = { t with label }
let n_nodes t = t.n_nodes
let t_start t = t.t_start
let t_end t = t.t_end
let span t = t.t_end -. t.t_start
let n_contacts t = Array.length t.contacts
let contacts t = t.contacts
let contact t i = t.contacts.(i)
let iter f t = Array.iter f t.contacts
let fold f init t = Array.fold_left f init t.contacts

let check_node t u fn =
  if u < 0 || u >= t.n_nodes then invalid_arg ("Trace." ^ fn ^ ": bad node")

let degree t u =
  check_node t u "degree";
  t.adj_off.(u + 1) - t.adj_off.(u)

let node_contacts t u =
  check_node t u "node_contacts";
  Array.sub t.adj_pack t.adj_off.(u) (t.adj_off.(u + 1) - t.adj_off.(u))

let iter_node_contacts f t u =
  check_node t u "iter_node_contacts";
  for i = t.adj_off.(u) to t.adj_off.(u + 1) - 1 do
    f t.adj_pack.(i)
  done

let fold_node_contacts f init t u =
  check_node t u "fold_node_contacts";
  let acc = ref init in
  for i = t.adj_off.(u) to t.adj_off.(u + 1) - 1 do
    acc := f !acc t.adj_pack.(i)
  done;
  !acc

let pair_contacts t u v =
  let u, v = if u < v then (u, v) else (v, u) in
  check_node t v "pair_contacts";
  List.rev
    (fold_node_contacts
       (fun acc (c : Contact.t) -> if c.a = u && c.b = v then c :: acc else acc)
       [] t u)

let time_csr t = t.csr

let iter_started_in t ~t0 ~t1 f =
  let csr = t.csr in
  let m = Array.length csr.csr_beg in
  if m > 0 && t1 >= t0 then begin
    (* Seek to the bucket containing t0, then walk forward. *)
    let n_buckets = Array.length csr.csr_off - 1 in
    let k =
      if csr.csr_bucket_w <= 0. then 0
      else
        let k = int_of_float ((t0 -. csr.csr_t0) /. csr.csr_bucket_w) in
        max 0 (min (n_buckets - 1) k)
    in
    let i = ref csr.csr_off.(k) in
    while !i < m && csr.csr_beg.(!i) < t0 do
      incr i
    done;
    while !i < m && csr.csr_beg.(!i) <= t1 do
      f csr.csr_a.(!i) csr.csr_b.(!i) csr.csr_beg.(!i) csr.csr_end.(!i);
      incr i
    done
  end

let contact_rate t =
  let duration = span t in
  if t.n_nodes = 0 || duration <= 0. then 0.
  else 2. *. float_of_int (n_contacts t) /. (float_of_int t.n_nodes *. duration)

let active_nodes t =
  let count = ref 0 in
  for u = 0 to t.n_nodes - 1 do
    if t.adj_off.(u + 1) > t.adj_off.(u) then incr count
  done;
  !count

let pp_summary fmt t =
  Format.fprintf fmt "@[<h>%s: %d nodes, %d contacts, window [%g; %g] (%s), rate %.3g/node/day@]"
    t.label t.n_nodes (n_contacts t) t.t_start t.t_end
    (Omn_stats.Timefmt.duration (span t))
    (contact_rate t *. 86400.)
