type t = {
  label : string;
  n_nodes : int;
  t_start : float;
  t_end : float;
  contacts : Contact.t array;
  mutable adjacency : Contact.t array array option; (* built lazily *)
}

module Err = Omn_robust.Err

let create_result ?(name = "trace") ~n_nodes ~t_start ~t_end contact_list =
  let exception Bad of Err.t in
  try
    if n_nodes < 0 then raise (Bad (Err.errf Err.Range "Trace.create: n_nodes < 0 (%d)" n_nodes));
    if t_start > t_end then
      raise
        (Bad (Err.errf Err.Window "Trace.create: reversed window [%g; %g]" t_start t_end));
    let contacts = Array.of_list contact_list in
    Array.iter
      (fun (c : Contact.t) ->
        if c.b >= n_nodes then
          raise
            (Bad
               (Err.errf Err.Range "Trace.create: node id %d out of range (n_nodes = %d)"
                  c.b n_nodes));
        if c.t_beg < t_start || c.t_end > t_end then
          raise
            (Bad
               (Err.errf Err.Window
                  "Trace.create: contact [%g; %g] outside window [%g; %g]" c.t_beg c.t_end
                  t_start t_end)))
      contacts;
    Array.sort Contact.compare_by_start contacts;
    Ok { label = name; n_nodes; t_start; t_end; contacts; adjacency = None }
  with Bad e -> Error e

let create ?name ~n_nodes ~t_start ~t_end contact_list =
  match create_result ?name ~n_nodes ~t_start ~t_end contact_list with
  | Ok t -> t
  | Error e -> invalid_arg (Err.to_string e)

let name t = t.label
let with_name t label = { t with label; adjacency = None }
let n_nodes t = t.n_nodes
let t_start t = t.t_start
let t_end t = t.t_end
let span t = t.t_end -. t.t_start
let n_contacts t = Array.length t.contacts
let contacts t = t.contacts
let contact t i = t.contacts.(i)
let iter f t = Array.iter f t.contacts
let fold f init t = Array.fold_left f init t.contacts

let build_adjacency t =
  (* Walk the sorted contacts right-to-left so per-node lists come out in
     ascending start order. *)
  let lists = Array.make t.n_nodes [] in
  for i = Array.length t.contacts - 1 downto 0 do
    let c = t.contacts.(i) in
    lists.(c.a) <- c :: lists.(c.a);
    lists.(c.b) <- c :: lists.(c.b)
  done;
  Array.map Array.of_list lists

let adjacency t =
  match t.adjacency with
  | Some adj -> adj
  | None ->
    let adj = build_adjacency t in
    t.adjacency <- Some adj;
    adj

let node_contacts t u =
  if u < 0 || u >= t.n_nodes then invalid_arg "Trace.node_contacts: bad node";
  (adjacency t).(u)

let pair_contacts t u v =
  let u, v = if u < v then (u, v) else (v, u) in
  let among = node_contacts t u in
  Array.fold_right
    (fun (c : Contact.t) acc -> if c.a = u && c.b = v then c :: acc else acc)
    among []

let degree t u = Array.length (node_contacts t u)

let contact_rate t =
  let duration = span t in
  if t.n_nodes = 0 || duration <= 0. then 0.
  else 2. *. float_of_int (n_contacts t) /. (float_of_int t.n_nodes *. duration)

let active_nodes t =
  let seen = Array.make t.n_nodes false in
  Array.iter
    (fun (c : Contact.t) ->
      seen.(c.a) <- true;
      seen.(c.b) <- true)
    t.contacts;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

let pp_summary fmt t =
  Format.fprintf fmt "@[<h>%s: %d nodes, %d contacts, window [%g; %g] (%s), rate %.3g/node/day@]"
    t.label t.n_nodes (n_contacts t) t.t_start t.t_end
    (Omn_stats.Timefmt.duration (span t))
    (contact_rate t *. 86400.)
