(** Streaming trace ingestion: [Trace_io]'s parser as a single pass.

    [Trace_io.load_result] materialises the whole file as a string,
    then a line list, then a record list before any contact exists —
    several times the file size in transient heap. This reader feeds
    fixed-size chunks through an incremental parser that applies the
    same strict/repair/skip policies record by record, so peak memory
    is the contact storage itself (or O(1) with {!fold_result}).

    Compatibility contract, pinned by the differential suite in
    [test/test_stream.ml]: on any {e time-ordered, header-first} input
    — which is every file [Trace_io.save] or [Omn_mobility.Shard_sink]
    writes — {!load_result} returns the byte-identical trace {e and}
    repair report as [Trace_io.load_result], under all three policies,
    including all error messages in [Strict] mode. Two documented
    divergences, both on inputs a saved trace never contains:
    - a record whose (post-repair) [t_beg] precedes an already-emitted
      one is rejected with a typed [Contact] error under {e every}
      policy ([Trace_io] sorts at the end; a one-pass reader cannot);
    - a [nodes] or [window] header appearing {e after} records is
      accepted silently when it restates the effective value (shard
      concatenation) and is otherwise a [Header] error ([Strict]) or
      an [Ignored_header] event ([Trace_io] is last-wins).

    Shard indexes: a file whose first line is [# omn-shards 1] lists
    one shard filename per non-comment line (relative to the index's
    directory); the shards are streamed in order as one logical trace,
    line numbers continuing across files. *)

type summary = {
  s_name : string;
  s_n_nodes : int;
  s_window : float * float;
  s_report : Omn_robust.Repair.report;
}
(** What remains of a trace once the contacts have been consumed. *)

val load_result :
  ?policy:Omn_robust.Repair.policy ->
  ?chunk:int ->
  string ->
  (Trace.t * Omn_robust.Repair.report, Omn_robust.Err.t) result
(** Stream a file (or shard index) into a {!Trace.t}. [policy]
    defaults to [Strict], [chunk] to 64 KiB. IO failures come back as
    [Io] errors. *)

val fold_result :
  ?policy:Omn_robust.Repair.policy ->
  ?chunk:int ->
  init:'a ->
  f:('a -> Contact.t -> 'a) ->
  string ->
  ('a * summary, Omn_robust.Err.t) result
(** Fold over the contacts in time order without building a trace —
    O(chunk + dedup-run) memory. [f] observes contacts as they are
    emitted; on an [Error] return (including deferred [Strict]
    violations, which are only resolvable at EOF) the accumulator is
    discarded, and [f] may already have run. The final node count and
    window are only known at EOF, in the returned {!summary}. *)

val parse_chunks :
  ?policy:Omn_robust.Repair.policy ->
  ?file:string ->
  string list ->
  (Trace.t * Omn_robust.Repair.report, Omn_robust.Err.t) result
(** Parse text delivered as arbitrary chunks (boundaries may fall
    anywhere, including inside a record): the result only depends on
    the concatenation. Shard-index magic is not interpreted here — a
    [# omn-shards 1] line is a free comment, exactly as in
    [Trace_io.parse]. *)

val parse :
  ?policy:Omn_robust.Repair.policy ->
  ?file:string ->
  string ->
  (Trace.t * Omn_robust.Repair.report, Omn_robust.Err.t) result
(** [parse_chunks] on a single chunk. *)
