module Empirical = Omn_stats.Empirical

type summary = {
  label : string;
  duration_days : float;
  n_nodes : int;
  active_nodes : int;
  n_contacts : int;
  contact_rate_per_day : float;
  median_duration : float;
  mean_duration : float;
}

let durations trace =
  Array.map Contact.duration (Trace.contacts trace)

let duration_distribution trace =
  let d = durations trace in
  if Array.length d = 0 then invalid_arg "Trace_stats.duration_distribution: empty trace";
  Empirical.of_array d

let summary trace =
  let n = Trace.n_contacts trace in
  let median_duration, mean_duration =
    if n = 0 then (nan, nan)
    else begin
      let dist = duration_distribution trace in
      (Empirical.quantile dist 0.5, Empirical.mean_finite dist)
    end
  in
  {
    label = Trace.name trace;
    duration_days = Trace.span trace /. 86400.;
    n_nodes = Trace.n_nodes trace;
    active_nodes = Trace.active_nodes trace;
    n_contacts = n;
    contact_rate_per_day = Trace.contact_rate trace *. 86400.;
    median_duration;
    mean_duration;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>%s:@,\
    \  duration          %.2f days@,\
    \  devices           %d (%d active)@,\
    \  contacts          %d@,\
    \  contact rate      %.3f /node/day@,\
    \  contact duration  median %s, mean %s@]"
    s.label s.duration_days s.n_nodes s.active_nodes s.n_contacts s.contact_rate_per_day
    (Omn_stats.Timefmt.duration s.median_duration)
    (Omn_stats.Timefmt.duration s.mean_duration)

let duration_ccdf trace grid =
  let dist = duration_distribution trace in
  Array.map (fun g -> Empirical.ccdf dist g) grid

let fraction_duration_leq trace threshold =
  let n = Trace.n_contacts trace in
  if n = 0 then 0.
  else begin
    let k = Trace.fold (fun acc c -> if Contact.duration c <= threshold then acc + 1 else acc) 0 trace in
    float_of_int k /. float_of_int n
  end

let inter_contact_times trace =
  (* Group per unordered pair, then diff successive intervals. *)
  let table : (int * int, Contact.t list) Hashtbl.t = Hashtbl.create 256 in
  Trace.iter
    (fun (c : Contact.t) ->
      let key = (c.a, c.b) in
      let prev = Option.value (Hashtbl.find_opt table key) ~default:[] in
      Hashtbl.replace table key (c :: prev))
    trace;
  let gaps = ref [] in
  Hashtbl.iter
    (fun _ cs ->
      let cs = List.sort Contact.compare_by_start cs in
      let rec walk = function
        | (c1 : Contact.t) :: ((c2 : Contact.t) :: _ as rest) ->
          gaps := Float.max 0. (c2.t_beg -. c1.t_end) :: !gaps;
          walk rest
        | _ -> ()
      in
      walk cs)
    table;
  match !gaps with
  | [] -> None
  | gaps -> Some (Empirical.of_array (Array.of_list gaps))

let next_contact_steps trace u =
  (* Union the node's contact intervals, then emit the staircase. *)
  let intervals =
    Array.to_list (Trace.node_contacts trace u)
    |> List.map (fun (c : Contact.t) -> (c.t_beg, c.t_end))
    |> List.sort compare
  in
  let merged =
    List.fold_left
      (fun acc (b, e) ->
        match acc with
        | (b', e') :: rest when b <= e' -> (b', Float.max e e') :: rest
        | _ -> (b, e) :: acc)
      [] intervals
    |> List.rev
  in
  let t_stop = Trace.t_end trace in
  let rec emit t = function
    | [] -> if t <= t_stop then [ (t, infinity) ] else []
    | (b, e) :: rest ->
      if t < b then (t, b) :: (b, b) :: emit b ((b, e) :: rest)
      else (* inside the interval: the diagonal until e *)
        (e, e) :: emit (Float.succ e) rest
  in
  match merged with
  | [] -> [ (Trace.t_start trace, infinity) ]
  | (b, _) :: _ ->
    let head = if Trace.t_start trace < b then [ (Trace.t_start trace, b) ] else [] in
    head @ emit b merged

let contacts_per_window trace ~window =
  if window <= 0. then invalid_arg "Trace_stats.contacts_per_window: window <= 0";
  let t0 = Trace.t_start trace in
  let n_windows = int_of_float (Float.ceil (Trace.span trace /. window)) in
  let n_windows = max n_windows 1 in
  let counts = Array.make n_windows 0 in
  Trace.iter
    (fun (c : Contact.t) ->
      let idx = int_of_float ((c.t_beg -. t0) /. window) in
      let idx = min (n_windows - 1) (max 0 idx) in
      counts.(idx) <- counts.(idx) + 1)
    trace;
  Array.mapi (fun i k -> (t0 +. (float_of_int i *. window), k)) counts
