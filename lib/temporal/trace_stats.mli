(** Descriptive statistics of a contact trace — everything Table 1 and
    Figs. 6–7 of the paper report. *)

type summary = {
  label : string;
  duration_days : float;
  n_nodes : int;
  active_nodes : int;
  n_contacts : int;
  contact_rate_per_day : float;  (** contacts made by a node per day (λ of §3) *)
  median_duration : float;       (** seconds *)
  mean_duration : float;         (** seconds *)
}

val summary : Trace.t -> summary
val pp_summary : Format.formatter -> summary -> unit

val duration_distribution : Trace.t -> Omn_stats.Empirical.t
(** Distribution of contact durations (Fig. 7 plots its CCDF). *)

val duration_ccdf : Trace.t -> float array -> float array
(** CCDF of contact duration on a given grid of durations. *)

val fraction_duration_leq : Trace.t -> float -> float
(** Fraction of contacts with duration <= threshold (e.g. one scan slot:
    the paper reports 75 % for Infocom06 at 120 s). 0 on empty traces. *)

val inter_contact_times : Trace.t -> Omn_stats.Empirical.t option
(** Distribution of gaps between successive contacts of the same pair
    (gap = next [t_beg] - previous [t_end], clamped at 0 for overlapping
    records). [None] when no pair meets twice. *)

val next_contact_steps : Trace.t -> Node.t -> (float * float) list
(** Fig. 6's curve for one node: sample points [(departure, arrival)]
    where [arrival] is the first instant >= [departure] at which the node
    is in contact with anyone ([infinity] if never again). The list
    contains one point per breakpoint of this staircase, in ascending
    departure order: within a contact period arrival = departure (the
    diagonal); in a disconnection period arrival is the constant next
    contact start. *)

val contacts_per_window : Trace.t -> window:float -> (float * int) array
(** Activity profile: number of contacts beginning in each successive
    window of the given width (pairs of window start time and count). *)
