module Err = Omn_robust.Err
module Repair = Omn_robust.Repair

(* Same cells as [Trace_io]'s — [Metrics.counter] returns the existing
   registration for a known name, so streaming and in-memory ingestion
   tally into one place. *)
let m_lines = Omn_obs.Metrics.counter "ingest.lines_read"
let m_kept = Omn_obs.Metrics.counter "ingest.contacts_kept"
let m_repaired = Omn_obs.Metrics.counter "ingest.lines_repaired"
let m_dropped = Omn_obs.Metrics.counter "ingest.lines_dropped"

let shard_magic = "# omn-shards 1"
let default_chunk = 64 * 1024

type summary = {
  s_name : string;
  s_n_nodes : int;
  s_window : float * float;
  s_report : Repair.report;
}

(* The parser state is [Trace_io.parse_lines] unrolled into a single
   pass. [Trace_io] runs four whole-input passes (line parse, window,
   range, duplicates); a streaming reader has to decide per record, so
   every whole-input decision is carried as deferred state and resolved
   at EOF:
   - strict window/range violations are *deferred*, not raised, because
     in [Trace_io] a parse error anywhere in the file outranks them
     (its line pass completes before the window pass starts);
   - [Repair]'s [Widened_node_count] needs the final max node id, so
     only the first violator's line is remembered;
   - events are kept in four per-pass lists and concatenated in pass
     order before the final stable sort by line, reproducing
     [Trace_io]'s event order exactly (same-line events tie-break by
     pass).
   The one semantic addition: emitted records must be non-decreasing in
   [t_beg] (that is what makes single-pass window/duplicate handling
   sound), so an out-of-order record is a typed [Contact] error under
   every policy. [Trace_io.save] always writes time-ordered files, so
   the two readers agree byte-for-byte on every saved trace. *)
type state = {
  policy : Repair.policy;
  strict : bool;
  mutable file : string option;  (* current file, for error locations *)
  mutable carry : string;  (* partial last line of the previous chunk *)
  mutable lineno : int;
  mutable n_lines : int;  (* non-blank *)
  mutable h_name : string option;
  mutable h_nodes : (int * int) option;  (* value, line *)
  mutable h_window : (float * float * int) option;  (* lo, hi, line *)
  mutable saw_record : bool;
  (* per-pass event lists, newest first *)
  mutable ev_parse : Repair.event list;
  mutable ev_window : Repair.event list;
  mutable ev_range : Repair.event list;
  mutable ev_dup : Repair.event list;
  mutable strict_window : Err.t option;  (* first out-of-window record *)
  mutable strict_range : Err.t option;  (* first out-of-range record *)
  mutable widen_line : int;  (* first Repair range violator; -1 = none *)
  mutable max_node : int;  (* over records surviving the window pass *)
  mutable last_beg : float;  (* order check over emitted records *)
  dedup : (int * int * float * float, unit) Hashtbl.t;
  mutable dedup_beg : float;  (* t_beg of the current duplicate run *)
  mutable kept : int;
  mutable min_beg : float;  (* window inference, over emitted records *)
  mutable max_end : float;
  emit : Contact.t -> unit;
}

let create ~policy ~emit =
  {
    policy;
    strict = policy = Repair.Strict;
    file = None;
    carry = "";
    lineno = 0;
    n_lines = 0;
    h_name = None;
    h_nodes = None;
    h_window = None;
    saw_record = false;
    ev_parse = [];
    ev_window = [];
    ev_range = [];
    ev_dup = [];
    strict_window = None;
    strict_range = None;
    widen_line = -1;
    max_node = -1;
    last_beg = neg_infinity;
    dedup = Hashtbl.create 64;
    dedup_beg = nan;
    kept = 0;
    min_beg = infinity;
    max_end = neg_infinity;
    emit = (fun c -> emit c);
  }

let err st ?line code fmt =
  Format.kasprintf (fun msg -> raise (Err.Error (Err.v ?file:st.file ?line code msg))) fmt

(* A [nodes] or [window] header after the first record: [Trace_io] is
   last-wins because it collects headers before touching any record; a
   streaming reader has already applied the old value, so a *different*
   late value cannot be honoured. An equal restatement (what
   concatenated [Shard_sink] shards produce) passes silently. *)
let late_header st lineno line =
  if st.strict then err st ~line:lineno Err.Header "conflicting header after contact records"
  else
    st.ev_parse <-
      { Repair.line = lineno; action = Repair.Ignored_header; detail = line } :: st.ev_parse

let handle_header st lineno line =
  let body = String.trim (String.sub line 1 (String.length line - 1)) in
  match String.split_on_char ' ' body with
  | "name" :: rest -> st.h_name <- Some (String.concat " " rest)
  | [ "nodes"; n ] -> (
    match int_of_string_opt n with
    | Some n ->
      if st.saw_record then begin
        match st.h_nodes with Some (n0, _) when n0 = n -> () | _ -> late_header st lineno line
      end
      else st.h_nodes <- Some (n, lineno)
    | None ->
      if st.strict then err st ~line:lineno Err.Header "bad node count %S" n
      else
        st.ev_parse <-
          { Repair.line = lineno; action = Repair.Ignored_header; detail = line } :: st.ev_parse)
  | [ "window"; a; b ] -> (
    let set lo hi =
      if st.saw_record then begin
        match st.h_window with
        | Some (l0, h0, _) when l0 = lo && h0 = hi -> ()
        | _ -> late_header st lineno line
      end
      else st.h_window <- Some (lo, hi, lineno)
    in
    match (float_of_string_opt a, float_of_string_opt b) with
    | Some a, Some b when Float.is_finite a && Float.is_finite b ->
      if a <= b then set a b
      else begin
        match st.policy with
        | Repair.Strict -> err st ~line:lineno Err.Header "reversed window [%g; %g]" a b
        | Repair.Repair ->
          if not st.saw_record then
            st.ev_parse <-
              { Repair.line = lineno; action = Repair.Swapped_window; detail = line }
              :: st.ev_parse;
          set b a
        | Repair.Skip ->
          st.ev_parse <-
            { Repair.line = lineno; action = Repair.Ignored_header; detail = line }
            :: st.ev_parse
      end
    | _ ->
      if st.strict then err st ~line:lineno Err.Header "bad window"
      else
        st.ev_parse <-
          { Repair.line = lineno; action = Repair.Ignored_header; detail = line } :: st.ev_parse)
  | _ -> () (* free comment *)

(* One record that survived field- and contact-level checks, run
   through the window / order / range / duplicate pipeline. *)
let record st ln a b t_beg t_end =
  st.saw_record <- true;
  let keep, t_beg, t_end =
    match st.h_window with
    | None -> (true, t_beg, t_end)
    | Some (w0, w1, _) ->
      if t_beg >= w0 && t_end <= w1 then (true, t_beg, t_end)
      else begin
        match st.policy with
        | Repair.Strict ->
          if st.strict_window = None then
            st.strict_window <-
              Some
                (Err.v ?file:st.file ~line:ln Err.Window
                   (Format.asprintf "contact [%g; %g] outside declared window [%g; %g]" t_beg
                      t_end w0 w1));
          (false, t_beg, t_end)
        | Repair.Skip ->
          st.ev_window <-
            {
              Repair.line = ln;
              action = Repair.Dropped_out_of_window;
              detail = Printf.sprintf "[%g; %g] vs [%g; %g]" t_beg t_end w0 w1;
            }
            :: st.ev_window;
          (false, t_beg, t_end)
        | Repair.Repair ->
          if t_end < w0 || t_beg > w1 then begin
            st.ev_window <-
              {
                Repair.line = ln;
                action = Repair.Dropped_out_of_window;
                detail = Printf.sprintf "[%g; %g] vs [%g; %g]" t_beg t_end w0 w1;
              }
              :: st.ev_window;
            (false, t_beg, t_end)
          end
          else begin
            let nb = Float.max t_beg w0 and ne = Float.min t_end w1 in
            st.ev_window <-
              {
                Repair.line = ln;
                action = Repair.Clamped_to_window;
                detail = Printf.sprintf "[%g; %g] -> [%g; %g]" t_beg t_end nb ne;
              }
              :: st.ev_window;
            (true, nb, ne)
          end
      end
  in
  if keep then begin
    if t_beg < st.last_beg then begin
      (* A pending strict window violation outranks the order error:
         [Trace_io] would have reported it for this input. *)
      (match st.strict_window with Some e -> raise (Err.Error e) | None -> ());
      err st ~line:ln Err.Contact
        "out-of-order contact: t_beg %g after %g (streaming requires time-ordered input)" t_beg
        st.last_beg
    end;
    st.last_beg <- t_beg;
    if a > st.max_node then st.max_node <- a;
    if b > st.max_node then st.max_node <- b;
    let keep =
      match st.h_nodes with
      | Some (n, _) when n >= 0 && (a >= n || b >= n) -> (
        match st.policy with
        | Repair.Strict ->
          if st.strict_range = None then
            st.strict_range <-
              Some
                (Err.v ?file:st.file ~line:ln Err.Range
                   (Printf.sprintf "node id %d >= declared count %d" (max a b) n));
          true
        | Repair.Skip ->
          st.ev_range <-
            {
              Repair.line = ln;
              action = Repair.Dropped_out_of_range;
              detail = Printf.sprintf "%d %d vs count %d" a b n;
            }
            :: st.ev_range;
          false
        | Repair.Repair ->
          if st.widen_line < 0 then st.widen_line <- ln;
          true)
      | _ -> true
    in
    if keep then begin
      (* Duplicate runs: [Trace_io] dedups with a whole-file table keyed
         on the post-clamp record; its key includes [t_beg], and emitted
         [t_beg] is non-decreasing, so duplicates are always contiguous
         in equal-[t_beg] runs and a per-run table is equivalent. *)
      let dup =
        st.policy = Repair.Repair
        && begin
             if t_beg <> st.dedup_beg then begin
               Hashtbl.reset st.dedup;
               st.dedup_beg <- t_beg
             end;
             let key = (a, b, t_beg, t_end) in
             if Hashtbl.mem st.dedup key then begin
               st.ev_dup <-
                 {
                   Repair.line = ln;
                   action = Repair.Merged_duplicate;
                   detail = Printf.sprintf "%d %d %g %g" a b t_beg t_end;
                 }
                 :: st.ev_dup;
               true
             end
             else begin
               Hashtbl.add st.dedup key ();
               false
             end
           end
      in
      if not dup then begin
        st.kept <- st.kept + 1;
        if t_beg < st.min_beg then st.min_beg <- t_beg;
        if t_end > st.max_end then st.max_end <- t_end;
        st.emit (Contact.make ~a ~b ~t_beg ~t_end)
      end
    end
  end

let handle_record_line st lineno line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ a; b; t_beg; t_end ] -> (
    match
      (int_of_string_opt a, int_of_string_opt b, float_of_string_opt t_beg,
       float_of_string_opt t_end)
    with
    | Some a, Some b, Some t_beg, Some t_end ->
      if not (Float.is_finite t_beg && Float.is_finite t_end) then begin
        if st.strict then err st ~line:lineno Err.Contact "non-finite contact time"
        else
          st.ev_parse <-
            { Repair.line = lineno; action = Repair.Dropped_nonfinite; detail = line }
            :: st.ev_parse
      end
      else if a < 0 || b < 0 then begin
        if st.strict then err st ~line:lineno Err.Contact "negative node id"
        else
          st.ev_parse <-
            { Repair.line = lineno; action = Repair.Dropped_negative_id; detail = line }
            :: st.ev_parse
      end
      else if a = b then begin
        if st.strict then err st ~line:lineno Err.Contact "self-contact (%d %d)" a b
        else
          st.ev_parse <-
            { Repair.line = lineno; action = Repair.Dropped_self_loop; detail = line }
            :: st.ev_parse
      end
      else if t_beg > t_end then begin
        match st.policy with
        | Repair.Strict ->
          err st ~line:lineno Err.Contact "reversed interval [%g; %g]" t_beg t_end
        | Repair.Repair ->
          st.ev_parse <-
            { Repair.line = lineno; action = Repair.Swapped_interval; detail = line }
            :: st.ev_parse;
          record st lineno a b t_end t_beg
        | Repair.Skip ->
          st.ev_parse <-
            { Repair.line = lineno; action = Repair.Dropped_malformed; detail = line }
            :: st.ev_parse
      end
      else record st lineno a b t_beg t_end
    | _ ->
      if st.strict then err st ~line:lineno Err.Parse "bad field"
      else
        st.ev_parse <-
          { Repair.line = lineno; action = Repair.Dropped_malformed; detail = line }
          :: st.ev_parse)
  | _ ->
    if st.strict then err st ~line:lineno Err.Parse "expected 4 fields: a b t_beg t_end"
    else
      st.ev_parse <-
        { Repair.line = lineno; action = Repair.Dropped_malformed; detail = line }
        :: st.ev_parse

let process_line st raw =
  st.lineno <- st.lineno + 1;
  let line = String.trim raw in
  if line = "" then ()
  else begin
    st.n_lines <- st.n_lines + 1;
    if line.[0] = '#' then handle_header st st.lineno line
    else handle_record_line st st.lineno line
  end

(* Feed a chunk of bytes; a partial trailing line is carried into the
   next chunk, so any chunking of the input — including one byte at a
   time — processes the identical line sequence. *)
let feed st chunk =
  let data = if st.carry = "" then chunk else st.carry ^ chunk in
  let n = String.length data in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from data !start '\n' in
       process_line st (String.sub data !start (i - !start));
       start := i + 1
     done
   with Not_found -> ());
  st.carry <- String.sub data !start (n - !start)

(* End of one input file: the carry is its last line. [Trace_io] splits
   on '\n' so a file always yields a final (possibly empty) segment;
   processing the carry unconditionally matches. *)
let eof_file st =
  let last = st.carry in
  st.carry <- "";
  process_line st last

let finalize st =
  (match st.strict_window with Some e -> raise (Err.Error e) | None -> ());
  let n_nodes =
    match st.h_nodes with
    | Some (n, hln) when n < 0 ->
      if st.strict then err st ~line:hln Err.Header "negative node count %d" n
      else begin
        st.ev_range <-
          {
            Repair.line = hln;
            action = Repair.Ignored_header;
            detail = Printf.sprintf "nodes %d" n;
          }
          :: st.ev_range;
        st.max_node + 1
      end
    | Some (n, _) ->
      (match st.strict_range with Some e -> raise (Err.Error e) | None -> ());
      if st.widen_line >= 0 then begin
        st.ev_range <-
          {
            Repair.line = st.widen_line;
            action = Repair.Widened_node_count;
            detail = Printf.sprintf "%d -> %d" n (st.max_node + 1);
          }
          :: st.ev_range;
        st.max_node + 1
      end
      else n
    | None -> st.max_node + 1
  in
  let t_start, t_end =
    match st.h_window with
    | Some (a, b, _) -> (a, b)
    | None -> if st.kept = 0 then (0., 0.) else (st.min_beg, st.max_end)
  in
  let name = Option.value st.h_name ~default:"trace" in
  let events =
    List.stable_sort
      (fun a b -> compare a.Repair.line b.Repair.line)
      (List.rev st.ev_parse @ List.rev st.ev_window @ List.rev st.ev_range @ List.rev st.ev_dup)
  in
  let report = { Repair.policy = st.policy; total_lines = st.n_lines; kept = st.kept; events } in
  Omn_obs.Metrics.add m_lines report.Repair.total_lines;
  Omn_obs.Metrics.add m_kept report.Repair.kept;
  Omn_obs.Metrics.add m_repaired (Repair.n_repaired report);
  Omn_obs.Metrics.add m_dropped (Repair.n_dropped report);
  (name, n_nodes, (t_start, t_end), report)

(* --- drivers --- *)

let pump st buf ic =
  let rec loop () =
    let n = input ic buf 0 (Bytes.length buf) in
    if n > 0 then begin
      feed st (Bytes.sub_string buf 0 n);
      loop ()
    end
  in
  loop ()

let shard_list ~index_path text =
  let dir = Filename.dirname index_path in
  String.split_on_char '\n' text
  |> List.filter_map (fun l ->
       let l = String.trim l in
       if l = "" || l.[0] = '#' then None
       else Some (if Filename.is_relative l then Filename.concat dir l else l))

(* Raises [Err.Error]; [Sys_error] is mapped by the public wrappers. *)
let run ~policy ~chunk ~emit path =
  let st = create ~policy ~emit in
  st.file <- Some path;
  let buf = Bytes.create (max 1 chunk) in
  let mode =
    In_channel.with_open_bin path (fun ic ->
      let n = input ic buf 0 (Bytes.length buf) in
      let first = Bytes.sub_string buf 0 n in
      let is_index =
        match String.index_opt first '\n' with
        | Some i -> String.trim (String.sub first 0 i) = shard_magic
        | None -> n < Bytes.length buf && String.trim first = shard_magic
      in
      if is_index then `Index (first ^ In_channel.input_all ic)
      else begin
        feed st first;
        pump st buf ic;
        `Plain
      end)
  in
  (match mode with
  | `Plain -> eof_file st
  | `Index text ->
    List.iter
      (fun shard ->
        st.file <- Some shard;
        In_channel.with_open_bin shard (fun ic -> pump st buf ic);
        eof_file st)
      (shard_list ~index_path:path text);
    st.file <- Some path);
  finalize st

let dummy_contact = Contact.make ~a:0 ~b:1 ~t_beg:0. ~t_end:0.

let collector () =
  let arr = ref [||] and len = ref 0 in
  let emit c =
    if !len = Array.length !arr then begin
      let cap = max 1024 (2 * Array.length !arr) in
      let na = Array.make cap dummy_contact in
      Array.blit !arr 0 na 0 !len;
      arr := na
    end;
    !arr.(!len) <- c;
    incr len
  in
  let contents () = if !len = Array.length !arr then !arr else Array.sub !arr 0 !len in
  (emit, contents)

let build_trace ?file (name, n_nodes, (t_start, t_end), report) contacts =
  match Trace.create_array_result ~name ~n_nodes ~t_start ~t_end contacts with
  | Ok t -> Ok (t, report)
  | Error e -> Error (match file with Some f -> Err.in_file f e | None -> e)

let load_result ?(policy = Repair.Strict) ?(chunk = default_chunk) path =
  let emit, contents = collector () in
  match run ~policy ~chunk ~emit path with
  | exception Err.Error e -> Error e
  | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg)
  | meta -> build_trace ~file:path meta (contents ())

let fold_result ?(policy = Repair.Strict) ?(chunk = default_chunk) ~init ~f path =
  let acc = ref init in
  let emit c = acc := f !acc c in
  match run ~policy ~chunk ~emit path with
  | exception Err.Error e -> Error e
  | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg)
  | name, n_nodes, window, report ->
    Ok (!acc, { s_name = name; s_n_nodes = n_nodes; s_window = window; s_report = report })

let parse_chunks ?(policy = Repair.Strict) ?file chunks =
  let emit, contents = collector () in
  let st = create ~policy ~emit in
  st.file <- file;
  match
    List.iter (feed st) chunks;
    eof_file st;
    finalize st
  with
  | exception Err.Error e -> Error e
  | meta -> build_trace ?file meta (contents ())

let parse ?policy ?file text = parse_chunks ?policy ?file [ text ]
