#!/bin/sh
# End-to-end smoke test of the robustness layer: fault-injected traces
# must fail strict ingestion, pass lenient ingestion, and a budgeted
# checkpointed diameter run must exit 0. Run via `make check`.
set -eu

OMN="${OMN:-_build/default/bin/omn.exe}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$OMN" gen --preset random --nodes 12 --hours 2 --seed 7 -o "$tmp/clean.omn" >/dev/null

for fault in truncate mangle nan self-loop negative-id window-lie; do
  "$OMN" corrupt "$tmp/clean.omn" --fault "$fault" --seed 3 -o "$tmp/bad.omn" >/dev/null
  if "$OMN" stats "$tmp/bad.omn" >/dev/null 2>&1; then
    echo "smoke FAIL: strict ingestion accepted fault '$fault'" >&2
    exit 1
  fi
  "$OMN" stats --lenient "$tmp/bad.omn" >/dev/null 2>"$tmp/report.txt"
  grep -q '^repair-report' "$tmp/report.txt" || {
    echo "smoke FAIL: no repair report for fault '$fault'" >&2
    exit 1
  }
done

"$OMN" diameter "$tmp/clean.omn" --budget-seconds 5 --checkpoint "$tmp/ck" >/dev/null
"$OMN" diameter "$tmp/clean.omn" --checkpoint "$tmp/ck" --resume >/dev/null

echo "smoke ok"
