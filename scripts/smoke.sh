#!/bin/sh
# End-to-end smoke test. Three layers:
#   1. robustness: fault-injected traces must fail strict ingestion,
#      pass lenient ingestion with a repair report;
#   2. budget/resume: a delay-cdf run truncated by --budget-seconds must
#      exit 124 with a PARTIAL banner, and resuming from its checkpoint
#      must reproduce the uninterrupted run byte for byte;
#   3. observability: --metrics must emit a snapshot containing frontier
#      prune counters, per-domain pool busy time and the span tree;
#   4. resilience: a fault-free supervised run must match the
#      unsupervised run byte for byte; a corrupted checkpoint must fall
#      back to the rotated .prev generation and still reproduce the
#      uninterrupted output; the chaos harness must complete with the
#      degraded-but-complete exit code 3;
#   5. timeline: --trace-out must emit a Chrome trace with per-domain
#      tracks and chunk/pool duration events, and `omn report
#      --fail-dropped` must digest it with zero dropped events;
#   6. sharding: a 3-worker sharded run must be byte-identical (modulo
#      manifest) to the single-process run, and must stay byte-identical
#      with exit 0 when a worker is killed mid-run (failover); a
#      two-"machine" loopback-TCP fleet of pre-started authenticated
#      workers must survive an induced network partition with identical
#      bytes, and a wrong-key coordinator must exit 2 with E-AUTH;
#   7. fleet telemetry: a 2-worker loopback-TCP run with --stat-addr,
#      --metrics and --trace-out must serve a live Prometheus
#      exposition mid-run, emit one merged Perfetto trace with
#      offset-corrected per-worker tracks and a fleet footer, keep the
#      result byte-identical (modulo manifest) to the single-process
#      run, and render the per-worker table under `omn report --fleet
#      --fail-dropped`; a bare `omn worker --id -1` must parse;
#   8. streaming + sampling: a sharded on-disk generation streamed back
#      through the sampled estimator with the sample covering every
#      source must be byte-identical (modulo manifest and the sample
#      block) to the exact in-memory engine, and every malformed
#      sampling flag must be rejected with the usage exit code 2.
# Run via `make check`. CI uploads $SMOKE_METRICS, $SMOKE_TRACE,
# $SMOKE_REPORT, $SMOKE_SHARD_TRACE, $SMOKE_SHARD_REPORT,
# $SMOKE_FLEET_TRACE, $SMOKE_FLEET_METRICS and $SMOKE_FLEET_REPORT as
# artifacts.
set -eu

OMN="${OMN:-_build/default/bin/omn.exe}"
SMOKE_METRICS="${SMOKE_METRICS:-SMOKE_metrics.json}"
SMOKE_TRACE="${SMOKE_TRACE:-SMOKE_trace.json}"
SMOKE_REPORT="${SMOKE_REPORT:-SMOKE_report.json}"
SMOKE_SHARD_TRACE="${SMOKE_SHARD_TRACE:-SMOKE_shard_trace.json}"
SMOKE_SHARD_REPORT="${SMOKE_SHARD_REPORT:-SMOKE_shard_report.json}"
SMOKE_FLEET_TRACE="${SMOKE_FLEET_TRACE:-SMOKE_fleet_trace.json}"
SMOKE_FLEET_METRICS="${SMOKE_FLEET_METRICS:-SMOKE_fleet_metrics.json}"
SMOKE_FLEET_REPORT="${SMOKE_FLEET_REPORT:-SMOKE_fleet_report.json}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Every result JSON now opens with a provenance manifest whose cmdline,
# hostname and timestamps legitimately differ between runs; strip that
# one block (it is always the first key, closed at two-space indent)
# before any bit-identity comparison.
strip_manifest() {
  sed '/^  "manifest": {/,/^  },$/d' "$1"
}
same_result() {
  [ "$(strip_manifest "$1")" = "$(strip_manifest "$2")" ]
}

# --- 1. robustness ----------------------------------------------------------

"$OMN" gen --preset random --nodes 12 --hours 2 --seed 7 -o "$tmp/clean.omn" >/dev/null

for fault in truncate mangle nan self-loop negative-id window-lie; do
  "$OMN" corrupt "$tmp/clean.omn" --fault "$fault" --seed 3 -o "$tmp/bad.omn" >/dev/null
  if "$OMN" stats "$tmp/bad.omn" >/dev/null 2>&1; then
    echo "smoke FAIL: strict ingestion accepted fault '$fault'" >&2
    exit 1
  fi
  "$OMN" stats --lenient "$tmp/bad.omn" >/dev/null 2>"$tmp/report.txt"
  grep -q '^repair-report' "$tmp/report.txt" || {
    echo "smoke FAIL: no repair report for fault '$fault'" >&2
    exit 1
  }
done

"$OMN" diameter "$tmp/clean.omn" --budget-seconds 5 --checkpoint "$tmp/ck" >/dev/null
"$OMN" diameter "$tmp/clean.omn" --checkpoint "$tmp/ck" --resume >/dev/null

# --- 2. budget expiry (exit 124) and resume ---------------------------------

# The reference: one uninterrupted run.
"$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 -o "$tmp/full.json" >/dev/null

# A zero budget must stop after the first chunk with the partial exit code.
rc=0
"$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 \
  --budget-seconds 0 --checkpoint-every 1 --checkpoint "$tmp/cdf.ck" \
  -o "$tmp/partial.json" >"$tmp/partial.out" 2>&1 || rc=$?
if [ "$rc" -ne 124 ]; then
  echo "smoke FAIL: budget-truncated delay-cdf exited $rc, expected 124" >&2
  exit 1
fi
grep -q 'PARTIAL' "$tmp/partial.out" || {
  echo "smoke FAIL: truncated delay-cdf printed no PARTIAL banner" >&2
  exit 1
}
[ -f "$tmp/cdf.ck" ] || {
  echo "smoke FAIL: truncated delay-cdf left no checkpoint" >&2
  exit 1
}

# Resuming from that checkpoint must complete and agree exactly. The
# chunk size is part of the checkpoint fingerprint, so it must match.
"$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 \
  --checkpoint-every 1 --checkpoint "$tmp/cdf.ck" --resume -o "$tmp/resumed.json" >/dev/null
same_result "$tmp/full.json" "$tmp/resumed.json" || {
  echo "smoke FAIL: resumed delay-cdf differs from uninterrupted run" >&2
  exit 1
}
if [ -f "$tmp/cdf.ck" ]; then
  echo "smoke FAIL: checkpoint not removed after successful resume" >&2
  exit 1
fi

# --- 3. observability -------------------------------------------------------

"$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 --domains 2 --progress \
  --metrics "$SMOKE_METRICS" >/dev/null 2>"$tmp/progress.out"
for key in '"schema": "omn-metrics 1"' 'frontier.points_pruned' 'frontier.points_kept' \
  'pool.busy_seconds' 'delay_cdf.pairs_done' '"spans"' 'delay_cdf.compute_resumable'; do
  grep -q "$key" "$SMOKE_METRICS" || {
    echo "smoke FAIL: metrics snapshot lacks $key" >&2
    exit 1
  }
done
grep -q 'sources' "$tmp/progress.out" || {
  echo "smoke FAIL: --progress printed nothing" >&2
  exit 1
}

# --- 4. resilience -----------------------------------------------------------

# Fault-free supervision is pure bookkeeping: same bytes, exit 0.
"$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 --retries 2 \
  -o "$tmp/supervised.json" >/dev/null
same_result "$tmp/full.json" "$tmp/supervised.json" || {
  echo "smoke FAIL: fault-free supervised run differs from unsupervised run" >&2
  exit 1
}

# Two zero-budget runs leave two checkpoint generations on disk.
for flag in "" "--resume"; do
  rc=0
  "$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 --budget-seconds 0 --checkpoint-every 1 \
    --checkpoint "$tmp/res.ck" $flag >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 124 ]; then
    echo "smoke FAIL: zero-budget run exited $rc, expected 124" >&2
    exit 1
  fi
done
[ -f "$tmp/res.ck.prev" ] || {
  echo "smoke FAIL: checkpoint rotation left no .prev generation" >&2
  exit 1
}

# Corrupt the current generation: resume must detect the bad CRC, fall
# back to .prev, redo the lost chunk, and agree byte for byte.
"$OMN" corrupt "$tmp/res.ck" --fault ckpt-flip --seed 3 -o "$tmp/res.ck" >/dev/null
"$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 --checkpoint-every 1 \
  --checkpoint "$tmp/res.ck" --resume -o "$tmp/fallback.json" >/dev/null 2>"$tmp/fallback.err"
grep -q 'previous generation' "$tmp/fallback.err" || {
  echo "smoke FAIL: corrupt checkpoint produced no fallback notice" >&2
  exit 1
}
same_result "$tmp/full.json" "$tmp/fallback.json" || {
  echo "smoke FAIL: post-fallback output differs from uninterrupted run" >&2
  exit 1
}
if [ -f "$tmp/res.ck" ] || [ -f "$tmp/res.ck.prev" ]; then
  echo "smoke FAIL: checkpoint generations not removed after completion" >&2
  exit 1
fi

# --- 5. timeline + report ----------------------------------------------------

# One traced run, then the report analyzer over its trace + metrics.
# --fail-dropped turns any ring overflow into a failing exit code, so a
# trace too small for its run can never pass silently.
"$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 --domains 2 \
  --trace-out "$SMOKE_TRACE" --metrics "$SMOKE_METRICS" -o "$tmp/traced.json" >/dev/null
for key in '"omn-timeline 1"' 'traceEvents' 'thread_name' '"chunk"' 'pool.work' \
  '"manifest"' 'trace_sha256'; do
  grep -q "$key" "$SMOKE_TRACE" || {
    echo "smoke FAIL: trace export lacks $key" >&2
    exit 1
  }
done
same_result "$tmp/full.json" "$tmp/traced.json" || {
  echo "smoke FAIL: traced run differs from untraced run" >&2
  exit 1
}
"$OMN" report "$tmp/traced.json" --timeline "$SMOKE_TRACE" --metrics "$SMOKE_METRICS" \
  --json --fail-dropped -o "$SMOKE_REPORT" >/dev/null || {
  echo "smoke FAIL: omn report rejected the traced run (dropped events?)" >&2
  exit 1
}
for key in '"omn-report 1"' '"dropped_events": 0' '"domains"' '"chunks"' '"manifest"'; do
  grep -q "$key" "$SMOKE_REPORT" || {
    echo "smoke FAIL: report lacks $key" >&2
    exit 1
  }
done

# The chaos harness injects read faults, poisoned sources and checkpoint
# corruption; it must complete degraded (exit 3), not crash (1) or hang.
rc=0
"$OMN" chaos --domains 2 >/dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "smoke FAIL: omn chaos exited $rc, expected 3" >&2
  exit 1
fi

# --- 6. sharded execution -----------------------------------------------------

# Results must not depend on how the work is placed: a 3-worker sharded
# run is the same bytes as the single-process run, and the manifest
# records the worker count and the placement digest.
"$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 --workers 3 \
  -o "$tmp/sharded.json" >/dev/null
same_result "$tmp/full.json" "$tmp/sharded.json" || {
  echo "smoke FAIL: 3-worker sharded run differs from single-process run" >&2
  exit 1
}
grep -q '"workers": 3' "$tmp/sharded.json" || {
  echo "smoke FAIL: sharded manifest lacks the worker count" >&2
  exit 1
}
grep -q '"shard_map_sha256"' "$tmp/sharded.json" || {
  echo "smoke FAIL: sharded manifest lacks the shard map digest" >&2
  exit 1
}

# Killing a worker mid-run must not cost a source, a byte of output, or
# the exit code: its unacknowledged sources fail over to ring
# successors and the worker is respawned.
rc=0
"$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 --workers 3 \
  --shard-fault worker-kill:2:1 --trace-out "$SMOKE_SHARD_TRACE" \
  -o "$tmp/sharded-kill.json" >/dev/null 2>"$tmp/shard.err" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "smoke FAIL: worker-kill sharded run exited $rc, expected 0" >&2
  exit 1
fi
same_result "$tmp/full.json" "$tmp/sharded-kill.json" || {
  echo "smoke FAIL: worker-kill sharded run differs from single-process run" >&2
  exit 1
}
grep -q 'shard failover' "$tmp/shard.err" || {
  echo "smoke FAIL: worker-kill run printed no failover summary" >&2
  exit 1
}
grep -q 'worker.spawn' "$SMOKE_SHARD_TRACE" || {
  echo "smoke FAIL: shard trace lacks worker.spawn events" >&2
  exit 1
}
"$OMN" report "$tmp/sharded-kill.json" --timeline "$SMOKE_SHARD_TRACE" \
  --json -o "$SMOKE_SHARD_REPORT" >/dev/null || {
  echo "smoke FAIL: omn report rejected the sharded run" >&2
  exit 1
}
for key in '"shard"' '"worker_spawns"' '"reassigned_sources"'; do
  grep -q "$key" "$SMOKE_SHARD_REPORT" || {
    echo "smoke FAIL: shard report lacks $key" >&2
    exit 1
  }
done

# --- 6b. multi-machine sharding over loopback TCP -----------------------------

# Two pre-started workers play the remote machines: each listens on an
# ephemeral TCP port with the pre-shared key (via OMN_SHARD_KEY, never
# argv) and a digest-addressed trace cache. The coordinator dials them,
# ships the trace once, and must produce the same bytes as the
# single-process run even with a network partition injected mid-run.
SHARD_KEY="smoke-preshared-key"
OMN_SHARD_KEY="$SHARD_KEY" "$OMN" worker --listen 127.0.0.1:0 \
  --trace-cache "$tmp/store" 2>"$tmp/w1.log" &
w1=$!
OMN_SHARD_KEY="$SHARD_KEY" "$OMN" worker --listen 127.0.0.1:0 \
  --trace-cache "$tmp/store" 2>"$tmp/w2.log" &
w2=$!
# the workers are normally dead by the time the trap fires; under
# set -e a failing kill inside an EXIT trap would turn "smoke ok"
# into exit 1
trap 'kill "$w1" "$w2" 2>/dev/null || true; rm -rf "$tmp"' EXIT
port_of() {
  i=0
  while [ "$i" -lt 100 ]; do
    p=$(sed -n 's/^omn worker: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$1")
    if [ -n "$p" ]; then
      echo "$p"
      return 0
    fi
    sleep 0.1
    i=$((i + 1))
  done
  echo "smoke FAIL: worker never reported its listening port ($1)" >&2
  exit 1
}
p1=$(port_of "$tmp/w1.log")
p2=$(port_of "$tmp/w2.log")

rc=0
OMN_SHARD_KEY="$SHARD_KEY" "$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 \
  --workers 127.0.0.1:"$p1",127.0.0.1:"$p2" --shard-fault net-partition:2:0 \
  -o "$tmp/tcp.json" >/dev/null 2>"$tmp/tcp.err" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "smoke FAIL: partitioned TCP sharded run exited $rc, expected 0" >&2
  cat "$tmp/tcp.err" >&2
  exit 1
fi
same_result "$tmp/full.json" "$tmp/tcp.json" || {
  echo "smoke FAIL: partitioned TCP sharded run differs from single-process run" >&2
  exit 1
}

# A coordinator with the wrong key must be turned away with a typed
# E-AUTH error (exit 2) — never a hang, a crash, or a silent accept.
rc=0
"$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 \
  --workers 127.0.0.1:"$p1",127.0.0.1:"$p2" --auth-key wrong-key \
  -o "$tmp/tcp-bad.json" >/dev/null 2>"$tmp/auth.err" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "smoke FAIL: wrong-key coordinator exited $rc, expected 2" >&2
  exit 1
fi
grep -q 'E-AUTH' "$tmp/auth.err" || {
  echo "smoke FAIL: wrong-key rejection carried no E-AUTH code" >&2
  exit 1
}

# The workers must have kept serving: a correct run still completes
# after the rejected one, now warm (trace held by digest on both ends).
OMN_SHARD_KEY="$SHARD_KEY" "$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 \
  --workers 127.0.0.1:"$p1",127.0.0.1:"$p2" -o "$tmp/tcp2.json" >/dev/null
same_result "$tmp/full.json" "$tmp/tcp2.json" || {
  echo "smoke FAIL: post-rejection TCP run differs from single-process run" >&2
  exit 1
}
kill "$w1" "$w2" 2>/dev/null || true

# --- 7. fleet telemetry --------------------------------------------------------

# A bare negative worker id must parse (Cmdliner cannot eat `--id -1`
# unaided; the CLI glues it into `--id=-1`). The correct failure is the
# missing-endpoint usage error, never "unknown option".
rc=0
"$OMN" worker --id -1 >/dev/null 2>"$tmp/id.err" || rc=$?
if [ "$rc" -ne 2 ] || ! grep -q 'need one of' "$tmp/id.err"; then
  echo "smoke FAIL: bare 'omn worker --id -1' did not parse (exit $rc)" >&2
  cat "$tmp/id.err" >&2
  exit 1
fi

# One telemetry-on fleet run: 2 spawned workers over loopback TCP, the
# net-slow fault stretching the run enough to scrape the live stats
# endpoint mid-flight. The stat port is announced on stderr.
rc=0
OMN_SHARD_KEY="$SHARD_KEY" "$OMN" delay-cdf "$tmp/clean.omn" --max-hops 6 \
  --workers 2 --listen 127.0.0.1:0 --stat-addr 127.0.0.1:0 \
  --shard-fault net-slow:1:0 \
  --metrics "$SMOKE_FLEET_METRICS" --trace-out "$SMOKE_FLEET_TRACE" \
  -o "$tmp/fleet.json" >/dev/null 2>"$tmp/fleet.err" &
fleet=$!
scrape=""
if command -v curl >/dev/null 2>&1; then
  i=0
  while [ "$i" -lt 200 ]; do
    sp=$(sed -n 's/^omn: fleet stats on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$tmp/fleet.err")
    if [ -n "$sp" ]; then
      if scrape=$(curl -fsS --max-time 2 "http://127.0.0.1:$sp/metrics" 2>/dev/null) \
        && [ -n "$scrape" ]; then
        break
      fi
    fi
    if ! kill -0 "$fleet" 2>/dev/null; then
      break
    fi
    sleep 0.05
    i=$((i + 1))
  done
fi
wait "$fleet" || {
  echo "smoke FAIL: fleet telemetry run failed" >&2
  cat "$tmp/fleet.err" >&2
  exit 1
}
if command -v curl >/dev/null 2>&1; then
  case "$scrape" in
  *"# TYPE omn_"*) : ;;
  *)
    echo "smoke FAIL: live stats endpoint served no Prometheus exposition" >&2
    exit 1
    ;;
  esac
fi
# telemetry never changes the result
same_result "$tmp/full.json" "$tmp/fleet.json" || {
  echo "smoke FAIL: fleet telemetry run differs from single-process run" >&2
  exit 1
}
# the merged trace has the coordinator track, both worker tracks,
# shard.compute spans and the offset-bearing fleet footer
for key in 'omn coordinator' '"worker 0"' '"worker 1"' 'shard.compute' \
  '"fleet"' 'clock_offset_s' 'rtt_s'; do
  grep -q "$key" "$SMOKE_FLEET_TRACE" || {
    echo "smoke FAIL: merged fleet trace lacks $key" >&2
    exit 1
  }
done
# the pulled worker metrics carry the stamped dropped counter, so
# --fail-dropped works from metrics alone
grep -q 'timeline.dropped_events' "$SMOKE_FLEET_METRICS" || {
  echo "smoke FAIL: fleet metrics lack the stamped dropped counter" >&2
  exit 1
}
# the per-worker table renders, and the JSON report carries the rows
"$OMN" report "$tmp/fleet.json" --timeline "$SMOKE_FLEET_TRACE" \
  --metrics "$SMOKE_FLEET_METRICS" --fleet --fail-dropped >"$tmp/fleet-report.txt" || {
  echo "smoke FAIL: omn report --fleet rejected the fleet run" >&2
  exit 1
}
grep -q 'fleet imbalance' "$tmp/fleet-report.txt" || {
  echo "smoke FAIL: fleet report printed no imbalance line" >&2
  exit 1
}
"$OMN" report "$tmp/fleet.json" --timeline "$SMOKE_FLEET_TRACE" \
  --metrics "$SMOKE_FLEET_METRICS" --fleet --fail-dropped --json \
  -o "$SMOKE_FLEET_REPORT" >/dev/null
for key in '"fleet"' '"busy_s"' '"imbalance"' '"clock_offset_s"'; do
  grep -q "$key" "$SMOKE_FLEET_REPORT" || {
    echo "smoke FAIL: fleet report JSON lacks $key" >&2
    exit 1
  }
done

# --- 8. streaming ingestion + sampled estimator -------------------------------

# Sharded on-disk generation: the conference preset streams straight to
# disk, so the index + shards must exist and stream back losslessly.
"$OMN" gen --preset conference --nodes 20 --hours 3 --seed 11 --shards 4 \
  -o "$tmp/conf.idx" >/dev/null
[ -f "$tmp/conf.idx" ] && [ -f "$tmp/conf.idx.0003" ] || {
  echo "smoke FAIL: sharded gen left no index or shards" >&2
  exit 1
}

# The exact engine over the streamed trace is the reference.
"$OMN" diameter "$tmp/conf.idx" --stream -o "$tmp/exact.json" >/dev/null

# A sample that covers every source must reproduce it byte for byte,
# modulo the manifest and the sample block (both strippable the same
# way: first-level keys closed at two-space indent).
strip_sample() {
  sed '/^  "manifest": {/,/^  },$/d; /^  "sample": {/,/^  },$/d' "$1"
}
"$OMN" diameter "$tmp/conf.idx" --stream --sample 1000 \
  -o "$tmp/sampled.json" >/dev/null
[ "$(strip_sample "$tmp/exact.json")" = "$(strip_sample "$tmp/sampled.json")" ] || {
  echo "smoke FAIL: exhaustive sampled run differs from the exact engine" >&2
  exit 1
}
grep -q '"exhaustive": true' "$tmp/sampled.json" || {
  echo "smoke FAIL: sample covering all sources not reported exhaustive" >&2
  exit 1
}

# The sharded sampled path must agree too.
"$OMN" diameter "$tmp/conf.idx" --stream --sample 1000 --workers 2 \
  -o "$tmp/sampled-shard.json" >/dev/null
[ "$(strip_sample "$tmp/exact.json")" = "$(strip_sample "$tmp/sampled-shard.json")" ] || {
  echo "smoke FAIL: sharded sampled run differs from the exact engine" >&2
  exit 1
}

# Malformed sampling flags: typed usage errors, exit code 2.
for bad in "--sample 0" "--sample=-2" "--ci-width 0 --sample 4" \
  "--ci-width=-1 --sample 4" "--epsilon 0 --sample 4" "--epsilon 1.5 --sample 4" \
  "--ci-width 0.5" "--confidence 0.9" "--bootstrap 100" "--sample-seed 1"; do
  rc=0
  # shellcheck disable=SC2086
  "$OMN" diameter "$tmp/conf.idx" --stream $bad >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "smoke FAIL: 'omn diameter $bad' exited $rc, expected usage error 2" >&2
    exit 1
  fi
done

echo "smoke ok"
