#!/bin/sh
# Scale harness: streaming ingestion + sampled estimation at a size the
# exact in-memory pipeline cannot afford. Four claims, all checked:
#
#   1. heap: with an eager GC (OCAMLRUNPARAM=o=20) and a heap cap
#      calibrated between the two observed ingestion peaks, the
#      streaming reader over a shard index completes while the
#      in-memory reader of the same trace busts the cap with a typed
#      Compute error;
#   2. scale: the sampled estimator finishes on a ~2M-contact trace in
#      seconds where the exact engine needs every one of 300 sources
#      (tens of minutes);
#   3. coverage: on a smaller instance where the exact engine is
#      affordable, the sampled CI must contain the exact
#      (1-eps)-diameter;
#   4. provenance: the sampled result JSON carries the sample block
#      (sampled/total/rounds/CI) for upload as a CI artifact.
#
# Run from the repo root after `dune build`. CI uploads $SCALE_RESULT.
set -eu

OMN="${OMN:-_build/default/bin/omn.exe}"
SCALE_RESULT="${SCALE_RESULT:-SCALE_result.json}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Eager GC for every measured run: the cap is a statement about how
# much heap ingestion *needs*, not how lazy the collector feels.
GCPARAMS="o=20"

# --- the big instance: sharded generation ------------------------------------

# ~2M contacts, ~90 MB serialised. The sharded writer streams contacts
# straight to disk; the flat file exists only to feed the in-memory
# reader its doomed run.
"$OMN" gen --preset conference --nodes 300 --hours 48 --seed 5 --shards 8 \
  -o "$tmp/big.idx" >/dev/null
"$OMN" gen --preset conference --nodes 300 --hours 48 --seed 5 \
  -o "$tmp/big.omn" >/dev/null
[ -f "$tmp/big.idx" ] && [ -f "$tmp/big.idx.0007" ] || {
  echo "scale FAIL: sharded gen left no index or shards" >&2
  exit 1
}

# --- 1. calibrate and enforce the heap cap -----------------------------------

# A cap of 1 word always fails, and the error reports the observed
# peak: probe both readers, then pin the cap between them.
peak_of() {
  rc=0
  OCAMLRUNPARAM="$GCPARAMS" "$OMN" diameter "$1" $2 --sample 4 --ci-width 20 \
    --heap-cap-words 1 2>&1 >/dev/null | sed -n 's/.*peak heap \([0-9]*\) words.*/\1/p' || rc=$?
}
p_stream=$(peak_of "$tmp/big.idx" --stream)
p_mem=$(peak_of "$tmp/big.omn" "")
[ -n "$p_stream" ] && [ -n "$p_mem" ] || {
  echo "scale FAIL: heap probes reported no peak (stream='$p_stream' mem='$p_mem')" >&2
  exit 1
}
if [ "$p_mem" -le "$((p_stream + p_stream / 100))" ]; then
  echo "scale FAIL: in-memory peak $p_mem words is not >1% above streaming peak $p_stream" >&2
  exit 1
fi
cap=$(((p_stream + p_mem) / 2))
echo "scale: streaming peak $p_stream words, in-memory peak $p_mem words, cap $cap"

# Under that cap the streaming sampled run must complete...
OCAMLRUNPARAM="$GCPARAMS" "$OMN" diameter "$tmp/big.idx" --stream --sample 4 \
  --ci-width 20 --domains 2 --heap-cap-words "$cap" -o "$SCALE_RESULT" >/dev/null || {
  echo "scale FAIL: heap-capped streaming sampled run did not complete" >&2
  exit 1
}
# ...and the in-memory reader of the same trace must bust it.
rc=0
OCAMLRUNPARAM="$GCPARAMS" "$OMN" diameter "$tmp/big.omn" --sample 4 --ci-width 20 \
  --heap-cap-words "$cap" >/dev/null 2>"$tmp/bust.err" || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "scale FAIL: in-memory run under the cap exited $rc, expected Compute error 1" >&2
  exit 1
fi
grep -q 'exceeds cap' "$tmp/bust.err" || {
  echo "scale FAIL: in-memory bust carried no heap-cap message" >&2
  exit 1
}

# --- 2. the sampled result is well-formed ------------------------------------

for key in '"sample": {' '"sampled": 4' '"total": 300' '"ci_lo"' '"ci_hi"' \
  '"streamed": true' '"manifest"'; do
  grep -q "$key" "$SCALE_RESULT" || {
    echo "scale FAIL: sampled result lacks $key" >&2
    exit 1
  }
done

# --- 3. CI covers the exact diameter (affordable instance) -------------------

"$OMN" gen --preset conference --nodes 60 --hours 12 --seed 23 --shards 4 \
  -o "$tmp/small.idx" >/dev/null
"$OMN" diameter "$tmp/small.idx" --stream --domains 2 -o "$tmp/small_exact.json" >/dev/null
"$OMN" diameter "$tmp/small.idx" --stream --sample 8 --ci-width 2 --confidence 0.9 \
  --bootstrap 200 --domains 2 -o "$tmp/small_sampled.json" >/dev/null

exact=$(sed -n 's/^  "diameter": \([0-9]*\),*$/\1/p' "$tmp/small_exact.json")
lo=$(sed -n 's/^    "ci_lo": \([0-9]*\),*$/\1/p' "$tmp/small_sampled.json")
hi=$(sed -n 's/^    "ci_hi": \([0-9]*\),*$/\1/p' "$tmp/small_sampled.json")
[ -n "$exact" ] && [ -n "$lo" ] && [ -n "$hi" ] || {
  echo "scale FAIL: could not extract exact=$exact lo=$lo hi=$hi" >&2
  exit 1
}
if [ "$lo" -gt "$exact" ] || [ "$exact" -gt "$hi" ]; then
  echo "scale FAIL: CI [$lo, $hi] does not cover the exact diameter $exact" >&2
  exit 1
fi
echo "scale: CI [$lo, $hi] covers exact diameter $exact"

echo "scale ok"
