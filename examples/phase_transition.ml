(* Random temporal networks (§3): where is the delay phase transition,
   and how many hops do delay-optimal paths use?

     dune exec examples/phase_transition.exe *)

open Omn_randnet

let () =
  let lambda = 0.5 in
  Format.printf "random temporal network, contact rate lambda = %.2f per node per slot@.@."
    lambda;

  (* Closed forms. *)
  List.iter
    (fun (case, label) ->
      Format.printf
        "%s contacts: critical tau* = %.3f  (optimal delay ~ %.2f ln N slots),@.\
        \  hop coefficient %.3f (optimal path ~ %.2f ln N hops)@."
        label
        (Theory.tau_critical case ~lambda)
        (Theory.tau_critical case ~lambda)
        (Theory.hop_coefficient case ~lambda)
        (Theory.hop_coefficient case ~lambda))
    [ (Theory.Short, "short"); (Theory.Long, "long") ];

  (* Monte-Carlo: success probability vs delay budget, N = 400. *)
  let rng = Omn_stats.Rng.create 11 in
  let params = { Discrete.n = 400; lambda } in
  let tau_star = Theory.tau_critical Theory.Short ~lambda in
  let taus = Array.map (fun f -> f *. tau_star) [| 0.5; 0.8; 1.0; 1.3; 1.8; 2.5 |] in
  let curve = Phase.unconstrained_curve rng params ~case:Theory.Short ~taus ~runs:100 in
  Format.printf "@.N = %d, short contacts: P(path exists within tau ln N slots)@." params.n;
  Array.iter
    (fun (tau, p) -> Format.printf "  tau/tau* = %.2f   %.2f@." (tau /. tau_star) p)
    curve;

  (* Monte-Carlo: hops of the delay-optimal path. *)
  let samples = Discrete.delay_hops_sample rng params ~case:Theory.Short ~runs:50 ~t_max:200 in
  let mean_hops =
    List.fold_left (fun acc (_, h) -> acc +. float_of_int h) 0. samples
    /. float_of_int (max 1 (List.length samples))
  in
  Format.printf "@.measured hops of delay-optimal path: %.2f (theory %.2f)@." mean_hops
    (Theory.expected_hops Theory.Short ~lambda ~n:params.n)
