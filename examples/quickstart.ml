(* Quickstart: build a tiny temporal network by hand, inspect the
   delivery function of a pair, and measure the network's diameter.

     dune exec examples/quickstart.exe *)

module Contact = Omn_temporal.Contact
module Trace = Omn_temporal.Trace

let () =
  (* Five devices; times in seconds. Node 0 meets 1 early; 1 meets 2
     later (store-and-forward); 2 and 3 overlap with 1 at various times;
     0 meets 3 directly near the end. *)
  let contacts =
    [
      Contact.make ~a:0 ~b:1 ~t_beg:0. ~t_end:120.;
      Contact.make ~a:1 ~b:2 ~t_beg:300. ~t_end:420.;
      Contact.make ~a:2 ~b:3 ~t_beg:360. ~t_end:600.;
      Contact.make ~a:0 ~b:3 ~t_beg:1500. ~t_end:1560.;
      Contact.make ~a:3 ~b:4 ~t_beg:1700. ~t_end:1800.;
    ]
  in
  let trace = Trace.create ~name:"quickstart" ~n_nodes:5 ~t_start:0. ~t_end:1800. contacts in
  Format.printf "%a@.@." Trace.pp_summary trace;

  (* The delivery function from 0 to 4: every delay-optimal way of getting
     a message across, for all creation times at once. *)
  let delivery = Omn_core.Journey.delivery_to trace ~source:0 ~dest:4 () in
  Format.printf "optimal paths 0 -> 4: %d@." (Omn_core.Delivery.n_optimal_paths delivery);
  Array.iter
    (fun (p : Omn_core.Ld_ea.t) ->
      Format.printf "  leave 0 by %4.0fs  ->  reach 4 at %4.0fs@." p.ld p.ea)
    (Omn_core.Delivery.descriptors delivery);
  List.iter
    (fun t ->
      let d = Omn_core.Delivery.del delivery t in
      Format.printf "created at %4.0fs: %s@." t
        (if d = infinity then "undeliverable" else Printf.sprintf "delivered at %4.0fs" d))
    [ 0.; 100.; 200.; 1550.; 1700. ];

  (* The (1-eps)-diameter: how many hops achieve 99% of flooding at every
     delay budget. *)
  let result =
    Omn_core.Diameter.measure ~grid:(Omn_stats.Grid.linear ~lo:30. ~hi:1800. ~n:60) trace
  in
  Format.printf "@.diameter (99%% of flooding): %s@."
    (match result.diameter with Some d -> string_of_int d | None -> "> max_hops")
