(* Choosing a hop TTL for epidemic forwarding — the design decision the
   paper's conclusion draws from the small diameter: "messages can be
   discarded after a few hops without incurring more than a marginal
   performance cost".

   We generate a campus-like trace, measure its 99%-diameter, then run
   the protocol suite from Omn_forwarding on random messages and compare
   delivery, delay and cost.

     dune exec examples/forwarding_ttl.exe *)

module Rng = Omn_stats.Rng
module Protocol = Omn_forwarding.Protocol

let () =
  let rng = Rng.create 7 in
  let n = 40 in
  let params = Omn_mobility.Venue.campus_params ~rng ~n ~n_groups:4 ~weeks:1 in
  let trace = Omn_mobility.Venue.generate rng ~n ~name:"campus-week" params in
  Format.printf "%a@.@." Omn_temporal.Trace.pp_summary trace;

  let result = Omn_core.Diameter.measure ~max_hops:12 trace in
  let diameter = Option.value result.diameter ~default:12 in
  Format.printf "measured 99%%-diameter: %d@.@." diameter;

  let protocols =
    [
      Protocol.Epidemic { ttl = None };
      Protocol.Epidemic { ttl = Some (2 * diameter) };
      Protocol.Epidemic { ttl = Some diameter };
      Protocol.Epidemic { ttl = Some (max 1 (diameter / 2)) };
      Protocol.Epidemic { ttl = Some 1 };
      Protocol.Spray_and_wait { copies = 8 };
      Protocol.Two_hop;
    ]
  in
  let stats =
    Omn_forwarding.Sim.evaluate (Rng.create 99) trace ~protocols ~messages:400
      ~deadline:86400.
  in
  Format.printf "epidemic forwarding, 400 random messages, 1-day deadline:@.@.";
  Format.printf "  %-20s %-11s %-11s %s@." "protocol" "delivered" "mean delay" "tx/msg";
  List.iter
    (fun (s : Omn_forwarding.Sim.stats) ->
      Format.printf "  %-20s %6.1f%%     %-11s %.1f@."
        (Protocol.name s.protocol)
        (100. *. s.delivered_ratio)
        (if Float.is_nan s.mean_delay then "-" else Omn_stats.Timefmt.duration s.mean_delay)
        s.mean_transmissions)
    stats;
  Format.printf
    "@.capping the TTL at the diameter costs almost nothing versus doubling it,@.\
     while bounding the per-message resource consumption.@."
