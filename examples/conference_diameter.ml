(* Conference scenario: generate a synthetic one-day conference with the
   venue mobility model, scan it like an iMote deployment, and measure
   how many relays opportunistic forwarding ever needs.

     dune exec examples/conference_diameter.exe [n_attendees] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 30 in
  let rng = Omn_stats.Rng.create 42 in
  let venue = Omn_mobility.Venue.conference_params ~rng ~n ~days:1. in
  let classes = Omn_mobility.Venue.generate_classified rng ~n ~name:"one-day-conference" venue in
  let scanned =
    let granularity = 120. in
    let near =
      Omn_mobility.Scanner.detect_mixture rng ~granularity
        ~qualities:[ (0.5, 0.97); (0.5, 0.55) ]
        classes.near
    in
    let far =
      Omn_mobility.Scanner.detect_mixture rng ~granularity ~qualities:[ (1.0, 0.16) ]
        classes.far
    in
    Omn_temporal.Transform.merge near far
  in
  Format.printf "%a@.@." Omn_temporal.Trace.pp_summary scanned;

  let result = Omn_core.Diameter.measure ~max_hops:10 scanned in
  let curves = result.curves in
  Format.printf "delay        1 hop   3 hops  unlimited@.";
  List.iter
    (fun (label, delay) ->
      if delay <= 86400. then begin
        let at row =
          let idx = ref 0 in
          Array.iteri (fun i d -> if d <= delay then idx := i) curves.grid;
          row.(!idx)
        in
        Format.printf "%-10s  %.3f   %.3f   %.3f@." label
          (at curves.hop_success.(0))
          (at curves.hop_success.(2))
          (at curves.flood_success)
      end)
    Omn_stats.Grid.delay_named;
  Format.printf "@.diameter (99%% of flooding success, any timescale): %s@."
    (match result.diameter with Some d -> string_of_int d | None -> "> 10");
  Format.printf
    "a message TTL of that many hops forfeits at most 1%% of what unlimited@.\
     flooding could deliver — at any delay budget.@."
