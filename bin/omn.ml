(* omn — command-line frontend for the opportunistic-mobile-network
   diameter toolkit.

     omn gen --preset infocom05 -o trace.omn      synthesise a trace
     omn stats trace.omn                          Table-1-style summary
     omn diameter trace.omn                       (1-eps)-diameter + CDF
     omn delay-cdf trace.omn --metrics m.json     per-hop curves + metrics snapshot
     omn delivery trace.omn -s 0 -d 5             one pair's delivery fn
     omn transform trace.omn --drop-prob 0.9 -o thinned.omn
     omn corrupt trace.omn --fault nan -o bad.omn fault-injection harness
     omn theory --lambda 0.5                      closed-form results

   Exit codes: 0 success; 1 computation error; 2 bad input or usage;
   3 degraded-but-complete (supervision quarantined some source tasks —
   every other result is exact, see --retries/--quarantine); 124
   partial result (--budget-seconds expired before the run finished —
   the timeout(1) convention, takes precedence over 3) and command-line
   parse errors (Cmdliner convention). *)

open Cmdliner
module Err = Omn_robust.Err
module Repair = Omn_robust.Repair
module Faultgen = Omn_robust.Faultgen

(* Every subcommand body runs under this wrapper so that failures map
   to the documented exit codes instead of uncaught backtraces.
   [protect_code] bodies pick their own success code (budgeted runs
   return 124 for a partial result); [protect] is the common all-done
   case. *)
let protect_code f =
  match f () with
  | code -> code
  | exception Err.Error e ->
    Format.eprintf "omn: %a@." Err.pp e;
    Err.exit_code e.code
  | exception Sys_error msg ->
    Format.eprintf "omn: %s@." msg;
    2
  | exception Invalid_argument msg ->
    Format.eprintf "omn: invalid argument: %s@." msg;
    2
  | exception Failure msg ->
    Format.eprintf "omn: %s@." msg;
    1

let protect f =
  protect_code (fun () ->
      f ();
      0)

(* The partial (124) / degraded (3) precedence itself lives in
   [Supervise.exit_code]; this constant only labels the chaos
   harness's own deliberate exit. *)
let exit_degraded = Omn_resilience.Supervise.exit_code ~partial:false ~degraded:true

let usage_err fmt = Format.kasprintf (fun msg -> raise (Err.Error (Err.v Err.Usage msg))) fmt

let trace_arg =
  let doc = "Input trace file (format written by `omn gen' / Trace_io)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)

let output_arg =
  let doc = "Output file (stdout if omitted)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc)

(* --- ingestion policy --- *)

let policy_conv =
  Arg.enum [ ("strict", Repair.Strict); ("repair", Repair.Repair); ("skip", Repair.Skip) ]

let ingest_arg =
  let doc =
    "Ingestion policy for reading traces: $(b,strict) rejects the first malformed \
     record with a line-numbered error; $(b,repair) fixes what can be fixed (clamps \
     out-of-window contacts, swaps reversed intervals, merges exact duplicates) and \
     drops the rest; $(b,skip) drops every bad record."
  in
  Arg.(value & opt policy_conv Repair.Strict & info [ "ingest" ] ~docv:"POLICY" ~doc)

let lenient_arg =
  let doc =
    "Shorthand for $(b,--ingest repair): accept dirty traces and print a \
     machine-readable repair report on stderr."
  in
  Arg.(value & flag & info [ "lenient" ] ~doc)

let load_trace ~policy ~lenient path =
  let policy = if lenient && policy = Repair.Strict then Repair.Repair else policy in
  match Omn_temporal.Trace_io.load_result ~policy path with
  | Error e -> raise (Err.Error e)
  | Ok (trace, report) ->
    if policy <> Repair.Strict then Format.eprintf "%a@." Repair.pp report;
    trace

(* Same policy/report contract as [load_trace], but through the
   streaming parser — constant-memory ingestion, and the only reader
   that understands `# omn-shards 1' indexes. *)
let load_trace_stream ~policy ~lenient path =
  let policy = if lenient && policy = Repair.Strict then Repair.Repair else policy in
  match Omn_temporal.Trace_stream.load_result ~policy path with
  | Error e -> raise (Err.Error e)
  | Ok (trace, report) ->
    if policy <> Repair.Strict then Format.eprintf "%a@." Repair.pp report;
    trace

let save_or_print trace = function
  | Some path ->
    Omn_temporal.Trace_io.save trace path;
    Format.printf "wrote %s (%d contacts)@." path (Omn_temporal.Trace.n_contacts trace)
  | None -> print_string (Omn_temporal.Trace_io.to_string trace)

(* --- observability --- *)

let omn_version = "1.0.0"

let metrics_arg =
  let doc =
    "Enable the metrics registry and write a JSON snapshot (counters, per-domain \
     gauges, latency histograms, span tree; schema $(b,omn-metrics 1)) to $(docv) when \
     the command finishes — atomically, even if it fails midway."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Enable the event timeline and export it as Chrome trace-event JSON to $(docv) when \
     the command finishes (even if it fails midway). Open the file in Perfetto \
     (ui.perfetto.dev) or chrome://tracing: one track per OCaml domain, duration events \
     for driver chunks and pool work, instants for steals, retries and checkpoint \
     operations, and a GC counter track. Enabling the timeline never changes computed \
     results."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc = "Report progress on stderr as work completes (rate-limited; in-place on a tty)." in
  Arg.(value & flag & info [ "progress" ] ~doc)

(* Provenance for every artifact this process writes. Commands enrich
   the manifest once their inputs are loaded (trace digest, seed,
   domain count); artifacts written before that see a bare one. *)
let manifest = ref None

let set_manifest m = manifest := Some m

(* Enrich the current manifest in place — sharded runs stamp their
   worker count and shard-map digest once the coordinator computed it. *)
let update_manifest f = match !manifest with Some m -> manifest := Some (f m) | None -> ()

let manifest_json ?(final = true) () =
  let m =
    match !manifest with Some m -> m | None -> Omn_obs.Manifest.create ~version:omn_version ()
  in
  let m = if final then Omn_obs.Manifest.finish m else m in
  if final then manifest := Some m;
  Omn_obs.Manifest.to_json m

(* Digest the input bytes for file traces, the canonical serialisation
   for synthesised ones — either way the digest pins the exact contact
   set the numbers were computed from. *)
let trace_manifest ?config ?seed ?domains ?path trace =
  let trace_sha256 =
    match path with
    | Some p -> Omn_obs.Sha256.file p
    | None -> Omn_obs.Sha256.string (Omn_temporal.Trace_io.to_string trace)
  in
  set_manifest
    (Omn_obs.Manifest.create ?config ?seed ?domains ~trace_sha256
       ~trace_name:(Omn_temporal.Trace.name trace)
       ~n_nodes:(Omn_temporal.Trace.n_nodes trace)
       ~n_contacts:(Omn_temporal.Trace.n_contacts trace) ~version:omn_version ())

let json_with_manifest fields = Omn_obs.Json.Obj (("manifest", manifest_json ()) :: fields)

let curve_fields (c : Omn_core.Delay_cdf.curves) =
  let open Omn_obs.Json in
  let farr a = List (Array.to_list (Array.map (fun v -> Float v) a)) in
  [
    ("grid", farr c.grid);
    ("hop_success", List (Array.to_list (Array.map farr c.hop_success)));
    ("hop_success_inf", farr c.hop_success_inf);
    ("flood_success", farr c.flood_success);
    ("flood_success_inf", Float c.flood_success_inf);
    ("max_rounds_used", Int c.max_rounds_used);
  ]

let write_json path json =
  Omn_robust.Retry_io.write_string path (Omn_obs.Json.to_string ~pretty:true json ^ "\n")

(* Telemetry pulled from shard workers during this run (set by the
   delay-cdf driver after Shard.run returns); when non-empty the obs
   artifacts become fleet-merged: one Perfetto process per worker and a
   cross-process metrics snapshot with per-worker breakdowns. *)
let fleet_telemetry : Omn_shard.Coord.telemetry list ref = ref []

(* Enable the requested registries up front and emit on every exit path
   — a budget-truncated or failed run still leaves a snapshot and a
   trace of the work it did do. Both artifacts carry the manifest. *)
let with_obs ?metrics ?trace_out f =
  match (metrics, trace_out) with
  | None, None -> f ()
  | _ ->
    if metrics <> None then Omn_obs.Metrics.set_enabled true;
    if trace_out <> None then Omn_obs.Timeline.set_enabled true;
    let emit () =
      let mjson = manifest_json () in
      let view = Omn_obs.Timeline.snapshot () in
      let fleet = !fleet_telemetry in
      Option.iter
        (fun path ->
          match fleet with
          | [] -> Omn_obs.Trace_export.write ~manifest:mjson ~path view
          | fleet ->
            let workers =
              List.map
                (fun (t : Omn_shard.Coord.telemetry) ->
                  {
                    Omn_obs.Trace_export.fw_worker = t.tw_worker;
                    fw_events = t.tw_events;
                    fw_dropped = t.tw_dropped;
                    fw_offset = t.tw_offset;
                    fw_rtt = t.tw_rtt;
                  })
                fleet
            in
            Omn_obs.Trace_export.fleet_write ~manifest:mjson ~path ~coordinator:view workers)
        trace_out;
      Option.iter
        (fun path ->
          (* the coordinator's own snapshot, with the timeline's drop
             counters stamped in so --fail-dropped works from the
             metrics file alone; under a fleet, merged with every
             worker's final push (per-worker breakdown via tag_worker) *)
          let own =
            Omn_obs.Metrics.with_counter "timeline.dropped_events" view.dropped
              (Omn_obs.Metrics.snapshot ())
          in
          let snap =
            match fleet with
            | [] -> own
            | fleet ->
              Omn_obs.Metrics.merge_all
                (Omn_obs.Metrics.tag_worker ~worker:(-1) own
                :: List.map
                     (fun (t : Omn_shard.Coord.telemetry) ->
                       Omn_obs.Metrics.tag_worker ~worker:t.tw_worker t.tw_metrics)
                     fleet)
          in
          match Omn_obs.Metrics.snapshot_to_json snap with
          | Omn_obs.Json.Obj fields ->
            write_json path (Omn_obs.Json.Obj (("manifest", mjson) :: fields))
          | j -> write_json path j)
        metrics
    in
    Fun.protect ~finally:emit f

(* Checkpoint files are opaque Marshal payloads; their provenance rides
   in a JSON sidecar so a resumed or post-mortem run can be traced back
   to its inputs. Removed together with the generations. *)
let write_checkpoint_sidecar checkpoint =
  Option.iter
    (fun path ->
      write_json (Omn_robust.Checkpoint.manifest_path path) (manifest_json ~final:false ()))
    checkpoint

(* A progress bar materialised on the first report (the total is only
   known once the computation announces it). *)
let progress_reporter ~enabled label =
  if not enabled then (None, fun () -> ())
  else begin
    let bar = ref None in
    let report ~done_ ~total ~degraded ~fallback =
      let b =
        match !bar with
        | Some b -> b
        | None ->
          let b = Omn_obs.Progress.create ~total ~label () in
          bar := Some b;
          b
      in
      if degraded > 0 then Omn_obs.Progress.set_degraded b degraded;
      if fallback then Omn_obs.Progress.set_fallback b;
      Omn_obs.Progress.set b done_
    in
    (Some report, fun () -> Option.iter Omn_obs.Progress.finish !bar)
  end

(* --- gen --- *)

type preset =
  | P_infocom05
  | P_infocom06
  | P_hong_kong
  | P_reality
  | P_waypoint
  | P_random
  | P_conference

let preset_conv =
  Arg.enum
    [
      ("infocom05", P_infocom05); ("infocom06", P_infocom06); ("hong-kong", P_hong_kong);
      ("hongkong", P_hong_kong); ("reality-mining", P_reality); ("reality", P_reality);
      ("waypoint", P_waypoint); ("random", P_random); ("conference", P_conference);
    ]

let conference_venue ~seed ~nodes ~hours =
  let rng = Omn_stats.Rng.create seed in
  let p = Omn_mobility.Venue.conference_params ~rng ~n:nodes ~days:(hours /. 24.) in
  (rng, p)

let preset_trace preset ~seed ~nodes ~lambda ~hours =
  let rng = Omn_stats.Rng.create seed in
  match preset with
  | P_infocom05 -> (Omn_mobility.Presets.infocom05 ~seed ()).trace
  | P_infocom06 -> (Omn_mobility.Presets.infocom06 ~seed ()).trace
  | P_hong_kong -> (Omn_mobility.Presets.hong_kong ~seed ()).trace
  | P_reality -> (Omn_mobility.Presets.reality_mining ~seed ()).trace
  | P_waypoint ->
    Omn_mobility.Random_waypoint.generate rng
      { Omn_mobility.Random_waypoint.default with n = nodes; horizon = hours *. 3600. }
  | P_random ->
    Omn_randnet.Continuous.generate rng
      { n = nodes; lambda = lambda /. 3600.; horizon = hours *. 3600. }
  | P_conference ->
    let rng, p = conference_venue ~seed ~nodes ~hours in
    Omn_mobility.Venue.generate rng ~n:nodes ~name:"conference" p

let gen_cmd =
  let preset =
    let doc =
      "Workload: one of $(b,infocom05), $(b,infocom06), $(b,hong-kong), \
       $(b,reality-mining), $(b,waypoint), $(b,random) (continuous-time random \
       temporal network), $(b,conference) (raw venue co-location ground truth — \
       the one preset that can stream straight to shards without materializing \
       the trace)."
    in
    Arg.(value & opt preset_conv P_infocom05 & info [ "preset" ] ~docv:"NAME" ~doc)
  in
  let nodes =
    let doc = "Node count (waypoint, random and conference presets only)." in
    Arg.(value & opt int 40 & info [ "nodes" ] ~docv:"N" ~doc)
  in
  let lambda =
    let doc = "Contact rate per node per hour (random preset only)." in
    Arg.(value & opt float 2. & info [ "lambda" ] ~docv:"RATE" ~doc)
  in
  let hours =
    let doc = "Horizon in hours (waypoint, random and conference presets only)." in
    Arg.(value & opt float 6. & info [ "hours" ] ~docv:"H" ~doc)
  in
  let shards =
    let doc =
      "Write the trace as $(docv) time-ordered shard files plus an $(b,# omn-shards 1) \
       index at the $(b,-o) path instead of a single file. Out-of-core: contacts are \
       spilled to their time slice as they are generated and sorted one shard at a \
       time, so peak memory is one shard — with the $(b,conference) preset the trace \
       is never materialized at all. Streaming the index back \
       ($(b,omn diameter --stream)) yields the byte-identical trace. $(b,0) (default) \
       writes a single file."
    in
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let run preset seed nodes lambda hours shards output =
    protect @@ fun () ->
    if shards = 0 then save_or_print (preset_trace preset ~seed ~nodes ~lambda ~hours) output
    else begin
      let path =
        match output with
        | Some p -> p
        | None -> usage_err "--shards requires --output FILE (the shard-index path)"
      in
      let module Sink = Omn_mobility.Shard_sink in
      let stream_sink ~name ~n_nodes ~t_start ~t_end fill =
        let sink = Sink.create ~shards ~name ~n_nodes ~t_start ~t_end path in
        (try
           fill (Sink.add sink);
           Sink.finish sink
         with e ->
           Sink.abort sink;
           raise e);
        Format.printf "wrote %s + %d shard(s) (%d contacts)@." path shards
          (Sink.contacts_written sink)
      in
      match preset with
      | P_conference ->
        let rng, p = conference_venue ~seed ~nodes ~hours in
        stream_sink ~name:"conference" ~n_nodes:nodes ~t_start:p.Omn_mobility.Venue.t_start
          ~t_end:p.Omn_mobility.Venue.t_end (fun add ->
            Omn_mobility.Venue.iter_contacts rng ~n:nodes p add)
      | _ ->
        let trace = preset_trace preset ~seed ~nodes ~lambda ~hours in
        let module Trace = Omn_temporal.Trace in
        stream_sink ~name:(Trace.name trace) ~n_nodes:(Trace.n_nodes trace)
          ~t_start:(Trace.t_start trace) ~t_end:(Trace.t_end trace) (fun add ->
            Trace.iter add trace)
    end
  in
  let term =
    Term.(const run $ preset $ seed_arg $ nodes $ lambda $ hours $ shards $ output_arg)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Synthesise a contact trace") term

(* --- stats --- *)

let stats_cmd =
  let run path ingest lenient =
    protect @@ fun () ->
    let trace = load_trace ~policy:ingest ~lenient path in
    Format.printf "%a@." Omn_temporal.Trace_stats.pp_summary
      (Omn_temporal.Trace_stats.summary trace);
    match Omn_temporal.Trace_stats.inter_contact_times trace with
    | None -> ()
    | Some ict ->
      Format.printf "inter-contact time: median %s, mean %s@."
        (Omn_stats.Timefmt.duration (Omn_stats.Empirical.quantile ict 0.5))
        (Omn_stats.Timefmt.duration (Omn_stats.Empirical.mean_finite ict))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Describe a trace (Table-1-style summary)")
    Term.(const run $ trace_arg $ ingest_arg $ lenient_arg)

(* --- diameter --- *)

let epsilon_arg =
  let doc = "Tolerated success-rate loss vs unlimited flooding." in
  Arg.(value & opt float 0.01 & info [ "epsilon" ] ~docv:"E" ~doc)

let max_hops_arg =
  let doc = "Largest hop bound examined." in
  Arg.(value & opt int 10 & info [ "max-hops" ] ~docv:"K" ~doc)

let domains_conv =
  let parse s =
    match Omn_parallel.Pool.spec_of_string s with
    | Some spec -> Ok spec
    | None -> Error (`Msg (Printf.sprintf "expected a positive integer or `auto', got %S" s))
  in
  let print ppf spec = Format.pp_print_string ppf (Omn_parallel.Pool.spec_to_string spec) in
  Arg.conv (parse, print)

let domains_arg =
  let doc =
    "Parallelise over $(docv) OCaml domains; $(b,auto) uses the machine's recommended \
     domain count. Results are bit-identical for every setting — only wall-clock time \
     changes."
  in
  Arg.(value & opt domains_conv (Omn_parallel.Pool.Fixed 1) & info [ "domains" ] ~docv:"D" ~doc)

let checkpoint_arg =
  let doc =
    "Write an atomic checkpoint of completed source rows to $(docv) as the \
     computation progresses (removed on successful completion)."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc = "Resume from the $(b,--checkpoint) file if it exists." in
  Arg.(value & flag & info [ "resume" ] ~doc)

let checkpoint_every_arg =
  let doc = "Checkpoint after every $(docv) source nodes." in
  Arg.(value & opt int 8 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let budget_arg =
  let doc =
    "Stop after roughly $(docv) wall-clock seconds, reporting a clearly-labelled \
     partial result over a uniformly sampled subset of source nodes."
  in
  Arg.(value & opt (some float) None & info [ "budget-seconds" ] ~docv:"S" ~doc)

(* --- supervision (omn_resilience) --- *)

module Supervise = Omn_resilience.Supervise

let retries_arg =
  let doc =
    "Supervise per-source tasks: retry a failing task up to $(docv) extra times with \
     capped exponential backoff before quarantining it. Giving any supervision flag \
     enables supervision; quarantined sources are listed and the run exits with \
     code 3 (degraded but complete)."
  in
  Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N" ~doc)

let task_deadline_arg =
  let doc =
    "Per-attempt wall-clock deadline in seconds: a task attempt that fails after \
     overrunning $(docv) is not retried (implies supervision)."
  in
  Arg.(value & opt (some float) None & info [ "task-deadline" ] ~docv:"S" ~doc)

let quarantine_arg =
  let doc =
    "With supervision on, whether a task that exhausts its retries is quarantined \
     ($(b,true), default — the run completes degraded) or aborts the run ($(b,false))."
  in
  Arg.(value & opt (some bool) None & info [ "quarantine" ] ~docv:"BOOL" ~doc)

let supervise_policy retries task_deadline quarantine =
  match (retries, task_deadline, quarantine) with
  | None, None, None -> None
  | _ ->
    let d = Supervise.default in
    Some
      {
        d with
        Supervise.retries = Option.value retries ~default:d.Supervise.retries;
        task_deadline;
        quarantine = Option.value quarantine ~default:d.Supervise.quarantine;
      }

(* --- sharded execution (omn_shard) --- *)

module Shard = Omn_shard.Coord
module Transport = Omn_shard.Transport

(* --workers takes either a count (spawn that many local processes) or
   a comma-separated list of pre-started `omn worker --listen'
   addresses to dial. *)
type workers_spec = Wcount of int | Wpeers of Transport.addr list

let workers_fleet = function Wcount n -> n | Wpeers l -> List.length l
let sharded spec = workers_fleet spec > 0

let workers_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok (Wcount n)
    | Some _ -> Error (`Msg "worker count must be >= 0")
    | None -> (
      let parts = List.filter (fun p -> p <> "") (String.split_on_char ',' s) in
      if parts = [] then Error (`Msg "empty worker list")
      else
        let rec go acc = function
          | [] -> Ok (Wpeers (List.rev acc))
          | p :: rest -> (
            match Transport.parse p with
            | Ok (Transport.Tcp _ as a) -> go (a :: acc) rest
            | Ok (Transport.Unix_path _ as a) -> go (a :: acc) rest
            | Error e -> Error (`Msg e.Omn_robust.Err.msg))
        in
        go [] parts)
  in
  let pp ppf = function
    | Wcount n -> Format.pp_print_int ppf n
    | Wpeers l ->
      Format.pp_print_string ppf (String.concat "," (List.map Transport.to_string l))
  in
  Arg.conv (parse, pp)

let workers_arg =
  let doc =
    "Shard source nodes over worker processes (consistent hashing with \
     successor-list failover, CRC-framed wire protocol). $(docv) is either a count — \
     spawn that many local workers over a Unix-domain socket — or a comma-separated \
     $(b,host:port) list of pre-started $(b,omn worker --listen) processes to dial \
     over TCP. $(b,0) (default) computes in-process. Results are byte-identical to \
     the in-process run at any worker count, even when workers are killed, \
     partitioned or joined mid-run. With workers, $(b,--domains) sets each worker's \
     own domain-pool size. Incompatible with $(b,--checkpoint)/$(b,--resume); see \
     $(b,--worker-ckpt-dir) for the sharded equivalent."
  in
  Arg.(value & opt workers_conv (Wcount 0) & info [ "workers" ] ~docv:"W" ~doc)

let addr_conv =
  let parse s =
    match Transport.parse s with
    | Ok a -> Ok a
    | Error e -> Error (`Msg e.Omn_robust.Err.msg)
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Transport.to_string a))

let listen_arg =
  let doc =
    "Coordinator listener address ($(b,host:port), port $(b,0) picks a free one) for \
     workers that dial in over TCP — mid-run joiners and spawned fleets on \
     multi-homed hosts. Default: a fresh Unix-domain socket under TMPDIR."
  in
  Arg.(value & opt (some addr_conv) None & info [ "listen" ] ~docv:"ADDR" ~doc)

let auth_key_arg =
  let doc =
    "Pre-shared key: require the HMAC-SHA-256 handshake on every shard connection. \
     Both sides must hold the same key; a wrong key, replayed nonce or protocol \
     version mismatch is a typed $(b,E-AUTH)/$(b,E-PROTO) rejection (exit 2), never \
     a hang. Defaults to the $(b,OMN_SHARD_KEY) environment variable (which is also \
     how spawned workers inherit it — the key never appears in argv)."
  in
  Arg.(value & opt (some string) None & info [ "auth-key" ] ~docv:"KEY" ~doc)

let worker_trace_cache_arg =
  let doc =
    "Hand spawned workers this content-addressed trace store ($(b,--trace-cache)): a \
     worker whose store already holds the job's trace digest re-ships zero bytes."
  in
  Arg.(value & opt (some string) None & info [ "worker-trace-cache" ] ~docv:"DIR" ~doc)

let stat_addr_arg =
  let doc =
    "Serve a live Prometheus text exposition of the fleet-merged metrics registry on \
     $(b,host:port) (port $(b,0) picks a free one; the bound address is printed to \
     stderr). The coordinator appears as $(b,worker=\"-1\") and each worker under its \
     id. Requires $(b,--workers); implies per-worker telemetry pulls."
  in
  Arg.(value & opt (some addr_conv) None & info [ "stat-addr" ] ~docv:"ADDR" ~doc)

let auth_key_resolve key =
  match key with Some _ -> key | None -> Sys.getenv_opt "OMN_SHARD_KEY"

let heartbeat_timeout_arg =
  let doc =
    "Declare a worker dead (and reassign its shard) after $(docv) seconds of silence. \
     Must exceed the longest single-source compute time."
  in
  Arg.(value & opt float 5. & info [ "heartbeat-timeout" ] ~docv:"S" ~doc)

let worker_ckpt_dir_arg =
  let doc =
    "Directory for per-worker shard checkpoints: a killed-and-respawned worker resumes \
     its completed sources from here instead of recomputing them."
  in
  Arg.(value & opt (some string) None & info [ "worker-ckpt-dir" ] ~docv:"DIR" ~doc)

let shard_fault_conv =
  let parse s =
    let err () =
      Error
        (`Msg
           (Printf.sprintf "expected KIND[:AFTER[:VICTIM]] with KIND one of %s, got %S"
              (String.concat "|" Faultgen.shard_fault_names)
              s))
    in
    match String.split_on_char ':' s with
    | kind :: rest -> (
      match (Faultgen.shard_fault_of_name kind, rest) with
      | Some shard_fault, [] -> Ok { Faultgen.after_results = 1; victim = 0; shard_fault }
      | Some shard_fault, [ a ] -> (
        match int_of_string_opt a with
        | Some after_results when after_results >= 0 ->
          Ok { Faultgen.after_results; victim = 0; shard_fault }
        | _ -> err ())
      | Some shard_fault, [ a; v ] -> (
        match (int_of_string_opt a, int_of_string_opt v) with
        | Some after_results, Some victim when after_results >= 0 && victim >= 0 ->
          Ok { Faultgen.after_results; victim; shard_fault }
        | _ -> err ())
      | _ -> err ())
    | [] -> err ()
  in
  Arg.conv (parse, Faultgen.pp_shard_event)

let shard_fault_arg =
  let doc =
    "Chaos: after AFTER acknowledged results (default 1), apply KIND ($(b,worker-kill), \
     $(b,worker-hang), $(b,sock-corrupt), $(b,net-partition), $(b,net-slow), \
     $(b,net-dup), $(b,auth-bad), $(b,worker-join) or $(b,worker-leave)) to worker \
     VICTIM (default 0); $(docv) is KIND[:AFTER[:VICTIM]]. Repeatable; requires \
     $(b,--workers). Results must stay byte-identical — this flag exists to prove it."
  in
  Arg.(value & opt_all shard_fault_conv [] & info [ "shard-fault" ] ~docv:"SPEC" ~doc)

let shard_supervise (p : Supervise.policy option) =
  Option.map
    (fun (p : Supervise.policy) ->
      (p.Supervise.retries, p.Supervise.backoff, p.Supervise.backoff_max, p.Supervise.jitter_seed))
    p

(* Report fallback/quarantine outcomes and pick the documented exit
   code via the one shared precedence rule: partial (124) beats
   degraded (3) beats success (0) — [Supervise.exit_code], so the
   single-process and sharded drivers can never drift apart. *)
let resilience_exit ~partial ~ckpt_fallback degraded =
  if ckpt_fallback then
    Format.eprintf "omn: checkpoint was corrupt; resumed from the previous generation@.";
  (match degraded with
  | [] -> ()
  | fs ->
    Format.printf "DEGRADED result: %d source task(s) quarantined@." (List.length fs);
    List.iter (fun f -> Format.printf "  %a@." Supervise.pp_failure f) fs);
  Supervise.exit_code ~partial ~degraded:(degraded <> [])

(* --- sampled estimator flags (omn diameter --sample) --- *)

let sample_arg =
  let doc =
    "Estimate the diameter from a seeded stratified sample of $(docv) source nodes \
     instead of all of them, with a bootstrap confidence interval; the sample doubles \
     until the CI is at most $(b,--ci-width) hops wide. With $(docv) >= the node count \
     the result is byte-identical to the exact engine."
  in
  Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"K" ~doc)

let ci_width_arg =
  let doc = "Stop tightening once the CI is at most $(docv) hops wide (default 1)." in
  Arg.(value & opt (some float) None & info [ "ci-width" ] ~docv:"W" ~doc)

let confidence_arg =
  let doc = "Nominal CI coverage (default 0.9)." in
  Arg.(value & opt (some float) None & info [ "confidence" ] ~docv:"C" ~doc)

let bootstrap_arg =
  let doc = "Bootstrap resamples per tightening round (default 200)." in
  Arg.(value & opt (some int) None & info [ "bootstrap" ] ~docv:"B" ~doc)

let sample_seed_arg =
  let doc = "Seed for the source sample rotation (default 0)." in
  Arg.(value & opt (some int) None & info [ "sample-seed" ] ~docv:"INT" ~doc)

let stream_arg =
  let doc =
    "Ingest the trace through the streaming parser: constant-memory, honours \
     $(b,--ingest)/$(b,--lenient), and reads $(b,# omn-shards 1) indexes written by \
     `omn gen --shards'. Results are byte-identical to the in-memory reader on any \
     time-ordered input."
  in
  Arg.(value & flag & info [ "stream" ] ~doc)

let heap_cap_arg =
  let doc =
    "Test hook: fail with a Compute error if the peak major-heap size observed during \
     trace ingestion exceeds $(docv) words. The scale harness uses this to prove \
     streaming ingestion stays under a cap that in-memory loading busts. $(b,0) \
     disables the check."
  in
  Arg.(value & opt int 0 & info [ "heap-cap-words" ] ~docv:"WORDS" ~doc)

let diameter_cmd =
  let run path ingest lenient epsilon max_hops domains checkpoint resume every budget metrics
      trace_out progress retries task_deadline quarantine sample ci_width confidence bootstrap
      sample_seed stream workers heap_cap output =
    protect_code @@ fun () ->
    if resume && checkpoint = None then usage_err "--resume requires --checkpoint FILE";
    if epsilon <= 0. || epsilon >= 1. then usage_err "--epsilon out of (0,1)";
    if sample = None then begin
      let reject what = usage_err "%s requires --sample" what in
      if ci_width <> None then reject "--ci-width";
      if confidence <> None then reject "--confidence";
      if bootstrap <> None then reject "--bootstrap";
      if sample_seed <> None then reject "--sample-seed";
      if sharded workers then
        usage_err "--workers requires --sample (the exact sharded engine is `omn delay-cdf')"
    end;
    let domains = Omn_parallel.Pool.resolve domains in
    let supervise = supervise_policy retries task_deadline quarantine in
    if sample <> None && supervise <> None then
      usage_err "--retries/--task-deadline/--quarantine are not supported with --sample";
    with_obs ?metrics ?trace_out @@ fun () ->
    (* The heap alarm must be armed before ingestion starts: the cap is
       a statement about the loader's transient structures, which are
       dead (and possibly collected) by the time the load returns. *)
    let peak = ref 0 in
    let note_peak () =
      let h = (Gc.quick_stat ()).Gc.heap_words in
      if h > !peak then peak := h
    in
    let alarm = if heap_cap > 0 then Some (Gc.create_alarm note_peak) else None in
    let trace =
      if stream then load_trace_stream ~policy:ingest ~lenient path
      else load_trace ~policy:ingest ~lenient path
    in
    Option.iter
      (fun a ->
        Gc.delete_alarm a;
        note_peak ();
        if !peak > heap_cap then
          raise
            (Err.Error
               (Err.v Err.Compute
                  (Printf.sprintf
                     "ingestion peak heap %d words exceeds cap %d (try --stream over a \
                      shard index)"
                     !peak heap_cap))))
      alarm;
    trace_manifest ~path ~domains
      ~config:
        Omn_obs.Json.
          [
            ("epsilon", Float epsilon); ("max_hops", Int max_hops);
            ("checkpoint_every", Int every);
            ("budget_seconds", match budget with Some b -> Float b | None -> Null);
            ("supervised", Bool (supervise <> None));
            ("sample", match sample with Some k -> Int k | None -> Null);
            ("streamed", Bool stream);
          ]
      trace;
    write_checkpoint_sidecar checkpoint;
    let span = Omn_temporal.Trace.span trace in
    let grid =
      Omn_stats.Grid.logarithmic ~lo:(Float.max 1. (span /. 5000.)) ~hi:span ~n:100
    in
    let print_result (result : Omn_core.Diameter.result) =
      Format.printf "(1 - %g)-diameter: %s@." epsilon
        (match result.diameter with
        | Some d -> string_of_int d
        | None -> Printf.sprintf "> %d" max_hops);
      Format.printf "@.delay        ";
      List.iter (fun k -> Format.printf "%7s" (Printf.sprintf "%dh" k)) [ 1; 2; 3; 4 ];
      Format.printf "   flood@.";
      Array.iteri
        (fun i d ->
          if i mod 12 = 0 then begin
            Format.printf "%-12s " (Omn_stats.Timefmt.axis_seconds d);
            List.iter
              (fun k -> Format.printf "%7.3f" result.curves.hop_success.(k - 1).(i))
              [ 1; 2; 3; 4 ];
            Format.printf "%8.3f@." result.curves.flood_success.(i)
          end)
        result.curves.grid
    in
    let result_json (result : Omn_core.Diameter.result) extra =
      let open Omn_obs.Json in
      json_with_manifest
        ([
           ("epsilon", Float epsilon);
           ("diameter", match result.diameter with Some d -> Int d | None -> Null);
           ("max_hops", Int max_hops);
         ]
        @ extra @ curve_fields result.curves)
    in
    let deliver result extra =
      match output with
      | Some f ->
        write_json f (result_json result extra);
        Format.printf "wrote %s@." f
      | None -> print_result result
    in
    match sample with
    | Some sample ->
      let module Est = Omn_core.Diameter_est in
      let ci_width = Option.value ci_width ~default:1. in
      let confidence = Option.value confidence ~default:0.9 in
      let bootstrap = Option.value bootstrap ~default:200 in
      let sample_seed = Option.value sample_seed ~default:0 in
      let report, finish = progress_reporter ~enabled:progress "sampled sources" in
      let report =
        Option.map
          (fun r ~round:_ ~sampled ~total ~width:_ ->
            r ~done_:sampled ~total ~degraded:0 ~fallback:false)
          report
      in
      (* Each tightening round's batch of per-source partials can come
         from the shard coordinator instead of the in-process pool: the
         [on_partial] hook hands every acknowledged partial back and the
         batch is re-ordered to the estimator's contract. *)
      let partials_of =
        if not (sharded workers) then None
        else
          Some
            (fun batch ->
              let tbl = Hashtbl.create (List.length batch) in
              let count, peers =
                match workers with Wcount n -> (n, []) | Wpeers l -> (0, l)
              in
              let cfg =
                {
                  (Shard.default ~workers:count) with
                  Shard.worker_domains = domains;
                  peers;
                  on_partial = Some (fun s p -> Hashtbl.replace tbl s p);
                }
              in
              match Shard.run ~max_hops ~grid ~sources:batch cfg trace with
              | Error e -> raise (Err.Error e)
              | Ok (_, p, _) ->
                if p.Omn_core.Delay_cdf.partial || p.Omn_core.Delay_cdf.degraded <> [] then
                  raise (Err.Error (Err.v Err.Compute "sharded sample round incomplete"));
                List.map
                  (fun s ->
                    match Hashtbl.find_opt tbl s with
                    | Some part -> part
                    | None ->
                      raise
                        (Err.Error
                           (Err.v Err.Compute
                              "worker returned no partial for a sampled source")))
                  batch)
      in
      let est_domains = if sharded workers then 1 else domains in
      let outcome =
        Est.estimate ~epsilon ~max_hops ~sample ~seed:sample_seed ~ci_width ~confidence
          ~bootstrap ~grid ~domains:est_domains ?checkpoint ~resume ?budget_seconds:budget
          ~clock:Unix.gettimeofday ?report ?partials_of trace
      in
      finish ();
      (match outcome with
      | Error e -> raise (Err.Error e)
      | Ok e ->
        if e.Est.partial then
          Format.printf
            "PARTIAL result: budget exhausted at %d of %d sources (CI width %g > target %g)@."
            e.Est.sampled e.Est.total e.Est.ci_width ci_width;
        let fmt_bound = function
          | Some d -> string_of_int d
          | None -> Printf.sprintf ">%d" max_hops
        in
        (match output with
        | Some f ->
          let open Omn_obs.Json in
          write_json f
            (json_with_manifest
               (( "sample",
                  Obj
                    [
                      ("sampled", Int e.Est.sampled); ("total", Int e.Est.total);
                      ("rounds", Int e.Est.rounds); ("seed", Int sample_seed);
                      ("confidence", Float e.Est.confidence);
                      ("ci_lo", match e.Est.ci_lo with Some d -> Int d | None -> Null);
                      ("ci_hi", match e.Est.ci_hi with Some d -> Int d | None -> Null);
                      ("ci_width", Float e.Est.ci_width);
                      ("target_ci_width", Float ci_width);
                      ("exhaustive", Bool e.Est.exhaustive); ("partial", Bool e.Est.partial);
                      ("ckpt_fallback", Bool e.Est.ckpt_fallback);
                    ] )
                :: [
                     ("epsilon", Float epsilon);
                     ( "diameter",
                       match e.Est.diameter with Some d -> Int d | None -> Null );
                     ("max_hops", Int max_hops);
                   ]
               @ curve_fields e.Est.curves));
          Format.printf "wrote %s@." f
        | None ->
          print_result
            { Omn_core.Diameter.diameter = e.Est.diameter; epsilon; curves = e.Est.curves };
          Format.printf "sampled %d of %d sources in %d round(s); %g%% CI [%s, %s] (width %g)@."
            e.Est.sampled e.Est.total e.Est.rounds
            (100. *. e.Est.confidence)
            (fmt_bound e.Est.ci_lo) (fmt_bound e.Est.ci_hi) e.Est.ci_width);
        resilience_exit ~partial:e.Est.partial ~ckpt_fallback:e.Est.ckpt_fallback [])
    | None ->
      if checkpoint = None && budget = None && supervise = None && not progress then begin
        deliver (Omn_core.Diameter.measure ~epsilon ~max_hops ~grid ~domains trace) [];
        0
      end
      else begin
        let report, finish = progress_reporter ~enabled:progress "sources" in
        let outcome =
          Omn_core.Diameter.measure_resumable ~epsilon ~max_hops ~grid ~domains ?checkpoint
            ~resume ~checkpoint_every:every ?budget_seconds:budget ~clock:Unix.gettimeofday
            ?report ?supervise trace
        in
        finish ();
        match outcome with
        | Error e -> raise (Err.Error e)
        | Ok run ->
          if run.partial then
            Format.printf
              "PARTIAL result: budget exhausted after %d of %d source nodes (uniform sample)@."
              run.sources_done run.sources_total;
          deliver run.result
            Omn_obs.Json.
              [
                ("sources_done", Int run.sources_done);
                ("sources_total", Int run.sources_total);
                ("partial", Bool run.partial);
                ("degraded_sources", Int (List.length run.degraded));
                ("ckpt_fallback", Bool run.ckpt_fallback);
              ];
          resilience_exit ~partial:run.partial ~ckpt_fallback:run.ckpt_fallback run.degraded
      end
  in
  Cmd.v
    (Cmd.info "diameter" ~doc:"Measure the (1-eps)-diameter of a trace, exactly or by sampling")
    Term.(
      const run $ trace_arg $ ingest_arg $ lenient_arg $ epsilon_arg $ max_hops_arg
      $ domains_arg $ checkpoint_arg $ resume_arg $ checkpoint_every_arg $ budget_arg
      $ metrics_arg $ trace_out_arg $ progress_arg $ retries_arg $ task_deadline_arg
      $ quarantine_arg $ sample_arg $ ci_width_arg $ confidence_arg $ bootstrap_arg
      $ sample_seed_arg $ stream_arg $ workers_arg $ heap_cap_arg $ output_arg)

(* --- delay-cdf --- *)

let delay_cdf_cmd =
  let trace_pos =
    let doc = "Input trace file (omit when using $(b,--preset))." in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let preset =
    let doc = "Synthesise the workload instead of reading a file (same names as `omn gen')." in
    Arg.(value & opt (some preset_conv) None & info [ "preset" ] ~docv:"NAME" ~doc)
  in
  let print_curves (c : Omn_core.Delay_cdf.curves) =
    Format.printf "delay        ";
    List.iter (fun k -> Format.printf "%7s" (Printf.sprintf "%dh" k)) [ 1; 2; 3; 4 ];
    Format.printf "   flood@.";
    Array.iteri
      (fun i d ->
        if i mod 12 = 0 then begin
          Format.printf "%-12s " (Omn_stats.Timefmt.axis_seconds d);
          List.iter (fun k -> Format.printf "%7.3f" c.hop_success.(k - 1).(i)) [ 1; 2; 3; 4 ];
          Format.printf "%8.3f@." c.flood_success.(i)
        end)
      c.grid;
    Format.printf "flood success at unlimited delay: %.3f (max fixpoint rounds: %d)@."
      c.flood_success_inf c.max_rounds_used
  in
  let run path preset seed ingest lenient max_hops domains checkpoint resume every budget
      metrics trace_out progress retries task_deadline quarantine workers hb_timeout
      worker_ckpt_dir shard_faults listen auth_key worker_trace_cache stat_addr output =
    protect_code @@ fun () ->
    if resume && checkpoint = None then usage_err "--resume requires --checkpoint FILE";
    if sharded workers && (checkpoint <> None || resume) then
      usage_err
        "--workers is incompatible with --checkpoint/--resume (workers keep their own \
         shard checkpoints; see --worker-ckpt-dir)";
    if shard_faults <> [] && not (sharded workers) then
      usage_err "--shard-fault requires --workers";
    if (listen <> None || auth_key <> None || worker_trace_cache <> None
       || stat_addr <> None)
       && not (sharded workers)
    then
      usage_err "--listen/--auth-key/--worker-trace-cache/--stat-addr require --workers";
    let domains = Omn_parallel.Pool.resolve domains in
    let supervise = supervise_policy retries task_deadline quarantine in
    with_obs ?metrics ?trace_out @@ fun () ->
    let trace =
      match (path, preset) with
      | Some _, Some _ -> usage_err "give either TRACE or --preset, not both"
      | Some p, None -> load_trace ~policy:ingest ~lenient p
      | None, Some pr -> preset_trace pr ~seed ~nodes:40 ~lambda:2. ~hours:6.
      | None, None -> usage_err "need a TRACE file or --preset NAME"
    in
    trace_manifest ?path ~seed ~domains
      ~config:
        Omn_obs.Json.
          [
            ("max_hops", Int max_hops); ("checkpoint_every", Int every);
            ("budget_seconds", match budget with Some b -> Float b | None -> Null);
            ("supervised", Bool (supervise <> None));
          ]
      trace;
    write_checkpoint_sidecar checkpoint;
    let span = Omn_temporal.Trace.span trace in
    let grid =
      Omn_stats.Grid.logarithmic ~lo:(Float.max 1. (span /. 5000.)) ~hi:span ~n:100
    in
    let report, finish = progress_reporter ~enabled:progress "sources" in
    let outcome =
      if sharded workers then begin
        let count, peers = match workers with Wcount n -> (n, []) | Wpeers l -> (0, l) in
        let cfg =
          {
            (Shard.default ~workers:count) with
            Shard.worker_domains = domains;
            heartbeat_timeout = hb_timeout;
            supervise = shard_supervise supervise;
            ckpt_dir = worker_ckpt_dir;
            budget_seconds = budget;
            listen;
            peers;
            auth_key = auth_key_resolve auth_key;
            worker_trace_cache;
            chaos =
              List.sort
                (fun (a : Faultgen.shard_event) b -> compare a.after_results b.after_results)
                shard_faults;
            (* pull worker telemetry whenever this run writes obs
               artifacts or serves live stats; never affects results *)
            telemetry = metrics <> None || trace_out <> None || stat_addr <> None;
            stat_addr;
            on_stat_bound =
              Some
                (fun a ->
                  Format.eprintf "omn: fleet stats on %s@." (Transport.to_string a));
          }
        in
        (* a fault schedule needs the victim to still hold undispatched
           work when the fault fires, or failover degenerates into a
           socket-buffer race; pin the flow-control window like the
           chaos harness does *)
        let cfg =
          if shard_faults = [] then cfg else { cfg with Shard.max_inflight = 2 }
        in
        match Shard.run ~max_hops ~grid cfg trace with
        | Error e -> Error e
        | Ok (curves, p, stats) ->
          fleet_telemetry := stats.Shard.fleet;
          update_manifest (fun m ->
              {
                m with
                Omn_obs.Manifest.workers = Some (workers_fleet workers);
                shard_map_sha256 = Some stats.Shard.shard_map_sha256;
              });
          if stats.Shard.reassigned > 0 || stats.Shard.rejoins > 0 then
            Format.eprintf
              "omn: shard failover: %d source(s) reassigned, %d worker spawn(s), %d \
               rejoin(s), %d duplicate result(s) dropped@."
              stats.Shard.reassigned stats.Shard.spawns stats.Shard.rejoins
              stats.Shard.duplicates;
          if stats.Shard.auth_rejects > 0 then
            Format.eprintf "omn: shard auth: %d connection(s) rejected (E-AUTH)@."
              stats.Shard.auth_rejects;
          if stats.Shard.joins > 0 || stats.Shard.leaves > 0 then
            Format.eprintf "omn: shard membership: %d join(s), %d leave(s)@."
              stats.Shard.joins stats.Shard.leaves;
          Ok (curves, p)
      end
      else
        Omn_core.Delay_cdf.compute_resumable ~max_hops ~grid ~domains ?checkpoint ~resume
          ~checkpoint_every:every ?budget_seconds:budget ~clock:Unix.gettimeofday ?report
          ?supervise trace
    in
    finish ();
    match outcome with
    | Error e -> raise (Err.Error e)
    | Ok (curves, p) ->
      if p.partial then
        Format.printf
          "PARTIAL result: budget exhausted after %d of %d source nodes (uniform sample)@."
          p.sources_done p.sources_total;
      (match output with
      | Some f ->
        write_json f (json_with_manifest (curve_fields curves));
        Format.printf "wrote %s@." f
      | None -> print_curves curves);
      resilience_exit ~partial:p.partial ~ckpt_fallback:p.ckpt_fallback p.degraded
  in
  Cmd.v
    (Cmd.info "delay-cdf"
       ~doc:
         "Compute the per-hop-bound delay-CDF curves of a trace (Figs. 9-11 without the \
          diameter extraction)")
    Term.(
      const run $ trace_pos $ preset $ seed_arg $ ingest_arg $ lenient_arg $ max_hops_arg
      $ domains_arg $ checkpoint_arg $ resume_arg $ checkpoint_every_arg $ budget_arg
      $ metrics_arg $ trace_out_arg $ progress_arg $ retries_arg $ task_deadline_arg
      $ quarantine_arg $ workers_arg $ heartbeat_timeout_arg $ worker_ckpt_dir_arg
      $ shard_fault_arg $ listen_arg $ auth_key_arg $ worker_trace_cache_arg
      $ stat_addr_arg $ output_arg)

(* --- delivery --- *)

let delivery_cmd =
  let source =
    Arg.(required & opt (some int) None & info [ "s"; "source" ] ~docv:"NODE" ~doc:"Source node.")
  in
  let dest =
    Arg.(
      required & opt (some int) None & info [ "d"; "dest" ] ~docv:"NODE" ~doc:"Destination node.")
  in
  let hops =
    Arg.(value & opt (some int) None & info [ "hops" ] ~docv:"K" ~doc:"Hop bound (default none).")
  in
  let run path ingest lenient source dest hops =
    protect @@ fun () ->
    let trace = load_trace ~policy:ingest ~lenient path in
    let n = Omn_temporal.Trace.n_nodes trace in
    if source < 0 || source >= n then usage_err "source node %d out of range [0, %d)" source n;
    if dest < 0 || dest >= n then usage_err "destination node %d out of range [0, %d)" dest n;
    let delivery = Omn_core.Journey.delivery_to trace ~source ~dest ?max_hops:hops () in
    Format.printf "%d optimal path(s) from %d to %d%s@."
      (Omn_core.Delivery.n_optimal_paths delivery)
      source dest
      (match hops with None -> "" | Some k -> Printf.sprintf " within %d hops" k);
    Array.iter
      (fun (p : Omn_core.Ld_ea.t) ->
        Format.printf "  last departure %-12g earliest arrival %-12g@." p.ld p.ea)
      (Omn_core.Delivery.descriptors delivery)
  in
  Cmd.v
    (Cmd.info "delivery" ~doc:"Print the delivery function of one pair")
    Term.(const run $ trace_arg $ ingest_arg $ lenient_arg $ source $ dest $ hops)

(* --- transform --- *)

let transform_cmd =
  let drop_prob =
    Arg.(
      value
      & opt (some float) None
      & info [ "drop-prob" ] ~docv:"P" ~doc:"Drop each contact with probability P.")
  in
  let min_duration =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-duration" ] ~docv:"SECONDS" ~doc:"Keep only contacts longer than this.")
  in
  let window =
    Arg.(
      value
      & opt (some (pair ~sep:':' float float)) None
      & info [ "window" ] ~docv:"T0:T1" ~doc:"Crop to a time window.")
  in
  let run path ingest lenient seed drop_prob min_duration window output =
    protect @@ fun () ->
    let trace = load_trace ~policy:ingest ~lenient path in
    let trace =
      match window with
      | Some (t_start, t_end) -> Omn_temporal.Transform.time_window ~t_start ~t_end trace
      | None -> trace
    in
    let trace =
      match min_duration with
      | Some threshold -> Omn_temporal.Transform.keep_longer_than threshold trace
      | None -> trace
    in
    let trace =
      match drop_prob with
      | Some p ->
        Omn_temporal.Transform.remove_random ~rng:(Omn_stats.Rng.create seed) ~p trace
      | None -> trace
    in
    save_or_print trace output
  in
  Cmd.v
    (Cmd.info "transform" ~doc:"Crop / filter / thin a trace (the paper's section 6 surgery)")
    Term.(
      const run $ trace_arg $ ingest_arg $ lenient_arg $ seed_arg $ drop_prob $ min_duration
      $ window $ output_arg)

(* --- corrupt (fault-injection harness) --- *)

let corrupt_cmd =
  let fault =
    let doc =
      "Fault to inject: one of $(b,truncate), $(b,mangle), $(b,nan), $(b,self-loop), \
       $(b,negative-id), $(b,window-lie), $(b,reorder), $(b,duplicate) for trace files, \
       or $(b,ckpt-truncate), $(b,ckpt-flip), $(b,ckpt-stale) for checkpoint files \
       (binary faults: truncated tail, one flipped payload byte, a stale fingerprint \
       re-sealed with a valid CRC)."
    in
    let fault_conv = Arg.enum (List.map (fun n -> (n, n)) Faultgen.all_names) in
    Arg.(required & opt (some fault_conv) None & info [ "fault" ] ~docv:"NAME" ~doc)
  in
  let run path seed fault output =
    protect @@ fun () ->
    let fault =
      match Faultgen.of_name fault with
      | Some f -> f
      | None -> usage_err "unknown fault %S" fault
    in
    let text = Omn_robust.Atomic_file.read_to_string path in
    let corrupted = Faultgen.apply ~seed fault text in
    match output with
    | Some out ->
      Omn_robust.Atomic_file.write_string out corrupted;
      Format.printf "wrote %s (fault: %s)@." out (Faultgen.name fault)
    | None -> print_string corrupted
  in
  Cmd.v
    (Cmd.info "corrupt"
       ~doc:
         "Deterministically corrupt a trace file (fault-injection harness for testing \
          the lenient ingestion and recovery paths)")
    Term.(const run $ trace_arg $ seed_arg $ fault $ output_arg)

(* --- worker (shard worker process, spawned by the coordinator) --- *)

let worker_cmd =
  let id =
    Arg.(
      value
      & opt int (-1)
      & info [ "id" ] ~docv:"N"
          ~doc:
            "Worker index assigned by the coordinator. $(b,-1) (default) joins as a \
             new member: the coordinator assigns the next free id.")
  in
  let connect =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Dial the coordinator at $(docv) (a Unix-domain socket path or \
             $(b,host:port)) and redial on link loss.")
  in
  let sock =
    Arg.(
      value
      & opt (some string) None
      & info [ "sock" ] ~docv:"PATH"
          ~doc:"Compatibility alias for $(b,--connect) with a Unix-domain socket path.")
  in
  let listen =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Listen on $(docv) ($(b,host:port), port $(b,0) picks a free one and \
             prints it) and serve coordinator connections — the multi-machine worker \
             shape ($(b,delay-cdf --workers host:port,...)).")
  in
  let auth_key =
    Arg.(
      value
      & opt (some string) None
      & info [ "auth-key" ] ~docv:"KEY"
          ~doc:
            "Pre-shared key for the HMAC-SHA-256 handshake; defaults to \
             $(b,OMN_SHARD_KEY) in the environment.")
  in
  let trace_cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-cache" ] ~docv:"DIR"
          ~doc:
            "Content-addressed trace store: traces are kept by SHA-256 digest \
             (CRC-framed, atomically written), so a rejoin or a later job over the \
             same trace re-ships zero bytes.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"With $(b,--listen): exit after the first cleanly shut-down session.")
  in
  let run id connect sock listen auth_key trace_cache once =
    protect @@ fun () ->
    let mode =
      match (connect, sock, listen) with
      | Some a, None, None -> Omn_shard.Worker.Dial a
      | None, Some p, None -> Omn_shard.Worker.Dial (Transport.Unix_path p)
      | None, None, Some a -> Omn_shard.Worker.Listen a
      | None, None, None -> usage_err "need one of --connect, --sock or --listen"
      | _ -> usage_err "give only one of --connect, --sock or --listen"
    in
    match
      Omn_shard.Worker.main ~worker:id ~mode
        ?auth_key:(auth_key_resolve auth_key)
        ?trace_cache ~once ()
    with
    | Ok () -> ()
    | Error e -> raise (Err.Error e)
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Shard worker process. Either spawned by the coordinator behind $(b,delay-cdf \
          --workers N) (it dials back over the coordinator's socket), or pre-started \
          with $(b,--listen host:port) on another machine and named in $(b,delay-cdf \
          --workers host:port,...). Computes per-source partials on demand and ships \
          them back CRC-framed; authentication and protocol rejections exit 2 with a \
          typed $(b,E-AUTH)/$(b,E-PROTO) error.")
    Term.(const run $ id $ connect $ sock $ listen $ auth_key $ trace_cache $ once)

(* --- chaos (resilience harness) --- *)

let chaos_cmd =
  let fail fmt = Format.kasprintf (fun msg -> raise (Err.Error (Err.v Err.Compute msg))) fmt in
  let ok what = Format.printf "chaos: %-46s OK@." what in
  let run seed domains shard metrics =
    protect_code @@ fun () ->
    let domains = Omn_parallel.Pool.resolve domains in
    with_obs ?metrics @@ fun () ->
    let module RI = Omn_robust.Retry_io in
    let horizon = 4. *. 3600. in
    let trace =
      Omn_randnet.Continuous.generate (Omn_stats.Rng.create seed)
        { n = 24; lambda = 3. /. 3600.; horizon }
    in
    let grid = Omn_stats.Grid.logarithmic ~lo:10. ~hi:horizon ~n:40 in
    let max_hops = 6 in
    Fun.protect
      ~finally:(fun () ->
        RI.set_inject None;
        Supervise.set_task_fault None)
    @@ fun () ->
    (* 1. Transient I/O faults: a trace read that fails twice with
       injected faults still succeeds through the retry wrapper. *)
    let tmp = Filename.temp_file "omn-chaos" ".omn" in
    Omn_temporal.Trace_io.save trace tmp;
    let remaining = Atomic.make 2 in
    RI.set_inject
      (Some
         (fun ~op ~path ->
           if op = "read" && path = tmp && Atomic.fetch_and_add remaining (-1) > 0 then
             raise (RI.Injected "chaos read fault")));
    (match Omn_temporal.Trace_io.load_result tmp with
    | Ok _ -> ok "transient read faults retried"
    | Error e -> fail "retried read still failed: %s" (Err.to_string e));
    RI.set_inject None;
    (try Sys.remove tmp with Sys_error _ -> ());
    (* 2. Supervised degraded run: poisoned sources fail every attempt
       and must be quarantined exactly; flaky sources fail once and must
       recover; the surviving curves must be bit-identical to a
       fault-free run over the surviving sources. *)
    let n = Omn_temporal.Trace.n_nodes trace in
    let poisoned = [ 3; 11 ] and flaky = [ 5; 17 ] in
    Supervise.set_task_fault
      (Some
         (fun ~item ~attempt ->
           if List.mem item poisoned then failwith "chaos: poisoned source"
           else if List.mem item flaky && attempt = 0 then failwith "chaos: flaky source"));
    let policy = { Supervise.default with backoff = 1e-4; backoff_max = 1e-3 } in
    let degraded_run =
      Omn_core.Delay_cdf.compute_resumable ~max_hops ~grid ~domains ~supervise:policy
        ~clock:Unix.gettimeofday trace
    in
    Supervise.set_task_fault None;
    (match degraded_run with
    | Error e -> raise (Err.Error e)
    | Ok (curves, p) ->
      if p.partial then fail "degraded run did not complete";
      let quarantined =
        List.sort compare (List.map (fun (f : Supervise.failure) -> f.item) p.degraded)
      in
      if quarantined <> List.sort compare poisoned then
        fail "expected quarantined {%s}, got {%s}"
          (String.concat "," (List.map string_of_int poisoned))
          (String.concat "," (List.map string_of_int quarantined));
      ok "poisoned sources quarantined exactly";
      let survivors =
        List.filter
          (fun s -> not (List.mem s poisoned))
          (Omn_core.Delay_cdf.uniform_order (List.init n (fun i -> i)))
      in
      let reference = Omn_core.Delay_cdf.compute ~max_hops ~grid ~sources:survivors trace in
      if curves <> reference then
        fail "degraded curves differ from the fault-free run over surviving sources";
      ok "surviving results bit-identical");
    (* 3. Checkpoint corruption: build two generations with budgeted
       runs, flip a payload byte in the current one; resume must fall
       back to .prev and still finish bit-identical to an uninterrupted
       run. *)
    let ckpt = Filename.temp_file "omn-chaos" ".ckpt" in
    let measure ?(resume = false) ?budget_seconds ?checkpoint () =
      Omn_core.Diameter.measure_resumable ~max_hops ~grid ~domains ?checkpoint ~resume
        ~checkpoint_every:4 ?budget_seconds ~clock:Unix.gettimeofday trace
    in
    let step label r =
      match r with
      | Error e -> fail "%s: %s" label (Err.to_string e)
      | Ok (run : Omn_core.Diameter.run) -> run
    in
    let r1 = step "budgeted run 1" (measure ~checkpoint:ckpt ~budget_seconds:0. ()) in
    if not r1.partial then fail "budgeted run 1 unexpectedly completed";
    let r2 = step "budgeted run 2" (measure ~checkpoint:ckpt ~resume:true ~budget_seconds:0. ()) in
    ignore (r2 : Omn_core.Diameter.run);
    let data = RI.read_to_string ckpt in
    RI.write_string ckpt (Faultgen.apply ~seed Faultgen.Ckpt_flip data);
    let r3 = step "resumed run" (measure ~checkpoint:ckpt ~resume:true ()) in
    if not r3.ckpt_fallback then fail "corrupt checkpoint did not fall back to .prev";
    if r3.partial then fail "resumed run did not complete";
    ok "corrupt checkpoint fell back to .prev";
    let reference = step "uninterrupted run" (measure ()) in
    if r3.result <> reference.result then
      fail "resumed-after-corruption result differs from the uninterrupted run";
    if Sys.file_exists ckpt || Sys.file_exists (Omn_robust.Checkpoint.prev_path ckpt) then
      fail "completed run left checkpoint generations behind";
    ok "post-fallback result bit-identical";
    (* 4. The forwarding pipeline still runs to completion in the same
       process after all that fault injection. *)
    let stats =
      Omn_forwarding.Sim.evaluate ~domains (Omn_stats.Rng.create seed) trace
        ~protocols:[ Omn_forwarding.Protocol.Direct; Omn_forwarding.Protocol.Two_hop ]
        ~messages:40 ~deadline:3600.
    in
    if stats = [] then fail "forwarding simulation returned no stats";
    ok "forwarding pipeline completed";
    (* 5-8. Sharded execution under process-level faults (--shard):
       worker crashes, hangs and corrupted frames must never lose or
       double-count a source, and the merged curves must stay
       byte-identical to the single-process run. *)
    if shard then begin
      let sh_workers = 3 in
      let sh_n = 12 in
      let strace =
        Omn_randnet.Continuous.generate
          (Omn_stats.Rng.create (seed + 1))
          { n = sh_n; lambda = 6. /. 3600.; horizon = 3600. }
      in
      let sgrid = Omn_stats.Grid.logarithmic ~lo:10. ~hi:3600. ~n:20 in
      let smax = 4 in
      let reference =
        Omn_core.Delay_cdf.compute ~max_hops:smax ~grid:sgrid
          ~sources:(Omn_core.Delay_cdf.uniform_order (List.init sh_n Fun.id))
          strace
      in
      let sh_cfg ?(workers = sh_workers) ?(chaos = []) ?ckpt_dir () =
        {
          (Shard.default ~workers) with
          Shard.heartbeat_interval = 0.05;
          heartbeat_timeout = 2.;
          respawn_backoff = 0.05;
          (* a 2-source in-flight window makes every fault observable by
             construction: at most 6 initial + 3 ack-freed dispatches can
             precede the last chaos event, so a killed or hung victim
             always strands undispatched work — completion then requires
             failover, never just draining the socket buffer *)
          max_inflight = 2;
          chaos;
          ckpt_dir;
        }
      in
      let run_shard label cfg =
        match Shard.run ~max_hops:smax ~grid:sgrid cfg strace with
        | Error e -> fail "%s: %s" label (Err.to_string e)
        | Ok (curves, p, st) ->
          if p.Omn_core.Delay_cdf.partial then fail "%s: unexpectedly partial" label;
          if p.degraded <> [] then fail "%s: unexpectedly degraded" label;
          if p.sources_done <> sh_n then
            fail "%s: %d of %d sources acknowledged" label p.sources_done sh_n;
          if curves <> reference then
            fail "%s: curves differ from the single-process run" label;
          st
      in
      let _ = run_shard "clean sharded run" (sh_cfg ()) in
      ok "sharded run bit-identical (3 workers)";
      let dir = Filename.temp_file "omn-chaos-shard" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      let kill_all =
        [
          { Faultgen.after_results = 1; victim = 0; shard_fault = Faultgen.Worker_kill };
          { Faultgen.after_results = 2; victim = 1; shard_fault = Faultgen.Worker_kill };
          { Faultgen.after_results = 3; victim = 2; shard_fault = Faultgen.Worker_kill };
        ]
      in
      let st = run_shard "kill-every-worker run" (sh_cfg ~chaos:kill_all ~ckpt_dir:dir ()) in
      if st.Shard.spawns <= sh_workers then
        fail "kill-every-worker run finished without a respawn";
      ok "every worker killed: respawn + failover, no source lost";
      let hang = [ { Faultgen.after_results = 1; victim = 0; shard_fault = Faultgen.Worker_hang } ] in
      let st = run_shard "hung-worker run" (sh_cfg ~workers:1 ~chaos:hang ~ckpt_dir:dir ()) in
      if st.Shard.heartbeat_misses < 1 then fail "hung worker was never detected";
      ok "hung worker detected by heartbeat and replaced";
      let corrupt =
        [ { Faultgen.after_results = 1; victim = 0; shard_fault = Faultgen.Sock_corrupt } ]
      in
      let st = run_shard "corrupt-frame run" (sh_cfg ~workers:1 ~chaos:corrupt ~ckpt_dir:dir ()) in
      if st.Shard.frame_corrupts < 1 then fail "corrupt frame was never rejected";
      ok "corrupt frame rejected by CRC, connection replaced";
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      (* 9-15. Multi-machine shapes over loopback TCP: authenticated
         handshake on every link, link-level chaos, dynamic membership
         and the digest-addressed trace store. Identity with the
         single-process run is asserted by [run_shard] every time. *)
      let key = "chaos-preshared-key" in
      let tcp_cfg ?(workers = sh_workers) ?(chaos = []) ?worker_trace_cache () =
        {
          (sh_cfg ~workers ~chaos ()) with
          Shard.listen = Some (Transport.Tcp ("127.0.0.1", 0));
          auth_key = Some key;
          worker_trace_cache;
        }
      in
      let _ = run_shard "clean TCP run" (tcp_cfg ()) in
      ok "TCP fleet bit-identical (auth on every link)";
      let partition =
        [ { Faultgen.after_results = 2; victim = 0; shard_fault = Faultgen.Net_partition } ]
      in
      let st = run_shard "net-partition run" (tcp_cfg ~chaos:partition ()) in
      if st.Shard.partitions < 1 then fail "partition was never injected";
      ok "partitioned link: no acked progress lost, merge identical";
      let slow =
        [ { Faultgen.after_results = 1; victim = 0; shard_fault = Faultgen.Net_slow } ]
      in
      let st = run_shard "net-slow run" (tcp_cfg ~chaos:slow ()) in
      if st.Shard.heartbeat_misses > 0 then fail "slow link was declared dead";
      ok "slow link delayed within bound, never declared dead";
      let dup =
        [ { Faultgen.after_results = 1; victim = 0; shard_fault = Faultgen.Net_dup } ]
      in
      let st = run_shard "net-dup run" (tcp_cfg ~chaos:dup ()) in
      if st.Shard.duplicates < 1 then fail "duplicated result was not dropped";
      ok "duplicated result dropped by at-most-once merge";
      let bad =
        [ { Faultgen.after_results = 1; victim = 0; shard_fault = Faultgen.Auth_bad } ]
      in
      let st = run_shard "auth-bad run" (tcp_cfg ~chaos:bad ()) in
      if st.Shard.auth_rejects < 1 then fail "wrong-key joiner was not rejected";
      ok "wrong-key joiner rejected typed (E-AUTH), run unaffected";
      let membership =
        [
          { Faultgen.after_results = 1; victim = 0; shard_fault = Faultgen.Worker_join };
          { Faultgen.after_results = 4; victim = 1; shard_fault = Faultgen.Worker_leave };
        ]
      in
      let st = run_shard "membership run" (tcp_cfg ~chaos:membership ()) in
      if st.Shard.joins < 1 then fail "worker-join was never admitted";
      if st.Shard.leaves < 1 then fail "worker-leave never departed";
      ok "join + leave mid-run, merge identical";
      let store = Filename.temp_file "omn-chaos-store" "" in
      Sys.remove store;
      Unix.mkdir store 0o700;
      let st = run_shard "cold-store run" (tcp_cfg ~worker_trace_cache:store ()) in
      if st.Shard.trace_ship_bytes <= 0 then fail "cold store shipped no trace bytes";
      let st = run_shard "warm-store run" (tcp_cfg ~worker_trace_cache:store ()) in
      if st.Shard.trace_ship_bytes <> 0 then
        fail "warm digest cache still shipped %d byte(s)" st.Shard.trace_ship_bytes;
      if st.Shard.trace_cache_hits < sh_workers then fail "warm store missed a cache hit";
      ok "digest store: warm workers re-ship zero trace bytes";
      Array.iter
        (fun f -> try Sys.remove (Filename.concat store f) with Sys_error _ -> ())
        (Sys.readdir store);
      try Unix.rmdir store with Unix.Unix_error _ -> ()
    end;
    Format.printf "chaos: all scenarios passed; exit %d (degraded-but-complete)@." exit_degraded;
    exit_degraded
  in
  let shard_flag =
    let doc =
      "Also run the sharded-execution scenarios: worker-kill, worker-hang and \
       sock-corrupt faults against multi-process runs, plus the loopback-TCP fleet \
       under net-partition, net-slow, net-dup, auth-bad, membership changes and the \
       digest-addressed trace store (spawns real worker processes)."
    in
    Arg.(value & flag & info [ "shard" ] ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the delay-cdf / diameter / forwarding pipeline under injected faults and \
          assert the resilience guarantees (internal testing harness). Exits with code 3: \
          the run completes degraded by construction.")
    Term.(const run $ seed_arg $ domains_arg $ shard_flag $ metrics_arg)

(* --- forward --- *)

let forward_cmd =
  let messages =
    Arg.(value & opt int 200 & info [ "messages" ] ~docv:"M" ~doc:"Random messages to send.")
  in
  let deadline =
    Arg.(
      value & opt float 86400. & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Delivery deadline.")
  in
  let ttl =
    Arg.(
      value & opt (some int) None & info [ "ttl" ] ~docv:"K" ~doc:"Epidemic hop TTL to include.")
  in
  let run path ingest lenient seed messages deadline ttl domains metrics trace_out progress
      output =
    protect @@ fun () ->
    let domains = Omn_parallel.Pool.resolve domains in
    with_obs ?metrics ?trace_out @@ fun () ->
    let trace = load_trace ~policy:ingest ~lenient path in
    trace_manifest ~path ~seed ~domains
      ~config:
        Omn_obs.Json.
          [
            ("messages", Int messages); ("deadline", Float deadline);
            ("ttl", match ttl with Some k -> Int k | None -> Null);
          ]
      trace;
    let protocols =
      Omn_forwarding.Protocol.
        [
          Epidemic { ttl = None }; Epidemic { ttl };
          Spray_and_wait { copies = 8 }; Two_hop; First_contact; Direct;
        ]
      |> List.sort_uniq compare
    in
    let report, finish = progress_reporter ~enabled:progress "messages" in
    (* Sim reports only counts; forwarding has no supervision layer. *)
    let report =
      Option.map (fun r ~done_ ~total -> r ~done_ ~total ~degraded:0 ~fallback:false) report
    in
    let stats =
      Omn_forwarding.Sim.evaluate ~domains ?progress:report (Omn_stats.Rng.create seed) trace
        ~protocols ~messages ~deadline
    in
    finish ();
    match output with
    | Some f ->
      let open Omn_obs.Json in
      write_json f
        (json_with_manifest
           [
             ( "stats",
               List
                 (List.map
                    (fun (s : Omn_forwarding.Sim.stats) ->
                      Obj
                        [
                          ("protocol", String (Omn_forwarding.Protocol.name s.protocol));
                          ("delivered_ratio", Float s.delivered_ratio);
                          ("mean_delay", Float s.mean_delay);
                          ("mean_transmissions", Float s.mean_transmissions);
                          ("mean_nodes_reached", Float s.mean_nodes_reached);
                        ])
                    stats) );
           ]);
      Format.printf "wrote %s@." f
    | None ->
      Format.printf "%-20s %-10s %-12s %-8s %s@." "protocol" "delivered" "mean delay" "tx/msg"
        "nodes";
      List.iter
        (fun (s : Omn_forwarding.Sim.stats) ->
          Format.printf "%-20s %6.1f%%    %-12s %-8.1f %.1f@."
            (Omn_forwarding.Protocol.name s.protocol)
            (100. *. s.delivered_ratio)
            (if Float.is_nan s.mean_delay then "-"
             else Omn_stats.Timefmt.duration s.mean_delay)
            s.mean_transmissions s.mean_nodes_reached)
        stats
  in
  Cmd.v
    (Cmd.info "forward" ~doc:"Evaluate forwarding protocols on a trace")
    Term.(
      const run $ trace_arg $ ingest_arg $ lenient_arg $ seed_arg $ messages $ deadline $ ttl
      $ domains_arg $ metrics_arg $ trace_out_arg $ progress_arg $ output_arg)

(* --- theory --- *)

let theory_cmd =
  let lambda =
    Arg.(value & opt float 0.5 & info [ "lambda" ] ~docv:"RATE" ~doc:"Contact rate per node per slot.")
  in
  let n = Arg.(value & opt int 1000 & info [ "n" ] ~docv:"N" ~doc:"Network size.") in
  let run lambda n =
    protect @@ fun () ->
    let open Omn_randnet in
    List.iter
      (fun (case, label) ->
        let tau = Theory.tau_critical case ~lambda in
        Format.printf "%s contacts:@." label;
        if tau = 0. then
          Format.printf "  supercritical (lambda >= 1): paths exist at any delay coefficient@."
        else
          Format.printf "  critical delay  tau* = %.4f  (~ %.1f slots at N = %d)@." tau
            (Theory.expected_delay case ~lambda ~n)
            n;
        let k = Theory.hop_coefficient case ~lambda in
        if k = infinity then Format.printf "  hop coefficient diverges at lambda = 1@."
        else
          Format.printf "  hop coefficient %.4f  (~ %.1f hops at N = %d)@." k
            (Theory.expected_hops case ~lambda ~n)
            n)
      [ (Theory.Short, "short"); (Theory.Long, "long") ]
  in
  Cmd.v
    (Cmd.info "theory" ~doc:"Closed-form predictions for random temporal networks (section 3)")
    Term.(const run $ lambda $ n)

(* --- report --- *)

let report_cmd =
  let result_pos =
    let doc = "A result JSON written by $(b,omn delay-cdf/diameter/forward -o) (manifest echo)." in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"RESULT" ~doc)
  in
  let metrics_in =
    let doc = "Metrics snapshot JSON (from $(b,--metrics)) to fold into the report." in
    Arg.(value & opt (some file) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let timeline_in =
    let doc =
      "Exported timeline (Chrome trace JSON from $(b,--trace-out)): per-domain \
       busy/idle/steal breakdown, chunk straggler detection, checkpoint latency \
       percentiles, dropped-event count."
    in
    Arg.(value & opt (some file) None & info [ "timeline" ] ~docv:"FILE" ~doc)
  in
  let json_flag =
    let doc = "Emit the report as JSON (schema $(b,omn-report 1)) instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let fail_dropped =
    let doc =
      "Exit with code 1 when the run dropped timeline events (ring overflow, from the \
       trace footer or the $(b,timeline.dropped_events) metrics counter) — the trace \
       is incomplete and CI should say so."
    in
    Arg.(value & flag & info [ "fail-dropped" ] ~doc)
  in
  let fleet_flag =
    let doc =
      "Require the per-worker fleet section (busy/idle, trace-ship bytes, cache hits, \
       stragglers, clock offsets): error out unless $(b,--timeline) is a fleet-merged \
       trace from a $(b,--workers) run. The section is also rendered without this \
       flag whenever the input carries it."
    in
    Arg.(value & flag & info [ "fleet" ] ~doc)
  in
  let run result metrics timeline json fail_dropped fleet output =
    protect_code @@ fun () ->
    if result = None && metrics = None && timeline = None then
      usage_err "need at least one input: RESULT, --metrics FILE or --timeline FILE";
    let parse what path =
      match Omn_obs.Json.of_string (Omn_robust.Retry_io.read_to_string path) with
      | Ok j -> j
      | Error msg -> usage_err "%s %s: %s" what path msg
    in
    let report =
      Omn_obs.Report.build
        ?metrics:(Option.map (parse "metrics") metrics)
        ?timeline:(Option.map (parse "timeline") timeline)
        ?result:(Option.map (parse "result") result)
        ()
    in
    if fleet && Omn_obs.Json.member "fleet" report = Some Omn_obs.Json.Null then
      usage_err
        "--fleet: no per-worker telemetry in the input — pass a --timeline exported \
         from a --workers run with --trace-out";
    (if json then begin
       match output with
       | Some f ->
         write_json f report;
         Format.printf "wrote %s@." f
       | None -> print_string (Omn_obs.Json.to_string ~pretty:true report ^ "\n")
     end
     else Format.printf "%a" Omn_obs.Report.pp report);
    let dropped = Omn_obs.Report.dropped_events report in
    if fail_dropped && dropped > 0 then begin
      Format.eprintf "omn report: %d timeline event(s) dropped (ring overflow) — raise the \
                      ring capacity or checkpoint more often@."
        dropped;
      1
    end
    else 0
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Analyse a finished run from its artifacts: manifest echo, per-domain busy/idle \
          breakdown, straggler and load-imbalance detection, checkpoint latency, \
          retry/quarantine summary")
    Term.(
      const run $ result_pos $ metrics_in $ timeline_in $ json_flag $ fail_dropped
      $ fleet_flag $ output_arg)

(* --- experiments passthrough --- *)

let experiment_cmd =
  let exp_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Experiment id (fig1..fig12, table1, phase, fig3sim).")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Small workload.") in
  let run name quick =
    match Omn_experiments.Registry.find name with
    | Some e ->
      protect @@ fun () -> e.run ~quick Format.std_formatter
    | None ->
      Format.eprintf "unknown experiment %S; known:@." name;
      List.iter
        (fun (e : Omn_experiments.Registry.experiment) -> Format.eprintf "  %s@." e.name)
        Omn_experiments.Registry.all;
      2
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one paper experiment (same engine as bench/main.exe)")
    Term.(const run $ exp_name $ quick)

(* Cmdliner reads a bare negative option value (`--id -1`) as an
   unknown flag; glue such pairs into `--id=-1` before parsing so both
   spellings work (a joiner's id is -1 by design). *)
let glue_negative_optargs argv =
  let negative s = match int_of_string_opt s with Some v -> v < 0 | None -> false in
  let n = Array.length argv in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if argv.(!i) = "--id" && !i + 1 < n && negative argv.(!i + 1) then begin
      out := Printf.sprintf "--id=%s" argv.(!i + 1) :: !out;
      i := !i + 2
    end
    else begin
      out := argv.(!i) :: !out;
      incr i
    end
  done;
  Array.of_list (List.rev !out)

let () =
  let doc = "The diameter of opportunistic mobile networks — toolkit" in
  let info = Cmd.info "omn" ~version:omn_version ~doc in
  exit
    (Cmd.eval' ~argv:(glue_negative_optargs Sys.argv)
       (Cmd.group info
          [
            gen_cmd; stats_cmd; diameter_cmd; delay_cdf_cmd; delivery_cmd; transform_cmd;
            corrupt_cmd; chaos_cmd; worker_cmd; forward_cmd; theory_cmd; report_cmd;
            experiment_cmd;
          ]))
