(* Reproduction harness: regenerates every table and figure of
   "The Diameter of Opportunistic Mobile Networks" (CoNEXT 2007).

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only fig9  # one experiment
     dune exec bench/main.exe -- --quick      # small workloads (smoke)
     dune exec bench/main.exe -- --timing     # Bechamel micro/meso benches
     dune exec bench/main.exe -- --list       # experiment index *)

let fmt = Format.std_formatter

(* Worker-mode escape hatch for the shard bench block: the coordinator's
   [Spawn_exec] re-executes [Sys.executable_name worker ...], and under
   the bench that is this binary (same hatch as [Test_main]). *)
let () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "worker" then begin
    let arg flag =
      let glued = flag ^ "=" in
      let rec find i =
        if i >= Array.length Sys.argv then None
        else if Sys.argv.(i) = flag && i + 1 < Array.length Sys.argv then
          Some Sys.argv.(i + 1)
        else if String.starts_with ~prefix:glued Sys.argv.(i) then
          Some (String.sub Sys.argv.(i) (String.length glued)
                  (String.length Sys.argv.(i) - String.length glued))
        else find (i + 1)
      in
      find 2
    in
    let mode =
      match (arg "--connect", arg "--sock") with
      | Some a, _ -> (
        match Omn_shard.Transport.parse a with
        | Ok addr -> Omn_shard.Worker.Dial addr
        | Error _ -> exit 2)
      | None, Some p -> Omn_shard.Worker.Dial (Omn_shard.Transport.Unix_path p)
      | None, None -> exit 2
    in
    let worker = match arg "--id" with Some id -> int_of_string id | None -> -1 in
    let auth_key =
      match arg "--auth-key" with
      | Some _ as k -> k
      | None -> Sys.getenv_opt "OMN_SHARD_KEY"
    in
    match
      Omn_shard.Worker.main ~worker ~mode ?auth_key ?trace_cache:(arg "--trace-cache") ()
    with
    | Ok () -> exit 0
    | Error e ->
      prerr_endline (Omn_robust.Err.to_string e);
      exit (Omn_robust.Err.exit_code e.code)
  end

(* --- Bechamel timing benches: the §4.4 efficiency claims --- *)

let timing_tests () =
  let open Bechamel in
  let rng = Omn_stats.Rng.create 7 in
  (* Synthetic workload: venue-based half-day, sized by node count. *)
  let conference_trace n =
    let params = Omn_mobility.Venue.conference_params ~rng ~n ~days:0.5 in
    Omn_mobility.Venue.generate rng ~n ~name:"bench" params
  in
  let traces = List.map (fun n -> (n, conference_trace n)) [ 20; 40; 80 ] in
  let trace_of n = List.assoc n traces in
  let journey_one_source =
    Test.make_indexed ~name:"journey/all-dest-all-times" ~fmt:"%s:%d-nodes"
      ~args:(List.map fst traces) (fun n ->
        Staged.stage (fun () -> ignore (Omn_core.Journey.run (trace_of n) ~source:0)))
  in
  let dijkstra_sweep =
    (* The prior-art baseline: one earliest-arrival search per contact
       boundary (x2 for midpoints) yields the same delivery functions as
       one Journey.run. *)
    Test.make_indexed ~name:"dijkstra/per-start-time-sweep" ~fmt:"%s:%d-nodes"
      ~args:(List.map fst traces) (fun n ->
        Staged.stage (fun () ->
            ignore (Omn_baseline.Flooding.compute (trace_of n) ~source:0)))
  in
  let frontier_insert =
    let points =
      Array.init 4096 (fun _ ->
          Omn_core.Ld_ea.make
            ~ld:(Omn_stats.Rng.float rng *. 1000.)
            ~ea:(Omn_stats.Rng.float rng *. 1000.))
    in
    Test.make ~name:"frontier/insert-4096"
      (Staged.stage (fun () ->
           let f = Omn_core.Frontier.create () in
           Array.iter (fun p -> ignore (Omn_core.Frontier.insert f p)) points))
  in
  let delay_cdf_accumulate =
    let trace = trace_of 40 in
    let frontiers, _ = Omn_core.Journey.run trace ~source:0 in
    let snapshots = Array.map Omn_core.Frontier.to_array frontiers in
    let t_start = Omn_temporal.Trace.t_start trace
    and t_end = Omn_temporal.Trace.t_end trace in
    Test.make ~name:"delay-cdf/accumulate-40-dests"
      (Staged.stage (fun () ->
           let acc = Omn_core.Delay_cdf.create ~grid:Omn_stats.Grid.delay_default in
           Array.iteri
             (fun dest snap ->
               if dest <> 0 then Omn_core.Delay_cdf.add_pair acc ~t_start ~t_end snap)
             snapshots))
  in
  let discrete_flood =
    Test.make ~name:"randnet/flood-short-n400"
      (Staged.stage (fun () ->
           ignore
             (Omn_randnet.Discrete.flood rng { Omn_randnet.Discrete.n = 400; lambda = 0.5 }
                ~source:0 ~case:Omn_randnet.Theory.Short ~t_max:40)))
  in
  let journey_ablation =
    (* Ablation (DESIGN 5.1): semi-naive deltas vs full recomputation. *)
    let trace = trace_of 40 in
    Test.make_indexed ~name:"journey/strategy" ~fmt:"%s:%d(0=semi,1=full)" ~args:[ 0; 1 ]
      (fun mode ->
        let strategy =
          if mode = 0 then Omn_core.Journey.Semi_naive else Omn_core.Journey.Full_recompute
        in
        Staged.stage (fun () -> ignore (Omn_core.Journey.run ~strategy trace ~source:0)))
  in
  let curves_domains =
    (* Ablation: the parallel driver on a fixed mid-size workload. *)
    let trace = trace_of 40 in
    Test.make_indexed ~name:"delay-cdf/compute" ~fmt:"%s:%d-domains" ~args:[ 1; 2; 4 ]
      (fun domains ->
        Staged.stage (fun () ->
            ignore (Omn_core.Delay_cdf.compute ~max_hops:6 ~domains trace)))
  in
  [
    journey_one_source; dijkstra_sweep; frontier_insert; delay_cdf_accumulate; discrete_flood;
    journey_ablation; curves_domains;
  ]

let run_timing () =
  let open Bechamel in
  let open Toolkit in
  Format.fprintf fmt "@.Timing (Bechamel, monotonic clock; ns per run)@.@.";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.) () in
  let instances = [ Instance.monotonic_clock ] in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
      List.iter
        (fun (name, v) ->
          let estimate =
            match Analyze.OLS.estimates v with Some (e :: _) -> e | _ -> nan
          in
          let r2 = Option.value (Analyze.OLS.r_square v) ~default:nan in
          Format.fprintf fmt "  %-44s %14.0f ns/run  (r2 %.3f)@." name estimate r2)
        (List.sort compare rows))
    (timing_tests ());
  Format.fprintf fmt
    "@.journey/all-dest-all-times computes optimal paths for *all* start times and@.\
     destinations in one pass; dijkstra/per-start-time-sweep is the prior-art cost@.\
     of the same information.@."

(* --- Parallel regression bench: BENCH_delay_cdf.json --- *)

(* Wall-clock regression harness for the omn_parallel port of
   Delay_cdf.compute: times the 80-node workload at 1/2/4 domains,
   checks the curves are bit-identical across domain counts, measures
   the overhead of enabling the metrics registry, and emits a
   machine-readable report (with the span tree and key observability
   counters folded in) that CI archives. With [enforce] set, the
   2-domain run must be at least [min_speedup] times faster than the
   1-domain run or the process fails — except on hosts where the
   runtime recommends < 2 domains (a 1-core container cannot exhibit a
   speedup); the skip is stamped visibly into the JSON as
   ["gate"]["status"] = "skipped", never silently. [max_prune_ratio]
   optionally gates frontier churn: the instrumented rerun's
   points_pruned / points_kept must not regress above the recorded
   baseline. *)
let bench_parallel ~quick ~enforce ~min_speedup ~max_prune_ratio () =
  let rng = Omn_stats.Rng.create 11 in
  let n = 80 in
  (* Always the full half-day trace: a smaller workload is dominated by
     pool-spawn overhead and measures nothing. --quick only cuts repeats. *)
  let days = 0.5 in
  let params = Omn_mobility.Venue.conference_params ~rng ~n ~days in
  let trace = Omn_mobility.Venue.generate rng ~n ~name:"bench-parallel" params in
  (* The provenance manifest opens now and is [finish]ed only when the
     artifact is written, so started/finished bracket the measured runs
     (the old code created and finished it at JSON-build time, stamping
     a microseconds-wide window over a multi-second bench). *)
  let manifest =
    Omn_obs.Manifest.create ~version:"bench"
      ~trace_sha256:(Omn_obs.Sha256.string (Omn_temporal.Trace_io.to_string trace))
      ~trace_name:(Omn_temporal.Trace.name trace) ~n_nodes:n
      ~n_contacts:(Omn_temporal.Trace.n_contacts trace) ()
  in
  let max_hops = 6 in
  let repeats = if quick then 2 else 3 in
  let time_compute domains =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      let curves = Omn_core.Delay_cdf.compute ~max_hops ~domains trace in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some curves
    done;
    match !result with Some c -> (c, !best) | None -> assert false
  in
  (* Pure timing runs happen with the registry off, whatever the global
     --metrics flag says, so the speedup numbers stay comparable. *)
  let globally_enabled = Omn_obs.Metrics.enabled () in
  Omn_obs.Metrics.set_enabled false;
  let runs = List.map (fun d -> (d, time_compute d)) [ 1; 2; 4 ] in
  let base_curves, base_time = List.assoc 1 runs in
  let identical = List.for_all (fun (_, (c, _)) -> c = base_curves) runs in
  (* Observability overhead: the same workload with every counter,
     histogram and span live, against the matching-domain uninstrumented
     baseline. Instrumented at 2 domains when the host has them:
     [Pool.run] takes a sequential shortcut at 1 domain, so a 1-domain
     rerun never touches the pool counters and [pool.tasks_run] reads 0
     — the measured path must exercise the pool it claims to observe.
     Also checks bit-identity — instrumentation must never perturb
     results. *)
  let recommended = Omn_parallel.Pool.recommended () in
  let obs_domains = if recommended >= 2 then 2 else 1 in
  Omn_obs.Metrics.set_enabled true;
  let obs_curves, obs_time = time_compute obs_domains in
  let snap = Omn_obs.Metrics.snapshot () in
  Omn_obs.Metrics.set_enabled globally_enabled;
  let obs_identical = obs_curves = base_curves in
  let _, obs_base_time = List.assoc obs_domains runs in
  let obs_overhead = obs_time /. obs_base_time in
  let pool_tasks_run =
    Option.value ~default:0 (Omn_obs.Metrics.counter_total snap "pool.tasks_run")
  in
  (* Supervision overhead: the same 1-domain workload through the
     resumable driver with supervision off and on (default fault-free
     retry/quarantine policy). Supervision must be pure bookkeeping on
     the happy path — bit-identical curves, wall-clock within a few
     percent. The baseline is the unsupervised resumable driver, not
     [compute]: the two merge sources in different orders (natural vs
     uniform), so their float accumulations are not comparable bitwise. *)
  Omn_obs.Metrics.set_enabled false;
  let time_resumable ?supervise () =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      (match Omn_core.Delay_cdf.compute_resumable ~max_hops ?supervise trace with
      | Ok (curves, _) ->
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt;
        result := Some curves
      | Error e ->
        Format.fprintf fmt "FAIL: supervised bench run errored: %s@." (Omn_robust.Err.to_string e);
        exit 1)
    done;
    match !result with Some c -> (c, !best) | None -> assert false
  in
  let unsup_curves, unsup_time = time_resumable () in
  let sup_curves, sup_time = time_resumable ~supervise:Omn_resilience.Supervise.default () in
  Omn_obs.Metrics.set_enabled globally_enabled;
  let sup_identical = sup_curves = unsup_curves in
  let sup_overhead = sup_time /. unsup_time in
  (* Timeline overhead: the same 1-domain resumable workload with the
     event journal recording and a manifest stamped per traced repeat
     (metrics still off, isolating the ring-buffer + provenance cost).
     The resumable driver is the one that actually emits chunk events.
     Untraced and traced runs are interleaved and each side takes its
     own min, so clock drift between measurement windows cancels out of
     the ratio. Tracing must never perturb results — fatal if it
     does. *)
  Omn_obs.Metrics.set_enabled false;
  Omn_obs.Timeline.reset ();
  let tl_base = ref infinity and tl_time = ref infinity in
  let tl_curves = ref None in
  let timed_run () =
    let t0 = Unix.gettimeofday () in
    match Omn_core.Delay_cdf.compute_resumable ~max_hops trace with
    | Ok (curves, _) -> (curves, Unix.gettimeofday () -. t0)
    | Error e ->
      Format.fprintf fmt "FAIL: timeline bench run errored: %s@." (Omn_robust.Err.to_string e);
      exit 1
  in
  for _ = 1 to repeats do
    Omn_obs.Timeline.set_enabled false;
    let _, dt = timed_run () in
    if dt < !tl_base then tl_base := dt;
    Omn_obs.Timeline.set_enabled true;
    let curves, dt = timed_run () in
    ignore
      (Omn_obs.Json.to_string
         (Omn_obs.Manifest.to_json (Omn_obs.Manifest.create ~version:"bench" ())));
    if dt < !tl_time then tl_time := dt;
    tl_curves := Some curves
  done;
  Omn_obs.Timeline.set_enabled false;
  let tl_view = Omn_obs.Timeline.snapshot () in
  Omn_obs.Metrics.set_enabled globally_enabled;
  let tl_identical = !tl_curves = Some unsup_curves in
  let tl_overhead = !tl_time /. !tl_base in
  let tl_time = !tl_time in
  (* Sampling: the sampled estimator against the exact engine on the
     same workload. Sampling must buy wall-clock (it touches a fraction
     of the sources) without losing the truth — the bootstrap CI has to
     contain the exact (1-eps)-diameter or the bench fails. Metrics
     stay off so the timings match the other blocks. *)
  Omn_obs.Metrics.set_enabled false;
  let time_best f =
    let best = ref infinity and result = ref None in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let exact_res, exact_time = time_best (fun () -> Omn_core.Diameter.measure ~max_hops trace) in
  let sample = max 1 (n / 8) in
  let est, est_time =
    time_best (fun () ->
        match
          Omn_core.Diameter_est.estimate ~max_hops ~sample ~seed:1 ~ci_width:2. ~confidence:0.9
            ~bootstrap:200 trace
        with
        | Ok e -> e
        | Error e ->
          Format.fprintf fmt "FAIL: sampled bench run errored: %s@." (Omn_robust.Err.to_string e);
          exit 1)
  in
  Omn_obs.Metrics.set_enabled globally_enabled;
  (* [None] (no finite diameter) compares as one past the deepest hop
     bound, same sentinel the estimator's bootstrap uses. *)
  let sentinel = function Some k -> k | None -> max_hops + 1 in
  let exact_d = sentinel exact_res.Omn_core.Diameter.diameter in
  let est_covers =
    sentinel est.Omn_core.Diameter_est.ci_lo <= exact_d
    && exact_d <= sentinel est.Omn_core.Diameter_est.ci_hi
  in
  (* Shard: failover reassignment latency and digest-addressed trace
     shipping over an authenticated TCP loopback fleet. The kill run
     stamps the chaos Mark and the first Reassign into the timeline and
     reports the gap; the second run reuses the same trace store, so
     every worker must come up warm (zero bytes shipped, one cache hit
     per worker). Merge non-identity with the single-process driver is
     fatal, like the cross-domain identity gate. *)
  Omn_obs.Metrics.set_enabled false;
  let shard_workers = 2 in
  let shard_n = 32 in
  let shard_hops = 4 in
  let shard_trace =
    let srng = Omn_stats.Rng.create 23 in
    let params = Omn_mobility.Venue.conference_params ~rng:srng ~n:shard_n ~days:0.25 in
    Omn_mobility.Venue.generate srng ~n:shard_n ~name:"bench-shard" params
  in
  let shard_sources = Omn_core.Delay_cdf.uniform_order (List.init shard_n Fun.id) in
  let shard_ref =
    Omn_core.Delay_cdf.compute ~max_hops:shard_hops ~sources:shard_sources shard_trace
  in
  let store_dir = Filename.temp_file "omn_bench_store" ".d" in
  Sys.remove store_dir;
  let shard_cfg chaos =
    {
      (Omn_shard.Coord.default ~workers:shard_workers) with
      Omn_shard.Coord.heartbeat_interval = 0.05;
      heartbeat_timeout = 5.;
      respawn_backoff = 0.01;
      max_inflight = 2;
      listen = Some (Omn_shard.Transport.Tcp ("127.0.0.1", 0));
      auth_key = Some "bench-preshared-key";
      worker_trace_cache = Some store_dir;
      chaos;
    }
  in
  let run_shard label cfg =
    let t0 = Unix.gettimeofday () in
    match Omn_shard.Coord.run ~max_hops:shard_hops ~sources:shard_sources cfg shard_trace with
    | Error e ->
      Format.fprintf fmt "FAIL: shard bench (%s): %s@." label (Omn_robust.Err.to_string e);
      exit 1
    | Ok (curves, p, st) ->
      if p.Omn_core.Delay_cdf.partial || p.Omn_core.Delay_cdf.sources_done <> shard_n then begin
        Format.fprintf fmt "FAIL: shard bench (%s): incomplete merge@." label;
        exit 1
      end;
      if curves <> shard_ref then begin
        Format.fprintf fmt "FAIL: shard bench (%s): merge differs from the single-process run@."
          label;
        exit 1
      end;
      (st, Unix.gettimeofday () -. t0)
  in
  Omn_obs.Timeline.reset ();
  Omn_obs.Timeline.set_enabled true;
  let kill_st, kill_time =
    run_shard "cold store, worker-kill failover"
      (shard_cfg
         [
           {
             Omn_robust.Faultgen.after_results = 2;
             victim = 0;
             shard_fault = Omn_robust.Faultgen.Worker_kill;
           };
         ])
  in
  Omn_obs.Timeline.set_enabled false;
  let shard_tl = Omn_obs.Timeline.snapshot () in
  let best_of k label cfg =
    let st = ref None and best = ref infinity in
    for _ = 1 to k do
      let s, t = run_shard label cfg in
      if t < !best then best := t;
      st := Some s
    done;
    (Option.get !st, !best)
  in
  let warm_st, warm_time = best_of 3 "warm store, clean" (shard_cfg []) in
  (* Fleet telemetry: the same warm clean run with Stats_pull/Stats_push
     on. run_shard already makes merge non-identity fatal, so this
     measures what the telemetry plane costs when it changes nothing:
     overhead above the warn threshold is reported, not fatal (these
     runs are tens of milliseconds, so even best-of-3 carries noise). A
     worker that never reports is fatal — a silent telemetry loss would
     make every fleet report lie. *)
  let fleet_st, fleet_time =
    best_of 3 "warm store, telemetry on"
      { (shard_cfg []) with Omn_shard.Coord.telemetry = true; stats_interval = 0.1 }
  in
  Omn_obs.Metrics.set_enabled globally_enabled;
  let fleet_overhead = fleet_time /. warm_time in
  let fleet_warn_ratio = 1.03 in
  let fleet_events =
    List.fold_left
      (fun acc t -> acc + List.length t.Omn_shard.Coord.tw_events)
      0 fleet_st.Omn_shard.Coord.fleet
  in
  if List.length fleet_st.Omn_shard.Coord.fleet <> shard_workers then begin
    Format.fprintf fmt "FAIL: fleet telemetry: %d of %d workers reported@."
      (List.length fleet_st.Omn_shard.Coord.fleet)
      shard_workers;
    exit 1
  end;
  (* time from the chaos injection Mark to the first reassignment of the
     victim's unacknowledged work — the failover latency a real fleet
     would observe *)
  let reassign_latency =
    let events = shard_tl.Omn_obs.Timeline.events in
    match
      List.find_map
        (fun ((_, e) : int * Omn_obs.Timeline.entry) ->
          match e.ev with
          | Omn_obs.Timeline.Mark { name }
            when String.length name >= 6 && String.sub name 0 6 = "chaos:" ->
            Some e.ts
          | _ -> None)
        events
    with
    | None -> None
    | Some t0 ->
      List.find_map
        (fun ((_, e) : int * Omn_obs.Timeline.entry) ->
          match e.ev with
          | Omn_obs.Timeline.Reassign _ when e.ts >= t0 -> Some (e.ts -. t0)
          | _ -> None)
        events
  in
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat store_dir f) with Sys_error _ -> ())
       (Sys.readdir store_dir);
     Unix.rmdir store_dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  let frontiers, _ = Omn_core.Journey.run trace ~source:0 in
  let sizes = Array.map Omn_core.Frontier.size frontiers in
  let max_frontier = Array.fold_left max 0 sizes in
  let mean_frontier =
    float_of_int (Array.fold_left ( + ) 0 sizes) /. float_of_int (max 1 (Array.length sizes))
  in
  (* Gate verdicts are decided before the JSON is built so the artifact
     records them — a skipped gate on a 1-core host must be visible in
     the archived file, not only on a console nobody kept. *)
  let _, t2 = List.assoc 2 runs in
  let speedup2 = base_time /. t2 in
  let speedup_status, speedup_reason =
    if not enforce then ("off", "enforcement not requested (no --enforce-speedup)")
    else if recommended < 2 then
      ( "skipped",
        Printf.sprintf "host recommends %d domain(s); a >= 2-core host is required to measure a speedup"
          recommended )
    else if speedup2 >= min_speedup then
      ("passed", Printf.sprintf "measured %.2fx >= required %.2fx" speedup2 min_speedup)
    else ("failed", Printf.sprintf "measured %.2fx < required %.2fx" speedup2 min_speedup)
  in
  (* Frontier churn from the instrumented rerun: pruned/kept measures
     how much domination work the sweep does per surviving point. A
     regression above the recorded baseline means candidate emission got
     sloppier even if wall-clock hides it. *)
  let kept = Option.value ~default:0 (Omn_obs.Metrics.counter_total snap "frontier.points_kept") in
  let pruned =
    Option.value ~default:0 (Omn_obs.Metrics.counter_total snap "frontier.points_pruned")
  in
  let prune_ratio = if kept = 0 then 0. else float_of_int pruned /. float_of_int kept in
  let prune_status, prune_reason =
    match max_prune_ratio with
    | None -> ("off", "no --max-prune-ratio baseline given")
    | Some limit ->
      if prune_ratio <= limit then
        ("passed", Printf.sprintf "measured %.2f <= baseline %.2f" prune_ratio limit)
      else ("failed", Printf.sprintf "measured %.2f > baseline %.2f" prune_ratio limit)
  in
  let json =
    let open Omn_obs.Json in
    let snap_json = Omn_obs.Metrics.snapshot_to_json snap in
    let counter name = Int (Option.value ~default:0 (Omn_obs.Metrics.counter_total snap name)) in
    Obj
      [
        ("manifest", Omn_obs.Manifest.to_json (Omn_obs.Manifest.finish manifest));
        ("bench", String "delay_cdf.compute");
        ( "trace",
          Obj
            [
              ("nodes", Int n); ("contacts", Int (Omn_temporal.Trace.n_contacts trace));
              ("days", Float days);
            ] );
        ("max_hops", Int max_hops);
        ("repeats", Int repeats);
        ("quick", Bool quick);
        ("recommended_domains", Int recommended);
        ("bit_identical_across_domains", Bool identical);
        ("max_rounds_used", Int base_curves.Omn_core.Delay_cdf.max_rounds_used);
        ( "frontier",
          Obj
            [
              ("source", Int 0); ("max_size", Int max_frontier);
              ("mean_size", Float mean_frontier);
            ] );
        ( "obs",
          Obj
            [
              ("domains", Int obs_domains);
              ("overhead_ratio", Float obs_overhead);
              ("bit_identical_with_metrics", Bool obs_identical);
              ( "counters",
                Obj
                  (List.map
                     (fun name -> (name, counter name))
                     [
                       "frontier.points_kept"; "frontier.points_pruned"; "delay_cdf.pairs_done";
                       "delay_cdf.sources_done"; "pool.tasks_run"; "pool.tasks_stolen";
                     ]) );
              ( "pool_busy_seconds",
                Float (Option.value ~default:0. (Omn_obs.Metrics.gauge_total snap "pool.busy_seconds"))
              );
              ("spans", Option.value ~default:Null (member "spans" snap_json));
            ] );
        ( "resilience",
          Obj
            [
              ("overhead_ratio_1domain", Float sup_overhead);
              ("bit_identical_with_supervision", Bool sup_identical);
              ("seconds_unsupervised", Float unsup_time);
              ("seconds_supervised", Float sup_time);
            ] );
        ( "timeline",
          Obj
            [
              ("overhead_ratio_1domain", Float tl_overhead);
              ("bit_identical_with_timeline", Bool tl_identical);
              ("seconds_traced", Float tl_time);
              ("events_recorded", Int (List.length tl_view.Omn_obs.Timeline.events));
              ("dropped_events", Int (Omn_obs.Timeline.total_dropped tl_view));
            ] );
        ( "sampling",
          Obj
            [
              ("sample", Int sample);
              ("sampled", Int est.Omn_core.Diameter_est.sampled);
              ("total", Int est.Omn_core.Diameter_est.total);
              ("rounds", Int est.Omn_core.Diameter_est.rounds);
              ("seconds_exact", Float exact_time);
              ("seconds_sampled", Float est_time);
              ("speedup_vs_exact", Float (exact_time /. est_time));
              ( "exact_diameter",
                match exact_res.Omn_core.Diameter.diameter with Some k -> Int k | None -> Null );
              ( "ci_lo",
                match est.Omn_core.Diameter_est.ci_lo with Some k -> Int k | None -> Null );
              ( "ci_hi",
                match est.Omn_core.Diameter_est.ci_hi with Some k -> Int k | None -> Null );
              ("ci_width", Float est.Omn_core.Diameter_est.ci_width);
              ("covers_exact", Bool est_covers);
            ] );
        ( "shard",
          Obj
            [
              ("workers", Int shard_workers);
              ("sources", Int shard_n);
              ("transport", String "tcp-loopback+auth");
              ("seconds_kill_failover", Float kill_time);
              ("seconds_warm_clean", Float warm_time);
              ( "reassign_latency_seconds",
                match reassign_latency with Some s -> Float s | None -> Null );
              ("reassigned", Int kill_st.Omn_shard.Coord.reassigned);
              ("spawns_kill_run", Int kill_st.Omn_shard.Coord.spawns);
              ("trace_ship_bytes_cold", Int kill_st.Omn_shard.Coord.trace_ship_bytes);
              ("trace_ship_bytes_warm", Int warm_st.Omn_shard.Coord.trace_ship_bytes);
              ("trace_cache_hits_warm", Int warm_st.Omn_shard.Coord.trace_cache_hits);
            ] );
        ( "fleet_obs",
          Obj
            [
              ("workers_reporting", Int (List.length fleet_st.Omn_shard.Coord.fleet));
              ("seconds_telemetry_on", Float fleet_time);
              ("seconds_telemetry_off", Float warm_time);
              ("overhead_ratio", Float fleet_overhead);
              (* run_shard exits fatally on any merge divergence, so a
                 written artifact always carries [true] here *)
              ("bit_identical_with_telemetry", Bool true);
              ("timeline_events_pulled", Int fleet_events);
              ("overhead_warn_ratio", Float fleet_warn_ratio);
              ( "overhead_status",
                String (if fleet_overhead <= fleet_warn_ratio then "ok" else "warn") );
            ] );
        ( "runs",
          List
            (List.map
               (fun (d, (_, t)) ->
                 Obj
                   [
                     ("domains", Int d); ("seconds", Float t);
                     ("speedup_vs_1", Float (base_time /. t));
                   ])
               runs) );
        ( "gate",
          Obj
            [
              ("enforced", Bool enforce);
              ("min_speedup", Float min_speedup);
              ("measured_speedup_2domain", Float speedup2);
              ("status", String speedup_status);
              ("reason", String speedup_reason);
              ( "prune_ratio",
                Obj
                  [
                    ("points_kept", Int kept);
                    ("points_pruned", Int pruned);
                    ("measured", Float prune_ratio);
                    ( "max",
                      match max_prune_ratio with Some r -> Float r | None -> Null );
                    ("status", String prune_status);
                    ("reason", String prune_reason);
                  ] );
            ] );
      ]
  in
  let path = "BENCH_delay_cdf.json" in
  Omn_robust.Atomic_file.write_string path (Omn_obs.Json.to_string ~pretty:true json ^ "\n");
  Format.fprintf fmt "@.Parallel regression (delay-cdf, %d nodes, best of %d):@." n repeats;
  List.iter
    (fun (d, (_, t)) ->
      Format.fprintf fmt "  %d domain(s): %8.3fs  (%.2fx vs 1 domain)@." d t (base_time /. t))
    runs;
  Format.fprintf fmt "  curves bit-identical across domain counts: %b@." identical;
  Format.fprintf fmt
    "  metrics-on rerun (%d domain(s)): %.3fs (overhead x%.3f), bit-identical: %b, \
     pool.tasks_run: %d@."
    obs_domains obs_time obs_overhead obs_identical pool_tasks_run;
  Format.fprintf fmt "  supervised rerun: %.3fs (overhead x%.3f), bit-identical: %b@." sup_time
    sup_overhead sup_identical;
  Format.fprintf fmt
    "  timeline-on rerun: %.3fs (overhead x%.3f), bit-identical: %b, %d events (%d dropped)@."
    tl_time tl_overhead tl_identical
    (List.length tl_view.Omn_obs.Timeline.events)
    (Omn_obs.Timeline.total_dropped tl_view);
  let opt_str = function Some k -> string_of_int k | None -> "none" in
  Format.fprintf fmt
    "  sampling: exact %.3fs vs sampled %.3fs (%d of %d sources, %d round(s), x%.2f); CI [%s, \
     %s] width %.2f vs exact %s@."
    exact_time est_time est.Omn_core.Diameter_est.sampled est.Omn_core.Diameter_est.total
    est.Omn_core.Diameter_est.rounds (exact_time /. est_time)
    (opt_str est.Omn_core.Diameter_est.ci_lo)
    (opt_str est.Omn_core.Diameter_est.ci_hi)
    est.Omn_core.Diameter_est.ci_width
    (opt_str exact_res.Omn_core.Diameter.diameter);
  Format.fprintf fmt
    "  shard (TCP loopback, auth, %d workers): kill-failover %.3fs (reassign latency %s, %d \
     reassigned), warm clean %.3fs; trace bytes cold %d / warm %d (%d cache hits)@."
    shard_workers kill_time
    (match reassign_latency with Some s -> Printf.sprintf "%.3fs" s | None -> "n/a")
    kill_st.Omn_shard.Coord.reassigned warm_time kill_st.Omn_shard.Coord.trace_ship_bytes
    warm_st.Omn_shard.Coord.trace_ship_bytes warm_st.Omn_shard.Coord.trace_cache_hits;
  Format.fprintf fmt
    "  fleet telemetry: %.3fs on vs %.3fs off (overhead x%.3f), %d workers reporting, %d \
     timeline events pulled, bit-identical: true@."
    fleet_time warm_time fleet_overhead
    (List.length fleet_st.Omn_shard.Coord.fleet)
    fleet_events;
  if fleet_overhead > fleet_warn_ratio then
    Format.fprintf fmt
      "WARN: fleet telemetry overhead x%.3f exceeds the x%.2f warn threshold@." fleet_overhead
      fleet_warn_ratio;
  Format.fprintf fmt "  wrote %s@." path;
  if kill_st.Omn_shard.Coord.reassigned = 0 then begin
    Format.fprintf fmt "FAIL: the killed worker's work was never reassigned@.";
    exit 1
  end;
  if kill_st.Omn_shard.Coord.trace_ship_bytes = 0 then begin
    Format.fprintf fmt "FAIL: the cold-store run shipped no trace bytes@.";
    exit 1
  end;
  if warm_st.Omn_shard.Coord.trace_ship_bytes <> 0 then begin
    Format.fprintf fmt "FAIL: warm workers re-shipped %d trace bytes (digest cache miss)@."
      warm_st.Omn_shard.Coord.trace_ship_bytes;
    exit 1
  end;
  if warm_st.Omn_shard.Coord.trace_cache_hits < shard_workers then begin
    Format.fprintf fmt "FAIL: only %d of %d warm workers hit the digest cache@."
      warm_st.Omn_shard.Coord.trace_cache_hits shard_workers;
    exit 1
  end;
  if not est_covers then begin
    Format.fprintf fmt "FAIL: sampled CI does not cover the exact (1-eps)-diameter@.";
    exit 1
  end;
  if not identical then begin
    Format.fprintf fmt "FAIL: parallel curves differ from the sequential curves@.";
    exit 1
  end;
  if not obs_identical then begin
    Format.fprintf fmt "FAIL: enabling metrics changed the computed curves@.";
    exit 1
  end;
  if obs_domains > 1 && pool_tasks_run = 0 then begin
    (* The instrumented rerun ran on a real pool; zero means the
       measured path bypassed it and the bench is lying about what it
       observes. *)
    Format.fprintf fmt "FAIL: pool.tasks_run is 0 on a %d-domain instrumented run@." obs_domains;
    exit 1
  end;
  if not sup_identical then begin
    Format.fprintf fmt "FAIL: fault-free supervision changed the computed curves@.";
    exit 1
  end;
  if not tl_identical then begin
    Format.fprintf fmt "FAIL: enabling the timeline changed the computed curves@.";
    exit 1
  end;
  if tl_overhead > 1.02 then
    (* Advisory, like the other overhead targets: evidence in the JSON. *)
    Format.fprintf fmt "WARN: timeline overhead x%.3f exceeds the 1.02 target@." tl_overhead
  else Format.fprintf fmt "  timeline overhead within 2%% target@.";
  if sup_overhead > 1.03 then
    (* Advisory, like the metrics-overhead target: the evidence stays in
       the JSON either way. *)
    Format.fprintf fmt "WARN: supervision overhead x%.3f exceeds the 1.03 target@." sup_overhead
  else Format.fprintf fmt "  supervision overhead within 3%% target@.";
  if obs_overhead > 1.05 then
    (* Advisory rather than fatal: best-of-N tames most noise, but a
       loaded CI host can still blow a 5% margin without a real
       regression. The snapshot in the JSON keeps the evidence. *)
    Format.fprintf fmt "WARN: metrics overhead x%.3f exceeds the 1.05 target@." obs_overhead
  else Format.fprintf fmt "  metrics overhead within 5%% target@.";
  (* The measured ratio prints on every path — pass, fail and skip — so
     a green CI log still shows the number the gate judged. *)
  Format.fprintf fmt "  prune ratio (pruned/kept): %.2f (%d pruned / %d kept) [%s: %s]@."
    prune_ratio pruned kept prune_status prune_reason;
  Format.fprintf fmt "  speedup gate [%s]: 2-domain speedup %.2fx vs required %.2fx — %s@."
    speedup_status speedup2 min_speedup speedup_reason;
  let failed = ref false in
  if speedup_status = "failed" then begin
    Format.fprintf fmt "FAIL: 2-domain speedup %.2fx below the required %.2fx@." speedup2
      min_speedup;
    failed := true
  end;
  if prune_status = "failed" then begin
    Format.fprintf fmt "FAIL: prune ratio %.2f exceeds the recorded baseline %.2f@." prune_ratio
      (Option.get max_prune_ratio);
    failed := true
  end;
  if !failed then exit 1

let usage () =
  Format.fprintf fmt
    "usage: main.exe [--list] [--quick] [--timing] [--enforce-speedup] [--min-speedup R] \
     [--max-prune-ratio R] [--only NAME[,NAME...]] [--metrics FILE] [--progress]@.";
  exit 2

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let timing = List.mem "--timing" args in
  let enforce_speedup = List.mem "--enforce-speedup" args in
  let progress = List.mem "--progress" args in
  let metrics =
    let rec find = function
      | "--metrics" :: v :: _ -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let float_flag name =
    let rec find = function
      | flag :: v :: _ when flag = name -> (
        match float_of_string_opt v with
        | Some r when r > 0. -> Some r
        | _ ->
          Format.fprintf fmt "%s needs a positive number, got %S@." name v;
          exit 2)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let min_speedup = Option.value ~default:1.7 (float_flag "--min-speedup") in
  let max_prune_ratio = float_flag "--max-prune-ratio" in
  (* Strip "--metrics FILE" (and the other value-taking flags) before
     the flag sweeps below: the values are not flags. *)
  let flag_args =
    let rec strip = function
      | "--metrics" :: _ :: rest
      | "--min-speedup" :: _ :: rest
      | "--max-prune-ratio" :: _ :: rest ->
        strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  let timing_only =
    timing
    && List.for_all
         (fun a -> a = "--timing" || a = "--quick" || a = "--enforce-speedup" || a = "--progress")
         flag_args
  in
  let listing = List.mem "--list" args in
  let only =
    let rec find = function
      | "--only" :: v :: _ -> Some (String.split_on_char ',' v)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let known_flag a =
    List.mem a
      [
        "--quick"; "--timing"; "--list"; "--only"; "--enforce-speedup"; "--progress";
        "--min-speedup"; "--max-prune-ratio";
      ]
  in
  List.iter
    (fun a ->
      if String.length a >= 2 && String.sub a 0 2 = "--" && not (known_flag a) then usage ())
    flag_args;
  if metrics <> None then Omn_obs.Metrics.set_enabled true;
  if listing then begin
    Format.fprintf fmt "experiments:@.";
    List.iter
      (fun (e : Omn_experiments.Registry.experiment) ->
        Format.fprintf fmt "  %-8s %s@." e.name e.description)
      Omn_experiments.Registry.all;
    exit 0
  end;
  let selected =
    if timing_only then []
    else begin
      match only with
      | None -> Omn_experiments.Registry.all
      | Some names ->
        List.map
          (fun name ->
            match Omn_experiments.Registry.find name with
            | Some e -> e
            | None ->
              Format.fprintf fmt "unknown experiment %S (try --list)@." name;
              exit 2)
          names
    end
  in
  Format.fprintf fmt
    "The Diameter of Opportunistic Mobile Networks (CoNEXT 2007) — reproduction%s@."
    (if quick then " [quick]" else "");
  let t0 = Unix.gettimeofday () in
  let bar =
    if progress && selected <> [] then
      Some (Omn_obs.Progress.create ~total:(List.length selected) ~label:"experiments" ())
    else None
  in
  List.iter
    (fun (e : Omn_experiments.Registry.experiment) ->
      let t = Unix.gettimeofday () in
      e.run ~quick fmt;
      Format.fprintf fmt "@[[%s: %.1fs]@]@." e.name (Unix.gettimeofday () -. t);
      Option.iter (fun b -> Omn_obs.Progress.step b) bar)
    selected;
  Option.iter Omn_obs.Progress.finish bar;
  if timing then begin
    bench_parallel ~quick ~enforce:enforce_speedup ~min_speedup ~max_prune_ratio ();
    run_timing ()
  end;
  (match metrics with
  | Some path ->
    Omn_obs.Sink.emit (Omn_obs.Sink.file path);
    Format.fprintf fmt "wrote %s@." path
  | None -> ());
  Format.fprintf fmt "@.total: %.1fs@." (Unix.gettimeofday () -. t0)
