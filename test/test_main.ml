let () =
  Alcotest.run "omnet-diameter"
    [
      ("stats", Test_stats.suite);
      ("parallel", Test_parallel.suite);
      ("temporal", Test_temporal.suite);
      ("transform", Test_transform.suite);
      ("frontier", Test_frontier.suite);
      ("delivery", Test_delivery.suite);
      ("journey", Test_journey.suite);
      ("delay-cdf", Test_delay_cdf.suite);
      ("diameter", Test_diameter.suite);
      ("baseline", Test_baseline.suite);
      ("forwarding", Test_forwarding.suite);
      ("randnet", Test_randnet.suite);
      ("mobility", Test_mobility.suite);
      ("robust", Test_robust.suite);
      ("chaos", Test_chaos.suite);
      ("misc", Test_misc.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("timeline", Test_timeline.suite);
      ("differential", Test_differential.suite);
    ]
