let () =
  (* Worker-mode escape hatch for the shard suite: the coordinator's
     [Spawn_exec] re-executes [Sys.executable_name worker --id I --sock P],
     and under the test runner that is this binary. Intercept the worker
     argv before Alcotest sees it. ([Spawn_fork] is unusable from the
     full suite: earlier suites create domains, and OCaml 5 forbids
     [Unix.fork] in a process with more than one domain.) *)
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "worker" then begin
    let arg flag =
      (* both [--flag VALUE] and the glued [--flag=VALUE] form *)
      let glued = flag ^ "=" in
      let rec find i =
        if i >= Array.length Sys.argv then None
        else if Sys.argv.(i) = flag && i + 1 < Array.length Sys.argv then
          Some Sys.argv.(i + 1)
        else if String.starts_with ~prefix:glued Sys.argv.(i) then
          Some (String.sub Sys.argv.(i) (String.length glued)
                  (String.length Sys.argv.(i) - String.length glued))
        else find (i + 1)
      in
      find 2
    in
    let mode =
      match (arg "--connect", arg "--sock") with
      | Some a, _ -> (
        match Omn_shard.Transport.parse a with
        | Ok addr -> Omn_shard.Worker.Dial addr
        | Error _ -> exit 2)
      | None, Some p -> Omn_shard.Worker.Dial (Omn_shard.Transport.Unix_path p)
      | None, None -> exit 2
    in
    let worker =
      match arg "--id" with Some id -> int_of_string id | None -> -1
    in
    let auth_key =
      match arg "--auth-key" with
      | Some _ as k -> k
      | None -> Sys.getenv_opt "OMN_SHARD_KEY"
    in
    match
      Omn_shard.Worker.main ~worker ~mode ?auth_key ?trace_cache:(arg "--trace-cache") ()
    with
    | Ok () -> exit 0
    | Error e ->
      prerr_endline (Omn_robust.Err.to_string e);
      exit (Omn_robust.Err.exit_code e.code)
  end

let () =
  Alcotest.run "omnet-diameter"
    [
      ("stats", Test_stats.suite);
      ("parallel", Test_parallel.suite);
      ("temporal", Test_temporal.suite);
      ("transform", Test_transform.suite);
      ("frontier", Test_frontier.suite);
      ("delivery", Test_delivery.suite);
      ("journey", Test_journey.suite);
      ("delay-cdf", Test_delay_cdf.suite);
      ("diameter", Test_diameter.suite);
      ("baseline", Test_baseline.suite);
      ("forwarding", Test_forwarding.suite);
      ("randnet", Test_randnet.suite);
      ("mobility", Test_mobility.suite);
      ("robust", Test_robust.suite);
      ("chaos", Test_chaos.suite);
      ("shard", Test_shard.suite);
      ("misc", Test_misc.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("timeline", Test_timeline.suite);
      ("differential", Test_differential.suite);
      ("stream", Test_stream.suite);
      ("sampling", Test_sampling.suite);
    ]
