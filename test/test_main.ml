let () =
  (* Worker-mode escape hatch for the shard suite: the coordinator's
     [Spawn_exec] re-executes [Sys.executable_name worker --id I --sock P],
     and under the test runner that is this binary. Intercept the worker
     argv before Alcotest sees it. ([Spawn_fork] is unusable from the
     full suite: earlier suites create domains, and OCaml 5 forbids
     [Unix.fork] in a process with more than one domain.) *)
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "worker" then begin
    let arg flag =
      let rec find i =
        if i >= Array.length Sys.argv - 1 then None
        else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
        else find (i + 1)
      in
      find 2
    in
    match (arg "--id", arg "--sock") with
    | Some id, Some sock ->
      Omn_shard.Worker.main ~worker:(int_of_string id) ~sock ();
      exit 0
    | _ -> exit 2
  end

let () =
  Alcotest.run "omnet-diameter"
    [
      ("stats", Test_stats.suite);
      ("parallel", Test_parallel.suite);
      ("temporal", Test_temporal.suite);
      ("transform", Test_transform.suite);
      ("frontier", Test_frontier.suite);
      ("delivery", Test_delivery.suite);
      ("journey", Test_journey.suite);
      ("delay-cdf", Test_delay_cdf.suite);
      ("diameter", Test_diameter.suite);
      ("baseline", Test_baseline.suite);
      ("forwarding", Test_forwarding.suite);
      ("randnet", Test_randnet.suite);
      ("mobility", Test_mobility.suite);
      ("robust", Test_robust.suite);
      ("chaos", Test_chaos.suite);
      ("shard", Test_shard.suite);
      ("misc", Test_misc.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("timeline", Test_timeline.suite);
      ("differential", Test_differential.suite);
      ("stream", Test_stream.suite);
      ("sampling", Test_sampling.suite);
    ]
