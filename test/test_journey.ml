open Omn_core
module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace

let frontier_list f = Array.to_list (Frontier.to_array f)

(* --- Gold test 1: hop-bounded frontiers match exhaustive enumeration. --- *)

let check_against_enumeration trace ~max_hops =
  let n = Trace.n_nodes trace in
  for source = 0 to n - 1 do
    for hops = 1 to max_hops do
      let fast = Journey.frontiers_at_hops trace ~source ~max_hops:hops in
      let slow = Omn_baseline.Enumerate.frontiers trace ~source ~max_hops:hops in
      for dest = 0 to n - 1 do
        if not (Frontier.equal fast.(dest) slow.(dest)) then
          Alcotest.failf "source %d dest %d hops %d:@ fast %s@ slow %s" source dest hops
            (Format.asprintf "%a" Frontier.pp fast.(dest))
            (Format.asprintf "%a" Frontier.pp slow.(dest))
      done
    done
  done

let enumeration_gold () =
  let rng = Rng.create 42 in
  for _ = 1 to 150 do
    let n = 2 + Rng.int rng 4 in
    let m = 1 + Rng.int rng 7 in
    let trace = Util.random_trace rng ~n ~m ~horizon:12 in
    check_against_enumeration trace ~max_hops:4
  done

(* --- Gold test 2: fixpoint delivery matches the flooding oracle. --- *)

let flooding_gold () =
  let rng = Rng.create 7 in
  for _ = 1 to 25 do
    let n = 3 + Rng.int rng 6 in
    let m = 5 + Rng.int rng 25 in
    let trace = Util.random_trace rng ~n ~m ~horizon:50 in
    for source = 0 to n - 1 do
      let frontiers, _ = Journey.run trace ~source in
      let oracle = Omn_baseline.Flooding.compute trace ~source in
      for dest = 0 to n - 1 do
        if dest <> source then begin
          let delivery = Delivery.of_descriptors (Frontier.to_array frontiers.(dest)) in
          for _ = 1 to 40 do
            let t = Rng.float_range rng (-5.) 55. in
            Util.check_float
              (Printf.sprintf "del s=%d d=%d t=%g" source dest t)
              (Omn_baseline.Flooding.del oracle ~dest t)
              (Delivery.del delivery t)
          done;
          (* Exact boundary creation times too. *)
          Array.iter
            (fun (b, expected) ->
              Util.check_float
                (Printf.sprintf "boundary del s=%d d=%d t=%g" source dest b)
                expected (Delivery.del delivery b))
            (Omn_baseline.Flooding.samples oracle ~dest)
        end
      done
    done
  done

(* --- Gold test 3: hop-bounded delivery matches Bellman-Ford rounds. --- *)

let bounded_dijkstra_gold () =
  let rng = Rng.create 99 in
  for _ = 1 to 30 do
    let n = 3 + Rng.int rng 5 in
    let m = 4 + Rng.int rng 20 in
    let trace = Util.random_trace rng ~n ~m ~horizon:40 in
    let max_hops = 4 in
    for source = 0 to n - 1 do
      for _ = 1 to 10 do
        let t0 = Rng.float_range rng 0. 40. in
        let rows =
          Omn_baseline.Dijkstra.earliest_arrival_bounded trace ~source ~t0 ~max_hops
        in
        for hops = 1 to max_hops do
          let frontiers = Journey.frontiers_at_hops trace ~source ~max_hops:hops in
          for dest = 0 to n - 1 do
            if dest <> source then
              Util.check_float
                (Printf.sprintf "bounded s=%d d=%d k=%d t0=%g" source dest hops t0)
                rows.(hops).(dest)
                (Frontier.delivery frontiers.(dest) t0)
          done
        done
      done
    done
  done

(* --- Hand-crafted topologies. --- *)

(* A space-time line: contact (i, i+1) at time slot i. The only path from
   0 to k uses k contacts in chronological order (store-carry-forward). *)
let line_trace n =
  Util.trace_of_contacts
    (List.init (n - 1) (fun i -> (i, i + 1, float_of_int i, float_of_int i +. 0.5)))

let line_topology () =
  let n = 6 in
  let trace = line_trace n in
  let frontiers, rounds = Journey.run trace ~source:0 in
  Alcotest.(check int) "fixpoint rounds" (n - 1) rounds;
  (* Node k is reached at time k-1 (start of its last contact), provided
     departure by time 0.5 (end of the first contact). *)
  for dest = 1 to n - 1 do
    let f = frontier_list frontiers.(dest) in
    Alcotest.(check int) (Printf.sprintf "one optimal path to %d" dest) 1 (List.length f);
    let p = List.hd f in
    Util.check_float "ld" 0.5 p.Ld_ea.ld;
    Util.check_float "ea" (float_of_int (dest - 1)) p.Ld_ea.ea
  done;
  (* Hop bound below the needed length: unreachable. *)
  let bounded = Journey.frontiers_at_hops trace ~source:0 ~max_hops:(n - 2) in
  Alcotest.(check bool) "last node unreachable" true (Frontier.is_empty bounded.(n - 1))

(* Long-contact chaining: overlapping contacts allow a multi-hop path
   within one "instant". *)
let simultaneous_contacts () =
  let trace =
    Util.trace_of_contacts [ (0, 1, 10., 20.); (1, 2, 10., 20.); (2, 3, 10., 20.) ]
  in
  let frontiers, _ = Journey.run trace ~source:0 in
  let f = frontier_list frontiers.(3) in
  Alcotest.(check int) "single descriptor" 1 (List.length f);
  let p = List.hd f in
  (* Depart any time before 20, arrive max(t, 10): contemporaneous window. *)
  Util.check_float "ld" 20. p.Ld_ea.ld;
  Util.check_float "ea" 10. p.Ld_ea.ea;
  Util.check_float "delivery mid-window" 15. (Frontier.delivery frontiers.(3) 15.)

(* Waiting at a relay: 0-1 contact ends before 1-2 contact begins. *)
let store_and_forward () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.); (1, 2, 5., 6.) ] in
  let frontiers, _ = Journey.run trace ~source:0 in
  let f = frontier_list frontiers.(2) in
  Alcotest.(check int) "single descriptor" 1 (List.length f);
  let p = List.hd f in
  Util.check_float "ld" 1. p.Ld_ea.ld;
  Util.check_float "ea" 5. p.Ld_ea.ea;
  (* Created at 0.5: leaves during first contact, waits at 1, arrives 5. *)
  Util.check_float "delivery" 5. (Frontier.delivery frontiers.(2) 0.5);
  Util.check_float "too late" infinity (Frontier.delivery frontiers.(2) 1.5)

(* The reverse order gives no path (chronology violated). *)
let chronology_respected () =
  let trace = Util.trace_of_contacts [ (0, 1, 5., 6.); (1, 2, 0., 1.) ] in
  let frontiers, _ = Journey.run trace ~source:0 in
  Alcotest.(check bool) "no path 0->2" true (Frontier.is_empty frontiers.(2));
  (* But 2 -> 0 works. *)
  let frontiers, _ = Journey.run trace ~source:2 in
  Alcotest.(check bool) "path 2->0 exists" false (Frontier.is_empty frontiers.(0))

(* Multiple optimal paths: Fig. 5-style delivery function with several
   discontinuities. *)
let several_descriptors () =
  let trace =
    Util.trace_of_contacts
      [ (0, 1, 0., 1.); (1, 2, 2., 3.); (0, 2, 8., 9.); (0, 3, 4., 5.); (3, 2, 6., 7.) ]
  in
  let delivery = Journey.delivery_to trace ~source:0 ~dest:2 () in
  (* Three distinct ways: via 1 (leave by 1, arrive 2), via 3 (leave by 5,
     arrive 6), direct (leave by 9, arrive 8). *)
  Alcotest.(check int) "three optimal paths" 3 (Delivery.n_optimal_paths delivery);
  Util.check_float "early" 2. (Delivery.del delivery 0.5);
  Util.check_float "mid" 6. (Delivery.del delivery 1.5);
  Util.check_float "late direct" 8. (Delivery.del delivery 6.);
  Util.check_float "inside direct" 8.5 (Delivery.del delivery 8.5);
  Util.check_float "gone" infinity (Delivery.del delivery 9.5)

let identity_on_source () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.) ] in
  let frontiers, _ = Journey.run trace ~source:0 in
  Util.check_float "self delivery" 42. (Frontier.delivery frontiers.(0) 42.)

let empty_trace () =
  let trace = Omn_temporal.Trace.create ~n_nodes:3 ~t_start:0. ~t_end:10. [] in
  let frontiers, rounds = Journey.run trace ~source:1 in
  Alcotest.(check int) "rounds" 0 rounds;
  Alcotest.(check bool) "no reach" true (Frontier.is_empty frontiers.(0))

(* The ablation strategy must give identical frontiers. *)
let strategies_agree () =
  let rng = Rng.create 1234 in
  for _ = 1 to 30 do
    let n = 3 + Rng.int rng 5 in
    let m = 3 + Rng.int rng 20 in
    let trace = Util.random_trace rng ~n ~m ~horizon:30 in
    for source = 0 to n - 1 do
      let fast, r1 = Journey.run ~strategy:Journey.Semi_naive trace ~source in
      let slow, r2 = Journey.run ~strategy:Journey.Full_recompute trace ~source in
      Alcotest.(check int) "same rounds" r1 r2;
      Array.iteri
        (fun dest f ->
          if not (Frontier.equal f slow.(dest)) then
            Alcotest.failf "strategy mismatch source %d dest %d" source dest)
        fast
    done
  done

let suite =
  [
    Alcotest.test_case "semi-naive = full recompute (30 random traces)" `Slow strategies_agree;
    Alcotest.test_case "matches exhaustive enumeration (150 random traces)" `Slow
      enumeration_gold;
    Alcotest.test_case "matches flooding oracle (25 random traces)" `Slow flooding_gold;
    Alcotest.test_case "hop bounds match Bellman-Ford (30 random traces)" `Slow
      bounded_dijkstra_gold;
    Alcotest.test_case "space-time line" `Quick line_topology;
    Alcotest.test_case "simultaneous contacts chain in one window" `Quick simultaneous_contacts;
    Alcotest.test_case "store-and-forward wait at relay" `Quick store_and_forward;
    Alcotest.test_case "chronology respected" `Quick chronology_respected;
    Alcotest.test_case "several optimal paths (Fig. 5 shape)" `Quick several_descriptors;
    Alcotest.test_case "identity on source" `Quick identity_on_source;
    Alcotest.test_case "empty trace" `Quick empty_trace;
  ]
