open Omn_mobility
module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

(* --- Duration --- *)

let duration_positive =
  QCheck2.Test.make ~count:500 ~name:"durations strictly positive" QCheck2.Gen.int
    (fun seed ->
      let rng = Rng.create seed in
      List.for_all
        (fun model -> Duration.sample rng model > 0.)
        [
          Duration.exponential ~mean:30.; Duration.log_normal ~median:100. ~sigma:1.;
          Duration.pareto ~alpha:1.5 ~x_min:10.; Duration.constant 5.; Duration.conference;
          Duration.campus;
        ])

let duration_constant () =
  let rng = Rng.create 1 in
  Util.check_float "constant" 42. (Duration.sample rng (Duration.constant 42.))

let duration_validation () =
  let expect_invalid name f =
    match f () with exception Invalid_argument _ -> () | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "exp mean 0" (fun () -> Duration.exponential ~mean:0.);
  expect_invalid "empty mixture" (fun () -> Duration.mixture []);
  expect_invalid "negative weight" (fun () ->
      Duration.mixture [ (-1., Duration.constant 1.) ])

let duration_exponential_mean () =
  let rng = Rng.create 2 in
  let model = Duration.exponential ~mean:80. in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Duration.sample rng model
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~ 80" true (Float.abs (mean -. 80.) < 3.)

(* --- Diurnal --- *)

let diurnal_day_night () =
  let profile = Diurnal.day_night ~night_level:0.1 () in
  Util.check_float "noon" 1. (profile (12. *. 3600.));
  Util.check_float "3am" 0.1 (profile (3. *. 3600.));
  Util.check_float "next day" 1. (profile (86400. +. (12. *. 3600.)))

let diurnal_weekly () =
  let profile = Diurnal.weekly ~weekend_level:0.5 (Diurnal.constant 1.) in
  Util.check_float "monday" 1. (profile 0.);
  Util.check_float "saturday" 0.5 (profile (5.5 *. 86400.));
  Util.check_float "next monday" 1. (profile (7.2 *. 86400.))

let diurnal_max () =
  let profile = Diurnal.conference_sessions () in
  let m = Diurnal.max_over_day profile in
  Alcotest.(check bool) "max in (0, 1]" true (0.9 <= m && m <= 1.)

let diurnal_validation () =
  match Diurnal.constant 1.5 with
  | exception Invalid_argument _ -> ()
  | (_ : Diurnal.t) -> Alcotest.fail "level > 1 accepted"

(* --- Community --- *)

let community_planted () =
  let rng = Rng.create 3 in
  let c = Community.planted ~rng ~n:12 ~n_communities:3 ~within_rate:2. ~across_rate:0.1 in
  Alcotest.(check int) "n" 12 (Community.n c);
  Util.check_float "diagonal" 0. (Community.pair_rate c 4 4);
  for i = 0 to 11 do
    for j = 0 to 11 do
      if i <> j then begin
        let rate = Community.pair_rate c i j in
        Util.check_float "symmetric" rate (Community.pair_rate c j i);
        let same = Community.community_of c i = Community.community_of c j in
        Util.check_float "block rate" (if same then 2. else 0.1) rate
      end
    done
  done

let community_heterogeneous () =
  let rng = Rng.create 4 in
  let base = Community.uniform ~n:10 ~rate:1. in
  let het = Community.heterogeneous ~rng ~base ~sociability_sigma:0.5 in
  let max_rate = Community.max_rate het in
  for i = 0 to 9 do
    for j = 0 to 9 do
      if i <> j then
        Alcotest.(check bool) "within max" true (Community.pair_rate het i j <= max_rate +. 1e-9)
    done
  done

(* --- Gen --- *)

let gen_structure =
  QCheck2.Test.make ~count:60 ~name:"generated contacts live in the window" QCheck2.Gen.int
    (fun seed ->
      let rng = Rng.create seed in
      let spec =
        {
          Gen.name = "test";
          community = Community.uniform ~n:8 ~rate:(4. /. 86400.);
          modulation = Diurnal.day_night ~night_level:0.2 ();
          duration = Duration.exponential ~mean:120.;
          t_start = 0.;
          t_end = 86400.;
        }
      in
      let trace = Gen.generate rng spec in
      Trace.n_nodes trace = 8
      && Trace.fold
           (fun acc (c : Contact.t) -> acc && c.t_beg >= 0. && c.t_end <= 86400.)
           true trace)

let gen_volume_matches_expectation () =
  let rng = Rng.create 5 in
  let spec =
    {
      Gen.name = "test";
      community = Community.uniform ~n:10 ~rate:(6. /. 86400.);
      modulation = Diurnal.day_night ~night_level:0.3 ();
      duration = Duration.constant 60.;
      t_start = 0.;
      t_end = 3. *. 86400.;
    }
  in
  let expected = Gen.expected_contacts spec in
  let runs = 20 in
  let total = ref 0 in
  for _ = 1 to runs do
    total := !total + Trace.n_contacts (Gen.generate (Rng.split rng) spec)
  done;
  let mean = float_of_int !total /. float_of_int runs in
  let sigma = sqrt (expected /. float_of_int runs) in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f vs expected %.1f" mean expected)
    true
    (Float.abs (mean -. expected) < (6. *. sigma) +. 2.)

(* --- Venue --- *)

let venue_params n = Venue.conference_params ~rng:(Rng.create 1) ~n ~days:1.

let venue_structure =
  QCheck2.Test.make ~count:15 ~name:"venue traces structurally valid" QCheck2.Gen.int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 12 in
      let { Venue.near; far } = Venue.generate_classified rng ~n ~name:"t" (venue_params n) in
      let valid trace =
        Trace.n_nodes trace = n
        && Trace.fold
             (fun acc (c : Contact.t) ->
               acc && c.t_beg >= 0. && c.t_end <= 86400. && Contact.duration c >= 5.)
             true trace
      in
      valid near && valid far)

let venue_deterministic () =
  let gen () = Venue.generate (Rng.create 9) ~n:10 ~name:"t" (venue_params 10) in
  let t1 = gen () and t2 = gen () in
  Alcotest.(check int) "same size" (Trace.n_contacts t1) (Trace.n_contacts t2);
  Alcotest.(check bool) "same contacts" true
    (Array.for_all2 Contact.equal (Trace.contacts t1) (Trace.contacts t2))

let venue_nights_isolate () =
  (* During 0-7:30 everyone is at the hotel; only roommates (same room)
     can be in contact, so contacts overlapping 3am involve room pairs
     (node/2 equal). *)
  let n = 10 in
  let trace = Venue.generate (Rng.create 11) ~n ~name:"t" (venue_params n) in
  Trace.iter
    (fun (c : Contact.t) ->
      let night = c.t_beg < 6. *. 3600. in
      if night && Contact.duration c > 3600. then
        Alcotest.(check int) "roommates" (c.a / 2) (c.b / 2))
    trace

let venue_campus_groups () =
  let rng = Rng.create 12 in
  let params = Venue.campus_params ~rng ~n:20 ~n_groups:4 ~weeks:1 in
  let trace = Venue.generate rng ~n:20 ~name:"campus" params in
  Alcotest.(check bool) "has contacts" true (Trace.n_contacts trace > 0);
  Alcotest.(check int) "nodes" 20 (Trace.n_nodes trace)

(* --- Scanner --- *)

let scanner_grid_alignment =
  QCheck2.Test.make ~count:100 ~name:"detected contacts are slot-aligned" QCheck2.Gen.int
    (fun seed ->
      let rng = Rng.create seed in
      let ground = Util.random_trace rng ~n:6 ~m:30 ~horizon:2000 in
      let g = 120. in
      let detected = Scanner.detect rng { Scanner.granularity = g; detection_prob = 0.8 } ground in
      Trace.fold
        (fun acc (c : Contact.t) ->
          let aligned x = Float.abs (Float.rem x g) < 1e-6 in
          acc && aligned c.t_beg
          && (aligned c.t_end || c.t_end = Trace.t_end ground)
          && Contact.duration c >= 0.)
        true detected)

let scanner_p1_coverage () =
  (* With perfect detection, a contact covering k scans becomes one
     detected contact; contacts between scans vanish. *)
  let ground =
    Util.trace_of_contacts ~t_end:1000. [ (0, 1, 110., 130.); (0, 1, 130.5, 199.5); (2, 3, 50., 450.) ]
  in
  let rng = Rng.create 1 in
  let detected =
    Scanner.detect rng { Scanner.granularity = 100.; detection_prob = 1.0 } ground
  in
  (* Scans fall at 0, 100, 200, ...: both (0,1) episodes sit between scans
     and vanish; (2,3) covers scans 100..400. *)
  Alcotest.(check int) "one detected" 1 (Trace.n_contacts detected);
  let c = Trace.contact detected 0 in
  Alcotest.(check int) "pair a" 2 c.a;
  Util.check_float "start" 100. c.t_beg;
  Util.check_float "end" 500. c.t_end

let scanner_mixture_validation () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 10.) ] in
  match
    Scanner.detect_mixture (Rng.create 1) ~granularity:10. ~qualities:[] trace
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty mixture accepted"

let scanner_fragmentation () =
  (* Low per-scan detection fragments a long contact into several short
     detected ones whose union stays within the original slots. *)
  let ground = Util.trace_of_contacts ~t_end:10000. [ (0, 1, 0., 10000.) ] in
  let rng = Rng.create 2 in
  let detected =
    Scanner.detect rng { Scanner.granularity = 100.; detection_prob = 0.4 } ground
  in
  Alcotest.(check bool) "fragments" true (Trace.n_contacts detected > 5);
  Trace.iter
    (fun (c : Contact.t) -> Alcotest.(check bool) "short pieces" true (Contact.duration c < 5000.))
    detected

(* --- Random waypoint --- *)

let waypoint_consistency () =
  let params = { Random_waypoint.default with n = 8; horizon = 600.; dt = 1. } in
  let trace = Random_waypoint.generate (Rng.create 21) params in
  let times = [| 100.; 300.; 500. |] in
  let positions = Random_waypoint.positions_at (Rng.create 21) params ~times in
  (* Same seed => same trajectories: any pair in contact at a sampled time
     must be within range there. *)
  Array.iteri
    (fun k time ->
      Trace.iter
        (fun (c : Contact.t) ->
          if c.t_beg <= time && time <= c.t_end then begin
            let xa, ya = positions.(k).(c.a) and xb, yb = positions.(k).(c.b) in
            let dist = Float.hypot (xa -. xb) (ya -. yb) in
            Alcotest.(check bool)
              (Printf.sprintf "pair %d-%d in range at %g (dist %.1f)" c.a c.b time dist)
              true
              (dist <= params.range +. 1e-6)
          end)
        trace)
    times

let waypoint_bounds () =
  let params = { Random_waypoint.default with n = 5; horizon = 300. } in
  let positions =
    Random_waypoint.positions_at (Rng.create 22) params ~times:[| 0.; 150.; 300. |]
  in
  Array.iter
    (Array.iter (fun (x, y) ->
         Alcotest.(check bool) "inside area" true
           (0. <= x && x <= params.area && 0. <= y && y <= params.area)))
    positions

(* --- External --- *)

let external_structure () =
  let internal = Util.trace_of_contacts ~n_nodes:5 ~t_end:86400. [ (0, 1, 0., 10.) ] in
  let rng = Rng.create 23 in
  let combined =
    External.add rng
      {
        External.n_external = 50;
        sightings_per_internal_per_day = 20.;
        duration = Duration.constant 60.;
        zipf_exponent = 1.;
      }
      internal
  in
  Alcotest.(check int) "node universe" 55 (Trace.n_nodes combined);
  Alcotest.(check bool) "sightings added" true (Trace.n_contacts combined > 10);
  Trace.iter
    (fun (c : Contact.t) ->
      (* no external-external contacts: the lower endpoint is internal *)
      Alcotest.(check bool) "one endpoint internal" true (c.a < 5))
    combined

(* --- Presets (smoke, tiny sizes) --- *)

let presets_smoke () =
  let check (info : Presets.info) =
    Alcotest.(check bool) "nonempty" true (Trace.n_contacts info.trace > 0);
    Alcotest.(check bool) "internal nodes bounded" true
      (info.internal_nodes <= Trace.n_nodes info.trace)
  in
  check (Presets.infocom05 ~days:0.5 ());
  check (Presets.hong_kong ~days:1. ());
  check (Presets.reality_mining ~weeks:1 ())

let suite =
  [
    Alcotest.test_case "constant duration" `Quick duration_constant;
    Alcotest.test_case "duration validation" `Quick duration_validation;
    Alcotest.test_case "exponential duration mean" `Slow duration_exponential_mean;
    Alcotest.test_case "day/night profile" `Quick diurnal_day_night;
    Alcotest.test_case "weekly profile" `Quick diurnal_weekly;
    Alcotest.test_case "profile maximum" `Quick diurnal_max;
    Alcotest.test_case "profile validation" `Quick diurnal_validation;
    Alcotest.test_case "planted communities" `Quick community_planted;
    Alcotest.test_case "heterogeneous rates bounded" `Quick community_heterogeneous;
    Alcotest.test_case "generator volume" `Slow gen_volume_matches_expectation;
    Alcotest.test_case "venue determinism" `Quick venue_deterministic;
    Alcotest.test_case "venue nights isolate" `Quick venue_nights_isolate;
    Alcotest.test_case "venue campus smoke" `Quick venue_campus_groups;
    Alcotest.test_case "scanner full detection" `Quick scanner_p1_coverage;
    Alcotest.test_case "scanner mixture validation" `Quick scanner_mixture_validation;
    Alcotest.test_case "scanner fragmentation" `Quick scanner_fragmentation;
    Alcotest.test_case "waypoint/trace consistency" `Slow waypoint_consistency;
    Alcotest.test_case "waypoint stays in area" `Quick waypoint_bounds;
    Alcotest.test_case "external sightings" `Quick external_structure;
    Alcotest.test_case "presets smoke" `Slow presets_smoke;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ duration_positive; gen_structure; venue_structure; scanner_grid_alignment ]
