open Omn_core
module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace

let frontier_gen =
  QCheck2.Gen.(
    let* points =
      list_size (int_range 0 12)
        (map2 (fun ld ea -> Ld_ea.make ~ld:(float_of_int ld) ~ea:(float_of_int ea))
           (int_range 0 40) (int_range 0 40))
    in
    let f = Frontier.create () in
    List.iter (fun p -> ignore (Frontier.insert f p)) points;
    return (Frontier.to_array f))

let grid = [| 0.; 1.; 2.; 5.; 10.; 20.; 50. |]

(* The accumulator must agree with per-pair exact measures. *)
let accumulator_matches_measures =
  QCheck2.Test.make ~count:300 ~name:"Delay_cdf = sum of Delivery.success_measure"
    QCheck2.Gen.(list_size (int_range 1 6) frontier_gen)
    (fun snapshots ->
      let t_start = 0. and t_end = 45. in
      let acc = Delay_cdf.create ~grid in
      List.iter (fun s -> Delay_cdf.add_pair acc ~t_start ~t_end s) snapshots;
      let total = float_of_int (List.length snapshots) *. (t_end -. t_start) in
      let success = Delay_cdf.success acc in
      let ok = ref (Float.abs (Delay_cdf.total_mass acc -. total) < 1e-9) in
      Array.iteri
        (fun i budget ->
          let expected =
            List.fold_left
              (fun s snapshot ->
                s
                +. Delivery.success_measure (Delivery.of_descriptors snapshot) ~t_start ~t_end
                     ~budget)
              0. snapshots
            /. total
          in
          if Float.abs (success.(i) -. expected) > 1e-9 then ok := false)
        grid;
      let expected_inf =
        List.fold_left
          (fun s snapshot ->
            s
            +. Delivery.success_measure (Delivery.of_descriptors snapshot) ~t_start ~t_end
                 ~budget:infinity)
          0. snapshots
        /. total
      in
      !ok && Float.abs (Delay_cdf.success_inf acc -. expected_inf) < 1e-9)

let success_monotone_in_budget =
  QCheck2.Test.make ~count:300 ~name:"success curve non-decreasing"
    QCheck2.Gen.(list_size (int_range 1 6) frontier_gen)
    (fun snapshots ->
      let acc = Delay_cdf.create ~grid in
      List.iter (fun s -> Delay_cdf.add_pair acc ~t_start:0. ~t_end:45. s) snapshots;
      let success = Delay_cdf.success acc in
      let ok = ref true in
      for i = 1 to Array.length success - 1 do
        if success.(i) < success.(i - 1) -. 1e-12 then ok := false
      done;
      !ok && Delay_cdf.success_inf acc >= success.(Array.length success - 1) -. 1e-12)

let rejects_bad_grid () =
  (match Delay_cdf.create ~grid:[| 1.; 0.5 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "descending grid accepted");
  match Delay_cdf.create ~grid:[| -1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative budget accepted"

(* End-to-end: curves on random traces are coherent. *)
let trace_gen =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* m = int_range 1 20 in
    let* seed = int in
    return (Util.random_trace (Rng.create seed) ~n ~m ~horizon:30))

let curves_coherent =
  QCheck2.Test.make ~count:60 ~name:"hop curves nest: cdf_k <= cdf_{k+1} <= flood"
    trace_gen (fun trace ->
      let curves =
        Delay_cdf.compute ~max_hops:5 ~grid:[| 1.; 3.; 10.; 30. |] trace
      in
      let ok = ref true in
      let n_grid = Array.length curves.grid in
      for i = 0 to n_grid - 1 do
        for k = 1 to 4 do
          if curves.hop_success.(k - 1).(i) > curves.hop_success.(k).(i) +. 1e-12 then ok := false
        done;
        if curves.hop_success.(4).(i) > curves.flood_success.(i) +. 1e-12 then ok := false
      done;
      for k = 1 to 4 do
        if curves.hop_success_inf.(k - 1) > curves.hop_success_inf.(k) +. 1e-12 then ok := false
      done;
      !ok && curves.hop_success_inf.(4) <= curves.flood_success_inf +. 1e-12)

(* Cross-check one grid point of compute against direct per-pair journeys. *)
let compute_matches_journeys =
  QCheck2.Test.make ~count:40 ~name:"compute = per-pair journey measures" trace_gen
    (fun trace ->
      let budget_grid = [| 2.; 8.; 25. |] in
      let curves = Delay_cdf.compute ~max_hops:4 ~grid:budget_grid trace in
      let n = Trace.n_nodes trace in
      let t_start = Trace.t_start trace and t_end = Trace.t_end trace in
      let total = float_of_int (n * (n - 1)) *. (t_end -. t_start) in
      let ok = ref true in
      (* hop bound 2 checked exhaustively *)
      let mass = Array.make (Array.length budget_grid) 0. in
      for source = 0 to n - 1 do
        let frontiers = Journey.frontiers_at_hops trace ~source ~max_hops:2 in
        for dest = 0 to n - 1 do
          if dest <> source then begin
            let delivery = Delivery.of_descriptors (Frontier.to_array frontiers.(dest)) in
            Array.iteri
              (fun i budget ->
                mass.(i) <-
                  mass.(i) +. Delivery.success_measure delivery ~t_start ~t_end ~budget)
              budget_grid
          end
        done
      done;
      Array.iteri
        (fun i m ->
          if Float.abs ((m /. total) -. curves.hop_success.(1).(i)) > 1e-9 then ok := false)
        mass;
      !ok)

let parallel_matches_sequential =
  QCheck2.Test.make ~count:20 ~name:"domains=3 gives the sequential curves" trace_gen
    (fun trace ->
      let grid = [| 1.; 3.; 10.; 30. |] in
      let seq = Delay_cdf.compute ~max_hops:4 ~grid trace in
      let par = Delay_cdf.compute ~max_hops:4 ~grid ~domains:3 trace in
      let close a b = Float.abs (a -. b) < 1e-9 in
      let rows_close a b =
        Array.for_all2 (fun r1 r2 -> Array.for_all2 close r1 r2) a b
      in
      rows_close seq.hop_success par.hop_success
      && Array.for_all2 close seq.flood_success par.flood_success
      && close seq.flood_success_inf par.flood_success_inf
      && seq.max_rounds_used = par.max_rounds_used)

(* Stronger than parallel_matches_sequential: on realistic venue traces
   the parallel curves must be *bit-identical* (structural equality on
   every float) to the sequential ones, for several domain counts — the
   omn_parallel determinism contract. *)
let venue_trace_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* n = int_range 8 14 in
    return
      (let rng = Rng.create seed in
       let params = Omn_mobility.Venue.conference_params ~rng ~n ~days:0.1 in
       Omn_mobility.Venue.generate rng ~n ~name:"venue-qcheck" params))

let parallel_bit_identical =
  QCheck2.Test.make ~count:5 ~name:"compute ~domains:{2,4} bit-identical to sequential"
    venue_trace_gen (fun trace ->
      let grid = [| 60.; 600.; 3600.; 14400. |] in
      let seq = Delay_cdf.compute ~max_hops:4 ~grid trace in
      List.for_all
        (fun domains -> Delay_cdf.compute ~max_hops:4 ~grid ~domains trace = seq)
        [ 2; 4 ])

let merge_distributes () =
  let grid = [| 1.; 5.; 20. |] in
  let snapshot ld ea = [| Omn_core.Ld_ea.make ~ld ~ea |] in
  let a = Delay_cdf.create ~grid and b = Delay_cdf.create ~grid in
  let whole = Delay_cdf.create ~grid in
  Delay_cdf.add_pair a ~t_start:0. ~t_end:30. (snapshot 10. 4.);
  Delay_cdf.add_pair b ~t_start:0. ~t_end:30. (snapshot 25. 28.);
  Delay_cdf.add_pair whole ~t_start:0. ~t_end:30. (snapshot 10. 4.);
  Delay_cdf.add_pair whole ~t_start:0. ~t_end:30. (snapshot 25. 28.);
  Delay_cdf.merge_into ~dst:a b;
  Alcotest.(check (array (float 1e-12))) "merged curve" (Delay_cdf.success whole)
    (Delay_cdf.success a);
  Util.check_float "merged inf" (Delay_cdf.success_inf whole) (Delay_cdf.success_inf a);
  match Delay_cdf.merge_into ~dst:a (Delay_cdf.create ~grid:[| 2. |]) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "grid mismatch accepted"

let suite =
  [
    Alcotest.test_case "rejects bad grids" `Quick rejects_bad_grid;
    Alcotest.test_case "merge distributes over pairs" `Quick merge_distributes;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        accumulator_matches_measures; success_monotone_in_budget; curves_coherent;
        compute_matches_journeys; parallel_matches_sequential; parallel_bit_identical;
      ]
