module Contact = Omn_temporal.Contact
module Trace = Omn_temporal.Trace
module Transform = Omn_temporal.Transform
module Rng = Omn_stats.Rng

let trace_gen =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* m = int_range 0 30 in
    let* seed = int in
    return (Util.random_trace (Rng.create seed) ~n ~m ~horizon:40))

let remove_edge_cases () =
  let trace = Util.random_trace (Rng.create 3) ~n:5 ~m:20 ~horizon:40 in
  let all = Transform.remove_random ~rng:(Rng.create 1) ~p:0. trace in
  Alcotest.(check int) "p=0 keeps all" (Trace.n_contacts trace) (Trace.n_contacts all);
  let none = Transform.remove_random ~rng:(Rng.create 1) ~p:1. trace in
  Alcotest.(check int) "p=1 drops all" 0 (Trace.n_contacts none)

let remove_statistical () =
  let trace = Util.random_trace (Rng.create 5) ~n:10 ~m:4000 ~horizon:1000 in
  let kept = Transform.remove_random ~rng:(Rng.create 2) ~p:0.7 trace in
  let frac = float_of_int (Trace.n_contacts kept) /. float_of_int (Trace.n_contacts trace) in
  Alcotest.(check bool) "~30% kept" true (Float.abs (frac -. 0.3) < 0.04)

let duration_partition =
  QCheck2.Test.make ~count:200 ~name:"keep_longer + keep_shorter partition the trace"
    trace_gen (fun trace ->
      let long = Transform.keep_longer_than 5. trace in
      let short = Transform.keep_shorter_than 5. trace in
      Trace.n_contacts long + Trace.n_contacts short = Trace.n_contacts trace
      && Trace.fold (fun acc c -> acc && Contact.duration c > 5.) true long
      && Trace.fold (fun acc c -> acc && Contact.duration c <= 5.) true short)

let window_clips =
  QCheck2.Test.make ~count:200 ~name:"time_window clips and keeps intersecting contacts"
    trace_gen (fun trace ->
      let t_start = 10. and t_end = 30. in
      let cropped = Transform.time_window ~t_start ~t_end trace in
      let expected =
        Trace.fold
          (fun acc (c : Contact.t) ->
            if c.t_end >= t_start && c.t_beg <= t_end then acc + 1 else acc)
          0 trace
      in
      Trace.n_contacts cropped = expected
      && Trace.fold
           (fun acc (c : Contact.t) -> acc && c.t_beg >= t_start && c.t_end <= t_end)
           true cropped)

let quantize_aligns =
  QCheck2.Test.make ~count:200 ~name:"quantize snaps outward onto the grid" trace_gen
    (fun trace ->
      let g = 3. in
      let snapped = Transform.quantize ~granularity:g trace in
      let t0 = Trace.t_start trace and t1 = Trace.t_end trace in
      let on_grid x = Float.abs (Float.rem (x -. t0) g) < 1e-6 || x = t1 in
      (* every snapped contact sits on the scan grid, inside the window *)
      Trace.n_contacts snapped = Trace.n_contacts trace
      && Trace.fold
           (fun acc (s : Contact.t) ->
             acc && s.t_beg >= t0 && s.t_end <= t1 && on_grid s.t_beg
             && (on_grid s.t_end || s.t_end = t1))
           true snapped
      (* and every original interval is covered by a snapped one of the
         same pair (snapping may reorder equal keys, so match by pair) *)
      && Trace.fold
           (fun acc (o : Contact.t) ->
             acc
             && List.exists
                  (fun (s : Contact.t) -> s.t_beg <= o.t_beg && s.t_end >= Float.min o.t_end t1)
                  (Trace.pair_contacts snapped o.a o.b))
           true trace)

let shift_translates =
  QCheck2.Test.make ~count:200 ~name:"shift translates window and contacts" trace_gen
    (fun trace ->
      let delta = 17.5 in
      let shifted = Transform.shift delta trace in
      Trace.t_start shifted = Trace.t_start trace +. delta
      && Array.for_all2
           (fun (o : Contact.t) (s : Contact.t) ->
             s.t_beg = o.t_beg +. delta && s.t_end = o.t_end +. delta && s.a = o.a && s.b = o.b)
           (Trace.contacts trace) (Trace.contacts shifted))

let merge_counts =
  QCheck2.Test.make ~count:200 ~name:"merge concatenates contact multisets"
    QCheck2.Gen.(pair trace_gen trace_gen)
    (fun (t1, t2) ->
      QCheck2.assume (Trace.n_nodes t1 = Trace.n_nodes t2);
      let merged = Transform.merge t1 t2 in
      Trace.n_contacts merged = Trace.n_contacts t1 + Trace.n_contacts t2)

let empty_trace_transforms () =
  let empty = Trace.create ~n_nodes:4 ~t_start:0. ~t_end:10. [] in
  let check name t =
    Alcotest.(check int) (name ^ ": no contacts") 0 (Trace.n_contacts t)
  in
  check "keep_longer" (Transform.keep_longer_than 1. empty);
  check "keep_shorter" (Transform.keep_shorter_than 1. empty);
  check "time_window" (Transform.time_window ~t_start:2. ~t_end:8. empty);
  check "quantize" (Transform.quantize ~granularity:2. empty);
  check "remove" (Transform.remove_random ~rng:(Rng.create 1) ~p:0.5 empty);
  let shifted = Transform.shift 5. empty in
  check "shift" shifted;
  Alcotest.(check (float 0.)) "shift moves empty window" 5. (Trace.t_start shifted);
  let restricted, back = Transform.restrict_nodes ~keep:(fun u -> u < 2) empty in
  check "restrict" restricted;
  Alcotest.(check int) "restrict keeps requested nodes" 2 (Trace.n_nodes restricted);
  Alcotest.(check (array int)) "back map" [| 0; 1 |] back;
  check "merge" (Transform.merge empty empty)

let single_contact_transforms () =
  let one = Util.trace_of_contacts ~n_nodes:3 ~t_start:0. ~t_end:10. [ (0, 2, 2., 6.) ] in
  Alcotest.(check int) "longer-than keeps it" 1
    (Trace.n_contacts (Transform.keep_longer_than 3.9 one));
  Alcotest.(check int) "longer-than drops it (duration not strict)" 0
    (Trace.n_contacts (Transform.keep_longer_than 4. one));
  (* clipping a window that straddles the contact *)
  let clipped = Transform.time_window ~t_start:4. ~t_end:10. one in
  Alcotest.(check int) "straddled contact kept" 1 (Trace.n_contacts clipped);
  let c = Trace.contact clipped 0 in
  Alcotest.(check (float 0.)) "clipped start" 4. c.t_beg;
  Alcotest.(check (float 0.)) "end untouched" 6. c.t_end;
  (* a window wholly before the contact empties the trace *)
  Alcotest.(check int) "disjoint window empties" 0
    (Trace.n_contacts (Transform.time_window ~t_start:0. ~t_end:1. one));
  (* dropping an endpoint node drops the contact *)
  let restricted, _ = Transform.restrict_nodes ~keep:(fun u -> u <> 2) one in
  Alcotest.(check int) "endpoint removal drops contact" 0 (Trace.n_contacts restricted)

(* Removal down to the empty trace must leave every downstream consumer
   (stats, journeys, delivery) well-defined, not crashing. *)
let removal_to_zero_downstream () =
  let trace = Util.random_trace (Rng.create 11) ~n:4 ~m:12 ~horizon:20 in
  let gutted = Transform.remove_random ~rng:(Rng.create 0) ~p:1. trace in
  Alcotest.(check int) "all contacts removed" 0 (Trace.n_contacts gutted);
  Alcotest.(check int) "window survives" (Trace.n_nodes trace) (Trace.n_nodes gutted);
  let s = Omn_temporal.Trace_stats.summary gutted in
  Alcotest.(check int) "summary works" 0 s.n_contacts;
  let frontiers, rounds = Omn_core.Journey.run gutted ~source:0 in
  Alcotest.(check int) "journey fixpoint immediately" 0 rounds;
  Array.iteri
    (fun v f ->
      if v = 0 then Alcotest.(check int) "identity at source" 1 (Omn_core.Frontier.size f)
      else begin
        Alcotest.(check bool) "no paths" true (Omn_core.Frontier.is_empty f);
        Alcotest.(check bool) "delivery infinite" true
          (Omn_core.Frontier.delivery f 0. = infinity)
      end)
    frontiers

let restrict_remaps () =
  let trace =
    Util.trace_of_contacts ~n_nodes:5 [ (0, 1, 0., 1.); (1, 3, 2., 3.); (2, 4, 4., 5.) ]
  in
  let restricted, back = Transform.restrict_nodes ~keep:(fun u -> u <> 2) trace in
  Alcotest.(check int) "nodes" 4 (Trace.n_nodes restricted);
  Alcotest.(check int) "contacts" 2 (Trace.n_contacts restricted);
  Alcotest.(check (array int)) "back map" [| 0; 1; 3; 4 |] back;
  (* contact (1,3) became (1,2) in the dense ids *)
  let c = Trace.contact restricted 1 in
  Alcotest.(check int) "remapped a" 1 c.a;
  Alcotest.(check int) "remapped b" 2 c.b

let suite =
  [
    Alcotest.test_case "remove p=0 / p=1" `Quick remove_edge_cases;
    Alcotest.test_case "remove statistics" `Slow remove_statistical;
    Alcotest.test_case "restrict_nodes remaps" `Quick restrict_remaps;
    Alcotest.test_case "transforms on the empty trace" `Quick empty_trace_transforms;
    Alcotest.test_case "transforms on a single contact" `Quick single_contact_transforms;
    Alcotest.test_case "removal to zero stays well-defined" `Quick removal_to_zero_downstream;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ duration_partition; window_clips; quantize_aligns; shift_translates; merge_counts ]
