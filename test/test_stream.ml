(* Differential pin of the streaming trace reader against the in-memory
   one.

   [Trace_stream] promises byte-identical traces AND byte-identical
   repair reports to [Trace_io] on any time-ordered input, under all
   three ingestion policies, no matter how the input is cut into
   chunks. These tests hold it to that:

   - ~100 seeded instances from the four generator families, serialised
     and re-read through both parsers (clean and with seeded dirt) under
     Strict / Repair / Skip, compared outcome-for-outcome (trace bytes,
     repair report, or the exact error);
   - a QCheck property that arbitrary chunk boundaries — including cuts
     inside a record — never change the parse;
   - truncation at every byte of a serialised trace (EOF mid-record)
     matches [Trace_io] under each policy;
   - out-of-order input is rejected with a typed [Contact] error under
     every policy (the one documented divergence: the streaming reader
     cannot sort);
   - a [Shard_sink] write-out streams back byte-identical to the
     in-memory generator that fed it. *)

module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Trace_io = Omn_temporal.Trace_io
module Stream = Omn_temporal.Trace_stream
module Repair = Omn_robust.Repair
module Err = Omn_robust.Err

let policies = [ Repair.Strict; Repair.Repair; Repair.Skip ]

let policy_name = function
  | Repair.Strict -> "strict"
  | Repair.Repair -> "repair"
  | Repair.Skip -> "skip"

(* Canonical rendering of a parse outcome: equal strings = equal trace
   bytes, equal repair report (policy, counts, every event), or the
   same typed error at the same line. *)
let show = function
  | Ok (trace, report) ->
    Printf.sprintf "Ok\n%s---\n%s" (Trace_io.to_string trace)
      (Format.asprintf "%a" Repair.pp report)
  | Error (e : Err.t) -> Format.asprintf "Error %a" Err.pp e

let instance seed =
  let rng = Rng.create seed in
  match seed mod 4 with
  | 0 -> Util.random_trace rng ~n:(3 + Rng.int rng 4) ~m:(4 + Rng.int rng 20) ~horizon:20
  | 1 ->
    Omn_randnet.Continuous.generate rng { n = 3 + Rng.int rng 4; lambda = 0.4; horizon = 10. }
  | 2 ->
    Omn_mobility.Random_waypoint.generate rng
      {
        n = 4;
        area = 120.;
        v_min = 0.5;
        v_max = 1.5;
        mean_pause = 10.;
        range = 40.;
        horizon = 300.;
        dt = 5.;
      }
  | _ ->
    let n = 4 in
    let params = Omn_mobility.Venue.conference_params ~rng ~n ~days:0.1 in
    Omn_mobility.Venue.generate rng ~n ~name:"stream-venue" params

(* Seeded dirt that keeps the record stream time-ordered (the contract
   the streaming reader documents), so both parsers must agree even
   under Repair: duplicated records (inserted adjacently — same t_beg),
   garbage lines, stray comments, blank lines. *)
let dirty rng text =
  let lines = String.split_on_char '\n' text in
  let out =
    List.concat_map
      (fun line ->
        let is_record = line <> "" && line.[0] <> '#' in
        match Rng.int rng 8 with
        | 0 when is_record -> [ line; line ] (* exact duplicate *)
        | 1 -> [ line; "not a record at all" ]
        | 2 -> [ line; "# stray comment" ]
        | 3 -> [ line; "" ]
        | 4 when is_record -> [ line; "1 2 3" ] (* wrong field count *)
        | _ -> [ line ])
      lines
  in
  String.concat "\n" out

(* Seeded chunking: cut the text at random positions, including inside
   records and inside multi-byte float literals. *)
let chop rng text =
  let n = String.length text in
  let rec go start acc =
    if start >= n then List.rev acc
    else
      let len = min (n - start) (1 + Rng.int rng 37) in
      go (start + len) (String.sub text start len :: acc)
  in
  go 0 []

let check_parity seed =
  let rng = Rng.create (seed * 7 + 1) in
  let clean = Trace_io.to_string (instance seed) in
  let texts = [ ("clean", clean); ("dirty", dirty rng clean) ] in
  let errs = ref [] in
  List.iter
    (fun (label, text) ->
      List.iter
        (fun policy ->
          let reference = show (Trace_io.parse ~policy ~file:"t" text) in
          let streamed = show (Stream.parse ~policy ~file:"t" text) in
          if reference <> streamed then
            errs :=
              Printf.sprintf "seed %d (%s, %s): whole-text mismatch:\n%s\n=== vs ===\n%s" seed
                label (policy_name policy) reference streamed
              :: !errs;
          let chunked =
            show (Stream.parse_chunks ~policy ~file:"t" (chop rng text))
          in
          if reference <> chunked then
            errs :=
              Printf.sprintf "seed %d (%s, %s): chunked mismatch" seed label
                (policy_name policy)
              :: !errs)
        policies)
    texts;
  !errs

let test_streaming_differential () =
  let seeds = List.init 100 (fun i -> 8200 + i) in
  let errs = List.concat_map check_parity seeds in
  match errs with
  | [] -> ()
  | first :: _ ->
    Alcotest.failf "%d parity failure(s) across 100 instances; first:\n%s" (List.length errs)
      first

(* QCheck: the parse is invariant under the chunking, for arbitrary cut
   points of a fixed input that exercises headers, repairs and drops. *)
let qcheck_text =
  "# omn-trace 1\n# name q\n# nodes 5\n# window 0 40\n0 1 1 2\n0 1 1 2\njunk line\n\
   2 3 2 100\n# late comment\n1 4 3 3\n3 4 3 1\n2 4 5 9\n"

let split_at_cuts text cuts =
  let n = String.length text in
  let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < n) cuts) in
  let rec go start = function
    | [] -> [ String.sub text start (n - start) ]
    | c :: rest -> String.sub text start (c - start) :: go c rest
  in
  go 0 cuts

let test_chunk_invariance =
  QCheck2.Test.make ~count:300 ~name:"chunk boundaries never change the parse"
    QCheck2.Gen.(
      pair
        (oneofl policies)
        (list_size (int_range 0 12) (int_range 0 (String.length qcheck_text))))
    (fun (policy, cuts) ->
      let whole = show (Stream.parse ~policy ~file:"q" qcheck_text) in
      let split = show (Stream.parse_chunks ~policy ~file:"q" (split_at_cuts qcheck_text cuts)) in
      whole = split)

(* EOF mid-record: truncating the serialised trace at every byte leaves
   the two parsers in agreement — the streaming reader's carry buffer
   at EOF must behave exactly like [Trace_io] seeing a short last
   line. *)
let test_truncation () =
  let text = Trace_io.to_string (instance 8301) in
  let n = String.length text in
  (* One legitimate escape hatch: a cut inside a float can leave a
     reversed interval whose swap-repair moves its t_beg before the
     already-emitted records — the streaming reader then raises its
     documented typed out-of-order rejection instead of sorting. Count
     those: they must stay a rare corner, not the common case. *)
  let is_out_of_order = function
    | Error (e : Err.t) ->
      e.Err.code = Err.Contact
      && Util.contains_substring (Format.asprintf "%a" Err.pp e) "out-of-order"
    | Ok _ -> false
  in
  let divergences = ref 0 and compared = ref 0 in
  for cut = 0 to n - 1 do
    List.iter
      (fun policy ->
        let t = String.sub text 0 cut in
        let reference = Trace_io.parse ~policy ~file:"t" t in
        let streamed = Stream.parse ~policy ~file:"t" t in
        incr compared;
        if is_out_of_order streamed && not (is_out_of_order reference) then incr divergences
        else if show reference <> show streamed then
          Alcotest.failf "cut %d (%s): truncation mismatch:\n%s\n=== vs ===\n%s" cut
            (policy_name policy) (show reference) (show streamed))
      policies
  done;
  if !divergences * 10 > !compared then
    Alcotest.failf "out-of-order divergence on %d of %d truncations: not a corner case"
      !divergences !compared

(* The documented divergence: the streaming reader cannot sort, so
   out-of-order input is a typed [Contact] error under every policy
   (where [Trace_io] would sort and accept). *)
let test_out_of_order_rejected () =
  let text = "# omn-trace 1\n# nodes 3\n# window 0 10\n0 1 5 6\n1 2 1 2\n" in
  List.iter
    (fun policy ->
      match Stream.parse ~policy ~file:"t" text with
      | Ok _ -> Alcotest.failf "%s: out-of-order input accepted" (policy_name policy)
      | Error e ->
        if e.Err.code <> Err.Contact then
          Alcotest.failf "%s: expected a Contact error, got %a" (policy_name policy) Err.pp e)
    policies;
  (* the same text is fine for the sorting in-memory reader *)
  match Trace_io.parse ~policy:Repair.Strict ~file:"t" text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "Trace_io rejected sortable input: %a" Err.pp e

(* Shard sink round-trip: generator -> sink -> streamed index is
   byte-identical to the in-memory generator, for both the venue
   iterator and a plain [Trace.iter] spill. *)
let test_shard_sink_roundtrip () =
  let n = 8 in
  let in_memory =
    let rng = Rng.create 4242 in
    let p = Omn_mobility.Venue.conference_params ~rng ~n ~days:0.15 in
    Omn_mobility.Venue.generate rng ~n ~name:"sinkcheck" p
  in
  let dir = Filename.temp_file "omn_sink" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let index = Filename.concat dir "trace.idx" in
      let sink =
        Omn_mobility.Shard_sink.create ~shards:5 ~name:"sinkcheck" ~n_nodes:n
          ~t_start:(Trace.t_start in_memory) ~t_end:(Trace.t_end in_memory) index
      in
      let rng = Rng.create 4242 in
      let p = Omn_mobility.Venue.conference_params ~rng ~n ~days:0.15 in
      Omn_mobility.Venue.iter_contacts rng ~n p (Omn_mobility.Shard_sink.add sink);
      Omn_mobility.Shard_sink.finish sink;
      match Stream.load_result index with
      | Error e -> Alcotest.failf "streaming the index failed: %a" Err.pp e
      | Ok (streamed, _report) ->
        Alcotest.(check string)
          "sink -> stream = in-memory generator" (Trace_io.to_string in_memory)
          (Trace_io.to_string streamed))

let suite =
  [
    Alcotest.test_case "out-of-order input: typed Contact error" `Quick
      test_out_of_order_rejected;
    Alcotest.test_case "shard sink round-trip (venue iterator)" `Quick
      test_shard_sink_roundtrip;
    Alcotest.test_case "EOF mid-record at every byte, all policies" `Slow test_truncation;
    Alcotest.test_case "streaming vs in-memory, 100 instances x 3 policies" `Slow
      test_streaming_differential;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ test_chunk_invariance ]
