module Rng = Omn_stats.Rng
module Empirical = Omn_stats.Empirical
module Heap = Omn_stats.Heap
module Grid = Omn_stats.Grid
module Timefmt = Omn_stats.Timefmt

(* --- Rng --- *)

let rng_deterministic () =
  let a = Rng.create 12345 and b = Rng.create 12345 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.int64 a) (Rng.int64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let x = Rng.int64 child and y = Rng.int64 parent in
  Alcotest.(check bool) "split decorrelates" true (not (Int64.equal x y))

let rng_float_unit =
  QCheck2.Test.make ~count:500 ~name:"float in [0,1)" QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng in
      0. <= v && v < 1.)

let rng_int_bounds =
  QCheck2.Test.make ~count:500 ~name:"int in [0,n)"
    QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let v = Rng.int rng n in
      0 <= v && v < n)

let rng_int_uniform () =
  (* Chi-square-ish sanity over 8 buckets. *)
  let rng = Rng.create 99 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Rng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  let expected = float_of_int n /. 8. in
  Array.iteri
    (fun i count ->
      let dev = Float.abs (float_of_int count -. expected) /. sqrt expected in
      if dev > 5. then Alcotest.failf "bucket %d deviates by %.1f sigma" i dev)
    buckets

let rng_exponential_mean () =
  let rng = Rng.create 4 in
  let n = 50_000 and rate = 2.5 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng rate
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~ 1/rate" true (Float.abs (mean -. (1. /. rate)) < 0.01)

let rng_poisson_moments () =
  let rng = Rng.create 5 in
  List.iter
    (fun lambda ->
      let n = 20_000 in
      let sum = ref 0. and sq = ref 0. in
      for _ = 1 to n do
        let v = float_of_int (Rng.poisson rng lambda) in
        sum := !sum +. v;
        sq := !sq +. (v *. v)
      done;
      let mean = !sum /. float_of_int n in
      let var = (!sq /. float_of_int n) -. (mean *. mean) in
      let tol = 5. *. sqrt (lambda /. float_of_int n) in
      if Float.abs (mean -. lambda) > tol +. 0.05 then
        Alcotest.failf "poisson(%g) mean %.3f" lambda mean;
      if Float.abs (var -. lambda) > 10. *. tol +. 0.5 then
        Alcotest.failf "poisson(%g) var %.3f" lambda var)
    [ 0.3; 3.; 45. ]

let rng_geometric_support =
  QCheck2.Test.make ~count:300 ~name:"geometric >= 0"
    QCheck2.Gen.(pair int (float_range 0.01 1.))
    (fun (seed, p) ->
      let rng = Rng.create seed in
      Rng.geometric rng p >= 0)

let rng_pareto_tail () =
  let rng = Rng.create 6 in
  for _ = 1 to 1000 do
    let v = Rng.pareto rng 1.5 2. in
    Alcotest.(check bool) "above x_min" true (v >= 2.)
  done

let rng_shuffle_permutation =
  QCheck2.Test.make ~count:200 ~name:"shuffle is a permutation"
    QCheck2.Gen.(pair int (list_size (int_range 0 50) int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let rng_sample_without_replacement =
  QCheck2.Test.make ~count:200 ~name:"sample without replacement: distinct, in range"
    QCheck2.Gen.(pair int (int_range 0 60))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let k = if n = 0 then 0 else Rng.int rng (n + 1) in
      let s = Rng.sample_without_replacement rng k n in
      Array.length s = k
      && Array.for_all (fun v -> 0 <= v && v < n) s
      && List.length (List.sort_uniq compare (Array.to_list s)) = k)

(* --- Empirical --- *)

let empirical_basic () =
  let d = Empirical.of_array [| 1.; 2.; 2.; 4. |] in
  Alcotest.(check (float 1e-9)) "cdf below" 0. (Empirical.cdf d 0.5);
  Alcotest.(check (float 1e-9)) "cdf at 1" 0.25 (Empirical.cdf d 1.);
  Alcotest.(check (float 1e-9)) "cdf at 2" 0.75 (Empirical.cdf d 2.);
  Alcotest.(check (float 1e-9)) "cdf at 3" 0.75 (Empirical.cdf d 3.);
  Alcotest.(check (float 1e-9)) "cdf top" 1. (Empirical.cdf d 4.);
  Alcotest.(check (float 1e-9)) "quantile 0.5" 2. (Empirical.quantile d 0.5);
  Alcotest.(check (float 1e-9)) "mean" 2.25 (Empirical.mean_finite d);
  Alcotest.(check (float 1e-9)) "ccdf" 0.25 (Empirical.ccdf d 2.)

let empirical_infinity () =
  let d = Empirical.of_array [| 1.; infinity; 3. |] in
  Alcotest.(check (float 1e-9)) "finite cdf" (2. /. 3.) (Empirical.cdf d 5.);
  Alcotest.(check (float 1e-9)) "cdf at infinity" 1. (Empirical.cdf d infinity);
  Alcotest.(check (float 1e-9)) "quantile in failure mass" infinity (Empirical.quantile d 0.9);
  Alcotest.(check (float 1e-9)) "mean of finite part" 2. (Empirical.mean_finite d)

let empirical_weighted () =
  let d = Empirical.of_weighted ~extra_infinite_mass:1. [| (1., 2.); (5., 1.) |] in
  Alcotest.(check (float 1e-9)) "total" 4. (Empirical.total_mass d);
  Alcotest.(check (float 1e-9)) "cdf" 0.5 (Empirical.cdf d 1.);
  Alcotest.(check (float 1e-9)) "cdf 5" 0.75 (Empirical.cdf d 5.)

let empirical_rejects () =
  Alcotest.check_raises "negative weight" (Invalid_argument "Empirical: negative weight")
    (fun () -> ignore (Empirical.of_weighted [| (1., -1.) |]));
  Alcotest.check_raises "zero mass" (Invalid_argument "Empirical: zero total mass") (fun () ->
      ignore (Empirical.of_weighted [||]))

let empirical_eval_matches_cdf =
  QCheck2.Test.make ~count:300 ~name:"eval on a grid = pointwise cdf"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30) (float_range (-50.) 50.))
        (list_size (int_range 1 20) (float_range (-60.) 60.)))
    (fun (values, grid_raw) ->
      let d = Empirical.of_array (Array.of_list values) in
      let grid = Array.of_list (List.sort Float.compare grid_raw) in
      let evaluated = Empirical.eval d grid in
      Array.for_all2
        (fun got x -> Float.abs (got -. Empirical.cdf d x) < 1e-12)
        evaluated grid)

let empirical_quantile_inverse =
  QCheck2.Test.make ~count:300 ~name:"cdf (quantile p) >= p"
    QCheck2.Gen.(
      pair (list_size (int_range 1 30) (float_range (-50.) 50.)) (float_range 0. 1.))
    (fun (values, p) ->
      let d = Empirical.of_array (Array.of_list values) in
      let q = Empirical.quantile d p in
      q = infinity || Empirical.cdf d q >= p -. 1e-12)

(* --- Heap --- *)

let heap_sorts =
  QCheck2.Test.make ~count:300 ~name:"heap drains in sorted order"
    QCheck2.Gen.(list int)
    (fun l ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) l;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some v -> drain (v :: acc) in
      drain [] = List.sort Int.compare l)

let heap_of_array =
  QCheck2.Test.make ~count:300 ~name:"heapify + drain = sort"
    QCheck2.Gen.(array int)
    (fun a ->
      let h = Heap.of_array ~cmp:Int.compare a in
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some v -> drain (v :: acc) in
      drain [] = List.sort Int.compare (Array.to_list a))

let heap_peek () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty peek" true (Heap.peek h = None);
  Heap.push h 5;
  Heap.push h 3;
  Alcotest.(check bool) "peek min" true (Heap.peek h = Some 3);
  Alcotest.(check int) "length" 2 (Heap.length h)

(* --- Grid --- *)

let grid_linear () =
  let g = Grid.linear ~lo:0. ~hi:10. ~n:11 in
  Alcotest.(check int) "size" 11 (Array.length g);
  Alcotest.(check (float 1e-9)) "first" 0. g.(0);
  Alcotest.(check (float 1e-9)) "last" 10. g.(10);
  Alcotest.(check (float 1e-9)) "step" 5. g.(5)

let grid_logarithmic () =
  let g = Grid.logarithmic ~lo:1. ~hi:100. ~n:3 in
  Alcotest.(check (float 1e-9)) "geometric middle" 10. g.(1);
  Alcotest.check_raises "bad lo" (Invalid_argument "Grid.logarithmic: need 0 < lo <= hi")
    (fun () -> ignore (Grid.logarithmic ~lo:0. ~hi:1. ~n:4))

let grid_delay_default () =
  let g = Grid.delay_default in
  Alcotest.(check (float 1e-6)) "starts at 2 min" 120. g.(0);
  Alcotest.(check (float 1e-3)) "ends at a week" 604800. g.(Array.length g - 1);
  for i = 1 to Array.length g - 1 do
    Alcotest.(check bool) "ascending" true (g.(i) > g.(i - 1))
  done

(* --- Timefmt --- *)

let timefmt_cases () =
  List.iter
    (fun (seconds, expected) ->
      Alcotest.(check string) (Printf.sprintf "%g s" seconds) expected (Timefmt.duration seconds))
    [
      (0., "0 s"); (45., "45 s"); (90., "1.5 min"); (3600., "1.0 h"); (7200., "2.0 h");
      (86400., "1.0 d"); (604800., "1.0 wk"); (infinity, "inf");
    ]

let timefmt_parse () =
  List.iter
    (fun (input, expected) ->
      match Timefmt.parse_duration input with
      | Some v -> Alcotest.(check (float 1e-9)) input expected v
      | None -> Alcotest.failf "failed to parse %S" input)
    [
      ("10s", 10.); ("2 min", 120.); ("1.5h", 5400.); ("1 day", 86400.); ("2wk", 1209600.);
      ("inf", infinity); ("42", 42.);
    ];
  Alcotest.(check bool) "garbage rejected" true (Timefmt.parse_duration "12 parsecs" = None)

let timefmt_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"parse (axis_seconds d) ~ d"
    QCheck2.Gen.(float_range 1. 1e6)
    (fun d ->
      match Timefmt.parse_duration (Timefmt.axis_seconds d) with
      | None -> false
      | Some v -> Float.abs (v -. d) /. d < 0.06 (* axis form keeps one decimal *))

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick rng_seeds_differ;
    Alcotest.test_case "rng split independent" `Quick rng_split_independent;
    Alcotest.test_case "rng int uniformity" `Slow rng_int_uniform;
    Alcotest.test_case "rng exponential mean" `Slow rng_exponential_mean;
    Alcotest.test_case "rng poisson moments" `Slow rng_poisson_moments;
    Alcotest.test_case "rng pareto support" `Quick rng_pareto_tail;
    Alcotest.test_case "empirical basics" `Quick empirical_basic;
    Alcotest.test_case "empirical infinity mass" `Quick empirical_infinity;
    Alcotest.test_case "empirical weighted" `Quick empirical_weighted;
    Alcotest.test_case "empirical rejects bad input" `Quick empirical_rejects;
    Alcotest.test_case "heap peek/length" `Quick heap_peek;
    Alcotest.test_case "grid linear" `Quick grid_linear;
    Alcotest.test_case "grid logarithmic" `Quick grid_logarithmic;
    Alcotest.test_case "grid delay default" `Quick grid_delay_default;
    Alcotest.test_case "timefmt formatting" `Quick timefmt_cases;
    Alcotest.test_case "timefmt parsing" `Quick timefmt_parse;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        rng_float_unit; rng_int_bounds; rng_geometric_support; rng_shuffle_permutation;
        rng_sample_without_replacement; empirical_eval_matches_cdf; empirical_quantile_inverse;
        heap_sorts; heap_of_array; timefmt_roundtrip;
      ]
