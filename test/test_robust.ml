module Err = Omn_robust.Err
module Repair = Omn_robust.Repair
module Faultgen = Omn_robust.Faultgen
module Atomic_file = Omn_robust.Atomic_file
module Trace = Omn_temporal.Trace
module Trace_io = Omn_temporal.Trace_io
module Delay_cdf = Omn_core.Delay_cdf
module Diameter = Omn_core.Diameter
module Rng = Omn_stats.Rng

let get_ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %s" (Err.to_string e)

let expect_code ?line code = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Err.code_name code)
  | Error (e : Err.t) ->
    Alcotest.(check string) "error code" (Err.code_name code) (Err.code_name e.code);
    (match line with
    | Some l -> Alcotest.(check (option int)) "error line" (Some l) e.line
    | None -> ())

(* --- Err --- *)

let err_exit_codes () =
  Alcotest.(check int) "compute is 1" 1 (Err.exit_code Err.Compute);
  List.iter
    (fun c -> Alcotest.(check int) (Err.code_name c ^ " is 2") 2 (Err.exit_code c))
    [ Err.Parse; Err.Header; Err.Contact; Err.Window; Err.Range; Err.Io; Err.Checkpoint;
      Err.Usage ]

let err_formatting () =
  let e = Err.errf ~file:"t.omn" ~line:3 Err.Parse "bad %s" "field" in
  let s = Err.to_string e in
  List.iter
    (fun part ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" s part)
        true
        (Util.contains_substring s part))
    [ "t.omn"; "line 3"; "E-PARSE"; "bad field" ]

(* --- lenient ingestion policies --- *)

let dirty =
  String.concat "\n"
    [
      "# name dirty"; "# nodes 2"; "# window 0 10";
      "0 1 0 5" (* 4: good *); "0 0 1 2" (* 5: self loop *);
      "0 1 0 5" (* 6: duplicate of 4 *); "1 0 7 6" (* 7: reversed interval *);
      "0 1 nan 3" (* 8: non-finite *); "0 1 -2 4" (* 9: sticks out of window *);
      "0 2 1 3" (* 10: node 2 >= declared 2 *); "junk" (* 11: malformed *);
      "0 1 20 30" (* 12: fully outside window *); "";
    ]

let actions_of report = List.map (fun (e : Repair.event) -> (e.line, e.action)) report.Repair.events

let repair_policy_strict () =
  expect_code Err.Contact ~line:5 (Trace_io.parse dirty)

let repair_policy_repair () =
  let trace, report = get_ok (Trace_io.parse ~policy:Repair.Repair dirty) in
  Alcotest.(check int) "kept" 4 (Trace.n_contacts trace);
  Alcotest.(check int) "widened node count" 3 (Trace.n_nodes trace);
  Alcotest.(check (float 0.)) "window lo" 0. (Trace.t_start trace);
  Alcotest.(check (float 0.)) "window hi" 10. (Trace.t_end trace);
  Alcotest.(check int) "report kept" 4 report.Repair.kept;
  Alcotest.(check int) "dropped" 4 (Repair.n_dropped report);
  Alcotest.(check int) "repaired" 4 (Repair.n_repaired report);
  let expected =
    [
      (5, Repair.Dropped_self_loop); (6, Repair.Merged_duplicate);
      (7, Repair.Swapped_interval); (8, Repair.Dropped_nonfinite);
      (9, Repair.Clamped_to_window); (10, Repair.Widened_node_count);
      (11, Repair.Dropped_malformed); (12, Repair.Dropped_out_of_window);
    ]
  in
  Alcotest.(check bool) "event list" true (actions_of report = expected);
  (* the clamped contact really was clamped *)
  Alcotest.(check bool) "all contacts inside window" true
    (Array.for_all
       (fun (c : Omn_temporal.Contact.t) -> c.t_beg >= 0. && c.t_end <= 10.)
       (Trace.contacts trace))

let repair_policy_skip () =
  let trace, report = get_ok (Trace_io.parse ~policy:Repair.Skip dirty) in
  Alcotest.(check int) "kept (duplicates stay)" 2 (Trace.n_contacts trace);
  Alcotest.(check int) "declared node count kept" 2 (Trace.n_nodes trace);
  Alcotest.(check int) "dropped" 7 (Repair.n_dropped report);
  Alcotest.(check int) "nothing repaired" 0 (Repair.n_repaired report)

let repair_report_format () =
  let _, report = get_ok (Trace_io.parse ~policy:Repair.Repair dirty) in
  let s = Format.asprintf "%a" Repair.pp report in
  List.iter
    (fun part ->
      Alcotest.(check bool) ("report mentions " ^ part) true (Util.contains_substring s part))
    [
      "repair-report policy=repair"; "kept=4"; "repaired=4"; "dropped=4";
      "action=dropped-self-loop"; "action=merged-duplicate"; "line=12";
    ]

let lenient_reversed_window () =
  let text = "# window 9 1\n0 1 2 5\n" in
  expect_code Err.Header ~line:1 (Trace_io.parse text);
  let trace, report = get_ok (Trace_io.parse ~policy:Repair.Repair text) in
  Alcotest.(check (float 0.)) "swapped lo" 1. (Trace.t_start trace);
  Alcotest.(check (float 0.)) "swapped hi" 9. (Trace.t_end trace);
  Alcotest.(check bool) "swap event" true
    (List.exists (fun (e : Repair.event) -> e.action = Repair.Swapped_window)
       report.Repair.events);
  (* Skip ignores the unusable header and infers the window instead *)
  let trace, _ = get_ok (Trace_io.parse ~policy:Repair.Skip text) in
  Alcotest.(check (float 0.)) "inferred lo" 2. (Trace.t_start trace);
  Alcotest.(check (float 0.)) "inferred hi" 5. (Trace.t_end trace)

(* --- fault injection --- *)

let clean_text = Trace_io.to_string (Util.random_trace (Rng.create 11) ~n:6 ~m:40 ~horizon:100)

let faultgen_deterministic () =
  List.iter
    (fun fault ->
      let a = Faultgen.apply ~seed:3 fault clean_text in
      let b = Faultgen.apply ~seed:3 fault clean_text in
      Alcotest.(check string) (Faultgen.name fault ^ " deterministic") a b)
    [
      Faultgen.Truncate 0.5; Faultgen.Mangle 0.25; Faultgen.Nan_times 0.25;
      Faultgen.Self_loop 0.25; Faultgen.Negative_id 0.25; Faultgen.Window_lie;
      Faultgen.Reorder; Faultgen.Duplicate 0.25;
    ]

let faultgen_names () =
  List.iter
    (fun n ->
      match Faultgen.of_name n with
      | Some f -> Alcotest.(check string) "name roundtrip" n (Faultgen.name f)
      | None -> Alcotest.failf "of_name %S failed" n)
    Faultgen.all_names

let faultgen_corpus () =
  let variants = Faultgen.corpus ~seed:5 clean_text in
  Alcotest.(check int) "six strict-breaking variants" 6 (List.length variants);
  List.iter
    (fun (name, text) ->
      (* strict rejects with a located typed error *)
      (match Trace_io.parse text with
      | Ok _ -> Alcotest.failf "strict accepted corpus variant %s" name
      | Error e ->
        Alcotest.(check bool) (name ^ " error has a line number") true (e.Err.line <> None));
      (* repair recovers with a non-clean report *)
      let _, report = get_ok (Trace_io.parse ~policy:Repair.Repair text) in
      Alcotest.(check bool) (name ^ " repair logged events") false (Repair.is_clean report);
      (* skip also gets through *)
      let _ = get_ok (Trace_io.parse ~policy:Repair.Skip text) in
      ())
    variants

let faultgen_benign_faults_parse () =
  (* reorder and duplicate corrupt the text without breaking strict parsing *)
  let reordered = Faultgen.apply ~seed:2 Faultgen.Reorder clean_text in
  let t = Trace_io.of_string reordered in
  Alcotest.(check int) "reorder preserves contacts" 40 (Trace.n_contacts t);
  let duplicated = Faultgen.apply ~seed:2 (Faultgen.Duplicate 0.5) clean_text in
  let t = Trace_io.of_string duplicated in
  Alcotest.(check bool) "duplicates kept by strict" true (Trace.n_contacts t > 40);
  let merged, report = get_ok (Trace_io.parse ~policy:Repair.Repair duplicated) in
  Alcotest.(check bool) "repair merges duplicates back" true
    (Trace.n_contacts merged <= 40
    && List.for_all
         (fun (e : Repair.event) -> e.action = Repair.Merged_duplicate)
         report.Repair.events)

(* --- atomic writes --- *)

let atomic_write_keeps_original () =
  let path = Filename.temp_file "omn_atomic" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Atomic_file.write_string path "original";
      (match Atomic_file.write path (fun oc -> output_string oc "half"; failwith "boom") with
      | exception Failure _ -> ()
      | () -> Alcotest.fail "write should have re-raised");
      Alcotest.(check string) "target untouched" "original" (Atomic_file.read_to_string path);
      let base = Filename.basename path in
      let leftovers =
        Sys.readdir (Filename.dirname path)
        |> Array.to_list
        |> List.filter (fun f -> f <> base && Util.contains_substring f base)
      in
      Alcotest.(check (list string)) "no temp leftovers" [] leftovers)

let atomic_trace_save () =
  let trace = Util.random_trace (Rng.create 3) ~n:5 ~m:12 ~horizon:40 in
  let dir = Filename.temp_file "omn_savedir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let path = Filename.concat dir "t.omn" in
      Trace_io.save trace path;
      Alcotest.(check (list string)) "exactly the trace file" [ "t.omn" ]
        (Sys.readdir dir |> Array.to_list);
      let reloaded = Trace_io.load path in
      Alcotest.(check int) "roundtrip" (Trace.n_contacts trace) (Trace.n_contacts reloaded))

(* --- checkpoint / resume / budget --- *)

let ckpt_trace = Util.random_trace (Rng.create 5) ~n:8 ~m:30 ~horizon:50

let grid = [| 1.; 2.; 5.; 10.; 25.; 50. |]

let curves_equal (a : Delay_cdf.curves) (b : Delay_cdf.curves) =
  a.grid = b.grid && a.hop_success = b.hop_success && a.hop_success_inf = b.hop_success_inf
  && a.flood_success = b.flood_success && a.flood_success_inf = b.flood_success_inf
  && a.max_rounds_used = b.max_rounds_used

let with_ckpt_file f =
  let path = Filename.temp_file "omn_ckpt" ".bin" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* One chunk per call: the zero budget expires right after the first
   chunk, so repeated resumed calls replay an interrupted run. *)
let step ?(domains = 1) path =
  Delay_cdf.compute_resumable ~max_hops:4 ~grid ~domains ~checkpoint_every:3 ~checkpoint:path
    ~resume:true ~budget_seconds:0. ckpt_trace

let ckpt_resume_bit_identical () =
  let full, progress =
    get_ok (Delay_cdf.compute_resumable ~max_hops:4 ~grid ~checkpoint_every:3 ckpt_trace)
  in
  Alcotest.(check bool) "uninterrupted run is complete" false progress.Delay_cdf.partial;
  with_ckpt_file (fun path ->
      let c1, p1 = get_ok (step path) in
      Alcotest.(check bool) "first step partial" true p1.Delay_cdf.partial;
      Alcotest.(check int) "first step did one chunk" 3 p1.Delay_cdf.sources_done;
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path);
      Alcotest.(check bool) "partial differs from full" false (curves_equal c1 full);
      let _, p2 = get_ok (step path) in
      Alcotest.(check int) "second step resumed" 6 p2.Delay_cdf.sources_done;
      let c3, p3 = get_ok (step path) in
      Alcotest.(check bool) "third step completes" false p3.Delay_cdf.partial;
      Alcotest.(check int) "all sources done" 8 p3.Delay_cdf.sources_done;
      Alcotest.(check bool) "checkpoint removed on completion" false (Sys.file_exists path);
      Alcotest.(check bool) "resumed run bit-identical to uninterrupted" true
        (curves_equal c3 full))

(* The determinism contract must hold through interruption: a run that
   checkpoints, resumes under 2 domains and completes gives exactly the
   curves of an uninterrupted sequential run. *)
let ckpt_resume_parallel_matches_sequential () =
  let full, _ =
    get_ok (Delay_cdf.compute_resumable ~max_hops:4 ~grid ~checkpoint_every:3 ckpt_trace)
  in
  with_ckpt_file (fun path ->
      let rec drive n =
        if n > 10 then Alcotest.fail "resumed run did not converge";
        let c, p = get_ok (step ~domains:2 path) in
        if p.Delay_cdf.partial then drive (n + 1) else c
      in
      let resumed = drive 0 in
      Alcotest.(check bool) "parallel resumed run bit-identical to sequential" true
        (curves_equal resumed full))

let ckpt_rejects_garbage () =
  with_ckpt_file (fun path ->
      Atomic_file.write_string path "not a checkpoint at all";
      expect_code Err.Checkpoint (step path))

let ckpt_rejects_tampering () =
  with_ckpt_file (fun path ->
      let _, _ = get_ok (step path) in
      let data = Atomic_file.read_to_string path in
      let tampered = Bytes.of_string data in
      let i = Bytes.length tampered - 1 in
      Bytes.set tampered i (Char.chr (Char.code (Bytes.get tampered i) lxor 0xff));
      Atomic_file.write_string path (Bytes.to_string tampered);
      expect_code Err.Checkpoint (step path))

let ckpt_rejects_parameter_mismatch () =
  with_ckpt_file (fun path ->
      let _, _ = get_ok (step path) in
      (* same trace, different max_hops -> different fingerprint *)
      expect_code Err.Checkpoint
        (Delay_cdf.compute_resumable ~max_hops:5 ~grid ~checkpoint_every:3 ~checkpoint:path
           ~resume:true ckpt_trace))

let ckpt_usage_errors () =
  expect_code Err.Usage (Delay_cdf.compute_resumable ~max_hops:0 ~grid ckpt_trace);
  expect_code Err.Usage (Delay_cdf.compute_resumable ~grid ~checkpoint_every:0 ckpt_trace);
  expect_code Err.Usage (Delay_cdf.compute_resumable ~grid ~budget_seconds:(-1.) ckpt_trace);
  expect_code Err.Usage (Diameter.measure_resumable ~epsilon:0. ~grid ckpt_trace)

let measure_resumable_complete () =
  let run = get_ok (Diameter.measure_resumable ~epsilon:0.01 ~max_hops:4 ~grid ckpt_trace) in
  Alcotest.(check bool) "complete" false run.Diameter.partial;
  Alcotest.(check int) "all sources" 8 run.Diameter.sources_total;
  let direct = Diameter.measure ~epsilon:0.01 ~max_hops:4 ~grid ckpt_trace in
  Alcotest.(check (option int)) "diameter agrees with measure" direct.Diameter.diameter
    run.Diameter.result.Diameter.diameter

let budget_partial_is_uniform_prefix () =
  let _, p =
    get_ok
      (Delay_cdf.compute_resumable ~max_hops:4 ~grid ~checkpoint_every:2 ~budget_seconds:0.
         ckpt_trace)
  in
  Alcotest.(check bool) "partial" true p.Delay_cdf.partial;
  Alcotest.(check int) "one chunk" 2 p.Delay_cdf.sources_done;
  Alcotest.(check int) "out of all" 8 p.Delay_cdf.sources_total

let suite =
  [
    Alcotest.test_case "exit codes" `Quick err_exit_codes;
    Alcotest.test_case "error formatting" `Quick err_formatting;
    Alcotest.test_case "strict rejects dirt" `Quick repair_policy_strict;
    Alcotest.test_case "repair policy" `Quick repair_policy_repair;
    Alcotest.test_case "skip policy" `Quick repair_policy_skip;
    Alcotest.test_case "repair report format" `Quick repair_report_format;
    Alcotest.test_case "reversed window header" `Quick lenient_reversed_window;
    Alcotest.test_case "faultgen determinism" `Quick faultgen_deterministic;
    Alcotest.test_case "faultgen names" `Quick faultgen_names;
    Alcotest.test_case "faultgen corpus recovery" `Quick faultgen_corpus;
    Alcotest.test_case "benign faults still parse" `Quick faultgen_benign_faults_parse;
    Alcotest.test_case "atomic write keeps original" `Quick atomic_write_keeps_original;
    Alcotest.test_case "atomic trace save" `Quick atomic_trace_save;
    Alcotest.test_case "checkpoint resume bit-identical" `Quick ckpt_resume_bit_identical;
    Alcotest.test_case "parallel resume matches sequential" `Quick
      ckpt_resume_parallel_matches_sequential;
    Alcotest.test_case "checkpoint rejects garbage" `Quick ckpt_rejects_garbage;
    Alcotest.test_case "checkpoint rejects tampering" `Quick ckpt_rejects_tampering;
    Alcotest.test_case "checkpoint rejects parameter mismatch" `Quick
      ckpt_rejects_parameter_mismatch;
    Alcotest.test_case "usage errors are typed" `Quick ckpt_usage_errors;
    Alcotest.test_case "measure_resumable complete" `Quick measure_resumable_complete;
    Alcotest.test_case "budget yields labelled partial" `Quick budget_partial_is_uniform_prefix;
  ]
