open Omn_randnet
module Rng = Omn_stats.Rng

(* --- Theory: closed forms --- *)

let h_properties () =
  Util.check_float "h 0" 0. (Theory.h 0.);
  Util.check_float "h 1" 0. (Theory.h 1.);
  Util.check_float "h max" (log 2.) (Theory.h 0.5);
  Util.check_float "h symmetric" (Theory.h 0.3) (Theory.h 0.7)

let g_properties () =
  Util.check_float "g 0" 0. (Theory.g 0.);
  Util.check_float "g 1" (2. *. log 2.) (Theory.g 1.)

let domain_checks () =
  let expect_invalid name f =
    match f () with exception Invalid_argument _ -> () | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "h outside" (fun () -> Theory.h 1.5);
  expect_invalid "g negative" (fun () -> Theory.g (-0.1));
  expect_invalid "lambda 0" (fun () -> Theory.exponent Short ~lambda:0. ~gamma:0.5)

let lambda_gen = QCheck2.Gen.float_range 0.05 5.

let exponent_max_is_max =
  QCheck2.Test.make ~count:300 ~name:"exponent_max/gamma_star maximise the curve"
    QCheck2.Gen.(pair lambda_gen (float_range 0.001 0.999))
    (fun (lambda, gamma) ->
      let check case =
        let peak = Theory.gamma_star case ~lambda in
        if peak = infinity then true
        else begin
          let m = Theory.exponent_max case ~lambda in
          Float.abs (Theory.exponent case ~lambda ~gamma:peak -. m) < 1e-9
          &&
          let gamma = match case with Theory.Short -> gamma | Theory.Long -> gamma *. 3. in
          Theory.exponent case ~lambda ~gamma <= m +. 1e-12
        end
      in
      check Theory.Short && check Theory.Long)

let short_max_closed_form =
  QCheck2.Test.make ~count:300 ~name:"short max = ln(1+lambda) at lambda/(1+lambda)"
    lambda_gen (fun lambda ->
      Float.abs (Theory.exponent_max Short ~lambda -. log (1. +. lambda)) < 1e-12
      && Float.abs (Theory.gamma_star Short ~lambda -. (lambda /. (1. +. lambda))) < 1e-12)

let tau_critical_inverse =
  QCheck2.Test.make ~count:300 ~name:"tau_critical = 1 / exponent_max" lambda_gen
    (fun lambda ->
      let check case =
        let m = Theory.exponent_max case ~lambda in
        let tau = Theory.tau_critical case ~lambda in
        if m = infinity then tau = 0. else Float.abs ((tau *. m) -. 1.) < 1e-12
      in
      check Theory.Short && check Theory.Long)

let hop_coefficient_limits () =
  (* Sparse limit: both cases tend to 1 (Fig. 3). *)
  Util.check_float ~eps:0.02 "short sparse" 1. (Theory.hop_coefficient Short ~lambda:0.01);
  Util.check_float ~eps:0.02 "long sparse" 1. (Theory.hop_coefficient Long ~lambda:0.01);
  Alcotest.(check bool) "long singular at 1" true
    (Theory.hop_coefficient Long ~lambda:1. = infinity);
  Util.check_float "long dense" (1. /. log 4.) (Theory.hop_coefficient Long ~lambda:4.)

let paths_exponent_signs () =
  (* Corollary 1: sign flips around tau_critical for gamma = gamma_star. *)
  let lambda = 0.5 in
  let gamma = Theory.gamma_star Short ~lambda in
  let tau_star = Theory.tau_critical Short ~lambda in
  Alcotest.(check bool) "subcritical negative" true
    (Theory.expected_paths_exponent Short ~lambda ~tau:(0.8 *. tau_star) ~gamma < 0.);
  Alcotest.(check bool) "supercritical positive" true
    (Theory.expected_paths_exponent Short ~lambda ~tau:(1.2 *. tau_star) ~gamma > 0.)

let supercritical_interval =
  QCheck2.Test.make ~count:200 ~name:"supercritical gamma interval brackets gamma_star"
    QCheck2.Gen.(pair (QCheck2.Gen.float_range 0.05 0.9) (QCheck2.Gen.float_range 1.05 4.))
    (fun (lambda, factor) ->
      let check case =
        let tau_star = Theory.tau_critical case ~lambda in
        match Theory.supercritical_gamma_interval case ~lambda ~tau:(factor *. tau_star) with
        | None -> false
        | Some (g1, g2) ->
          let peak = Theory.gamma_star case ~lambda in
          g1 <= peak +. 1e-6
          && peak <= g2 +. 1e-6
          && Theory.exponent case ~lambda ~gamma:(0.5 *. (g1 +. g2))
             >= (1. /. (factor *. tau_star)) -. 1e-6
      in
      check Theory.Short && check Theory.Long)

let subcritical_no_interval () =
  let lambda = 0.5 in
  let tau = 0.9 *. Theory.tau_critical Short ~lambda in
  Alcotest.(check bool) "below tau*: none" true
    (Theory.supercritical_gamma_interval Short ~lambda ~tau = None)

(* --- Discrete: slot edges --- *)

let slot_edges_valid =
  QCheck2.Test.make ~count:300 ~name:"slot edges: valid, distinct pairs"
    QCheck2.Gen.(pair int (int_range 2 30))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let lambda = 0.4 *. float_of_int n in
      let edges = Discrete.slot_edges rng { n; lambda } in
      List.for_all (fun (i, j) -> 0 <= i && i < j && j < n) edges
      && List.length (List.sort_uniq compare edges) = List.length edges)

let slot_edges_density () =
  let rng = Rng.create 77 in
  let n = 40 in
  let lambda = 4. in
  let runs = 3000 in
  let total = ref 0 in
  for _ = 1 to runs do
    total := !total + List.length (Discrete.slot_edges rng { n; lambda })
  done;
  let mean = float_of_int !total /. float_of_int runs in
  let expected = float_of_int (n * (n - 1) / 2) *. (lambda /. float_of_int n) in
  let sigma = sqrt (expected /. float_of_int runs) in
  Alcotest.(check bool)
    (Printf.sprintf "edge count mean %.2f vs %.2f" mean expected)
    true
    (Float.abs (mean -. expected) < (6. *. sigma) +. 0.2)

let slot_edges_near_saturation () =
  (* With p close to 1 nearly every pair appears; checks the skip-decoding
     across row boundaries. *)
  let rng = Rng.create 5 in
  let n = 12 in
  let edges = Discrete.slot_edges rng { n; lambda = float_of_int n -. 0.01 } in
  let total = n * (n - 1) / 2 in
  Alcotest.(check bool) "near complete" true (List.length edges > total * 9 / 10);
  Alcotest.(check int) "no duplicates" (List.length edges)
    (List.length (List.sort_uniq compare edges))

(* --- Discrete: relax_slot semantics --- *)

let short_one_hop_per_slot () =
  let reach = [| 0; max_int; max_int; max_int |] in
  let chain = [ (0, 1); (1, 2); (2, 3) ] in
  Discrete.relax_slot ~case:Theory.Short reach chain;
  Alcotest.(check int) "one hop" 1 reach.(1);
  Alcotest.(check bool) "no chaining" true (reach.(2) = max_int && reach.(3) = max_int);
  Discrete.relax_slot ~case:Theory.Short reach chain;
  Alcotest.(check int) "second slot" 2 reach.(2)

let long_chains_within_slot () =
  let reach = [| 0; max_int; max_int; max_int |] in
  let chain = [ (0, 1); (1, 2); (2, 3) ] in
  Discrete.relax_slot ~case:Theory.Long reach chain;
  Alcotest.(check int) "hop 1" 1 reach.(1);
  Alcotest.(check int) "hop 2" 2 reach.(2);
  Alcotest.(check int) "hop 3" 3 reach.(3)

(* Long-contact flooding agrees with Journey on the materialised trace. *)
let long_flood_matches_journey =
  QCheck2.Test.make ~count:40 ~name:"min_hops_within Long = hop-bounded Journey on to_trace"
    QCheck2.Gen.int
    (fun seed ->
      let params = { Discrete.n = 12; lambda = 1.2 } in
      let deadline = 6 in
      let reach =
        Discrete.min_hops_within (Rng.create seed) params ~source:0 ~case:Theory.Long ~deadline
      in
      let trace = Discrete.to_trace (Rng.create seed) params ~slots:deadline in
      let ok = ref true in
      for k = 1 to 5 do
        let frontiers = Omn_core.Journey.frontiers_at_hops trace ~source:0 ~max_hops:k in
        for v = 1 to 11 do
          let journey_reaches = Omn_core.Frontier.delivery frontiers.(v) 0. < infinity in
          let flood_reaches = reach.(v) <= k in
          if journey_reaches <> flood_reaches then ok := false
        done
      done;
      !ok)

let flood_records_first_arrival =
  QCheck2.Test.make ~count:60 ~name:"flood arrival/hops coherent" QCheck2.Gen.int
    (fun seed ->
      let params = { Discrete.n = 30; lambda = 1.0 } in
      let result = Discrete.flood (Rng.create seed) params ~source:0 ~case:Theory.Short ~t_max:30 in
      let ok = ref true in
      Array.iteri
        (fun v arrival ->
          let hops = result.hops.(v) in
          if v = 0 then begin
            if arrival <> 0 || hops <> 0 then ok := false
          end
          else if arrival = max_int then begin
            if hops <> max_int then ok := false
          end
          else if hops < 1 || hops > arrival then ok := false
          (* short contacts: at most one hop per slot *))
        result.arrival;
      !ok)

(* --- Continuous --- *)

let continuous_structure =
  QCheck2.Test.make ~count:60 ~name:"continuous traces are point contacts in window"
    QCheck2.Gen.int
    (fun seed ->
      let trace =
        Continuous.generate (Rng.create seed) { n = 15; lambda = 0.4; horizon = 50. }
      in
      Omn_temporal.Trace.fold
        (fun acc (c : Omn_temporal.Contact.t) ->
          acc && c.t_beg = c.t_end && 0. <= c.t_beg && c.t_beg <= 50.)
        true trace)

let continuous_rate () =
  let rng = Rng.create 123 in
  let params = { Continuous.n = 20; lambda = 0.5; horizon = 200. } in
  let runs = 50 in
  let total = ref 0 in
  for _ = 1 to runs do
    total := !total + Omn_temporal.Trace.n_contacts (Continuous.generate (Rng.split rng) params)
  done;
  let mean = float_of_int !total /. float_of_int runs in
  let expected = float_of_int params.n *. params.lambda *. params.horizon /. 2. in
  let sigma = sqrt (expected /. float_of_int runs) in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f vs %.1f" mean expected)
    true
    (Float.abs (mean -. expected) < 6. *. sigma)

(* --- Phase --- *)

let phase_extremes () =
  let rng = Rng.create 9 in
  let params = { Discrete.n = 100; lambda = 0.5 } in
  let tau_star = Theory.tau_critical Short ~lambda:0.5 in
  let low =
    Phase.unconstrained_curve rng params ~case:Theory.Short ~taus:[| 0.2 *. tau_star |] ~runs:60
  in
  let high =
    Phase.unconstrained_curve rng params ~case:Theory.Short ~taus:[| 4. *. tau_star |] ~runs:60
  in
  Alcotest.(check bool) "far subcritical mostly fails" true (snd low.(0) < 0.35);
  Alcotest.(check bool) "far supercritical mostly succeeds" true (snd high.(0) > 0.9)

let phase_hop_budget_binds () =
  let rng = Rng.create 10 in
  let params = { Discrete.n = 100; lambda = 0.5 } in
  let tau = 2. *. Theory.tau_critical Short ~lambda:0.5 in
  let tight = Phase.success_probability rng params ~case:Theory.Short ~tau ~gamma:0.05 ~runs:60 in
  let loose = Phase.success_probability rng params ~case:Theory.Short ~tau ~gamma:1. ~runs:60 in
  Alcotest.(check bool) "hop budget reduces success" true (tight <= loose)

(* omn_parallel determinism contract: every Monte-Carlo estimator must
   be bit-identical under any domain count — RNG streams are pre-split
   sequentially and per-run results reduce in run order. *)
let estimators_parallel_bit_identical () =
  let params = { Discrete.n = 40; lambda = 0.4 } in
  let seq f = f ?pool:None ?domains:None in
  let par f = f ?pool:None ?domains:(Some 2) in
  let phase ?pool ?domains () =
    Phase.success_probability ?pool ?domains (Rng.create 21) params ~case:Theory.Short ~tau:1.5
      ~gamma:0.5 ~runs:24
  in
  Alcotest.(check bool) "success_probability" true (seq phase () = par phase ());
  let curve ?pool ?domains () =
    Phase.transition_curve ?pool ?domains (Rng.create 22) params ~case:Theory.Long ~gamma:0.5
      ~taus:[| 0.5; 1.5 |] ~runs:12
  in
  Alcotest.(check bool) "transition_curve" true (seq curve () = par curve ());
  let count ?pool ?domains () =
    Path_count.mean_count ?pool ?domains (Rng.create 23) params ~case:Theory.Short ~tau:1.
      ~gamma:0.8 ~runs:16
  in
  Alcotest.(check bool) "mean_count" true (seq count () = par count ());
  let cparams = { Continuous.n = 12; lambda = 0.3; horizon = 20. } in
  let delay ?pool ?domains () =
    Continuous.mean_delay_estimate ?pool ?domains (Rng.create 24) cparams ~runs:16
  in
  Alcotest.(check bool) "mean_delay_estimate" true (seq delay () = par delay ());
  Omn_parallel.Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check bool) "shared pool" true
        (seq phase () = phase ?pool:(Some pool) ?domains:None ()))

(* Fig. 3 statistical check kept loose: shape, not constants. *)
let hops_track_theory () =
  let rng = Rng.create 11 in
  let params = { Discrete.n = 300; lambda = 2. } in
  let samples = Discrete.delay_hops_sample rng params ~case:Theory.Short ~runs:40 ~t_max:100 in
  let mean =
    List.fold_left (fun acc (_, h) -> acc +. float_of_int h) 0. samples
    /. float_of_int (max 1 (List.length samples))
  in
  let predicted = Theory.expected_hops Short ~lambda:2. ~n:300 in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.2f vs theory %.2f" mean predicted)
    true
    (Float.abs (mean -. predicted) < 0.45 *. predicted)

let suite =
  [
    Alcotest.test_case "entropy h" `Quick h_properties;
    Alcotest.test_case "function g" `Quick g_properties;
    Alcotest.test_case "domain validation" `Quick domain_checks;
    Alcotest.test_case "hop coefficient limits" `Quick hop_coefficient_limits;
    Alcotest.test_case "expected-paths exponent signs" `Quick paths_exponent_signs;
    Alcotest.test_case "no interval below tau*" `Quick subcritical_no_interval;
    Alcotest.test_case "slot edge density" `Slow slot_edges_density;
    Alcotest.test_case "slot edges near saturation" `Quick slot_edges_near_saturation;
    Alcotest.test_case "short: one hop per slot" `Quick short_one_hop_per_slot;
    Alcotest.test_case "long: chains within slot" `Quick long_chains_within_slot;
    Alcotest.test_case "continuous contact volume" `Slow continuous_rate;
    Alcotest.test_case "phase transition extremes" `Slow phase_extremes;
    Alcotest.test_case "hop budget binds" `Slow phase_hop_budget_binds;
    Alcotest.test_case "parallel estimators bit-identical" `Quick
      estimators_parallel_bit_identical;
    Alcotest.test_case "simulated hops track theory" `Slow hops_track_theory;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        exponent_max_is_max; short_max_closed_form; tau_critical_inverse;
        supercritical_interval; slot_edges_valid; long_flood_matches_journey;
        flood_records_first_arrival; continuous_structure;
      ]

(* --- Renewal --- *)

let renewal_gap_means () =
  let rng = Rng.create 88 in
  List.iter
    (fun law ->
      let n = 30_000 and mean = 12. in
      let sum = ref 0. in
      for _ = 1 to n do
        sum := !sum +. Renewal.sample_gap rng law ~mean
      done;
      let measured = !sum /. float_of_int n in
      (* Pareto(1.5) has infinite variance: give it extra slack. *)
      let tol = match law with Renewal.Pareto _ -> 2.5 | _ -> 0.4 in
      if Float.abs (measured -. mean) > tol then
        Alcotest.failf "gap mean %.2f (expected %.1f)" measured mean)
    [ Renewal.Exponential; Renewal.Uniform; Renewal.Log_normal 1.0; Renewal.Pareto 1.5 ]

let renewal_trace_structure =
  QCheck2.Test.make ~count:40 ~name:"renewal traces: point contacts in window"
    QCheck2.Gen.int
    (fun seed ->
      let trace =
        Renewal.generate (Rng.create seed)
          { n = 10; lambda = 0.8; horizon = 40.; law = Renewal.Uniform }
      in
      Omn_temporal.Trace.fold
        (fun acc (c : Omn_temporal.Contact.t) ->
          acc && c.t_beg = c.t_end && 0. <= c.t_beg && c.t_beg <= 40.)
        true trace)

let renewal_exponential_is_poisson () =
  (* With the exponential law the contact volume matches the Poisson
     model: n * lambda * horizon / 2 on average. *)
  let rng = Rng.create 89 in
  let params = { Renewal.n = 20; lambda = 0.5; horizon = 200.; law = Renewal.Exponential } in
  let runs = 40 in
  let total = ref 0 in
  for _ = 1 to runs do
    total := !total + Omn_temporal.Trace.n_contacts (Renewal.generate (Rng.split rng) params)
  done;
  let mean = float_of_int !total /. float_of_int runs in
  let expected = float_of_int params.n *. params.lambda *. params.horizon /. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.0f vs %.0f" mean expected)
    true
    (Float.abs (mean -. expected) /. expected < 0.12)

let renewal_stats_sane () =
  let rng = Rng.create 90 in
  let stats =
    Renewal.optimal_path_stats rng
      { n = 20; lambda = 0.6; horizon = 150.; law = Renewal.Exponential }
      ~runs:15
  in
  Alcotest.(check bool) "some deliveries" true (stats.runs_delivered > 0);
  Alcotest.(check bool) "hops >= 1" true (stats.hops_mean >= 1.);
  Alcotest.(check bool) "delay positive" true (stats.delay_mean > 0.)

(* --- Path counting --- *)

let count_paths_by_hand () =
  (* Drive the DP with a deterministic edge schedule by rebuilding it via
     relax-free counting: use a 3-node network and lambda tiny so slots
     are usually empty, then check the Monte-Carlo mean against an exact
     enumeration on the trace materialisation for a fixed seed. *)
  let params = { Discrete.n = 4; lambda = 1.5 } in
  let seed = 4242 in
  let deadline = 4 and max_hops = 3 in
  let counted =
    Path_count.count_paths (Rng.create seed) params ~case:Theory.Short ~deadline ~max_hops
  in
  (* Exhaustive reference: enumerate strictly-increasing-slot edge
     sequences on the same sampled slots. *)
  let slots =
    List.init deadline (fun _ -> ()) |> fun l ->
    let rng = Rng.create seed in
    List.map (fun () -> Discrete.slot_edges rng params) l
  in
  let rec extend node slot_idx hops =
    if hops = 0 then 0.
    else
      List.fold_left
        (fun acc (slot, edges) ->
          if slot >= slot_idx then
            List.fold_left
              (fun acc (u, v) ->
                if u = node || v = node then begin
                  let peer = if u = node then v else u in
                  let sub = if peer = 1 then 1. else 0. in
                  acc +. sub +. extend peer (slot + 1) (hops - 1)
                end
                else acc)
              acc edges
          else acc)
        0.
        (List.mapi (fun i e -> (i, e)) slots)
  in
  let expected = extend 0 0 max_hops in
  Util.check_float "path count" expected counted

let count_paths_monotone =
  QCheck2.Test.make ~count:60 ~name:"path count non-decreasing in budgets" QCheck2.Gen.int
    (fun seed ->
      let params = { Discrete.n = 15; lambda = 1.0 } in
      let count ~deadline ~max_hops =
        Path_count.count_paths (Rng.create seed) params ~case:Theory.Short ~deadline ~max_hops
      in
      count ~deadline:3 ~max_hops:3 <= count ~deadline:6 ~max_hops:3
      && count ~deadline:6 ~max_hops:2 <= count ~deadline:6 ~max_hops:4)

let count_paths_long_geq_short =
  QCheck2.Test.make ~count:60 ~name:"long-contact counts >= short-contact counts"
    QCheck2.Gen.int
    (fun seed ->
      let params = { Discrete.n = 12; lambda = 1.2 } in
      let run case =
        Path_count.count_paths (Rng.create seed) params ~case ~deadline:5 ~max_hops:4
      in
      run Theory.Long >= run Theory.Short)

let suite =
  suite
  @ [
      Alcotest.test_case "renewal gap means" `Slow renewal_gap_means;
      Alcotest.test_case "renewal exponential = Poisson volume" `Slow
        renewal_exponential_is_poisson;
      Alcotest.test_case "renewal path stats" `Slow renewal_stats_sane;
      Alcotest.test_case "path count vs exhaustive" `Quick count_paths_by_hand;
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [ renewal_trace_structure; count_paths_monotone; count_paths_long_geq_short ]
