(* Statistical pin of the sampled (1-eps)-diameter estimator.

   Three layers of evidence, all deterministic (seeded; a failure
   prints the seeds to replay):

   - {e exactness}: with the sample covering every source, the
     estimator must reproduce [Diameter.measure] bit-for-bit — curves,
     diameter, zero-width CI — across ~100 instances of the four
     generator families;
   - {e coverage}: across >= 200 seeded instances, the reported CI must
     contain the exact (1-eps)-diameter at at least the nominal rate.
     The test checks its own power by mutation: re-running with
     [set_perturb] shifting every derived diameter must collapse the
     coverage, proving the assertion would catch a biased estimator;
   - {e mechanics}: typed Usage rejections for every bad parameter,
     budget truncation ([partial = true] after at least one round), and
     killed-and-resumed runs bit-identical to uninterrupted ones. *)

module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Diameter = Omn_core.Diameter
module Est = Omn_core.Diameter_est
module Err = Omn_robust.Err

let epsilon = 0.05
let max_hops = 4
let grid = Omn_stats.Grid.logarithmic ~lo:1. ~hi:50. ~n:25

let cap_contacts max_contacts trace =
  let cs = Trace.contacts trace in
  if Array.length cs <= max_contacts then trace
  else
    Trace.create ~name:(Trace.name trace) ~n_nodes:(Trace.n_nodes trace)
      ~t_start:(Trace.t_start trace) ~t_end:(Trace.t_end trace)
      (Array.to_list (Array.sub cs 0 max_contacts))

let instance seed =
  let rng = Rng.create seed in
  match seed mod 4 with
  | 0 -> Util.random_trace rng ~n:(4 + Rng.int rng 4) ~m:(8 + Rng.int rng 16) ~horizon:20
  | 1 ->
    cap_contacts 40
      (Omn_randnet.Continuous.generate rng
         { n = 4 + Rng.int rng 4; lambda = 0.5; horizon = 12. })
  | 2 ->
    cap_contacts 40
      (Omn_mobility.Random_waypoint.generate rng
         {
           n = 5;
           area = 120.;
           v_min = 0.5;
           v_max = 1.5;
           mean_pause = 10.;
           range = 40.;
           horizon = 300.;
           dt = 5.;
         })
  | _ ->
    let n = 5 in
    let params = Omn_mobility.Venue.conference_params ~rng ~n ~days:0.1 in
    cap_contacts 40 (Omn_mobility.Venue.generate rng ~n ~name:"sample-venue" params)

let get = function
  | Ok e -> e
  | Error e -> Alcotest.failf "estimate failed: %a" Err.pp e

(* --- exactness: sample = all sources is the exact engine --- *)

let test_exhaustive_identity () =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun seed ->
      let trace = instance seed in
      let exact = Diameter.measure ~epsilon ~max_hops ~grid trace in
      let est =
        get
          (Est.estimate ~epsilon ~max_hops ~grid ~sample:(Trace.n_nodes trace) ~seed trace)
      in
      if not est.Est.exhaustive then err "seed %d: not exhaustive" seed;
      if est.Est.diameter <> exact.Diameter.diameter then
        err "seed %d: diameter mismatch" seed;
      (* structural equality on the curves record is float-bit equality *)
      if est.Est.curves <> exact.Diameter.curves then err "seed %d: curves differ" seed;
      if est.Est.ci_lo <> exact.Diameter.diameter || est.Est.ci_hi <> exact.Diameter.diameter
      then err "seed %d: exhaustive CI is not the point" seed;
      if est.Est.ci_width <> 0. then err "seed %d: exhaustive CI width %g" seed est.Est.ci_width)
    (List.init 100 (fun i -> 9000 + i));
  match !errs with
  | [] -> ()
  | first :: _ ->
    Alcotest.failf "%d identity failure(s) across 100 instances; first: %s"
      (List.length !errs) first

(* --- statistical coverage, mutation-checked --- *)

let n_coverage = 200
let confidence = 0.8

let to_sent = function Some k -> k | None -> max_hops + 1

(* One coverage experiment: does the CI of a 3-source sample of this
   instance contain the exact all-sources diameter? *)
let covered seed =
  let trace = instance seed in
  let exact = to_sent (Diameter.measure ~epsilon ~max_hops ~grid trace).Diameter.diameter in
  let est =
    get
      (Est.estimate ~epsilon ~max_hops ~grid ~sample:3 ~seed ~ci_width:10. ~confidence
         ~bootstrap:60 trace)
  in
  let lo = to_sent est.Est.ci_lo and hi = to_sent est.Est.ci_hi in
  (lo <= exact && exact <= hi, seed)

let coverage_rate () =
  let results = List.map covered (List.init n_coverage (fun i -> 9500 + i)) in
  let missed = List.filter_map (fun (ok, seed) -> if ok then None else Some seed) results in
  (float_of_int (n_coverage - List.length missed) /. float_of_int n_coverage, missed)

let test_coverage () =
  let rate, missed = coverage_rate () in
  if rate < confidence then
    Alcotest.failf "CI coverage %.3f below nominal %.2f; missed seeds: %s" rate confidence
      (String.concat ", " (List.map string_of_int missed))

let test_coverage_mutation () =
  (* A broken estimator that biases every derived diameter by +2 hops
     must be caught by the coverage assertion — otherwise the coverage
     test has no power and proves nothing. *)
  let shift = function Some k -> Some (k + 2) | None -> Some (max_hops + 3) in
  Est.set_perturb (Some shift);
  let rate, _ =
    Fun.protect ~finally:(fun () -> Est.set_perturb None) coverage_rate
  in
  if rate >= confidence then
    Alcotest.failf
      "mutated estimator still passes coverage (%.3f >= %.2f): the assertion has no power"
      rate confidence

(* --- typed rejections --- *)

let test_rejections () =
  let trace = instance 9100 in
  let expect_usage label result =
    match result with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error (e : Err.t) ->
      if e.Err.code <> Err.Usage then Alcotest.failf "%s: wrong code: %a" label Err.pp e
  in
  expect_usage "sample 0" (Est.estimate ~sample:0 trace);
  expect_usage "sample -3" (Est.estimate ~sample:(-3) trace);
  expect_usage "ci_width 0" (Est.estimate ~sample:2 ~ci_width:0. trace);
  expect_usage "ci_width < 0" (Est.estimate ~sample:2 ~ci_width:(-1.) trace);
  expect_usage "epsilon 0" (Est.estimate ~sample:2 ~epsilon:0. trace);
  expect_usage "epsilon 1" (Est.estimate ~sample:2 ~epsilon:1. trace);
  expect_usage "epsilon 1.5" (Est.estimate ~sample:2 ~epsilon:1.5 trace);
  expect_usage "confidence 0" (Est.estimate ~sample:2 ~confidence:0. trace);
  expect_usage "confidence 1" (Est.estimate ~sample:2 ~confidence:1. trace);
  expect_usage "bootstrap 0" (Est.estimate ~sample:2 ~bootstrap:0 trace);
  expect_usage "max_hops 0" (Est.estimate ~sample:2 ~max_hops:0 trace);
  expect_usage "negative budget" (Est.estimate ~sample:2 ~budget_seconds:(-1.) trace);
  expect_usage "empty windows" (Est.estimate ~sample:2 ~windows:[] trace);
  expect_usage "reversed window" (Est.estimate ~sample:2 ~windows:[ (5., 1.) ] trace)

(* --- budget truncation --- *)

(* A perturbation with internal state makes successive derived
   diameters differ, so the bootstrap CI never reaches zero width and
   the width target below is unreachable — the only way out is the
   budget. *)
let jitter () =
  let c = ref 0 in
  fun d ->
    incr c;
    Some (to_sent d + (!c mod 2))

let test_budget_partial () =
  let trace = Util.random_trace (Rng.create 77) ~n:10 ~m:40 ~horizon:20 in
  Est.set_perturb (Some (jitter ()));
  Fun.protect ~finally:(fun () -> Est.set_perturb None) @@ fun () ->
  let c = ref 0. in
  let clock () =
    c := !c +. 1.;
    !c
  in
  let est =
    get
      (Est.estimate ~epsilon ~max_hops ~grid ~sample:2 ~ci_width:0.001 ~bootstrap:20
         ~budget_seconds:0. ~clock trace)
  in
  Alcotest.(check bool) "partial" true est.Est.partial;
  Alcotest.(check int) "one round" 1 est.Est.rounds;
  Alcotest.(check int) "sampled 2" 2 est.Est.sampled;
  Alcotest.(check bool) "not exhaustive" false est.Est.exhaustive

(* --- checkpoint / resume determinism --- *)

let same_estimate a b =
  a.Est.diameter = b.Est.diameter && a.Est.curves = b.Est.curves && a.Est.ci_lo = b.Est.ci_lo
  && a.Est.ci_hi = b.Est.ci_hi && a.Est.ci_width = b.Est.ci_width
  && a.Est.sampled = b.Est.sampled && a.Est.rounds = b.Est.rounds
  && a.Est.exhaustive = b.Est.exhaustive

let test_resume_identity () =
  (* Seed picked so the reference run needs several doubling rounds and
     only converges on exhaustion (round-1 bootstrap width > target). *)
  let trace = Util.random_trace (Rng.create 60) ~n:12 ~m:50 ~horizon:20 in
  let params f =
    f ~epsilon ~max_hops ~grid ~sample:2 ~seed:3 ~ci_width:0.001 ~bootstrap:30 trace
  in
  (* Uninterrupted reference: an unreachable width target, so the run
     tightens all the way to exhaustive (where width 0 converges). *)
  let fresh = get (params (fun ~epsilon ~max_hops ~grid ~sample ~seed ~ci_width ~bootstrap t ->
    Est.estimate ~epsilon ~max_hops ~grid ~sample ~seed ~ci_width ~bootstrap t))
  in
  Alcotest.(check bool) "reference is exhaustive" true fresh.Est.exhaustive;
  Alcotest.(check bool) "reference took several rounds" true (fresh.Est.rounds > 1);
  let ckpt = Filename.temp_file "omn_est" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Omn_robust.Checkpoint.remove ckpt)
    (fun () ->
      (* Interrupt after the first round (fake clock expires a zero
         budget), then resume without one. *)
      let c = ref 0. in
      let clock () =
        c := !c +. 1.;
        !c
      in
      let truncated =
        get
          (params (fun ~epsilon ~max_hops ~grid ~sample ~seed ~ci_width ~bootstrap t ->
               Est.estimate ~epsilon ~max_hops ~grid ~sample ~seed ~ci_width ~bootstrap
                 ~checkpoint:ckpt ~budget_seconds:0. ~clock t))
      in
      Alcotest.(check bool) "interrupted run is partial" true truncated.Est.partial;
      let resumed =
        get
          (params (fun ~epsilon ~max_hops ~grid ~sample ~seed ~ci_width ~bootstrap t ->
               Est.estimate ~epsilon ~max_hops ~grid ~sample ~seed ~ci_width ~bootstrap
                 ~checkpoint:ckpt ~resume:true t))
      in
      if not (same_estimate fresh resumed) then
        Alcotest.failf
          "resumed run differs from uninterrupted run (rounds %d vs %d, sampled %d vs %d)"
          resumed.Est.rounds fresh.Est.rounds resumed.Est.sampled fresh.Est.sampled)

let suite =
  [
    Alcotest.test_case "typed Usage rejections" `Quick test_rejections;
    Alcotest.test_case "budget truncation: partial after one round" `Quick test_budget_partial;
    Alcotest.test_case "killed-and-resumed = uninterrupted" `Quick test_resume_identity;
    Alcotest.test_case "sample=all is bit-identical to the exact engine (100 instances)" `Slow
      test_exhaustive_identity;
    Alcotest.test_case "CI coverage >= nominal (200 instances)" `Slow test_coverage;
    Alcotest.test_case "coverage assertion has power (mutation check)" `Slow
      test_coverage_mutation;
  ]
