(* Corner coverage for small public APIs not exercised elsewhere. *)

module Rng = Omn_stats.Rng

let node_naming () =
  let naming = Omn_temporal.Node.naming_create () in
  let a = Omn_temporal.Node.intern naming "imote-07" in
  let b = Omn_temporal.Node.intern naming "imote-12" in
  let a' = Omn_temporal.Node.intern naming "imote-07" in
  Alcotest.(check int) "dense ids" 0 a;
  Alcotest.(check int) "next id" 1 b;
  Alcotest.(check int) "stable" a a';
  Alcotest.(check int) "size" 2 (Omn_temporal.Node.size naming);
  Alcotest.(check (option string)) "reverse" (Some "imote-12") (Omn_temporal.Node.name naming b);
  Alcotest.(check (option int)) "find" (Some 0) (Omn_temporal.Node.find naming "imote-07");
  Alcotest.(check (option string)) "unknown id" None (Omn_temporal.Node.name naming 9)

let trace_with_name () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.) ] in
  let renamed = Omn_temporal.Trace.with_name trace "renamed" in
  Alcotest.(check string) "name" "renamed" (Omn_temporal.Trace.name renamed);
  Alcotest.(check int) "contacts preserved" 1 (Omn_temporal.Trace.n_contacts renamed)

let merge_rejects_mismatch () =
  let t1 = Util.trace_of_contacts ~n_nodes:2 [ (0, 1, 0., 1.) ] in
  let t2 = Util.trace_of_contacts ~n_nodes:3 [ (0, 2, 0., 1.) ] in
  match Omn_temporal.Transform.merge t1 t2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "node-count mismatch accepted"

let empirical_support_and_variance () =
  let d = Omn_stats.Empirical.of_weighted [| (2., 1.); (2., 1.); (6., 2.) |] in
  let support = Omn_stats.Empirical.support d in
  Alcotest.(check int) "merged duplicates" 2 (Array.length support);
  Alcotest.(check (float 1e-9)) "cumulative at 2" 2. (snd support.(0));
  Alcotest.(check (float 1e-9)) "mean" 4. (Omn_stats.Empirical.mean_finite d);
  Alcotest.(check (float 1e-9)) "variance" 4. (Omn_stats.Empirical.variance_finite d);
  Alcotest.(check (option (float 0.))) "min" (Some 2.) (Omn_stats.Empirical.min_finite d);
  Alcotest.(check (option (float 0.))) "max" (Some 6.) (Omn_stats.Empirical.max_finite d)

let grid_named_delays () =
  let names = List.map fst Omn_stats.Grid.delay_named in
  Alcotest.(check bool) "starts at 2 min" true (List.hd names = "2 min");
  let values = List.map snd Omn_stats.Grid.delay_named in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending" true (ascending values)

let timefmt_pp () =
  Alcotest.(check string) "pp_duration" "2.0 min"
    (Format.asprintf "%a" Omn_stats.Timefmt.pp_duration 120.)

let delivery_plot () =
  let d =
    Omn_core.Delivery.of_descriptors [| Omn_core.Ld_ea.make ~ld:10. ~ea:5. |]
  in
  let points = Omn_core.Delivery.plot d ~times:[| 0.; 7.; 20. |] in
  Alcotest.(check int) "points" 3 (Array.length points);
  Util.check_float "before" 5. (snd points.(0));
  Util.check_float "inside" 7. (snd points.(1));
  Util.check_float "after" infinity (snd points.(2))

let theory_long_supercritical_interval () =
  (* lambda >= 1, long contacts: any tau is supercritical; gamma2 is the
     documented search cap. *)
  match
    Omn_randnet.Theory.supercritical_gamma_interval Omn_randnet.Theory.Long ~lambda:1.5
      ~tau:0.05
  with
  | None -> Alcotest.fail "expected an interval"
  | Some (g1, g2) ->
    Alcotest.(check bool) "nonempty" true (g1 < g2);
    Alcotest.(check bool) "g1 positive" true (g1 > 0.)

let journey_max_rounds_guard () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.); (1, 2, 2., 3.); (2, 3, 4., 5.) ] in
  match Omn_core.Journey.run ~max_rounds:1 trace ~source:0 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected max_rounds failure"

let frontier_copy_independent () =
  let f = Omn_core.Frontier.create () in
  ignore (Omn_core.Frontier.insert f (Omn_core.Ld_ea.make ~ld:1. ~ea:0.));
  let g = Omn_core.Frontier.copy f in
  ignore (Omn_core.Frontier.insert g (Omn_core.Ld_ea.make ~ld:2. ~ea:1.));
  Alcotest.(check int) "original untouched" 1 (Omn_core.Frontier.size f);
  Alcotest.(check int) "copy grew" 2 (Omn_core.Frontier.size g)

let discrete_flood_long_coherent () =
  let rng = Rng.create 5 in
  let params = { Omn_randnet.Discrete.n = 25; lambda = 1.0 } in
  let result =
    Omn_randnet.Discrete.flood rng params ~source:0 ~case:Omn_randnet.Theory.Long ~t_max:25
  in
  Array.iteri
    (fun v arrival ->
      if v <> 0 && arrival <> max_int then begin
        Alcotest.(check bool) "arrival positive" true (arrival >= 1);
        Alcotest.(check bool) "hops at least 1" true (result.hops.(v) >= 1)
      end)
    result.arrival

let protocol_names_unique () =
  let protocols =
    Omn_forwarding.Protocol.
      [
        Epidemic { ttl = None }; Epidemic { ttl = Some 3 }; Direct; Two_hop;
        Spray_and_wait { copies = 4 }; First_contact; Last_encounter;
      ]
  in
  let names = List.map Omn_forwarding.Protocol.name protocols in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let spray_hop_bounds () =
  let bound c =
    Omn_forwarding.Protocol.hop_bound (Omn_forwarding.Protocol.Spray_and_wait { copies = c })
  in
  Alcotest.(check (option int)) "1 copy = direct" (Some 1) (bound 1);
  Alcotest.(check (option int)) "2 copies" (Some 2) (bound 2);
  Alcotest.(check (option int)) "8 copies" (Some 4) (bound 8)

let suite =
  [
    Alcotest.test_case "node naming" `Quick node_naming;
    Alcotest.test_case "trace rename" `Quick trace_with_name;
    Alcotest.test_case "merge node-count mismatch" `Quick merge_rejects_mismatch;
    Alcotest.test_case "empirical support/variance" `Quick empirical_support_and_variance;
    Alcotest.test_case "named delay landmarks" `Quick grid_named_delays;
    Alcotest.test_case "timefmt pretty-printer" `Quick timefmt_pp;
    Alcotest.test_case "delivery plot" `Quick delivery_plot;
    Alcotest.test_case "long-case supercritical interval" `Quick
      theory_long_supercritical_interval;
    Alcotest.test_case "journey max_rounds guard" `Quick journey_max_rounds_guard;
    Alcotest.test_case "frontier copy" `Quick frontier_copy_independent;
    Alcotest.test_case "long-case flood coherent" `Quick discrete_flood_long_coherent;
    Alcotest.test_case "protocol names unique" `Quick protocol_names_unique;
    Alcotest.test_case "spray hop bounds" `Quick spray_hop_bounds;
  ]
