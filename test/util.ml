(* Shared helpers for the test suites. *)

module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Contact = Omn_temporal.Contact

let trace_of_contacts ?(n_nodes = 0) ?(t_start = 0.) ?t_end contacts =
  let n_nodes =
    List.fold_left (fun acc (a, b, _, _) -> max acc (max a b + 1)) n_nodes contacts
  in
  let t_end =
    match t_end with
    | Some t -> t
    | None -> List.fold_left (fun acc (_, _, _, te) -> Float.max acc te) t_start contacts
  in
  let contacts =
    List.map (fun (a, b, t_beg, t_end) -> Contact.make ~a ~b ~t_beg ~t_end) contacts
  in
  Trace.create ~n_nodes ~t_start ~t_end contacts

(* A random small trace: n nodes, m contacts with integer-ish bounds in
   [0, horizon], durations geometric-ish. Integer grid keeps ties and
   exact-equality corner cases frequent, which is what we want to test. *)
let random_trace rng ~n ~m ~horizon =
  let contacts = ref [] in
  let made = ref 0 in
  while !made < m do
    let a = Rng.int rng n and b = Rng.int rng n in
    if a <> b then begin
      let t_beg = float_of_int (Rng.int rng horizon) in
      let dur = float_of_int (Rng.int rng (max 1 (horizon / 4))) in
      let t_end = Float.min (float_of_int horizon) (t_beg +. dur) in
      contacts := (min a b, max a b, t_beg, t_end) :: !contacts;
      incr made
    end
  done;
  trace_of_contacts ~n_nodes:n ~t_start:0. ~t_end:(float_of_int horizon) !contacts

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let check_float ?(eps = 1e-9) msg expected actual =
  if expected = infinity || actual = infinity then
    Alcotest.(check bool) (msg ^ " (inf)") (expected = infinity) (actual = infinity)
  else if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual
