open Omn_core
module Rng = Omn_stats.Rng

(* A space-time line 0-1-2-...: the only path to the far end uses n-1
   contacts, and that pair carries more than 1% of the flooding success,
   so the 99%-diameter is exactly n-1. *)
let line_diameter () =
  let n = 5 in
  let trace =
    Util.trace_of_contacts ~t_end:10.
      (List.init (n - 1) (fun i -> (i, i + 1, float_of_int i, float_of_int i +. 0.5)))
  in
  let grid = Omn_stats.Grid.linear ~lo:0.5 ~hi:10. ~n:30 in
  let result = Diameter.measure ~max_hops:8 ~grid trace in
  Alcotest.(check (option int)) "diameter" (Some (n - 1)) result.diameter

(* A hub topology: everyone meets node 0, pairwise paths need 2 hops. *)
let hub_diameter () =
  let spokes = 6 in
  let contacts =
    List.concat_map
      (fun round ->
        List.init spokes (fun i ->
            let t = float_of_int ((round * 20) + (2 * i)) in
            (0, i + 1, t, t +. 1.)))
      [ 0; 1; 2 ]
  in
  let trace = Util.trace_of_contacts ~t_end:60. contacts in
  let grid = Omn_stats.Grid.linear ~lo:1. ~hi:60. ~n:40 in
  let result = Diameter.measure ~max_hops:6 ~grid trace in
  Alcotest.(check (option int)) "diameter" (Some 2) result.diameter

(* Diameter honours epsilon: with a generous epsilon the line needs fewer
   hops (the far pairs' mass falls inside the tolerance). *)
let epsilon_matters () =
  let n = 5 in
  let trace =
    Util.trace_of_contacts ~t_end:10.
      (List.init (n - 1) (fun i -> (i, i + 1, float_of_int i, float_of_int i +. 0.5)))
  in
  let grid = Omn_stats.Grid.linear ~lo:0.5 ~hi:10. ~n:30 in
  let strict = Diameter.measure ~epsilon:0.001 ~max_hops:8 ~grid trace in
  let loose = Diameter.measure ~epsilon:0.9 ~max_hops:8 ~grid trace in
  Alcotest.(check (option int)) "strict" (Some (n - 1)) strict.diameter;
  Alcotest.(check bool) "loose is smaller" true
    (match loose.diameter with Some d -> d < n - 1 | None -> false)

let none_when_max_hops_low () =
  let n = 5 in
  let trace =
    Util.trace_of_contacts ~t_end:10.
      (List.init (n - 1) (fun i -> (i, i + 1, float_of_int i, float_of_int i +. 0.5)))
  in
  let grid = Omn_stats.Grid.linear ~lo:0.5 ~hi:10. ~n:20 in
  let result = Diameter.measure ~max_hops:2 ~grid trace in
  Alcotest.(check (option int)) "not reached" None result.diameter

let trace_gen =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* m = int_range 1 20 in
    let* seed = int in
    return (Util.random_trace (Rng.create seed) ~n ~m ~horizon:30))

(* The definition, checked directly against the curves. *)
let matches_definition =
  QCheck2.Test.make ~count:60 ~name:"of_curves agrees with the raw definition" trace_gen
    (fun trace ->
      let epsilon = 0.05 in
      let curves = Delay_cdf.compute ~max_hops:5 ~grid:[| 1.; 3.; 10.; 30. |] trace in
      let qualifies k =
        let row = curves.hop_success.(k - 1) in
        let ok = ref (curves.hop_success_inf.(k - 1) >= (1. -. epsilon) *. curves.flood_success_inf) in
        Array.iteri
          (fun i flood -> if row.(i) < (1. -. epsilon) *. flood then ok := false)
          curves.flood_success;
        !ok
      in
      let expected =
        let rec search k = if k > 5 then None else if qualifies k then Some k else search (k + 1) in
        search 1
      in
      Diameter.of_curves ~epsilon curves = expected)

let vs_delay_monotone_in_k =
  QCheck2.Test.make ~count:60 ~name:"vs_delay entries within [1, max_hops]" trace_gen
    (fun trace ->
      let curves = Delay_cdf.compute ~max_hops:5 ~grid:[| 1.; 3.; 10.; 30. |] trace in
      Array.for_all
        (fun (_, k) -> match k with None -> true | Some k -> 1 <= k && k <= 5)
        (Diameter.vs_delay curves))

let vs_delay_flood_zero () =
  (* No contacts at all: flooding never succeeds, diameter at any delay is 1. *)
  let trace = Omn_temporal.Trace.create ~n_nodes:3 ~t_start:0. ~t_end:10. [] in
  let curves = Delay_cdf.compute ~max_hops:3 ~grid:[| 1.; 5. |] trace in
  Array.iter
    (fun (_, k) -> Alcotest.(check (option int)) "trivially 1" (Some 1) k)
    (Diameter.vs_delay curves)

let rejects_bad_epsilon () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.) ] in
  let curves = Delay_cdf.compute ~max_hops:2 ~grid:[| 1. |] trace in
  match Diameter.of_curves ~epsilon:0. curves with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "epsilon = 0 accepted"

let suite =
  [
    Alcotest.test_case "line topology diameter = n-1" `Quick line_diameter;
    Alcotest.test_case "hub topology diameter = 2" `Quick hub_diameter;
    Alcotest.test_case "epsilon controls strictness" `Quick epsilon_matters;
    Alcotest.test_case "None when max_hops too low" `Quick none_when_max_hops_low;
    Alcotest.test_case "flood-zero delays report 1" `Quick vs_delay_flood_zero;
    Alcotest.test_case "rejects bad epsilon" `Quick rejects_bad_epsilon;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ matches_definition; vs_delay_monotone_in_k ]
