open Omn_core

(* Reference implementation: keep every point, filter dominated, sort. *)
let naive_pareto points =
  let keep p =
    not (List.exists (fun q -> (not (Ld_ea.equal p q)) && Ld_ea.dominates q p) points)
  in
  points |> List.filter keep |> List.sort_uniq Ld_ea.compare

let frontier_of_list points =
  let f = Frontier.create () in
  List.iter (fun p -> ignore (Frontier.insert f p)) points;
  f

(* The boxed-record frontier this repository shipped before the
   structure-of-arrays rewrite, kept verbatim (minus metrics) as a
   differential oracle: both implementations must produce identical
   [to_array] output on every insert sequence. *)
module Old_frontier = struct
  type t = { mutable data : Ld_ea.t array; mutable size : int }

  let create () = { data = [||]; size = 0 }
  let to_array t = Array.sub t.data 0 t.size

  let lower_ld t x =
    let lo = ref 0 and hi = ref t.size in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.data.(mid).Ld_ea.ld >= x then hi := mid else lo := mid + 1
    done;
    !lo

  let ensure_capacity t =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let fresh = Array.make (max 8 (2 * cap)) Ld_ea.identity in
      Array.blit t.data 0 fresh 0 t.size;
      t.data <- fresh
    end

  let insert t (p : Ld_ea.t) =
    let i = lower_ld t p.ld in
    if i < t.size && t.data.(i).Ld_ea.ea <= p.ea then false
    else begin
      let j =
        let lo = ref 0 and hi = ref i in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if t.data.(mid).Ld_ea.ea >= p.ea then hi := mid else lo := mid + 1
        done;
        !lo
      in
      let k = if i < t.size && t.data.(i).Ld_ea.ld = p.ld then i + 1 else i in
      let removed = k - j in
      if removed = 0 then begin
        ensure_capacity t;
        Array.blit t.data j t.data (j + 1) (t.size - j);
        t.data.(j) <- p;
        t.size <- t.size + 1
      end
      else begin
        t.data.(j) <- p;
        if removed > 1 then begin
          Array.blit t.data k t.data (j + 1) (t.size - k);
          t.size <- t.size - removed + 1
        end
      end;
      true
    end
end

let point_gen =
  QCheck2.Gen.(
    let coord = map float_of_int (int_range (-8) 8) in
    map2 (fun ld ea -> Ld_ea.make ~ld ~ea) coord coord)

let points_gen = QCheck2.Gen.(list_size (int_range 0 40) point_gen)

(* Four insert-sequence families, each stressing a different part of the
   SoA insert: arbitrary floats (no ties), a coarse integer grid
   (equal-ld/equal-ea ties), contact-shaped candidates in trace order
   (what [Journey] actually emits: ea = contact start ascending,
   ld = contact end), and a tiny grid where most inserts dominate
   several members at once (long eviction runs through the blits). *)
let uniform_gen =
  QCheck2.Gen.(
    let coord = float_range (-1000.) 1000. in
    list_size (int_range 0 60) (map2 (fun ld ea -> Ld_ea.make ~ld ~ea) coord coord))

let contact_like_gen =
  QCheck2.Gen.(
    map
      (fun raw ->
        let starts = List.sort compare raw in
        List.map (fun (s, d) -> Ld_ea.make ~ld:(s +. d) ~ea:s) starts)
      (list_size (int_range 0 60) (pair (float_range 0. 500.) (float_range 0. 50.))))

let eviction_heavy_gen =
  QCheck2.Gen.(
    let coord = map float_of_int (int_range (-3) 3) in
    list_size (int_range 0 60) (map2 (fun ld ea -> Ld_ea.make ~ld ~ea) coord coord))

let families =
  [
    ("uniform", uniform_gen); ("grid", points_gen); ("contact-like", contact_like_gen);
    ("eviction-heavy", eviction_heavy_gen);
  ]

let matches_naive =
  QCheck2.Test.make ~count:500 ~name:"frontier = naive Pareto filter" points_gen (fun points ->
      let fast = Frontier.to_array (frontier_of_list points) |> Array.to_list in
      let slow = naive_pareto points in
      fast = slow)

let invariant_holds =
  QCheck2.Test.make ~count:500 ~name:"frontier invariant after random inserts" points_gen
    (fun points ->
      Frontier.check_invariant (frontier_of_list points);
      true)

let order_independent =
  QCheck2.Test.make ~count:300 ~name:"frontier independent of insertion order"
    QCheck2.Gen.(pair points_gen (int_bound 1000))
    (fun (points, seed) ->
      let shuffled =
        let a = Array.of_list points in
        Omn_stats.Rng.shuffle (Omn_stats.Rng.create seed) a;
        Array.to_list a
      in
      Frontier.equal (frontier_of_list points) (frontier_of_list shuffled))

let insert_reports_change =
  QCheck2.Test.make ~count:300 ~name:"insert returns true iff point becomes a member"
    QCheck2.Gen.(pair points_gen point_gen)
    (fun (points, p) ->
      let f = frontier_of_list points in
      let changed = Frontier.insert f p in
      let members = Frontier.to_array f |> Array.to_list in
      changed = List.exists (Ld_ea.equal p) members
      || (not changed)
         && List.exists (fun q -> Ld_ea.dominates q p) (naive_pareto (p :: points)))

(* Per-family properties: the SoA frontier against the naive O(n^2)
   reference, against the pre-rewrite boxed implementation, and its own
   invariant after every sequence. [check_invariant] raises
   [Invalid_argument] (not [assert], so a -noassert build still checks)
   and any raise fails the property. *)
let family_props =
  List.concat_map
    (fun (fam, gen) ->
      [
        QCheck2.Test.make ~count:300
          ~name:(Printf.sprintf "[%s] SoA = naive Pareto filter" fam)
          gen
          (fun points ->
            let f = frontier_of_list points in
            Frontier.check_invariant f;
            Frontier.to_array f |> Array.to_list = naive_pareto points);
        QCheck2.Test.make ~count:300
          ~name:(Printf.sprintf "[%s] SoA = pre-rewrite boxed frontier" fam)
          gen
          (fun points ->
            let old = Old_frontier.create () in
            List.iter (fun p -> ignore (Old_frontier.insert old p)) points;
            Frontier.to_array (frontier_of_list points) = Old_frontier.to_array old);
        QCheck2.Test.make ~count:200
          ~name:(Printf.sprintf "[%s] insert_pt agrees with insert" fam)
          gen
          (fun points ->
            let f1 = Frontier.create () and f2 = Frontier.create () in
            List.for_all
              (fun (p : Ld_ea.t) ->
                Frontier.insert f1 p = Frontier.insert_pt f2 ~ld:p.ld ~ea:p.ea)
              points
            && Frontier.equal f1 f2);
      ])
    families

(* [clear] resets the membership but keeps the capacity; a cleared
   frontier refilled with a second sequence must be indistinguishable
   from a fresh one — this is the reuse pattern the [Journey] scratch
   deltas depend on. *)
let clear_reuse =
  QCheck2.Test.make ~count:300 ~name:"clear + refill = fresh frontier"
    QCheck2.Gen.(pair uniform_gen points_gen)
    (fun (first, second) ->
      let f = frontier_of_list first in
      Frontier.clear f;
      Frontier.is_empty f
      &&
      (List.iter (fun p -> ignore (Frontier.insert f p)) second;
       Frontier.check_invariant f;
       Frontier.equal f (frontier_of_list second)))

(* [copy_into] must overwrite whatever the destination held, reusing its
   arrays when they are big enough. *)
let copy_into_overwrites =
  QCheck2.Test.make ~count:300 ~name:"copy_into overwrites destination"
    QCheck2.Gen.(pair uniform_gen uniform_gen)
    (fun (src_pts, dst_pts) ->
      let src = frontier_of_list src_pts and dst = frontier_of_list dst_pts in
      Frontier.copy_into ~src ~dst;
      Frontier.check_invariant dst;
      Frontier.equal src dst)

let unit_tests =
  let p ld ea = Ld_ea.make ~ld ~ea in
  [
    Alcotest.test_case "empty frontier delivers nothing" `Quick (fun () ->
        let f = Frontier.create () in
        Util.check_float "delivery" infinity (Frontier.delivery f 0.);
        Alcotest.(check bool) "empty" true (Frontier.is_empty f));
    Alcotest.test_case "single point delivery" `Quick (fun () ->
        let f = Frontier.create () in
        ignore (Frontier.insert f (p 5. 3.));
        Util.check_float "before ea" 3. (Frontier.delivery f 1.);
        Util.check_float "between" 4. (Frontier.delivery f 4.);
        Util.check_float "at ld" 5. (Frontier.delivery f 5.);
        Util.check_float "after ld" infinity (Frontier.delivery f 5.1));
    Alcotest.test_case "dominated insert is rejected" `Quick (fun () ->
        let f = Frontier.create () in
        ignore (Frontier.insert f (p 5. 3.));
        Alcotest.(check bool) "rejected" false (Frontier.insert f (p 4. 4.));
        Alcotest.(check bool) "duplicate rejected" false (Frontier.insert f (p 5. 3.));
        Alcotest.(check int) "size" 1 (Frontier.size f));
    Alcotest.test_case "dominating insert evicts a run" `Quick (fun () ->
        let f = Frontier.create () in
        ignore (Frontier.insert f (p 1. 5.));
        ignore (Frontier.insert f (p 2. 6.));
        ignore (Frontier.insert f (p 3. 7.));
        ignore (Frontier.insert f (p 9. 9.));
        Alcotest.(check bool) "inserted" true (Frontier.insert f (p 4. 5.));
        (* (4,5) evicts (1,5), (2,6) and (3,7) but not (9,9). *)
        Alcotest.(check int) "size" 2 (Frontier.size f);
        Frontier.check_invariant f);
    Alcotest.test_case "queries" `Quick (fun () ->
        let f = frontier_of_list [ p 1. 0.; p 4. 2.; p 8. 7. ] in
        (match Frontier.first_ld_geq f 2. with
        | Some q -> Alcotest.(check bool) "first_ld_geq" true (Ld_ea.equal q (p 4. 2.))
        | None -> Alcotest.fail "expected Some");
        (match Frontier.last_ea_leq f 2. with
        | Some q -> Alcotest.(check bool) "last_ea_leq" true (Ld_ea.equal q (p 4. 2.))
        | None -> Alcotest.fail "expected Some");
        let seen = ref [] in
        Frontier.iter_ea_in f ~lo:0. ~hi:7. (fun q -> seen := q :: !seen);
        Alcotest.(check int) "iter_ea_in count" 2 (List.length !seen));
    Alcotest.test_case "ld_ea algebra" `Quick (fun () ->
        let a = p 5. 3. and b = p 10. 7. in
        Alcotest.(check bool) "can_concat" true (Ld_ea.can_concat a b);
        (match Ld_ea.concat a b with
        | Some c -> Alcotest.(check bool) "concat value" true (Ld_ea.equal c (p 5. 7.))
        | None -> Alcotest.fail "expected concat");
        Alcotest.(check bool) "cannot concat" false (Ld_ea.can_concat b a);
        (match Ld_ea.concat Ld_ea.identity a with
        | Some c -> Alcotest.(check bool) "left identity" true (Ld_ea.equal c a)
        | None -> Alcotest.fail "identity concat");
        (match Ld_ea.concat a Ld_ea.identity with
        | Some c -> Alcotest.(check bool) "right identity" true (Ld_ea.equal c a)
        | None -> Alcotest.fail "identity concat"));
    Alcotest.test_case "nan coordinates are rejected with a raise" `Quick (fun () ->
        let f = Frontier.create () in
        Alcotest.check_raises "nan ld" (Invalid_argument "Frontier.insert: nan") (fun () ->
            ignore (Frontier.insert_pt f ~ld:Float.nan ~ea:0.));
        Alcotest.check_raises "nan ea" (Invalid_argument "Frontier.insert: nan") (fun () ->
            ignore (Frontier.insert_pt f ~ld:0. ~ea:Float.nan));
        Alcotest.(check bool) "still empty" true (Frontier.is_empty f));
    Alcotest.test_case "paper concatenation counterexample shape" `Quick (fun () ->
        (* Two individually valid sequences that cannot be concatenated:
           EA(first) > LD(second). *)
        let first = p 2. 5. (* store-and-forward: ea > ld *) in
        let second = p 1. 1. in
        Alcotest.(check bool) "invalid" false (Ld_ea.can_concat first second));
  ]

let props =
  [ matches_naive; invariant_holds; order_independent; insert_reports_change ]
  @ family_props
  @ [ clear_reuse; copy_into_overwrites ]
let suite = unit_tests @ List.map QCheck_alcotest.to_alcotest props
