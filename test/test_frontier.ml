open Omn_core

(* Reference implementation: keep every point, filter dominated, sort. *)
let naive_pareto points =
  let keep p =
    not (List.exists (fun q -> (not (Ld_ea.equal p q)) && Ld_ea.dominates q p) points)
  in
  points |> List.filter keep |> List.sort_uniq Ld_ea.compare

let frontier_of_list points =
  let f = Frontier.create () in
  List.iter (fun p -> ignore (Frontier.insert f p)) points;
  f

let point_gen =
  QCheck2.Gen.(
    let coord = map float_of_int (int_range (-8) 8) in
    map2 (fun ld ea -> Ld_ea.make ~ld ~ea) coord coord)

let points_gen = QCheck2.Gen.(list_size (int_range 0 40) point_gen)

let matches_naive =
  QCheck2.Test.make ~count:500 ~name:"frontier = naive Pareto filter" points_gen (fun points ->
      let fast = Frontier.to_array (frontier_of_list points) |> Array.to_list in
      let slow = naive_pareto points in
      fast = slow)

let invariant_holds =
  QCheck2.Test.make ~count:500 ~name:"frontier invariant after random inserts" points_gen
    (fun points ->
      Frontier.check_invariant (frontier_of_list points);
      true)

let order_independent =
  QCheck2.Test.make ~count:300 ~name:"frontier independent of insertion order"
    QCheck2.Gen.(pair points_gen (int_bound 1000))
    (fun (points, seed) ->
      let shuffled =
        let a = Array.of_list points in
        Omn_stats.Rng.shuffle (Omn_stats.Rng.create seed) a;
        Array.to_list a
      in
      Frontier.equal (frontier_of_list points) (frontier_of_list shuffled))

let insert_reports_change =
  QCheck2.Test.make ~count:300 ~name:"insert returns true iff point becomes a member"
    QCheck2.Gen.(pair points_gen point_gen)
    (fun (points, p) ->
      let f = frontier_of_list points in
      let changed = Frontier.insert f p in
      let members = Frontier.to_array f |> Array.to_list in
      changed = List.exists (Ld_ea.equal p) members
      || (not changed)
         && List.exists (fun q -> Ld_ea.dominates q p) (naive_pareto (p :: points)))

let unit_tests =
  let p ld ea = Ld_ea.make ~ld ~ea in
  [
    Alcotest.test_case "empty frontier delivers nothing" `Quick (fun () ->
        let f = Frontier.create () in
        Util.check_float "delivery" infinity (Frontier.delivery f 0.);
        Alcotest.(check bool) "empty" true (Frontier.is_empty f));
    Alcotest.test_case "single point delivery" `Quick (fun () ->
        let f = Frontier.create () in
        ignore (Frontier.insert f (p 5. 3.));
        Util.check_float "before ea" 3. (Frontier.delivery f 1.);
        Util.check_float "between" 4. (Frontier.delivery f 4.);
        Util.check_float "at ld" 5. (Frontier.delivery f 5.);
        Util.check_float "after ld" infinity (Frontier.delivery f 5.1));
    Alcotest.test_case "dominated insert is rejected" `Quick (fun () ->
        let f = Frontier.create () in
        ignore (Frontier.insert f (p 5. 3.));
        Alcotest.(check bool) "rejected" false (Frontier.insert f (p 4. 4.));
        Alcotest.(check bool) "duplicate rejected" false (Frontier.insert f (p 5. 3.));
        Alcotest.(check int) "size" 1 (Frontier.size f));
    Alcotest.test_case "dominating insert evicts a run" `Quick (fun () ->
        let f = Frontier.create () in
        ignore (Frontier.insert f (p 1. 5.));
        ignore (Frontier.insert f (p 2. 6.));
        ignore (Frontier.insert f (p 3. 7.));
        ignore (Frontier.insert f (p 9. 9.));
        Alcotest.(check bool) "inserted" true (Frontier.insert f (p 4. 5.));
        (* (4,5) evicts (1,5), (2,6) and (3,7) but not (9,9). *)
        Alcotest.(check int) "size" 2 (Frontier.size f);
        Frontier.check_invariant f);
    Alcotest.test_case "queries" `Quick (fun () ->
        let f = frontier_of_list [ p 1. 0.; p 4. 2.; p 8. 7. ] in
        (match Frontier.first_ld_geq f 2. with
        | Some q -> Alcotest.(check bool) "first_ld_geq" true (Ld_ea.equal q (p 4. 2.))
        | None -> Alcotest.fail "expected Some");
        (match Frontier.last_ea_leq f 2. with
        | Some q -> Alcotest.(check bool) "last_ea_leq" true (Ld_ea.equal q (p 4. 2.))
        | None -> Alcotest.fail "expected Some");
        let seen = ref [] in
        Frontier.iter_ea_in f ~lo:0. ~hi:7. (fun q -> seen := q :: !seen);
        Alcotest.(check int) "iter_ea_in count" 2 (List.length !seen));
    Alcotest.test_case "ld_ea algebra" `Quick (fun () ->
        let a = p 5. 3. and b = p 10. 7. in
        Alcotest.(check bool) "can_concat" true (Ld_ea.can_concat a b);
        (match Ld_ea.concat a b with
        | Some c -> Alcotest.(check bool) "concat value" true (Ld_ea.equal c (p 5. 7.))
        | None -> Alcotest.fail "expected concat");
        Alcotest.(check bool) "cannot concat" false (Ld_ea.can_concat b a);
        (match Ld_ea.concat Ld_ea.identity a with
        | Some c -> Alcotest.(check bool) "left identity" true (Ld_ea.equal c a)
        | None -> Alcotest.fail "identity concat");
        (match Ld_ea.concat a Ld_ea.identity with
        | Some c -> Alcotest.(check bool) "right identity" true (Ld_ea.equal c a)
        | None -> Alcotest.fail "identity concat"));
    Alcotest.test_case "paper concatenation counterexample shape" `Quick (fun () ->
        (* Two individually valid sequences that cannot be concatenated:
           EA(first) > LD(second). *)
        let first = p 2. 5. (* store-and-forward: ea > ld *) in
        let second = p 1. 1. in
        Alcotest.(check bool) "invalid" false (Ld_ea.can_concat first second));
  ]

let props = [ matches_naive; invariant_holds; order_independent; insert_reports_change ]
let suite = unit_tests @ List.map QCheck_alcotest.to_alcotest props
